module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Membership = Semper_ddl.Membership
module Cap = Semper_caps.Cap
module Mapdb = Semper_caps.Mapdb
module Obs = Semper_obs.Obs
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module Balance = Semper_balance.Balance

let src_log = Logs.Src.create "semper.fleet" ~doc:"Elastic kernel fleet"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* How often a blocked join/drain step re-checks the system, and how
   many re-checks it tolerates before declaring the transition wedged.
   A step blocks only on transient conditions (a syscall in flight on a
   VPE about to move, a revoke wave marking a partition, credit windows
   refilling), all of which resolve within a few hundred cycles — the
   cap exists so a protocol bug fails loudly instead of spinning the
   engine forever. *)
let poll_interval = 500L
let poll_max = 20_000

let state sys k = Membership.kernel_state (System.membership sys) k

let kernel_ids sys = List.init (System.kernel_count sys) Fun.id

let active_kernels sys =
  List.filter (fun k -> state sys k = Membership.Active) (kernel_ids sys)

let joinable_kernels sys =
  List.filter
    (fun k ->
      match state sys k with Membership.Spare | Membership.Retired -> true | _ -> false)
    (kernel_ids sys)

let alive_count sys k =
  List.length (List.filter Vpe.is_alive (Kernel.local_vpes (System.kernel sys k)))

let hosts_service sys ~kernel =
  Mapdb.fold
    (fun acc cap -> acc || match cap.Cap.kind with Cap.Srv_cap _ -> true | _ -> false)
    false
    (Kernel.mapdb (System.kernel sys kernel))

(* Lifecycle transitions flow through two membership layers: the
   system-level replica (spawn routing, PE-allocation gates, audit)
   flips synchronously here, then the kernel holding the transition
   broadcasts it reliably to every kernel replica. *)
let set_state sys ~on ~kernel st done_k =
  Membership.set_kernel_state (System.membership sys) ~kernel st;
  Kernel.announce_state (System.kernel sys on) ~kernel st done_k

(* A partition may move only while no record in it is marked (a revoke
   wave may be sweeping it and the record wave does not carry marks)
   and it holds no service capability (peers cache the directory entry,
   which pins the service's kernel). *)
let partition_quiet k ~pe =
  List.for_all
    (fun (cap : Cap.t) ->
      (not (Cap.is_marked cap))
      && match cap.Cap.kind with Cap.Srv_cap _ -> false | _ -> true)
    (Mapdb.caps_of_pe (Kernel.mapdb k) ~pe)

let vpe_movable (vpe : Vpe.t) = (not vpe.Vpe.frozen) && not vpe.Vpe.syscall_pending

(* One partition-handoff wave, with the system-level replica flipped in
   step (the Balance executor does the same for single-VPE moves).
   [on_wave] sees the wave's wall-clock span — the bound on how long
   the moved VPEs' syscalls stalled. *)
let handoff ?on_wave sys ~src ~pes ~vpes ~dst done_k =
  Membership.reassign_partition (System.membership sys) ~pes ~kernel:dst;
  let started = System.now sys in
  Kernel.handoff_partitions (System.kernel sys src) ~pes ~vpes ~dst (fun () ->
      (match on_wave with
      | Some f -> f (Int64.sub (System.now sys) started)
      | None -> ());
      done_k ())

let wedged what ~kernel =
  failwith
    (Printf.sprintf "Fleet.%s: kernel %d did not make progress after %d polls" what kernel
       poll_max)

(* ------------------------------------------------------------------ *)
(* Join                                                                *)

(* A rejoining kernel first takes its boot-time partition range back
   from whichever kernels absorbed it at retirement. Group-local PE
   allocation hands out exactly this range, so membership must route it
   here again before the first spawn — otherwise a fresh VPE's records
   would live at a kernel that does not manage it (hosting-invariant
   break). The partitions hold at most exited-VPE shells and VPEs that
   migrated away with their PE and are now carried home. *)
let rec reclaim_home ?on_wave sys ~kernel ~polls done_k =
  if polls > poll_max then wedged "join" ~kernel;
  let m = System.membership sys in
  let mid_handoff = ref false in
  let owners = Hashtbl.create 4 in
  List.iter
    (fun pe ->
      match Membership.kernel_of_pe m pe with
      | owner ->
        if owner <> kernel then
          Hashtbl.replace owners owner
            (pe :: (try Hashtbl.find owners owner with Not_found -> []))
      | exception Membership.Mid_handoff _ -> mid_handoff := true)
    (System.home_pes sys ~kernel);
  if !mid_handoff then
    Engine.after (System.engine sys) poll_interval (fun () ->
        reclaim_home ?on_wave sys ~kernel ~polls:(polls + 1) done_k)
  else begin
    let groups =
      Hashtbl.fold (fun o pes acc -> (o, List.sort compare pes) :: acc) owners []
      |> List.sort compare
    in
    let rec step groups polls =
      match groups with
      | [] -> done_k ()
      | (owner, pes) :: rest ->
        if polls > poll_max then wedged "join" ~kernel;
        let k = System.kernel sys owner in
        let vpes =
          List.filter (fun (v : Vpe.t) -> List.mem v.Vpe.pe pes) (Kernel.local_vpes k)
        in
        if
          List.for_all vpe_movable vpes
          && List.for_all (fun pe -> partition_quiet k ~pe) pes
        then
          handoff ?on_wave sys ~src:owner ~pes ~vpes ~dst:kernel (fun () -> step rest 0)
        else
          Engine.after (System.engine sys) poll_interval (fun () ->
              step groups (polls + 1))
    in
    step groups 0
  end

(* Pull a fair share of the running VPEs onto the joining kernel: the
   newcomer absorbs waves from whichever Active kernel currently has
   the most alive VPEs until it holds 1/(a+1) of the live population
   (recomputed each wave, so clients exiting mid-join shrink the goal
   rather than wedging it). A VPE is taken only in an instant when it
   is movable — no syscall in flight, partition unmarked — so under a
   busy open-loop workload the absorb polls until enough of them hit a
   compute gap. Moving a VPE moves its whole PE partition; capability
   links are key-routed and survive the move untouched. *)
let absorb_load ?on_wave sys ~kernel done_k =
  let rec wave ~polls =
    if polls > poll_max then wedged "join" ~kernel;
    let actives = List.filter (fun k -> k <> kernel) (active_kernels sys) in
    let others_alive = List.fold_left (fun a k -> a + alive_count sys k) 0 actives in
    let mine = alive_count sys kernel in
    let target = (others_alive + mine) / (List.length actives + 1) in
    if mine >= target then done_k ()
    else begin
      (* Busiest donor first (lowest id on ties); within it, the sorted
         VPE-id order local_vpes guarantees. *)
      let ordered =
        List.sort
          (fun a b ->
            match Int.compare (alive_count sys b) (alive_count sys a) with
            | 0 -> Int.compare a b
            | c -> c)
          actives
      in
      let pick =
        List.fold_left
          (fun acc src ->
            match acc with
            | Some _ -> acc
            | None ->
              let k = System.kernel sys src in
              let movable =
                List.filter
                  (fun (v : Vpe.t) ->
                    Vpe.is_alive v && vpe_movable v && partition_quiet k ~pe:v.Vpe.pe)
                  (Kernel.local_vpes k)
              in
              if movable = [] then None else Some (src, movable))
          None ordered
      in
      match pick with
      | None ->
        Engine.after (System.engine sys) poll_interval (fun () -> wave ~polls:(polls + 1))
      | Some (src, movable) ->
        let take n l = List.filteri (fun i _ -> i < n) l in
        let vpes = take (target - mine) movable in
        let pes = List.sort compare (List.map (fun (v : Vpe.t) -> v.Vpe.pe) vpes) in
        handoff ?on_wave sys ~src ~pes ~vpes ~dst:kernel (fun () -> wave ~polls:0)
    end
  in
  wave ~polls:0

let join ?on_wave sys ~kernel done_k =
  (match state sys kernel with
  | Membership.Spare | Membership.Retired -> ()
  | Membership.Joining | Membership.Active | Membership.Draining ->
    invalid_arg "Fleet.join: kernel is neither spare nor retired");
  Log.info (fun m -> m "kernel %d joining" kernel);
  set_state sys ~on:kernel ~kernel Membership.Joining (fun () ->
      reclaim_home ?on_wave sys ~kernel ~polls:0 (fun () ->
          absorb_load ?on_wave sys ~kernel (fun () ->
              set_state sys ~on:kernel ~kernel Membership.Active (fun () ->
                  Log.info (fun m -> m "kernel %d active" kernel);
                  done_k ()))))

(* ------------------------------------------------------------------ *)
(* Drain / leave                                                       *)

(* Evacuation destination: the Active kernel with the fewest alive
   VPEs, lowest id on ties. Re-picked every wave, so a long drain
   spreads its load instead of dumping it on one peer. *)
let pick_dst sys ~excluding =
  let actives = List.filter (fun k -> k <> excluding) (active_kernels sys) in
  match actives with
  | [] -> invalid_arg "Fleet.drain: no active kernel left to evacuate to"
  | first :: rest ->
    List.fold_left
      (fun best k -> if alive_count sys k < alive_count sys best then k else best)
      first rest

(* Move every partition the kernel still owns — loaded ones, exited-VPE
   shells, free PEs, and the kernel's own PE — wave by wave until its
   replica maps nothing here. Partitions that are transiently busy
   (syscall in flight, revoke marking) are skipped this wave and
   retried. *)
let rec evacuate ?on_wave sys ~kernel ~polls done_k =
  if polls > poll_max then wedged "drain evacuation" ~kernel;
  let k = System.kernel sys kernel in
  match Membership.pes_of_kernel (Kernel.membership k) kernel with
  | [] -> done_k ()
  | pes ->
    let vpes_here = Kernel.local_vpes k in
    let movable_pes =
      List.filter
        (fun pe ->
          partition_quiet k ~pe
          && List.for_all
               (fun (v : Vpe.t) -> v.Vpe.pe <> pe || vpe_movable v)
               vpes_here)
        pes
    in
    if movable_pes = [] then
      Engine.after (System.engine sys) poll_interval (fun () ->
          evacuate ?on_wave sys ~kernel ~polls:(polls + 1) done_k)
    else begin
      let dst = pick_dst sys ~excluding:kernel in
      let vpes =
        List.filter (fun (v : Vpe.t) -> List.mem v.Vpe.pe movable_pes) vpes_here
      in
      handoff ?on_wave sys ~src:kernel ~pes:movable_pes ~vpes ~dst (fun () ->
          evacuate ?on_wave sys ~kernel ~polls:0 done_k)
    end

(* Retirement gate: the kernel manages no partition, hosts no VPE and
   no capability record, and its control plane is quiescent (nothing
   pending or awaiting retransmission, credit windows full). Deferred
   revoke children parked at peers re-resolve ownership by key on every
   retry, so once the partitions have flipped they chase the new owner,
   never the retiree. *)
let rec retire_when_quiescent sys ~kernel ~polls done_k =
  if polls > poll_max then begin
    let k = System.kernel sys kernel in
    failwith
      (Printf.sprintf
         "Fleet.drain retirement: kernel %d did not make progress after %d polls \
          (pes=%d vpes=%d records=%d; %s)"
         kernel poll_max
         (List.length (Membership.pes_of_kernel (Kernel.membership k) kernel))
         (Kernel.vpe_count k)
         (Mapdb.count (Kernel.mapdb k))
         (Kernel.quiescence_report k))
  end;
  let k = System.kernel sys kernel in
  if
    Membership.pes_of_kernel (Kernel.membership k) kernel = []
    && Kernel.vpe_count k = 0
    && Mapdb.count (Kernel.mapdb k) = 0
    && Kernel.quiescent k
  then done_k ()
  else
    Engine.after (System.engine sys) poll_interval (fun () ->
        retire_when_quiescent sys ~kernel ~polls:(polls + 1) done_k)

let drain ?on_wave sys ~kernel done_k =
  if state sys kernel <> Membership.Active then
    invalid_arg "Fleet.drain: kernel is not active";
  if List.filter (fun k -> k <> kernel) (active_kernels sys) = [] then
    invalid_arg "Fleet.drain: cannot drain the last active kernel";
  if hosts_service sys ~kernel then
    invalid_arg "Fleet.drain: kernel hosts a service (directory entries pin it)";
  Log.info (fun m -> m "kernel %d draining" kernel);
  set_state sys ~on:kernel ~kernel Membership.Draining (fun () ->
      evacuate ?on_wave sys ~kernel ~polls:0 (fun () ->
          retire_when_quiescent sys ~kernel ~polls:0 (fun () ->
              set_state sys ~on:kernel ~kernel Membership.Retired (fun () ->
                  Log.info (fun m -> m "kernel %d retired" kernel);
                  done_k ()))))

let leave = drain

let drainable sys ~kernel =
  state sys kernel = Membership.Active
  && (not (hosts_service sys ~kernel))
  && List.filter (fun k -> k <> kernel) (active_kernels sys) <> []

(* ------------------------------------------------------------------ *)
(* Autoscaler                                                          *)

module Auto = struct
  type transition = {
    t_kind : [ `Join | `Drain ];
    t_kernel : int;
    t_start : int64;
    mutable t_finish : int64 option;
    mutable t_max_wave : int64;
        (* longest single handoff wave — the syscall-stall bound for
           the VPEs that wave carried *)
  }

  type t = {
    sys : System.t;
    pol : Balance.Fleet_policy.t;
    interval : int64;
    stop_when : unit -> bool;
    on_transition : transition -> unit;
    last_busy : int64 array;
    smoothed : float array;
    mutable cooldown_left : int;
    mutable inflight : bool;
    mutable transitions : transition list; (* reverse chronological *)
    mutable tick_count : int;
    mutable timer : Engine.handle option;
    mutable running : bool;
    ctr_ticks : Obs.Registry.counter;
    ctr_joins : Obs.Registry.counter;
    ctr_drains : Obs.Registry.counter;
  }

  let create ?(policy = Balance.Fleet_policy.default) ?(interval = 50_000L)
      ?(stop_when = fun () -> false) ?(on_transition = fun _ -> ()) sys =
    let n = System.kernel_count sys in
    let obs = System.obs sys in
    {
      sys;
      pol = policy;
      interval;
      stop_when;
      on_transition;
      last_busy = Array.make n 0L;
      smoothed = Array.make n 0.0;
      cooldown_left = 0;
      inflight = false;
      transitions = [];
      tick_count = 0;
      timer = None;
      running = false;
      ctr_ticks = Obs.Registry.counter obs "fleet.ticks";
      ctr_joins = Obs.Registry.counter obs "fleet.joins";
      ctr_drains = Obs.Registry.counter obs "fleet.drains";
    }

  let transitions t = List.rev t.transitions
  let ticks t = t.tick_count
  let occupancy t = Array.copy t.smoothed

  (* Same EWMA the VPE balancer uses: only load sustained across
     several windows reaches the sizing policy, so a burst/gap phase
     never triggers a join. *)
  let sample_occupancy t =
    List.iter
      (fun k ->
        let id = Kernel.id k in
        let busy = Server.busy_cycles (Kernel.server k) in
        let delta = Int64.sub busy t.last_busy.(id) in
        t.last_busy.(id) <- busy;
        let o = Int64.to_float delta /. Int64.to_float t.interval in
        let o = if o > 1.0 then 1.0 else o in
        t.smoothed.(id) <-
          (Balance.ewma_alpha *. o) +. ((1.0 -. Balance.ewma_alpha) *. t.smoothed.(id)))
      (System.kernels t.sys);
    Array.copy t.smoothed

  let execute t decision =
    let finish tr () =
      tr.t_finish <- Some (System.now t.sys);
      t.inflight <- false;
      t.on_transition tr
    in
    let transition kind kernel ctr run =
      let tr =
        {
          t_kind = kind;
          t_kernel = kernel;
          t_start = System.now t.sys;
          t_finish = None;
          t_max_wave = 0L;
        }
      in
      t.transitions <- tr :: t.transitions;
      t.inflight <- true;
      t.cooldown_left <- t.pol.Balance.Fleet_policy.cooldown;
      Obs.Registry.incr ctr;
      run
        ~on_wave:(fun span -> if span > tr.t_max_wave then tr.t_max_wave <- span)
        (finish tr)
    in
    match decision with
    | Balance.Fleet_policy.Hold -> ()
    | Balance.Fleet_policy.Scale_out -> (
      match joinable_kernels t.sys with
      | [] -> ()
      | kernel :: _ ->
        Log.info (fun m -> m "tick %d: scale out, joining kernel %d" t.tick_count kernel);
        transition `Join kernel t.ctr_joins (fun ~on_wave k ->
            join ~on_wave t.sys ~kernel k))
    | Balance.Fleet_policy.Scale_in kernel ->
      Log.info (fun m -> m "tick %d: scale in, draining kernel %d" t.tick_count kernel);
      transition `Drain kernel t.ctr_drains (fun ~on_wave k ->
          drain ~on_wave t.sys ~kernel k)

  let rec tick t =
    t.timer <- None;
    if t.running then begin
      t.tick_count <- t.tick_count + 1;
      Obs.Registry.incr t.ctr_ticks;
      let occupancy = sample_occupancy t in
      if t.inflight then () (* one transition at a time *)
      else if t.cooldown_left > 0 then t.cooldown_left <- t.cooldown_left - 1
      else
        execute t
          (Balance.Fleet_policy.decide t.pol ~occupancy ~active:(active_kernels t.sys)
             ~joinable:(joinable_kernels t.sys)
             ~drainable:(fun k -> drainable t.sys ~kernel:k));
      if t.stop_when () && not t.inflight then t.running <- false
      else
        t.timer <-
          Some (Engine.after_cancellable (System.engine t.sys) t.interval (fun () -> tick t))
    end

  let start t =
    if not t.running then begin
      t.running <- true;
      List.iter
        (fun k -> t.last_busy.(Kernel.id k) <- Server.busy_cycles (Kernel.server k))
        (System.kernels t.sys);
      t.timer <-
        Some (Engine.after_cancellable (System.engine t.sys) t.interval (fun () -> tick t))
    end

  let stop t =
    t.running <- false;
    match t.timer with
    | Some h ->
      Engine.cancel (System.engine t.sys) h;
      t.timer <- None
    | None -> ()
end
