(** Elastic kernel fleet: runtime kernel join, drain, and leave with
    live partition rebalancing.

    The boot-time fleet is fixed in SemperOS (kernels and their PE
    groups are laid out before the first VPE spawns); this subsystem
    makes its {e size} a runtime quantity. Kernels provisioned as
    spares ({!Semper_kernel.System.config}[.spare_kernels]) boot into
    the [Spare] lifecycle state — booted, connected, but owning only
    their empty home partitions and serving no work. {!join} brings one
    into service; {!drain} (or its alias {!leave}) takes an Active
    kernel out again. Both are asynchronous state machines driven by
    the simulation engine, built entirely from the reliable primitives
    underneath: op-tagged lifecycle broadcasts
    ({!Semper_kernel.Kernel.announce_state}), bulk partition handoff
    with mid-handoff deferral
    ({!Semper_kernel.Kernel.handoff_partitions}), and the frozen-VPE
    syscall hold in {!Semper_kernel.System.syscall}. In-flight resolves
    against a moving partition defer loudly and retry — they never
    observe a stale owner.

    Lifecycle: [Spare → Joining → Active → Draining → Retired], with
    [Retired → Joining] allowed so a retired kernel can rejoin.

    {!Auto} closes the loop: an EWMA occupancy monitor drives
    {!Semper_balance.Balance.Fleet_policy} and executes at most one
    join/drain transition at a time, with cooldown hysteresis. *)

(** [join ?on_wave sys ~kernel done_k] boots [kernel] (currently
    [Spare] or [Retired], else [Invalid_argument]) into service:
    announces [Joining] to every kernel, reclaims the kernel's
    boot-time home partitions from whichever kernels absorbed them at
    retirement (group-local PE allocation hands out exactly that
    range, so membership must route it here before the first spawn),
    absorbs a fair share of movable VPE partitions from the Active
    kernels via bulk record handoff, then announces [Active] and runs
    [done_k]. [on_wave] observes each handoff wave's wall-clock span —
    the syscall-stall bound for the VPEs that wave froze. *)
val join :
  ?on_wave:(int64 -> unit) ->
  Semper_kernel.System.t ->
  kernel:int ->
  (unit -> unit) ->
  unit

(** [drain ?on_wave sys ~kernel done_k] takes an [Active] kernel out of
    service: announces [Draining] (new work is refused — PE allocation
    on a non-Active kernel yields [E_no_pe]), evacuates every partition
    it owns wave by wave (loaded partitions move with their VPEs to the
    least-loaded Active kernel; transiently busy partitions — syscall
    in flight, revoke marking — are retried), then retires only once
    the kernel manages no partition, hosts no VPE or capability record,
    and its control plane is quiescent (see
    {!Semper_kernel.Kernel.quiescent}; deferred revoke children parked
    at peers re-resolve by key, so they chase the new owners). Raises
    [Invalid_argument] if the kernel is not Active, is the last Active
    kernel, or hosts a service (peers cache directory entries, which
    pin the service's kernel). *)
val drain :
  ?on_wave:(int64 -> unit) ->
  Semper_kernel.System.t ->
  kernel:int ->
  (unit -> unit) ->
  unit

(** {!drain} under its paper-facing name: a kernel leaving the fleet. *)
val leave :
  ?on_wave:(int64 -> unit) ->
  Semper_kernel.System.t ->
  kernel:int ->
  (unit -> unit) ->
  unit

(** Would {!drain} accept this kernel right now? (Active, not the last
    Active kernel, hosts no service.) The autoscaler's scale-in safety
    gate; exposed for tests. *)
val drainable : Semper_kernel.System.t -> kernel:int -> bool

(** Autoscaler: the fleet-wide control loop. Samples every kernel PE's
    busy-cycle counter on a periodic engine tick, smooths it with the
    balancer's EWMA, and feeds mean Active occupancy to
    {!Semper_balance.Balance.Fleet_policy} — scale-out joins the
    lowest-id Spare/Retired kernel, scale-in drains the emptiest
    drainable one. At most one transition runs at a time, and a
    cooldown of policy ticks follows each. *)
module Auto : sig
  (** One executed (or in-flight) fleet transition. *)
  type transition = {
    t_kind : [ `Join | `Drain ];
    t_kernel : int;
    t_start : int64;
    mutable t_finish : int64 option;  (** [None] while in flight *)
    mutable t_max_wave : int64;
        (** longest single handoff wave — the bound on how long any
            VPE's syscalls stalled during this transition *)
  }

  type t

  (** [create ?policy ?interval ?stop_when sys]. [interval] is the
      control-tick period in cycles (default 50_000). [stop_when] is
      polled each tick; once true (and no transition is in flight) the
      timer is not re-armed. [on_transition] runs at each transition's
      completion (the benchmark hangs its per-transition safety checks
      there). Registers [fleet.ticks]/[fleet.joins]/[fleet.drains]
      counters in the system's metrics registry. *)
  val create :
    ?policy:Semper_balance.Balance.Fleet_policy.t ->
    ?interval:int64 ->
    ?stop_when:(unit -> bool) ->
    ?on_transition:(transition -> unit) ->
    Semper_kernel.System.t ->
    t

  (** Arm the control tick. No-op if already running. *)
  val start : t -> unit

  (** Cancel the control tick. Safe when not running. *)
  val stop : t -> unit

  (** Transitions decided so far, chronological. *)
  val transitions : t -> transition list

  val ticks : t -> int

  (** Current smoothed occupancy per kernel id (a copy). *)
  val occupancy : t -> float array
end
