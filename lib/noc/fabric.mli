(** Message transport over the NoC.

    Latency model: [base + hop_cost * hops + bytes / bytes_per_cycle].
    Delivery between a fixed (src, dst) pair is FIFO — the paper's
    distributed capability protocols *require* pairwise message ordering
    (§4.3.1), so the fabric enforces it even for mixed message sizes,
    and even for copies injected by a fault plan. *)

type config = {
  base_cycles : int;          (** fixed per-message overhead *)
  hop_cycles : int;           (** added per mesh hop *)
  bytes_per_cycle : int;      (** serialisation bandwidth *)
}

(** Defaults calibrated for the Table 3 microbenchmarks. *)
val default_config : config

type t

(** A fault-injection hook: given one message (identified by its
    protocol [tag]; [""] for untagged traffic) and its nominal
    [arrival], returns a delivery plan with one element per copy:
    [Some time] delivers a copy at that absolute time, [None] drops
    that copy. [[]] drops the whole (single-copy) message; a
    duplicate-then-drop plan like [[Some a; None]] delivers one copy
    and counts one drop. The fabric clamps every returned time to at
    least the unfaulted arrival and re-applies the pairwise FIFO clamp,
    so an injector can only add latency, never reorder a channel or
    time-travel. *)
type injector = src:int -> dst:int -> tag:string -> now:int64 -> arrival:int64 -> int64 option list

(** [create ?obs engine topology config] builds the fabric. When [obs]
    is given, the offered/delivered/dropped counters are registered
    there under the [fabric.*] namespace; otherwise a private registry
    backs the accessors below. *)
val create : ?obs:Semper_obs.Obs.Registry.t -> Semper_sim.Engine.t -> Topology.t -> config -> t

val topology : t -> Topology.t
val engine : t -> Semper_sim.Engine.t

(** Install (or clear) the fault injector. *)
val set_injector : t -> injector option -> unit

(** Is a fault injector installed? Without one, delivery is perfect —
    a message is never lost, so loss-recovery heuristics (credit
    refunds for presumed-dropped replies) can stand down. *)
val has_injector : t -> bool

(** [send t ~src ~dst ~bytes k] delivers after the modelled latency and
    then runs [k]. [tag] names the protocol message class for the
    injector; untagged sends are never dropped or duplicated. Raises if
    [src]/[dst] are out of range or [bytes] is negative. *)
val send : ?tag:string -> t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit

(** Latency in cycles that [send] would charge for this message. *)
val latency : t -> src:int -> dst:int -> bytes:int -> int64

(** Messages offered to the fabric so far (counted at send time). *)
val messages : t -> int

(** Total payload bytes offered so far. *)
val bytes_carried : t -> int

(** Total hop-traversals offered so far (traffic proxy). *)
val hops_traversed : t -> int

(** Copies actually delivered (>= offered under duplication, < under
    drops; equal when no injector is installed). *)
val messages_delivered : t -> int

(** Payload bytes actually delivered. *)
val bytes_delivered : t -> int

(** Copies dropped by the injector (partial drops of a duplicated
    message count per copy). *)
val dropped : t -> int

(** The fabric's own mutable surface: the pairwise-FIFO last-delivery
    clamp. Traffic counters live in the metrics registry (restored via
    [Obs.Registry.restore]); in-flight deliveries are engine events and
    travel inside whole-image checkpoints. [restore] raises
    [Invalid_argument] on a topology-size mismatch. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
