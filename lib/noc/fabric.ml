module Obs = Semper_obs.Obs

type config = { base_cycles : int; hop_cycles : int; bytes_per_cycle : int }

let default_config = { base_cycles = 330; hop_cycles = 4; bytes_per_cycle = 16 }

type injector = src:int -> dst:int -> tag:string -> now:int64 -> arrival:int64 -> int64 option list

type t = {
  engine : Semper_sim.Engine.t;
  topology : Topology.t;
  config : config;
  (* Last scheduled delivery time per (src, dst), to enforce pairwise
     FIFO. A flat array indexed by [src * pe_count + dst]: the topology
     is fixed at create time, and the hashtable this replaces both grew
     with the number of distinct pairs ever used and paid a hash +
     allocation per message on the hottest path in the simulator.
     Plain [int] cycles (cycle counts fit 63 bits by far, and an OCaml
     [int64 array] would box every element); [-1] marks a never-used
     pair — delivery times are never negative. *)
  last_delivery : int array;
  mutable injector : injector option;
  messages : Obs.Registry.counter;
  bytes : Obs.Registry.counter;
  hops : Obs.Registry.counter;
  messages_delivered : Obs.Registry.counter;
  bytes_delivered : Obs.Registry.counter;
  dropped : Obs.Registry.counter;
}

let create ?obs engine topology config =
  if config.base_cycles < 0 || config.hop_cycles < 0 || config.bytes_per_cycle <= 0 then
    invalid_arg "Fabric.create: invalid config";
  (* Without a shared registry the fabric keeps a private one, so the
     counter accessors below work in isolation (unit tests, ad-hoc use). *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let c name = Obs.Registry.counter obs ("fabric." ^ name) in
  let n = Topology.pe_count topology in
  {
    engine;
    topology;
    config;
    last_delivery = Array.make (n * n) (-1);
    injector = None;
    messages = c "messages_offered";
    bytes = c "bytes_offered";
    hops = c "hops_offered";
    messages_delivered = c "messages_delivered";
    bytes_delivered = c "bytes_delivered";
    dropped = c "dropped";
  }

let topology t = t.topology
let engine t = t.engine
let set_injector t inj = t.injector <- inj

(* The latency formula lives here and nowhere else: [latency] is the
   public quote and [send] charges exactly the same amount, so the two
   can never drift. [hops] is passed in because [send] also needs it
   for the traffic counters. *)
let latency_of_hops t ~hops ~bytes =
  let c = t.config in
  Int64.of_int (c.base_cycles + (c.hop_cycles * hops) + (bytes / c.bytes_per_cycle))

let latency t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Fabric.latency: negative size";
  latency_of_hops t ~hops:(Topology.hops t.topology src dst) ~bytes

(* Schedule one copy. FIFO per channel: never deliver before a
   previously sent message (each duplicate copy joins the ordered
   stream too). *)
let deliver t ~src ~dst ~bytes a k =
  let slot = (src * Topology.pe_count t.topology) + dst in
  let a =
    let prev = t.last_delivery.(slot) in
    if prev > Int64.to_int a then Int64.of_int prev else a
  in
  t.last_delivery.(slot) <- Int64.to_int a;
  Semper_sim.Engine.at t.engine a (fun () ->
      Obs.Registry.incr t.messages_delivered;
      Obs.Registry.incr ~by:bytes t.bytes_delivered;
      k ())

let send ?(tag = "") t ~src ~dst ~bytes k =
  if bytes < 0 then invalid_arg "Fabric.send: negative size";
  let hops = Topology.hops t.topology src dst in
  let lat = latency_of_hops t ~hops ~bytes in
  let now = Semper_sim.Engine.now t.engine in
  let arrival = Int64.add now lat in
  (* Offered-load stats count at send time; delivery stats only once a
     copy actually arrives (an injector may drop or duplicate it). *)
  Obs.Registry.incr t.messages;
  Obs.Registry.incr ~by:bytes t.bytes;
  Obs.Registry.incr ~by:hops t.hops;
  match t.injector with
  | None ->
    (* Fast path: without an injector exactly one copy arrives at the
       unfaulted time — schedule it directly instead of building,
       filtering, and sorting per-message plan lists. This path carries
       every message of a fault-free run. *)
    deliver t ~src ~dst ~bytes arrival k
  | Some inject ->
    let plan = inject ~src ~dst ~tag ~now ~arrival in
    (* Each [None] in the plan is one dropped copy; an empty plan is the
       whole message dropped (one drop, since exactly one was offered). *)
    let drops = if plan = [] then 1 else List.length (List.filter Option.is_none plan) in
    if drops > 0 then Obs.Registry.incr ~by:drops t.dropped;
    let arrivals =
      (* Clamp each surviving copy so it is never earlier than the
         unfaulted arrival: faults add latency, they cannot create a
         faster-than-the-NoC path. *)
      List.filter_map Fun.id plan
      |> List.map (fun a -> if Int64.compare a arrival < 0 then arrival else a)
      |> List.sort Int64.compare
    in
    List.iter (fun a -> deliver t ~src ~dst ~bytes a k) arrivals

(* The traffic counters live in the metrics registry and are restored
   with it (Obs.Registry.restore); in-flight deliveries are engine
   events and travel inside whole-image checkpoints. What remains here
   is the pairwise FIFO clamp. *)
type snapshot = { s_last_delivery : int array }

let snapshot t = { s_last_delivery = Array.copy t.last_delivery }

let restore t s =
  if Array.length s.s_last_delivery <> Array.length t.last_delivery then
    invalid_arg "Fabric.restore: topology size does not match the snapshot";
  Array.blit s.s_last_delivery 0 t.last_delivery 0 (Array.length t.last_delivery)

let messages t = Obs.Registry.value t.messages
let bytes_carried t = Obs.Registry.value t.bytes
let hops_traversed t = Obs.Registry.value t.hops
let messages_delivered t = Obs.Registry.value t.messages_delivered
let bytes_delivered t = Obs.Registry.value t.bytes_delivered
let dropped t = Obs.Registry.value t.dropped
