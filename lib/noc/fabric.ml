type config = { base_cycles : int; hop_cycles : int; bytes_per_cycle : int }

let default_config = { base_cycles = 330; hop_cycles = 4; bytes_per_cycle = 16 }

type injector = src:int -> dst:int -> tag:string -> now:int64 -> arrival:int64 -> int64 list

type t = {
  engine : Semper_sim.Engine.t;
  topology : Topology.t;
  config : config;
  (* Last scheduled delivery time per (src, dst), to enforce pairwise FIFO. *)
  last_delivery : (int * int, int64) Hashtbl.t;
  mutable injector : injector option;
  mutable messages : int;
  mutable bytes : int;
  mutable hops : int;
  mutable messages_delivered : int;
  mutable bytes_delivered : int;
  mutable dropped : int;
}

let create engine topology config =
  if config.base_cycles < 0 || config.hop_cycles < 0 || config.bytes_per_cycle <= 0 then
    invalid_arg "Fabric.create: invalid config";
  {
    engine;
    topology;
    config;
    last_delivery = Hashtbl.create 64;
    injector = None;
    messages = 0;
    bytes = 0;
    hops = 0;
    messages_delivered = 0;
    bytes_delivered = 0;
    dropped = 0;
  }

let topology t = t.topology
let engine t = t.engine
let set_injector t inj = t.injector <- inj

let latency t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Fabric.latency: negative size";
  let hops = Topology.hops t.topology src dst in
  let c = t.config in
  Int64.of_int (c.base_cycles + (c.hop_cycles * hops) + (bytes / c.bytes_per_cycle))

let send ?(tag = "") t ~src ~dst ~bytes k =
  let lat = latency t ~src ~dst ~bytes in
  let now = Semper_sim.Engine.now t.engine in
  let arrival = Int64.add now lat in
  (* Offered-load stats count at send time; delivery stats only once a
     copy actually arrives (an injector may drop or duplicate it). *)
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  t.hops <- t.hops + Topology.hops t.topology src dst;
  let arrivals =
    match t.injector with
    | None -> [ arrival ]
    | Some inject ->
      (* Clamp each injected copy so it is never earlier than the
         unfaulted arrival: faults add latency, they cannot create a
         faster-than-the-NoC path. *)
      inject ~src ~dst ~tag ~now ~arrival
      |> List.map (fun a -> if Int64.compare a arrival < 0 then arrival else a)
      |> List.sort Int64.compare
  in
  if arrivals = [] then t.dropped <- t.dropped + 1
  else
    List.iter
      (fun a ->
        (* FIFO per channel: never deliver before a previously sent
           message (each duplicate copy joins the ordered stream too). *)
        let a =
          match Hashtbl.find_opt t.last_delivery (src, dst) with
          | Some prev when Int64.compare prev a > 0 -> prev
          | Some _ | None -> a
        in
        Hashtbl.replace t.last_delivery (src, dst) a;
        Semper_sim.Engine.at t.engine a (fun () ->
            t.messages_delivered <- t.messages_delivered + 1;
            t.bytes_delivered <- t.bytes_delivered + bytes;
            k ()))
      arrivals

let messages t = t.messages
let bytes_carried t = t.bytes
let hops_traversed t = t.hops
let messages_delivered t = t.messages_delivered
let bytes_delivered t = t.bytes_delivered
let dropped t = t.dropped
