module Obs = Semper_obs.Obs

type config = { base_cycles : int; hop_cycles : int; bytes_per_cycle : int }

let default_config = { base_cycles = 330; hop_cycles = 4; bytes_per_cycle = 16 }

type injector = src:int -> dst:int -> tag:string -> now:int64 -> arrival:int64 -> int64 option list

type t = {
  engine : Semper_sim.Engine.t;
  topology : Topology.t;
  config : config;
  (* Last scheduled delivery time per (src, dst), to enforce pairwise
     FIFO, keyed by [src * pe_count + dst]. The key is a single
     immediate int, so lookups neither allocate nor hash a tuple; the
     table holds only pairs that have actually communicated — O(PEs)
     in practice, since a PE talks to its kernel and its services. The
     flat [pe_count^2] array this replaces was 138 MB at 4K PEs:
     creation alone cost a quarter second of memset, every message's
     clamp was a guaranteed cache miss, and the major GC dragged the
     whole array through every cycle — the largest single source of
     the events/s droop from 1K to 4K PEs. Plain [int] cycles (cycle
     counts fit 63 bits by far; an [int64] value would box). *)
  last_delivery : (int, int) Hashtbl.t;
  mutable injector : injector option;
  messages : Obs.Registry.counter;
  bytes : Obs.Registry.counter;
  hops : Obs.Registry.counter;
  messages_delivered : Obs.Registry.counter;
  bytes_delivered : Obs.Registry.counter;
  dropped : Obs.Registry.counter;
}

let create ?obs engine topology config =
  if config.base_cycles < 0 || config.hop_cycles < 0 || config.bytes_per_cycle <= 0 then
    invalid_arg "Fabric.create: invalid config";
  (* Without a shared registry the fabric keeps a private one, so the
     counter accessors below work in isolation (unit tests, ad-hoc use). *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let c name = Obs.Registry.counter obs ("fabric." ^ name) in
  {
    engine;
    topology;
    config;
    last_delivery = Hashtbl.create 1024;
    injector = None;
    messages = c "messages_offered";
    bytes = c "bytes_offered";
    hops = c "hops_offered";
    messages_delivered = c "messages_delivered";
    bytes_delivered = c "bytes_delivered";
    dropped = c "dropped";
  }

let topology t = t.topology
let engine t = t.engine
let set_injector t inj = t.injector <- inj
let has_injector t = t.injector <> None

(* The latency formula lives here and nowhere else: [latency] is the
   public quote and [send] charges exactly the same amount, so the two
   can never drift. [hops] is passed in because [send] also needs it
   for the traffic counters. *)
let latency_of_hops t ~hops ~bytes =
  let c = t.config in
  Int64.of_int (c.base_cycles + (c.hop_cycles * hops) + (bytes / c.bytes_per_cycle))

let latency t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Fabric.latency: negative size";
  latency_of_hops t ~hops:(Topology.hops t.topology src dst) ~bytes

(* Schedule one copy. FIFO per channel: never deliver before a
   previously sent message (each duplicate copy joins the ordered
   stream too). *)
let deliver t ~src ~dst ~bytes a k =
  let slot = (src * Topology.pe_count t.topology) + dst in
  let a =
    match Hashtbl.find_opt t.last_delivery slot with
    | Some prev when prev > Int64.to_int a -> Int64.of_int prev
    | Some _ | None -> a
  in
  Hashtbl.replace t.last_delivery slot (Int64.to_int a);
  Semper_sim.Engine.at t.engine a (fun () ->
      Obs.Registry.incr t.messages_delivered;
      Obs.Registry.incr ~by:bytes t.bytes_delivered;
      k ())

let send ?(tag = "") t ~src ~dst ~bytes k =
  if bytes < 0 then invalid_arg "Fabric.send: negative size";
  let hops = Topology.hops t.topology src dst in
  let lat = latency_of_hops t ~hops ~bytes in
  let now = Semper_sim.Engine.now t.engine in
  let arrival = Int64.add now lat in
  (* Offered-load stats count at send time; delivery stats only once a
     copy actually arrives (an injector may drop or duplicate it). *)
  Obs.Registry.incr t.messages;
  Obs.Registry.incr ~by:bytes t.bytes;
  Obs.Registry.incr ~by:hops t.hops;
  match t.injector with
  | None ->
    (* Fast path: without an injector exactly one copy arrives at the
       unfaulted time — schedule it directly instead of building,
       filtering, and sorting per-message plan lists. This path carries
       every message of a fault-free run. *)
    deliver t ~src ~dst ~bytes arrival k
  | Some inject ->
    let plan = inject ~src ~dst ~tag ~now ~arrival in
    (* Each [None] in the plan is one dropped copy; an empty plan is the
       whole message dropped (one drop, since exactly one was offered). *)
    let drops = if plan = [] then 1 else List.length (List.filter Option.is_none plan) in
    if drops > 0 then Obs.Registry.incr ~by:drops t.dropped;
    let arrivals =
      (* Clamp each surviving copy so it is never earlier than the
         unfaulted arrival: faults add latency, they cannot create a
         faster-than-the-NoC path. *)
      List.filter_map Fun.id plan
      |> List.map (fun a -> if Int64.compare a arrival < 0 then arrival else a)
      |> List.sort Int64.compare
    in
    List.iter (fun a -> deliver t ~src ~dst ~bytes a k) arrivals

(* The traffic counters live in the metrics registry and are restored
   with it (Obs.Registry.restore); in-flight deliveries are engine
   events and travel inside whole-image checkpoints. What remains here
   is the pairwise FIFO clamp. *)
(* Canonical form — sorted (slot, cycle) pairs — so equal clamp states
   marshal to equal bytes no matter what internal layout the live
   table's insertion history produced ([System.fingerprint] hashes the
   marshalled snapshot). *)
type snapshot = { s_last_delivery : (int * int) array }

let snapshot t =
  let a = Array.make (Hashtbl.length t.last_delivery) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun k v ->
      a.(!i) <- (k, v);
      incr i)
    t.last_delivery;
  Array.sort compare a;
  { s_last_delivery = a }

let restore t s =
  Hashtbl.reset t.last_delivery;
  Array.iter (fun (k, v) -> Hashtbl.replace t.last_delivery k v) s.s_last_delivery

let messages t = Obs.Registry.value t.messages
let bytes_carried t = Obs.Registry.value t.bytes
let hops_traversed t = Obs.Registry.value t.hops
let messages_delivered t = Obs.Registry.value t.messages_delivered
let bytes_delivered t = Obs.Registry.value t.bytes_delivered
let dropped t = Obs.Registry.value t.dropped
