(* Hierarchical timer wheel. See wheel.mli for the layout and the
   determinism argument; the short version:

   - level l covers spans of 32^(l+1) ticks split into 32 slots;
   - a cell lives at the lowest level whose slot span contains both its
     time and the cursor (shared high prefix, not a delta bound);
   - per-level 32-bit occupancy bitmaps make "next occupied slot at or
     after the cursor's slot" a mask + ctz;
   - cascading a level-l slot re-buckets its cells front to back; every
     target slot is strictly lower-level and empty at that instant, so
     list order (= insertion order) survives all the way down. *)

let bits = 5
let slot_count = 1 lsl bits (* 32 *)
let slot_mask = slot_count - 1
let levels = 13 (* 13 * 5 = 65 bits >= 63-bit int range *)

type 'a cell = {
  w_time : int;
  w_value : 'a;
  mutable w_prev : 'a cell;
  mutable w_next : 'a cell;
  mutable w_linked : bool;
}

type 'a t = {
  (* slots.(l * slot_count + s) is the sentinel of level l, slot s. *)
  slots : 'a cell array;
  (* occupancy bitmap per level: bit s set iff slot s is non-empty. *)
  occ : int array;
  mutable cur : int;
  mutable len : int;
}

let time c = c.w_time
let value c = c.w_value
let length t = t.len
let cursor t = t.cur

let create ~dummy () =
  let mk_sentinel () =
    let rec c =
      { w_time = -1; w_value = dummy; w_prev = c; w_next = c; w_linked = false }
    in
    c
  in
  {
    slots = Array.init (levels * slot_count) (fun _ -> mk_sentinel ());
    occ = Array.make levels 0;
    cur = 0;
    len = 0;
  }

(* Count trailing zeros of a non-zero masked-to-32-bits value. *)
let ctz32 x =
  let n = ref 0 and x = ref (x land 0xffffffff) in
  if !x land 0xffff = 0 then (n := !n + 16; x := !x lsr 16);
  if !x land 0xff = 0 then (n := !n + 8; x := !x lsr 8);
  if !x land 0xf = 0 then (n := !n + 4; x := !x lsr 4);
  if !x land 0x3 = 0 then (n := !n + 2; x := !x lsr 2);
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* Level for [time] under cursor [cur]: smallest l such that time and
   cur agree above bit 5*(l+1). [time >= cur >= 0] ensures it exists
   within [levels]. *)
let level_of t ~time =
  let x = time lxor t.cur in
  let l = ref 0 in
  while x lsr (bits * (!l + 1)) <> 0 do
    incr l
  done;
  !l

let slot_index ~level ~time = (time lsr (bits * level)) land slot_mask

(* Append [c] to the slot list for its (recomputed) level. *)
let link t c =
  let level = level_of t ~time:c.w_time in
  let slot = slot_index ~level ~time:c.w_time in
  let s = t.slots.(level * slot_count + slot) in
  let last = s.w_prev in
  c.w_prev <- last;
  c.w_next <- s;
  last.w_next <- c;
  s.w_prev <- c;
  c.w_linked <- true;
  t.occ.(level) <- t.occ.(level) lor (1 lsl slot)

let unlink t c ~level ~slot =
  c.w_prev.w_next <- c.w_next;
  c.w_next.w_prev <- c.w_prev;
  c.w_linked <- false;
  let s = t.slots.((level * slot_count) + slot) in
  if s.w_next == s then t.occ.(level) <- t.occ.(level) land lnot (1 lsl slot)

let add t ~time v =
  if time < t.cur || time < 0 then
    invalid_arg "Wheel.add: time precedes cursor";
  let rec c =
    { w_time = time; w_value = v; w_prev = c; w_next = c; w_linked = false }
  in
  link t c;
  t.len <- t.len + 1;
  c

let remove t c =
  if not c.w_linked then false
  else begin
    let level = level_of t ~time:c.w_time in
    let slot = slot_index ~level ~time:c.w_time in
    unlink t c ~level ~slot;
    t.len <- t.len - 1;
    true
  end

(* Re-bucket every cell of level [level], slot [slot] one or more
   levels down, preserving list order. Caller guarantees the cursor
   has entered this slot's span (so each cell now maps strictly
   lower) and that all lower levels are empty below that span. *)
let cascade t ~level ~slot =
  let s = t.slots.((level * slot_count) + slot) in
  t.occ.(level) <- t.occ.(level) land lnot (1 lsl slot);
  (* Detach the whole list first: link re-walks from the sentinel. *)
  let first = s.w_next in
  s.w_next <- s;
  s.w_prev <- s;
  let c = ref first in
  while !c != s do
    let next = !c.w_next in
    link t !c;
    c := next
  done

(* Lowest occupied (level, slot-with-span-containing-or-after-cursor),
   scanning level by level. Returns the level and slot, or raises
   Not_found if the wheel is empty. At level l the cursor's own slot is
   (cur lsr 5l) land 31; any occupied slot at an index >= that (within
   the cursor's current rotation at that level — guaranteed by the
   shared-prefix placement rule) is reachable without wrapping. *)
let next_occupied t =
  let rec go level =
    if level >= levels then raise Not_found
    else
      let base = (t.cur lsr (bits * level)) land slot_mask in
      let m = t.occ.(level) land ((-1) lsl base) in
      if m <> 0 then (level, ctz32 m) else go (level + 1)
  in
  go 0

let rec pop t ~limit =
  if t.len = 0 then None
  else
    let level, slot = next_occupied t in
    if level = 0 then begin
      let s = t.slots.(slot) in
      let c = s.w_next in
      (* Level-0 slots hold exactly one time value. *)
      if c.w_time > limit then None
      else begin
        unlink t c ~level:0 ~slot;
        t.len <- t.len - 1;
        t.cur <- c.w_time;
        Some c
      end
    end
    else begin
      (* The earliest pending time lives in this higher-level slot;
         its span starts at an aligned boundary >= cur. Only advance
         the cursor (and cascade) if that boundary is within limit —
         otherwise report "nothing due" without moving. *)
      let span = bits * level in
      let start = (t.slots.((level * slot_count) + slot)).w_next in
      let span_start = (start.w_time lsr span) lsl span in
      let span_start = if span_start < t.cur then t.cur else span_start in
      if span_start > limit then None
      else begin
        t.cur <- span_start;
        cascade t ~level ~slot;
        pop t ~limit
      end
    end

let iter f t =
  for i = 0 to (levels * slot_count) - 1 do
    let s = t.slots.(i) in
    let c = ref s.w_next in
    while !c != s do
      f !c;
      c := !c.w_next
    done
  done
