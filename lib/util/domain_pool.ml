let available_cores () = Domain.recommended_domain_count ()

(* One slot per thunk, written by exactly one worker. The happens-before
   edges from [Domain.join] make every slot visible to the collecting
   domain; within a run, slots are claimed via [Atomic.fetch_and_add] so
   no index is executed twice. *)
type 'a slot = Empty | Ok_v of 'a | Exn of exn * Printexc.raw_backtrace

let run_parallel ~workers tasks =
  let n = Array.length tasks in
  let results = Array.make n Empty in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (results.(i) <-
        (match tasks.(i) () with
        | v -> Ok_v v
        | exception e -> Exn (e, Printexc.get_raw_backtrace ())));
      worker ()
    end
  in
  let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* Surface the earliest failure first so a parallel run raises the
     same exception the serial left-to-right run would. *)
  Array.iter
    (function Exn (e, bt) -> Printexc.raise_with_backtrace e bt | Empty | Ok_v _ -> ())
    results;
  Array.to_list
    (Array.map (function Ok_v v -> v | Empty | Exn _ -> assert false) results)

let run ?jobs thunks =
  let jobs = match jobs with Some j -> j | None -> available_cores () in
  if jobs < 1 then invalid_arg "Domain_pool.run: jobs < 1";
  let n = List.length thunks in
  if jobs = 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else run_parallel ~workers:(min jobs n) (Array.of_list thunks)

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
