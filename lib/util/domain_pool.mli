(** Bounded pool of worker domains with deterministic result
    collection.

    [run ~jobs thunks] executes every thunk exactly once across at most
    [jobs] domains (the calling domain participates as a worker) and
    returns the results {b in submission order}, regardless of which
    domain finished which thunk first. Determinism therefore only
    requires that each thunk is independent — no shared mutable state
    between them; see the domain-confinement rule in DESIGN.md.

    Exceptions raised by thunks are re-raised in the calling domain,
    with their backtraces, after all workers have drained: the
    exception of the {b earliest-submitted} failing thunk wins, so a
    parallel run fails with the same exception a serial run would. *)

(** Number of domains that can run in parallel on this machine
    ([Domain.recommended_domain_count]). *)
val available_cores : unit -> int

(** [run ~jobs thunks] — results in submission order. [jobs] defaults
    to {!available_cores}; [jobs = 1] runs everything serially in the
    calling domain (no domains spawned — exactly the sequential path).
    Raises [Invalid_argument] if [jobs < 1]. *)
val run : ?jobs:int -> (unit -> 'a) list -> 'a list

(** [map ~jobs f xs] = [run ~jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
