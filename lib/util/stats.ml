module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min
  let max t = t.max

  (* The raw min/max of an empty accumulator are the infinities, which
     have no JSON spelling; exporters use these instead. *)
  let min_opt t = if t.n = 0 then None else Some t.min
  let max_opt t = if t.n = 0 then None else Some t.max
  let sum t = t.sum

  type state = {
    s_n : int;
    s_mean : float;
    s_m2 : float;
    s_min : float;
    s_max : float;
    s_sum : float;
  }

  let dump t = { s_n = t.n; s_mean = t.mean; s_m2 = t.m2; s_min = t.min; s_max = t.max; s_sum = t.sum }

  let restore t s =
    t.n <- s.s_n;
    t.mean <- s.s_mean;
    t.m2 <- s.s_m2;
    t.min <- s.s_min;
    t.max <- s.s_max;
    t.sum <- s.s_sum
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end

module Histogram = struct
  type t = { bounds : float array; counts : int array; mutable total : int }

  let create ~buckets = { bounds = buckets; counts = Array.make (Array.length buckets + 1) 0; total = 0 }

  let add t x =
    let rec find i =
      if i >= Array.length t.bounds then i else if x <= t.bounds.(i) then i else find (i + 1)
    in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total
end
