type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
  compare : 'a -> 'a -> int;
}

(* The backing array never shrinks below its initial size. *)
let min_capacity = 16

let create ~dummy ~compare =
  { data = Array.make min_capacity dummy; size = 0; dummy; compare }

let length h = h.size

let is_empty h = h.size = 0

let capacity h = Array.length h.data

let grow h =
  let data = Array.make (2 * Array.length h.data) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

(* Release storage once occupancy drops below a quarter: halving (not
   snapping to [size]) leaves slack so a push right after the shrink
   does not immediately reallocate. *)
let maybe_shrink h =
  let cap = Array.length h.data in
  if cap > min_capacity && h.size < cap / 4 then begin
    let data = Array.make (max min_capacity (cap / 2)) h.dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  (* Sift the new element up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty heap";
  let root = h.data.(0) in
  h.size <- h.size - 1;
  h.data.(0) <- h.data.(h.size);
  h.data.(h.size) <- h.dummy;
  (* Sift the moved element down to its place. *)
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < h.size && h.compare h.data.(l) h.data.(i) < 0 then l else i in
    let smallest =
      if r < h.size && h.compare h.data.(r) h.data.(smallest) < 0 then r else smallest
    in
    if smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(smallest);
      h.data.(smallest) <- tmp;
      down smallest
    end
  in
  down 0;
  maybe_shrink h;
  root

let peek h = if h.size = 0 then None else Some h.data.(0)

let filter_in_place p h =
  (* Compact the survivors to a prefix, then restore the heap property
     bottom-up (Floyd's heap construction, O(n)). *)
  let kept = ref 0 in
  for i = 0 to h.size - 1 do
    if p h.data.(i) then begin
      h.data.(!kept) <- h.data.(i);
      incr kept
    end
  done;
  for i = !kept to h.size - 1 do
    h.data.(i) <- h.dummy
  done;
  h.size <- !kept;
  let rec down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < h.size && h.compare h.data.(l) h.data.(i) < 0 then l else i in
    let smallest =
      if r < h.size && h.compare h.data.(r) h.data.(smallest) < 0 then r else smallest
    in
    if smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(smallest);
      h.data.(smallest) <- tmp;
      down smallest
    end
  in
  for i = (h.size / 2) - 1 downto 0 do
    down i
  done;
  maybe_shrink h

let clear h =
  if Array.length h.data > min_capacity then h.data <- Array.make min_capacity h.dummy
  else
    for i = 0 to h.size - 1 do
      h.data.(i) <- h.dummy
    done;
  h.size <- 0

let fold f acc h =
  let acc = ref acc in
  for i = 0 to h.size - 1 do
    acc := f !acc h.data.(i)
  done;
  !acc
