(** Imperative binary min-heap.

    Used as the event queue of the discrete-event engine, where it must
    sustain millions of push/pop operations; hence a flat-array
    implementation rather than a functional one. *)

type 'a t

(** [create ~dummy ~compare] is an empty heap ordered by [compare].
    [dummy] is used to fill unused array slots and is never returned. *)
val create : dummy:'a -> compare:('a -> 'a -> int) -> 'a t

(** Number of elements currently in the heap. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** Slots in the backing array (diagnostics and tests). Grows by
    doubling on [push]; halves on [pop] once occupancy drops below a
    quarter, never below the initial 16. *)
val capacity : 'a t -> int

(** Insert an element. Amortised O(log n). *)
val push : 'a t -> 'a -> unit

(** Remove and return the minimum element. Raises [Invalid_argument]
    on an empty heap. Releases backing storage as the heap drains (see
    {!capacity}), so a burst does not pin memory for the whole run. *)
val pop : 'a t -> 'a

(** [filter_in_place p h] drops every element for which [p] is false,
    in O(n) (compaction plus bottom-up heapify) — the event engine uses
    this to purge cancelled events without reallocating per element. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit

(** Return the minimum element without removing it, or [None]. *)
val peek : 'a t -> 'a option

(** Remove all elements and reset the backing array to its initial
    size. *)
val clear : 'a t -> unit

(** Fold over the elements in unspecified order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
