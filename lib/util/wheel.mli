(** Hierarchical timer wheel: the O(1) event queue behind the
    simulation engine.

    A wheel holds cells keyed by an absolute integer [time] and returns
    them in nondecreasing time order, ties broken by insertion order —
    exactly the [(time, seq)] order of the engine's binary heap, with
    every operation O(1) instead of O(log n):

    - {!add} computes the cell's level/slot from the XOR of its time
      with the wheel cursor (at most {!levels} probes) and appends it
      to an intrusive doubly-linked slot list;
    - {!remove} unlinks the cell in place — no lazy deletion, no
      compaction pass, no tombstones left for [pop] to skip;
    - {!pop} finds the next occupied slot through one 32-bit occupancy
      bitmap per level and, on crossing a slot-span boundary, cascades
      the higher-level slot's cells down one or more levels (each cell
      cascades at most [levels - 1] times over its whole life, so
      expiry is amortized O(1)).

    {2 Slot layout}

    Level [l] has 32 slots of [32{^l}] ticks each; level 0 slots are
    single ticks. A cell for time [T] under cursor [C] lives at the
    lowest level whose slot span contains both, i.e. the smallest [l]
    with [T lsr (5*(l+1)) = C lsr (5*(l+1))], in slot
    [(T lsr (5*l)) land 31]. Thirteen levels cover the full 63-bit
    [int] range. Because placement demands a shared high prefix with
    the cursor (never a mere delta bound), a slot never mixes cells
    from two wheel rotations, and a level-0 slot holds cells of exactly
    one time value.

    {2 Determinism}

    Within any slot, cells for the same time appear in insertion
    order: [add] appends, and a cascade re-buckets the slot's list
    front to back into lower-level slots that are provably empty at
    that moment (the cursor only enters a span by cascading it, and
    every lower level was drained before the cascade fired). Draining
    a level-0 slot front to back therefore replays the exact global
    insertion order for that tick. *)

type 'a t

(** A queued entry. The cell is the handle for {!remove}: engines keep
    it inside their cancellable-timer handles. *)
type 'a cell

(** Bits per level (5), slots per level (32), and level count (13). *)
val bits : int

val slot_count : int
val levels : int

(** [create ~dummy ()] is an empty wheel with its cursor at 0. [dummy]
    fills the slot sentinels and is never returned. *)
val create : dummy:'a -> unit -> 'a t

(** Number of queued cells. *)
val length : 'a t -> int

(** The wheel's cursor: the latest tick it has drained up to. Always
    at most the time of every queued cell. *)
val cursor : 'a t -> int

(** [add t ~time v] queues [v] at absolute tick [time] and returns its
    cell. O(1). Raises [Invalid_argument] if [time] precedes the
    cursor or is negative. *)
val add : 'a t -> time:int -> 'a -> 'a cell

(** The cell's scheduled tick. *)
val time : 'a cell -> int

(** The queued value. *)
val value : 'a cell -> 'a

(** [remove t cell] unlinks a queued cell in O(1). Returns [false] if
    the cell was already popped or removed (idempotent). *)
val remove : 'a t -> 'a cell -> bool

(** [pop t ~limit] unlinks and returns the earliest cell with
    [time <= limit], advancing the cursor to its tick. Returns [None]
    — without advancing the cursor past [limit] — when every queued
    cell is later than [limit] or the wheel is empty. Amortized O(1)
    plus the cascades the crossed span boundaries require. *)
val pop : 'a t -> limit:int -> 'a cell option

(** [iter f t] applies [f] to every queued cell, in no particular
    order. Used to re-stamp restored timer handles. *)
val iter : ('a cell -> unit) -> 'a t -> unit
