(** Streaming and batch statistics used by the experiment harness. *)

(** Online accumulator (Welford) for mean/variance plus min/max. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Sample standard deviation; 0 for fewer than two samples. *)
  val stddev : t -> float

  val min : t -> float
  val max : t -> float

  (** [None] when no samples have been added; the raw [min]/[max] of an
      empty accumulator are [infinity]/[neg_infinity], which cannot be
      serialized as JSON. *)
  val min_opt : t -> float option

  val max_opt : t -> float option
  val sum : t -> float

  (** Closure-free image of the accumulator, for checkpoint/restore.
      The fields are Welford's running moments, so a restored
      accumulator continues the stream exactly. *)
  type state = {
    s_n : int;
    s_mean : float;
    s_m2 : float;
    s_min : float;
    s_max : float;
    s_sum : float;
  }

  val dump : t -> state
  val restore : t -> state -> unit
end

(** [mean xs] of a list; 0 for the empty list. *)
val mean : float list -> float

(** [percentile p xs] with [p] in [0,100], by linear interpolation on
    the sorted sample. Raises [Invalid_argument] on the empty list. *)
val percentile : float -> float list -> float

(** Fixed-bucket histogram. *)
module Histogram : sig
  type t

  (** [create ~buckets] with upper bucket bounds in increasing order;
      an implicit overflow bucket is added at the end. *)
  val create : buckets:float array -> t

  val add : t -> float -> unit

  (** Counts per bucket, including the final overflow bucket. *)
  val counts : t -> int array

  val total : t -> int
end
