(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [t]
    so that runs are reproducible from a seed, independent of global
    state and evaluation order. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)
val create : int64 -> t

(** [split t] derives an independent generator; the parent stream
    advances by one step. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t arr] is a uniformly drawn element. Raises on empty array. *)
val choose : t -> 'a array -> 'a

(** The generator's cursor. SplitMix64 carries its whole state in one
    word, so a snapshot is just that word; restoring it resumes the
    stream at exactly the draw where the snapshot was taken. *)
type snapshot = int64

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
