(** Discrete-event simulation engine.

    Time is measured in cycles (an [int64], matching the paper's 2 GHz
    clock). Events scheduled for the same cycle run in scheduling order,
    so a run is fully deterministic.

    {2 Cancellable timers}

    Protocol timeouts are almost always cancelled (a retransmission
    timer dies the moment the ack arrives), so [at_cancellable] /
    [after_cancellable] return a {!handle} that [cancel] retires
    lazily: the slot is marked dead, [run] discards it when it surfaces
    instead of executing it, and the queue compacts once dead slots
    outnumber live ones. Scheduling order, sequence numbering, and the
    clock are exactly as if the cancelled event had fired as a no-op,
    so cancellation is invisible to simulated time — it only shrinks
    the heap and the events actually executed. *)

type t

(** A cancellable event. Handles are single-engine: passing a handle to
    a different engine's [cancel] is undefined. *)
type handle

(** Fresh engine at cycle 0. When [obs] is given, the engine registers
    [engine.events_cancelled] and [engine.events_skipped] counters and
    an [engine.heap_peak] gauge there. *)
val create : ?obs:Semper_obs.Obs.Registry.t -> unit -> t

(** Current simulation time in cycles. *)
val now : t -> int64

(** [at t time f] schedules [f] to run at absolute cycle [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val at : t -> int64 -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] to run [delay] cycles from now.
    Raises [Invalid_argument] on a negative delay. *)
val after : t -> int64 -> (unit -> unit) -> unit

(** As [at], returning a handle that {!cancel} accepts. *)
val at_cancellable : t -> int64 -> (unit -> unit) -> handle

(** As [after], returning a handle that {!cancel} accepts. *)
val after_cancellable : t -> int64 -> (unit -> unit) -> handle

(** Retire a scheduled event. Idempotent; a no-op once the event has
    fired. The event's callback is never called after [cancel]
    returns. *)
val cancel : t -> handle -> unit

(** Run until the event queue is empty, or until the optional [until]
    cycle (events strictly after it stay queued). Returns the number of
    events executed by this call (cancelled events are discarded, not
    executed, and not counted). *)
val run : ?until:int64 -> t -> int

(** Total events executed since creation (excludes cancelled ones). *)
val events_processed : t -> int

(** Events retired via {!cancel} before firing. *)
val events_cancelled : t -> int

(** Cancelled events discarded at the top of the queue by {!run} (the
    rest are removed wholesale by compaction). *)
val events_skipped : t -> int

(** Largest queue length observed, counting not-yet-collected cancelled
    slots — the simulator's memory high-water mark. *)
val heap_peak : t -> int

(** Live (non-cancelled) events currently queued. *)
val pending : t -> int

(** Process-wide totals over every engine ever created, including those
    running on other domains during parallel sweeps. Used by the
    wall-clock benchmark; flushed at the end of each [run] call. *)
module Totals : sig
  val processed : unit -> int
  val cancelled : unit -> int
  val skipped : unit -> int

  (** Maximum {!heap_peak} over all engines so far. *)
  val heap_peak : unit -> int
end
