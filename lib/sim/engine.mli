(** Discrete-event simulation engine.

    Time is measured in cycles (an [int64], matching the paper's 2 GHz
    clock). Events scheduled for the same cycle run in scheduling order,
    so a run is fully deterministic — the delivery order is exactly
    [(time, seq)] under either queue backend.

    {2 Queue backends}

    The default backend is a hierarchical timer wheel
    ({!Semper_util.Wheel}): O(1) schedule, O(1) cancel (the event's
    intrusive cell is unlinked eagerly) and amortized O(1) expiry, so
    engine cost no longer grows with the number of pending events. The
    original binary heap stays available as [Binary_heap] — it is the
    differential-testing oracle (see [test_engine_model]) and keeps
    the lazy-deletion semantics documented below.

    {2 Cancellable timers}

    Protocol timeouts are almost always cancelled (a retransmission
    timer dies the moment the ack arrives), so [at_cancellable] /
    [after_cancellable] return a {!handle} that [cancel] retires. In
    wheel mode the cancelled event leaves the queue immediately; in
    heap mode it is retired lazily: the slot is marked dead, [run]
    discards it when it surfaces instead of executing it, and the
    queue compacts once dead slots outnumber live ones. Either way,
    scheduling order, sequence numbering, and the clock are exactly as
    if the cancelled event had fired as a no-op, so cancellation is
    invisible to simulated time — it only shrinks the queue and the
    events actually executed. *)

type t

(** Queue backend selector; see the module docs. *)
type queue_kind = Binary_heap | Timer_wheel

(** A cancellable event. Handles are single-engine: each handle is
    stamped with the issuing engine's instance id, and [cancel] raises
    [Invalid_argument] for a pending handle stamped by a different
    engine. Handles do {e not} survive a checkpoint restore: the
    restored object graph carries its own copies of every handle, and
    {!rebind} stamps those copies with the restored engine's fresh id —
    any handle from the pre-restore life is permanently foreign to it. *)
type handle

(** Fresh engine at cycle 0 using the given [queue] backend (default
    [Timer_wheel]). When [obs] is given, the engine registers
    [engine.events_cancelled] and [engine.events_skipped] counters and
    an [engine.heap_peak] gauge there. *)
val create : ?obs:Semper_obs.Obs.Registry.t -> ?queue:queue_kind -> unit -> t

(** The backend this engine was created with. *)
val queue_kind : t -> queue_kind

(** Current simulation time in cycles. *)
val now : t -> int64

(** [at t time f] schedules [f] to run at absolute cycle [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val at : t -> int64 -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] to run [delay] cycles from now.
    Raises [Invalid_argument] on a negative delay. *)
val after : t -> int64 -> (unit -> unit) -> unit

(** As [at], returning a handle that {!cancel} accepts. *)
val at_cancellable : t -> int64 -> (unit -> unit) -> handle

(** As [after], returning a handle that {!cancel} accepts. *)
val after_cancellable : t -> int64 -> (unit -> unit) -> handle

(** Retire a scheduled event. Idempotent; a no-op once the event has
    fired. The event's callback is never called after [cancel]
    returns. Raises [Invalid_argument] if a still-pending handle was
    issued by a different engine instance (see {!type-handle}). *)
val cancel : t -> handle -> unit

(** Give the engine a fresh instance id and re-stamp every pending
    handle in its queue with it. Call this on an engine that was just
    materialised from a checkpoint image: it makes the restored copies
    of handles valid for this engine while rendering all pre-restore
    handles (which may alias a still-live original engine) foreign. *)
val rebind : t -> unit

(** Run until the event queue is empty, or until the optional [until]
    cycle (events strictly after it stay queued). Returns the number of
    events executed by this call (cancelled events are discarded, not
    executed, and not counted). *)
val run : ?until:int64 -> t -> int

(** Total events executed since creation (excludes cancelled ones). *)
val events_processed : t -> int

(** Events retired via {!cancel} before firing. *)
val events_cancelled : t -> int

(** Heap mode: cancelled events discarded at the top of the queue by
    {!run} (the rest are removed wholesale by compaction). Always 0 in
    wheel mode — the wheel unlinks cancelled events eagerly. *)
val events_skipped : t -> int

(** Largest queue occupancy observed — the simulator's memory
    high-water mark. In heap mode this counts not-yet-collected
    cancelled slots; in wheel mode every counted event is live. *)
val heap_peak : t -> int

(** Live (non-cancelled) events currently queued. *)
val pending : t -> int

(** Closure-free image of the engine's scalar state (clock, sequence
    and event counters, horizon, queue length). The event queue itself
    carries closures and travels only inside whole-image checkpoints
    (see {!Checkpoint}); the snapshot is used to fingerprint a state
    and to re-synchronise counters after such a restore. *)
type snapshot = {
  s_clock : int64;
  s_next_seq : int;
  s_processed : int;
  s_dead : int;
      (** cancelled events the queue still accounts for (in wheel mode
          only their times remain, in the shadow dead-times queue) *)
  s_horizon : int64;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
  s_queued : int;  (** queued events including dead (cancelled) slots *)
}

val snapshot : t -> snapshot

(** Restore the scalar state captured by {!snapshot}. The queue is
    untouched, so when the snapshot has queued events the engine's
    current queue must already match it — [s_queued] is checked, and
    [s_next_seq] too, which catches control planes that moved on and
    drained back to the snapshot's queue length (possible under the
    wheel, whose cancels vanish eagerly); raises [Invalid_argument]
    otherwise. The intended caller restores the event queue via a
    whole-image checkpoint first. A {e quiescent} rewind — both the
    snapshot and the engine with empty queues — is always allowed:
    an empty queue carries no closures, so the restore is complete. Also rewinds the {!Totals} flush
    marks so work replayed after the restore is counted again rather
    than vanishing into a negative flush delta. *)
val restore : t -> snapshot -> unit

(** Process-wide totals over every engine ever created, including those
    running on other domains during parallel sweeps. Used by the
    wall-clock benchmark; flushed at the end of each [run] call. *)
module Totals : sig
  val processed : unit -> int
  val cancelled : unit -> int
  val skipped : unit -> int

  (** Maximum {!heap_peak} over all engines so far. *)
  val heap_peak : unit -> int

  (** Restart the {!heap_peak} high-water mark from zero. Benchmarks
      that report a peak per measured phase (the scale rows) call this
      at each phase boundary, so an earlier, larger phase — or an
      unmeasured warm-up — cannot mask a later one. Engines that are
      mid-[run] flush their own peak again when that call returns. *)
  val reset_heap_peak : unit -> unit
end
