(** Discrete-event simulation engine.

    Time is measured in cycles (an [int64], matching the paper's 2 GHz
    clock). Events scheduled for the same cycle run in scheduling order,
    so a run is fully deterministic.

    {2 Cancellable timers}

    Protocol timeouts are almost always cancelled (a retransmission
    timer dies the moment the ack arrives), so [at_cancellable] /
    [after_cancellable] return a {!handle} that [cancel] retires
    lazily: the slot is marked dead, [run] discards it when it surfaces
    instead of executing it, and the queue compacts once dead slots
    outnumber live ones. Scheduling order, sequence numbering, and the
    clock are exactly as if the cancelled event had fired as a no-op,
    so cancellation is invisible to simulated time — it only shrinks
    the heap and the events actually executed. *)

type t

(** A cancellable event. Handles are single-engine: each handle is
    stamped with the issuing engine's instance id, and [cancel] raises
    [Invalid_argument] for a pending handle stamped by a different
    engine. Handles do {e not} survive a checkpoint restore: the
    restored object graph carries its own copies of every handle, and
    {!rebind} stamps those copies with the restored engine's fresh id —
    any handle from the pre-restore life is permanently foreign to it. *)
type handle

(** Fresh engine at cycle 0. When [obs] is given, the engine registers
    [engine.events_cancelled] and [engine.events_skipped] counters and
    an [engine.heap_peak] gauge there. *)
val create : ?obs:Semper_obs.Obs.Registry.t -> unit -> t

(** Current simulation time in cycles. *)
val now : t -> int64

(** [at t time f] schedules [f] to run at absolute cycle [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val at : t -> int64 -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] to run [delay] cycles from now.
    Raises [Invalid_argument] on a negative delay. *)
val after : t -> int64 -> (unit -> unit) -> unit

(** As [at], returning a handle that {!cancel} accepts. *)
val at_cancellable : t -> int64 -> (unit -> unit) -> handle

(** As [after], returning a handle that {!cancel} accepts. *)
val after_cancellable : t -> int64 -> (unit -> unit) -> handle

(** Retire a scheduled event. Idempotent; a no-op once the event has
    fired. The event's callback is never called after [cancel]
    returns. Raises [Invalid_argument] if a still-pending handle was
    issued by a different engine instance (see {!type-handle}). *)
val cancel : t -> handle -> unit

(** Give the engine a fresh instance id and re-stamp every pending
    handle in its queue with it. Call this on an engine that was just
    materialised from a checkpoint image: it makes the restored copies
    of handles valid for this engine while rendering all pre-restore
    handles (which may alias a still-live original engine) foreign. *)
val rebind : t -> unit

(** Run until the event queue is empty, or until the optional [until]
    cycle (events strictly after it stay queued). Returns the number of
    events executed by this call (cancelled events are discarded, not
    executed, and not counted). *)
val run : ?until:int64 -> t -> int

(** Total events executed since creation (excludes cancelled ones). *)
val events_processed : t -> int

(** Events retired via {!cancel} before firing. *)
val events_cancelled : t -> int

(** Cancelled events discarded at the top of the queue by {!run} (the
    rest are removed wholesale by compaction). *)
val events_skipped : t -> int

(** Largest queue length observed, counting not-yet-collected cancelled
    slots — the simulator's memory high-water mark. *)
val heap_peak : t -> int

(** Live (non-cancelled) events currently queued. *)
val pending : t -> int

(** Closure-free image of the engine's scalar state (clock, sequence
    and event counters, horizon, queue length). The event queue itself
    carries closures and travels only inside whole-image checkpoints
    (see {!Checkpoint}); the snapshot is used to fingerprint a state
    and to re-synchronise counters after such a restore. *)
type snapshot = {
  s_clock : int64;
  s_next_seq : int;
  s_processed : int;
  s_dead : int;
  s_horizon : int64;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
  s_queued : int;  (** queued events including dead (cancelled) slots *)
}

val snapshot : t -> snapshot

(** Restore the scalar state captured by {!snapshot}. The queue is
    untouched, so the engine's current queue must already match the
    snapshot ([s_queued] is checked; raises [Invalid_argument]
    otherwise) — the intended caller restores the event queue via a
    whole-image checkpoint first. *)
val restore : t -> snapshot -> unit

(** Process-wide totals over every engine ever created, including those
    running on other domains during parallel sweeps. Used by the
    wall-clock benchmark; flushed at the end of each [run] call. *)
module Totals : sig
  val processed : unit -> int
  val cancelled : unit -> int
  val skipped : unit -> int

  (** Maximum {!heap_peak} over all engines so far. *)
  val heap_peak : unit -> int
end
