(* Versioned binary checkpoint images.

   An image is a framed container around one marshaled OCaml value:

     magic | header (Marshal, no flags) | payload (Marshal, Closures)

   The payload is written with [Marshal.Closures] in a single call, so
   the whole object graph — engine event queue, kernels, VPEs, the
   closures inside pending protocol operations — is captured with all
   sharing and physical equality intact. The OCaml runtime embeds a
   digest of the program's code in closure blocks, which makes images
   same-binary artifacts by construction: a rebuilt binary refuses to
   read them (reported here as a load error, not a crash). The header
   carries our own format version and payload digest on top of that,
   so stale or truncated images are rejected with a message instead of
   being misread. *)

let magic = "SEMCKPT1"
let format_version = 1

type header = {
  version : int;
  kind : string;
  label : string;
  position : int64;
  fingerprint : string;
  payload_digest : string;
}

let save ?(version = format_version) ~kind ?(label = "") ?(position = 0L) ?(fingerprint = "")
    payload =
  let body = Marshal.to_bytes payload [ Marshal.Closures ] in
  let header =
    {
      version;
      kind;
      label;
      position;
      fingerprint;
      payload_digest = Digest.bytes body;
    }
  in
  let head = Marshal.to_bytes header [] in
  let buf = Buffer.create (String.length magic + Bytes.length head + Bytes.length body) in
  Buffer.add_string buf magic;
  Buffer.add_bytes buf head;
  Buffer.add_bytes buf body;
  Buffer.to_bytes buf

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let header_at image =
  let mlen = String.length magic in
  if Bytes.length image < mlen || Bytes.sub_string image 0 mlen <> magic then
    Error "not a SemperOS checkpoint image (bad magic)"
  else
    match Marshal.from_bytes image mlen with
    | (header : header) -> Ok (header, mlen + Marshal.total_size image mlen)
    | exception _ -> Error "corrupt checkpoint header"

let header_of_bytes image =
  let* header, _ = header_at image in
  Ok header

let load ~kind image =
  let* header, body_off = header_at image in
  if header.version <> format_version then
    Error
      (Printf.sprintf "checkpoint format version %d, this build reads version %d — re-record"
         header.version format_version)
  else if header.kind <> kind then
    Error (Printf.sprintf "checkpoint holds a %S run, expected %S" header.kind kind)
  else begin
    let body = Bytes.sub image body_off (Bytes.length image - body_off) in
    if Digest.bytes body <> header.payload_digest then
      Error "checkpoint payload digest mismatch (truncated or corrupted image)"
    else
      match Marshal.from_bytes body 0 with
      | payload -> Ok (header, payload)
      | exception _ ->
        Error
          "checkpoint payload unreadable — images embed the writing binary's code digest and \
           can only be restored by the same build; re-record after rebuilding"
  end

let write path image =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc image)

let read path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let image = Bytes.create len in
        really_input ic image 0 len;
        Ok image)
