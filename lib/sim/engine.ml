type event = { time : int64; seq : int; run : unit -> unit }

type t = {
  mutable clock : int64;
  mutable next_seq : int;
  mutable processed : int;
  queue : event Semper_util.Heap.t;
}

let compare_event a b =
  let c = Int64.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let dummy_event = { time = 0L; seq = -1; run = (fun () -> ()) }

let create () =
  {
    clock = 0L;
    next_seq = 0;
    processed = 0;
    queue = Semper_util.Heap.create ~dummy:dummy_event ~compare:compare_event;
  }

let now t = t.clock

let at t time run =
  if Int64.compare time t.clock < 0 then invalid_arg "Engine.at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Semper_util.Heap.push t.queue { time; seq; run }

let after t delay run =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.after: negative delay";
  at t (Int64.add t.clock delay) run

let run ?until t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Semper_util.Heap.peek t.queue with
    | None ->
      (* Even when the queue drains before the bound, the caller asked
         for time to pass up to [until]: advance the clock so that
         back-to-back bounded runs observe a monotone [now]. *)
      (match until with
      | Some limit when Int64.compare limit t.clock > 0 -> t.clock <- limit
      | _ -> ());
      continue := false
    | Some ev ->
      (match until with
      | Some limit when Int64.compare ev.time limit > 0 ->
        (* Leave future events queued but advance the clock to the limit
           so that repeated bounded runs make progress. The clock never
           moves backwards, even for a limit in the past. *)
        if Int64.compare limit t.clock > 0 then t.clock <- limit;
        continue := false
      | Some _ | None ->
        let ev = Semper_util.Heap.pop t.queue in
        t.clock <- ev.time;
        t.processed <- t.processed + 1;
        incr count;
        ev.run ())
  done;
  !count

let events_processed t = t.processed
let pending t = Semper_util.Heap.length t.queue
