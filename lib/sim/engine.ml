module Obs = Semper_obs.Obs
module Heap = Semper_util.Heap
module Wheel = Semper_util.Wheel

(* Two interchangeable queue backends with identical (time, seq)
   delivery order:

   - [Timer_wheel] (the default): a hierarchical timer wheel with O(1)
     schedule, O(1) eager cancel (the handle unlinks its intrusive
     cell directly) and amortized O(1) expiry. Cancelled events leave
     the queue immediately, so [events_skipped] stays 0 and [pending]
     equals the live queue length; only their times linger, in a
     shadow queue that keeps the clock advancing exactly as under the
     heap's lazy deletion (see [wheel_step]).

   - [Binary_heap]: the original O(log n) heap with lazy deletion —
     [cancel] flips the handle state and the event is discarded when
     it surfaces at the top of the heap (or earlier, by Floyd
     compaction once dead slots outnumber live ones). Kept as the
     differential-testing oracle; see test_engine_model. *)
type queue_kind = Binary_heap | Timer_wheel

type handle_state = H_pending | H_fired | H_cancelled

(* [owner] ties a pending handle to the engine instance that issued it,
   so that [cancel] can reject handles from another engine (or from a
   pre-restore life of this engine) instead of silently corrupting the
   dead-event accounting. Engines get their id from a process-wide
   counter; [rebind] re-stamps a restored engine and its queued
   handles with a fresh id. [wcell] is the event's wheel cell in
   wheel mode ([Wnone] in heap mode), giving [cancel] its O(1)
   unlink; it travels inside checkpoint images by marshalled sharing,
   so a restored handle still points into the restored wheel. *)
type handle = {
  mutable state : handle_state;
  mutable owner : int;
  mutable wcell : wref;
}

and wref = Wnone | Wcell of event Wheel.cell

and event = {
  time : int64;
  seq : int;
  run : unit -> unit;
  (* [None] for the plain [at]/[after] events, which avoids allocating
     a handle on the fast path carrying almost all simulation traffic. *)
  cell : handle option;
}

(* Wheel mode pairs the wheel with a min-heap of the *times* of
   cancelled events. The cells unlink eagerly, but the heap backend
   holds dead events until they surface (or compaction), and that
   residue gates the post-drain horizon catch-up of the clock; the
   shadow queue lets wheel mode advance the clock bit-identically
   (see [wheel_step]). *)
type queue = Qheap of event Heap.t | Qwheel of event Wheel.t * int64 Heap.t

type t = {
  mutable uid : int;
  mutable clock : int64;
  mutable next_seq : int;
  mutable processed : int;
  (* Cancelled events the queue is still accounting for. Heap mode:
     dead events physically in the heap (lazy deletion). Wheel mode:
     entries in the shadow dead-times queue — the cells themselves
     unlink eagerly, but the count and times are mirrored so the
     clock advances exactly as under the heap. *)
  mutable dead : int;
  (* Latest time ever scheduled, dead or alive. When the queue drains,
     the clock advances here: in the pre-cancellation engine the
     last-popped event was exactly the latest-scheduled one (cancelled
     timers fired as no-ops), so this keeps post-drain clocks — and
     therefore every simulated-cycle measurement — byte-identical. *)
  mutable horizon : int64;
  mutable cancelled : int;
  mutable skipped : int;
  (* Heap mode: largest raw heap length (live + dead). Wheel mode:
     largest live occupancy — dead slots don't exist there. *)
  mutable heap_peak : int;
  (* High-water marks already pushed into [Totals]. *)
  mutable flushed_processed : int;
  mutable flushed_cancelled : int;
  mutable flushed_skipped : int;
  queue : queue;
  ctr_cancelled : Obs.Registry.counter option;
  ctr_skipped : Obs.Registry.counter option;
}

(* Process-wide totals across every engine, for wall-clock benchmarking
   of the simulator itself (the per-run registries die with their
   systems, and sweeps fan systems out across domains — hence atomics).
   Flushed from the per-engine fields at the end of each [run] call,
   not per event. *)
module Totals = struct
  let processed_a = Atomic.make 0
  let cancelled_a = Atomic.make 0
  let skipped_a = Atomic.make 0
  let heap_peak_a = Atomic.make 0

  let processed () = Atomic.get processed_a
  let cancelled () = Atomic.get cancelled_a
  let skipped () = Atomic.get skipped_a
  let heap_peak () = Atomic.get heap_peak_a
  let reset_heap_peak () = Atomic.set heap_peak_a 0

  let add a n = if n > 0 then ignore (Atomic.fetch_and_add a n)

  let rec max_to a n =
    let cur = Atomic.get a in
    if n > cur && not (Atomic.compare_and_set a cur n) then max_to a n
end

let compare_event a b =
  let c = Int64.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let dummy_event = { time = 0L; seq = -1; run = (fun () -> ()); cell = None }

(* Engine instance ids. Atomic because sweeps create engines on many
   domains at once; the ids only need to be distinct, not dense. *)
let next_uid = Atomic.make 0

let create ?obs ?(queue = Timer_wheel) () =
  let ctr name = Option.map (fun r -> Obs.Registry.counter r ("engine." ^ name)) obs in
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      clock = 0L;
      next_seq = 0;
      processed = 0;
      dead = 0;
      horizon = 0L;
      cancelled = 0;
      skipped = 0;
      heap_peak = 0;
      flushed_processed = 0;
      flushed_cancelled = 0;
      flushed_skipped = 0;
      queue =
        (match queue with
        | Binary_heap -> Qheap (Heap.create ~dummy:dummy_event ~compare:compare_event)
        | Timer_wheel ->
          Qwheel
            ( Wheel.create ~dummy:dummy_event (),
              Heap.create ~dummy:0L ~compare:Int64.compare ));
      ctr_cancelled = ctr "events_cancelled";
      ctr_skipped = ctr "events_skipped";
    }
  in
  Option.iter
    (fun r -> Obs.Registry.gauge r "engine.heap_peak" (fun () -> float_of_int t.heap_peak))
    obs;
  t

let queue_kind t = match t.queue with Qheap _ -> Binary_heap | Qwheel _ -> Timer_wheel
let now t = t.clock

let queue_length t =
  match t.queue with Qheap h -> Heap.length h | Qwheel (w, _) -> Wheel.length w

(* Queue length as the heap backend would report it: live plus dead.
   This is the figure the snapshot records, so the two backends agree
   on what a quiescent engine is. *)
let raw_length t =
  match t.queue with
  | Qheap h -> Heap.length h
  | Qwheel (w, d) -> Wheel.length w + Heap.length d

(* Simulated cycles are int64 for interface stability, but the wheel
   indexes by native int: on 64-bit hosts that caps the clock at 2^62
   cycles ≈ 73 years of simulated 2 GHz time, far past any run. *)
let wheel_time time =
  if Int64.compare time (Int64.of_int max_int) > 0 then
    invalid_arg "Engine.at: time exceeds the timer-wheel range"
  else Int64.to_int time

let schedule t time run cell =
  if Int64.compare time t.clock < 0 then invalid_arg "Engine.at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if Int64.compare time t.horizon > 0 then t.horizon <- time;
  let ev = { time; seq; run; cell } in
  (match t.queue with
  | Qheap h -> Heap.push h ev
  | Qwheel (w, _) ->
    let c = Wheel.add w ~time:(wheel_time time) ev in
    (match cell with Some hd -> hd.wcell <- Wcell c | None -> ()));
  let len = queue_length t in
  if len > t.heap_peak then t.heap_peak <- len

let at t time run = schedule t time run None

let after t delay run =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.after: negative delay";
  at t (Int64.add t.clock delay) run

let at_cancellable t time run =
  let h = { state = H_pending; owner = t.uid; wcell = Wnone } in
  schedule t time run (Some h);
  h

let after_cancellable t delay run =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.after: negative delay";
  at_cancellable t (Int64.add t.clock delay) run

let is_dead ev = match ev.cell with Some h -> h.state = H_cancelled | None -> false

(* Heap mode only: purge cancelled events once they outnumber the live
   ones, so the heap tracks in-flight work rather than everything ever
   scheduled. The 50% threshold makes compaction O(1) amortised per
   cancellation; the size floor avoids churn on tiny queues. *)
let maybe_compact t h =
  let len = Heap.length h in
  if len >= 64 && 2 * t.dead > len then begin
    Heap.filter_in_place (fun ev -> not (is_dead ev)) h;
    t.dead <- 0
  end

let cancel t h =
  match h.state with
  | H_fired | H_cancelled -> ()
  | H_pending ->
    if h.owner <> t.uid then
      invalid_arg "Engine.cancel: handle belongs to a different engine (or a stale restore)";
    h.state <- H_cancelled;
    t.cancelled <- t.cancelled + 1;
    Option.iter Obs.Registry.incr t.ctr_cancelled;
    (match t.queue with
    | Qheap hp ->
      t.dead <- t.dead + 1;
      maybe_compact t hp
    | Qwheel (w, d) ->
      (match h.wcell with
      | Wcell c ->
        let tm = Int64.of_int (Wheel.time c) in
        ignore (Wheel.remove w c);
        h.wcell <- Wnone;
        (* Shadow the heap's lazy deletion: record the dead event's
           time so bounded runs hold the clock back exactly as the
           heap does (see [wheel_step]), and clear the shadow on the
           same threshold as [maybe_compact] — the raw length here
           equals the heap's [Heap.length] because the heap would
           still be holding both the live events and the dead ones. *)
        Heap.push d tm;
        t.dead <- t.dead + 1;
        let raw = Wheel.length w + t.dead in
        if raw >= 64 && 2 * t.dead > raw then begin
          Heap.clear d;
          t.dead <- 0
        end
      | Wnone ->
        (* A pending wheel-mode handle always carries its cell;
           reaching here means the handle was forged or crossed
           engines past the owner check. *)
        invalid_arg "Engine.cancel: pending handle has no queue cell"))

(* One step of the heap-mode run loop: returns [true] while events may
   remain to process within [until]. *)
let heap_step t h until =
  match Heap.peek h with
  | None ->
    (* Queue drained: catch the clock up to the latest-scheduled
       event (see [horizon]) and then to the requested bound, so that
       back-to-back bounded runs observe a monotone [now]. *)
    if Int64.compare t.horizon t.clock > 0 then t.clock <- t.horizon;
    (match until with
    | Some limit when Int64.compare limit t.clock > 0 -> t.clock <- limit
    | _ -> ());
    None
  | Some ev ->
    (match until with
    | Some limit when Int64.compare ev.time limit > 0 ->
      (* Leave future events queued but advance the clock to the limit
         so that repeated bounded runs make progress. The clock never
         moves backwards, even for a limit in the past. *)
      if Int64.compare limit t.clock > 0 then t.clock <- limit;
      None
    | Some _ | None ->
      let ev = Heap.pop h in
      if is_dead ev then begin
        t.dead <- t.dead - 1;
        t.skipped <- t.skipped + 1;
        Option.iter Obs.Registry.incr t.ctr_skipped;
        Some None
      end
      else Some (Some ev))

(* Wheel-mode step. The wheel has no dead slots to skip, so a popped
   cell is always live; [pop ~limit] refuses to advance its cursor
   past the limit, keeping the cursor <= clock invariant that lets a
   later [schedule] at the current clock land in front of it.

   The clock contract is the heap's: the clock only catches up to
   [horizon] once the raw queue — dead events included — has drained.
   The heap discards a dead event only when it surfaces within the
   run's limit, so a cancelled timer beyond the limit still holds the
   clock back; [dead_times] replays that behaviour from the shadow
   record of cancelled times. *)
let wheel_step t w dead_times until =
  let limit =
    match until with
    | Some limit when Int64.compare limit (Int64.of_int max_int) < 0 ->
      Int64.to_int limit
    | Some _ | None -> max_int
  in
  match Wheel.pop w ~limit with
  | Some c -> Some (Some (Wheel.value c))
  | None ->
    (* No live event within the limit: the heap would now surface and
       discard every dead event up to the limit before deciding
       whether the queue has drained. *)
    let within tm =
      match until with Some l -> Int64.compare tm l <= 0 | None -> true
    in
    let rec drop () =
      match Heap.peek dead_times with
      | Some tm when within tm ->
        ignore (Heap.pop dead_times);
        t.dead <- t.dead - 1;
        drop ()
      | Some _ | None -> ()
    in
    drop ();
    if Wheel.length w = 0 && Heap.length dead_times = 0 then begin
      if Int64.compare t.horizon t.clock > 0 then t.clock <- t.horizon;
      match until with
      | Some limit when Int64.compare limit t.clock > 0 ->
        t.clock <- limit;
        None
      | _ -> None
    end
    else begin
      (match until with
      | Some limit when Int64.compare limit t.clock > 0 -> t.clock <- limit
      | _ -> ());
      None
    end

let run ?until t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    let step =
      match t.queue with
      | Qheap h -> heap_step t h until
      | Qwheel (w, d) -> wheel_step t w d until
    in
    match step with
    | None -> continue := false
    | Some None -> () (* dead event skipped; keep going *)
    | Some (Some ev) ->
      (match ev.cell with
      | Some h ->
        h.state <- H_fired;
        h.wcell <- Wnone
      | None -> ());
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      incr count;
      ev.run ()
  done;
  Totals.add Totals.processed_a (t.processed - t.flushed_processed);
  Totals.add Totals.cancelled_a (t.cancelled - t.flushed_cancelled);
  Totals.add Totals.skipped_a (t.skipped - t.flushed_skipped);
  t.flushed_processed <- t.processed;
  t.flushed_cancelled <- t.cancelled;
  t.flushed_skipped <- t.skipped;
  Totals.max_to Totals.heap_peak_a t.heap_peak;
  !count

let events_processed t = t.processed
let events_cancelled t = t.cancelled
let events_skipped t = t.skipped
let heap_peak t = t.heap_peak
let pending t =
  match t.queue with
  | Qheap h -> Heap.length h - t.dead
  | Qwheel (w, _) -> Wheel.length w

let rebind t =
  t.uid <- Atomic.fetch_and_add next_uid 1;
  (* Every still-pending handle sits in the queue (a pending event is by
     definition scheduled), so walking the queue re-stamps them all.
     Fired and cancelled cells are left alone: [cancel] no-ops on them
     before it ever looks at the owner. *)
  let restamp ev =
    match ev.cell with
    | Some h when h.state = H_pending -> h.owner <- t.uid
    | Some _ | None -> ()
  in
  match t.queue with
  | Qheap h -> Heap.fold (fun () ev -> restamp ev) () h
  | Qwheel (w, _) -> Wheel.iter (fun c -> restamp (Wheel.value c)) w

type snapshot = {
  s_clock : int64;
  s_next_seq : int;
  s_processed : int;
  s_dead : int;
  s_horizon : int64;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
  s_queued : int;
}

let snapshot t =
  {
    s_clock = t.clock;
    s_next_seq = t.next_seq;
    s_processed = t.processed;
    s_dead = t.dead;
    s_horizon = t.horizon;
    s_cancelled = t.cancelled;
    s_skipped = t.skipped;
    s_heap_peak = t.heap_peak;
    s_queued = raw_length t;
  }

let restore t s =
  if raw_length t <> s.s_queued then
    invalid_arg "Engine.restore: queue length does not match the snapshot";
  (* A non-empty queue carries closures the snapshot cannot describe,
     so it must be byte-for-byte the snapshot's queue already (whole-
     image checkpoint first); equal length is the cheap check and the
     sequence counter catches control planes that merely drained back
     to the same length — possible under the wheel, whose cancels
     vanish eagerly. An empty queue is different: [s_queued = 0] fully
     describes it, so rewinding a quiescent engine to a quiescent
     snapshot is complete and allowed even though [next_seq] moved. *)
  if s.s_queued > 0 && t.next_seq <> s.s_next_seq then
    invalid_arg "Engine.restore: engine scheduled events since the snapshot";
  t.clock <- s.s_clock;
  t.next_seq <- s.s_next_seq;
  t.processed <- s.s_processed;
  t.dead <- s.s_dead;
  t.horizon <- s.s_horizon;
  t.cancelled <- s.s_cancelled;
  t.skipped <- s.s_skipped;
  t.heap_peak <- s.s_heap_peak;
  (* Rewinding to an earlier snapshot must also rewind the flushed
     high-water marks: the events between the snapshot and now will
     re-execute, and [Totals] should count that replayed work. Left at
     their pre-restore values the next flush delta goes negative and
     [Totals.add] silently drops everything up to the old mark. *)
  t.flushed_processed <- min t.flushed_processed s.s_processed;
  t.flushed_cancelled <- min t.flushed_cancelled s.s_cancelled;
  t.flushed_skipped <- min t.flushed_skipped s.s_skipped
