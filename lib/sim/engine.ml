module Obs = Semper_obs.Obs

(* Cancellable events use lazy deletion: [cancel] flips the handle
   state and the event is discarded when it surfaces at the top of the
   heap (or earlier, by compaction). The heap is never searched. *)
type handle_state = H_pending | H_fired | H_cancelled

(* [owner] ties a pending handle to the engine instance that issued it,
   so that [cancel] can reject handles from another engine (or from a
   pre-restore life of this engine) instead of silently corrupting the
   dead-event accounting. Engines get their id from a process-wide
   counter; [rebind] re-stamps a restored engine and its queued
   handles with a fresh id. *)
type handle = { mutable state : handle_state; mutable owner : int }

type event = {
  time : int64;
  seq : int;
  run : unit -> unit;
  (* [None] for the plain [at]/[after] events, which avoids allocating
     a handle on the fast path carrying almost all simulation traffic. *)
  cell : handle option;
}

type t = {
  mutable uid : int;
  mutable clock : int64;
  mutable next_seq : int;
  mutable processed : int;
  (* Cancelled events still sitting in the heap. *)
  mutable dead : int;
  (* Latest time ever scheduled, dead or alive. When the queue drains,
     the clock advances here: in the pre-cancellation engine the
     last-popped event was exactly the latest-scheduled one (cancelled
     timers fired as no-ops), so this keeps post-drain clocks — and
     therefore every simulated-cycle measurement — byte-identical. *)
  mutable horizon : int64;
  mutable cancelled : int;
  mutable skipped : int;
  mutable heap_peak : int;
  (* High-water marks already pushed into [Totals]. *)
  mutable flushed_processed : int;
  mutable flushed_cancelled : int;
  mutable flushed_skipped : int;
  queue : event Semper_util.Heap.t;
  ctr_cancelled : Obs.Registry.counter option;
  ctr_skipped : Obs.Registry.counter option;
}

(* Process-wide totals across every engine, for wall-clock benchmarking
   of the simulator itself (the per-run registries die with their
   systems, and sweeps fan systems out across domains — hence atomics).
   Flushed from the per-engine fields at the end of each [run] call,
   not per event. *)
module Totals = struct
  let processed_a = Atomic.make 0
  let cancelled_a = Atomic.make 0
  let skipped_a = Atomic.make 0
  let heap_peak_a = Atomic.make 0

  let processed () = Atomic.get processed_a
  let cancelled () = Atomic.get cancelled_a
  let skipped () = Atomic.get skipped_a
  let heap_peak () = Atomic.get heap_peak_a

  let add a n = if n > 0 then ignore (Atomic.fetch_and_add a n)

  let rec max_to a n =
    let cur = Atomic.get a in
    if n > cur && not (Atomic.compare_and_set a cur n) then max_to a n
end

let compare_event a b =
  let c = Int64.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let dummy_event = { time = 0L; seq = -1; run = (fun () -> ()); cell = None }

(* Engine instance ids. Atomic because sweeps create engines on many
   domains at once; the ids only need to be distinct, not dense. *)
let next_uid = Atomic.make 0

let create ?obs () =
  let ctr name = Option.map (fun r -> Obs.Registry.counter r ("engine." ^ name)) obs in
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      clock = 0L;
      next_seq = 0;
      processed = 0;
      dead = 0;
      horizon = 0L;
      cancelled = 0;
      skipped = 0;
      heap_peak = 0;
      flushed_processed = 0;
      flushed_cancelled = 0;
      flushed_skipped = 0;
      queue = Semper_util.Heap.create ~dummy:dummy_event ~compare:compare_event;
      ctr_cancelled = ctr "events_cancelled";
      ctr_skipped = ctr "events_skipped";
    }
  in
  Option.iter
    (fun r -> Obs.Registry.gauge r "engine.heap_peak" (fun () -> float_of_int t.heap_peak))
    obs;
  t

let now t = t.clock

let schedule t time run cell =
  if Int64.compare time t.clock < 0 then invalid_arg "Engine.at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if Int64.compare time t.horizon > 0 then t.horizon <- time;
  Semper_util.Heap.push t.queue { time; seq; run; cell };
  let len = Semper_util.Heap.length t.queue in
  if len > t.heap_peak then t.heap_peak <- len

let at t time run = schedule t time run None

let after t delay run =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.after: negative delay";
  at t (Int64.add t.clock delay) run

let at_cancellable t time run =
  let h = { state = H_pending; owner = t.uid } in
  schedule t time run (Some h);
  h

let after_cancellable t delay run =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.after: negative delay";
  at_cancellable t (Int64.add t.clock delay) run

let is_dead ev = match ev.cell with Some h -> h.state = H_cancelled | None -> false

(* Purge cancelled events once they outnumber the live ones, so the
   heap tracks in-flight work rather than everything ever scheduled.
   The 50% threshold makes compaction O(1) amortised per cancellation;
   the size floor avoids churn on tiny queues. *)
let maybe_compact t =
  let len = Semper_util.Heap.length t.queue in
  if len >= 64 && 2 * t.dead > len then begin
    Semper_util.Heap.filter_in_place (fun ev -> not (is_dead ev)) t.queue;
    t.dead <- 0
  end

let cancel t h =
  match h.state with
  | H_fired | H_cancelled -> ()
  | H_pending ->
    if h.owner <> t.uid then
      invalid_arg "Engine.cancel: handle belongs to a different engine (or a stale restore)";
    h.state <- H_cancelled;
    t.dead <- t.dead + 1;
    t.cancelled <- t.cancelled + 1;
    Option.iter Obs.Registry.incr t.ctr_cancelled;
    maybe_compact t

let run ?until t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Semper_util.Heap.peek t.queue with
    | None ->
      (* Queue drained: catch the clock up to the latest-scheduled
         event (see [horizon]) and then to the requested bound, so that
         back-to-back bounded runs observe a monotone [now]. *)
      if Int64.compare t.horizon t.clock > 0 then t.clock <- t.horizon;
      (match until with
      | Some limit when Int64.compare limit t.clock > 0 -> t.clock <- limit
      | _ -> ());
      continue := false
    | Some ev ->
      (match until with
      | Some limit when Int64.compare ev.time limit > 0 ->
        (* Leave future events queued but advance the clock to the limit
           so that repeated bounded runs make progress. The clock never
           moves backwards, even for a limit in the past. *)
        if Int64.compare limit t.clock > 0 then t.clock <- limit;
        continue := false
      | Some _ | None ->
        let ev = Semper_util.Heap.pop t.queue in
        if is_dead ev then begin
          t.dead <- t.dead - 1;
          t.skipped <- t.skipped + 1;
          Option.iter Obs.Registry.incr t.ctr_skipped
        end
        else begin
          (match ev.cell with Some h -> h.state <- H_fired | None -> ());
          t.clock <- ev.time;
          t.processed <- t.processed + 1;
          incr count;
          ev.run ()
        end)
  done;
  Totals.add Totals.processed_a (t.processed - t.flushed_processed);
  Totals.add Totals.cancelled_a (t.cancelled - t.flushed_cancelled);
  Totals.add Totals.skipped_a (t.skipped - t.flushed_skipped);
  t.flushed_processed <- t.processed;
  t.flushed_cancelled <- t.cancelled;
  t.flushed_skipped <- t.skipped;
  Totals.max_to Totals.heap_peak_a t.heap_peak;
  !count

let events_processed t = t.processed
let events_cancelled t = t.cancelled
let events_skipped t = t.skipped
let heap_peak t = t.heap_peak
let pending t = Semper_util.Heap.length t.queue - t.dead

let rebind t =
  t.uid <- Atomic.fetch_and_add next_uid 1;
  (* Every still-pending handle sits in the queue (a pending event is by
     definition scheduled), so walking the queue re-stamps them all.
     Fired and cancelled cells are left alone: [cancel] no-ops on them
     before it ever looks at the owner. *)
  Semper_util.Heap.fold
    (fun () ev ->
      match ev.cell with
      | Some h when h.state = H_pending -> h.owner <- t.uid
      | Some _ | None -> ())
    () t.queue

type snapshot = {
  s_clock : int64;
  s_next_seq : int;
  s_processed : int;
  s_dead : int;
  s_horizon : int64;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
  s_queued : int;
}

let snapshot t =
  {
    s_clock = t.clock;
    s_next_seq = t.next_seq;
    s_processed = t.processed;
    s_dead = t.dead;
    s_horizon = t.horizon;
    s_cancelled = t.cancelled;
    s_skipped = t.skipped;
    s_heap_peak = t.heap_peak;
    s_queued = Semper_util.Heap.length t.queue;
  }

let restore t s =
  if Semper_util.Heap.length t.queue <> s.s_queued then
    invalid_arg "Engine.restore: queue length does not match the snapshot";
  t.clock <- s.s_clock;
  t.next_seq <- s.s_next_seq;
  t.processed <- s.s_processed;
  t.dead <- s.s_dead;
  t.horizon <- s.s_horizon;
  t.cancelled <- s.s_cancelled;
  t.skipped <- s.s_skipped;
  t.heap_peak <- s.s_heap_peak
