(** Versioned binary checkpoint images with an integrity digest.

    An image freezes one OCaml value — typically the root record of a
    whole simulation — in a single [Marshal] call with closure
    serialization enabled, so the entire object graph (event queue,
    kernels, VPEs, the continuations inside pending protocol
    operations) is captured with sharing and physical equality intact.
    Restoring materialises an independent copy of that graph; the
    original, if still live, is untouched.

    {2 Format and version rules}

    [magic | header | payload]. The header records the image format
    {!format_version}, a caller-chosen [kind] (which run family wrote
    the image), a free-form [label], a [position] (how far into the run
    the image was taken), an optional caller [fingerprint], and an MD5
    digest of the payload bytes. {!load} rejects — with an error, never
    a misread — images whose magic, version, kind, or payload digest do
    not match. Bump {!format_version} whenever the meaning of any
    header field or the payload layout changes; there is deliberately
    no migration path, old images are simply re-recorded.

    Closure blocks additionally embed the writing binary's code digest
    (an OCaml runtime invariant), so images are same-binary artifacts:
    after a rebuild, {!load} reports an error asking for a re-record.
    Record and replay always run from the same [semperos_cli] build, so
    this costs nothing in practice and removes any possibility of
    executing stale code.

    After restoring a payload that contains a simulation, call
    {!Engine.rebind} (or [System.rebind]) on its engine before driving
    it: handles inside the image alias the recording engine's id and
    must be re-stamped (see {!Engine.type-handle}). *)

(** Current image format version. *)
val format_version : int

type header = {
  version : int;
  kind : string;
  label : string;
  position : int64;
  fingerprint : string;
  payload_digest : string;  (** MD5 of the payload bytes *)
}

(** [save ~kind payload] is a fresh image of [payload]. [version]
    defaults to {!format_version} and exists only so tests can forge
    stale images. *)
val save :
  ?version:int ->
  kind:string ->
  ?label:string ->
  ?position:int64 ->
  ?fingerprint:string ->
  'a ->
  bytes

(** Decode and validate the header alone (no payload unmarshaling). *)
val header_of_bytes : bytes -> (header, string) result

(** [load ~kind image] validates magic, version, kind, and payload
    digest, then materialises the payload. The result type is the
    caller's claim — sound as long as every [kind] string is written
    and read with one payload type, which is the whole point of the
    field. *)
val load : kind:string -> bytes -> (header * 'a, string) result

(** File helpers ([write] truncates; [read] returns [Error] on I/O
    failure rather than raising). *)
val write : string -> bytes -> unit

val read : string -> (bytes, string) result
