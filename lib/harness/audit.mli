(** Cross-kernel capability-tree audit.

    [Kernel.check_invariants] checks each mapping database in
    isolation; cross-kernel links (a parent on one kernel, its child on
    another) are out of its reach. This module reconstructs the global
    capability forest across every kernel of a system and verifies the
    distributed invariants the SemperOS protocols must maintain:

    - every child link resolves to a live capability whose [parent]
      points back (bidirectional cross-kernel consistency);
    - every parent link is matched by a child entry at the parent;
    - capabilities are hosted at the kernel that manages their owner
      VPE (the paper's single-owner rule, §3.4);
    - the forest is acyclic and every capability is reachable from a
      root (no disconnected garbage);
    - no capability is marked for revocation once the system is idle.

    Used by tests and by the randomised protocol soak. *)

type report = {
  capabilities : int;   (** total live capabilities across all kernels *)
  roots : int;          (** capabilities without a parent *)
  max_depth : int;      (** deepest chain in the forest *)
  spanning_links : int; (** parent/child links crossing kernels *)
  errors : string list; (** violations, empty when healthy *)
}

val pp_report : Format.formatter -> report -> unit

(** Audit an idle system. Call only when the engine has drained —
    in-flight operations legitimately hold half-linked state. *)
val run : Semper_kernel.System.t -> report

(** [check sys] raises [Failure] with the violations if any. *)
val check : Semper_kernel.System.t -> unit

(** Dirty-partition incremental audit.

    [run] above re-reads every capability on every kernel — O(total
    caps) per pass, which dominates wall-clock once systems reach
    thousands of PEs. The incremental auditor keeps a mirror of the
    forest and, on each pass, drains each mapping database's dirty
    partitions ({!Semper_caps.Mapdb.drain_dirty}) and re-verifies only
    the records in those partitions plus the links in and out of them:
    link and routing checks for every touched record and its
    neighbours, spanning-link totals by difference, and a re-walk of
    the subtrees of affected roots for depth and cycle checks.

    On a healthy system an incremental pass returns a report equal to
    [run]'s (asserted by the fuzz oracle and by unit tests). Two
    deliberate approximations apply between full passes: the per-kernel
    invariant sweep ([System.check_invariants]) is skipped, and
    corruption disconnected from any change — e.g. a parentless cycle
    created without touching a partition — can go unnoticed. Every
    [full_every]-th call therefore falls back to a genuine full audit
    and rebuilds the mirror. *)
module Incremental : sig
  type t

  (** Build the mirror from the live system (draining all dirty sets).
      Every [full_every]-th [run] (default 16) is a full audit;
      [full_every = 0] disables the fallback. *)
  val create : ?full_every:int -> Semper_kernel.System.t -> t

  (** Audit an idle system, re-verifying only partitions touched since
      the previous call. *)
  val run : t -> report
end
