module Obs = Semper_obs.Obs
module Cost = Semper_kernel.Cost
module Workloads = Semper_trace.Workloads
module T = Semper_util.Table

type preset = Smoke | Full

let preset_to_string = function Smoke -> "smoke" | Full -> "full"

let preset_of_string = function
  | "smoke" -> Some Smoke
  | "full" -> Some Full
  | _ -> None

type output = { text : string; json : Obs.Json.t }

(* Points and results are closed variants so one recording pipeline
   (compute one point, accumulate a result prefix, render at the end)
   serves every figure. *)
type point = P_chain of Microbench.chain_spec | P_app of Experiment.config

type result = R_cycles of int64 | R_app of Experiment.outcome

let compute = function
  | P_chain s ->
    R_cycles
      (Microbench.chain_revocation ~batching:s.Microbench.c_batching ~mode:s.Microbench.c_mode
         ~spanning:s.c_spanning ~len:s.c_len ())
  | P_app cfg -> R_app (Experiment.run cfg)

type t = {
  name : string;
  doc : string;
  points : preset -> point list;
  render : result list -> output;
}

(* ------------------------------------------------------------------ *)
(* Figure 4: chain revocation latency over chain length, one local and
   one group-spanning measurement per length (interleaved, as in
   {!Bench_json.micro}). *)

let fig4_lens = function
  | Smoke -> [ 0; 5; 10 ]
  | Full -> [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

let fig4_points preset =
  List.concat_map
    (fun len ->
      [
        P_chain { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
        P_chain { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
      ])
    (fig4_lens preset)

let fig4_render results =
  (* Results arrive in point order: (local, spanning) per length. *)
  let rec pair = function
    | [] -> []
    | R_cycles local :: R_cycles spanning :: rest -> (local, spanning) :: pair rest
    | _ -> invalid_arg "fig4: result shape mismatch"
  in
  let lens_used = List.length (pair results) in
  let lens =
    (* Recover the lengths from the point count: the spec list is always
       the interleaved sweep, so lengths are positional. *)
    List.filteri (fun i _ -> i < lens_used)
      (fig4_lens (if lens_used > List.length (fig4_lens Smoke) then Full else Smoke))
  in
  let series =
    T.Series.create ~x_label:"chain_len" ~labels:[ "local_cycles"; "spanning_cycles" ]
  in
  List.iter2
    (fun len (local, spanning) ->
      T.Series.add_row series ~x:(float_of_int len)
        [ Some (Int64.to_float local); Some (Int64.to_float spanning) ])
    lens (pair results);
  let json =
    Obs.Json.Obj
      [
        ("figure", Obs.Json.Str "fig4");
        ( "chain_revocation",
          Obs.Json.Arr
            (List.map2
               (fun len (local, spanning) ->
                 Obs.Json.Obj
                   [
                     ("len", Obs.Json.Int len);
                     ("local_cycles", Obs.Json.Int (Int64.to_int local));
                     ("spanning_cycles", Obs.Json.Int (Int64.to_int spanning));
                   ])
               lens (pair results)) );
      ]
  in
  { text = T.Series.render series; json }

(* ------------------------------------------------------------------ *)
(* Figure 6: application benchmark over instance counts, with the
   single-instance reference first so parallel efficiency is computable
   from the results alone. *)

let fig6_shape = function
  | Smoke -> (2, 1, [ 4 ], [ Workloads.tar ])
  | Full -> (32, 32, [ 64; 512 ], Workloads.all)

let fig6_points preset =
  let kernels, services, instance_counts, workloads = fig6_shape preset in
  List.map (fun p -> P_app p)
    (List.map (fun spec -> Experiment.config ~kernels ~services ~instances:1 spec) workloads
    @ List.concat_map
        (fun n ->
          List.map (fun spec -> Experiment.config ~kernels ~services ~instances:n spec) workloads)
        instance_counts)

let fig6_render results =
  let outcomes =
    List.map
      (function R_app o -> o | R_cycles _ -> invalid_arg "fig6: result shape mismatch")
      results
  in
  let single_of name =
    List.find_opt
      (fun (o : Experiment.outcome) ->
        o.cfg.Experiment.instances = 1 && o.cfg.Experiment.workload.Workloads.name = name)
      outcomes
  in
  let row (o : Experiment.outcome) =
    let name = o.cfg.Experiment.workload.Workloads.name in
    let eff =
      if o.cfg.Experiment.instances = 1 then Some 100.0
      else
        Option.map
          (fun single -> 100.0 *. Experiment.parallel_efficiency ~single ~parallel:o)
          (single_of name)
    in
    (name, o, eff)
  in
  let rows = List.map row outcomes in
  let text =
    T.render
      ~header:[ "workload"; "instances"; "makespan_ms"; "cap_ops"; "cap_ops_per_s"; "par_eff_pct" ]
      (List.map
         (fun (name, (o : Experiment.outcome), eff) ->
           [
             name;
             string_of_int o.cfg.Experiment.instances;
             Printf.sprintf "%.3f" (Int64.to_float o.Experiment.max_runtime /. 2.0e6);
             string_of_int o.Experiment.cap_ops;
             Printf.sprintf "%.0f" o.Experiment.cap_ops_per_s;
             (match eff with Some e -> Printf.sprintf "%.1f" e | None -> "-");
           ])
         rows)
  in
  let json =
    Obs.Json.Obj
      [
        ("figure", Obs.Json.Str "fig6");
        ( "apps",
          Obs.Json.Arr
            (List.map
               (fun (name, (o : Experiment.outcome), eff) ->
                 Obs.Json.Obj
                   [
                     ("workload", Obs.Json.Str name);
                     ("instances", Obs.Json.Int o.cfg.Experiment.instances);
                     ("makespan_cycles", Obs.Json.Int (Int64.to_int o.Experiment.max_runtime));
                     ("cap_ops", Obs.Json.Int o.Experiment.cap_ops);
                     ("cap_ops_per_s", Obs.Json.Float o.Experiment.cap_ops_per_s);
                     ( "parallel_efficiency",
                       match eff with Some e -> Obs.Json.Float e | None -> Obs.Json.Null );
                   ])
               rows) );
      ]
  in
  { text; json }

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      name = "fig4";
      doc = "chain revocation latency over chain length (local and group-spanning)";
      points = fig4_points;
      render = fig4_render;
    };
    {
      name = "fig6";
      doc = "application benchmark over instance counts (makespan, cap ops, efficiency)";
      points = fig6_points;
      render = fig6_render;
    };
  ]

let find name = List.find_opt (fun f -> f.name = name) all

let run ?jobs fig preset =
  fig.render (Semper_util.Domain_pool.map ?jobs compute (fig.points preset))
