module Obs = Semper_obs.Obs
module Engine = Semper_sim.Engine
module System = Semper_kernel.System
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Workloads = Semper_trace.Workloads
module T = Semper_util.Table

type preset = Full | Smoke

type row = {
  r_name : string;
  r_total_pes : int;
  r_kernels : int;
  r_services : int;
  r_instances : int;
  r_wall_s : float;
  r_events : int;
  r_events_per_s : float;
  r_cap_ops : int;
  r_cap_ops_per_s : float;
  r_heap_peak : int;
  r_minor_collections : int;
  r_major_collections : int;
  r_promoted_words : float;
  r_audit_caps : int;
  r_audit_full_s : float;
  r_audit_incremental_s : float;
}

type point = {
  p_name : string;
  p_kernels : int;
  p_services : int;
  p_instances : int;
  p_derives : int;  (* derivation-tree fan-out per VPE in the churn forest *)
  p_churn_vpes : int;  (* VPEs touched by the steady-state churn *)
}

(* kernels + services + instances = the advertised PE count; per-kernel
   user PEs stay well under [Cost.max_pes_per_kernel]. *)
let points_of_preset = function
  | Full ->
    [
      { p_name = "1k"; p_kernels = 16; p_services = 16; p_instances = 992; p_derives = 3; p_churn_vpes = 8 };
      { p_name = "2k"; p_kernels = 32; p_services = 32; p_instances = 1984; p_derives = 3; p_churn_vpes = 8 };
      { p_name = "4k"; p_kernels = 32; p_services = 32; p_instances = 4032; p_derives = 3; p_churn_vpes = 8 };
    ]
  | Smoke ->
    [ { p_name = "smoke"; p_kernels = 2; p_services = 2; p_instances = 8; p_derives = 2; p_churn_vpes = 2 } ]

(* One memory-bound and one stat-heavy application per row: enough mix
   to exercise both data-capability hand-out and service traffic
   without turning the 4K row into minutes of wall-clock. *)
let mix pt =
  List.map
    (fun w ->
      Experiment.config ~kernels:pt.p_kernels ~services:pt.p_services ~instances:pt.p_instances w)
    [ Workloads.tar; Workloads.find ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sel_of who = function
  | P.R_sel s -> s
  | r -> failwith (Format.asprintf "Scale: %s: unexpected reply %a" who P.pp_reply r)

(* A capability forest spanning every user-PE partition of a
   [pt]-sized system: one VPE per user PE, each holding a memory
   capability with a small derivation tree. *)
let churn_system pt =
  let user_pes = (pt.p_instances + pt.p_services + pt.p_kernels - 1) / pt.p_kernels in
  let sys = System.create (System.config ~kernels:pt.p_kernels ~user_pes_per_kernel:user_pes ()) in
  let vpes = ref [] in
  for k = 0 to pt.p_kernels - 1 do
    for _ = 1 to user_pes do
      let vpe = System.spawn_vpe sys ~kernel:k in
      vpes := vpe :: !vpes;
      let root =
        sel_of "alloc_mem"
          (System.syscall_sync sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
      in
      for _ = 1 to pt.p_derives do
        ignore
          (sel_of "derive_mem"
             (System.syscall_sync sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })))
      done
    done
  done;
  (sys, List.rev !vpes)

(* Steady-state churn on a handful of VPEs, then one full audit and
   one incremental audit over the same dirty partitions. The full pass
   does not drain dirty sets, so both see identical churn. *)
let audit_times pt =
  let sys, vpes = churn_system pt in
  let inc = Audit.Incremental.create ~full_every:0 sys in
  List.iteri
    (fun i vpe ->
      if i < pt.p_churn_vpes then begin
        let root =
          sel_of "alloc_mem"
            (System.syscall_sync sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
        in
        ignore
          (sel_of "derive_mem"
             (System.syscall_sync sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })));
        match System.syscall_sync sys vpe (P.Sys_revoke { sel = root; own = false }) with
        | P.R_ok -> ()
        | r -> failwith (Format.asprintf "Scale: revoke: unexpected reply %a" P.pp_reply r)
      end)
    vpes;
  let full, t_full = time (fun () -> Audit.run sys) in
  let irep, t_inc = time (fun () -> Audit.Incremental.run inc) in
  if full.Audit.errors <> [] then
    failwith (Format.asprintf "Scale: churn forest audit failed: %a" Audit.pp_report full);
  if irep <> full then
    failwith
      (Format.asprintf "Scale: incremental audit diverged: full %a vs incremental %a"
         Audit.pp_report full Audit.pp_report irep);
  (full.Audit.capabilities, t_full, t_inc)

(* Serial like the wallclock bench: the point is a comparable
   throughput trajectory versus PE count, and domain fan-out would
   fold scheduler noise into every row. *)
let measure_row pt =
  let p0 = Engine.Totals.processed () in
  let g0 = Gc.quick_stat () in
  let outcomes, wall = time (fun () -> Experiment.run_many ~jobs:1 (mix pt)) in
  let g1 = Gc.quick_stat () in
  let events = Engine.Totals.processed () - p0 in
  let cap_ops = List.fold_left (fun acc o -> acc + o.Experiment.cap_ops) 0 outcomes in
  let audit_caps, t_full, t_inc = audit_times pt in
  {
    r_name = pt.p_name;
    r_total_pes = pt.p_instances + pt.p_services + pt.p_kernels;
    r_kernels = pt.p_kernels;
    r_services = pt.p_services;
    r_instances = pt.p_instances;
    r_wall_s = wall;
    r_events = events;
    r_events_per_s = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    r_cap_ops = cap_ops;
    r_cap_ops_per_s = (if wall > 0.0 then float_of_int cap_ops /. wall else 0.0);
    r_heap_peak = Engine.Totals.heap_peak ();
    r_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    r_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    r_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    r_audit_caps = audit_caps;
    r_audit_full_s = t_full;
    r_audit_incremental_s = t_inc;
  }

let rows ?(preset = Full) () = List.map measure_row (points_of_preset preset)

let row_json r =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str r.r_name);
      ("total_pes", Obs.Json.Int r.r_total_pes);
      ("kernels", Obs.Json.Int r.r_kernels);
      ("services", Obs.Json.Int r.r_services);
      ("instances", Obs.Json.Int r.r_instances);
      ("wall_s", Obs.Json.Float r.r_wall_s);
      ("events_processed", Obs.Json.Int r.r_events);
      ("events_per_s", Obs.Json.Float r.r_events_per_s);
      ("cap_ops", Obs.Json.Int r.r_cap_ops);
      ("cap_ops_per_s", Obs.Json.Float r.r_cap_ops_per_s);
      ("heap_peak", Obs.Json.Int r.r_heap_peak);
      ("gc_minor_collections", Obs.Json.Int r.r_minor_collections);
      ("gc_major_collections", Obs.Json.Int r.r_major_collections);
      ("gc_promoted_words", Obs.Json.Float r.r_promoted_words);
      ("audit_caps", Obs.Json.Int r.r_audit_caps);
      ("audit_full_s", Obs.Json.Float r.r_audit_full_s);
      ("audit_incremental_s", Obs.Json.Float r.r_audit_incremental_s);
    ]

let json rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "semperos-scale-1");
      ("jobs", Obs.Json.Int 1);
      ("rows", Obs.Json.Arr (List.map row_json rows));
    ]

let print rows =
  T.print ~title:"Scale ceiling: application mix + audit cost vs PE count (host-dependent)"
    ~header:
      [
        "row"; "pes"; "wall_s"; "events/s"; "cap_ops"; "cap_ops/s"; "heap_peak"; "gc_minor";
        "gc_major"; "audit_full_ms"; "audit_inc_ms";
      ]
    (List.map
       (fun r ->
         [
           r.r_name;
           string_of_int r.r_total_pes;
           Printf.sprintf "%.3f" r.r_wall_s;
           Printf.sprintf "%.0f" r.r_events_per_s;
           string_of_int r.r_cap_ops;
           Printf.sprintf "%.0f" r.r_cap_ops_per_s;
           string_of_int r.r_heap_peak;
           string_of_int r.r_minor_collections;
           string_of_int r.r_major_collections;
           Printf.sprintf "%.3f" (r.r_audit_full_s *. 1000.0);
           Printf.sprintf "%.3f" (r.r_audit_incremental_s *. 1000.0);
         ])
       rows)

let run ?(preset = Full) ?(path = "BENCH_scale.json") () =
  let rs = rows ~preset () in
  print rs;
  Bench_json.write ~path (json rs)
