module Obs = Semper_obs.Obs
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Workloads = Semper_trace.Workloads
module Rng = Semper_util.Rng
module T = Semper_util.Table

type preset = Full | Smoke

type row = {
  r_name : string;
  r_total_pes : int;
  r_kernels : int;
  r_services : int;
  r_instances : int;
  (* Open-loop session opens driven by the trace generator; 0 for the
     application-mix rows, whose load is the workload replay itself. *)
  r_sessions : int;
  r_wall_s : float;
  r_events : int;
  r_events_per_s : float;
  r_cap_ops : int;
  r_cap_ops_per_s : float;
  r_heap_peak : int;
  r_minor_collections : int;
  r_major_collections : int;
  r_promoted_words : float;
  r_audit_caps : int;
  r_audit_full_s : float;
  r_audit_incremental_s : float;
}

type point = {
  p_name : string;
  p_kernels : int;
  p_services : int;
  p_instances : int;
  p_derives : int;  (* derivation-tree fan-out per VPE in the churn forest *)
  p_churn_vpes : int;  (* VPEs touched by the steady-state churn *)
}

(* kernels + services + instances = the advertised PE count; per-kernel
   user PEs stay well under [Cost.max_pes_per_kernel]. Weak scaling
   like the paper's evaluation: kernels grow with the PE count so
   every row runs 62 instances per kernel group — the 4K row formerly
   kept 32 kernels and doubled the per-kernel load instead, which
   conflated group size with system size. *)
let points_of_preset = function
  | Full ->
    [
      { p_name = "1k"; p_kernels = 16; p_services = 16; p_instances = 992; p_derives = 3; p_churn_vpes = 8 };
      { p_name = "2k"; p_kernels = 32; p_services = 32; p_instances = 1984; p_derives = 3; p_churn_vpes = 8 };
      { p_name = "4k"; p_kernels = 64; p_services = 64; p_instances = 3968; p_derives = 3; p_churn_vpes = 8 };
    ]
  | Smoke ->
    [ { p_name = "smoke"; p_kernels = 2; p_services = 2; p_instances = 8; p_derives = 2; p_churn_vpes = 2 } ]

(* The open-session rows: a trace-driven, open-loop arrival process of
   client sessions (ROADMAP item 3's ~1M-session frontier). Arrival
   times come from a fixed-seed exponential trace generated up front
   and are scheduled before the run starts, so the engine begins with
   [s_sessions] pending events — the regime where the heap paid
   O(log n) per hop and the wheel pays O(1). *)
type session_point = {
  s_name : string;
  s_kernels : int;
  s_clients_per_kernel : int;
  s_sessions : int;
  s_mean_gap : float;  (* mean per-client interarrival, cycles *)
}

let session_points_of_preset = function
  | Full ->
    [
      {
        s_name = "1m-sessions";
        s_kernels = 16;
        s_clients_per_kernel = 31;
        s_sessions = 1_000_000;
        s_mean_gap = 8_000.0;
      };
    ]
  | Smoke ->
    [
      {
        s_name = "smoke-sessions";
        s_kernels = 2;
        s_clients_per_kernel = 4;
        s_sessions = 2_000;
        s_mean_gap = 4_000.0;
      };
    ]

(* One memory-bound and one stat-heavy application per row: enough mix
   to exercise both data-capability hand-out and service traffic
   without turning the 4K row into minutes of wall-clock. *)
let mix pt =
  List.map
    (fun w ->
      Experiment.config ~kernels:pt.p_kernels ~services:pt.p_services ~instances:pt.p_instances w)
    [ Workloads.tar; Workloads.find ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sel_of who = function
  | P.R_sel s -> s
  | r -> failwith (Format.asprintf "Scale: %s: unexpected reply %a" who P.pp_reply r)

(* A capability forest spanning every user-PE partition of a
   [pt]-sized system: one VPE per user PE, each holding a memory
   capability with a small derivation tree. *)
let churn_system pt =
  let user_pes = (pt.p_instances + pt.p_services + pt.p_kernels - 1) / pt.p_kernels in
  let sys = System.create (System.config ~kernels:pt.p_kernels ~user_pes_per_kernel:user_pes ()) in
  let vpes = ref [] in
  for k = 0 to pt.p_kernels - 1 do
    for _ = 1 to user_pes do
      let vpe = System.spawn_vpe sys ~kernel:k in
      vpes := vpe :: !vpes;
      let root =
        sel_of "alloc_mem"
          (System.syscall_sync sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
      in
      for _ = 1 to pt.p_derives do
        ignore
          (sel_of "derive_mem"
             (System.syscall_sync sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })))
      done
    done
  done;
  (sys, List.rev !vpes)

(* Steady-state churn on a handful of VPEs, then one full audit and
   one incremental audit over the same dirty partitions. The full pass
   does not drain dirty sets, so both see identical churn. *)
let audit_times pt =
  let sys, vpes = churn_system pt in
  let inc = Audit.Incremental.create ~full_every:0 sys in
  List.iteri
    (fun i vpe ->
      if i < pt.p_churn_vpes then begin
        let root =
          sel_of "alloc_mem"
            (System.syscall_sync sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
        in
        ignore
          (sel_of "derive_mem"
             (System.syscall_sync sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })));
        match System.syscall_sync sys vpe (P.Sys_revoke { sel = root; own = false }) with
        | P.R_ok -> ()
        | r -> failwith (Format.asprintf "Scale: revoke: unexpected reply %a" P.pp_reply r)
      end)
    vpes;
  let full, t_full = time (fun () -> Audit.run sys) in
  let irep, t_inc = time (fun () -> Audit.Incremental.run inc) in
  if full.Audit.errors <> [] then
    failwith (Format.asprintf "Scale: churn forest audit failed: %a" Audit.pp_report full);
  if irep <> full then
    failwith
      (Format.asprintf "Scale: incremental audit diverged: full %a vs incremental %a"
         Audit.pp_report full Audit.pp_report irep);
  (full.Audit.capabilities, t_full, t_inc)

(* A minimal session service: every open is accepted after the
   standard session cost on the service's processing queue, and no
   grants are served — the row measures session-protocol throughput,
   not filesystem work. *)
let session_service sys ~kernel:kid ~name =
  let vpe = System.spawn_vpe sys ~kernel:kid in
  let server = Server.create (System.engine sys) ~name in
  let next = ref 0 in
  Kernel.register_service_handler (System.kernel sys kid) ~name (fun req k ->
      match req with
      | P.Srq_open_session _ ->
        Server.submit server ~cost:2_000L (fun () ->
            let ident = !next in
            incr next;
            k (P.Srs_session { ident }))
      | P.Srq_obtain _ | P.Srq_delegate _ -> k (P.Srs_reject P.E_invalid));
  match System.syscall_sync sys vpe (P.Sys_create_srv { name }) with
  | P.R_sel _ -> ()
  | r -> failwith (Format.asprintf "Scale: create_srv %s: unexpected reply %a" name P.pp_reply r)

type client = {
  c_vpe : Vpe.t;
  c_service : string;
  mutable c_backlog : int;  (* arrivals not yet started *)
  mutable c_busy : bool;  (* a session of ours is in flight *)
}

(* Open-loop injection: every arrival is scheduled up front from a
   fixed-seed exponential trace (one [Rng.split] stream per client, so
   the trace is independent of client count ordering), which puts the
   full [s_sessions] arrivals in the pending queue before the run
   starts. A client keeps at most one session in flight and queues the
   rest as backlog, like a blocking client library would. Each session
   is open + revoke(own), and clients on kernel [k] talk to the
   service on kernel [k+1] so every open crosses a kernel boundary. *)
let measure_sessions sp =
  let clients_total = sp.s_kernels * sp.s_clients_per_kernel in
  let user_pes = sp.s_clients_per_kernel + 1 in
  let sys = System.create (System.config ~kernels:sp.s_kernels ~user_pes_per_kernel:user_pes ()) in
  for k = 0 to sp.s_kernels - 1 do
    session_service sys ~kernel:k ~name:(Printf.sprintf "sess%d" k)
  done;
  (* Drain service creation and directory replication before arming
     the arrival trace. *)
  ignore (System.run sys);
  let clients =
    Array.init clients_total (fun i ->
        let k = i / sp.s_clients_per_kernel in
        {
          c_vpe = System.spawn_vpe sys ~kernel:k;
          c_service = Printf.sprintf "sess%d" ((k + 1) mod sp.s_kernels);
          c_backlog = 0;
          c_busy = false;
        })
  in
  let completed = ref 0 in
  let rec start c =
    c.c_busy <- true;
    c.c_backlog <- c.c_backlog - 1;
    System.syscall sys c.c_vpe (P.Sys_open_session { service = c.c_service }) (function
      | P.R_sess { sel; _ } ->
        System.syscall sys c.c_vpe (P.Sys_revoke { sel; own = true }) (function
          | P.R_ok ->
            incr completed;
            if c.c_backlog > 0 then start c else c.c_busy <- false
          | r -> failwith (Format.asprintf "Scale: close session: unexpected reply %a" P.pp_reply r))
      | r -> failwith (Format.asprintf "Scale: open session: unexpected reply %a" P.pp_reply r))
  in
  let engine = System.engine sys in
  let base = System.now sys in
  let rng = Rng.create 0x5e55_10f5L in
  let per_client = sp.s_sessions / clients_total in
  let extra = sp.s_sessions mod clients_total in
  Array.iteri
    (fun i c ->
      let crng = Rng.split rng in
      let t = ref base in
      for _ = 1 to per_client + (if i < extra then 1 else 0) do
        t :=
          Int64.add !t
            (Int64.of_int (max 1 (int_of_float (Rng.exponential crng ~mean:sp.s_mean_gap))));
        Engine.at engine !t (fun () ->
            c.c_backlog <- c.c_backlog + 1;
            if not c.c_busy then start c)
      done)
    clients;
  let inc = Audit.Incremental.create ~full_every:0 sys in
  Gc.full_major ();
  Engine.Totals.reset_heap_peak ();
  let p0 = Engine.Totals.processed () in
  let cap0 = System.total_cap_ops sys in
  let g0 = Gc.quick_stat () in
  let _, wall = time (fun () -> System.run sys) in
  let g1 = Gc.quick_stat () in
  if !completed <> sp.s_sessions then
    failwith
      (Printf.sprintf "Scale: %s: completed %d of %d sessions" sp.s_name !completed sp.s_sessions);
  let events = Engine.Totals.processed () - p0 in
  let cap_ops = System.total_cap_ops sys - cap0 in
  let full, t_full = time (fun () -> Audit.run sys) in
  let irep, t_inc = time (fun () -> Audit.Incremental.run inc) in
  if full.Audit.errors <> [] then
    failwith (Format.asprintf "Scale: session system audit failed: %a" Audit.pp_report full);
  if irep <> full then
    failwith
      (Format.asprintf "Scale: incremental audit diverged: full %a vs incremental %a"
         Audit.pp_report full Audit.pp_report irep);
  {
    r_name = sp.s_name;
    r_total_pes = sp.s_kernels + sp.s_kernels + clients_total;
    r_kernels = sp.s_kernels;
    r_services = sp.s_kernels;
    r_instances = clients_total;
    r_sessions = sp.s_sessions;
    r_wall_s = wall;
    r_events = events;
    r_events_per_s = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    r_cap_ops = cap_ops;
    r_cap_ops_per_s = (if wall > 0.0 then float_of_int cap_ops /. wall else 0.0);
    r_heap_peak = Engine.Totals.heap_peak ();
    r_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    r_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    r_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    r_audit_caps = full.Audit.capabilities;
    r_audit_full_s = t_full;
    r_audit_incremental_s = t_inc;
  }

(* Serial like the wallclock bench: the point is a comparable
   throughput trajectory versus PE count, and domain fan-out would
   fold scheduler noise into every row. Throughput is events over the
   event-loop wall alone ({!Experiment.outcome.replay_wall_s}):
   charging image building and VPE spawning — which process no
   events — to events/s would make the figure measure setup, not the
   simulator. The full major collection fences each row off from the
   previous row's garbage.

   Each row is the best (minimum event-loop wall) of [app_row_reps]
   identical repetitions. The simulated quantities — events, cap ops,
   heap peak — are bit-identical across repetitions, so the minimum is
   the repetition the host interfered with least: on a single-core
   container the run-to-run spread is ±15–20%, which would otherwise
   drown the trend the row exists to show. *)
let app_row_reps = 3

let measure_row pt =
  let measure () =
    Gc.full_major ();
    Engine.Totals.reset_heap_peak ();
    let p0 = Engine.Totals.processed () in
    let g0 = Gc.quick_stat () in
    let outcomes = Experiment.run_many ~jobs:1 (mix pt) in
    let g1 = Gc.quick_stat () in
    let events = Engine.Totals.processed () - p0 in
    let wall = List.fold_left (fun acc o -> acc +. o.Experiment.replay_wall_s) 0.0 outcomes in
    let cap_ops = List.fold_left (fun acc o -> acc + o.Experiment.cap_ops) 0 outcomes in
    (wall, events, cap_ops, Engine.Totals.heap_peak (), g0, g1)
  in
  let best = ref (measure ()) in
  for _ = 2 to app_row_reps do
    let ((w, _, _, _, _, _) as m) = measure () in
    let bw, _, _, _, _, _ = !best in
    if w < bw then best := m
  done;
  let wall, events, cap_ops, heap_peak, g0, g1 = !best in
  let audit_caps, t_full, t_inc = audit_times pt in
  {
    r_name = pt.p_name;
    r_total_pes = pt.p_instances + pt.p_services + pt.p_kernels;
    r_kernels = pt.p_kernels;
    r_services = pt.p_services;
    r_instances = pt.p_instances;
    r_sessions = 0;
    r_wall_s = wall;
    r_events = events;
    r_events_per_s = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    r_cap_ops = cap_ops;
    r_cap_ops_per_s = (if wall > 0.0 then float_of_int cap_ops /. wall else 0.0);
    r_heap_peak = heap_peak;
    r_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    r_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    r_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    r_audit_caps = audit_caps;
    r_audit_full_s = t_full;
    r_audit_incremental_s = t_inc;
  }

let rows ?(preset = Full) () =
  let pts = points_of_preset preset in
  (* One unmeasured warm-up at the largest row's scale first: it
     brings the process heap, allocator, and page tables to their
     steady state, so the first measured row is not flattered by a
     small cold heap relative to the rows measured after it. Each
     measured phase then resets the heap-peak high-water mark. *)
  (match List.rev pts with
  | largest :: _ -> ignore (Experiment.run_many ~jobs:1 (mix largest))
  | [] -> ());
  (* Application rows strictly first ([@] gives no evaluation-order
     guarantee): [Engine.Totals.processed] deltas must not interleave. *)
  let app = List.map measure_row pts in
  app @ List.map measure_sessions (session_points_of_preset preset)

let row_json r =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str r.r_name);
      ("total_pes", Obs.Json.Int r.r_total_pes);
      ("kernels", Obs.Json.Int r.r_kernels);
      ("services", Obs.Json.Int r.r_services);
      ("instances", Obs.Json.Int r.r_instances);
      ("sessions", Obs.Json.Int r.r_sessions);
      ("wall_s", Obs.Json.Float r.r_wall_s);
      ("events_processed", Obs.Json.Int r.r_events);
      ("events_per_s", Obs.Json.Float r.r_events_per_s);
      ("cap_ops", Obs.Json.Int r.r_cap_ops);
      ("cap_ops_per_s", Obs.Json.Float r.r_cap_ops_per_s);
      ("heap_peak", Obs.Json.Int r.r_heap_peak);
      ("gc_minor_collections", Obs.Json.Int r.r_minor_collections);
      ("gc_major_collections", Obs.Json.Int r.r_major_collections);
      ("gc_promoted_words", Obs.Json.Float r.r_promoted_words);
      ("audit_caps", Obs.Json.Int r.r_audit_caps);
      ("audit_full_s", Obs.Json.Float r.r_audit_full_s);
      ("audit_incremental_s", Obs.Json.Float r.r_audit_incremental_s);
    ]

let json rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "semperos-scale-2");
      ("jobs", Obs.Json.Int 1);
      ("rows", Obs.Json.Arr (List.map row_json rows));
    ]

let print rows =
  T.print ~title:"Scale ceiling: application mix + audit cost vs PE count (host-dependent)"
    ~header:
      [
        "row"; "pes"; "sessions"; "wall_s"; "events/s"; "cap_ops"; "cap_ops/s"; "heap_peak";
        "gc_minor"; "gc_major"; "audit_full_ms"; "audit_inc_ms";
      ]
    (List.map
       (fun r ->
         [
           r.r_name;
           string_of_int r.r_total_pes;
           string_of_int r.r_sessions;
           Printf.sprintf "%.3f" r.r_wall_s;
           Printf.sprintf "%.0f" r.r_events_per_s;
           string_of_int r.r_cap_ops;
           Printf.sprintf "%.0f" r.r_cap_ops_per_s;
           string_of_int r.r_heap_peak;
           string_of_int r.r_minor_collections;
           string_of_int r.r_major_collections;
           Printf.sprintf "%.3f" (r.r_audit_full_s *. 1000.0);
           Printf.sprintf "%.3f" (r.r_audit_incremental_s *. 1000.0);
         ])
       rows)

let run ?(preset = Full) ?(path = "BENCH_scale.json") () =
  let rs = rows ~preset () in
  print rs;
  Bench_json.write ~path (json rs)
