(** Application-benchmark harness (paper §5.3).

    Builds a system with K kernels and S m3fs service instances, spawns
    N benchmark instances each replaying the workload's trace against a
    private file namespace, runs them all in parallel, and reports the
    metrics the paper's figures plot.

    Placement follows the paper: instances are spread evenly over PE
    groups; each of the first S groups hosts one service instance; a
    kernel whose group hosts a service connects its applications to
    that service, others round-robin over the remaining services
    ("Kernels which host a service in their PE group prefer to connect
    their applications to the service in their PE group", §5.3.2). *)

type config = {
  kernels : int;
  services : int;
  instances : int;
  workload : Semper_trace.Workloads.spec;
  mode : Semper_kernel.Cost.mode;
  mem_contention : float;
      (** memory-system contention coefficient: every instance's compute
          and data access is stretched by
          [1 + mem_contention * instances / 640] — the uniform slowdown
          gem5's shared memory system imposes as more of the 640 cores
          become active (the paper attributes exactly this to
          "contention for hardware resources like the interconnect and
          the memory controller", §5.3.1) *)
}

val config :
  ?mode:Semper_kernel.Cost.mode ->
  ?mem_contention:float ->
  kernels:int ->
  services:int ->
  instances:int ->
  Semper_trace.Workloads.spec ->
  config

(** Calibrated default for [mem_contention]. *)
val default_mem_contention : float

type outcome = {
  cfg : config;
  runtimes : int64 list;        (** per-instance runtimes, cycles *)
  mean_runtime : float;
  max_runtime : int64;          (** makespan *)
  cap_ops : int;                (** kernel-side capability operations *)
  cap_ops_per_s : float;        (** aggregate rate over the makespan at 2 GHz *)
  exchanges_spanning : int;
  revokes_spanning : int;
  replay_wall_s : float;
      (** host wall-clock of the event loop alone (excludes building
          traces, images, and VPEs) — the simulator-throughput
          denominator, host-dependent by nature *)
  replay_errors : string list;
  kernel_utilisation : float;   (** mean kernel-PE busy fraction over makespan *)
  service_utilisation : float;
  total_pes : int;              (** instances + kernels + services *)
  snapshot : Semper_obs.Obs.Json.t;
      (** end-of-run {!Semper_obs.Obs.Registry} snapshot (every kernel,
          fabric, and DTU instrument of this run's private system) *)
}

(** Run the experiment to completion. Raises [Failure] if any replay
    reports errors — the trace player "checks for correct execution". *)
val run : config -> outcome

(** Run independent configurations across OCaml domains (default: all
    available cores; [jobs:1] = serial). Outcomes are returned in
    submission order, so results are identical for any job count. *)
val run_many : ?jobs:int -> config list -> outcome list

(** [parallel_efficiency ~single ~parallel] is T1 / mean(TN), the
    paper's scalability metric (§5.3.1). *)
val parallel_efficiency : single:outcome -> parallel:outcome -> float

(** [system_efficiency ~single ~parallel] additionally counts OS PEs
    (kernels and services) at zero efficiency and relates the result to
    the total PE count (Figure 9). *)
val system_efficiency : single:outcome -> parallel:outcome -> float

(** Cycles per second of the modelled cores (2 GHz, §5.1). *)
val clock_hz : float

(** Placement rule shared with the Nginx benchmark: which service an
    instance connects to (group-local preferred, §5.3.2). *)
val service_of_instance : kernels:int -> services:int -> instance:int -> int
