(** Microbenchmark drivers for the paper's Table 3, Figure 4, and
    Figure 5. All times are simulated cycles measured at syscall-reply
    delivery, exactly like the paper's cycle counts. *)

(** [exchange_revoke ~mode ~spanning] runs the Table 3 microbenchmark:
    one obtain followed by one children-revoke, group-local or
    group-spanning. Returns [(exchange_cycles, revoke_cycles)]. *)
val exchange_revoke : mode:Semper_kernel.Cost.mode -> spanning:bool -> int64 * int64

(** [chain_revocation ~mode ~spanning ~len ()] builds a capability
    chain of [len] exchanges bounced between two VPEs and times
    revoking it from the root (Figure 4). [batching] enables
    slot-window coalescing plus the requester-handoff revoke wave (the
    Figure 4 ablation). *)
val chain_revocation :
  ?batching:bool -> mode:Semper_kernel.Cost.mode -> spanning:bool -> len:int -> unit -> int64

(** [tree_revocation ~extra_kernels ~children ()] builds a flat tree of
    [children] copies spread over [extra_kernels] other kernels and
    times the revoke (Figure 5). [batching] enables the paper's
    proposed message-batching improvement; [broadcast] switches to the
    Barrelfish-style broadcast scheme (paper §6) for comparison.
    [background_caps] pre-populates every kernel's mapping database with
    that many unrelated capabilities — a live system is never empty, and
    the broadcast baseline pays a scan proportional to database size. *)
val tree_revocation :
  ?batching:bool ->
  ?broadcast:bool ->
  ?background_caps:int ->
  extra_kernels:int ->
  children:int ->
  unit ->
  int64

(** {2 Batch drivers}

    Each point of a sweep builds its own private system, so the batch
    variants fan points out across OCaml domains (default: available
    cores; [jobs:1] = serial) and return results in submission order —
    identical for any job count. *)

(** One [(mode, spanning)] exchange+revoke measurement per element. *)
val exchange_revokes :
  ?jobs:int -> (Semper_kernel.Cost.mode * bool) list -> (int64 * int64) list

type chain_spec = {
  c_mode : Semper_kernel.Cost.mode;
  c_spanning : bool;
  c_len : int;
  c_batching : bool;
}

val chain_spec :
  ?batching:bool ->
  mode:Semper_kernel.Cost.mode ->
  spanning:bool ->
  len:int ->
  unit ->
  chain_spec

val chain_revocations : ?jobs:int -> chain_spec list -> int64 list

type tree_spec = {
  t_batching : bool;
  t_broadcast : bool;
  t_background_caps : int;
  t_extra_kernels : int;
  t_children : int;
}

val tree_spec :
  ?batching:bool ->
  ?broadcast:bool ->
  ?background_caps:int ->
  extra_kernels:int ->
  children:int ->
  unit ->
  tree_spec

val tree_revocations : ?jobs:int -> tree_spec list -> int64 list
