(** Wall-clock throughput benchmark for the simulator core.

    Unlike every other bench mode, this measures the {e host}: real
    seconds and events/sec for representative figure workloads (Table 3,
    Figure 4, Figure 6), plus the engine-wide cancellation counters and
    heap high-water mark from {!Semper_sim.Engine.Totals}. The numbers
    are host-dependent by construction, so [BENCH_wallclock.json] is
    excluded from the byte-identity contract that covers the other
    outputs; the simulated-cycle results of the workloads it runs are
    unchanged and still covered. Workloads run serially so the timings
    are not folded together with domain-scheduler noise. *)

type sample = {
  s_name : string;
  s_wall_s : float;
  s_events : int;  (** events executed by the engines of this workload *)
  s_events_per_s : float;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
      (** process-wide monotone high-water mark as of the end of this
          workload, not a per-workload delta *)
  s_minor_collections : int;  (** minor GCs during this workload *)
  s_major_collections : int;  (** major GC cycles during this workload *)
  s_promoted_words : float;  (** words promoted minor -> major *)
}

type preset =
  | Full  (** the figure workloads at paper scale *)
  | Smoke  (** scaled down to seconds, for the [@wallclock-smoke] test *)

(** Run the preset's workloads and measure each. *)
val samples : ?preset:preset -> unit -> sample list

(** Deterministically ordered JSON document for a measured run. *)
val json : sample list -> Semper_obs.Obs.Json.t

(** Render the samples as a table on stdout. *)
val print : sample list -> unit

(** [samples] + [print] + write JSON to [path]
    (default ["BENCH_wallclock.json"]). *)
val run : ?preset:preset -> ?path:string -> unit -> unit
