(** Engine-only microbenchmark: queue-backend throughput in isolation.

    Measures host-side schedule / cancel / drain throughput of the two
    {!Semper_sim.Engine} queue backends (binary heap and timer wheel)
    at increasing pending-event counts, with no kernel or DTU work in
    the way — the heap's O(log n) per operation versus the wheel's
    O(1) is only visible once the queue is large, so the sizes sweep
    from 1K to 1M pending events.

    Like [BENCH_wallclock.json], the output measures the {e host} and
    is excluded from the byte-identity contract. *)

type sample = {
  s_backend : string;  (** ["heap"] or ["wheel"] *)
  s_op : string;  (** ["schedule"], ["cancel"] or ["drain"] *)
  s_pending : int;  (** queued events the operation runs against *)
  s_wall_s : float;
  s_ops_per_s : float;  (** [s_pending / s_wall_s] *)
}

type preset =
  | Full  (** 1K / 100K / 1M pending events *)
  | Smoke  (** 1K / 10K, for the [@engine-smoke] test *)

(** Run the preset's measurements: for every size, each backend
    schedules that many events, cancels that many cancellable ones,
    and drains a full queue of them. *)
val samples : ?preset:preset -> unit -> sample list

(** Deterministically ordered JSON document for a measured run. *)
val json : sample list -> Semper_obs.Obs.Json.t

(** Render the samples as a table on stdout, with the wheel-over-heap
    speedup per (operation, size) pair. *)
val print : sample list -> unit

(** [samples] + [print] + write JSON to [path]
    (default ["BENCH_engine.json"]). *)
val run : ?preset:preset -> ?path:string -> unit -> unit
