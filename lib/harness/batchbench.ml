(** IKC batching benchmark (BENCH_batch.json): the same workload run
    with slot-window coalescing off and on, reporting simulated cycles
    and inter-kernel message counts side by side.

    Everything runs serially and the simulator is seeded, so the
    emitted JSON is byte-identical across runs and [--jobs] values. *)

module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Protocol = Semper_kernel.Protocol
module Vpe = Semper_kernel.Vpe
module Cost = Semper_kernel.Cost
module Perms = Semper_caps.Perms
module Obs = Semper_obs.Obs
module T = Semper_util.Table

type sample = {
  b_name : string;
  b_off_cycles : int64;
  b_on_cycles : int64;
  b_off_ikc : int;  (** Ik_* messages put on the fabric, batching off *)
  b_on_ikc : int;   (** same workload phase, batching on (frames count as one) *)
  b_batches : int;  (** framed multi-messages shipped, batching on *)
  b_batched_msgs : int;  (** inner messages those frames carried *)
}

type preset = Full | Smoke

let await sys result =
  ignore (System.run sys);
  match !result with
  | Some r -> r
  | None -> failwith "batch bench: syscall did not complete"

let timed_syscall sys vpe call =
  let result = ref None in
  let t0 = System.now sys in
  System.syscall sys vpe call (fun r -> result := Some (r, System.now sys));
  match await sys result with
  | Protocol.R_err e, _ -> failwith ("batch bench: " ^ Protocol.error_to_string e)
  | r, t1 -> (r, Int64.sub t1 t0)

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "batch bench: expected selector, got %a" Protocol.pp_reply r

let kstat sys f =
  List.fold_left (fun acc k -> acc + f (Kernel.stats k)) 0 (System.kernels sys)

let ikc_sent sys = kstat sys (fun (s : Kernel.stats) -> s.ikc_sent)
let batches_sent sys = kstat sys (fun (s : Kernel.stats) -> s.batches_sent)
let batched_msgs sys = kstat sys (fun (s : Kernel.stats) -> s.batched_msgs)

(* One measured phase: [build sys] constructs the capability topology,
   [measure sys] issues the timed operation. Message counters are
   read as a delta around the measured phase, so both modes compare
   the same traffic. Returns (cycles, ikc, batches, batched). *)
let phase ~batching ~kernels ~user_pes ~build ~measure =
  let sys =
    System.create (System.config ~kernels ~user_pes_per_kernel:user_pes ~batching ())
  in
  let ctx = build sys in
  let ikc0 = ikc_sent sys in
  let cycles = measure sys ctx in
  (cycles, ikc_sent sys - ikc0, batches_sent sys, batched_msgs sys)

let run_pair ~name ~kernels ~user_pes ~build ~measure =
  let off_cycles, off_ikc, _, _ =
    phase ~batching:false ~kernels ~user_pes ~build ~measure
  in
  let on_cycles, on_ikc, batches, batched =
    phase ~batching:true ~kernels ~user_pes ~build ~measure
  in
  {
    b_name = name;
    b_off_cycles = off_cycles;
    b_on_cycles = on_cycles;
    b_off_ikc = off_ikc;
    b_on_ikc = on_ikc;
    b_batches = batches;
    b_batched_msgs = batched;
  }

(* Figure 4's worst case: a kernel-spanning chain, revoked from the
   root. Without batching every link costs a revoke request plus its
   reply; the requester-handoff continuation folds the child into the
   reply the responder owes anyway. *)
let chain ~len =
  run_pair
    ~name:(Printf.sprintf "chain_spanning_len%d" len)
    ~kernels:2 ~user_pes:4
    ~build:(fun sys ->
      let v1 = System.spawn_vpe sys ~kernel:0 in
      let v3 = System.spawn_vpe sys ~kernel:1 in
      let r, _ = timed_syscall sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
      let root = sel_of r in
      let rec build i owner peer sel =
        if i < len then begin
          let r, _ =
            timed_syscall sys peer
              (Protocol.Sys_obtain_from { donor_vpe = owner.Vpe.id; donor_sel = sel })
          in
          build (i + 1) peer owner (sel_of r)
        end
      in
      build 0 v1 v3 root;
      (v1, root))
    ~measure:(fun sys (v1, root) ->
      let _, cycles = timed_syscall sys v1 (Protocol.Sys_revoke { sel = root; own = true }) in
      cycles)

(* Figure 5's shape: a flat tree of [children] copies spread over
   [extra_kernels] other kernels. The revoke wave ships one marked
   subtree descriptor per destination kernel instead of one request per
   child. *)
let tree ~extra_kernels ~children =
  run_pair
    ~name:(Printf.sprintf "tree_%dk_children%d" (1 + extra_kernels) children)
    ~kernels:(1 + extra_kernels)
    ~user_pes:(min 190 (children + 4))
    ~build:(fun sys ->
      let root_vpe = System.spawn_vpe sys ~kernel:0 in
      let r, _ =
        timed_syscall sys root_vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
      in
      let root = sel_of r in
      for i = 0 to children - 1 do
        let k = 1 + (i mod extra_kernels) in
        let v = System.spawn_vpe sys ~kernel:k in
        let r, _ =
          timed_syscall sys v
            (Protocol.Sys_obtain_from { donor_vpe = root_vpe.Vpe.id; donor_sel = root })
        in
        ignore (sel_of r)
      done;
      (root_vpe, root))
    ~measure:(fun sys (root_vpe, root) ->
      let _, cycles =
        timed_syscall sys root_vpe (Protocol.Sys_revoke { sel = root; own = true })
      in
      cycles)

(* A burst of concurrent spanning obtains: dense same-direction traffic
   where the DTU slot window actually coalesces unrelated messages
   (revocation chains never give it two messages in one window). *)
let burst ~n =
  run_pair
    ~name:(Printf.sprintf "obtain_burst%d" n)
    ~kernels:2 ~user_pes:(n + 2)
    ~build:(fun sys ->
      let donor = System.spawn_vpe sys ~kernel:0 in
      let r, _ =
        timed_syscall sys donor (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
      in
      let sel = sel_of r in
      let vpes = List.init n (fun _ -> System.spawn_vpe sys ~kernel:1) in
      (donor, sel, vpes))
    ~measure:(fun sys (donor, sel, vpes) ->
      let t0 = System.now sys in
      List.iter
        (fun v ->
          System.syscall sys v
            (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel = sel })
            (fun _ -> ()))
        vpes;
      ignore (System.run sys);
      Int64.sub (System.now sys) t0)

let samples ?(preset = Full) () =
  match preset with
  | Full ->
    [
      chain ~len:20;
      chain ~len:60;
      chain ~len:100;
      tree ~extra_kernels:12 ~children:48;
      tree ~extra_kernels:12 ~children:128;
      burst ~n:32;
    ]
  | Smoke -> [ chain ~len:10; tree ~extra_kernels:4 ~children:16; burst ~n:8 ]

let sample_json s =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str s.b_name);
      ("cycles_off", Obs.Json.Int (Int64.to_int s.b_off_cycles));
      ("cycles_on", Obs.Json.Int (Int64.to_int s.b_on_cycles));
      ("ikc_off", Obs.Json.Int s.b_off_ikc);
      ("ikc_on", Obs.Json.Int s.b_on_ikc);
      ("batches_sent", Obs.Json.Int s.b_batches);
      ("batched_msgs", Obs.Json.Int s.b_batched_msgs);
      ( "speedup",
        Obs.Json.Float
          (if Int64.compare s.b_on_cycles 0L > 0 then
             Int64.to_float s.b_off_cycles /. Int64.to_float s.b_on_cycles
           else 1.0) );
    ]

let json samples =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "semperos-batch-1");
      ("jobs", Obs.Json.Int 1);
      ("samples", Obs.Json.Arr (List.map sample_json samples));
    ]

let print samples =
  T.print ~title:"IKC batching: same workload with slot-window coalescing off / on"
    ~header:[ "workload"; "cycles_off"; "cycles_on"; "speedup"; "ikc_off"; "ikc_on"; "frames"; "framed_msgs" ]
    (List.map
       (fun s ->
         [
           s.b_name;
           Int64.to_string s.b_off_cycles;
           Int64.to_string s.b_on_cycles;
           Printf.sprintf "%.2fx"
             (if Int64.compare s.b_on_cycles 0L > 0 then
                Int64.to_float s.b_off_cycles /. Int64.to_float s.b_on_cycles
              else 1.0);
           string_of_int s.b_off_ikc;
           string_of_int s.b_on_ikc;
           string_of_int s.b_batches;
           string_of_int s.b_batched_msgs;
         ])
       samples)

let run ?(preset = Full) ?(path = "BENCH_batch.json") () =
  let ss = samples ~preset () in
  print ss;
  Bench_json.write ~path (json ss)
