module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module M3fs = Semper_m3fs.M3fs
module Client = Semper_m3fs.Client
module Balance = Semper_balance.Balance
module Obs = Semper_obs.Obs
module T = Semper_util.Table

type config = {
  kernels : int;
  pes_per_kernel : int;
  clients : int;
  rounds : int;
  derives : int;
  fs_every : int;
  fs_bytes : int;
  compute : int64;
  spread : bool;
  policy : Balance.Policy.t;
  interval : int64;
  fault : Semper_fault.Fault.profile option;
}

let default_config =
  {
    kernels = 4;
    pes_per_kernel = 8;
    clients = 6;
    rounds = 30;
    derives = 8;
    fs_every = 5;
    fs_bytes = 4096;
    compute = 30_000L;
    spread = false;
    policy = Balance.Policy.default_threshold;
    interval = 25_000L;
    fault = None;
  }

type result = {
  completion : int64;
  occupancy : float array;
  max_occupancy : float;
  migrations : Balance.migration list;
  cap_ops : int;
  audit_errors : string list;
}

let ok who = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Skew.run: %s: %s" who e)

let sel_of who = function
  | P.R_sel s -> s
  | r -> failwith (Format.asprintf "Skew.run: %s: unexpected reply %a" who P.pp_reply r)

(* One client: [rounds] rounds of capability churn, a file burst every
   [fs_every] rounds, and a compute gap between rounds. Everything is
   CPS on the simulation engine; [finished] runs at completion time. *)
let run_client cfg sys (client : Client.t) ~index ~finished =
  let vpe = Client.vpe client in
  let engine = System.engine sys in
  let path = Printf.sprintf "/hot%d" index in
  let fs_burst r k =
    if cfg.fs_every > 0 && (r + 1) mod cfg.fs_every = 0 then
      Client.open_ client path ~write:true ~create:true (fun fd ->
          let fd = ok "open" fd in
          Client.write client ~fd ~bytes:cfg.fs_bytes (fun w ->
              ok "write" w;
              Client.close client ~fd (fun c ->
                  ok "close" c;
                  k ())))
    else k ()
  in
  let rec round r =
    if r >= cfg.rounds then finished ()
    else
      System.syscall sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) (fun reply ->
          let root = sel_of "alloc_mem" reply in
          let rec derive d =
            if d >= cfg.derives then
              System.syscall sys vpe (P.Sys_revoke { sel = root; own = true }) (fun reply ->
                  (match reply with
                  | P.R_ok -> ()
                  | r -> failwith (Format.asprintf "Skew.run: revoke: %a" P.pp_reply r));
                  fs_burst r (fun () ->
                      Engine.after engine cfg.compute (fun () -> round (r + 1))))
            else
              System.syscall sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })
                (fun reply ->
                  ignore (sel_of "derive_mem" reply);
                  derive (d + 1))
          in
          derive 0)
  in
  round 0

let run cfg =
  if cfg.kernels < 2 then invalid_arg "Skew.run: need at least two kernels";
  if (not cfg.spread) && cfg.clients + 1 > cfg.pes_per_kernel then
    invalid_arg "Skew.run: hotspot group cannot fit all clients plus the service";
  let sys =
    System.create
      (System.config ~kernels:cfg.kernels ~user_pes_per_kernel:cfg.pes_per_kernel
         ?fault:cfg.fault ())
  in
  let engine = System.engine sys in
  (* The file service is pinned at kernel 0: its traffic keeps spanning
     into the hotspot group no matter where clients end up. *)
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:[] () in
  let remaining = ref cfg.clients in
  let completion = ref 0L in
  let balancer =
    Balance.create ~policy:cfg.policy ~interval:cfg.interval
      ~stop_when:(fun () -> !remaining = 0)
      sys
  in
  for i = 0 to cfg.clients - 1 do
    let kernel = if cfg.spread then i mod cfg.kernels else 0 in
    let vpe = System.spawn_vpe sys ~kernel in
    (* Staggered starts: lock-step convoys of identical syscall
       sequences would be an artefact, not load. *)
    Engine.after engine (Int64.of_int (i * 1009)) (fun () ->
        Client.connect sys fs ~vpe (fun c ->
            let client = ok "connect" c in
            run_client cfg sys client ~index:i ~finished:(fun () ->
                decr remaining;
                if !remaining = 0 then completion := Engine.now engine)))
  done;
  Balance.start balancer;
  ignore (System.run sys);
  Balance.stop balancer;
  if !remaining > 0 then failwith "Skew.run: engine drained before all clients finished";
  let horizon = if !completion = 0L then 1L else !completion in
  let occupancy =
    Array.of_list
      (List.map (fun k -> Server.utilisation (Kernel.server k) ~horizon) (System.kernels sys))
  in
  let audit = Audit.run sys in
  {
    completion = !completion;
    occupancy;
    max_occupancy = Array.fold_left max 0.0 occupancy;
    migrations = Balance.migrations balancer;
    cap_ops = System.total_cap_ops sys;
    audit_errors = audit.Audit.errors;
  }

(* --------------------------------------------------------------- *)
(* Benchmark: static baseline vs threshold policy on the hotspot    *)

type preset = Full | Smoke

let config_of_preset = function
  | Full -> default_config
  | Smoke -> { default_config with clients = 4; rounds = 12; pes_per_kernel = 6 }

let side_json cfg (r : result) =
  Obs.Json.Obj
    [
      ( "policy",
        Obs.Json.Str (match cfg.policy with Balance.Policy.Static -> "static" | _ -> "threshold")
      );
      ("completion_cycles", Obs.Json.Int (Int64.to_int r.completion));
      ("max_occupancy", Obs.Json.Float r.max_occupancy);
      ( "occupancy",
        Obs.Json.Arr (Array.to_list (Array.map (fun o -> Obs.Json.Float o) r.occupancy)) );
      ("migrations", Obs.Json.Int (List.length r.migrations));
      ( "sequence",
        Obs.Json.Arr
          (List.map
             (fun (m : Balance.migration) ->
               Obs.Json.Obj
                 [
                   ("at", Obs.Json.Int (Int64.to_int m.Balance.m_at));
                   ("vpe", Obs.Json.Int m.Balance.m_vpe);
                   ("src", Obs.Json.Int m.Balance.m_src);
                   ("dst", Obs.Json.Int m.Balance.m_dst);
                 ])
             r.migrations) );
      ("cap_ops", Obs.Json.Int r.cap_ops);
    ]

let bench ?(preset = Full) ?(path = "BENCH_balance.json") () =
  let cfg = config_of_preset preset in
  let static_cfg = { cfg with policy = Balance.Policy.Static } in
  let static = run static_cfg in
  let balanced = run cfg in
  (match (static.audit_errors, balanced.audit_errors) with
  | [], [] -> ()
  | errs, errs' ->
    failwith
      (Printf.sprintf "Skew.bench: capability audit failed: %s"
         (String.concat "; " (errs @ errs'))));
  let speedup =
    if balanced.completion > 0L then
      Int64.to_float static.completion /. Int64.to_float balanced.completion
    else 0.0
  in
  let row name (r : result) =
    [
      name;
      Int64.to_string r.completion;
      Printf.sprintf "%.3f" r.max_occupancy;
      String.concat " "
        (Array.to_list (Array.map (fun o -> Printf.sprintf "%.2f" o) r.occupancy));
      string_of_int (List.length r.migrations);
    ]
  in
  T.print
    ~title:
      (Printf.sprintf "Skewed workload: %d clients pinned to group 0 of %d (balancer %s)"
         cfg.clients cfg.kernels
         (match preset with Full -> "full" | Smoke -> "smoke"))
    ~header:[ "policy"; "completion"; "max occ"; "occupancy/kernel"; "migrations" ]
    [ row "static" static; row "balanced" balanced ];
  Printf.printf "  completion speedup: %.2fx, max-occupancy: %.3f -> %.3f\n%!" speedup
    static.max_occupancy balanced.max_occupancy;
  Bench_json.write ~path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.Str "semperos-balance-1");
         ( "config",
           Obs.Json.Obj
             [
               ("kernels", Obs.Json.Int cfg.kernels);
               ("clients", Obs.Json.Int cfg.clients);
               ("rounds", Obs.Json.Int cfg.rounds);
               ("derives", Obs.Json.Int cfg.derives);
               ("fs_every", Obs.Json.Int cfg.fs_every);
               ("compute_cycles", Obs.Json.Int (Int64.to_int cfg.compute));
               ("interval_cycles", Obs.Json.Int (Int64.to_int cfg.interval));
             ] );
         ("static", side_json static_cfg static);
         ("balanced", side_json cfg balanced);
         ( "improvement",
           Obs.Json.Obj
             [
               ("completion_speedup", Obs.Json.Float speedup);
               ( "max_occupancy_reduction",
                 Obs.Json.Float (static.max_occupancy -. balanced.max_occupancy) );
             ] );
       ])
