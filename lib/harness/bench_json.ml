module Obs = Semper_obs.Obs
module Cost = Semper_kernel.Cost
module Workloads = Semper_trace.Workloads

let micro ?jobs ?(lens = [ 0; 20; 40; 60; 80; 100 ]) () =
  let open Obs.Json in
  let micro_row op scope cycles paper =
    Obj
      [
        ("op", Str op);
        ("scope", Str scope);
        ("cycles", Int (Int64.to_int cycles));
        ("paper_cycles", (match paper with Some p -> Int p | None -> Null));
      ]
  in
  let exchanges =
    Microbench.exchange_revokes ?jobs [ (Cost.Semperos, false); (Cost.Semperos, true) ]
  in
  let (sx, sr), (gx, gr) =
    match exchanges with [ s; g ] -> (s, g) | _ -> assert false
  in
  (* One local and one spanning measurement per length, interleaved so
     each length's pair stays adjacent in the task list. *)
  let chain_cycles =
    Microbench.chain_revocations ?jobs
      (List.concat_map
         (fun len ->
           [
             { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
             { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
           ])
         lens)
  in
  let rec chain_rows lens cycles =
    match (lens, cycles) with
    | [], [] -> []
    | len :: lens, local :: spanning :: cycles ->
      Obj
        [
          ("len", Int len);
          ("local_cycles", Int (Int64.to_int local));
          ("spanning_cycles", Int (Int64.to_int spanning));
        ]
      :: chain_rows lens cycles
    | _ -> assert false
  in
  Obj
    [
      ( "table3",
        Arr
          [
            micro_row "exchange" "local" sx (Some 3597);
            micro_row "exchange" "spanning" gx (Some 6484);
            micro_row "revoke" "local" sr (Some 1997);
            micro_row "revoke" "spanning" gr (Some 3876);
          ] );
      ("fig4_chain_revocation", Arr (chain_rows lens chain_cycles));
    ]

let apps ?jobs ?(workloads = Workloads.all) () =
  let open Obs.Json in
  let outcomes =
    Experiment.run_many ?jobs
      (List.map
         (fun spec -> Experiment.config ~kernels:1 ~services:1 ~instances:1 spec)
         workloads)
  in
  let app spec (o : Experiment.outcome) =
    Obj
      [
        ("workload", Str spec.Workloads.name);
        ("cap_ops", Int o.Experiment.cap_ops);
        ("paper_cap_ops", Int spec.Workloads.paper_cap_ops);
        ("cap_ops_per_s", Float o.Experiment.cap_ops_per_s);
        ("makespan_cycles", Int (Int64.to_int o.Experiment.max_runtime));
        ("exchanges_spanning", Int o.Experiment.exchanges_spanning);
        ("revokes_spanning", Int o.Experiment.revokes_spanning);
      ]
  in
  Obj [ ("table4_single", Arr (List.map2 app workloads outcomes)) ]

let write ~path json =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Schema validation *)

type shape = {
  sh_top : string list;  (* required top-level keys *)
  sh_rows : (string * string list) list;
      (* top-level key holding a non-empty array of objects, and the
         keys every element must carry *)
}

(* One entry per document family, keyed on the [schema] field.
   BENCH_micro.json and BENCH_apps.json predate the [schema] field and
   are keyed on their basename instead (they are also byte-protected
   baselines, so their shape cannot drift silently anyway). *)
let shapes =
  [
    ( "semperos-wallclock-1",
      {
        sh_top = [ "jobs"; "workloads" ];
        sh_rows =
          [
            ( "workloads",
              [
                "name"; "wall_s"; "events_processed"; "events_per_s"; "events_cancelled";
                "events_skipped"; "heap_peak"; "gc_minor_collections"; "gc_major_collections";
                "gc_promoted_words";
              ] );
          ];
      } );
    ( "semperos-batch-1",
      {
        sh_top = [ "jobs"; "samples" ];
        sh_rows =
          [
            ( "samples",
              [
                "name"; "cycles_off"; "cycles_on"; "ikc_off"; "ikc_on"; "batches_sent";
                "batched_msgs"; "speedup";
              ] );
          ];
      } );
    ( "semperos-balance-1",
      { sh_top = [ "config"; "static"; "balanced"; "improvement" ]; sh_rows = [] } );
    ( "semperos-fleet-1",
      { sh_top = [ "config"; "fixed"; "elastic"; "improvement" ]; sh_rows = [] } );
    ( "semperos-scale-2",
      {
        sh_top = [ "jobs"; "rows" ];
        sh_rows =
          [
            ( "rows",
              [
                "name"; "total_pes"; "kernels"; "services"; "instances"; "sessions"; "wall_s";
                "events_processed"; "events_per_s"; "cap_ops"; "cap_ops_per_s"; "heap_peak";
                "gc_minor_collections"; "gc_major_collections"; "gc_promoted_words"; "audit_caps";
                "audit_full_s"; "audit_incremental_s";
              ] );
          ];
      } );
    ( "semperos-engine-1",
      {
        sh_top = [ "samples" ];
        sh_rows = [ ("samples", [ "backend"; "op"; "pending"; "wall_s"; "ops_per_s" ]) ];
      } );
    ( "BENCH_micro.json",
      {
        sh_top = [ "table3"; "fig4_chain_revocation" ];
        sh_rows =
          [
            ("table3", [ "op"; "scope"; "cycles"; "paper_cycles" ]);
            ("fig4_chain_revocation", [ "len"; "local_cycles"; "spanning_cycles" ]);
          ];
      } );
    ( "BENCH_apps.json",
      {
        sh_top = [ "table4_single" ];
        sh_rows =
          [
            ( "table4_single",
              [
                "workload"; "cap_ops"; "paper_cap_ops"; "cap_ops_per_s"; "makespan_cycles";
                "exchanges_spanning"; "revokes_spanning";
              ] );
          ];
      } );
  ]

let ( let* ) = Result.bind

let validate ?path json =
  let open Obs.Json in
  let* fields =
    match json with
    | Obj fields -> Ok fields
    | _ -> Error "document is not a JSON object"
  in
  let* key =
    match List.assoc_opt "schema" fields with
    | Some (Str tag) -> Ok tag
    | Some _ -> Error "schema field is not a string"
    | None -> (
      match path with
      | Some p -> Ok (Filename.basename p)
      | None -> Error "document has no schema field and no path was given")
  in
  let* shape =
    match List.assoc_opt key shapes with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown schema %S" key)
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        if List.mem_assoc k fields then Ok ()
        else Error (Printf.sprintf "%s: missing top-level key %S" key k))
      (Ok ()) shape.sh_top
  in
  List.fold_left
    (fun acc (rows_key, row_keys) ->
      let* () = acc in
      match List.assoc_opt rows_key fields with
      | Some (Arr []) -> Error (Printf.sprintf "%s: %S is empty" key rows_key)
      | Some (Arr rows) ->
        List.fold_left
          (fun acc row ->
            let* () = acc in
            match row with
            | Obj row_fields ->
              List.fold_left
                (fun acc k ->
                  let* () = acc in
                  if List.mem_assoc k row_fields then Ok ()
                  else Error (Printf.sprintf "%s: %S element missing key %S" key rows_key k))
                (Ok ()) row_keys
            | _ -> Error (Printf.sprintf "%s: %S element is not an object" key rows_key))
          (Ok ()) rows
      | Some _ -> Error (Printf.sprintf "%s: %S is not an array" key rows_key)
      | None -> Error (Printf.sprintf "%s: missing top-level key %S" key rows_key))
    (Ok ()) shape.sh_rows

let validate_file path =
  let* doc =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  in
  let* json = Obs.Json.parse doc in
  validate ~path json
