module Obs = Semper_obs.Obs
module Cost = Semper_kernel.Cost
module Workloads = Semper_trace.Workloads

let micro ?jobs ?(lens = [ 0; 20; 40; 60; 80; 100 ]) () =
  let open Obs.Json in
  let micro_row op scope cycles paper =
    Obj
      [
        ("op", Str op);
        ("scope", Str scope);
        ("cycles", Int (Int64.to_int cycles));
        ("paper_cycles", (match paper with Some p -> Int p | None -> Null));
      ]
  in
  let exchanges =
    Microbench.exchange_revokes ?jobs [ (Cost.Semperos, false); (Cost.Semperos, true) ]
  in
  let (sx, sr), (gx, gr) =
    match exchanges with [ s; g ] -> (s, g) | _ -> assert false
  in
  (* One local and one spanning measurement per length, interleaved so
     each length's pair stays adjacent in the task list. *)
  let chain_cycles =
    Microbench.chain_revocations ?jobs
      (List.concat_map
         (fun len ->
           [
             { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
             { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
           ])
         lens)
  in
  let rec chain_rows lens cycles =
    match (lens, cycles) with
    | [], [] -> []
    | len :: lens, local :: spanning :: cycles ->
      Obj
        [
          ("len", Int len);
          ("local_cycles", Int (Int64.to_int local));
          ("spanning_cycles", Int (Int64.to_int spanning));
        ]
      :: chain_rows lens cycles
    | _ -> assert false
  in
  Obj
    [
      ( "table3",
        Arr
          [
            micro_row "exchange" "local" sx (Some 3597);
            micro_row "exchange" "spanning" gx (Some 6484);
            micro_row "revoke" "local" sr (Some 1997);
            micro_row "revoke" "spanning" gr (Some 3876);
          ] );
      ("fig4_chain_revocation", Arr (chain_rows lens chain_cycles));
    ]

let apps ?jobs ?(workloads = Workloads.all) () =
  let open Obs.Json in
  let outcomes =
    Experiment.run_many ?jobs
      (List.map
         (fun spec -> Experiment.config ~kernels:1 ~services:1 ~instances:1 spec)
         workloads)
  in
  let app spec (o : Experiment.outcome) =
    Obj
      [
        ("workload", Str spec.Workloads.name);
        ("cap_ops", Int o.Experiment.cap_ops);
        ("paper_cap_ops", Int spec.Workloads.paper_cap_ops);
        ("cap_ops_per_s", Float o.Experiment.cap_ops_per_s);
        ("makespan_cycles", Int (Int64.to_int o.Experiment.max_runtime));
        ("exchanges_spanning", Int o.Experiment.exchanges_spanning);
        ("revokes_spanning", Int o.Experiment.revokes_spanning);
      ]
  in
  Obj [ ("table4_single", Arr (List.map2 app workloads outcomes)) ]

let write ~path json =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path
