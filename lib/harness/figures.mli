(** Recordable figure experiments.

    Each figure is a flat list of {e points} (pure-data specs), a pure
    [compute] from point to result, and a [render] from the complete
    result list to the figure's text (an aligned table or series) and
    JSON. This shape is what makes figure runs checkpointable: a
    recording ({!Record}) computes points in order, periodically saving
    the result prefix, and a replay resumes from any prefix — the final
    rendering depends only on the result list, so an interrupted-and-
    resumed run is byte-identical to an uninterrupted one. *)

type preset = Smoke | Full

val preset_to_string : preset -> string
val preset_of_string : string -> preset option

type output = {
  text : string;  (** the rendered table/series, as printed by the CLI *)
  json : Semper_obs.Obs.Json.t;  (** the same data as a JSON object *)
}

type point = P_chain of Microbench.chain_spec | P_app of Experiment.config

type result = R_cycles of int64 | R_app of Experiment.outcome

(** Run one point's simulation. Pure in the point: equal points give
    equal results. *)
val compute : point -> result

type t = {
  name : string;
  doc : string;
  points : preset -> point list;
  render : result list -> output;
}

(** The recordable figures: [fig4] (chain revocation sweep) and [fig6]
    (application benchmark grid). *)
val all : t list

val find : string -> t option

(** Uninterrupted reference run: compute every point (fanned out over
    domains, results in point order) and render. *)
val run : ?jobs:int -> t -> preset -> output
