(** Skewed-workload benchmark for the autonomic load balancer.

    Builds a multi-kernel system whose clients are all pinned to one PE
    group (the hotspot) while the other groups idle, runs a mixed
    workload per client — capability churn (alloc → derive× → revoke),
    periodic m3fs file traffic against a service pinned at kernel 0,
    and compute gaps between rounds — and measures how the balancer's
    occupancy-driven migrations change per-kernel occupancy and
    completion time against the {!Semper_balance.Balance.Policy.Static}
    baseline.

    The compute gaps are what give the balancer its windows: between
    rounds a client holds only its session capability, which the
    candidate gate accepts; mid-round it has a syscall in flight or
    holds derived capabilities, and is skipped. *)

type config = {
  kernels : int;
  pes_per_kernel : int;  (** user PEs per group; the hotspot group must fit all clients *)
  clients : int;
  rounds : int;  (** capability-churn rounds per client *)
  derives : int;  (** derives per round (children of the round's alloc root) *)
  fs_every : int;  (** file-traffic burst every N rounds (0 = never) *)
  fs_bytes : int;  (** bytes written per burst *)
  compute : int64;  (** compute gap between rounds, cycles *)
  spread : bool;  (** [false]: all clients in group 0 (hotspot); [true]: round-robin *)
  policy : Semper_balance.Balance.Policy.t;
  interval : int64;  (** balancer control-tick period, cycles *)
  fault : Semper_fault.Fault.profile option;
}

val default_config : config

type result = {
  completion : int64;  (** cycles until the last client finished *)
  occupancy : float array;  (** per-kernel busy fraction over [0, completion] *)
  max_occupancy : float;
  migrations : Semper_balance.Balance.migration list;
  cap_ops : int;
  audit_errors : string list;  (** post-run capability-forest violations (must be []) *)
}

(** Run one configuration to completion (drains the engine, audits the
    capability forest). Raises [Failure] on any client error. *)
val run : config -> result

type preset = Full | Smoke

(** [bench ?preset ?path ()] runs the hotspot configuration twice —
    static baseline, then the threshold policy — prints a comparison
    table, and writes [BENCH_balance.json] (schema
    [semperos-balance-1]) with both sides plus the migration
    sequence. *)
val bench : ?preset:preset -> ?path:string -> unit -> unit
