(** Scale-ceiling benchmark: the simulator and kernel data structures
    at 1K, 2K and 4K PEs.

    Each row builds a system of the given size, replays an application
    mix over it ({!Experiment.run_many}, serial), and reports host-side
    throughput — capability operations and engine events per wall-clock
    second — together with the engine heap high-water mark and GC
    counters. A second phase at the same scale populates a capability
    forest spanning every PE partition, performs a small steady-state
    churn, and times a full {!Audit.run} against an
    {!Audit.Incremental.run} over the same churn, demonstrating that
    auditing no longer dominates wall-clock at 4K PEs.

    A final session row replaces the application mix with a
    trace-driven open-session generator: a fixed-seed exponential
    arrival trace is scheduled up front (so the engine starts with the
    whole trace pending — the regime that motivated the timer-wheel
    queue), and every arrival is a cross-kernel
    [Sys_open_session] + [Sys_revoke] pair against a minimal session
    service. The [Full] preset drives one million sessions.

    Like [BENCH_wallclock.json], the output measures the {e host} and
    is excluded from the byte-identity contract. *)

type preset =
  | Full  (** 1K / 2K / 4K PE application rows + a 1M-session row *)
  | Smoke  (** one tiny row of each kind, for the [@scale-smoke] test *)

type row = {
  r_name : string;
  r_total_pes : int;  (** instances + services + kernels *)
  r_kernels : int;
  r_services : int;
  r_instances : int;
  r_sessions : int;
      (** sessions opened by the trace generator; 0 for the
          application-mix rows *)
  r_wall_s : float;
      (** wall-clock of the event loop alone, seconds — setup work
          (trace/image building, VPE spawning) processes no events and
          is excluded, so [r_events_per_s] measures the simulator.
          Application rows report the best (minimum) of three
          repetitions; the simulated counts are identical across them *)
  r_events : int;  (** engine events executed by the mix *)
  r_events_per_s : float;
  r_cap_ops : int;  (** kernel-side capability operations of the mix *)
  r_cap_ops_per_s : float;  (** [r_cap_ops / r_wall_s], host-side rate *)
  r_heap_peak : int;
      (** engine-queue high-water mark of this row (the mark is reset
          at each row boundary, see {!Engine.Totals.reset_heap_peak}) *)
  r_minor_collections : int;  (** minor GCs during the mix *)
  r_major_collections : int;  (** major GC cycles during the mix *)
  r_promoted_words : float;  (** words promoted minor -> major *)
  r_audit_caps : int;  (** live capabilities in the churn forest *)
  r_audit_full_s : float;  (** one full {!Audit.run} after the churn *)
  r_audit_incremental_s : float;
      (** one {!Audit.Incremental.run} over the same churn *)
}

(** Run the preset's rows and measure each. *)
val rows : ?preset:preset -> unit -> row list

(** Deterministically ordered JSON document for a measured run. *)
val json : row list -> Semper_obs.Obs.Json.t

(** Render the rows as a table on stdout. *)
val print : row list -> unit

(** [rows] + [print] + write JSON to [path]
    (default ["BENCH_scale.json"]). *)
val run : ?preset:preset -> ?path:string -> unit -> unit
