(** Scale-ceiling benchmark: the simulator and kernel data structures
    at 1K, 2K and 4K PEs.

    Each row builds a system of the given size, replays an application
    mix over it ({!Experiment.run_many}, serial), and reports host-side
    throughput — capability operations and engine events per wall-clock
    second — together with the engine heap high-water mark and GC
    counters. A second phase at the same scale populates a capability
    forest spanning every PE partition, performs a small steady-state
    churn, and times a full {!Audit.run} against an
    {!Audit.Incremental.run} over the same churn, demonstrating that
    auditing no longer dominates wall-clock at 4K PEs.

    Like [BENCH_wallclock.json], the output measures the {e host} and
    is excluded from the byte-identity contract. *)

type preset =
  | Full  (** 1K / 2K / 4K PE rows *)
  | Smoke  (** one tiny row, for the [@scale-smoke] test *)

type row = {
  r_name : string;
  r_total_pes : int;  (** instances + services + kernels *)
  r_kernels : int;
  r_services : int;
  r_instances : int;
  r_wall_s : float;  (** application-mix wall-clock, seconds *)
  r_events : int;  (** engine events executed by the mix *)
  r_events_per_s : float;
  r_cap_ops : int;  (** kernel-side capability operations of the mix *)
  r_cap_ops_per_s : float;  (** [r_cap_ops / r_wall_s], host-side rate *)
  r_heap_peak : int;
      (** process-wide monotone high-water mark as of the end of this
          row, not a per-row delta *)
  r_minor_collections : int;  (** minor GCs during the mix *)
  r_major_collections : int;  (** major GC cycles during the mix *)
  r_promoted_words : float;  (** words promoted minor -> major *)
  r_audit_caps : int;  (** live capabilities in the churn forest *)
  r_audit_full_s : float;  (** one full {!Audit.run} after the churn *)
  r_audit_incremental_s : float;
      (** one {!Audit.Incremental.run} over the same churn *)
}

(** Run the preset's rows and measure each. *)
val rows : ?preset:preset -> unit -> row list

(** Deterministically ordered JSON document for a measured run. *)
val json : row list -> Semper_obs.Obs.Json.t

(** Render the rows as a table on stdout. *)
val print : row list -> unit

(** [rows] + [print] + write JSON to [path]
    (default ["BENCH_scale.json"]). *)
val run : ?preset:preset -> ?path:string -> unit -> unit
