(** Elastic-fleet benchmark: an overloaded two-kernel system
    autoscaling out to absorb a load surge and back once it recedes.

    A pool of long-lived base clients plus a pool of short-lived surge
    clients hammer the two boot kernels with the skew benchmark's
    capability-churn loop (alloc → derive → revoke → file burst). The
    {!Semper_fleet.Fleet.Auto} autoscaler watches mean Active
    occupancy: the surge pushes it over the high-water mark (spare
    kernels join and absorb partitions), and once the surge clients
    exit it falls below the low-water mark (the emptiest kernels drain
    and retire, back to the boot fleet). A fixed run with the
    autoscaler off is the baseline.

    Safety is asserted, not assumed: per-transition checks (retired
    kernels hold nothing; joined kernels own their home partitions;
    every membership replica agrees on lifecycle states) plus a full
    cross-kernel capability audit at the end — zero lost capabilities.
    The longest handoff wave is reported as the syscall-stall bound. *)

type config = {
  boot : int;  (** kernels Active at boot *)
  spares : int;  (** kernels provisioned Spare, available to join *)
  pes_per_kernel : int;
  base_clients : int;  (** run the full [base_rounds] *)
  surge_clients : int;  (** run [surge_rounds], then exit — the load spike *)
  base_rounds : int;
  surge_rounds : int;
  derives : int;
  fs_every : int;
  fs_bytes : int;
  compute : int64;  (** base clients' inter-round compute gap *)
  surge_compute : int64;  (** surge clients' gap — small, so the surge saturates *)
  policy : Semper_balance.Balance.Fleet_policy.t;
  interval : int64;
  fault : Semper_fault.Fault.profile option;
}

val default_config : config

type result = {
  completion : int64;  (** cycle the last client finished *)
  surge_done : int64;  (** cycle the last surge client exited — the loaded phase *)
  settled : int64;  (** cycle the fleet was back at [boot] Active kernels *)
  transitions : Semper_fleet.Fleet.Auto.transition list;
  peak_active : int;
  final_active : int;
  max_wave : int64;  (** longest handoff wave — the syscall-stall bound *)
  transition_errors : string list;  (** per-transition safety violations *)
  occupancy : float array;
  cap_ops : int;
  audit_errors : string list;
}

(** One run. [elastic = false] leaves the autoscaler off (the fixed
    baseline; spares stay idle). Deterministic for a given config. *)
val run : ?elastic:bool -> config -> result

type preset = Full | Smoke

val config_of_preset : preset -> config

(** Run fixed and elastic back to back, print the comparison, fail on
    any audit or transition-check violation (or if the fleet does not
    settle back at the boot size), and write [BENCH_fleet.json]
    (schema [semperos-fleet-1]). *)
val bench : ?preset:preset -> ?path:string -> unit -> unit
