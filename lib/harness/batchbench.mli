(** IKC batching benchmark (BENCH_batch.json): the Figure 4 spanning
    chain, a Figure 5-shaped tree, and a burst of concurrent spanning
    obtains, each run with slot-window coalescing off and on. Reports
    simulated cycles and inter-kernel message counts side by side.

    Everything runs serially and the simulator is seeded, so the
    emitted JSON is byte-identical across runs and [--jobs] values. *)

type sample = {
  b_name : string;
  b_off_cycles : int64;
  b_on_cycles : int64;
  b_off_ikc : int;  (** Ik_* messages put on the fabric, batching off *)
  b_on_ikc : int;   (** same workload phase, batching on (frames count as one) *)
  b_batches : int;  (** framed multi-messages shipped, batching on *)
  b_batched_msgs : int;  (** inner messages those frames carried *)
}

type preset = Full | Smoke

val samples : ?preset:preset -> unit -> sample list
val json : sample list -> Semper_obs.Obs.Json.t
val print : sample list -> unit

(** Print the table and write the JSON to [path] (default
    [BENCH_batch.json]). *)
val run : ?preset:preset -> ?path:string -> unit -> unit
