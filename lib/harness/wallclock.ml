module Obs = Semper_obs.Obs
module Engine = Semper_sim.Engine
module Cost = Semper_kernel.Cost
module Workloads = Semper_trace.Workloads
module T = Semper_util.Table

type sample = {
  s_name : string;
  s_wall_s : float;
  s_events : int;
  s_events_per_s : float;
  s_cancelled : int;
  s_skipped : int;
  s_heap_peak : int;
  s_minor_collections : int;
  s_major_collections : int;
  s_promoted_words : float;
}

type preset = Full | Smoke

(* Same spec list as the bench harness's Figure 4 sweep. *)
let fig4_specs lengths =
  List.concat_map
    (fun len ->
      [
        { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
        { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
        { Microbench.c_mode = Cost.M3; c_spanning = false; c_len = len; c_batching = false };
      ])
    lengths

(* Same shape as the bench harness's Figure 6 grid (singles plus an
   instances sweep), scaled down for the smoke preset. With 32 services
   on 32 kernels every group hosts a service and the paper's placement
   keeps every session group-local, so the grid alone never touches the
   inter-kernel retransmission machinery; the full preset therefore
   appends a services < kernels sweep of the same harness, which forces
   cross-group sessions and exercises the cancellable retry timers at
   application scale (see EXPERIMENTS.md). *)
let fig6_grid ~kernels ~services ~instance_counts ~workloads =
  List.concat_map
    (fun n ->
      List.map (fun spec -> Experiment.config ~kernels ~services ~instances:n spec) workloads)
    instance_counts

let fig6_configs ~kernels ~services ~instance_counts ~workloads =
  List.map (fun spec -> Experiment.config ~kernels ~services ~instances:1 spec) workloads
  @ fig6_grid ~kernels ~services ~instance_counts ~workloads

let workloads_of_preset = function
  | Full ->
    [
      ( "table3",
        fun () ->
          ignore
            (Microbench.exchange_revokes ~jobs:1
               [ (Cost.Semperos, false); (Cost.Semperos, true); (Cost.M3, false) ]) );
      ( "fig4",
        fun () ->
          ignore
            (Microbench.chain_revocations ~jobs:1
               (fig4_specs [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ])) );
      ( "fig6",
        fun () ->
          ignore
            (Experiment.run_many ~jobs:1
               (fig6_configs ~kernels:32 ~services:32
                  ~instance_counts:[ 64; 128; 192; 256; 320; 384; 448; 512 ]
                  ~workloads:Workloads.all
                @ fig6_grid ~kernels:32 ~services:16 ~instance_counts:[ 64; 512 ]
                    ~workloads:Workloads.all)) );
    ]
  | Smoke ->
    [
      ("table3", fun () -> ignore (Microbench.exchange_revokes ~jobs:1 [ (Cost.Semperos, true) ]));
      ("fig4", fun () -> ignore (Microbench.chain_revocations ~jobs:1 (fig4_specs [ 0; 5 ])));
      ( "fig6",
        fun () ->
          ignore
            (Experiment.run_many ~jobs:1
               (fig6_configs ~kernels:2 ~services:1 ~instance_counts:[ 4 ]
                  ~workloads:[ Workloads.tar ])) );
    ]

(* Workloads run serially ([jobs:1]): the point is a comparable
   events/sec trajectory for the simulator core, and domain fan-out
   would fold scheduler noise into every number. *)
let measure (name, f) =
  let p0 = Engine.Totals.processed () in
  let c0 = Engine.Totals.cancelled () in
  let s0 = Engine.Totals.skipped () in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let events = Engine.Totals.processed () - p0 in
  {
    s_name = name;
    s_wall_s = wall;
    s_events = events;
    s_events_per_s = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    s_cancelled = Engine.Totals.cancelled () - c0;
    s_skipped = Engine.Totals.skipped () - s0;
    s_heap_peak = Engine.Totals.heap_peak ();
    s_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    s_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    s_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
  }

let samples ?(preset = Full) () = List.map measure (workloads_of_preset preset)

let sample_json s =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str s.s_name);
      ("wall_s", Obs.Json.Float s.s_wall_s);
      ("events_processed", Obs.Json.Int s.s_events);
      ("events_per_s", Obs.Json.Float s.s_events_per_s);
      ("events_cancelled", Obs.Json.Int s.s_cancelled);
      ("events_skipped", Obs.Json.Int s.s_skipped);
      ("heap_peak", Obs.Json.Int s.s_heap_peak);
      ("gc_minor_collections", Obs.Json.Int s.s_minor_collections);
      ("gc_major_collections", Obs.Json.Int s.s_major_collections);
      ("gc_promoted_words", Obs.Json.Float s.s_promoted_words);
    ]

let json samples =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "semperos-wallclock-1");
      ("jobs", Obs.Json.Int 1);
      ("workloads", Obs.Json.Arr (List.map sample_json samples));
    ]

let print samples =
  T.print ~title:"Wall-clock throughput of the simulator core (host-dependent)"
    ~header:
      [
        "workload"; "wall_s"; "events"; "events/s"; "cancelled"; "skipped"; "heap_peak";
        "gc_minor"; "gc_major"; "promoted_w";
      ]
    (List.map
       (fun s ->
         [
           s.s_name;
           Printf.sprintf "%.3f" s.s_wall_s;
           string_of_int s.s_events;
           Printf.sprintf "%.0f" s.s_events_per_s;
           string_of_int s.s_cancelled;
           string_of_int s.s_skipped;
           string_of_int s.s_heap_peak;
           string_of_int s.s_minor_collections;
           string_of_int s.s_major_collections;
           Printf.sprintf "%.0f" s.s_promoted_words;
         ])
       samples)

let run ?(preset = Full) ?(path = "BENCH_wallclock.json") () =
  let ss = samples ~preset () in
  print ss;
  Bench_json.write ~path (json ss)
