module Domain_pool = Semper_util.Domain_pool
module Obs = Semper_obs.Obs

(* Set once by the CLI from --jobs before any runs, read afterwards —
   main-domain only, never touched by workers. *)
let configured = ref None

let set_jobs j =
  if j < 1 then invalid_arg "Runner.set_jobs: jobs < 1";
  configured := Some j

let jobs () =
  match !configured with Some j -> j | None -> Domain_pool.available_cores ()

let run_list ?jobs:j thunks =
  Domain_pool.run ~jobs:(match j with Some j -> j | None -> jobs ()) thunks

let map ?jobs f xs = run_list ?jobs (List.map (fun x () -> f x) xs)

let experiments ?jobs cfgs = map ?jobs Experiment.run cfgs

let merge_snapshots labeled =
  let seen = Hashtbl.create (List.length labeled) in
  List.iter
    (fun (label, _) ->
      if Hashtbl.mem seen label then
        invalid_arg (Printf.sprintf "Runner.merge_snapshots: duplicate label %S" label);
      Hashtbl.replace seen label ())
    labeled;
  Obs.Json.Obj labeled
