module Checkpoint = Semper_sim.Checkpoint

let kind = "recording"
let manifest_tag = "semperos-recording 1"

type manifest = {
  m_figure : string;
  m_preset : Figures.preset;
  m_total : int;
  m_every : int;
}

let manifest_path dir = Filename.concat dir "manifest"
let image_path dir n = Filename.concat dir (Printf.sprintf "ckpt-%d.img" n)

let write_manifest dir m =
  let oc = open_out (manifest_path dir) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s\nfigure %s\npreset %s\ntotal %d\nevery %d\n" manifest_tag m.m_figure
        (Figures.preset_to_string m.m_preset)
        m.m_total m.m_every)

let read_manifest dir =
  match open_in (manifest_path dir) with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let text = really_input_string ic (in_channel_length ic) in
        let lines =
          String.split_on_char '\n' text |> List.map String.trim |> List.filter (fun l -> l <> "")
        in
        match lines with
        | tag :: rest when tag = manifest_tag -> (
          let field name =
            List.find_map
              (fun l ->
                let p = name ^ " " in
                if String.length l > String.length p && String.sub l 0 (String.length p) = p then
                  Some (String.sub l (String.length p) (String.length l - String.length p))
                else None)
              rest
          in
          match (field "figure", Option.bind (field "preset") Figures.preset_of_string,
                 Option.bind (field "total") int_of_string_opt,
                 Option.bind (field "every") int_of_string_opt)
          with
          | Some figure, Some preset, Some total, Some every ->
            Ok { m_figure = figure; m_preset = preset; m_total = total; m_every = every }
          | _ -> Error "recording manifest: missing or malformed field")
        | _ -> Error "recording manifest: missing or unsupported format tag")

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let rec take n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: rest ->
    let chunk, rest = take (n - 1) rest in
    (x :: chunk, rest)

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest

(* Compute [points] in chunks of [every], appending to [prefix];
   [save] runs after each chunk with the results completed so far.
   Chunking only batches the domain fan-out — results always land in
   point order — so the outcome is independent of both [jobs] and where
   the chunk boundaries fall. *)
let compute_from ?jobs ~every ~save prefix points =
  let rec go acc points =
    match points with
    | [] -> acc
    | _ ->
      let chunk, rest = take every points in
      let acc = acc @ Semper_util.Domain_pool.map ?jobs Figures.compute chunk in
      save (List.length acc) acc;
      go acc rest
  in
  go prefix points

let record ?jobs ?(every = 4) ~dir fig preset =
  if every < 1 then invalid_arg "Record.record: every must be >= 1";
  ensure_dir dir;
  let points = fig.Figures.points preset in
  write_manifest dir
    { m_figure = fig.Figures.name; m_preset = preset; m_total = List.length points; m_every = every };
  let save done_ results =
    Checkpoint.write (image_path dir done_)
      (Checkpoint.save ~kind ~label:fig.Figures.name ~position:(Int64.of_int done_) results)
  in
  fig.Figures.render (compute_from ?jobs ~every ~save [] points)

(* Locate the completed-prefix checkpoint nearest below [target]. A
   checkpoint that exists but fails validation (stale build, version
   bump, corruption) is a hard error, not a fallback — silently
   recomputing from zero would mask exactly the states the format
   rules are there to reject. Only a missing file falls through to the
   previous chunk boundary. *)
let rec nearest_prefix dir ~every c =
  if c <= 0 then Ok (0, [])
  else
    match Checkpoint.read (image_path dir c) with
    | Error _ -> nearest_prefix dir ~every (c - every)
    | Ok image -> (
      match Checkpoint.load ~kind image with
      | Error e -> Error (Printf.sprintf "%s: %s" (image_path dir c) e)
      | Ok ((header : Checkpoint.header), (results : Figures.result list)) ->
        if Int64.to_int header.Checkpoint.position <> c || List.length results <> c then
          Error (Printf.sprintf "%s: results do not match recorded position" (image_path dir c))
        else Ok (c, results))

let replay ?jobs ~dir ~from_ () =
  match read_manifest dir with
  | Error e -> Error e
  | Ok m -> (
    match Figures.find m.m_figure with
    | None -> Error (Printf.sprintf "recording references unknown figure %S" m.m_figure)
    | Some fig -> (
      let points = fig.Figures.points m.m_preset in
      if List.length points <> m.m_total then
        Error "recording manifest does not match this build's point list"
      else
        let target = max 0 (min from_ m.m_total) in
        match nearest_prefix dir ~every:m.m_every (target / m.m_every * m.m_every) with
        | Error e -> Error e
        | Ok (done_, prefix) ->
          let results =
            compute_from ?jobs ~every:m.m_every ~save:(fun _ _ -> ()) prefix
              (drop done_ points)
          in
          Ok (done_, fig.Figures.render results)))
