module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Mapdb = Semper_caps.Mapdb
module Membership = Semper_ddl.Membership
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module M3fs = Semper_m3fs.M3fs
module Client = Semper_m3fs.Client
module Balance = Semper_balance.Balance
module Fleet = Semper_fleet.Fleet
module Obs = Semper_obs.Obs
module T = Semper_util.Table

type config = {
  boot : int;  (** kernels Active at boot *)
  spares : int;  (** kernels provisioned Spare, available to join *)
  pes_per_kernel : int;
  base_clients : int;  (** run the full [base_rounds] *)
  surge_clients : int;  (** run [surge_rounds], then exit — the load spike *)
  base_rounds : int;
  surge_rounds : int;
  derives : int;
  fs_every : int;
  fs_bytes : int;
  compute : int64;  (** base clients' inter-round compute gap *)
  surge_compute : int64;  (** surge clients' gap — small, so the surge saturates *)
  policy : Balance.Fleet_policy.t;
  interval : int64;
  fault : Semper_fault.Fault.profile option;
}

let default_config =
  {
    boot = 2;
    spares = 2;
    pes_per_kernel = 8;
    base_clients = 4;
    surge_clients = 8;
    base_rounds = 60;
    surge_rounds = 24;
    derives = 8;
    fs_every = 5;
    fs_bytes = 4096;
    compute = 30_000L;
    surge_compute = 3_000L;
    policy = { Balance.Fleet_policy.default with min_active = 2 };
    interval = 25_000L;
    fault = None;
  }

type result = {
  completion : int64;  (** cycle the last client finished *)
  surge_done : int64;  (** cycle the last surge client exited — the loaded phase *)
  settled : int64;  (** cycle the fleet was back at [boot] Active kernels *)
  transitions : Fleet.Auto.transition list;
  peak_active : int;
  final_active : int;
  max_wave : int64;  (** longest handoff wave — the syscall-stall bound *)
  transition_errors : string list;
  occupancy : float array;
  cap_ops : int;
  audit_errors : string list;
}

let ok who = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Fleetbench.run: %s: %s" who e)

let sel_of who = function
  | P.R_sel s -> s
  | r -> failwith (Format.asprintf "Fleetbench.run: %s: unexpected reply %a" who P.pp_reply r)

(* One client: capability churn plus a file burst, identical to the
   skew benchmark's loop, except short-lived clients issue [Sys_exit]
   when their rounds run out — that is what makes the load recede. *)
let run_client cfg sys (client : Client.t) ~index ~rounds ~compute ~exit_after ~finished =
  let vpe = Client.vpe client in
  let engine = System.engine sys in
  let path = Printf.sprintf "/hot%d" index in
  let fs_burst r k =
    if cfg.fs_every > 0 && (r + 1) mod cfg.fs_every = 0 then
      Client.open_ client path ~write:true ~create:true (fun fd ->
          let fd = ok "open" fd in
          Client.write client ~fd ~bytes:cfg.fs_bytes (fun w ->
              ok "write" w;
              Client.close client ~fd (fun c ->
                  ok "close" c;
                  k ())))
    else k ()
  in
  let finish () =
    if exit_after then
      System.syscall sys vpe P.Sys_exit (fun reply ->
          (match reply with
          | P.R_ok -> ()
          | r -> failwith (Format.asprintf "Fleetbench.run: exit: %a" P.pp_reply r));
          finished ())
    else finished ()
  in
  let rec round r =
    if r >= rounds then finish ()
    else
      System.syscall sys vpe (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) (fun reply ->
          let root = sel_of "alloc_mem" reply in
          let rec derive d =
            if d >= cfg.derives then
              System.syscall sys vpe (P.Sys_revoke { sel = root; own = true }) (fun reply ->
                  (match reply with
                  | P.R_ok -> ()
                  | r -> failwith (Format.asprintf "Fleetbench.run: revoke: %a" P.pp_reply r));
                  fs_burst r (fun () ->
                      Engine.after engine compute (fun () -> round (r + 1))))
            else
              System.syscall sys vpe
                (P.Sys_derive_mem { sel = root; offset = 0L; size = 64L; perms = Perms.r })
                (fun reply ->
                  ignore (sel_of "derive_mem" reply);
                  derive (d + 1))
          in
          derive 0)
  in
  round 0

(* Safety checks at each transition's completion (the full capability
   audit needs an idle engine and runs once at the end): a retired
   kernel must hold nothing, a joined kernel must own its home
   partition range again, and every kernel replica must agree on the
   transitioned kernel's lifecycle state. *)
let transition_check sys (tr : Fleet.Auto.transition) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (match tr.Fleet.Auto.t_kind with
  | `Drain ->
    let k = System.kernel sys tr.Fleet.Auto.t_kernel in
    let caps = Mapdb.count (Kernel.mapdb k) in
    let vpes = Kernel.vpe_count k in
    if caps > 0 then err "kernel %d retired with %d capability records" tr.Fleet.Auto.t_kernel caps;
    if vpes > 0 then err "kernel %d retired with %d VPEs" tr.Fleet.Auto.t_kernel vpes
  | `Join ->
    List.iter
      (fun pe ->
        match Membership.kernel_of_pe (System.membership sys) pe with
        | owner when owner = tr.Fleet.Auto.t_kernel -> ()
        | owner -> err "joined kernel %d: home PE %d routed to %d" tr.Fleet.Auto.t_kernel pe owner
        | exception Membership.Mid_handoff _ ->
          err "joined kernel %d: home PE %d still mid-handoff" tr.Fleet.Auto.t_kernel pe)
      (System.home_pes sys ~kernel:tr.Fleet.Auto.t_kernel));
  let expect = Membership.kernel_state (System.membership sys) tr.Fleet.Auto.t_kernel in
  List.iter
    (fun k ->
      if Membership.kernel_state (Kernel.membership k) tr.Fleet.Auto.t_kernel <> expect then
        err "kernel %d replica disagrees on kernel %d's lifecycle state" (Kernel.id k)
          tr.Fleet.Auto.t_kernel)
    (System.kernels sys);
  List.rev !errs

let run ?(elastic = true) cfg =
  if cfg.boot < 2 then invalid_arg "Fleetbench.run: need at least two boot kernels";
  let clients = cfg.base_clients + cfg.surge_clients in
  if (clients + cfg.boot - 1) / cfg.boot + 1 > cfg.pes_per_kernel then
    invalid_arg "Fleetbench.run: boot groups cannot fit all clients plus the service";
  let sys =
    System.create
      (System.config ~kernels:cfg.boot ~spare_kernels:cfg.spares
         ~user_pes_per_kernel:cfg.pes_per_kernel ?fault:cfg.fault ())
  in
  let engine = System.engine sys in
  (* The file service is pinned at kernel 0, which therefore can never
     drain — the autoscaler's safety gate knows that. *)
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:[] () in
  let remaining = ref clients in
  let surge_remaining = ref cfg.surge_clients in
  let completion = ref 0L in
  let surge_done = ref 0L in
  let transition_errors = ref [] in
  let auto =
    Fleet.Auto.create ~policy:cfg.policy ~interval:cfg.interval
      (* Keep ticking after the last client finishes until the fleet has
         scaled back down to the boot size — the ramp-down is part of
         the deliverable. *)
      ~stop_when:(fun () ->
        !remaining = 0
        && List.length
             (List.filter
                (fun k -> Membership.kernel_state (System.membership sys) k = Membership.Active)
                (List.init (System.kernel_count sys) Fun.id))
           <= cfg.boot)
      ~on_transition:(fun tr -> transition_errors := !transition_errors @ transition_check sys tr)
      sys
  in
  for i = 0 to clients - 1 do
    let kernel = i mod cfg.boot in
    let vpe = System.spawn_vpe sys ~kernel in
    let surge = i >= cfg.base_clients in
    let rounds = if surge then cfg.surge_rounds else cfg.base_rounds in
    let compute = if surge then cfg.surge_compute else cfg.compute in
    Engine.after engine (Int64.of_int (i * 1009)) (fun () ->
        Client.connect sys fs ~vpe (fun c ->
            let client = ok "connect" c in
            run_client cfg sys client ~index:i ~rounds ~compute ~exit_after:surge ~finished:(fun () ->
                decr remaining;
                if surge then begin
                  decr surge_remaining;
                  if !surge_remaining = 0 then surge_done := Engine.now engine
                end;
                if !remaining = 0 then completion := Engine.now engine)))
  done;
  if elastic then Fleet.Auto.start auto;
  ignore (System.run sys);
  Fleet.Auto.stop auto;
  if !remaining > 0 then failwith "Fleetbench.run: engine drained before all clients finished";
  let transitions = Fleet.Auto.transitions auto in
  let active_now =
    List.length
      (List.filter
         (fun k -> Membership.kernel_state (System.membership sys) k = Membership.Active)
         (List.init (System.kernel_count sys) Fun.id))
  in
  let peak_active =
    List.fold_left
      (fun (cur, peak) (tr : Fleet.Auto.transition) ->
        let cur = match tr.Fleet.Auto.t_kind with `Join -> cur + 1 | `Drain -> cur - 1 in
        (cur, max peak cur))
      (cfg.boot, cfg.boot) transitions
    |> snd
  in
  let settled =
    List.fold_left
      (fun acc (tr : Fleet.Auto.transition) ->
        match tr.Fleet.Auto.t_finish with Some f when f > acc -> f | _ -> acc)
      !completion transitions
  in
  let max_wave =
    List.fold_left
      (fun acc (tr : Fleet.Auto.transition) -> max acc tr.Fleet.Auto.t_max_wave)
      0L transitions
  in
  let horizon = if settled = 0L then 1L else settled in
  let occupancy =
    Array.of_list
      (List.map (fun k -> Server.utilisation (Kernel.server k) ~horizon) (System.kernels sys))
  in
  let audit = Audit.run sys in
  {
    completion = !completion;
    surge_done = !surge_done;
    settled;
    transitions;
    peak_active;
    final_active = active_now;
    max_wave;
    transition_errors = !transition_errors;
    occupancy;
    cap_ops = System.total_cap_ops sys;
    audit_errors = audit.Audit.errors;
  }

(* --------------------------------------------------------------- *)
(* Benchmark: fixed two-kernel fleet vs elastic autoscaling         *)

type preset = Full | Smoke

let config_of_preset = function
  | Full -> default_config
  | Smoke ->
    {
      default_config with
      spares = 1;
      base_clients = 2;
      surge_clients = 6;
      base_rounds = 36;
      surge_rounds = 14;
      pes_per_kernel = 6;
    }

let side_json (r : result) =
  Obs.Json.Obj
    [
      ("completion_cycles", Obs.Json.Int (Int64.to_int r.completion));
      ("surge_done_cycles", Obs.Json.Int (Int64.to_int r.surge_done));
      ("settled_cycles", Obs.Json.Int (Int64.to_int r.settled));
      ("peak_active", Obs.Json.Int r.peak_active);
      ("final_active", Obs.Json.Int r.final_active);
      ("max_wave_cycles", Obs.Json.Int (Int64.to_int r.max_wave));
      ( "occupancy",
        Obs.Json.Arr (Array.to_list (Array.map (fun o -> Obs.Json.Float o) r.occupancy)) );
      ("cap_ops", Obs.Json.Int r.cap_ops);
      ( "transitions",
        Obs.Json.Arr
          (List.map
             (fun (tr : Fleet.Auto.transition) ->
               Obs.Json.Obj
                 [
                   ( "kind",
                     Obs.Json.Str
                       (match tr.Fleet.Auto.t_kind with `Join -> "join" | `Drain -> "drain") );
                   ("kernel", Obs.Json.Int tr.Fleet.Auto.t_kernel);
                   ("start", Obs.Json.Int (Int64.to_int tr.Fleet.Auto.t_start));
                   ( "finish",
                     Obs.Json.Int
                       (match tr.Fleet.Auto.t_finish with Some f -> Int64.to_int f | None -> -1)
                   );
                   ("max_wave", Obs.Json.Int (Int64.to_int tr.Fleet.Auto.t_max_wave));
                 ])
             r.transitions) );
    ]

let bench ?(preset = Full) ?(path = "BENCH_fleet.json") () =
  let cfg = config_of_preset preset in
  let fixed = run ~elastic:false cfg in
  let elastic = run ~elastic:true cfg in
  let fail_on who (r : result) =
    if r.audit_errors <> [] then
      failwith
        (Printf.sprintf "Fleetbench.bench: %s: capability audit failed: %s" who
           (String.concat "; " r.audit_errors));
    if r.transition_errors <> [] then
      failwith
        (Printf.sprintf "Fleetbench.bench: %s: transition checks failed: %s" who
           (String.concat "; " r.transition_errors))
  in
  fail_on "fixed" fixed;
  fail_on "elastic" elastic;
  (if elastic.final_active <> cfg.boot then
     failwith
       (Printf.sprintf "Fleetbench.bench: fleet settled at %d active kernels, expected %d"
          elastic.final_active cfg.boot));
  let joins =
    List.length
      (List.filter (fun (t : Fleet.Auto.transition) -> t.Fleet.Auto.t_kind = `Join)
         elastic.transitions)
  in
  let drains = List.length elastic.transitions - joins in
  let speedup =
    if elastic.completion > 0L then
      Int64.to_float fixed.completion /. Int64.to_float elastic.completion
    else 0.0
  in
  (* The surge phase is where the extra kernels earn their keep — base
     clients are compute-bound either way. *)
  let surge_speedup =
    if elastic.surge_done > 0L then
      Int64.to_float fixed.surge_done /. Int64.to_float elastic.surge_done
    else 0.0
  in
  let row name (r : result) =
    [
      name;
      Int64.to_string r.completion;
      Int64.to_string r.surge_done;
      string_of_int r.peak_active;
      string_of_int r.final_active;
      string_of_int (List.length r.transitions);
      Int64.to_string r.max_wave;
    ]
  in
  T.print
    ~title:
      (Printf.sprintf
         "Elastic fleet: %d+%d surge clients on %d boot kernels, %d spares (autoscaler %s)"
         cfg.base_clients cfg.surge_clients cfg.boot cfg.spares
         (match preset with Full -> "full" | Smoke -> "smoke"))
    ~header:[ "fleet"; "completion"; "surge done"; "peak act"; "final act"; "transitions"; "max wave" ]
    [ row "fixed" fixed; row "elastic" elastic ];
  Printf.printf
    "  %d joins, %d drains; surge speedup %.2fx, completion speedup %.2fx; max stall %Ld cycles\n%!"
    joins drains surge_speedup speedup elastic.max_wave;
  Bench_json.write ~path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.Str "semperos-fleet-1");
         ( "config",
           Obs.Json.Obj
             [
               ("boot_kernels", Obs.Json.Int cfg.boot);
               ("spare_kernels", Obs.Json.Int cfg.spares);
               ("base_clients", Obs.Json.Int cfg.base_clients);
               ("surge_clients", Obs.Json.Int cfg.surge_clients);
               ("base_rounds", Obs.Json.Int cfg.base_rounds);
               ("surge_rounds", Obs.Json.Int cfg.surge_rounds);
               ("compute_cycles", Obs.Json.Int (Int64.to_int cfg.compute));
               ("surge_compute_cycles", Obs.Json.Int (Int64.to_int cfg.surge_compute));
               ("interval_cycles", Obs.Json.Int (Int64.to_int cfg.interval));
               ("high_water", Obs.Json.Float cfg.policy.Balance.Fleet_policy.high);
               ("low_water", Obs.Json.Float cfg.policy.Balance.Fleet_policy.low);
             ] );
         ("fixed", side_json fixed);
         ("elastic", side_json elastic);
         ( "improvement",
           Obs.Json.Obj
             [
               ("completion_speedup", Obs.Json.Float speedup);
               ("surge_speedup", Obs.Json.Float surge_speedup);
               ("joins", Obs.Json.Int joins);
               ("drains", Obs.Json.Int drains);
             ] );
       ])
