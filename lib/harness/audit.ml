module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Key = Semper_ddl.Key
module Membership = Semper_ddl.Membership
module Cap = Semper_caps.Cap
module Mapdb = Semper_caps.Mapdb

type report = {
  capabilities : int;
  roots : int;
  max_depth : int;
  spanning_links : int;
  errors : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "audit{caps=%d roots=%d depth=%d spanning=%d errors=%d}" r.capabilities
    r.roots r.max_depth r.spanning_links (List.length r.errors)

let run sys =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Per-kernel invariants first. *)
  List.iter (fun e -> errors := e :: !errors) (System.check_invariants sys);
  (* Collect the global capability set. Child links live in each
     kernel's arena, so they are materialised here alongside the
     record they belong to. *)
  let global : (Cap.t * Key.t list) Key.Table.t = Key.Table.create 256 in
  let home : int Key.Table.t = Key.Table.create 256 in
  List.iter
    (fun kernel ->
      let db = Kernel.mapdb kernel in
      Mapdb.iter
        (fun cap ->
          if Key.Table.mem global cap.Cap.key then
            err "capability %s present in two mapping databases" (Key.to_string cap.Cap.key)
          else begin
            Key.Table.add global cap.Cap.key (cap, Mapdb.children db cap.Cap.key);
            Key.Table.add home cap.Cap.key (Kernel.id kernel)
          end)
        db)
    (System.kernels sys);
  let membership = System.membership sys in
  let spanning = ref 0 in
  (* Link consistency, in both directions, across kernels. *)
  Key.Table.iter
    (fun key (cap, children) ->
      let my_home = Key.Table.find home key in
      (* The DDL must route to the hosting kernel. *)
      (match Membership.kernel_of_key membership key with
      | k when k = my_home -> ()
      | k -> err "capability %s hosted at kernel %d but DDL routes to %d" (Key.to_string key) my_home k
      | exception Not_found -> err "capability %s has an unroutable key" (Key.to_string key));
      List.iter
        (fun child_key ->
          match Key.Table.find_opt global child_key with
          | None -> err "%s lists dead child %s" (Key.to_string key) (Key.to_string child_key)
          | Some (child, _) -> (
            if Key.Table.find home child_key <> my_home then incr spanning;
            match child.Cap.parent with
            | Some p when Key.equal p key -> ()
            | Some p ->
              err "child %s of %s claims parent %s" (Key.to_string child_key) (Key.to_string key)
                (Key.to_string p)
            | None -> err "child %s of %s has no parent" (Key.to_string child_key) (Key.to_string key)))
        children;
      match cap.Cap.parent with
      | None -> ()
      | Some parent_key -> (
        match Key.Table.find_opt global parent_key with
        | None -> err "%s has dead parent %s" (Key.to_string key) (Key.to_string parent_key)
        | Some (_, parent_children) ->
          if not (List.exists (Key.equal key) parent_children) then
            err "parent %s does not list child %s" (Key.to_string parent_key) (Key.to_string key)))
    global;
  (* Reachability and acyclicity: walk down from every root. *)
  let visited = Key.Table.create 256 in
  let max_depth = ref 0 in
  let roots = ref 0 in
  let rec walk depth key =
    if depth > Key.Table.length global then err "cycle through %s" (Key.to_string key)
    else begin
      if depth > !max_depth then max_depth := depth;
      if Key.Table.mem visited key then
        err "capability %s reached twice (diamond or cycle)" (Key.to_string key)
      else begin
        Key.Table.add visited key ();
        match Key.Table.find_opt global key with
        | None -> ()
        | Some (_, children) -> List.iter (walk (depth + 1)) children
      end
    end
  in
  Key.Table.iter
    (fun key (cap, _) ->
      if cap.Cap.parent = None then begin
        incr roots;
        walk 1 key
      end)
    global;
  Key.Table.iter
    (fun key _ ->
      if not (Key.Table.mem visited key) then
        err "capability %s unreachable from any root" (Key.to_string key))
    global;
  {
    capabilities = Key.Table.length global;
    roots = !roots;
    max_depth = !max_depth;
    spanning_links = !spanning;
    errors = List.rev !errors;
  }

let check sys =
  match (run sys).errors with
  | [] -> ()
  | errs ->
    failwith (Printf.sprintf "Audit.check: %d violations: %s" (List.length errs) (String.concat "; " errs))

(* ------------------------------------------------------------------ *)
(* Dirty-partition incremental audit                                   *)

module Incremental = struct
  let full_audit = run

  (* Mirror of one capability record: enough to re-run every link and
     routing check without touching records whose partitions did not
     change. [e_span] is this record's contribution to the global
     spanning-link count (its children hosted on another kernel);
     [e_errs] the link/routing violations charged to it. Both are
     recomputed whenever the record or a neighbour changes, so global
     totals update by difference. *)
  type entry = {
    mutable e_parent : Key.t option;
    mutable e_kids : Key.t list;
    mutable e_home : int;
    mutable e_span : int;
    mutable e_errs : string list;
  }

  type t = {
    sys : System.t;
    full_every : int;
    mutable runs : int;
    mirror : entry Key.Table.t;
    by_pe : (int, unit Key.Table.t) Hashtbl.t;  (* partition -> keys *)
    roots : unit Key.Table.t;
    depths : int Key.Table.t;  (* root -> subtree depth *)
    walk_errs : string list Key.Table.t;  (* root -> cycle/diamond errors *)
    pe_errs : (int, string list) Hashtbl.t;  (* partition -> duplicate-key errors *)
    mutable spanning : int;
  }

  let pe_set t pe =
    match Hashtbl.find_opt t.by_pe pe with
    | Some s -> s
    | None ->
      let s = Key.Table.create 16 in
      Hashtbl.add t.by_pe pe s;
      s

  let drop_entry t key (e : entry) =
    t.spanning <- t.spanning - e.e_span;
    Key.Table.remove t.mirror key;
    Key.Table.remove t.roots key;
    Key.Table.remove t.depths key;
    Key.Table.remove t.walk_errs key;
    match Hashtbl.find_opt t.by_pe (Key.pe key) with
    | Some s -> Key.Table.remove s key
    | None -> ()

  (* Re-run the per-record checks: DDL routing, child links resolving
     to live records that point back, the parent listing us. Exactly
     the checks [run] performs for one key, against the mirror. *)
  let recheck t key =
    match Key.Table.find_opt t.mirror key with
    | None -> ()
    | Some e ->
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
      (match Membership.kernel_of_key (System.membership t.sys) key with
      | k when k = e.e_home -> ()
      | k ->
        err "capability %s hosted at kernel %d but DDL routes to %d" (Key.to_string key) e.e_home
          k
      | exception Not_found -> err "capability %s has an unroutable key" (Key.to_string key));
      let span = ref 0 in
      List.iter
        (fun child_key ->
          match Key.Table.find_opt t.mirror child_key with
          | None -> err "%s lists dead child %s" (Key.to_string key) (Key.to_string child_key)
          | Some child -> (
            if child.e_home <> e.e_home then incr span;
            match child.e_parent with
            | Some p when Key.equal p key -> ()
            | Some p ->
              err "child %s of %s claims parent %s" (Key.to_string child_key) (Key.to_string key)
                (Key.to_string p)
            | None -> err "child %s of %s has no parent" (Key.to_string child_key) (Key.to_string key)))
        e.e_kids;
      (match e.e_parent with
      | None -> ()
      | Some parent_key -> (
        match Key.Table.find_opt t.mirror parent_key with
        | None -> err "%s has dead parent %s" (Key.to_string key) (Key.to_string parent_key)
        | Some parent ->
          if not (List.exists (Key.equal key) parent.e_kids) then
            err "parent %s does not list child %s" (Key.to_string parent_key) (Key.to_string key)));
      t.spanning <- t.spanning - e.e_span + !span;
      e.e_span <- !span;
      e.e_errs <- List.rev !errs

  (* Walk up the parent chain to the owning root; [None] when the chain
     dies (the dangling link is an [e_errs] entry already) or loops
     (reported via [on_err] — a parentless cycle has no root to walk
     from, so this is the only place it can surface between full
     passes). *)
  let root_of t ~on_err key =
    let limit = Key.Table.length t.mirror in
    let rec go steps k =
      if steps > limit then begin
        on_err (Printf.sprintf "cycle through %s" (Key.to_string k));
        None
      end
      else
        match Key.Table.find_opt t.mirror k with
        | None -> None
        | Some { e_parent = None; _ } -> Some k
        | Some { e_parent = Some p; _ } -> go (steps + 1) p
    in
    go 0 key

  (* Re-walk one root's subtree: recompute its depth and its
     cycle/diamond errors, exactly as [run]'s reachability pass does. *)
  let recompute_root t root =
    let visited = Key.Table.create 32 in
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    let maxd = ref 0 in
    let limit = Key.Table.length t.mirror in
    let rec walk depth key =
      if depth > limit then err "cycle through %s" (Key.to_string key)
      else begin
        if depth > !maxd then maxd := depth;
        if Key.Table.mem visited key then
          err "capability %s reached twice (diamond or cycle)" (Key.to_string key)
        else begin
          Key.Table.add visited key ();
          match Key.Table.find_opt t.mirror key with
          | None -> ()
          | Some e -> List.iter (walk (depth + 1)) e.e_kids
        end
      end
    in
    walk 1 root;
    Key.Table.replace t.depths root !maxd;
    match !errs with
    | [] -> Key.Table.remove t.walk_errs root
    | es -> Key.Table.replace t.walk_errs root (List.rev es)

  let rebuild t =
    Key.Table.reset t.mirror;
    Hashtbl.reset t.by_pe;
    Key.Table.reset t.roots;
    Key.Table.reset t.depths;
    Key.Table.reset t.walk_errs;
    Hashtbl.reset t.pe_errs;
    t.spanning <- 0;
    List.iter
      (fun kernel ->
        let db = Kernel.mapdb kernel in
        ignore (Mapdb.drain_dirty db);
        Mapdb.iter
          (fun cap ->
            let key = cap.Cap.key in
            if Key.Table.mem t.mirror key then
              Hashtbl.replace t.pe_errs (Key.pe key)
                (Printf.sprintf "capability %s present in two mapping databases"
                   (Key.to_string key)
                :: (try Hashtbl.find t.pe_errs (Key.pe key) with Not_found -> []))
            else begin
              Key.Table.add t.mirror key
                {
                  e_parent = cap.Cap.parent;
                  e_kids = Mapdb.children db key;
                  e_home = Kernel.id kernel;
                  e_span = 0;
                  e_errs = [];
                };
              Key.Table.replace (pe_set t (Key.pe key)) key ();
              if cap.Cap.parent = None then Key.Table.replace t.roots key ()
            end)
          db)
      (System.kernels t.sys);
    Key.Table.iter (fun key _ -> recheck t key) t.mirror;
    Key.Table.iter (fun root () -> recompute_root t root) t.roots

  let create ?(full_every = 16) sys =
    let t =
      {
        sys;
        full_every;
        runs = 0;
        mirror = Key.Table.create 256;
        by_pe = Hashtbl.create 64;
        roots = Key.Table.create 64;
        depths = Key.Table.create 64;
        walk_errs = Key.Table.create 8;
        pe_errs = Hashtbl.create 8;
        spanning = 0;
      }
    in
    rebuild t;
    t

  (* Union of every kernel's dirty partitions since the last pass. *)
  let drain t =
    List.fold_left
      (fun acc kernel -> List.rev_append (Mapdb.drain_dirty (Kernel.mapdb kernel)) acc)
      [] (System.kernels t.sys)
    |> List.sort_uniq compare

  let update t dirty_pes ~on_err =
    let touched = Key.Table.create 64 in
    let check = Key.Table.create 64 in
    let mark tbl k = Key.Table.replace tbl k () in
    List.iter
      (fun pe ->
        (* Live records of this partition, across every kernel (during
           a migration both ends touched it). *)
        let live = Key.Table.create 32 in
        let dups = ref [] in
        List.iter
          (fun kernel ->
            let db = Kernel.mapdb kernel in
            List.iter
              (fun cap ->
                let key = cap.Cap.key in
                if Key.Table.mem live key then
                  dups :=
                    Printf.sprintf "capability %s present in two mapping databases"
                      (Key.to_string key)
                    :: !dups
                else
                  Key.Table.add live key
                    (cap.Cap.parent, Mapdb.children db key, Kernel.id kernel))
              (Mapdb.caps_of_pe db ~pe))
          (System.kernels t.sys);
        (match !dups with
        | [] -> Hashtbl.remove t.pe_errs pe
        | ds -> Hashtbl.replace t.pe_errs pe (List.rev ds));
        let olds = pe_set t pe in
        (* Records gone from the partition. *)
        let removed = ref [] in
        Key.Table.iter (fun k () -> if not (Key.Table.mem live k) then removed := k :: !removed) olds;
        List.iter
          (fun k ->
            (match Key.Table.find_opt t.mirror k with
            | Some e ->
              (match e.e_parent with Some p -> mark check p | None -> ());
              List.iter (fun c -> mark check c) e.e_kids;
              drop_entry t k e
            | None -> ());
            mark touched k)
          !removed;
        (* New or changed records. *)
        Key.Table.iter
          (fun k (parent, kids, home) ->
            match Key.Table.find_opt t.mirror k with
            | None ->
              Key.Table.add t.mirror k
                { e_parent = parent; e_kids = kids; e_home = home; e_span = 0; e_errs = [] };
              Key.Table.replace olds k ();
              if parent = None then Key.Table.replace t.roots k ();
              mark touched k;
              (match parent with Some p -> mark check p | None -> ());
              List.iter (fun c -> mark check c) kids
            | Some e ->
              let changed =
                e.e_home <> home
                || (not (Option.equal Key.equal e.e_parent parent))
                || not (List.equal Key.equal e.e_kids kids)
              in
              if changed then begin
                (* Old neighbours lose a link; new ones gain one. *)
                (match e.e_parent with Some p -> mark check p | None -> ());
                List.iter (fun c -> mark check c) e.e_kids;
                e.e_parent <- parent;
                e.e_kids <- kids;
                e.e_home <- home;
                if parent = None then Key.Table.replace t.roots k ()
                else begin
                  Key.Table.remove t.roots k;
                  Key.Table.remove t.depths k;
                  Key.Table.remove t.walk_errs k
                end;
                mark touched k;
                (match parent with Some p -> mark check p | None -> ());
                List.iter (fun c -> mark check c) kids
              end)
          live)
      dirty_pes;
    Key.Table.iter (fun k () -> mark check k) touched;
    Key.Table.iter (fun k () -> recheck t k) check;
    (* Depths: re-walk every root whose subtree a change can have
       reached. *)
    let affected_roots = Key.Table.create 16 in
    Key.Table.iter
      (fun k () ->
        match root_of t ~on_err k with
        | Some r -> mark affected_roots r
        | None -> ())
      check;
    Key.Table.iter
      (fun r () -> if Key.Table.mem t.roots r then recompute_root t r)
      affected_roots

  let report t extra =
    let errors = ref extra in
    Hashtbl.iter (fun _ es -> errors := es @ !errors) t.pe_errs;
    Key.Table.iter (fun _ e -> if e.e_errs <> [] then errors := e.e_errs @ !errors) t.mirror;
    Key.Table.iter (fun _ es -> errors := es @ !errors) t.walk_errs;
    {
      capabilities = Key.Table.length t.mirror;
      roots = Key.Table.length t.roots;
      max_depth = Key.Table.fold (fun _ d m -> if d > m then d else m) t.depths 0;
      spanning_links = t.spanning;
      errors = List.sort_uniq compare !errors;
    }

  let run t =
    t.runs <- t.runs + 1;
    if t.full_every > 0 && t.runs mod t.full_every = 0 then begin
      (* Periodic fallback: a genuine full audit — including the
         per-kernel invariant sweep the incremental passes skip — and a
         mirror rebuild that clears any drift. *)
      let r = full_audit t.sys in
      rebuild t;
      r
    end
    else begin
      let run_errs = ref [] in
      update t (drain t) ~on_err:(fun e -> run_errs := e :: !run_errs);
      report t !run_errs
    end
end
