(** Recorded figure runs: periodic result-prefix checkpoints plus a
    manifest, resumable from any position.

    A recording directory holds:
    - [manifest] — a small text file naming the figure, the preset, the
      total point count, and the checkpoint cadence;
    - [ckpt-<n>.img] — a {!Semper_sim.Checkpoint} image (kind
      ["recording"]) of the first [n] point results, written after every
      chunk of [every] points.

    {!replay} resumes from the nearest checkpoint at or below the
    requested position and recomputes the rest. Because rendering
    depends only on the complete result list, and results are collected
    in point order at any job count, a resumed run's text and JSON are
    byte-identical to the uninterrupted run's. Images are same-build
    artifacts (see {!Semper_sim.Checkpoint}); a stale image is a load
    error asking for a re-record, never a silent recompute. *)

val kind : string

type manifest = {
  m_figure : string;
  m_preset : Figures.preset;
  m_total : int;  (** points in the full run *)
  m_every : int;  (** checkpoint cadence, in points *)
}

val read_manifest : string -> (manifest, string) result

(** [record ~dir fig preset] runs the figure to completion, writing the
    manifest and a checkpoint after every [every] (default 4) completed
    points, and returns the rendered output. Creates [dir] if needed. *)
val record :
  ?jobs:int -> ?every:int -> dir:string -> Figures.t -> Figures.preset -> Figures.output

(** [replay ~dir ~from_ ()] re-renders the recorded run, resuming from
    the nearest checkpoint at or below point [from_] (clamped to the
    run's range) and recomputing the remaining points. Returns
    [(resumed_at, output)]. *)
val replay :
  ?jobs:int -> dir:string -> from_:int -> unit -> (int * Figures.output, string) result
