module Engine = Semper_sim.Engine
module Obs = Semper_obs.Obs
module T = Semper_util.Table

type sample = {
  s_backend : string;
  s_op : string;
  s_pending : int;
  s_wall_s : float;
  s_ops_per_s : float;
}

type preset = Full | Smoke

let sizes_of_preset = function
  | Full -> [ 1_000; 100_000; 1_000_000 ]
  | Smoke -> [ 1_000; 10_000 ]

let backends = [ ("heap", Engine.Binary_heap); ("wheel", Engine.Timer_wheel) ]

(* Event times spread over an 8n-cycle window by a fixed odd stride:
   the wheel sees traffic across several levels (not one hot slot) and
   the heap sees unordered inserts (not the sorted-input best case),
   identically on every run. *)
let time_of ~n i = Int64.of_int (i * 7919 mod (8 * n))

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* The no-op callback shared by every event, so allocation of closures
   does not drown the queue operations being measured. *)
let nop () = ()

let fill e n =
  for i = 0 to n - 1 do
    Engine.at e (time_of ~n i) nop
  done

let measure_op queue op n =
  match op with
  | "schedule" ->
    let e = Engine.create ~queue () in
    time (fun () -> fill e n)
  | "cancel" ->
    let e = Engine.create ~queue () in
    let hs = Array.init n (fun i -> Engine.at_cancellable e (time_of ~n i) nop) in
    time (fun () -> Array.iter (fun h -> Engine.cancel e h) hs)
  | "drain" ->
    let e = Engine.create ~queue () in
    fill e n;
    time (fun () -> ignore (Engine.run e))
  | _ -> invalid_arg "Enginebench.measure_op: unknown operation"

let ops = [ "schedule"; "cancel"; "drain" ]

let samples ?(preset = Full) () =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun op ->
          List.map
            (fun (name, queue) ->
              let wall = measure_op queue op n in
              {
                s_backend = name;
                s_op = op;
                s_pending = n;
                s_wall_s = wall;
                s_ops_per_s = (if wall > 0.0 then float_of_int n /. wall else 0.0);
              })
            backends)
        ops)
    (sizes_of_preset preset)

let sample_json s =
  Obs.Json.Obj
    [
      ("backend", Obs.Json.Str s.s_backend);
      ("op", Obs.Json.Str s.s_op);
      ("pending", Obs.Json.Int s.s_pending);
      ("wall_s", Obs.Json.Float s.s_wall_s);
      ("ops_per_s", Obs.Json.Float s.s_ops_per_s);
    ]

let json samples =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "semperos-engine-1");
      ("samples", Obs.Json.Arr (List.map sample_json samples));
    ]

(* The heap sample for the same (op, size), for the speedup column. *)
let heap_rate samples s =
  List.find_opt
    (fun o -> o.s_backend = "heap" && o.s_op = s.s_op && o.s_pending = s.s_pending)
    samples

let print samples =
  T.print ~title:"Engine queue backends: schedule/cancel/drain throughput (host-dependent)"
    ~header:[ "pending"; "op"; "backend"; "wall_s"; "ops/s"; "vs heap" ]
    (List.map
       (fun s ->
         let speedup =
           match heap_rate samples s with
           | Some h when s.s_backend <> "heap" && h.s_ops_per_s > 0.0 ->
             Printf.sprintf "%.2fx" (s.s_ops_per_s /. h.s_ops_per_s)
           | _ -> "-"
         in
         [
           string_of_int s.s_pending;
           s.s_op;
           s.s_backend;
           Printf.sprintf "%.4f" s.s_wall_s;
           Printf.sprintf "%.0f" s.s_ops_per_s;
           speedup;
         ])
       samples)

let run ?(preset = Full) ?(path = "BENCH_engine.json") () =
  let ss = samples ~preset () in
  print ss;
  Bench_json.write ~path (json ss)
