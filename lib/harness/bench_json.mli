(** Machine-readable benchmark export (BENCH_micro.json /
    BENCH_apps.json).

    Built with the deterministic {!Semper_obs.Obs.Json} emitter: keys
    are emitted in a fixed order and the simulator is seeded, so
    repeated runs produce byte-identical files that CI can diff against
    the committed baselines. Runs fan out across domains via
    {!Semper_util.Domain_pool}; the emitted JSON is identical for any
    job count. *)

(** Table 3 + Figure 4 headline numbers. [lens] are the chain lengths
    sampled for Figure 4 (default [0; 20; 40; 60; 80; 100]). *)
val micro : ?jobs:int -> ?lens:int list -> unit -> Semper_obs.Obs.Json.t

(** Single-instance application runs — the left half of Table 4
    (default: every workload). The 512-instance column is deliberately
    omitted: it takes minutes, and the JSON export is meant to be cheap
    enough for CI. *)
val apps :
  ?jobs:int -> ?workloads:Semper_trace.Workloads.spec list -> unit -> Semper_obs.Obs.Json.t

(** Write a JSON document to [path] with a trailing newline and print
    "wrote [path]". *)
val write : path:string -> Semper_obs.Obs.Json.t -> unit
