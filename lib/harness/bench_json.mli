(** Machine-readable benchmark export (BENCH_micro.json /
    BENCH_apps.json).

    Built with the deterministic {!Semper_obs.Obs.Json} emitter: keys
    are emitted in a fixed order and the simulator is seeded, so
    repeated runs produce byte-identical files that CI can diff against
    the committed baselines. Runs fan out across domains via
    {!Semper_util.Domain_pool}; the emitted JSON is identical for any
    job count. *)

(** Table 3 + Figure 4 headline numbers. [lens] are the chain lengths
    sampled for Figure 4 (default [0; 20; 40; 60; 80; 100]). *)
val micro : ?jobs:int -> ?lens:int list -> unit -> Semper_obs.Obs.Json.t

(** Single-instance application runs — the left half of Table 4
    (default: every workload). The 512-instance column is deliberately
    omitted: it takes minutes, and the JSON export is meant to be cheap
    enough for CI. *)
val apps :
  ?jobs:int -> ?workloads:Semper_trace.Workloads.spec list -> unit -> Semper_obs.Obs.Json.t

(** Write a JSON document to [path] with a trailing newline and print
    "wrote [path]". *)
val write : path:string -> Semper_obs.Obs.Json.t -> unit

(** Check a parsed benchmark document against the registry of known
    shapes, keyed on its ["schema"] field — required top-level keys
    and, for each row array, the keys every element must carry (extra
    keys are allowed: adding a column is not a schema break, dropping
    one is). [BENCH_micro.json] and [BENCH_apps.json] predate the
    [schema] field and are keyed on [Filename.basename path] instead.
    Unknown schemas are an error, so every new document family must
    register its shape here. *)
val validate : ?path:string -> Semper_obs.Obs.Json.t -> (unit, string) result

(** [validate] applied to the parsed contents of a file. *)
val validate_file : string -> (unit, string) result
