(** Deterministic schedule fuzzer for the distributed capability
    protocols.

    One fuzz case is a pair of seeds: [workload_seed] drives a random
    multi-kernel workload (alloc, obtain, delegate, revoke, derive,
    migrate, exit, partial engine runs) and [fault_seed] drives a
    {!Semper_fault.Fault} plan injected into the fabric. Everything is
    seeded, so a failing pair replays bit-identically:

    {v semperos_cli fuzz --workload-seed N --fault-seed M v}

    After the workload, the engine is drained and three oracles run:

    - {b liveness}: every syscall issued received a reply (no protocol
      lost a message for good);
    - {b safety}: {!Audit.run} reports a consistent global capability
      forest (parent/child symmetry, DDL routing, no orphans);
    - {b teardown}: {!System.shutdown} revokes everything — zero
      capabilities survive.

    A fourth, {b relocation}, runs after each migration step (the
    engine is drained around migrations): every capability record in
    the migrated VPE's key partition must live at the destination
    kernel and nowhere else, every kernel's membership replica must
    route the PE to the destination with no mid-handoff mark left, and
    the VPE must be unfrozen. Because the fault plan may drop or
    duplicate [migrate_update], [migrate_ack], and [migrate_caps], this
    oracle is what proves the migration protocol's retransmission and
    deduplication paths converge: a lost transfer would strand records
    at the source, a misapplied update would misroute lookups. *)

type spec = {
  kernels : int;
  vpes : int;
  ops : int;  (** number of random workload steps *)
  spares : int;
      (** kernels provisioned [Spare]. When positive, the workload
          vocabulary gains fleet transitions ({!Semper_fleet.Fleet.join}
          and [drain], run from quiescence with faults hitting their
          broadcasts and partition waves) plus two oracles after each
          transition and at quiescence: membership replicas converge
          (routing, lifecycle states, no mid-handoff residue) and no
          capability record or VPE is stranded on an out-of-service
          kernel. Zero (the default) draws exactly the pre-fleet RNG
          stream, so existing seeds and corpus cases replay
          bit-identically. *)
  delay : bool;
  dup : bool;
  drop : bool;
  stall : bool;
  retry : bool;  (** disable to demonstrate the oracles catching real loss *)
}

val spec :
  ?kernels:int ->
  ?vpes:int ->
  ?ops:int ->
  ?spares:int ->
  ?delay:bool ->
  ?dup:bool ->
  ?drop:bool ->
  ?stall:bool ->
  ?retry:bool ->
  unit ->
  spec

(** 3 kernels, 6 VPEs, 40 ops, all fault classes, retries on. *)
val default_spec : spec

type outcome = {
  workload_seed : int;
  fault_seed : int;
  syscalls : int;
  replies : int;
  ok_replies : int;
  err_replies : int;
  migrations : int;
  fleet_ops : int;  (** completed fleet join/drain transitions *)
  injected_delays : int;
  injected_dups : int;
  injected_drops : int;
  injected_stalls : int;
  retries : int;  (** kernel retransmissions triggered by timeouts *)
  dup_ikc : int;  (** duplicate inter-kernel messages detected and absorbed *)
  caps_leaked : int;
  failures : string list;  (** empty = the case passed all oracles *)
  metrics_json : string;
      (** metrics snapshot (JSON object), attached only when the case
          failed; [""] otherwise *)
  trace_tail : string list;
      (** last protocol trace events (JSONL), attached only when the
          case failed *)
}

(** The fault profile a spec induces for a given fault seed. *)
val profile : spec -> int -> Semper_fault.Fault.profile

(** Run one case to completion. With [checkpoint_every] = K > 0,
    [on_checkpoint at image] fires with the case frozen just before ops
    0, K, 2K, ... ([at] = ops executed, [image] a {!save_state} image);
    checkpoints stop once a case crashes. The callback defaults to a
    no-op, and outcomes are identical with checkpointing on or off. *)
val run_one :
  ?spec:spec ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(int -> bytes -> unit) ->
  workload_seed:int ->
  fault_seed:int ->
  unit ->
  outcome

(** {1 Stepwise execution}

    A fuzz case as an explicit state machine: {!start} builds the
    system and issues the boot allocations, {!step} executes one
    workload op (no-op once all ops ran or the case crashed), {!finish}
    drains the engine, runs the oracles, tears the system down, and
    produces the outcome. [run_one] is exactly
    [start; ops × step; finish] — byte-identical outcomes. *)

type state

val start : ?spec:spec -> workload_seed:int -> fault_seed:int -> unit -> state
val step : state -> unit

(** Workload ops executed so far. *)
val steps_done : state -> int

(** The case's system — exposed for checkpoint tests (fingerprints,
    rebind). *)
val state_system : state -> Semper_kernel.System.t

(** [finish ?inc st] drains, runs the oracles, and tears down. When
    [inc] is an incremental auditor created against this case's system
    at boot, its report is checked against the full audit (only when
    the full report is clean — the two phrase corruption differently). *)
val finish : ?inc:Audit.Incremental.t -> state -> outcome

(** {1 Checkpointing}

    A case state is one marshalable root: the reply continuations and
    engine events all close over it, so one {!Semper_sim.Checkpoint}
    image captures the whole case mid-flight. Images embed the
    {!Semper_kernel.System.fingerprint} at save time; {!load_state}
    re-verifies it after restore and re-stamps the engine
    ({!Semper_kernel.System.rebind}), so the returned state is ready to
    {!step}. Like all whole-image checkpoints, fuzz images only load in
    the build that wrote them. *)

(** The [kind] tag stored in fuzz-case images ("fuzz-case"). *)
val case_kind : string

(** Serialize a live case (position = ops executed, fingerprint
    embedded). The state remains usable afterwards. *)
val save_state : state -> bytes

(** Deserialize, rebind, and fingerprint-check a case image. *)
val load_state : bytes -> (Semper_sim.Checkpoint.header * state, string) result

(** {1 Counterexample shrinking} *)

type shrink_result = {
  sh_spec : spec;
  sh_workload_seed : int;
  sh_fault_seed : int;
  sh_original : outcome;  (** the full-length failing run *)
  sh_min_ops : int;  (** smallest failing op-prefix length *)
  sh_minimal : outcome;  (** outcome of the minimal prefix *)
  sh_probes : int;  (** prefix trials executed *)
  sh_replayed_ops : int;  (** ops re-executed across all probes *)
  sh_saved_ops : int;  (** ops skipped by resuming from checkpoints *)
}

(** Delta-debug a failing case down to its smallest failing op-prefix.

    A recording pass checkpoints the case every [checkpoint_every] ops
    (default [ops/8], in memory); each probe of a candidate prefix
    length then resumes from the nearest checkpoint at or below it
    instead of re-running from op zero, and applies the full oracle
    suite ({!finish}) to the truncated case. Prefix lengths are
    binary-searched, then refined downwards a bounded distance in case
    the failure is non-monotone in the prefix length. Probes run
    strictly sequentially in a deterministic order, so the same seeds
    always yield the same minimal case, regardless of the runner's
    [--jobs] setting. Returns [Error _] when the full case passes all
    oracles. *)
val shrink :
  ?spec:spec ->
  ?checkpoint_every:int ->
  workload_seed:int ->
  fault_seed:int ->
  unit ->
  (shrink_result, string) result

(** {1 Self-contained counterexample cases}

    A shrunk counterexample, serialized as a small plain-text file
    (format-tagged, build-independent — unlike checkpoint images) that
    records the spec, the seed pair, and the expected oracle verdict.
    The regression corpus under [test/corpus/] holds these. *)

module Case : sig
  type t = {
    name : string;
    spec : spec;
    workload_seed : int;
    fault_seed : int;
    expect : string list;
        (** sorted oracle kinds expected to fire, e.g. ["audit"; "liveness"] *)
  }

  (** The oracle kind of a failure line (its prefix before [':']). *)
  val failure_kind : string -> string

  (** Sorted, deduplicated oracle kinds of an outcome's failures. *)
  val kinds : string list -> string list

  val of_shrink : name:string -> shrink_result -> t
  val to_string : t -> string
  val of_string : string -> (t, string) result
  val save : string -> t -> unit
  val load : string -> (t, string) result

  (** Re-run the case from its seeds. *)
  val run : t -> outcome

  (** Re-run and compare the oracle verdict against [expect]:
      [Ok outcome] when the same oracle kinds fire, [Error _] when the
      verdict drifted. *)
  val check : t -> (outcome, string) result
end

(** Run seed pairs [(workload_seed + i, fault_seed + i)] for [i] in
    [0, runs). Independent runs fan out across OCaml domains ([jobs]
    defaults to the available cores; [jobs:1] = serial); outcomes are
    returned in seed order regardless of the job count. *)
val run_many :
  ?jobs:int -> ?spec:spec -> workload_seed:int -> fault_seed:int -> runs:int -> unit -> outcome list

(** One-line, byte-stable summary (identical seeds always produce the
    identical line). *)
val outcome_line : outcome -> string

(** {!outcome_line} plus one indented line per failure, followed by the
    trace tail and metrics snapshot when the case failed. *)
val pp_outcome : Format.formatter -> outcome -> unit
