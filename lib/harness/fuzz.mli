(** Deterministic schedule fuzzer for the distributed capability
    protocols.

    One fuzz case is a pair of seeds: [workload_seed] drives a random
    multi-kernel workload (alloc, obtain, delegate, revoke, derive,
    migrate, exit, partial engine runs) and [fault_seed] drives a
    {!Semper_fault.Fault} plan injected into the fabric. Everything is
    seeded, so a failing pair replays bit-identically:

    {v semperos_cli fuzz --workload-seed N --fault-seed M v}

    After the workload, the engine is drained and three oracles run:

    - {b liveness}: every syscall issued received a reply (no protocol
      lost a message for good);
    - {b safety}: {!Audit.run} reports a consistent global capability
      forest (parent/child symmetry, DDL routing, no orphans);
    - {b teardown}: {!System.shutdown} revokes everything — zero
      capabilities survive.

    A fourth, {b relocation}, runs after each migration step (the
    engine is drained around migrations): every capability record in
    the migrated VPE's key partition must live at the destination
    kernel and nowhere else, every kernel's membership replica must
    route the PE to the destination with no mid-handoff mark left, and
    the VPE must be unfrozen. Because the fault plan may drop or
    duplicate [migrate_update], [migrate_ack], and [migrate_caps], this
    oracle is what proves the migration protocol's retransmission and
    deduplication paths converge: a lost transfer would strand records
    at the source, a misapplied update would misroute lookups. *)

type spec = {
  kernels : int;
  vpes : int;
  ops : int;  (** number of random workload steps *)
  delay : bool;
  dup : bool;
  drop : bool;
  stall : bool;
  retry : bool;  (** disable to demonstrate the oracles catching real loss *)
}

val spec :
  ?kernels:int ->
  ?vpes:int ->
  ?ops:int ->
  ?delay:bool ->
  ?dup:bool ->
  ?drop:bool ->
  ?stall:bool ->
  ?retry:bool ->
  unit ->
  spec

(** 3 kernels, 6 VPEs, 40 ops, all fault classes, retries on. *)
val default_spec : spec

type outcome = {
  workload_seed : int;
  fault_seed : int;
  syscalls : int;
  replies : int;
  ok_replies : int;
  err_replies : int;
  migrations : int;
  injected_delays : int;
  injected_dups : int;
  injected_drops : int;
  injected_stalls : int;
  retries : int;  (** kernel retransmissions triggered by timeouts *)
  dup_ikc : int;  (** duplicate inter-kernel messages detected and absorbed *)
  caps_leaked : int;
  failures : string list;  (** empty = the case passed all oracles *)
  metrics_json : string;
      (** metrics snapshot (JSON object), attached only when the case
          failed; [""] otherwise *)
  trace_tail : string list;
      (** last protocol trace events (JSONL), attached only when the
          case failed *)
}

(** The fault profile a spec induces for a given fault seed. *)
val profile : spec -> int -> Semper_fault.Fault.profile

val run_one : ?spec:spec -> workload_seed:int -> fault_seed:int -> unit -> outcome

(** Run seed pairs [(workload_seed + i, fault_seed + i)] for [i] in
    [0, runs). Independent runs fan out across OCaml domains ([jobs]
    defaults to the available cores; [jobs:1] = serial); outcomes are
    returned in seed order regardless of the job count. *)
val run_many :
  ?jobs:int -> ?spec:spec -> workload_seed:int -> fault_seed:int -> runs:int -> unit -> outcome list

(** One-line, byte-stable summary (identical seeds always produce the
    identical line). *)
val outcome_line : outcome -> string

(** {!outcome_line} plus one indented line per failure, followed by the
    trace tail and metrics snapshot when the case failed. *)
val pp_outcome : Format.formatter -> outcome -> unit
