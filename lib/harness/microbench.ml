(** Microbenchmark drivers for the paper's Table 3, Figure 4, and
    Figure 5: shared by the bench harness and the CLI. All times are
    simulated cycles measured at syscall-reply delivery, exactly like
    the paper's cycle counts. *)

module System = Semper_kernel.System
module Protocol = Semper_kernel.Protocol
module Vpe = Semper_kernel.Vpe
module Cost = Semper_kernel.Cost
module Perms = Semper_caps.Perms

let await sys result =
  ignore (System.run sys);
  match !result with
  | Some r -> r
  | None -> failwith "bench: syscall did not complete"

let timed_syscall sys vpe call =
  let result = ref None in
  let t0 = System.now sys in
  System.syscall sys vpe call (fun r -> result := Some (r, System.now sys));
  match await sys result with
  | Protocol.R_err e, _ -> failwith ("bench: " ^ Protocol.error_to_string e)
  | r, t1 -> (r, Int64.sub t1 t0)

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Format.kasprintf failwith "bench: expected selector, got %a" Protocol.pp_reply r

(* Two-VPE system for the Table 3 / Figure 4 microbenchmarks. *)
let micro_system ?(batching = false) mode =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ~mode ~batching ()) in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:0 in
  let v3 = System.spawn_vpe sys ~kernel:1 in
  (sys, v1, v2, v3)

(* Table 3: one obtain followed by one revoke, group-local or
   group-spanning. Returns (exchange_cycles, revoke_cycles). *)
let exchange_revoke ~mode ~spanning =
  let sys, v1, v2, v3 = micro_system mode in
  let other = if spanning then v3 else v2 in
  let r, _ = timed_syscall sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
  let sel = sel_of r in
  let _, exchange =
    timed_syscall sys other (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = sel })
  in
  let _, revoke = timed_syscall sys v1 (Protocol.Sys_revoke { sel; own = false }) in
  (exchange, revoke)

(* Figure 4: revoke a chain built by bouncing a capability between two
   VPEs [len] times. [batching] enables slot-window coalescing plus the
   requester-handoff revoke wave (the Figure 4 ablation). *)
let chain_revocation ?(batching = false) ~mode ~spanning ~len () =
  let sys, v1, v2, v3 = micro_system ~batching mode in
  let other = if spanning then v3 else v2 in
  let r, _ = timed_syscall sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
  let root = sel_of r in
  let rec build i owner peer sel =
    if i < len then begin
      let r, _ =
        timed_syscall sys peer
          (Protocol.Sys_obtain_from { donor_vpe = owner.Vpe.id; donor_sel = sel })
      in
      build (i + 1) peer owner (sel_of r)
    end
  in
  build 0 v1 other root;
  let _, cycles = timed_syscall sys v1 (Protocol.Sys_revoke { sel = root; own = true }) in
  cycles

(* Figure 5: a root capability with [children] copies spread over
   [extra_kernels] other kernels (0 = all local), then revoked.
   [batching] enables the paper's proposed message-batching improvement
   (the Figure 5 ablation). *)
let tree_revocation ?(batching = false) ?(broadcast = false) ?(background_caps = 0) ~extra_kernels
    ~children () =
  let kernels = 1 + max extra_kernels 0 in
  let cfg =
    System.config ~kernels ~user_pes_per_kernel:(min 190 (children + 4)) ~mode:Cost.Semperos
      ~batching ~broadcast ()
  in
  let sys = System.create cfg in
  (* Fill the mapping databases with unrelated capabilities: a live
     system is never empty, and the broadcast baseline must scan all of
     this on every revoke. *)
  if background_caps > 0 then
    for k = 0 to kernels - 1 do
      let filler = System.spawn_vpe sys ~kernel:k in
      let kernel = System.kernel sys k in
      for _ = 1 to background_caps do
        ignore
          (Semper_kernel.Kernel.install_new_cap kernel ~owner:filler
             ~kind:(Semper_caps.Cap.Mem_cap
                      { host_pe = filler.Vpe.pe; addr = 0L; size = 64L; perms = Perms.r })
             ())
      done
    done;
  let root_vpe = System.spawn_vpe sys ~kernel:0 in
  let r, _ = timed_syscall sys root_vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
  let root = sel_of r in
  for i = 0 to children - 1 do
    let k = if extra_kernels = 0 then 0 else 1 + (i mod extra_kernels) in
    let v = System.spawn_vpe sys ~kernel:k in
    let r, _ =
      timed_syscall sys v (Protocol.Sys_obtain_from { donor_vpe = root_vpe.Vpe.id; donor_sel = root })
    in
    ignore (sel_of r)
  done;
  let _, cycles = timed_syscall sys root_vpe (Protocol.Sys_revoke { sel = root; own = true }) in
  cycles

(* ------------------------------------------------------------------ *)
(* Batch drivers: each point builds a private system, so a sweep fans
   out over domains. Results come back in submission order. *)

let exchange_revokes ?jobs specs =
  Semper_util.Domain_pool.map ?jobs
    (fun (mode, spanning) -> exchange_revoke ~mode ~spanning)
    specs

type chain_spec = {
  c_mode : Cost.mode;
  c_spanning : bool;
  c_len : int;
  c_batching : bool;
}

let chain_spec ?(batching = false) ~mode ~spanning ~len () =
  { c_mode = mode; c_spanning = spanning; c_len = len; c_batching = batching }

let chain_revocations ?jobs specs =
  Semper_util.Domain_pool.map ?jobs
    (fun { c_mode; c_spanning; c_len; c_batching } ->
      chain_revocation ~batching:c_batching ~mode:c_mode ~spanning:c_spanning ~len:c_len ())
    specs

type tree_spec = {
  t_batching : bool;
  t_broadcast : bool;
  t_background_caps : int;
  t_extra_kernels : int;
  t_children : int;
}

let tree_spec ?(batching = false) ?(broadcast = false) ?(background_caps = 0) ~extra_kernels
    ~children () =
  { t_batching = batching; t_broadcast = broadcast; t_background_caps = background_caps;
    t_extra_kernels = extra_kernels; t_children = children }

let tree_revocations ?jobs specs =
  Semper_util.Domain_pool.map ?jobs
    (fun s ->
      tree_revocation ~batching:s.t_batching ~broadcast:s.t_broadcast
        ~background_caps:s.t_background_caps ~extra_kernels:s.t_extra_kernels
        ~children:s.t_children ())
    specs
