module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Cost = Semper_kernel.Cost
module M3fs = Semper_m3fs.M3fs
module Workloads = Semper_trace.Workloads
module Trace = Semper_trace.Trace
module Replay = Semper_trace.Replay
module Server = Semper_sim.Server
module Obs = Semper_obs.Obs

let clock_hz = 2.0e9

type config = {
  kernels : int;
  services : int;
  instances : int;
  workload : Workloads.spec;
  mode : Cost.mode;
  mem_contention : float;
}

let default_mem_contention = 0.35

let config ?(mode = Cost.Semperos) ?(mem_contention = default_mem_contention) ~kernels ~services
    ~instances workload =
  if kernels <= 0 || services <= 0 || instances <= 0 then
    invalid_arg "Experiment.config: non-positive size";
  if mem_contention < 0.0 then invalid_arg "Experiment.config: negative contention";
  { kernels; services; instances; workload; mode; mem_contention }

type outcome = {
  cfg : config;
  runtimes : int64 list;
  mean_runtime : float;
  max_runtime : int64;
  cap_ops : int;
  cap_ops_per_s : float;
  exchanges_spanning : int;
  revokes_spanning : int;
  replay_wall_s : float;
  replay_errors : string list;
  kernel_utilisation : float;
  service_utilisation : float;
  total_pes : int;
  snapshot : Obs.Json.t;
}

(* Service placement: service [s] lives in group [s mod kernels], so
   with more services than groups, groups host several. Instance [i]
   runs in group [i mod kernels] and prefers a group-local service
   (round-robinning among them if there are several); groups without a
   service round-robin over all services. *)
let service_of_instance ~kernels ~services ~instance =
  let group = instance mod kernels in
  let locals = services / kernels + if group < services mod kernels then 1 else 0 in
  if locals > 0 then group + (instance / kernels mod locals * kernels)
  else instance mod services

let run cfg =
  let spec = cfg.workload in
  (* Shared memory-system contention: active cores stretch every
     instance's local work uniformly. *)
  let slowdown =
    1.0
    +. cfg.mem_contention *. spec.Workloads.mem_sensitivity *. float_of_int cfg.instances /. 640.0
  in
  let base_trace = Trace.scale_compute slowdown (spec.Workloads.build ()) in
  (* Per-instance private namespace, like per-instance traces in the
     paper's replay methodology. All instances share the one base
     trace; the per-instance "/i<n>" prefix is applied by [Replay.run]
     at op-issue time. Materialising a prefixed deep copy per instance
     (the previous scheme) kept instances * |trace| strings live for
     the whole run — tens of megabytes at 4K PEs, enough to push the
     replay working set past the last-level cache and visibly bend the
     events/s scale curve. *)
  let prefix i = Printf.sprintf "/i%d" i in
  let per_group_instances = (cfg.instances + cfg.kernels - 1) / cfg.kernels in
  let per_group_services = (cfg.services + cfg.kernels - 1) / cfg.kernels in
  let user_pes = per_group_instances + per_group_services in
  let sys =
    System.create (System.config ~kernels:cfg.kernels ~user_pes_per_kernel:user_pes ~mode:cfg.mode ())
  in
  (* Build each service's image from the (prefixed) files of its
     clients; the prefixed lists are transient — only the image keeps
     the strings alive. *)
  let files_of_service = Array.make cfg.services [] in
  for i = 0 to cfg.instances - 1 do
    let s = service_of_instance ~kernels:cfg.kernels ~services:cfg.services ~instance:i in
    let prefixed =
      List.map (fun (path, size) -> (prefix i ^ path, size)) base_trace.Trace.files
    in
    files_of_service.(s) <- List.rev_append prefixed files_of_service.(s)
  done;
  let services =
    Array.init cfg.services (fun s ->
        M3fs.create
          ~config:{ spec.Workloads.fs_config with M3fs.mem_slowdown = slowdown }
          sys ~kernel:(s mod cfg.kernels)
          ~name:(Printf.sprintf "m3fs%d" s)
          ~files:(List.rev files_of_service.(s))
          ())
  in
  (* Spawn instance VPEs round-robin over the groups. *)
  let vpes =
    Array.init cfg.instances (fun i -> System.spawn_vpe sys ~kernel:(i mod cfg.kernels))
  in
  let results = Array.make cfg.instances None in
  (* Stagger starts slightly: launching 512 instances is not
     instantaneous on real hardware, and lock-step convoys of identical
     syscall sequences would be an artefact, not contention. *)
  let engine = System.engine sys in
  Array.iteri
    (fun i vpe ->
      let fs = services.(service_of_instance ~kernels:cfg.kernels ~services:cfg.services ~instance:i) in
      Semper_sim.Engine.after engine (Int64.of_int (i * 1009)) (fun () ->
          Replay.run sys fs ~vpe ~prefix:(prefix i) base_trace (fun r -> results.(i) <- Some r)))
    vpes;
  (* Host wall-clock of the event loop alone: the scale bench derives
     its events/s from this, so image building and VPE spawning above
     (which process no events) cannot dilute the throughput figure. *)
  let t0 = Unix.gettimeofday () in
  ignore (System.run sys);
  let replay_wall_s = Unix.gettimeofday () -. t0 in
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> failwith "Experiment.run: replay did not complete (engine drained early)")
      results
  in
  let runtimes = Array.to_list (Array.map Replay.runtime results) in
  let replay_errors =
    Array.to_list results
    |> List.concat_map (fun (r : Replay.result) ->
           List.map (Printf.sprintf "%s/vpe%d: %s" r.Replay.trace r.Replay.vpe) r.Replay.errors)
  in
  if replay_errors <> [] then
    failwith
      (Printf.sprintf "Experiment.run: %d replay errors, first: %s" (List.length replay_errors)
         (List.hd replay_errors));
  (* Every run doubles as a protocol verification pass: the global
     capability forest must be consistent across all kernels. *)
  (match (Audit.run sys).Audit.errors with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "Experiment.run: capability audit failed: %s" (String.concat "; " errs)));
  let max_runtime = List.fold_left max 0L runtimes in
  let mean_runtime =
    List.fold_left (fun acc r -> acc +. Int64.to_float r) 0.0 runtimes
    /. float_of_int cfg.instances
  in
  let kstats = List.map Kernel.stats (System.kernels sys) in
  let cap_ops = List.fold_left (fun acc s -> acc + s.Kernel.cap_ops) 0 kstats in
  let exchanges_spanning =
    List.fold_left (fun acc s -> acc + s.Kernel.exchanges_spanning) 0 kstats
  in
  let revokes_spanning = List.fold_left (fun acc s -> acc + s.Kernel.revokes_spanning) 0 kstats in
  let horizon = max_runtime in
  let mean_util servers =
    match servers with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc s -> acc +. Server.utilisation s ~horizon) 0.0 servers
      /. float_of_int (List.length servers)
  in
  let seconds = Int64.to_float max_runtime /. clock_hz in
  {
    cfg;
    runtimes;
    mean_runtime;
    max_runtime;
    cap_ops;
    cap_ops_per_s = (if seconds > 0.0 then float_of_int cap_ops /. seconds else 0.0);
    exchanges_spanning;
    revokes_spanning;
    replay_wall_s;
    replay_errors;
    kernel_utilisation = mean_util (List.map Kernel.server (System.kernels sys));
    service_utilisation = mean_util (Array.to_list (Array.map M3fs.server services));
    total_pes = cfg.instances + cfg.kernels + cfg.services;
    snapshot = Obs.Registry.snapshot (System.obs sys);
  }

(* Each run builds a private system (engine, fabric, registry), so a
   config list is an embarrassingly parallel workload. Outcomes come
   back in submission order — parallelism never reorders results. *)
let run_many ?jobs cfgs = Semper_util.Domain_pool.map ?jobs run cfgs

let parallel_efficiency ~single ~parallel =
  if parallel.mean_runtime <= 0.0 then 0.0
  else Int64.to_float single.max_runtime /. parallel.mean_runtime

let system_efficiency ~single ~parallel =
  let eff = parallel_efficiency ~single ~parallel in
  eff *. float_of_int parallel.cfg.instances /. float_of_int parallel.total_pes
