module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module Cost = Semper_kernel.Cost
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Mapdb = Semper_caps.Mapdb
module Membership = Semper_ddl.Membership
module Fleet = Semper_fleet.Fleet
module Fault = Semper_fault.Fault
module Rng = Semper_util.Rng
module Engine = Semper_sim.Engine
module Checkpoint = Semper_sim.Checkpoint
module Obs = Semper_obs.Obs

type spec = {
  kernels : int;
  vpes : int;
  ops : int;
  spares : int;
  delay : bool;
  dup : bool;
  drop : bool;
  stall : bool;
  retry : bool;
}

let spec ?(kernels = 3) ?(vpes = 6) ?(ops = 40) ?(spares = 0) ?(delay = true) ?(dup = true)
    ?(drop = true) ?(stall = true) ?(retry = true) () =
  { kernels; vpes; ops; spares; delay; dup; drop; stall; retry }

let default_spec = spec ()

type outcome = {
  workload_seed : int;
  fault_seed : int;
  syscalls : int;
  replies : int;
  ok_replies : int;
  err_replies : int;
  migrations : int;
  fleet_ops : int;
  injected_delays : int;
  injected_dups : int;
  injected_drops : int;
  injected_stalls : int;
  retries : int;
  dup_ikc : int;
  caps_leaked : int;
  failures : string list;
  metrics_json : string;
  trace_tail : string list;
}

let profile s fault_seed =
  {
    Fault.seed = Int64.of_int fault_seed;
    delay_prob = (if s.delay then 0.25 else 0.0);
    max_delay = 1_500;
    dup_prob = (if s.dup then 0.08 else 0.0);
    max_dup_delay = 900;
    drop_prob = (if s.drop then 0.04 else 0.0);
    max_drops_per_pair = 2;
    max_drops_total = 24;
    stall_prob = (if s.stall then 0.02 else 0.0);
    max_stall = 4_000;
  }

(* A fuzz case as an explicit state machine — [start] builds the system
   and issues the boot allocations, [step] executes one workload op,
   [finish] drains the engine, runs the oracles, and tears down. One
   case state is one marshalable root: the reply callbacks and engine
   events all close over this record, so a single [Checkpoint.save] of
   it captures the whole case mid-flight. *)
type state = {
  st_spec : spec;
  st_workload_seed : int;
  st_fault_seed : int;
  rng : Rng.t;
  sys : System.t;
  vpes : Vpe.t array;
  (* Pool of (vpe index, selector) pairs known to have been granted;
     entries go stale after revokes and exits — the resulting errors are
     themselves part of the workload. *)
  mutable pool : (int * int) list;
  mutable issued : int;
  mutable replied : int;
  mutable ok : int;
  mutable errs : int;
  mutable migrations : int;
  mutable fleet_ops : int;
  mutable failures : string list;  (* reversed; [finish] restores order *)
  mutable step_no : int;
  (* An exception anywhere in the workload skips the remaining steps and
     the end-of-run oracles (teardown still runs), matching the single
     try-block of the pre-checkpoint fuzzer. *)
  mutable crashed : string option;
}

let issue st v call =
  st.issued <- st.issued + 1;
  System.syscall st.sys st.vpes.(v) call (fun r ->
      st.replied <- st.replied + 1;
      match r with
      | P.R_sel sel ->
        st.ok <- st.ok + 1;
        st.pool <- (v, sel) :: st.pool
      | P.R_ok | P.R_vpe _ | P.R_sess _ -> st.ok <- st.ok + 1
      | P.R_err _ -> st.errs <- st.errs + 1)

let alloc st v = issue st v (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw })

let pool_pick st =
  match st.pool with
  | [] -> None
  | entries -> Some (List.nth entries (Rng.int st.rng (List.length entries)))

let start ?(spec = default_spec) ~workload_seed ~fault_seed () =
  let s = spec in
  let rng = Rng.create (Int64.of_int workload_seed) in
  let pes = max 2 ((s.vpes + s.kernels - 1) / s.kernels) in
  let sys =
    System.create
      (System.config ~kernels:s.kernels ~spare_kernels:s.spares ~user_pes_per_kernel:pes
         ~fault:(profile s fault_seed) ~retry:s.retry ())
  in
  let vpes = Array.init s.vpes (fun i -> System.spawn_vpe sys ~kernel:(i mod s.kernels)) in
  let st =
    {
      st_spec = s;
      st_workload_seed = workload_seed;
      st_fault_seed = fault_seed;
      rng;
      sys;
      vpes;
      pool = [];
      issued = 0;
      replied = 0;
      ok = 0;
      errs = 0;
      migrations = 0;
      fleet_ops = 0;
      failures = [];
      step_no = 0;
      crashed = None;
    }
  in
  (try
     (* Every VPE starts with one root allocation so exchanges have
        material to work with. *)
     Array.iteri (fun i _ -> alloc st i) vpes;
     ignore (System.run sys)
   with exn -> st.crashed <- Some (Printexc.to_string exn));
  st

(* Fleet oracles, run with the engine drained (after each fleet
   transition and again at [finish]):

   - {b convergence}: every kernel's membership replica agrees with the
     system replica on both partition routing and kernel lifecycle
     states, with no mid-handoff mark left behind — a lost or
     misapplied [fleet_state]/[part_update] would leave a replica
     routing to a stale owner;
   - {b no-stranded}: a [Spare] or [Retired] kernel holds no capability
     record and no VPE (and a Retired one owns no partition) — a lost
     [part_records] wave would strand records on a kernel that no
     longer serves lookups. *)
let fleet_oracles st =
  let sys = st.sys in
  let sys_mem = System.membership sys in
  let fail fmt = Printf.ksprintf (fun s -> st.failures <- s :: st.failures) fmt in
  let all_pes =
    List.concat_map (fun k -> Membership.pes_of_kernel sys_mem k) (Membership.kernels sys_mem)
  in
  List.iter
    (fun k ->
      let mem = Kernel.membership k in
      if Membership.kernel_states mem <> Membership.kernel_states sys_mem then
        fail "fleet: kernel %d lifecycle replica diverged from the system replica" (Kernel.id k);
      List.iter
        (fun pe ->
          match Membership.kernel_of_pe mem pe with
          | owner ->
            if owner <> Membership.kernel_of_pe sys_mem pe then
              fail "fleet: kernel %d routes PE %d to kernel %d, system replica says %d"
                (Kernel.id k) pe owner
                (Membership.kernel_of_pe sys_mem pe)
          | exception Membership.Mid_handoff _ ->
            fail "fleet: kernel %d marks PE %d mid-handoff at quiescence" (Kernel.id k) pe)
        all_pes)
    (System.kernels sys);
  List.iter
    (fun k ->
      match Membership.kernel_state sys_mem (Kernel.id k) with
      | Membership.Spare | Membership.Retired ->
        let caps = Mapdb.count (Kernel.mapdb k) in
        let vpes = Kernel.vpe_count k in
        if caps > 0 then
          fail "fleet: %d capability records stranded on out-of-service kernel %d" caps
            (Kernel.id k);
        if vpes > 0 then
          fail "fleet: %d VPEs stranded on out-of-service kernel %d" vpes (Kernel.id k);
        if
          Membership.kernel_state sys_mem (Kernel.id k) = Membership.Retired
          && Membership.pes_of_kernel sys_mem (Kernel.id k) <> []
        then fail "fleet: retired kernel %d still owns partitions" (Kernel.id k)
      | _ -> ())
    (System.kernels sys)

(* One join or drain, run to completion from quiescence, oracles after.
   Reached only when the spec provisions spare kernels, so specs
   without spares draw exactly the pre-fleet RNG stream. *)
let fleet_action st =
  let sys = st.sys in
  ignore (System.run sys);
  let mem = System.membership sys in
  let ids = List.init (System.kernel_count sys) Fun.id in
  let joinable =
    List.filter
      (fun k ->
        match Membership.kernel_state mem k with
        | Membership.Spare | Membership.Retired -> true
        | _ -> false)
      ids
  in
  let drainable = List.filter (fun k -> Fleet.drainable sys ~kernel:k) ids in
  let act kind kernel f =
    let finished = ref false in
    f (fun () -> finished := true);
    ignore (System.run sys);
    if not !finished then
      st.failures <-
        Printf.sprintf "fleet: %s of kernel %d never completed" kind kernel :: st.failures
    else begin
      st.fleet_ops <- st.fleet_ops + 1;
      fleet_oracles st
    end
  in
  match (joinable, drainable) with
  | [], [] -> ()
  | j :: _, [] -> act "join" j (fun k -> Fleet.join sys ~kernel:j k)
  | [], d :: _ -> act "drain" d (fun k -> Fleet.drain sys ~kernel:d k)
  | j :: _, d :: _ ->
    if Rng.bool st.rng then act "join" j (fun k -> Fleet.join sys ~kernel:j k)
    else act "drain" d (fun k -> Fleet.drain sys ~kernel:d k)

let step_body st =
  let s = st.st_spec in
  let rng = st.rng in
  let sys = st.sys in
  let vpes = st.vpes in
  (match Rng.int rng 100 with
  | n when n < 10 -> alloc st (Rng.int rng s.vpes)
  | n when n < 40 -> (
    match pool_pick st with
    | None -> alloc st (Rng.int rng s.vpes)
    | Some (dv, dsel) ->
      issue st (Rng.int rng s.vpes)
        (P.Sys_obtain_from { donor_vpe = vpes.(dv).Vpe.id; donor_sel = dsel }))
  | n when n < 60 -> (
    match pool_pick st with
    | None -> alloc st (Rng.int rng s.vpes)
    | Some (hv, hsel) ->
      let recv = Rng.int rng s.vpes in
      issue st hv (P.Sys_delegate_to { recv_vpe = vpes.(recv).Vpe.id; sel = hsel }))
  | n when n < 75 -> (
    match pool_pick st with
    | None -> alloc st (Rng.int rng s.vpes)
    | Some (hv, hsel) -> issue st hv (P.Sys_revoke { sel = hsel; own = Rng.bool rng }))
  | n when n < 85 -> (
    match pool_pick st with
    | None -> alloc st (Rng.int rng s.vpes)
    | Some (hv, hsel) ->
      issue st hv (P.Sys_derive_mem { sel = hsel; offset = 0L; size = 1024L; perms = Perms.r }))
  | n when n < 93 ->
    (* Bounded partial run: lets the next syscalls overlap whatever
       is still in flight, exercising interleavings. *)
    ignore
      (System.run ~until:(Int64.add (System.now sys) (Int64.of_int (500 + Rng.int rng 4_000))) sys)
  | n when n < 98 && s.spares > 0 && Rng.int rng 3 = 0 ->
    (* Fleet transition: join a spare/retired kernel or drain an
       Active one, with faults hitting the lifecycle broadcasts and
       partition waves like any other op-tagged traffic. *)
    fleet_action st
  | n when n < 98 ->
    (* Migration needs quiescence; skip when the candidate cannot
       legally move right now. *)
    ignore (System.run sys);
    let v = vpes.(Rng.int rng s.vpes) in
    let dst = Rng.int rng s.kernels in
    if
      Vpe.is_alive v && (not v.Vpe.syscall_pending) && (not v.Vpe.frozen)
      && dst <> v.Vpe.kernel
      (* The live balancer only targets Active kernels; a drained boot
         kernel would be refused by the migrate_vpe safety gate. *)
      && Membership.kernel_state (System.membership sys) dst = Membership.Active
    then begin
      System.migrate_vpe sys v ~to_kernel:dst;
      st.migrations <- st.migrations + 1;
      (* Relocation oracle: with the engine drained, every record in
         the migrated VPE's partition must live at the destination
         and none at the source — a lost or misapplied
         migrate_update/migrate_caps leaves records behind or
         routes lookups to a kernel that no longer has them. *)
      let key_pe = Semper_ddl.Key.pe in
      List.iter
        (fun k ->
          let here = ref 0 in
          Semper_caps.Mapdb.iter
            (fun cap ->
              if key_pe cap.Semper_caps.Cap.key = v.Vpe.pe then incr here)
            (Kernel.mapdb k);
          if Kernel.id k <> dst && !here > 0 then
            st.failures <-
              Printf.sprintf
                "relocation: %d records of migrated VPE %d stranded at kernel %d" !here
                v.Vpe.id (Kernel.id k)
              :: st.failures)
        (System.kernels sys);
      (* Every membership replica must agree on the new owner, with
         no handoff mark left behind. *)
      List.iter
        (fun k ->
          match Semper_ddl.Membership.kernel_of_pe (Kernel.membership k) v.Vpe.pe with
          | owner ->
            if owner <> dst then
              st.failures <-
                Printf.sprintf
                  "relocation: kernel %d routes PE %d to kernel %d, expected %d"
                  (Kernel.id k) v.Vpe.pe owner dst
                :: st.failures
          | exception Semper_ddl.Membership.Mid_handoff _ ->
            st.failures <-
              Printf.sprintf
                "relocation: kernel %d still marks PE %d mid-handoff after drain"
                (Kernel.id k) v.Vpe.pe
              :: st.failures)
        (System.kernels sys);
      if v.Vpe.frozen then
        st.failures <-
          Printf.sprintf "relocation: VPE %d still frozen after migration drained" v.Vpe.id
          :: st.failures
    end
  | _ ->
    let v = Rng.int rng s.vpes in
    if Vpe.is_alive vpes.(v) then issue st v P.Sys_exit);
  (* Small chance the next message batch starts later. *)
  if Rng.int rng 4 = 0 then
    ignore (System.run ~until:(Int64.add (System.now sys) 1_000L) sys)

let step st =
  if st.crashed = None && st.step_no < st.st_spec.ops then begin
    (try step_body st with exn -> st.crashed <- Some (Printexc.to_string exn));
    st.step_no <- st.step_no + 1
  end

let steps_done st = st.step_no
let state_system st = st.sys

let finish ?inc st =
  let sys = st.sys in
  (match st.crashed with
  | Some msg -> st.failures <- ("exception: " ^ msg) :: st.failures
  | None -> (
    try
      ignore (System.run sys);
      (* Liveness oracle: a drained engine with unanswered syscalls means
         a protocol lost a message for good. *)
      if st.replied <> st.issued then
        st.failures <-
          Printf.sprintf "liveness: %d of %d syscalls never got a reply" (st.issued - st.replied)
            st.issued
          :: st.failures;
      (* Safety oracle: the global capability forest must be consistent. *)
      let report = Audit.run sys in
      List.iter (fun e -> st.failures <- ("audit: " ^ e) :: st.failures) report.Audit.errors;
      (* Incremental-audit oracle: an auditor that mirrored the forest
         since boot and only re-verified dirty partitions must agree
         with the full pass. Gated on a clean full report — on corrupt
         state the two legitimately phrase violations differently. *)
      (match inc with
      | Some inc when report.Audit.errors = [] ->
        let ireport = Audit.Incremental.run inc in
        if
          ireport.Audit.errors <> []
          || ireport.Audit.capabilities <> report.Audit.capabilities
          || ireport.Audit.roots <> report.Audit.roots
          || ireport.Audit.max_depth <> report.Audit.max_depth
          || ireport.Audit.spanning_links <> report.Audit.spanning_links
        then
          st.failures <-
            Format.asprintf "incremental audit diverged: full %a vs incremental %a"
              Audit.pp_report report Audit.pp_report ireport
            :: st.failures
      | Some _ | None -> ());
      (* Credit oracle: at quiescence every per-peer send window must sit
         inside [0, max_inflight] — a negative window means a send slipped
         past the gate, an oversized one means a duplicated or spurious
         refund was banked instead of discarded (§5.1). *)
      List.iter
        (fun k ->
          List.iter
            (fun (peer, credits) ->
              if credits < 0 || credits > Cost.max_inflight then
                st.failures <-
                  Printf.sprintf
                    "credit: kernel %d window to peer %d is %d, outside [0, %d]"
                    (Kernel.id k) peer credits Cost.max_inflight
                  :: st.failures)
            (Kernel.credit_windows k))
        (System.kernels sys);
      (* Fleet oracles: membership replicas converged, nothing stranded
         on out-of-service kernels. *)
      fleet_oracles st
    with exn -> st.failures <- ("exception: " ^ Printexc.to_string exn) :: st.failures));
  let leaked = try System.shutdown sys with _ -> -1 in
  if leaked <> 0 then
    st.failures <-
      Printf.sprintf "teardown: %d capabilities survived shutdown" leaked :: st.failures;
  let kstat f = List.fold_left (fun acc k -> acc + f (Kernel.stats k)) 0 (System.kernels sys) in
  let inj =
    match System.fault_plan sys with
    | Some plan -> Fault.stats plan
    | None -> { Fault.delays = 0; dups = 0; drops = 0; stalls = 0 }
  in
  let failed = st.failures <> [] in
  (* Attach diagnostics only to failures: a metrics snapshot plus the
     tail of the protocol trace ring, both deterministic for the seed
     pair. *)
  let metrics_json =
    if failed then Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys)) else ""
  in
  let trace_tail =
    if failed then
      List.map
        (fun e -> Obs.Json.to_string (Obs.Trace.event_json e))
        (Obs.Trace.tail (System.trace_buffer sys) ~n:40)
    else []
  in
  {
    workload_seed = st.st_workload_seed;
    fault_seed = st.st_fault_seed;
    syscalls = st.issued;
    replies = st.replied;
    ok_replies = st.ok;
    err_replies = st.errs;
    migrations = st.migrations;
    fleet_ops = st.fleet_ops;
    injected_delays = inj.Fault.delays;
    injected_dups = inj.Fault.dups;
    injected_drops = inj.Fault.drops;
    injected_stalls = inj.Fault.stalls;
    retries = kstat (fun s -> s.Kernel.retries);
    dup_ikc = kstat (fun s -> s.Kernel.dup_ikc);
    caps_leaked = leaked;
    failures = List.rev st.failures;
    metrics_json;
    trace_tail;
  }

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)

let case_kind = "fuzz-case"

let save_state st =
  Checkpoint.save ~kind:case_kind
    ~label:(Printf.sprintf "w=%d f=%d" st.st_workload_seed st.st_fault_seed)
    ~position:(Int64.of_int st.step_no)
    ~fingerprint:(System.fingerprint st.sys)
    st

let load_state image =
  match Checkpoint.load ~kind:case_kind image with
  | Error _ as e -> e
  | Ok ((header : Checkpoint.header), (st : state)) ->
    System.rebind st.sys;
    let fp = System.fingerprint st.sys in
    if header.Checkpoint.fingerprint <> "" && fp <> header.Checkpoint.fingerprint then
      Error "restored fuzz state does not reproduce the recorded fingerprint"
    else Ok (header, st)

(* Auto-checkpointing run: [on_checkpoint] fires with the state frozen
   just before ops 0, K, 2K, ... (skipped once the case has crashed —
   there is nothing left to resume into). With the default no-op
   callback this is exactly start; ops × step; finish. *)
let run_one ?(spec = default_spec) ?(checkpoint_every = 0) ?(on_checkpoint = fun _ _ -> ())
    ~workload_seed ~fault_seed () =
  let st = start ~spec ~workload_seed ~fault_seed () in
  (* The incremental-audit oracle lives outside [st]: checkpoint images
     must stay exactly one marshalable case root. Resumed cases run
     without it. *)
  let inc = Audit.Incremental.create ~full_every:0 (state_system st) in
  for i = 0 to spec.ops - 1 do
    if checkpoint_every > 0 && i mod checkpoint_every = 0 && st.crashed = None then
      on_checkpoint st.step_no (save_state st);
    step st
  done;
  finish ~inc st

(* ------------------------------------------------------------------ *)
(* Delta-debugging shrinker                                            *)

type shrink_result = {
  sh_spec : spec;
  sh_workload_seed : int;
  sh_fault_seed : int;
  sh_original : outcome;
  sh_min_ops : int;
  sh_minimal : outcome;
  sh_probes : int;
  sh_replayed_ops : int;
  sh_saved_ops : int;
}

(* Minimise the failing op-prefix of a case by binary search over
   prefix lengths, restarting each probe from the nearest in-memory
   checkpoint at or below the probe point instead of re-running the
   prefix from op zero. Probes run strictly sequentially in a
   deterministic order, so the minimal case is identical on every
   invocation and at any [--jobs] setting (the shrinker itself never
   fans out). *)
let shrink ?(spec = default_spec) ?checkpoint_every ~workload_seed ~fault_seed () =
  let every =
    match checkpoint_every with
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Fuzz.shrink: checkpoint_every must be >= 1"
    | None -> max 1 (spec.ops / 8)
  in
  (* Recording pass: images.(i) freezes the state just before op
     [i * every]. *)
  let n_images = (spec.ops / every) + 1 in
  let images = Array.make n_images Bytes.empty in
  (* A crash cuts the recording short; probes clamp to the last image
     that was actually taken. *)
  let recorded = ref (-1) in
  let original =
    run_one ~spec ~checkpoint_every:every
      ~on_checkpoint:(fun at image ->
        images.(at / every) <- image;
        recorded := max !recorded (at / every))
      ~workload_seed ~fault_seed ()
  in
  if original.failures = [] then Error "case passes all oracles; nothing to shrink"
  else if !recorded < 0 then
    Error "no checkpoints were recorded (zero ops, or the case crashed at boot)"
  else begin
    let probes = ref 0 and replayed = ref 0 and saved = ref 0 in
    let outcomes = Hashtbl.create 16 in
    let outcome_of l =
      match Hashtbl.find_opt outcomes l with
      | Some o -> o
      | None ->
        let c = min (l / every) !recorded in
        let st =
          match load_state images.(c) with
          | Ok (_, st) -> st
          | Error e -> failwith ("Fuzz.shrink: " ^ e)
        in
        incr probes;
        replayed := !replayed + (l - (c * every));
        saved := !saved + (c * every);
        for _ = (c * every) + 1 to l do
          step st
        done;
        let o = finish st in
        Hashtbl.replace outcomes l o;
        o
    in
    let fails l = (outcome_of l).failures <> [] in
    let lo = ref (-1) and hi = ref spec.ops in
    (* Invariant: [hi] fails; [lo] passes (-1 = nothing below 0). *)
    if fails 0 then hi := 0 else lo := 0;
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fails mid then hi := mid else lo := mid
    done;
    (* The predicate need not be monotone (a longer prefix can heal a
       failure), so the binary-search boundary is only locally minimal.
       Walk down a bounded distance while the immediate predecessor
       still fails; with a monotone predicate this loop exits at once. *)
    let budget = ref every in
    while !hi > 0 && !budget > 0 && fails (!hi - 1) do
      decr budget;
      hi := !hi - 1
    done;
    let minimal = if !hi = spec.ops then original else outcome_of !hi in
    Ok
      {
        sh_spec = spec;
        sh_workload_seed = workload_seed;
        sh_fault_seed = fault_seed;
        sh_original = original;
        sh_min_ops = !hi;
        sh_minimal = minimal;
        sh_probes = !probes;
        sh_replayed_ops = !replayed;
        sh_saved_ops = !saved;
      }
  end

(* ------------------------------------------------------------------ *)
(* Self-contained counterexample cases                                 *)

module Case = struct
  type t = {
    name : string;
    spec : spec;
    workload_seed : int;
    fault_seed : int;
    expect : string list;
  }

  let failure_kind f =
    match String.index_opt f ':' with Some i -> String.sub f 0 i | None -> f

  let kinds failures = List.sort_uniq String.compare (List.map failure_kind failures)

  let of_shrink ~name (r : shrink_result) =
    {
      name;
      spec = { r.sh_spec with ops = r.sh_min_ops };
      workload_seed = r.sh_workload_seed;
      fault_seed = r.sh_fault_seed;
      expect = kinds r.sh_minimal.failures;
    }

  let format_tag = "semperos-fuzz-case 1"

  let to_string c =
    let s = c.spec in
    let b = Buffer.create 256 in
    let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
    line "%s" format_tag;
    line "name %s" c.name;
    line "workload-seed %d" c.workload_seed;
    line "fault-seed %d" c.fault_seed;
    line "kernels %d" s.kernels;
    line "vpes %d" s.vpes;
    line "ops %d" s.ops;
    if s.spares > 0 then line "spares %d" s.spares;
    line "faults %s"
      (String.concat ","
         (List.filter_map
            (fun (on, tag) -> if on then Some tag else None)
            [ (s.delay, "delay"); (s.dup, "dup"); (s.drop, "drop"); (s.stall, "stall") ]));
    line "retry %b" s.retry;
    line "expect %s" (String.concat "," c.expect);
    Buffer.contents b

  let of_string text =
    let lines =
      String.split_on_char '\n' text
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" || l.[0] = '#' then None else Some l)
    in
    match lines with
    | tag :: rest when tag = format_tag -> (
      let field name =
        List.find_map
          (fun l ->
            let prefix = name ^ " " in
            if String.length l > String.length prefix
               && String.sub l 0 (String.length prefix) = prefix
            then Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
            else None)
          rest
      in
      let int_field name =
        match field name with
        | Some v -> (
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "fuzz case: bad integer for %s" name))
        | None -> Error (Printf.sprintf "fuzz case: missing field %s" name)
      in
      let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
      let* workload_seed = int_field "workload-seed" in
      let* fault_seed = int_field "fault-seed" in
      let* kernels = int_field "kernels" in
      let* vpes = int_field "vpes" in
      let* ops = int_field "ops" in
      (* Cases written before the fleet existed carry no [spares] line;
         zero reproduces their RNG stream exactly. *)
      let* spares = match field "spares" with None -> Ok 0 | Some _ -> int_field "spares" in
      let faults =
        match field "faults" with
        | Some v -> String.split_on_char ',' v |> List.filter (fun t -> t <> "")
        | None -> []
      in
      let retry = field "retry" = Some "true" in
      let expect =
        match field "expect" with
        | Some v -> String.split_on_char ',' v |> List.filter (fun t -> t <> "")
        | None -> []
      in
      let has tag = List.mem tag faults in
      Ok
        {
          name = Option.value (field "name") ~default:"unnamed";
          spec =
            spec ~kernels ~vpes ~ops ~spares ~delay:(has "delay") ~dup:(has "dup")
              ~drop:(has "drop") ~stall:(has "stall") ~retry ();
          workload_seed;
          fault_seed;
          expect;
        })
    | _ -> Error "fuzz case: missing or unsupported format tag"

  let save path c =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string c))

  let load path =
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))

  let run c = run_one ~spec:c.spec ~workload_seed:c.workload_seed ~fault_seed:c.fault_seed ()

  let check c =
    let o = run c in
    let got = kinds o.failures in
    if got = c.expect then Ok o
    else
      Error
        (Printf.sprintf "%s: expected oracle verdict [%s], got [%s]" c.name
           (String.concat "," c.expect) (String.concat "," got))
end

let outcome_line o =
  Printf.sprintf
    "w=%d f=%d calls=%d replies=%d ok=%d err=%d migr=%d fleet=%d inj[delay=%d dup=%d drop=%d \
     stall=%d] retries=%d dups_seen=%d leaked=%d %s"
    o.workload_seed o.fault_seed o.syscalls o.replies o.ok_replies o.err_replies o.migrations
    o.fleet_ops o.injected_delays o.injected_dups o.injected_drops o.injected_stalls o.retries o.dup_ikc
    o.caps_leaked
    (match o.failures with
    | [] -> "PASS"
    | fs -> Printf.sprintf "FAIL(%d)" (List.length fs))

let pp_outcome ppf o =
  Format.fprintf ppf "%s" (outcome_line o);
  List.iter (fun f -> Format.fprintf ppf "@.  %s" f) o.failures;
  if o.trace_tail <> [] then begin
    Format.fprintf ppf "@.  trace tail (%d events):" (List.length o.trace_tail);
    List.iter (fun line -> Format.fprintf ppf "@.    %s" line) o.trace_tail
  end;
  if o.metrics_json <> "" then Format.fprintf ppf "@.  metrics: %s" o.metrics_json

(* Each seed pair builds a private system, so the sweep fans out over
   domains; outcomes come back in seed order regardless of [jobs]. *)
let run_many ?jobs ?(spec = default_spec) ~workload_seed ~fault_seed ~runs () =
  Semper_util.Domain_pool.map ?jobs
    (fun i -> run_one ~spec ~workload_seed:(workload_seed + i) ~fault_seed:(fault_seed + i) ())
    (List.init runs Fun.id)
