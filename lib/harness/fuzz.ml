module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe
module P = Semper_kernel.Protocol
module Perms = Semper_caps.Perms
module Fault = Semper_fault.Fault
module Rng = Semper_util.Rng
module Engine = Semper_sim.Engine
module Obs = Semper_obs.Obs

type spec = {
  kernels : int;
  vpes : int;
  ops : int;
  delay : bool;
  dup : bool;
  drop : bool;
  stall : bool;
  retry : bool;
}

let spec ?(kernels = 3) ?(vpes = 6) ?(ops = 40) ?(delay = true) ?(dup = true) ?(drop = true)
    ?(stall = true) ?(retry = true) () =
  { kernels; vpes; ops; delay; dup; drop; stall; retry }

let default_spec = spec ()

type outcome = {
  workload_seed : int;
  fault_seed : int;
  syscalls : int;
  replies : int;
  ok_replies : int;
  err_replies : int;
  migrations : int;
  injected_delays : int;
  injected_dups : int;
  injected_drops : int;
  injected_stalls : int;
  retries : int;
  dup_ikc : int;
  caps_leaked : int;
  failures : string list;
  metrics_json : string;
  trace_tail : string list;
}

let profile s fault_seed =
  {
    Fault.seed = Int64.of_int fault_seed;
    delay_prob = (if s.delay then 0.25 else 0.0);
    max_delay = 1_500;
    dup_prob = (if s.dup then 0.08 else 0.0);
    max_dup_delay = 900;
    drop_prob = (if s.drop then 0.04 else 0.0);
    max_drops_per_pair = 2;
    max_drops_total = 24;
    stall_prob = (if s.stall then 0.02 else 0.0);
    max_stall = 4_000;
  }

let run_one ?(spec = default_spec) ~workload_seed ~fault_seed () =
  let s = spec in
  let rng = Rng.create (Int64.of_int workload_seed) in
  let pes = max 2 ((s.vpes + s.kernels - 1) / s.kernels) in
  let sys =
    System.create
      (System.config ~kernels:s.kernels ~user_pes_per_kernel:pes ~fault:(profile s fault_seed)
         ~retry:s.retry ())
  in
  let vpes = Array.init s.vpes (fun i -> System.spawn_vpe sys ~kernel:(i mod s.kernels)) in
  let issued = ref 0 and replied = ref 0 and ok = ref 0 and errs = ref 0 in
  let migrations = ref 0 in
  let failures = ref [] in
  (* Pool of (vpe index, selector) pairs known to have been granted;
     entries go stale after revokes and exits — the resulting errors are
     themselves part of the workload. *)
  let pool = ref [] in
  let pool_pick () =
    match !pool with
    | [] -> None
    | entries -> Some (List.nth entries (Rng.int rng (List.length entries)))
  in
  let issue v call =
    incr issued;
    System.syscall sys vpes.(v) call (fun r ->
        incr replied;
        match r with
        | P.R_sel sel ->
          incr ok;
          pool := (v, sel) :: !pool
        | P.R_ok | P.R_vpe _ | P.R_sess _ -> incr ok
        | P.R_err _ -> incr errs)
  in
  let alloc v = issue v (P.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
  (try
     (* Every VPE starts with one root allocation so exchanges have
        material to work with. *)
     Array.iteri (fun i _ -> alloc i) vpes;
     ignore (System.run sys);
     for _ = 1 to s.ops do
       (match Rng.int rng 100 with
       | n when n < 10 -> alloc (Rng.int rng s.vpes)
       | n when n < 40 -> (
         match pool_pick () with
         | None -> alloc (Rng.int rng s.vpes)
         | Some (dv, dsel) ->
           issue (Rng.int rng s.vpes)
             (P.Sys_obtain_from { donor_vpe = vpes.(dv).Vpe.id; donor_sel = dsel }))
       | n when n < 60 -> (
         match pool_pick () with
         | None -> alloc (Rng.int rng s.vpes)
         | Some (hv, hsel) ->
           let recv = Rng.int rng s.vpes in
           issue hv (P.Sys_delegate_to { recv_vpe = vpes.(recv).Vpe.id; sel = hsel }))
       | n when n < 75 -> (
         match pool_pick () with
         | None -> alloc (Rng.int rng s.vpes)
         | Some (hv, hsel) -> issue hv (P.Sys_revoke { sel = hsel; own = Rng.bool rng }))
       | n when n < 85 -> (
         match pool_pick () with
         | None -> alloc (Rng.int rng s.vpes)
         | Some (hv, hsel) ->
           issue hv
             (P.Sys_derive_mem { sel = hsel; offset = 0L; size = 1024L; perms = Perms.r }))
       | n when n < 93 ->
         (* Bounded partial run: lets the next syscalls overlap whatever
            is still in flight, exercising interleavings. *)
         ignore
           (System.run ~until:(Int64.add (System.now sys) (Int64.of_int (500 + Rng.int rng 4_000))) sys)
       | n when n < 98 ->
         (* Migration needs quiescence; skip when the candidate cannot
            legally move right now. *)
         ignore (System.run sys);
         let v = vpes.(Rng.int rng s.vpes) in
         let dst = Rng.int rng s.kernels in
         if
           Vpe.is_alive v && (not v.Vpe.syscall_pending) && (not v.Vpe.frozen)
           && dst <> v.Vpe.kernel
         then begin
           System.migrate_vpe sys v ~to_kernel:dst;
           incr migrations;
           (* Relocation oracle: with the engine drained, every record in
              the migrated VPE's partition must live at the destination
              and none at the source — a lost or misapplied
              migrate_update/migrate_caps leaves records behind or
              routes lookups to a kernel that no longer has them. *)
           let key_pe = Semper_ddl.Key.pe in
           List.iter
             (fun k ->
               let here = ref 0 in
               Semper_caps.Mapdb.iter
                 (fun cap ->
                   if key_pe cap.Semper_caps.Cap.key = v.Vpe.pe then incr here)
                 (Kernel.mapdb k);
               if Kernel.id k <> dst && !here > 0 then
                 failures :=
                   Printf.sprintf
                     "relocation: %d records of migrated VPE %d stranded at kernel %d" !here
                     v.Vpe.id (Kernel.id k)
                   :: !failures)
             (System.kernels sys);
           (* Every membership replica must agree on the new owner, with
              no handoff mark left behind. *)
           List.iter
             (fun k ->
               match Semper_ddl.Membership.kernel_of_pe (Kernel.membership k) v.Vpe.pe with
               | owner ->
                 if owner <> dst then
                   failures :=
                     Printf.sprintf
                       "relocation: kernel %d routes PE %d to kernel %d, expected %d"
                       (Kernel.id k) v.Vpe.pe owner dst
                     :: !failures
               | exception Semper_ddl.Membership.Mid_handoff _ ->
                 failures :=
                   Printf.sprintf
                     "relocation: kernel %d still marks PE %d mid-handoff after drain"
                     (Kernel.id k) v.Vpe.pe
                   :: !failures)
             (System.kernels sys);
           if v.Vpe.frozen then
             failures :=
               Printf.sprintf "relocation: VPE %d still frozen after migration drained" v.Vpe.id
               :: !failures
         end
       | _ ->
         let v = Rng.int rng s.vpes in
         if Vpe.is_alive vpes.(v) then issue v P.Sys_exit);
       (* Small chance the next message batch starts later. *)
       if Rng.int rng 4 = 0 then
         ignore (System.run ~until:(Int64.add (System.now sys) 1_000L) sys)
     done;
     ignore (System.run sys);
     (* Liveness oracle: a drained engine with unanswered syscalls means
        a protocol lost a message for good. *)
     if !replied <> !issued then
       failures :=
         Printf.sprintf "liveness: %d of %d syscalls never got a reply" (!issued - !replied)
           !issued
         :: !failures;
     (* Safety oracle: the global capability forest must be consistent. *)
     let report = Audit.run sys in
     List.iter (fun e -> failures := ("audit: " ^ e) :: !failures) report.Audit.errors
   with exn -> failures := ("exception: " ^ Printexc.to_string exn) :: !failures);
  let leaked = try System.shutdown sys with _ -> -1 in
  if leaked <> 0 then
    failures := Printf.sprintf "teardown: %d capabilities survived shutdown" leaked :: !failures;
  let kstat f = List.fold_left (fun acc k -> acc + f (Kernel.stats k)) 0 (System.kernels sys) in
  let inj =
    match System.fault_plan sys with
    | Some plan -> Fault.stats plan
    | None -> { Fault.delays = 0; dups = 0; drops = 0; stalls = 0 }
  in
  let failed = !failures <> [] in
  (* Attach diagnostics only to failures: a metrics snapshot plus the
     tail of the protocol trace ring, both deterministic for the seed
     pair. *)
  let metrics_json =
    if failed then Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys)) else ""
  in
  let trace_tail =
    if failed then
      List.map
        (fun e -> Obs.Json.to_string (Obs.Trace.event_json e))
        (Obs.Trace.tail (System.trace_buffer sys) ~n:40)
    else []
  in
  {
    workload_seed;
    fault_seed;
    syscalls = !issued;
    replies = !replied;
    ok_replies = !ok;
    err_replies = !errs;
    migrations = !migrations;
    injected_delays = inj.Fault.delays;
    injected_dups = inj.Fault.dups;
    injected_drops = inj.Fault.drops;
    injected_stalls = inj.Fault.stalls;
    retries = kstat (fun st -> st.Kernel.retries);
    dup_ikc = kstat (fun st -> st.Kernel.dup_ikc);
    caps_leaked = leaked;
    failures = List.rev !failures;
    metrics_json;
    trace_tail;
  }

let outcome_line o =
  Printf.sprintf
    "w=%d f=%d calls=%d replies=%d ok=%d err=%d migr=%d inj[delay=%d dup=%d drop=%d stall=%d] \
     retries=%d dups_seen=%d leaked=%d %s"
    o.workload_seed o.fault_seed o.syscalls o.replies o.ok_replies o.err_replies o.migrations
    o.injected_delays o.injected_dups o.injected_drops o.injected_stalls o.retries o.dup_ikc
    o.caps_leaked
    (match o.failures with
    | [] -> "PASS"
    | fs -> Printf.sprintf "FAIL(%d)" (List.length fs))

let pp_outcome ppf o =
  Format.fprintf ppf "%s" (outcome_line o);
  List.iter (fun f -> Format.fprintf ppf "@.  %s" f) o.failures;
  if o.trace_tail <> [] then begin
    Format.fprintf ppf "@.  trace tail (%d events):" (List.length o.trace_tail);
    List.iter (fun line -> Format.fprintf ppf "@.    %s" line) o.trace_tail
  end;
  if o.metrics_json <> "" then Format.fprintf ppf "@.  metrics: %s" o.metrics_json

(* Each seed pair builds a private system, so the sweep fans out over
   domains; outcomes come back in seed order regardless of [jobs]. *)
let run_many ?jobs ?(spec = default_spec) ~workload_seed ~fault_seed ~runs () =
  Semper_util.Domain_pool.map ?jobs
    (fun i -> run_one ~spec ~workload_seed:(workload_seed + i) ~fault_seed:(fault_seed + i) ())
    (List.init runs Fun.id)
