(** Parallel experiment runner.

    Every experiment point in the evaluation (workload x kernel-count x
    instance-count) is an independent, self-contained simulation — its
    own {!Semper_sim.Engine}, fabric, and {!Semper_obs.Obs.Registry} —
    so a sweep is embarrassingly parallel. This layer expresses a sweep
    as a list of run thunks, fans them out over OCaml domains with
    {!Semper_util.Domain_pool}, and collects results in submission
    order, so tables, figures, and BENCH_*.json are byte-identical
    regardless of the job count.

    The job count comes from the [--jobs] flag of [bench/main.exe] and
    [semperos_cli] via {!set_jobs}; [--jobs 1] is exactly the serial
    path. Run thunks must be domain-confined: they may not touch
    mutable state shared with another run (see DESIGN.md, "Parallelism
    and domain confinement"). *)

(** Set the default job count ([--jobs]). Raises [Invalid_argument] if
    [jobs < 1]. Call at most once, from the main domain, before any
    runs. *)
val set_jobs : int -> unit

(** The default job count: the value given to {!set_jobs}, or the
    machine's available cores. *)
val jobs : unit -> int

(** [run_list ?jobs thunks] executes independent run thunks across
    domains; results in submission order. [jobs] defaults to
    {!jobs} [()]. *)
val run_list : ?jobs:int -> (unit -> 'a) list -> 'a list

(** [map ?jobs f xs] — like {!run_list} with one thunk per element. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Run a list of experiment configurations across domains; outcomes in
    submission order. *)
val experiments : ?jobs:int -> Experiment.config list -> Experiment.outcome list

(** [merge_snapshots labeled] combines per-run registry snapshots (for
    example {!Experiment.outcome.snapshot}) into one JSON object whose
    keys appear in submission order — the deterministic merged view of
    a parallel sweep. Raises [Invalid_argument] on duplicate labels. *)
val merge_snapshots : (string * Semper_obs.Obs.Json.t) list -> Semper_obs.Obs.Json.t
