(** Cycle-cost model of kernel operations.

    The paper evaluates on gem5 with 2 GHz out-of-order x86 cores; we
    replace micro-architectural simulation with per-operation cycle
    charges. The constants below are calibrated so the group-local
    numbers land near Table 3; all other results are *derived* from
    them plus protocol structure (message counts and NoC latencies),
    which is exactly what the paper's scalability claims rest on. *)

(** [M3] is the single-kernel baseline: capability links are plain
    pointers, so the per-link DDL decode charge is dropped (Table 3
    quantifies exactly this difference). *)
type mode = Semperos | M3

type t = {
  mode : mode;
  batch_revokes : bool;  (** see {!with_batching} *)
  broadcast_revokes : bool;  (** see {!with_broadcast} *)
  (* message sizes on the wire *)
  syscall_bytes : int;
  reply_bytes : int;
  ikc_bytes : int;
  credit_bytes : int;
  batch_header_bytes : int;
      (** frame header prepended to an [Ik_batch] multi-message *)
  batch_window : int64;
      (** DTU slot window, cycles: messages to the same peer kernel
          issued within this window of a leader ride one framed
          [Ik_batch] (batching mode only) *)
  (* kernel PE processing charges, cycles *)
  syscall_dispatch : int64;  (** receive, decode, resolve selector *)
  exchange_create : int64;   (** create the child capability and link it *)
  exchange_forward : int64;  (** source-kernel side of a spanning exchange *)
  exchange_remote : int64;   (** destination-kernel side of a spanning exchange *)
  revoke_start : int64;      (** revoke syscall setup *)
  revoke_per_cap : int64;    (** mark + unlink + delete, per capability *)
  revoke_request : int64;    (** processing one incoming revoke request *)
  revoke_reply : int64;      (** processing one revoke reply *)
  revoke_send : int64;       (** sender-side occupancy per outgoing revoke request *)
  revoke_scan_per_cap : int64;
      (** broadcast mode: per-capability scan cost at each kernel *)
  ddl_decode : int64;        (** analysing one DDL key (Semperos only, §5.2) *)
  vpe_accept : int64;        (** app-side processing of an exchange offer *)
  activate : int64;          (** endpoint configuration *)
  create_obj : int64;        (** creating a VPE / service / gate object *)
  session_open : int64;      (** session bookkeeping at each kernel *)
  retry_timeout : int64;
      (** cycles before an unanswered op-tagged inter-kernel request is
          retransmitted (generously above any fault-plan delay so
          retries only fire on real losses) *)
  retry_max : int;           (** retransmission attempts; 0 disables retry *)
}

(** Calibrated defaults for the given mode. *)
val default : mode -> t

(** [with_batching t] enables revoke-message batching: one inter-kernel
    revoke request per destination kernel instead of one per child
    capability — the improvement the paper proposes in §5.2. *)
val with_batching : t -> t

val batching : t -> bool

(** [with_broadcast t] switches revocation to a Barrelfish-style
    broadcast scheme (paper §6): because cross-kernel capability
    relations are not stored explicitly there, every revoke must
    broadcast to *all* kernels, and each kernel scans its whole mapping
    database ([revoke_scan_per_cap] cycles per entry) to find
    descendants. Used as a comparison baseline in the ablation bench. *)
val with_broadcast : t -> t

val broadcast : t -> bool

(** [without_retries t] disables the timeout/retransmit machinery
    ([retry_max = 0]); under a fault plan that drops messages the
    protocols then lose requests — used to prove the fuzz oracle has
    teeth. *)
val without_retries : t -> t

(** DDL decode charge for [n] key decodes — zero in [M3] mode. *)
val ddl : t -> int -> int64

(** In-flight message limit between two kernels (paper §5.1: four). *)
val max_inflight : int

(** Maximum kernels supported (paper §5.1: 64). *)
val max_kernels : int

(** Maximum PEs one kernel can handle (paper §5.1: 192). *)
val max_pes_per_kernel : int
