(** Wire-level protocol types: system calls, replies, and inter-kernel
    calls (IKCs).

    IKCs fall into the paper's three functional groups (§4.1):
    startup/shutdown, cross-group service connections, and cross-group
    capability exchange/revocation. *)

module Key = Semper_ddl.Key

type error =
  | E_no_such_service
  | E_no_such_cap
  | E_no_such_vpe
  | E_no_such_session
  | E_denied            (** the other party rejected the exchange *)
  | E_in_revocation     (** capability is marked; exchange would be pointless *)
  | E_vpe_dead
  | E_busy              (** VPE already has a syscall in flight *)
  | E_invalid           (** malformed arguments *)
  | E_no_pe             (** no free PE for a new VPE *)
  | E_timeout           (** inter-kernel retries exhausted; remote presumed unreachable *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** Selector in the calling VPE's capability space. *)
type selector = Semper_caps.Capspace.selector

(** System calls (sent as messages to the group's kernel PE). *)
type syscall =
  | Sys_create_vpe of { on_pe : int option }
      (** spawn a VPE; its control capability is delegated to the caller *)
  | Sys_create_srv of { name : string }
      (** register the calling VPE as a service *)
  | Sys_create_rgate of { ep : int; slots : int }
      (** create a receive-gate capability for an owned endpoint *)
  | Sys_create_sgate of { rgate : selector; label : int }
      (** derive a send-gate capability from an owned receive gate *)
  | Sys_alloc_mem of { size : int64; perms : Semper_caps.Perms.t }
      (** allocate a memory capability (backing store on the group's
          memory tile) *)
  | Sys_derive_mem of { sel : selector; offset : int64; size : int64; perms : Semper_caps.Perms.t }
      (** create a narrowed child of an owned memory capability *)
  | Sys_open_session of { service : string }
      (** connect to a named service, possibly in another group *)
  | Sys_obtain of { sess : selector; args : int list }
      (** obtain a capability from the service behind [sess] *)
  | Sys_delegate of { sess : selector; sel : selector; args : int list }
      (** delegate [sel] to the service behind [sess] *)
  | Sys_obtain_from of { donor_vpe : int; donor_sel : selector }
      (** direct VPE-to-VPE obtain (microbenchmark path) *)
  | Sys_delegate_to of { recv_vpe : int; sel : selector }
      (** direct VPE-to-VPE delegate (microbenchmark path) *)
  | Sys_revoke of { sel : selector; own : bool }
      (** recursively revoke; [own = false] revokes only the children *)
  | Sys_activate of { sel : selector; ep : int }
      (** configure a DTU endpoint for a gate or memory capability *)
  | Sys_exit
      (** terminate the calling VPE; all its capabilities are revoked *)

val syscall_name : syscall -> string

type reply =
  | R_ok
  | R_sel of selector           (** a new capability selector *)
  | R_vpe of { vpe : int; sel : selector }  (** new VPE id + control cap *)
  | R_sess of { sel : selector; ident : int }  (** new session cap + ident *)
  | R_err of error

val pp_reply : Format.formatter -> reply -> unit

(** How an obtain names its donor on the destination kernel. *)
type donor =
  | Via_session of { srv_key : Key.t; ident : int; args : int list }
  | Direct of { donor_vpe : int; donor_sel : selector }

(** How a delegate names its receiver on the destination kernel. *)
type recv_ref =
  | Recv_vpe of int
  | Recv_service of { srv_key : Key.t; ident : int; args : int list }

(** A capability record in flight during PE migration. *)
type migrated_cap = {
  m_key : Key.t;
  m_kind : Semper_caps.Cap.kind;
  m_owner : int;
  m_parent : Key.t option;
  m_children : Key.t list;
}

(** Inter-kernel calls. [op] identifies the originating operation at the
    source kernel; replies echo it. *)
type ikc =
  | Ik_obtain_req of {
      op : int;
      src_kernel : int;
      obj_reserved : int;  (** object id reserved at the source for the child key *)
      client_pe : int;
      client_vpe : int;
      donor : donor;
    }
  | Ik_obtain_reply of {
      op : int;
      result : (Key.t * Semper_caps.Cap.kind * Key.t, error) result;
          (** child key, child kind, parent key *)
    }
  | Ik_delegate_req of {
      op : int;
      src_kernel : int;
      parent_key : Key.t;
      kind : Semper_caps.Cap.kind;
      recv : recv_ref;
    }
  | Ik_delegate_reply of { op : int; result : (Key.t, error) result }  (** child key *)
  | Ik_delegate_ack of { op : int; child_key : Key.t; commit : bool }
  | Ik_open_sess_req of {
      op : int;
      src_kernel : int;
      srv_key : Key.t;
      sess_key : Key.t;
      client_vpe : int;
    }
  | Ik_open_sess_reply of { op : int; result : (int, error) result }  (** session ident *)
  | Ik_revoke_req of { op : int; src_kernel : int; keys : Key.t list }
  | Ik_revoke_reply of { op : int; keys : Key.t list; cont : Key.t list }
      (** [cont]: marked-subtree roots the responder discovered on the
          requester's side; the requester folds them into its own
          revoke wave instead of receiving a separate {!Ik_revoke_req}
          per child (batching mode; empty otherwise) *)
  | Ik_remove_child of { op : int; parent_key : Key.t; child_key : Key.t }
      (** unlink notification: orphan cleanup or root-revoke unlink;
          op-tagged and retried until the receiver's delivery ack
          (piggybacked on the credit return) arrives *)
  | Ik_migrate_update of { op : int; src_kernel : int; pe : int; new_kernel : int }
      (** membership-table update broadcast for a migrating PE *)
  | Ik_migrate_ack of { op : int }
      (** acknowledges both {!Ik_migrate_update} (per peer) and
          {!Ik_migrate_caps} (from the destination, once installed) *)
  | Ik_migrate_caps of {
      op : int;
      src_kernel : int;
      vpe : int;
      records : migrated_cap list;
    }
      (** capability-record transfer to the new owning kernel;
          op-tagged so it is retransmitted on loss and deduplicated on
          redelivery like every other request/reply pair *)
  | Ik_srv_announce of { op : int; name : string; srv_key : Key.t; kernel : int }
      (** directory replication; op-tagged per peer and retried until
          acked — the receive is an idempotent directory write *)
  | Ik_fleet_state of {
      op : int;
      src_kernel : int;
      kernel : int;
      state : Semper_ddl.Membership.kernel_state;
    }
      (** kernel lifecycle transition (join/drain/retire) broadcast to
          every peer; acked with {!Ik_migrate_ack} per peer *)
  | Ik_part_update of { op : int; src_kernel : int; pes : int list; new_kernel : int }
      (** bulk membership flip for a whole partition set: the new owner
          marks every PE mid-handoff, other replicas
          [reassign_partition] the set atomically; acked with
          {!Ik_migrate_ack} per peer *)
  | Ik_part_records of {
      op : int;
      src_kernel : int;
      pes : int list;
      vpes : int list;
      records : migrated_cap list;
    }
      (** framed record wave carrying every capability record of the
          partitions in [pes] plus the VPEs living there; sized like an
          {!Ik_batch} frame and acked by the destination once
          installed *)
  | Ik_shutdown of { src_kernel : int }
  | Ik_batch of { src_kernel : int; msgs : ikc list }
      (** framed multi-message: every [Ik_*] queued for the same peer
          within one DTU slot window travels as one fabric transfer
          consuming one credit (batching mode only) *)

val ikc_name : ikc -> string

(** Requests a kernel makes to a service VPE (delivered through the
    service's own processing queue, so service contention is felt). *)
type service_request =
  | Srq_open_session of { client_vpe : int }
  | Srq_obtain of { ident : int; args : int list }
  | Srq_delegate of { ident : int; args : int list; kind : Semper_caps.Cap.kind }

type service_response =
  | Srs_session of { ident : int }
  | Srs_grant of { parent : Key.t; kind : Semper_caps.Cap.kind }
      (** grant a child of [parent] (a capability owned by the service) *)
  | Srs_accept
  | Srs_reject of error
