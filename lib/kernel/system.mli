(** System assembly: topology, DTUs, membership, and the kernels.

    Lays out [kernels] PE groups on a square mesh. Each group is a
    contiguous block of PEs — one kernel PE followed by the group's user
    PEs — so intra-group messages travel few hops and group-spanning
    messages travel more, as in a real rack-scale NoC. *)

type config = {
  kernels : int;
  spare_kernels : int;
      (** kernels booted but held out of service ([Spare] lifecycle
          state) until a [Fleet.join] activates them; 0 reproduces the
          fixed boot-time fleet byte-for-byte *)
  user_pes_per_kernel : int;
  mode : Cost.mode;
  noc : Semper_noc.Fabric.config;
  batching : bool;  (** enable revoke-message batching (Cost.with_batching) *)
  broadcast : bool;  (** Barrelfish-style broadcast revocation (Cost.with_broadcast) *)
  fault : Semper_fault.Fault.profile option;
      (** install a seeded fault plan on the fabric (None = perfect delivery) *)
  retry : bool;
      (** timeout/retransmit for op-tagged inter-kernel requests; turn
          off only to demonstrate the fuzz oracle catching lost messages *)
  trace_capacity : int;
      (** size of the shared protocol trace ring (events kept) *)
  engine_queue : Semper_sim.Engine.queue_kind;
      (** event-queue backend: [Timer_wheel] (default) or the
          [Binary_heap] differential-testing oracle *)
}

val default_config : config

(** 640 PEs as in the paper's testbed (§5.1): adjust per experiment. *)
val config :
  ?kernels:int ->
  ?spare_kernels:int ->
  ?user_pes_per_kernel:int ->
  ?mode:Cost.mode ->
  ?noc:Semper_noc.Fabric.config ->
  ?batching:bool ->
  ?broadcast:bool ->
  ?fault:Semper_fault.Fault.profile ->
  ?retry:bool ->
  ?trace_capacity:int ->
  ?engine_queue:Semper_sim.Engine.queue_kind ->
  unit ->
  config

type t

(** Build and boot the system: topology, fabric, DTUs (user DTUs
    deprivileged), membership table (sealed), kernels. Raises
    [Invalid_argument] for configurations beyond the paper's hardware
    limits (more than 64 kernels or 192 PEs per group). *)
val create : config -> t

val engine : t -> Semper_sim.Engine.t
val fabric : t -> Semper_noc.Fabric.t

(** The installed fault plan, if any (for injection statistics). *)
val fault_plan : t -> Semper_fault.Fault.t option
val grid : t -> Semper_dtu.Dtu.grid
val membership : t -> Semper_ddl.Membership.t

(** The system-wide metrics registry: fabric, DTU, and per-kernel
    instruments all report here. Snapshot with
    [Semper_obs.Obs.Registry.snapshot]. *)
val obs : t -> Semper_obs.Obs.Registry.t

(** The shared protocol trace ring (sim-clock timestamps, so identical
    seeds give byte-identical traces). *)
val trace_buffer : t -> Semper_obs.Obs.Trace.t
val kernel : t -> int -> Kernel.t

(** Every booted kernel, spares included. *)
val kernels : t -> Kernel.t list

(** Kernels booted in total, spares included. *)
val kernel_count : t -> int

(** Kernels that boot [Active] (the [config.kernels] field); ids
    [boot_kernels t .. kernel_count t - 1] are the spares. *)
val boot_kernels : t -> int

val pe_count : t -> int

(** Boot-time VPE spawn: allocates a free user PE in the kernel's group
    (or uses [pe]). Raises [Invalid_argument] when the group is full or
    the kernel is not in the [Active] lifecycle state. *)
val spawn_vpe : ?pe:int -> t -> kernel:int -> Vpe.t

val find_vpe : t -> int -> Vpe.t option

(** Free user PEs remaining in a group. *)
val free_pes : t -> kernel:int -> int

(** The PE range a kernel's group was built with at boot (kernel PE
    first). Partition ownership may drift through fleet handoffs;
    [Fleet.join] reclaims this range so group-local PE allocation and
    the membership replicas agree again. *)
val home_pes : t -> kernel:int -> int list

(** Shorthand for [Kernel.syscall] on the VPE's managing kernel. *)
val syscall : t -> Vpe.t -> Protocol.syscall -> (Protocol.reply -> unit) -> unit

(** Synchronous convenience for tests and examples: runs the engine
    until the reply arrives and returns it. The engine must be
    otherwise idle enough for the syscall to complete. *)
val syscall_sync : t -> Vpe.t -> Protocol.syscall -> Protocol.reply

(** Drive the simulation. Returns events processed. *)
val run : ?until:int64 -> t -> int

val now : t -> int64

(** Aggregate capability operations handled by all kernels. *)
val total_cap_ops : t -> int

(** Union of all kernels' invariant violations. *)
val check_invariants : t -> string list

(** Migrate a VPE's PE to another kernel's group (the paper's named
    future work, §3.2): quiesces the engine, freezes the VPE,
    broadcasts the membership update to every kernel replica, and
    transfers the capability records to the new owning kernel. After
    return the VPE is managed by [to_kernel] and all DDL routing for
    its keys lands there. *)
val migrate_vpe : t -> Vpe.t -> to_kernel:int -> unit

(** Closure-free image of the whole simulation, composed from every
    layer's snapshot: engine scalars, fabric FIFO clamps, DTU credit
    windows, membership replicas (system-level and per-kernel,
    including mid-handoff marks), the fault plan's RNG cursor and
    budgets, the metrics registry, the trace ring, per-kernel data
    planes, and per-VPE state. Everything that carries closures (the
    event queue, pending protocol operations, reply continuations)
    travels only inside whole-image checkpoints ({!Semper_sim.Checkpoint});
    the snapshot summarises it so {!fingerprint} still distinguishes
    states. *)
type snapshot

val snapshot : t -> snapshot

(** In-place restore of every layer's snapshot onto a system of the
    same shape. Raises [Invalid_argument] when shapes or the
    closure-bearing control planes do not match (see
    {!Kernel.restore}). *)
val restore : t -> snapshot -> unit

(** Hex digest of {!snapshot} — the integrity fingerprint stored in
    checkpoint images and re-verified after restore. Deterministic:
    equal states yield equal fingerprints. *)
val fingerprint : t -> string

(** Re-stamp the engine and its pending handles after this system was
    materialised from a checkpoint image ({!Semper_sim.Engine.rebind}).
    Must be called before driving the restored system. *)
val rebind : t -> unit

(** Graceful shutdown (IKC group 1 of the paper, §4.1): every live VPE
    — applications and services alike — exits, which recursively
    revokes every capability in the system; kernels then exchange
    shutdown notices. Runs the engine to completion and returns the
    number of capabilities that survived (0 for a healthy system). *)
val shutdown : t -> int
