module Key = Semper_ddl.Key
module Membership = Semper_ddl.Membership
module Cap = Semper_caps.Cap
module Capspace = Semper_caps.Capspace
module Mapdb = Semper_caps.Mapdb
module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Fabric = Semper_noc.Fabric
module Obs = Semper_obs.Obs
module P = Protocol

let src = Logs.Src.create "semper.kernel" ~doc:"SemperOS kernel"

module Log = (val Logs.src_log src : Logs.LOG)

type env = {
  locate_vpe : int -> Vpe.t option;
  alloc_pe : kernel:int -> int option;
  make_vpe : pe:int -> kernel:int -> Vpe.t;
  on_vpe_exit : Vpe.t -> unit;
}

type service_handler = P.service_request -> (P.service_response -> unit) -> unit

type service = { srv_key : Key.t; srv_vpe : int; srv_handler : service_handler }

(* Point-in-time snapshot of the kernel's metrics, kept as a plain
   record so readers need no registry access. The live counters behind
   it are registered instruments ([counters] below). *)
type stats = {
  syscalls : int;
  cap_ops : int;
  exchanges_local : int;
  exchanges_spanning : int;
  revokes_local : int;
  revokes_spanning : int;
  caps_created : int;
  caps_deleted : int;
  ikc_sent : int;
  ikc_received : int;
  credit_stalls : int;
  credit_overrefund : int;
  retries : int;
  retry_exhausted : int;
  dup_ikc : int;
  batches_sent : int;
  batched_msgs : int;
  latencies : (string, Semper_util.Stats.Acc.t) Hashtbl.t;
}

(* Live instruments, registered under [kernel<id>.*]. *)
type counters = {
  syscalls : Obs.Registry.counter;
  cap_ops : Obs.Registry.counter;
  exchanges_local : Obs.Registry.counter;
  exchanges_spanning : Obs.Registry.counter;
  revokes_local : Obs.Registry.counter;
  revokes_spanning : Obs.Registry.counter;
  caps_created : Obs.Registry.counter;
  caps_deleted : Obs.Registry.counter;
  ikc_sent : Obs.Registry.counter;
  ikc_received : Obs.Registry.counter;
  credit_stalls : Obs.Registry.counter;
  (* Credit refunds discarded at the §5.1 [max_inflight] cap — a
     retransmission refund racing the original message's credit return,
     or a fault-injected duplicate returning credit twice. Without the
     cap these permanently inflated the window past the paper's bound. *)
  credit_overrefund : Obs.Registry.counter;
  retries : Obs.Registry.counter;
  retry_exhausted : Obs.Registry.counter;
  dup_ikc : Obs.Registry.counter;
  (* [Ik_batch] frames shipped / inner messages they carried (batching
     mode only); [batch_occupancy] histograms messages per frame. *)
  batches_sent : Obs.Registry.counter;
  batched_msgs : Obs.Registry.counter;
  batch_occupancy : Obs.Registry.histogram;
  (* Membership probes performed by revocation sweeps — one per
     marked-set lookup, so its value is linear in the number of deleted
     capabilities. Regression-tested: a wide tree must not make the
     sweep quadratic again. *)
  revoke_sweep_probes : Obs.Registry.counter;
  (* Syscall-queue depth at the kernel PE, observed on syscall entry
     and IKC delivery — the balancer's second load sensor besides
     busy cycles. Piggybacks on existing activity points (like the
     idempotency-cache eviction) so it adds no engine events. *)
  queue_depth : Obs.Registry.histogram;
  latencies : (string, Semper_util.Stats.Acc.t) Hashtbl.t;
}

(* Revocation operation state (Algorithm 1). One [revoke_op] exists per
   kernel participating in a revoke; [outstanding] counts remote revoke
   requests (and overlapping local operations) this kernel still waits
   for before it may delete its marked region and acknowledge. *)
type revoke_op = {
  rop_id : int;
  roots : Key.t list;
  own : bool;
  origin : revoke_origin;
  mutable outstanding : int;
  mutable marked : Key.t list;  (* reverse order of marking *)
  (* Same members as [marked]: O(1) membership for the deletion sweep
     (the ordered list alone made the sweep O(n²) in region size). *)
  marked_set : unit Key.Table.t;
  mutable links_seen : int;     (* child links examined, for DDL cost *)
  (* Children-only revokes: remote children to unlink from their
     surviving (local) roots once their revocation is acknowledged. *)
  mutable root_unlinks : (Key.t * Key.t) list;
  (* Requester-handoff (batching mode): marked-subtree roots discovered
     on the kernel that requested this revoke. They ride the reply's
     [cont] field instead of a revoke request of their own. *)
  mutable cont_out : Key.t list;
  (* Subtree roots this operation absorbed from a responder's reply.
     Their remote parents were swept by that responder before it
     replied, so the deletion sweep must not send them an unlink. *)
  cont_roots : unit Key.Table.t;
  mutable on_complete : (unit -> unit) list;
}

and revoke_origin = Ro_syscall of Vpe.t | Ro_exit of Vpe.t | Ro_remote of int * int

type pending =
  | P_obtain of { client : Vpe.t }
  | P_delegate_src of { client : Vpe.t; src_key : Key.t; dst_kernel : int }
  | P_delegate_dst of { child_key : Key.t; recv_vpe : int; src_kernel : int }
  | P_open_sess of { client : Vpe.t; sess_key : Key.t; srv_key : Key.t; srv_kernel : int }
  | P_revoke of revoke_op
  (* One outstanding [Ik_revoke_req]: every revoke message carries its
     own op id so the responder can deduplicate redeliveries and a
     duplicated reply cannot double-decrement [outstanding]. *)
  | P_revoke_msg of { rop : revoke_op }
  | P_migrate of migrate_op
  (* Phase 2 of a migration: the capability-record transfer awaiting
     the destination's install acknowledgement (retransmitted through
     the regular [register_retry] path). *)
  | P_migrate_caps of { mc_vpe : Vpe.t; mc_done : unit -> unit }
  (* Fleet lifecycle broadcast ([Ik_fleet_state]) awaiting every peer's
     ack; same shape as a migrate-update broadcast. *)
  | P_fleet of fleet_op
  (* Phase 1 of a bulk partition handoff: the [Ik_part_update]
     broadcast awaiting every peer's ack before the records move. *)
  | P_part of part_op
  (* Phase 2 of a bulk partition handoff: the framed record wave
     awaiting the destination's install acknowledgement. *)
  | P_part_caps of { pc_vpes : Vpe.t list; pc_done : unit -> unit }

and fleet_op = {
  f_peers : (int, unit) Hashtbl.t;
  f_done : unit -> unit;
  mutable f_timer : Engine.handle option;
}

and part_op = {
  p_pes : int list;
  p_vpes : Vpe.t list;
  p_dst : int;
  p_peers : (int, unit) Hashtbl.t;
  p_done : unit -> unit;
  mutable p_timer : Engine.handle option;
}

and migrate_op = {
  m_vpe : Vpe.t;
  m_dst : int;
  (* Peers whose [Ik_migrate_ack] is still missing, keyed by kernel
     id: acks arrive in arbitrary order and each must be matched
     (and deduplicated) in O(1), not by scanning a list. *)
  pending_peers : (int, unit) Hashtbl.t;
  done_k : unit -> unit;
  (* Pending broadcast-retransmission tick, cancelled once the last
     ack is in. *)
  mutable mtimer : Engine.handle option;
}

(* Responder-side record of an op-tagged request: op ids are globally
   unique (minted by the requester), so a redelivered request —
   retransmission or fault-injected duplicate — is recognised and, once
   finished, answered from the cached reply instead of re-executed. *)
type remote_state = R_in_progress | R_done of { dst : int; msg : P.ikc }

(* A request awaiting a reply, retransmitted on timeout. [rstart] and
   [rattempts] feed the per-op latency and retry histograms. [rtimer]
   is the pending retransmission tick, cancelled when the reply
   arrives — otherwise every successfully-acked message would leave a
   dead event on the engine heap until its timeout expired. *)
type retry_state = {
  rdst : int;
  rmsg : P.ikc;
  rstart : int64;
  mutable rattempts : int;
  mutable rtimer : Engine.handle option;
}

(* Idempotency-cache entries scheduled for eviction once the retry
   window has safely elapsed (no retransmission of the request can
   still be in flight by then). *)
type evict_key = Ev_remote of int | Ev_ack of int

(* Outgoing coalescing state for one peer kernel (batching mode): the
   first message to a peer opens a DTU slot window ([bw_until]);
   messages issued before it closes queue in [bq] and leave as one
   framed [Ik_batch] when the window's flush tick fires. *)
type batch_state = { bq : P.ikc Queue.t; mutable bw_until : int64 }

(* Receiver-side credit bookkeeping for [Ik_batch] frames from one
   peer: a frame consumed ONE sender credit but each inner message
   returns one, so all but one return per frame is absorbed ([o_left]).
   Piggybacked acks on absorbed returns are stashed in [o_acks] and
   ride the next credit message that does go out. *)
type owed = { mutable o_left : int; mutable o_acks : int list }

type t = {
  id : int;
  pe : int;
  engine : Engine.t;
  fabric : Fabric.t;
  grid : Semper_dtu.Dtu.grid;
  membership : Membership.t;
  cost : Cost.t;
  env : env;
  registry : (int, t) Hashtbl.t;
  kernel_count : int;
  mapdb : Mapdb.t;
  server : Server.t;
  threads : Thread_pool.t;
  vpes : (int, Vpe.t) Hashtbl.t;
  directory : (string, Key.t) Hashtbl.t;  (* replicated service directory *)
  local_services : (string, service) Hashtbl.t;
  services_by_key : service Key.Table.t;
  pending_handlers : (string, service_handler) Hashtbl.t;
  pending_ops : (int, pending) Hashtbl.t;
  (* DTU endpoints configured for a capability: invalidated when the
     capability is revoked (NoC-level isolation enforcement). *)
  activations : (int * int) Key.Table.t;
  credits : (int, int ref * (P.ikc * int) Queue.t) Hashtbl.t;  (* per peer kernel *)
  batch_queues : (int, batch_state) Hashtbl.t;  (* per peer kernel *)
  batch_owed : (int, owed) Hashtbl.t;  (* per peer kernel *)
  remote_ops : (int, remote_state) Hashtbl.t;
  (* Requests awaiting a reply, retransmitted on timeout. *)
  retry_msgs : (int, retry_state) Hashtbl.t;
  (* Completed delegate handshakes: op -> (dst, ack), kept so a
     redelivered reply can trigger an ack resend if the ack was lost. *)
  completed_acks : (int, int * P.ikc) Hashtbl.t;
  (* FIFO of (expiry, entry) for the two idempotency caches above;
     expiries are monotone because entries are pushed at event time. *)
  evictions : (int64 * evict_key) Queue.t;
  obs : Obs.Registry.t;
  trace : Obs.Trace.t;
  ctr : counters;
  mutable next_op : int;
  (* Recycled per-operation scratch (host-side, never snapshotted):
     marked/cont-root sets for revoke ops and destination-grouping
     tables for message waves. [Hashtbl.reset] on release restores the
     initial bucket count, so a recycled table iterates exactly like a
     fresh one — recycling cannot perturb message order. *)
  keyset_pool : unit Key.Table.t Pool.t;
  dstmap_pool : (int, Key.t list) Hashtbl.t Pool.t;
}

(* Retransmission backoff: the wait before attempt [i] doubles up to a
   64x cap. A fixed interval turned heavy (fault-free) congestion into
   false [E_timeout]s — a reply delayed behind a long server queue was
   declared lost after retry_max * retry_timeout cycles, which large
   experiments exceed. Backoff keeps loss recovery fast (first resend
   after one timeout) while tolerating ~50x longer queueing, and stops
   retransmission storms from feeding the very congestion that delayed
   the reply. *)
let retry_interval cost i =
  let shift = if i < 6 then i else 6 in
  Int64.mul cost.Cost.retry_timeout (Int64.of_int (1 lsl shift))

(* Worst-case span of a full retry schedule: sum of all backoff
   intervals (attempts 0..retry_max), used to size the idempotency-cache
   retention window. *)
let retry_window cost =
  let rec total i acc =
    if i > cost.Cost.retry_max then acc else total (i + 1) (Int64.add acc (retry_interval cost i))
  in
  total 0 0L

(* Bucket bounds (cycles) for syscall / IKC latency histograms. *)
let latency_buckets =
  [| 1_000.; 2_500.; 5_000.; 10_000.; 25_000.; 50_000.; 100_000.; 250_000.; 500_000.; 1_000_000. |]

(* Bucket bounds for per-op retransmission counts. *)
let retry_buckets = [| 0.; 1.; 2.; 3.; 5.; 10.; 20. |]

(* Bucket bounds for the syscall-queue depth at the kernel PE. *)
let queue_depth_buckets = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

let create ?obs ?trace ~engine ~fabric ~grid ~id ~pe ~membership ~cost ~env ~registry ~kernel_count
    () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let trace = match trace with Some b -> b | None -> Obs.Trace.create ~capacity:1024 in
  let cnt name = Obs.Registry.counter obs (Printf.sprintf "kernel%d.%s" id name) in
  let ctr : counters =
    {
      syscalls = cnt "syscalls";
      cap_ops = cnt "cap_ops";
      exchanges_local = cnt "exchanges_local";
      exchanges_spanning = cnt "exchanges_spanning";
      revokes_local = cnt "revokes_local";
      revokes_spanning = cnt "revokes_spanning";
      caps_created = cnt "caps_created";
      caps_deleted = cnt "caps_deleted";
      ikc_sent = cnt "ikc_sent";
      ikc_received = cnt "ikc_received";
      credit_stalls = cnt "credit_stalls";
      credit_overrefund = cnt "credit_overrefund";
      retries = cnt "retries";
      retry_exhausted = cnt "retry_exhausted";
      dup_ikc = cnt "dup_ikc";
      batches_sent = cnt "batches_sent";
      batched_msgs = cnt "batched_msgs";
      batch_occupancy =
        Obs.Registry.histogram obs
          (Printf.sprintf "kernel%d.batch_occupancy" id)
          ~buckets:[| 2.; 4.; 8.; 16.; 32.; 64. |];
      revoke_sweep_probes = cnt "revoke_sweep_probes";
      queue_depth =
        Obs.Registry.histogram obs
          (Printf.sprintf "kernel%d.queue_depth" id)
          ~buckets:queue_depth_buckets;
      latencies = Hashtbl.create 16;
    }
  in
  let t =
    {
      id;
      pe;
      engine;
      fabric;
      grid;
      membership;
      cost;
      env;
      registry;
      kernel_count;
      mapdb = Mapdb.create ();
      server = Server.create engine ~name:(Printf.sprintf "kernel%d" id);
      threads = Thread_pool.create ~vpes:0 ~kernels:kernel_count;
      vpes = Hashtbl.create 32;
      directory = Hashtbl.create 16;
      local_services = Hashtbl.create 8;
      services_by_key = Key.Table.create 8;
      pending_handlers = Hashtbl.create 8;
      pending_ops = Hashtbl.create 32;
      activations = Key.Table.create 16;
      credits = Hashtbl.create 8;
      batch_queues = Hashtbl.create 8;
      batch_owed = Hashtbl.create 8;
      remote_ops = Hashtbl.create 32;
      retry_msgs = Hashtbl.create 16;
      completed_acks = Hashtbl.create 16;
      evictions = Queue.create ();
      obs;
      trace;
      ctr;
      next_op = 0;
      keyset_pool =
        Pool.create ~prealloc:2
          ~make:(fun () -> Key.Table.create 64)
          ~reset:Key.Table.reset ();
      dstmap_pool =
        Pool.create ~prealloc:1 ~make:(fun () -> Hashtbl.create 8) ~reset:Hashtbl.reset ();
    }
  in
  Hashtbl.add registry id t;
  (* Gauges sample live kernel state at snapshot time. *)
  let gauge name f = Obs.Registry.gauge obs (Printf.sprintf "kernel%d.%s" id name) f in
  gauge "occupancy" (fun () ->
      let now = Int64.to_float (Engine.now engine) in
      if now <= 0.0 then 0.0 else Int64.to_float (Server.busy_cycles t.server) /. now);
  gauge "busy_cycles" (fun () -> Int64.to_float (Server.busy_cycles t.server));
  gauge "threads.size" (fun () -> float_of_int (Thread_pool.size t.threads));
  gauge "threads.in_use" (fun () -> float_of_int (Thread_pool.in_use t.threads));
  gauge "threads.max_in_use" (fun () -> float_of_int (Thread_pool.max_in_use t.threads));
  gauge "threads.waiting" (fun () -> float_of_int (Thread_pool.waiting t.threads));
  t

let id t = t.id
let pe t = t.pe
let mapdb t = t.mapdb
let server t = t.server
let threads t = t.threads
let membership t = t.membership
let queue_depth t = Server.queue_length t.server

(* Sorted by VPE id so callers that pick candidates (the load
   balancer) never depend on hash-table iteration order. *)
let local_vpes t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.vpes []
  |> List.sort (fun (a : Vpe.t) (b : Vpe.t) -> Int.compare a.Vpe.id b.Vpe.id)

let stats t : stats =
  let v = Obs.Registry.value in
  {
    syscalls = v t.ctr.syscalls;
    cap_ops = v t.ctr.cap_ops;
    exchanges_local = v t.ctr.exchanges_local;
    exchanges_spanning = v t.ctr.exchanges_spanning;
    revokes_local = v t.ctr.revokes_local;
    revokes_spanning = v t.ctr.revokes_spanning;
    caps_created = v t.ctr.caps_created;
    caps_deleted = v t.ctr.caps_deleted;
    ikc_sent = v t.ctr.ikc_sent;
    ikc_received = v t.ctr.ikc_received;
    credit_stalls = v t.ctr.credit_stalls;
    credit_overrefund = v t.ctr.credit_overrefund;
    retries = v t.ctr.retries;
    retry_exhausted = v t.ctr.retry_exhausted;
    dup_ikc = v t.ctr.dup_ikc;
    batches_sent = v t.ctr.batches_sent;
    batched_msgs = v t.ctr.batched_msgs;
    latencies = t.ctr.latencies;
  }

let obs t = t.obs
let trace_buffer t = t.trace

let idempotency_cache_sizes t =
  (Hashtbl.length t.remote_ops, Hashtbl.length t.completed_acks)

(* Per-peer send-credit windows, sorted by peer id. The fuzz credit
   oracle asserts every window stays within [0, Cost.max_inflight]. *)
let credit_windows t =
  Hashtbl.fold (fun peer (credits, _) acc -> (peer, !credits) :: acc) t.credits []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let cost t = t.cost

let add_vpe t vpe =
  if Hashtbl.mem t.vpes vpe.Vpe.id then invalid_arg "Kernel.add_vpe: VPE already registered";
  Hashtbl.add t.vpes vpe.Vpe.id vpe;
  Thread_pool.add_vpe_thread t.threads

let find_vpe t vid = Hashtbl.find_opt t.vpes vid
let vpe_count t = Hashtbl.length t.vpes

let register_service_handler t ~name handler = Hashtbl.replace t.pending_handlers name handler

(* The kernel's data plane (mapping database, membership replica,
   service directory, op-id cursor) restores in place; the control
   plane (pending operations, retry timers, idempotency caches — all
   carrying continuations or engine handles) travels only inside
   whole-image checkpoints. The snapshot records the control plane's
   op ids and sizes so a fingerprint distinguishes states and restore
   can verify it is being applied to a matching control plane. *)
type snapshot = {
  s_mapdb : Mapdb.snapshot;
  s_membership : Membership.snapshot;
  s_directory : (string * Key.t) list;  (* sorted by name *)
  s_next_op : int;
  s_pending_ops : int list;  (* sorted *)
  s_retry_ops : int list;  (* sorted *)
  s_remote_ops : int list;  (* sorted *)
  s_completed_acks : int list;  (* sorted *)
  s_evictions : int;
  s_credits : (int * int * int) list;  (* peer, credits, queued sends; sorted *)
  s_batch : (int * int) list;  (* peer, queued batch sends; sorted *)
  (* peer, absorbed credit returns still owed, stashed acks; sorted *)
  s_batch_owed : (int * int * int list) list;
  s_vpes : int list;  (* managed VPE ids, sorted *)
}

let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

let snapshot t =
  {
    s_mapdb = Mapdb.snapshot t.mapdb;
    s_membership = Membership.snapshot t.membership;
    s_directory =
      Hashtbl.fold (fun name key acc -> (name, key) :: acc) t.directory []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    s_next_op = t.next_op;
    s_pending_ops = sorted_keys t.pending_ops;
    s_retry_ops = sorted_keys t.retry_msgs;
    s_remote_ops = sorted_keys t.remote_ops;
    s_completed_acks = sorted_keys t.completed_acks;
    s_evictions = Queue.length t.evictions;
    s_credits =
      Hashtbl.fold (fun peer (c, q) acc -> (peer, !c, Queue.length q) :: acc) t.credits []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b);
    s_batch =
      Hashtbl.fold (fun peer bs acc -> (peer, Queue.length bs.bq) :: acc) t.batch_queues []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_batch_owed =
      Hashtbl.fold
        (fun peer o acc -> (peer, o.o_left, List.sort Int.compare o.o_acks) :: acc)
        t.batch_owed []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b);
    s_vpes = sorted_keys t.vpes;
  }

let restore t s =
  (* The idempotency caches (remote ops, completed acks) and eviction
     queue are validated too: they only ever grow during traffic, so a
     control plane that handled syscalls since the snapshot is caught
     here even when its event queue drained back to the snapshot's
     shape — which the timer wheel's eager cancellation makes routine. *)
  if
    sorted_keys t.pending_ops <> s.s_pending_ops
    || sorted_keys t.retry_msgs <> s.s_retry_ops
    || sorted_keys t.remote_ops <> s.s_remote_ops
    || sorted_keys t.completed_acks <> s.s_completed_acks
    || Queue.length t.evictions <> s.s_evictions
  then
    invalid_arg
      "Kernel.restore: live control plane does not match the snapshot (pending operations are \
       restored only by whole-image checkpoints)";
  Mapdb.restore t.mapdb s.s_mapdb;
  Membership.restore t.membership s.s_membership;
  Hashtbl.reset t.directory;
  List.iter (fun (name, key) -> Hashtbl.replace t.directory name key) s.s_directory;
  t.next_op <- s.s_next_op;
  List.iter
    (fun (peer, credits, queued) ->
      match Hashtbl.find_opt t.credits peer with
      | Some (c, q) ->
        if Queue.length q <> queued then
          invalid_arg "Kernel.restore: queued credit-stalled sends do not match the snapshot";
        c := credits
      | None ->
        if queued <> 0 then
          invalid_arg "Kernel.restore: queued credit-stalled sends do not match the snapshot";
        Hashtbl.replace t.credits peer (ref credits, Queue.create ()))
    s.s_credits;
  (* Batch queues hold closures' worth of in-flight protocol state only
     via plain messages awaiting a flush tick; like credit queues they
     are validated, not rebuilt (whole-image checkpoints carry them). *)
  List.iter
    (fun (peer, queued) ->
      let live =
        match Hashtbl.find_opt t.batch_queues peer with
        | Some bs -> Queue.length bs.bq
        | None -> 0
      in
      if live <> queued then
        invalid_arg "Kernel.restore: queued batched sends do not match the snapshot")
    s.s_batch;
  (* Owed-credit state is plain data and restores fully. *)
  List.iter
    (fun (peer, left, acks) ->
      match Hashtbl.find_opt t.batch_owed peer with
      | Some o ->
        o.o_left <- left;
        o.o_acks <- acks
      | None -> Hashtbl.replace t.batch_owed peer { o_left = left; o_acks = acks })
    s.s_batch_owed

let lookup_service t name = Hashtbl.find_opt t.directory name

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let c t = t.cost

let fresh_op t =
  let n = t.next_op in
  t.next_op <- n + 1;
  (t.id * 0x1000000) + n

let owner_kernel t key = Membership.kernel_of_key t.membership key

let is_local_key t key = owner_kernel t key = t.id

(* Non-raising locality check for bookkeeping that must not trip over
   a partition whose records are mid-handoff (counted as remote). *)
let key_surely_local t key =
  match owner_kernel t key with
  | owner -> owner = t.id
  | exception Membership.Mid_handoff _ -> false

let mint_key t ~creator_pe ~creator_vpe ~kind =
  Key.make ~pe:creator_pe ~vpe:creator_vpe ~kind ~obj:(Mapdb.fresh_obj t.mapdb)

let job t f = Server.submit_work t.server f

let trace_event t ~kind ?op ?src ?dst ?detail () =
  Obs.Trace.record t.trace ~ts:(Engine.now t.engine) ~kind ?op ?src ?dst ?detail ()

(* Operation id carried by an IKC, or -1 for untagged messages. *)
let ikc_op : P.ikc -> int = function
  | P.Ik_obtain_req { op; _ }
  | P.Ik_obtain_reply { op; _ }
  | P.Ik_delegate_req { op; _ }
  | P.Ik_delegate_reply { op; _ }
  | P.Ik_delegate_ack { op; _ }
  | P.Ik_open_sess_req { op; _ }
  | P.Ik_open_sess_reply { op; _ }
  | P.Ik_revoke_req { op; _ }
  | P.Ik_revoke_reply { op; _ }
  | P.Ik_migrate_update { op; _ }
  | P.Ik_migrate_ack { op }
  | P.Ik_migrate_caps { op; _ }
  | P.Ik_remove_child { op; _ }
  | P.Ik_srv_announce { op; _ }
  | P.Ik_fleet_state { op; _ }
  | P.Ik_part_update { op; _ }
  | P.Ik_part_records { op; _ } ->
    op
  | P.Ik_shutdown _ | P.Ik_batch _ -> -1

(* How long idempotency-cache entries must be kept: once the full retry
   budget plus slack has elapsed, no retransmission of the request (or
   redelivery of its reply) can still be in flight. *)
let retention t =
  Int64.add (retry_window t.cost) (Int64.mul 2L t.cost.Cost.retry_timeout)

(* Lazily drop expired idempotency-cache entries; called on kernel
   activity (syscall entry, IKC delivery) rather than from timers so
   drain-based measurements see no extra events. *)
let evict_expired t =
  let now = Engine.now t.engine in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.evictions) do
    let expiry, key = Queue.peek t.evictions in
    if Int64.compare expiry now > 0 then continue := false
    else begin
      ignore (Queue.pop t.evictions);
      match key with
      | Ev_remote op -> (
        (* Only a finished op may be dropped: an in-progress entry is
           still the dedup guard for its request. *)
        match Hashtbl.find_opt t.remote_ops op with
        | Some (R_done _) -> Hashtbl.remove t.remote_ops op
        | Some R_in_progress | None -> ())
      | Ev_ack op -> Hashtbl.remove t.completed_acks op
    end
  done

let record_latency t (vpe : Vpe.t) =
  let acc =
    match Hashtbl.find_opt t.ctr.latencies vpe.Vpe.syscall_name with
    | Some acc -> acc
    | None ->
      let acc = Semper_util.Stats.Acc.create () in
      Hashtbl.add t.ctr.latencies vpe.Vpe.syscall_name acc;
      acc
  in
  let dt = Int64.to_float (Int64.sub (Engine.now t.engine) vpe.Vpe.syscall_start) in
  Semper_util.Stats.Acc.add acc dt;
  Obs.Registry.observe
    (Obs.Registry.histogram t.obs
       (Printf.sprintf "kernel%d.syscall_latency.%s" t.id vpe.Vpe.syscall_name)
       ~buckets:latency_buckets)
    dt

(* Syscall reply: message from the kernel PE back to the VPE's PE. *)
let send_reply t (vpe : Vpe.t) (r : P.reply) =
  Fabric.send t.fabric ~src:t.pe ~dst:vpe.Vpe.pe ~bytes:(c t).Cost.reply_bytes (fun () ->
      vpe.Vpe.syscall_pending <- false;
      record_latency t vpe;
      trace_event t ~kind:"syscall_exit" ~op:vpe.Vpe.span ~src:t.id ~dst:vpe.Vpe.id
        ~detail:vpe.Vpe.syscall_name ();
      match vpe.Vpe.reply_k with
      | Some k ->
        vpe.Vpe.reply_k <- None;
        k r
      | None -> ())

(* Reply and release the syscall thread. *)
let finish_syscall t vpe r =
  Thread_pool.release t.threads;
  send_reply t vpe r

(* ------------------------------------------------------------------ *)
(* Inter-kernel transport with in-flight limiting (paper §4.1)         *)

let credit_state t peer =
  match Hashtbl.find_opt t.credits peer with
  | Some s -> s
  | None ->
    let s = (ref Cost.max_inflight, Queue.create ()) in
    Hashtbl.add t.credits peer s;
    s

let rec transmit_ikc t ~dst (ikc : P.ikc) =
  match Hashtbl.find_opt t.registry dst with
  | None -> Log.err (fun m -> m "kernel %d: no peer kernel %d" t.id dst)
  | Some peer ->
    Obs.Registry.incr t.ctr.ikc_sent;
    trace_event t ~kind:"ikc_send" ~op:(ikc_op ikc) ~src:t.id ~dst ~detail:(P.ikc_name ikc) ();
    (* A framed multi-message is one fabric transfer whose size grows
       with its payload, so coalescing still pays serialisation latency
       for every inner message — only per-message overheads amortise. *)
    let bytes =
      match ikc with
      | P.Ik_batch { msgs; _ } ->
        (c t).Cost.batch_header_bytes + (List.length msgs * (c t).Cost.ikc_bytes)
      (* A bulk partition handoff ships its record wave as one framed
         transfer sized like a batch: header plus one slot per record. *)
      | P.Ik_part_records { records; _ } ->
        (c t).Cost.batch_header_bytes + (max 1 (List.length records) * (c t).Cost.ikc_bytes)
      | _ -> (c t).Cost.ikc_bytes
    in
    Fabric.send ~tag:(P.ikc_name ikc) t.fabric ~src:t.pe ~dst:peer.pe ~bytes (fun () ->
        deliver_ikc peer ~src_kernel:t.id ikc)

(* Credit-gated dispatch: consume one in-flight credit or park the
   message until a credit returns (paper §5.1, four per peer pair). *)
and dispatch_ikc t ~dst ikc =
  let credits, queue = credit_state t dst in
  if !credits > 0 then begin
    decr credits;
    transmit_ikc t ~dst ikc
  end
  else begin
    Obs.Registry.incr t.ctr.credit_stalls;
    trace_event t ~kind:"credit_stall" ~op:(ikc_op ikc) ~src:t.id ~dst ~detail:(P.ikc_name ikc) ();
    Queue.push (ikc, dst) queue
  end

(* DTU slot-window coalescing (batching mode). The leader of a wave —
   the first message to a peer with no window open — dispatches
   immediately and opens a [batch_window]-cycle window; followers queue
   and leave together as one framed [Ik_batch] when the flush tick
   fires. Leader-dispatches-immediately means an isolated message (the
   common case on a revocation chain) sees zero added latency. *)
and ikc_send t ~dst ikc =
  if dst = t.id then invalid_arg "Kernel.ikc_send: message to self";
  if Cost.batching (c t) then enqueue_batch t ~dst ikc else dispatch_ikc t ~dst ikc

and enqueue_batch t ~dst ikc =
  let bs =
    match Hashtbl.find_opt t.batch_queues dst with
    | Some bs -> bs
    | None ->
      let bs = { bq = Queue.create (); bw_until = Int64.min_int } in
      Hashtbl.add t.batch_queues dst bs;
      bs
  in
  if Int64.compare (Engine.now t.engine) bs.bw_until < 0 then Queue.push ikc bs.bq
  else begin
    dispatch_ikc t ~dst ikc;
    open_batch_window t ~dst bs
  end

and open_batch_window t ~dst bs =
  bs.bw_until <- Int64.add (Engine.now t.engine) (c t).Cost.batch_window;
  Engine.after t.engine (c t).Cost.batch_window (fun () -> flush_batch t ~dst bs)

and flush_batch t ~dst bs =
  match Queue.length bs.bq with
  | 0 -> ()  (* window closes; next message becomes a new leader *)
  | 1 ->
    dispatch_ikc t ~dst (Queue.pop bs.bq);
    open_batch_window t ~dst bs
  | n ->
    let msgs = List.rev (Queue.fold (fun acc m -> m :: acc) [] bs.bq) in
    Queue.clear bs.bq;
    Obs.Registry.incr t.ctr.batches_sent;
    Obs.Registry.incr ~by:n t.ctr.batched_msgs;
    Obs.Registry.observe t.ctr.batch_occupancy (float_of_int n);
    dispatch_ikc t ~dst (P.Ik_batch { src_kernel = t.id; msgs });
    open_batch_window t ~dst bs

and receive_credit t ~peer =
  let credits, queue = credit_state t peer in
  if Queue.is_empty queue then begin
    (* Clamp at the §5.1 bound: a retransmission refund racing the
       original message's credit return (or a fault-injected duplicate
       returning credit twice) must not widen the window permanently. *)
    if !credits >= Cost.max_inflight then Obs.Registry.incr t.ctr.credit_overrefund
    else incr credits
  end
  else begin
    let ikc, dst = Queue.pop queue in
    transmit_ikc t ~dst ikc
  end

(* The DTU frees the message slot as soon as the kernel has fetched the
   message, which returns the sender's credit; we model that at the end
   of the first processing job for the message. [ack_op] piggybacks a
   delivery acknowledgement for an op-tagged notification on the credit
   message — the credit channel is never dropped or duplicated by fault
   plans, so the ack is reliable and costs no extra fabric transfer.
   For inner messages of an [Ik_batch] frame all but one credit return
   per frame is absorbed ([owed]); their acks are stashed and ride the
   next credit message to the same peer. *)
and return_credit ?ack_op t ~src_kernel =
  match Hashtbl.find_opt t.registry src_kernel with
  | None -> ()
  | Some peer -> (
    match Hashtbl.find_opt t.batch_owed src_kernel with
    | Some o when o.o_left > 0 ->
      o.o_left <- o.o_left - 1;
      (match ack_op with Some op -> o.o_acks <- op :: o.o_acks | None -> ())
    | _ ->
      let acks =
        match Hashtbl.find_opt t.batch_owed src_kernel with
        | Some o ->
          let stashed = o.o_acks in
          o.o_acks <- [];
          stashed
        | None -> []
      in
      let acks = match ack_op with Some op -> op :: acks | None -> acks in
      Fabric.send ~tag:"credit" t.fabric ~src:t.pe ~dst:peer.pe ~bytes:(c t).Cost.credit_bytes
        (fun () ->
          receive_credit peer ~peer:t.id;
          List.iter (fun op -> clear_retry peer op) acks))

(* ------------------------------------------------------------------ *)
(* Reliability: timeout-driven retransmission + duplicate detection.
   Op-tagged requests are retransmitted until their reply arrives (or
   the attempt budget runs out); responders answer redeliveries from a
   cache. Each retransmission refunds one credit first, on the
   assumption the lost message's credit was leaked with it — so bounded
   drops cannot wedge the in-flight window permanently. *)

and register_retry t op ~dst msg =
  let st = { rdst = dst; rmsg = msg; rstart = Engine.now t.engine; rattempts = 0; rtimer = None } in
  Hashtbl.replace t.retry_msgs op st;
  if (c t).Cost.retry_max > 0 then begin
    let rec tick () =
      match Hashtbl.find_opt t.retry_msgs op with
      | None -> ()
      | Some st ->
        st.rtimer <- None;
        if st.rattempts >= (c t).Cost.retry_max then begin
          (* Budget exhausted: stop retransmitting and fail the pending
             operation explicitly instead of leaving the syscall (and
             its kernel thread) parked forever. *)
          Hashtbl.remove t.retry_msgs op;
          Obs.Registry.incr t.ctr.retry_exhausted;
          trace_event t ~kind:"ikc_timeout" ~op ~src:t.id ~dst:st.rdst
            ~detail:(P.ikc_name st.rmsg) ();
          fail_exhausted_op t op
        end
        else begin
          st.rattempts <- st.rattempts + 1;
          Obs.Registry.incr t.ctr.retries;
          trace_event t ~kind:"ikc_retry" ~op ~src:t.id ~dst:st.rdst
            ~detail:(P.ikc_name st.rmsg) ();
          receive_credit t ~peer:st.rdst;
          ikc_send t ~dst:st.rdst st.rmsg;
          st.rtimer <-
            Some (Engine.after_cancellable t.engine (retry_interval (c t) st.rattempts) tick)
        end
    in
    st.rtimer <- Some (Engine.after_cancellable t.engine (retry_interval (c t) 0) tick)
  end

and clear_retry t op =
  match Hashtbl.find_opt t.retry_msgs op with
  | None -> ()
  | Some st ->
    Hashtbl.remove t.retry_msgs op;
    Option.iter (Engine.cancel t.engine) st.rtimer;
    let name = P.ikc_name st.rmsg in
    let dt = Int64.to_float (Int64.sub (Engine.now t.engine) st.rstart) in
    Obs.Registry.observe
      (Obs.Registry.histogram t.obs (Printf.sprintf "kernel%d.ikc_latency.%s" t.id name)
         ~buckets:latency_buckets)
      dt;
    Obs.Registry.observe
      (Obs.Registry.histogram t.obs (Printf.sprintf "kernel%d.ikc_retries.%s" t.id name)
         ~buckets:retry_buckets)
      (float_of_int st.rattempts)

(* Retry budget exhausted for [op]: the peer is presumed unreachable.
   Requester-side operations answer the parked syscall with
   [E_timeout]; a responder-side delegate handshake aborts its
   uncommitted capability and releases the held thread; a revoke wave
   releases its outstanding count so the operation can complete. Late
   replies arriving after this hit the regular duplicate paths. *)
and fail_exhausted_op t op =
  match Hashtbl.find_opt t.pending_ops op with
  | None -> ()
  | Some (P_obtain { client }) ->
    Hashtbl.remove t.pending_ops op;
    finish_syscall t client (P.R_err P.E_timeout)
  | Some (P_delegate_src { client; _ }) ->
    Hashtbl.remove t.pending_ops op;
    finish_syscall t client (P.R_err P.E_timeout)
  | Some (P_open_sess { client; _ }) ->
    Hashtbl.remove t.pending_ops op;
    finish_syscall t client (P.R_err P.E_timeout)
  | Some (P_revoke_msg { rop }) ->
    Hashtbl.remove t.pending_ops op;
    revoke_release t rop
  | Some (P_delegate_dst { child_key; src_kernel; recv_vpe = _ }) ->
    (* The delegate ack never came: abort the half-open handshake. The
       provisional capability was never inserted into the receiver's
       capability space, so dropping its record suffices; best-effort
       unlink at the source. *)
    Hashtbl.remove t.pending_ops op;
    (match Mapdb.find t.mapdb child_key with
    | Some cap ->
      Mapdb.remove t.mapdb child_key;
      Obs.Registry.incr t.ctr.caps_deleted;
      (match cap.Cap.parent with
      | Some parent_key ->
        let unlink_op = fresh_op t in
        let msg = P.Ik_remove_child { op = unlink_op; parent_key; child_key } in
        ikc_send t ~dst:src_kernel msg;
        register_retry t unlink_op ~dst:src_kernel msg
      | None -> ())
    | None -> ());
    Thread_pool.release t.threads
  | Some (P_migrate_caps { mc_vpe; mc_done }) ->
    (* The destination never confirmed the install: the records are in
       limbo. Surface it loudly and release the caller — the audit layer
       will flag the leaked records. *)
    Hashtbl.remove t.pending_ops op;
    Log.err (fun m ->
        m "kernel %d: migrate_caps for VPE %d exhausted retries; records lost" t.id
          mc_vpe.Vpe.id);
    mc_done ()
  | Some (P_part_caps { pc_done; _ }) ->
    (* Same limbo as an exhausted migrate_caps, for a whole partition
       wave. *)
    Hashtbl.remove t.pending_ops op;
    Log.err (fun m -> m "kernel %d: part_records exhausted retries; records lost" t.id);
    pc_done ()
  | Some (P_revoke _ | P_migrate _ | P_fleet _ | P_part _) ->
    (* Not retried through [register_retry]; nothing to fail. *)
    ()

(* Returns [true] when the request was seen before; credit is returned
   either way, and a finished op re-sends its cached reply. *)
and remote_dup t ~src_kernel ~op =
  match Hashtbl.find_opt t.remote_ops op with
  | None ->
    Hashtbl.replace t.remote_ops op R_in_progress;
    false
  | Some R_in_progress ->
    Obs.Registry.incr t.ctr.dup_ikc;
    return_credit t ~src_kernel;
    true
  | Some (R_done { dst; msg }) ->
    Obs.Registry.incr t.ctr.dup_ikc;
    return_credit t ~src_kernel;
    (* The requester retransmitted, so the cached reply may have been
       dropped — and a dropped reply leaks the credit it consumed,
       since replies ride the requester's retry loop instead of their
       own. Refund it before the resend, exactly like a register_retry
       retransmission; the window clamp absorbs the refund when the
       original reply actually survived. On a perfect fabric no reply
       is ever lost — the retransmission just outran a slow reply — so
       the refund stands down and the credit flow stays exactly the
       paper's. *)
    if Fabric.has_injector t.fabric then receive_credit t ~peer:dst;
    ikc_send t ~dst msg;
    true

(* Send the final reply for an op-tagged request and cache it for
   redeliveries. *)
and finish_remote t ~op ~dst msg =
  Hashtbl.replace t.remote_ops op (R_done { dst; msg });
  Queue.push (Int64.add (Engine.now t.engine) (retention t), Ev_remote op) t.evictions;
  ikc_send t ~dst msg

(* ------------------------------------------------------------------ *)
(* VPE interaction: the kernel asks the other party of an exchange      *)

(* Kernel -> VPE offer message, VPE-side processing, VPE -> kernel
   answer. The kernel thread suspends; the kernel PE itself stays free
   to serve other work (cooperative multithreading, §4.2). *)
and vpe_accept_roundtrip t (vpe : Vpe.t) k =
  Fabric.send t.fabric ~src:t.pe ~dst:vpe.Vpe.pe ~bytes:32 (fun () ->
      Engine.after t.engine (c t).Cost.vpe_accept (fun () ->
          Fabric.send t.fabric ~src:vpe.Vpe.pe ~dst:t.pe ~bytes:16 (fun () ->
              k vpe.Vpe.accept_exchange)))

(* Ask a local service; the handler charges time on the service's PE. *)
and service_upcall t ~srv_key req k =
  match Key.Table.find_opt t.services_by_key srv_key with
  | None -> k (P.Srs_reject P.E_no_such_service)
  | Some service -> service.srv_handler req k

(* ------------------------------------------------------------------ *)
(* Capability lookup helpers                                           *)

and resolve_sel t (vpe : Vpe.t) sel : (Cap.t, P.error) result =
  match Capspace.find vpe.Vpe.capspace sel with
  | None -> Error P.E_no_such_cap
  | Some key -> (
    match Mapdb.find t.mapdb key with
    | None -> Error P.E_no_such_cap
    | Some cap -> Ok cap)

and exchangeable (cap : Cap.t) : (Cap.t, P.error) result =
  if Cap.is_marked cap then Error P.E_in_revocation else Ok cap

(* Create a capability record, link it under [parent], and insert it
   into [owner]'s capability space. Returns the selector. *)
and create_linked_cap t ~(owner : Vpe.t) ~kind ~(parent : Cap.t option) ~key =
  let parent_key = Option.map (fun (p : Cap.t) -> p.Cap.key) parent in
  let cap = Cap.make ~key ~kind ~owner_vpe:owner.Vpe.id ?parent:parent_key () in
  Mapdb.insert t.mapdb cap;
  (match parent with Some p -> Mapdb.add_child t.mapdb ~parent:p.Cap.key key | None -> ());
  Obs.Registry.incr t.ctr.caps_created;
  Capspace.insert owner.Vpe.capspace key

(* ------------------------------------------------------------------ *)
(* Revocation: two-phase mark and sweep (Algorithm 1)                  *)

(* Phase 1: mark the local subtree under [key]; queue IKC revoke
   requests for remote children; wait on overlapping operations. Runs
   inside a server job — sends are deferred to [to_send]. *)
and mark_subtree t (op : revoke_op) ~to_send key =
  match Mapdb.find t.mapdb key with
  | None -> () (* already deleted: nothing left to do for this branch *)
  | Some cap -> (
    match cap.Cap.state with
    | Cap.Marked { revoke_op } when revoke_op = op.rop_id -> ()
    | Cap.Marked { revoke_op = _ } ->
      (* Overlapping revoke: the region is already marked by another
         operation. Marked capabilities are unusable (exchanges are
         denied, activation is refused, and their endpoints are
         invalidated at deletion), so access is already withdrawn and
         this operation need not wait — deletion is guaranteed by the
         marking operation. Waiting here instead (on whole-operation
         completion) can deadlock: concurrent multi-root revokes form
         wait cycles across kernels, whereas the paper's per-capability
         counters only ever wait along tree edges, which are acyclic. *)
      ()
    | Cap.Alive ->
      cap.Cap.state <- Cap.Marked { revoke_op = op.rop_id };
      op.marked <- key :: op.marked;
      Key.Table.replace op.marked_set key ();
      Mapdb.iter_children t.mapdb key (fun child_key ->
          op.links_seen <- op.links_seen + 1;
          match owner_kernel t child_key with
          | owner when owner = t.id -> mark_subtree t op ~to_send child_key
          | owner -> to_send := (owner, child_key) :: !to_send
          | exception Membership.Mid_handoff _ -> defer_revoke_child t op child_key))

(* A remote reply (or an overlapping operation we waited on) came in. *)
and revoke_release t (op : revoke_op) =
  op.outstanding <- op.outstanding - 1;
  if op.outstanding = 0 then complete_revoke t op

(* A child key's partition is mid-handoff: its records are in flight
   between kernels, so neither marking locally nor sending the revoke
   request can reach them yet. Hold the operation open (one outstanding
   unit) and re-resolve once the handoff completes — handoffs finish in
   bounded time because the migrate transfer itself is op-tagged and
   retried. [root_unlink] carries the surviving root of a children-only
   revoke, recorded only if the child ends up remote (local children
   are unlinked by the sweep). *)
and defer_revoke_child t (op : revoke_op) ?root_unlink child_key =
  op.outstanding <- op.outstanding + 1;
  let rec retry () =
    match owner_kernel t child_key with
    | exception Membership.Mid_handoff _ -> Engine.after t.engine 200L retry
    | owner when owner = t.id ->
      (* The records landed here (this kernel was the handoff
         destination): mark the subtree like any other local branch,
         forwarding children it reveals on other kernels. *)
      job t (fun () ->
          let before = List.length op.marked in
          let to_send = ref [] in
          mark_subtree t op ~to_send child_key;
          let visited = List.length op.marked - before in
          let messages = List.rev_map (fun (dst, key) -> (dst, [ key ])) !to_send in
          op.outstanding <- op.outstanding + List.length messages;
          let cost =
            Int64.add
              (Int64.mul (Int64.of_int (List.length messages)) (c t).Cost.revoke_send)
              (Int64.add
                 (Int64.mul (Int64.of_int visited) (c t).Cost.revoke_per_cap)
                 (Cost.ddl (c t) visited))
          in
          ( cost,
            fun () ->
              List.iter
                (fun (dst, keys) ->
                  let msg_op = fresh_op t in
                  Hashtbl.add t.pending_ops msg_op (P_revoke_msg { rop = op });
                  let msg = P.Ik_revoke_req { op = msg_op; src_kernel = t.id; keys } in
                  ikc_send t ~dst msg;
                  register_retry t msg_op ~dst msg)
                messages;
              revoke_release t op ))
    | owner ->
      (* Resolved to another kernel: the outstanding unit held for the
         deferral now stands for this request's reply. *)
      (match root_unlink with
      | Some root -> op.root_unlinks <- (root, child_key) :: op.root_unlinks
      | None -> ());
      job t (fun () ->
          ( (c t).Cost.revoke_send,
            fun () ->
              let msg_op = fresh_op t in
              Hashtbl.add t.pending_ops msg_op (P_revoke_msg { rop = op });
              let msg = P.Ik_revoke_req { op = msg_op; src_kernel = t.id; keys = [ child_key ] } in
              ikc_send t ~dst:owner msg;
              register_retry t msg_op ~dst:owner msg ))
  in
  Engine.after t.engine 200L retry

(* Phase 2: all outstanding replies drained — delete the marked region,
   unlink it from surviving parents, acknowledge. *)
and complete_revoke t (op : revoke_op) =
  job t (fun () ->
      let deleted = ref 0 in
      let remote_unlinks = ref [] in
      (* Children-only revoke: prune acknowledged remote children from
         their surviving roots. *)
      List.iter
        (fun (root_key, child_key) -> Mapdb.remove_child t.mapdb ~parent:root_key child_key)
        op.root_unlinks;
      let in_marked k =
        Obs.Registry.incr t.ctr.revoke_sweep_probes;
        Key.Table.mem op.marked_set k
      in
      List.iter
        (fun key ->
          match Mapdb.find t.mapdb key with
          | None -> ()
          | Some cap ->
            incr deleted;
            (* Unlink from a surviving parent: locally if we own it,
               via IKC if another kernel does. Parents that are being
               deleted by this same operation need no unlinking; a
               remote parent owned by the kernel that *requested* this
               revoke is itself in deletion there. *)
            (match cap.Cap.parent with
            | None -> ()
            | Some pk when in_marked pk -> ()
            (* A subtree root absorbed from a responder's [cont]: its
               remote parent was swept by that responder before it
               replied, so there is nothing left to unlink. *)
            | Some _ when Key.Table.mem op.cont_roots key -> ()
            | Some pk ->
              if is_local_key t pk then Mapdb.remove_child t.mapdb ~parent:pk key
              else begin
                let pk_kernel = owner_kernel t pk in
                let requested_by =
                  match op.origin with Ro_remote (k, _) -> k = pk_kernel | Ro_syscall _ | Ro_exit _ -> false
                in
                if not requested_by then
                  remote_unlinks := (pk_kernel, pk, key) :: !remote_unlinks
              end);
            (* Drop from the owner VPE's capability space. *)
            (match t.env.locate_vpe cap.Cap.owner_vpe with
            | Some owner -> Capspace.remove_key owner.Vpe.capspace key
            | None -> ());
            (* NoC-level isolation: a revoked gate or memory capability
               must stop working in hardware — invalidate the endpoint
               the kernel configured for it. *)
            (match Key.Table.find_opt t.activations key with
            | Some (pe, ep) ->
              Key.Table.remove t.activations key;
              (match Semper_dtu.Dtu.find t.grid ~pe with
              | dtu ->
                ignore
                  (Semper_dtu.Dtu.configure_remote
                     ~by:(Semper_dtu.Dtu.find t.grid ~pe:t.pe)
                     dtu ~ep `Invalidate)
              | exception Not_found -> ())
            | None -> ());
            Mapdb.remove t.mapdb key;
            Obs.Registry.incr t.ctr.caps_deleted)
        op.marked;
      (* For a children-only revoke the roots survive with their child
         lists already pruned by the unlinking above. *)
      let cost = Cost.ddl (c t) (2 * !deleted) in
      ( cost,
        fun () ->
          trace_event t ~kind:"revoke_sweep" ~op:op.rop_id ~src:t.id
            ~detail:(Printf.sprintf "deleted=%d" !deleted) ();
          (* Op-tagged so a dropped unlink is retransmitted: before,
             one lost [Ik_remove_child] left a dangling remote child
             link that only the cross-kernel audit noticed. *)
          List.iter
            (fun (dst, parent_key, child_key) ->
              let unlink_op = fresh_op t in
              let msg = P.Ik_remove_child { op = unlink_op; parent_key; child_key } in
              ikc_send t ~dst msg;
              register_retry t unlink_op ~dst msg)
            !remote_unlinks;
          Hashtbl.remove t.pending_ops op.rop_id;
          let waiters = op.on_complete in
          op.on_complete <- [];
          List.iter (fun k -> k ()) waiters;
          (match op.origin with
          | Ro_syscall vpe -> finish_syscall t vpe P.R_ok
          | Ro_exit vpe ->
            t.env.on_vpe_exit vpe;
            finish_syscall t vpe P.R_ok
          | Ro_remote (src_kernel, remote_op) ->
            finish_remote t ~op:remote_op ~dst:src_kernel
              (P.Ik_revoke_reply { op = remote_op; keys = op.roots; cont = op.cont_out }));
          (* The operation is finished: recycle its scratch sets. *)
          Pool.release t.keyset_pool op.marked_set;
          Pool.release t.keyset_pool op.cont_roots ))

(* The responder of one of our revoke requests handed back subtree
   roots we own (the reply's [cont] field, batching mode): absorb them
   into [op] as if their parents had been local. Holds one outstanding
   unit so the operation cannot complete while the absorption job is
   queued; the roots enter [cont_roots] so the sweep skips the unlink
   of their already-swept remote parents. *)
and absorb_continuation t (op : revoke_op) keys =
  op.outstanding <- op.outstanding + 1;
  job t (fun () ->
      let before = List.length op.marked in
      let to_send = ref [] in
      List.iter
        (fun key ->
          Key.Table.replace op.cont_roots key ();
          match owner_kernel t key with
          | owner when owner = t.id -> mark_subtree t op ~to_send key
          | owner -> to_send := (owner, key) :: !to_send
          | exception Membership.Mid_handoff _ -> defer_revoke_child t op key)
        keys;
      let visited = List.length op.marked - before in
      (* The handoff continues transitively: children owned by our own
         requester ride our eventual reply's [cont] in turn. *)
      let to_send =
        match op.origin with
        | Ro_remote (req_k, _) when Cost.batching (c t) ->
          let cont, rest = List.partition (fun (dst, _) -> dst = req_k) !to_send in
          op.cont_out <- List.rev_append (List.map snd cont) op.cont_out;
          rest
        | _ -> !to_send
      in
      let messages =
        Pool.with_ t.dstmap_pool (fun by_dst ->
            List.iter
              (fun (dst, key) ->
                let keys = try Hashtbl.find by_dst dst with Not_found -> [] in
                Hashtbl.replace by_dst dst (key :: keys))
              to_send;
            Hashtbl.fold (fun dst keys acc -> (dst, keys) :: acc) by_dst [])
      in
      op.outstanding <- op.outstanding + List.length messages;
      let cost =
        Int64.add
          (Int64.mul (Int64.of_int (List.length messages)) (c t).Cost.revoke_send)
          (Int64.add
             (Int64.mul (Int64.of_int visited) (c t).Cost.revoke_per_cap)
             (Cost.ddl (c t) visited))
      in
      ( cost,
        fun () ->
          trace_event t ~kind:"revoke_cont" ~op:op.rop_id ~src:t.id
            ~detail:(Printf.sprintf "absorbed=%d marked=%d" (List.length keys) visited) ();
          List.iter
            (fun (dst, keys) ->
              let msg_op = fresh_op t in
              Hashtbl.add t.pending_ops msg_op (P_revoke_msg { rop = op });
              let msg = P.Ik_revoke_req { op = msg_op; src_kernel = t.id; keys } in
              ikc_send t ~dst msg;
              register_retry t msg_op ~dst msg)
            messages;
          revoke_release t op ))

(* Entry point for both revoke syscalls and incoming revoke requests.
   [base_cost] is the fixed processing charge for this trigger. *)
and start_revoke t ~origin ~roots ~own ~base_cost =
  let op =
    {
      rop_id = fresh_op t;
      roots;
      own;
      origin;
      outstanding = 0;
      marked = [];
      marked_set = Pool.acquire t.keyset_pool;
      links_seen = 0;
      root_unlinks = [];
      cont_out = [];
      cont_roots = Pool.acquire t.keyset_pool;
      on_complete = [];
    }
  in
  Hashtbl.add t.pending_ops op.rop_id (P_revoke op);
  job t (fun () ->
      let to_send = ref [] in
      List.iter
        (fun root ->
          match Mapdb.find t.mapdb root with
          | None -> ()
          | Some _ ->
            if own then mark_subtree t op ~to_send root
            else
              (* Children-only revoke: mark each child subtree but keep
                 the root capability itself. *)
              Mapdb.iter_children t.mapdb root (fun child_key ->
                  op.links_seen <- op.links_seen + 1;
                  match owner_kernel t child_key with
                  | owner when owner = t.id -> mark_subtree t op ~to_send child_key
                  | owner ->
                    (* The root survives this revoke, so the remote
                       child must be unlinked from it at completion. *)
                    op.root_unlinks <- (root, child_key) :: op.root_unlinks;
                    to_send := (owner, child_key) :: !to_send
                  | exception Membership.Mid_handoff _ ->
                    defer_revoke_child t op ~root_unlink:root child_key))
        roots;
      (* Requester handoff (batching mode): children owned by the
         kernel that requested this revoke ride back in the reply's
         [cont] field and get absorbed into the requester's own wave —
         one message (the reply we owe anyway) instead of a revoke
         request straight back plus its reply. On a kernel-spanning
         chain this halves both the messages and the round trips per
         link. *)
      let to_send =
        match op.origin with
        | Ro_remote (req_k, _) when Cost.batching (c t) ->
          let cont, rest = List.partition (fun (dst, _) -> dst = req_k) !to_send in
          op.cont_out <- List.rev_append (List.map snd cont) op.cont_out;
          rest
        | _ -> !to_send
      in
      (* One revoke request per remote child — or, with batching
         enabled (the paper's §5.2 improvement), one per destination
         kernel carrying all its children. The Barrelfish-style
         broadcast baseline instead messages *every* kernel, whether or
         not it holds descendants. *)
      let initiator =
        match op.origin with Ro_syscall _ | Ro_exit _ -> true | Ro_remote _ -> false
      in
      let messages =
        if Cost.broadcast (c t) && initiator then
          Pool.with_ t.dstmap_pool (fun by_dst ->
              Hashtbl.iter
                (fun kid _ -> if kid <> t.id then Hashtbl.replace by_dst kid [])
                t.registry;
              List.iter
                (fun (dst, key) ->
                  let keys = try Hashtbl.find by_dst dst with Not_found -> [] in
                  Hashtbl.replace by_dst dst (key :: keys))
                to_send;
              Hashtbl.fold (fun dst keys acc -> (dst, keys) :: acc) by_dst [])
        else if Cost.batching (c t) then
          Pool.with_ t.dstmap_pool (fun by_dst ->
              List.iter
                (fun (dst, key) ->
                  let keys = try Hashtbl.find by_dst dst with Not_found -> [] in
                  Hashtbl.replace by_dst dst (key :: keys))
                to_send;
              Hashtbl.fold (fun dst keys acc -> (dst, keys) :: acc) by_dst [])
        else List.rev_map (fun (dst, key) -> (dst, [ key ])) to_send
      in
      op.outstanding <- op.outstanding + List.length messages;
      let visited = List.length op.marked in
      let cost =
        Int64.add base_cost
          (Int64.add
             (Int64.mul (Int64.of_int (List.length messages)) (c t).Cost.revoke_send)
             (Int64.add
                (Int64.mul (Int64.of_int visited) (c t).Cost.revoke_per_cap)
                (Cost.ddl (c t) (visited + op.links_seen))))
      in
      ( cost,
        fun () ->
          trace_event t ~kind:"revoke_mark" ~op:op.rop_id ~src:t.id
            ~detail:(Printf.sprintf "marked=%d remote_msgs=%d" visited (List.length messages))
            ();
          List.iter
            (fun (dst, keys) ->
              (* Per-message op id: the reply resolves back to the
                 operation, and a redelivered reply finds the message op
                 already retired instead of double-decrementing. *)
              let msg_op = fresh_op t in
              Hashtbl.add t.pending_ops msg_op (P_revoke_msg { rop = op });
              let msg = P.Ik_revoke_req { op = msg_op; src_kernel = t.id; keys } in
              ikc_send t ~dst msg;
              register_retry t msg_op ~dst msg)
            messages;
          if op.outstanding = 0 then complete_revoke t op ))

(* ------------------------------------------------------------------ *)
(* Obtain                                                              *)

(* Local obtain: donor capability and client managed by this kernel.
   [accept] asks the donor party; [parent_of_grant] resolves the donor
   capability after acceptance (it may have changed in the meantime). *)
and local_obtain t ~(client : Vpe.t) ~accept ~(parent_of_grant : unit -> (Cap.t * Cap.kind, P.error) result) =
  accept (fun decision ->
      match decision with
      | Error e -> finish_syscall t client (P.R_err e)
      | Ok () ->
        job t (fun () ->
            match
              if not (Vpe.is_alive client) then Error P.E_vpe_dead
              else Result.bind (parent_of_grant ()) (fun (p, kind) ->
                  Result.map (fun p -> (p, kind)) (exchangeable p))
            with
            | Error e -> ((c t).Cost.exchange_create, fun () -> finish_syscall t client (P.R_err e))
            | Ok (parent, kind) ->
              let key =
                mint_key t ~creator_pe:client.Vpe.pe ~creator_vpe:client.Vpe.id
                  ~kind:(Cap.kind_to_key_kind kind)
              in
              let sel = create_linked_cap t ~owner:client ~kind ~parent:(Some parent) ~key in
              Obs.Registry.incr t.ctr.exchanges_local;
              ( Int64.add (c t).Cost.exchange_create (Cost.ddl (c t) 3),
                fun () -> finish_syscall t client (P.R_sel sel) )))

(* Spanning obtain: forward to the donor's kernel, park the syscall. *)
and remote_obtain t ~(client : Vpe.t) ~dst_kernel ~donor =
  let op = fresh_op t in
  let obj_reserved = Mapdb.fresh_obj t.mapdb in
  Hashtbl.add t.pending_ops op (P_obtain { client });
  Obs.Registry.incr t.ctr.exchanges_spanning;
  let msg =
    P.Ik_obtain_req
      { op; src_kernel = t.id; obj_reserved; client_pe = client.Vpe.pe; client_vpe = client.Vpe.id; donor }
  in
  ikc_send t ~dst:dst_kernel msg;
  register_retry t op ~dst:dst_kernel msg

(* ------------------------------------------------------------------ *)
(* Syscall handling                                                    *)

and handle_syscall t (vpe : Vpe.t) (call : P.syscall) =
  let dispatch = (c t).Cost.syscall_dispatch in
  (* Capability-modifying operations, counted once per request — the
     unit of Table 4 in the paper. *)
  (match call with
  | P.Sys_alloc_mem _ | P.Sys_derive_mem _ | P.Sys_obtain _ | P.Sys_delegate _
  | P.Sys_obtain_from _ | P.Sys_delegate_to _ | P.Sys_revoke _ | P.Sys_create_sgate _
  | P.Sys_open_session _ ->
    Obs.Registry.incr t.ctr.cap_ops
  | P.Sys_create_vpe _ | P.Sys_create_srv _ | P.Sys_create_rgate _ | P.Sys_activate _ | P.Sys_exit
    ->
    ());
  match call with
  | P.Sys_create_vpe { on_pe } ->
    job t (fun () ->
        match
          match on_pe with
          | Some pe -> Some pe
          | None -> t.env.alloc_pe ~kernel:t.id
        with
        | None -> (Int64.add dispatch (c t).Cost.create_obj, fun () -> finish_syscall t vpe (P.R_err P.E_no_pe))
        | Some pe ->
          let nv = t.env.make_vpe ~pe ~kernel:t.id in
          let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Vpe_obj in
          let sel = create_linked_cap t ~owner:vpe ~kind:(Cap.Vpe_cap { vpe = nv.Vpe.id }) ~parent:None ~key in
          ( Int64.add dispatch (c t).Cost.create_obj,
            fun () -> finish_syscall t vpe (P.R_vpe { vpe = nv.Vpe.id; sel }) ))
  | P.Sys_create_srv { name } ->
    job t (fun () ->
        match Hashtbl.find_opt t.pending_handlers name with
        | None -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_service))
        | Some handler ->
          if Hashtbl.mem t.directory name then
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))
          else begin
            let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Srv_obj in
            let sel = create_linked_cap t ~owner:vpe ~kind:(Cap.Srv_cap { name }) ~parent:None ~key in
            let service = { srv_key = key; srv_vpe = vpe.Vpe.id; srv_handler = handler } in
            Hashtbl.replace t.local_services name service;
            Key.Table.replace t.services_by_key key service;
            Hashtbl.replace t.directory name key;
              ( Int64.add dispatch (c t).Cost.create_obj,
              fun () ->
                (* Announce to every other kernel (IKC group 1/2),
                   op-tagged per peer and retried until the delivery
                   ack (piggybacked on the credit return) comes back. *)
                Hashtbl.iter
                  (fun kid _ ->
                    if kid <> t.id then begin
                      let ann_op = fresh_op t in
                      let msg =
                        P.Ik_srv_announce { op = ann_op; name; srv_key = key; kernel = t.id }
                      in
                      ikc_send t ~dst:kid msg;
                      register_retry t ann_op ~dst:kid msg
                    end)
                  t.registry;
                finish_syscall t vpe (P.R_sel sel) )
          end)
  | P.Sys_create_rgate { ep; slots } ->
    job t (fun () ->
        let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Rgate_obj in
        let sel = create_linked_cap t ~owner:vpe ~kind:(Cap.Rgate_cap { ep; slots }) ~parent:None ~key in
        (Int64.add dispatch (c t).Cost.create_obj, fun () -> finish_syscall t vpe (P.R_sel sel)))
  | P.Sys_create_sgate { rgate; label } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe rgate) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok parent -> (
          match parent.Cap.kind with
          | Cap.Rgate_cap { ep; slots } ->
            let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Sgate_obj in
            (* Send credits match the receive gate's message slots. *)
            let kind =
              Cap.Sgate_cap { target_pe = vpe.Vpe.pe; target_ep = ep; label; credits = slots }
            in
            let sel = create_linked_cap t ~owner:vpe ~kind ~parent:(Some parent) ~key in
              ( Int64.add (Int64.add dispatch (c t).Cost.create_obj) (Cost.ddl (c t) 1),
              fun () -> finish_syscall t vpe (P.R_sel sel) )
          | Cap.Vpe_cap _ | Cap.Mem_cap _ | Cap.Srv_cap _ | Cap.Sess_cap _ | Cap.Sgate_cap _
          | Cap.Kernel_cap _ ->
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))))
  | P.Sys_alloc_mem { size; perms } ->
    job t (fun () ->
        if Int64.compare size 0L <= 0 then
          (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))
        else begin
          let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Mem_obj in
          (* Backing store is modelled on the kernel's group tile. *)
          let kind = Cap.Mem_cap { host_pe = t.pe; addr = 0L; size; perms } in
          let sel = create_linked_cap t ~owner:vpe ~kind ~parent:None ~key in
          (Int64.add dispatch (c t).Cost.create_obj, fun () -> finish_syscall t vpe (P.R_sel sel))
        end)
  | P.Sys_derive_mem { sel; offset; size; perms } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe sel) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok parent -> (
          match parent.Cap.kind with
          | Cap.Mem_cap m ->
            if
              Int64.compare offset 0L < 0
              || Int64.compare size 0L <= 0
              || Int64.compare (Int64.add offset size) m.size > 0
              || not (Semper_caps.Perms.subset perms ~of_:m.perms)
            then (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))
            else begin
              let key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Mem_obj in
              let kind =
                Cap.Mem_cap { host_pe = m.host_pe; addr = Int64.add m.addr offset; size; perms }
              in
              let sel' = create_linked_cap t ~owner:vpe ~kind ~parent:(Some parent) ~key in
                  Obs.Registry.incr t.ctr.exchanges_local;
              ( Int64.add (Int64.add dispatch (c t).Cost.exchange_create) (Cost.ddl (c t) 2),
                fun () -> finish_syscall t vpe (P.R_sel sel') )
            end
          | Cap.Vpe_cap _ | Cap.Rgate_cap _ | Cap.Srv_cap _ | Cap.Sess_cap _ | Cap.Sgate_cap _
          | Cap.Kernel_cap _ ->
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))))
  | P.Sys_open_session { service } ->
    job t (fun () ->
        match Hashtbl.find_opt t.directory service with
        | None -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_service))
        | Some srv_key ->
          let srv_kernel = owner_kernel t srv_key in
          let cost = Int64.add dispatch (Cost.ddl (c t) 1) in
          if srv_kernel = t.id then
            ( cost,
              fun () ->
                service_upcall t ~srv_key (P.Srq_open_session { client_vpe = vpe.Vpe.id }) (fun resp ->
                    job t (fun () ->
                        match resp with
                        | P.Srs_session { ident } -> (
                          match Mapdb.find t.mapdb srv_key with
                          | None ->
                            ((c t).Cost.session_open, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_service))
                          | Some srv_cap ->
                            let key =
                              mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Sess_obj
                            in
                            let kind = Cap.Sess_cap { srv = srv_key; ident } in
                            let sel = create_linked_cap t ~owner:vpe ~kind ~parent:(Some srv_cap) ~key in
                                              ( Int64.add (c t).Cost.session_open (Cost.ddl (c t) 1),
                              fun () -> finish_syscall t vpe (P.R_sess { sel; ident }) ))
                        | P.Srs_reject e -> ((c t).Cost.session_open, fun () -> finish_syscall t vpe (P.R_err e))
                        | P.Srs_grant _ | P.Srs_accept ->
                          ((c t).Cost.session_open, fun () -> finish_syscall t vpe (P.R_err P.E_invalid)))) )
          else begin
            (* Cross-group session (Figure 3, sequence B). *)
            let sess_key = mint_key t ~creator_pe:vpe.Vpe.pe ~creator_vpe:vpe.Vpe.id ~kind:Key.Sess_obj in
            let op = fresh_op t in
            Hashtbl.add t.pending_ops op (P_open_sess { client = vpe; sess_key; srv_key; srv_kernel });
            ( Int64.add cost (c t).Cost.session_open,
              fun () ->
                let msg =
                  P.Ik_open_sess_req { op; src_kernel = t.id; srv_key; sess_key; client_vpe = vpe.Vpe.id }
                in
                ikc_send t ~dst:srv_kernel msg;
                register_retry t op ~dst:srv_kernel msg )
          end)
  | P.Sys_obtain { sess; args } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe sess) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok sess_cap -> (
          match sess_cap.Cap.kind with
          | Cap.Sess_cap { srv; ident } ->
            let srv_kernel = owner_kernel t srv in
            let cost = Int64.add dispatch (Cost.ddl (c t) 1) in
            if srv_kernel = t.id then
              ( cost,
                fun () ->
                  let accept k =
                    service_upcall t ~srv_key:srv (P.Srq_obtain { ident; args }) (fun resp ->
                        match resp with
                        | P.Srs_grant { parent; kind } -> k (Ok (parent, kind))
                        | P.Srs_reject e -> k (Error e)
                        | P.Srs_session _ | P.Srs_accept -> k (Error P.E_invalid))
                  in
                  let granted = ref None in
                  local_obtain t ~client:vpe
                    ~accept:(fun k ->
                      accept (fun r ->
                          match r with
                          | Ok g ->
                            granted := Some g;
                            k (Ok ())
                          | Error e -> k (Error e)))
                    ~parent_of_grant:(fun () ->
                      match !granted with
                      | None -> Error P.E_invalid
                      | Some (parent_key, kind) -> (
                        match Mapdb.find t.mapdb parent_key with
                        | None -> Error P.E_no_such_cap
                        | Some p -> Ok (p, kind))) )
            else begin
                  ( Int64.add cost (c t).Cost.exchange_forward,
                fun () ->
                  remote_obtain t ~client:vpe ~dst_kernel:srv_kernel
                    ~donor:(P.Via_session { srv_key = srv; ident; args }) )
            end
          | Cap.Vpe_cap _ | Cap.Mem_cap _ | Cap.Srv_cap _ | Cap.Rgate_cap _ | Cap.Sgate_cap _
          | Cap.Kernel_cap _ ->
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_session))))
  | P.Sys_obtain_from { donor_vpe; donor_sel } ->
    job t (fun () ->
        match t.env.locate_vpe donor_vpe with
        | None -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_vpe))
        | Some donor when not (Vpe.is_alive donor) ->
          (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_vpe_dead))
        | Some donor ->
          if donor.Vpe.kernel = t.id then
            ( dispatch,
              fun () ->
                      local_obtain t ~client:vpe
                  ~accept:(fun k ->
                    vpe_accept_roundtrip t donor (fun accepted ->
                        k (if accepted then Ok () else Error P.E_denied)))
                  ~parent_of_grant:(fun () ->
                    Result.map
                      (fun (cap : Cap.t) -> (cap, cap.Cap.kind))
                      (resolve_sel t donor donor_sel)) )
          else begin
              ( Int64.add (Int64.add dispatch (c t).Cost.exchange_forward) (Cost.ddl (c t) 1),
              fun () ->
                remote_obtain t ~client:vpe ~dst_kernel:donor.Vpe.kernel
                  ~donor:(P.Direct { donor_vpe; donor_sel }) )
          end)
  | P.Sys_delegate_to { recv_vpe; sel } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe sel) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok src_cap -> (
          match t.env.locate_vpe recv_vpe with
          | None -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_vpe))
          | Some recv when not (Vpe.is_alive recv) ->
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_vpe_dead))
          | Some recv ->
              if recv.Vpe.kernel = t.id then
              ( Int64.add dispatch (Cost.ddl (c t) 1),
                fun () -> local_delegate t ~client:vpe ~src_key:src_cap.Cap.key ~recv )
            else begin
              let op = fresh_op t in
              Hashtbl.add t.pending_ops op
                (P_delegate_src { client = vpe; src_key = src_cap.Cap.key; dst_kernel = recv.Vpe.kernel });
              Obs.Registry.incr t.ctr.exchanges_spanning;
              ( Int64.add (Int64.add dispatch (c t).Cost.exchange_forward) (Cost.ddl (c t) 1),
                fun () ->
                  let msg =
                    P.Ik_delegate_req
                      {
                        op;
                        src_kernel = t.id;
                        parent_key = src_cap.Cap.key;
                        kind = src_cap.Cap.kind;
                        recv = P.Recv_vpe recv_vpe;
                      }
                  in
                  ikc_send t ~dst:recv.Vpe.kernel msg;
                  register_retry t op ~dst:recv.Vpe.kernel msg )
            end))
  | P.Sys_delegate { sess; sel; args } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe sess) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok sess_cap -> (
          match sess_cap.Cap.kind with
          | Cap.Sess_cap { srv; ident } -> (
            match Result.bind (resolve_sel t vpe sel) exchangeable with
            | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
            | Ok src_cap ->
              let srv_kernel = owner_kernel t srv in
                  if srv_kernel = t.id then
                ( Int64.add dispatch (Cost.ddl (c t) 1),
                  fun () ->
                    service_upcall t ~srv_key:srv
                      (P.Srq_delegate { ident; args; kind = src_cap.Cap.kind })
                      (fun resp ->
                        match resp with
                        | P.Srs_accept -> (
                          match Key.Table.find_opt t.services_by_key srv with
                          | None -> finish_syscall t vpe (P.R_err P.E_no_such_service)
                          | Some service -> (
                            match t.env.locate_vpe service.srv_vpe with
                            | None -> finish_syscall t vpe (P.R_err P.E_no_such_vpe)
                            | Some recv -> local_delegate t ~client:vpe ~src_key:src_cap.Cap.key ~recv))
                        | P.Srs_reject e -> finish_syscall t vpe (P.R_err e)
                        | P.Srs_session _ | P.Srs_grant _ -> finish_syscall t vpe (P.R_err P.E_invalid)) )
              else begin
                let op = fresh_op t in
                Hashtbl.add t.pending_ops op
                  (P_delegate_src { client = vpe; src_key = src_cap.Cap.key; dst_kernel = srv_kernel });
                Obs.Registry.incr t.ctr.exchanges_spanning;
                ( Int64.add (Int64.add dispatch (c t).Cost.exchange_forward) (Cost.ddl (c t) 1),
                  fun () ->
                    let msg =
                      P.Ik_delegate_req
                        {
                          op;
                          src_kernel = t.id;
                          parent_key = src_cap.Cap.key;
                          kind = src_cap.Cap.kind;
                          recv = P.Recv_service { srv_key = srv; ident; args };
                        }
                    in
                    ikc_send t ~dst:srv_kernel msg;
                    register_retry t op ~dst:srv_kernel msg )
              end)
          | Cap.Vpe_cap _ | Cap.Mem_cap _ | Cap.Srv_cap _ | Cap.Rgate_cap _ | Cap.Sgate_cap _
          | Cap.Kernel_cap _ ->
            (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_no_such_session))))
  | P.Sys_revoke { sel; own } ->
    job t (fun () ->
        match resolve_sel t vpe sel with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok cap -> (
          let spanning =
            Mapdb.exists_child t.mapdb cap.Cap.key (fun k -> not (key_surely_local t k))
          in
          if spanning then Obs.Registry.incr t.ctr.revokes_spanning
          else Obs.Registry.incr t.ctr.revokes_local;
          match cap.Cap.state with
          | Cap.Marked { revoke_op } -> (
            (* Already being revoked: wait for that operation, then
               acknowledge (no incomplete acks, no duplicate work). *)
            match Hashtbl.find_opt t.pending_ops revoke_op with
            | Some (P_revoke other) ->
              ( dispatch,
                fun () ->
                  other.on_complete <- (fun () -> finish_syscall t vpe P.R_ok) :: other.on_complete )
            | Some
                ( P_obtain _ | P_delegate_src _ | P_delegate_dst _ | P_open_sess _ | P_revoke_msg _
                | P_migrate _ | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
            | None ->
              (dispatch, fun () -> finish_syscall t vpe P.R_ok))
          | Cap.Alive ->
            ( Int64.add dispatch (Cost.ddl (c t) 1),
              fun () ->
                start_revoke t ~origin:(Ro_syscall vpe) ~roots:[ cap.Cap.key ] ~own
                  ~base_cost:(c t).Cost.revoke_start )))
  | P.Sys_activate { sel; ep } ->
    job t (fun () ->
        match Result.bind (resolve_sel t vpe sel) exchangeable with
        | Error e -> (dispatch, fun () -> finish_syscall t vpe (P.R_err e))
        | Ok cap ->
          let target = Semper_dtu.Dtu.find t.grid ~pe:vpe.Vpe.pe in
          let by = Semper_dtu.Dtu.find t.grid ~pe:t.pe in
          let config =
            match cap.Cap.kind with
            | Cap.Sgate_cap { target_pe; target_ep; label = _; credits } ->
              Some (`Send (target_pe, target_ep, credits))
            | Cap.Rgate_cap { ep = _; slots } ->
              (* Deliver into the owning VPE's inbox: the app-visible
                 end of the channel. *)
              Some (`Receive (slots, fun msg -> Queue.push msg vpe.Vpe.inbox))
            | Cap.Mem_cap { host_pe; addr; size; perms } ->
              Some (`Memory (host_pe, addr, size, perms.Semper_caps.Perms.write))
            | Cap.Vpe_cap _ | Cap.Srv_cap _ | Cap.Sess_cap _ | Cap.Kernel_cap _ -> None
          in
          (match config with
          | None -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid))
          | Some config -> (
            match Semper_dtu.Dtu.configure_remote ~by target ~ep config with
            | Ok () ->
              (* Remember the binding: revoking the capability must
                 invalidate the endpoint. *)
              Key.Table.replace t.activations cap.Cap.key (vpe.Vpe.pe, ep);
              (Int64.add dispatch (c t).Cost.activate, fun () -> finish_syscall t vpe P.R_ok)
            | Error _ -> (dispatch, fun () -> finish_syscall t vpe (P.R_err P.E_invalid)))))
  | P.Sys_exit ->
    job t (fun () ->
        vpe.Vpe.state <- Vpe.Exited;
        let roots = ref [] in
        Capspace.iter (fun _sel key -> roots := key :: !roots) vpe.Vpe.capspace;
        (* Only roots we host can be revoked here; each capability of a
           VPE is hosted at its managing kernel, so that is all of them. *)
        ( dispatch,
          fun () ->
            start_revoke t ~origin:(Ro_exit vpe) ~roots:!roots ~own:true
              ~base_cost:(c t).Cost.revoke_start ))

(* Local delegate: create the child under the receiver, no handshake
   needed since a single kernel serialises everything. *)
and local_delegate t ~(client : Vpe.t) ~src_key ~(recv : Vpe.t) =
  vpe_accept_roundtrip t recv (fun accepted ->
      job t (fun () ->
          if not accepted then
            ((c t).Cost.exchange_create, fun () -> finish_syscall t client (P.R_err P.E_denied))
          else
            match
              match Mapdb.find t.mapdb src_key with
              | None -> Error P.E_no_such_cap
              | Some cap -> exchangeable cap
            with
            | Error e -> ((c t).Cost.exchange_create, fun () -> finish_syscall t client (P.R_err e))
            | Ok src_cap ->
              if not (Vpe.is_alive recv) then
                ((c t).Cost.exchange_create, fun () -> finish_syscall t client (P.R_err P.E_vpe_dead))
              else begin
                let key =
                  mint_key t ~creator_pe:recv.Vpe.pe ~creator_vpe:recv.Vpe.id
                    ~kind:(Cap.kind_to_key_kind src_cap.Cap.kind)
                in
                let _sel = create_linked_cap t ~owner:recv ~kind:src_cap.Cap.kind ~parent:(Some src_cap) ~key in
                Obs.Registry.incr t.ctr.exchanges_local;
                ( Int64.add (c t).Cost.exchange_create (Cost.ddl (c t) 3),
                  fun () -> finish_syscall t client P.R_ok )
              end))

(* ------------------------------------------------------------------ *)
(* Inter-kernel call handling                                          *)

and deliver_ikc t ~src_kernel (ikc : P.ikc) =
  evict_expired t;
  Obs.Registry.observe t.ctr.queue_depth (float_of_int (Server.queue_length t.server));
  Obs.Registry.incr t.ctr.ikc_received;
  trace_event t ~kind:"ikc_recv" ~op:(ikc_op ikc) ~src:src_kernel ~dst:t.id
    ~detail:(P.ikc_name ikc) ();
  match ikc with
  | P.Ik_obtain_req { op; src_kernel = origin; obj_reserved; client_pe; client_vpe; donor } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      Thread_pool.acquire t.threads (fun () ->
          job t (fun () ->
              let cost = Int64.add (c t).Cost.exchange_remote (Cost.ddl (c t) 2) in
              ( cost,
                fun () ->
                  return_credit t ~src_kernel;
                  handle_obtain_req t ~origin ~op ~obj_reserved ~client_pe ~client_vpe ~donor )))
  | P.Ik_obtain_reply { op; result } ->
    job t (fun () ->
        let cost = Int64.add (c t).Cost.exchange_create (Cost.ddl (c t) 2) in
        ( cost,
          fun () ->
            return_credit t ~src_kernel;
            handle_obtain_reply t ~op ~result ))
  | P.Ik_delegate_req { op; src_kernel = origin; parent_key; kind; recv } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      Thread_pool.acquire t.threads (fun () ->
          job t (fun () ->
              let cost = Int64.add (c t).Cost.exchange_remote (Cost.ddl (c t) 1) in
              ( cost,
                fun () ->
                  return_credit t ~src_kernel;
                  handle_delegate_req t ~origin ~op ~parent_key ~kind ~recv )))
  | P.Ik_delegate_reply { op; result } ->
    job t (fun () ->
        let cost = Int64.add (c t).Cost.exchange_create (Cost.ddl (c t) 2) in
        ( cost,
          fun () ->
            return_credit t ~src_kernel;
            handle_delegate_reply t ~op ~result ))
  | P.Ik_delegate_ack { op; child_key; commit } ->
    job t (fun () ->
        ( Cost.ddl (c t) 1,
          fun () ->
            return_credit t ~src_kernel;
            handle_delegate_ack t ~op ~child_key ~commit ))
  | P.Ik_open_sess_req { op; src_kernel = origin; srv_key; sess_key; client_vpe } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      Thread_pool.acquire t.threads (fun () ->
          job t (fun () ->
              ( (c t).Cost.session_open,
                fun () ->
                  return_credit t ~src_kernel;
                  handle_open_sess_req t ~origin ~op ~srv_key ~sess_key ~client_vpe )))
  | P.Ik_open_sess_reply { op; result } ->
    job t (fun () ->
        ( Int64.add (c t).Cost.session_open (Cost.ddl (c t) 1),
          fun () ->
            return_credit t ~src_kernel;
            handle_open_sess_reply t ~op ~result ))
  | P.Ik_revoke_req { op; src_kernel = origin; keys } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      (* Handled without pausing a thread (Algorithm 1). *)
      return_credit_after_dispatch t ~src_kernel (fun () ->
        let base_cost =
          if Cost.broadcast (c t) then
            (* No explicit relations: scan the whole mapping database. *)
            Int64.add (c t).Cost.revoke_request
              (Int64.mul (Int64.of_int (Mapdb.count t.mapdb)) (c t).Cost.revoke_scan_per_cap)
          else (c t).Cost.revoke_request
        in
        start_revoke t ~origin:(Ro_remote (origin, op)) ~roots:keys ~own:true ~base_cost)
  | P.Ik_revoke_reply { op; keys = _; cont } ->
    job t (fun () ->
        ( (c t).Cost.revoke_reply,
          fun () ->
            return_credit t ~src_kernel;
            (match Hashtbl.find_opt t.pending_ops op with
            | Some (P_revoke_msg { rop }) ->
              Hashtbl.remove t.pending_ops op;
              clear_retry t op;
              (* Absorb handed-back subtree roots before releasing the
                 outstanding unit, so the operation cannot complete
                 with the continuation still pending. *)
              if cont <> [] then absorb_continuation t rop cont;
              revoke_release t rop
            | Some (P_revoke rop) -> revoke_release t rop
            | Some
                ( P_obtain _ | P_delegate_src _ | P_delegate_dst _ | P_open_sess _ | P_migrate _
                | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
            | None ->
              (* Redelivered reply for a message op already retired. *)
              Obs.Registry.incr t.ctr.dup_ikc) ))
  | P.Ik_remove_child { op; parent_key; child_key } ->
    job t (fun () ->
        ( Cost.ddl (c t) 2,
          fun () ->
            (* Idempotent notification: a redelivery re-runs the unlink
               (a no-op on an already-pruned parent), and the delivery
               ack piggybacks on the credit return to stop the sender's
               retransmission timer. *)
            return_credit t ~ack_op:op ~src_kernel;
            Mapdb.remove_child t.mapdb ~parent:parent_key child_key ))
  | P.Ik_migrate_update { op; src_kernel = origin; pe; new_kernel } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      job t (fun () ->
          ( 200L,
            fun () ->
              return_credit t ~src_kernel;
              (* Update this kernel's replica of the membership table. The
                 destination kernel marks the PE mid-handoff instead of
                 reassigning: it must not route lookups to itself until the
                 capability records actually arrive (Ik_migrate_caps). The
                 guards keep a redelivered update idempotent. *)
              if new_kernel = t.id then begin
                if
                  (not (Membership.in_handoff t.membership pe))
                  && (try Membership.kernel_of_pe t.membership pe <> t.id
                      with Not_found -> false)
                then Membership.begin_handoff t.membership ~pe
              end
              else if Membership.in_handoff t.membership pe then
                Membership.complete_handoff t.membership ~pe ~kernel:new_kernel
              else Membership.reassign t.membership ~pe ~kernel:new_kernel;
              finish_remote t ~op ~dst:origin (P.Ik_migrate_ack { op }) ))
  | P.Ik_migrate_ack { op } ->
    job t (fun () ->
        ( 100L,
          fun () ->
            return_credit t ~src_kernel;
            (match Hashtbl.find_opt t.pending_ops op with
            | Some (P_migrate m) ->
              (* Acks are deduplicated by sender: a redelivered ack from
                 an already-counted peer must not skip a pending one. *)
              if Hashtbl.mem m.pending_peers src_kernel then begin
                Hashtbl.remove m.pending_peers src_kernel;
                if Hashtbl.length m.pending_peers = 0 then begin
                  Hashtbl.remove t.pending_ops op;
                  Option.iter (Engine.cancel t.engine) m.mtimer;
                  m.mtimer <- None;
                  migrate_transfer t ~vpe:m.m_vpe ~dst:m.m_dst ~done_k:m.done_k
                end
              end
              else Obs.Registry.incr t.ctr.dup_ikc
            | Some (P_migrate_caps { mc_done; _ }) ->
              (* The destination installed the transferred records. *)
              Hashtbl.remove t.pending_ops op;
              clear_retry t op;
              mc_done ()
            | Some (P_fleet f) ->
              (* Lifecycle broadcast: same ack-counting discipline as a
                 migrate-update broadcast. *)
              if Hashtbl.mem f.f_peers src_kernel then begin
                Hashtbl.remove f.f_peers src_kernel;
                if Hashtbl.length f.f_peers = 0 then begin
                  Hashtbl.remove t.pending_ops op;
                  Option.iter (Engine.cancel t.engine) f.f_timer;
                  f.f_timer <- None;
                  f.f_done ()
                end
              end
              else Obs.Registry.incr t.ctr.dup_ikc
            | Some (P_part p) ->
              (* Bulk partition-update broadcast: once every replica has
                 flipped (or marked mid-handoff), ship the records. *)
              if Hashtbl.mem p.p_peers src_kernel then begin
                Hashtbl.remove p.p_peers src_kernel;
                if Hashtbl.length p.p_peers = 0 then begin
                  Hashtbl.remove t.pending_ops op;
                  Option.iter (Engine.cancel t.engine) p.p_timer;
                  p.p_timer <- None;
                  part_transfer t ~pes:p.p_pes ~vpes:p.p_vpes ~dst:p.p_dst ~done_k:p.p_done
                end
              end
              else Obs.Registry.incr t.ctr.dup_ikc
            | Some (P_part_caps { pc_done; _ }) ->
              (* The destination installed the partition wave. *)
              Hashtbl.remove t.pending_ops op;
              clear_retry t op;
              pc_done ()
            | Some
                ( P_obtain _ | P_delegate_src _ | P_delegate_dst _ | P_open_sess _ | P_revoke _
                | P_revoke_msg _ )
            | None ->
              (* Redelivered ack after the migration completed. *)
              Obs.Registry.incr t.ctr.dup_ikc) ))
  | P.Ik_migrate_caps { op; src_kernel = origin; vpe = vid; records } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      job t (fun () ->
          (* Installing the transferred records costs time proportional to
             their number. *)
          ( Int64.mul (Int64.of_int (List.length records)) 150L,
            fun () ->
              return_credit t ~src_kernel;
              List.iter
                (fun (r : P.migrated_cap) ->
                  let cap =
                    Cap.make ~key:r.P.m_key ~kind:r.P.m_kind ~owner_vpe:r.P.m_owner
                      ?parent:r.P.m_parent ()
                  in
                  (* Future keys minted here must not collide with object
                     ids allocated by the previous owning kernel. *)
                  Mapdb.bump_obj t.mapdb (Key.obj r.P.m_key);
                  Mapdb.insert t.mapdb cap;
                  Mapdb.set_children t.mapdb r.P.m_key r.P.m_children)
                records;
              (* The VPE is ours now. *)
              (match t.env.locate_vpe vid with
              | Some vpe ->
                Hashtbl.replace t.vpes vid vpe;
                Thread_pool.add_vpe_thread t.threads;
                (* Only now can lookups route to this kernel: clear the
                   mid-handoff mark set when the membership update arrived.
                   (Tests deliver this IKC directly, without a preceding
                   update, so fall back to a plain reassign.) *)
                (if Membership.in_handoff t.membership vpe.Vpe.pe then
                   Membership.complete_handoff t.membership ~pe:vpe.Vpe.pe ~kernel:t.id
                 else if
                   try Membership.kernel_of_pe t.membership vpe.Vpe.pe <> t.id
                   with Not_found -> true
                 then Membership.reassign t.membership ~pe:vpe.Vpe.pe ~kernel:t.id);
                vpe.Vpe.frozen <- false (* unfreeze *)
              | None -> Log.err (fun m -> m "kernel %d: migrated VPE %d unknown" t.id vid));
              finish_remote t ~op ~dst:origin (P.Ik_migrate_ack { op }) ))
  | P.Ik_srv_announce { op; name; srv_key; kernel = _ } ->
    job t (fun () ->
        ( 100L,
          fun () ->
            (* Idempotent directory write; the ack rides the credit
               return so the announcing kernel stops retransmitting.
               Before this the announce was fire-and-forget: one drop
               and every open_sess routed here failed forever. *)
            return_credit t ~ack_op:op ~src_kernel;
            Hashtbl.replace t.directory name srv_key ))
  | P.Ik_fleet_state { op; src_kernel = origin; kernel; state } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      job t (fun () ->
          ( 100L,
            fun () ->
              return_credit t ~src_kernel;
              (* Idempotent replica write: redeliveries re-record the same
                 state. *)
              Membership.set_kernel_state t.membership ~kernel state;
              finish_remote t ~op ~dst:origin (P.Ik_migrate_ack { op }) ))
  | P.Ik_part_update { op; src_kernel = origin; pes; new_kernel } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      job t (fun () ->
          ( Int64.mul (Int64.of_int (max 1 (List.length pes))) 200L,
            fun () ->
              return_credit t ~src_kernel;
              (if new_kernel = t.id then
                 (* Destination of the handoff: mark every PE mid-handoff
                    instead of reassigning — lookups must not route here
                    until the records actually arrive (Ik_part_records).
                    The guards keep a redelivered update idempotent. *)
                 List.iter
                   (fun pe ->
                     if
                       (not (Membership.in_handoff t.membership pe))
                       && (try Membership.kernel_of_pe t.membership pe <> t.id
                           with Not_found -> false)
                     then Membership.begin_handoff t.membership ~pe)
                   pes
               else begin
                 (* Bystander replica: any PE this replica still holds
                    mid-handoff (it was the destination of an earlier
                    move) completes to the new owner; the rest flip as
                    one atomic bulk reassignment. *)
                 let marked, unmarked =
                   List.partition (fun pe -> Membership.in_handoff t.membership pe) pes
                 in
                 List.iter
                   (fun pe -> Membership.complete_handoff t.membership ~pe ~kernel:new_kernel)
                   marked;
                 Membership.reassign_partition t.membership ~pes:unmarked ~kernel:new_kernel
               end);
              finish_remote t ~op ~dst:origin (P.Ik_migrate_ack { op }) ))
  | P.Ik_part_records { op; src_kernel = origin; pes; vpes = vids; records } ->
    if remote_dup t ~src_kernel ~op then ()
    else
      job t (fun () ->
          (* Installing the wave costs time proportional to the records
             carried, like a migrate_caps install. *)
          ( Int64.mul (Int64.of_int (max 1 (List.length records))) 150L,
            fun () ->
              return_credit t ~src_kernel;
              List.iter
                (fun (r : P.migrated_cap) ->
                  let cap =
                    Cap.make ~key:r.P.m_key ~kind:r.P.m_kind ~owner_vpe:r.P.m_owner
                      ?parent:r.P.m_parent ()
                  in
                  (* Future keys minted here must not collide with object
                     ids allocated by the previous owning kernel. *)
                  Mapdb.bump_obj t.mapdb (Key.obj r.P.m_key);
                  Mapdb.insert t.mapdb cap;
                  Mapdb.set_children t.mapdb r.P.m_key r.P.m_children)
                records;
              (* The partitions' VPEs are ours now. *)
              List.iter
                (fun vid ->
                  match t.env.locate_vpe vid with
                  | Some vpe ->
                    Hashtbl.replace t.vpes vid vpe;
                    Thread_pool.add_vpe_thread t.threads;
                    vpe.Vpe.frozen <- false
                  | None -> Log.err (fun m -> m "kernel %d: handed-off VPE %d unknown" t.id vid))
                vids;
              (* Only now can lookups route here: end every PE's handoff
                 window (fall back to a plain reassign when a test ships
                 the wave without a preceding update). *)
              List.iter
                (fun pe ->
                  if Membership.in_handoff t.membership pe then
                    Membership.complete_handoff t.membership ~pe ~kernel:t.id
                  else if
                    try Membership.kernel_of_pe t.membership pe <> t.id with Not_found -> true
                  then Membership.reassign t.membership ~pe ~kernel:t.id)
                pes;
              finish_remote t ~op ~dst:origin (P.Ik_migrate_ack { op }) ))
  | P.Ik_shutdown { src_kernel = origin } ->
    job t (fun () ->
        ( 100L,
          fun () ->
            return_credit t ~src_kernel;
            Log.debug (fun m -> m "kernel %d: shutdown notice from %d" t.id origin) ))
  | P.Ik_batch { src_kernel = _; msgs } ->
    (* The frame consumed ONE sender credit, yet each inner delivery
       returns one: record the surplus so [return_credit] absorbs all
       but one return per frame (their piggybacked acks ride the credit
       message that does go out). *)
    let o =
      match Hashtbl.find_opt t.batch_owed src_kernel with
      | Some o -> o
      | None ->
        let o = { o_left = 0; o_acks = [] } in
        Hashtbl.add t.batch_owed src_kernel o;
        o
    in
    o.o_left <- o.o_left + (List.length msgs - 1);
    List.iter (fun m -> deliver_ikc t ~src_kernel m) msgs

(* Revoke requests return their credit right after the (cost-bearing)
   dispatch; the marking job itself carries the real cost. *)
and return_credit_after_dispatch t ~src_kernel k =
  return_credit t ~src_kernel;
  k ()

and handle_obtain_req t ~origin ~op ~obj_reserved ~client_pe ~client_vpe ~donor =
  let reply result =
    Thread_pool.release t.threads;
    finish_remote t ~op ~dst:origin (P.Ik_obtain_reply { op; result })
  in
  let grant ~parent_key ~kind =
    job t (fun () ->
        match Mapdb.find t.mapdb parent_key with
        | None -> (Cost.ddl (c t) 1, fun () -> reply (Error P.E_no_such_cap))
        | Some parent ->
          if Cap.is_marked parent then (Cost.ddl (c t) 1, fun () -> reply (Error P.E_in_revocation))
          else begin
            let child_key =
              Key.make ~pe:client_pe ~vpe:client_vpe ~kind:(Cap.kind_to_key_kind kind) ~obj:obj_reserved
            in
            Mapdb.add_child t.mapdb ~parent:parent.Cap.key child_key;
            Obs.Registry.incr t.ctr.exchanges_spanning;
            (Cost.ddl (c t) 1, fun () -> reply (Ok (child_key, kind, parent_key)))
          end)
  in
  match donor with
  | P.Direct { donor_vpe; donor_sel } -> (
    match t.env.locate_vpe donor_vpe with
    | None -> reply (Error P.E_no_such_vpe)
    | Some donor_v when donor_v.Vpe.kernel <> t.id -> reply (Error P.E_no_such_vpe)
    | Some donor_v when not (Vpe.is_alive donor_v) -> reply (Error P.E_vpe_dead)
    | Some donor_v -> (
      match Result.bind (resolve_sel t donor_v donor_sel) exchangeable with
      | Error e -> reply (Error e)
      | Ok donor_cap ->
        vpe_accept_roundtrip t donor_v (fun accepted ->
            if not accepted then reply (Error P.E_denied)
            else grant ~parent_key:donor_cap.Cap.key ~kind:donor_cap.Cap.kind)))
  | P.Via_session { srv_key; ident; args } ->
    service_upcall t ~srv_key (P.Srq_obtain { ident; args }) (fun resp ->
        match resp with
        | P.Srs_grant { parent; kind } -> grant ~parent_key:parent ~kind
        | P.Srs_reject e -> reply (Error e)
        | P.Srs_session _ | P.Srs_accept -> reply (Error P.E_invalid))

and handle_obtain_reply t ~op ~result =
  match Hashtbl.find_opt t.pending_ops op with
  | Some (P_obtain { client }) -> (
    Hashtbl.remove t.pending_ops op;
    clear_retry t op;
    match result with
    | Error e -> finish_syscall t client (P.R_err e)
    | Ok (child_key, kind, parent_key) ->
      if not (Vpe.is_alive client) then begin
        (* Orphaned child at the donor side (paper §4.3.2, "Orphaned"):
           notify the donor's kernel so it can unlink promptly. *)
        let unlink_op = fresh_op t in
        let msg = P.Ik_remove_child { op = unlink_op; parent_key; child_key } in
        let dst = owner_kernel t parent_key in
        ikc_send t ~dst msg;
        register_retry t unlink_op ~dst msg;
        Thread_pool.release t.threads
      end
      else begin
        let cap = Cap.make ~key:child_key ~kind ~owner_vpe:client.Vpe.id ~parent:parent_key () in
        Mapdb.insert t.mapdb cap;
        Obs.Registry.incr t.ctr.caps_created;
        let sel = Capspace.insert client.Vpe.capspace child_key in
        finish_syscall t client (P.R_sel sel)
      end)
  | Some
      ( P_delegate_src _ | P_delegate_dst _ | P_open_sess _ | P_revoke _ | P_revoke_msg _
      | P_migrate _ | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
  | None ->
    (* Redelivered reply: the obtain already completed. *)
    Obs.Registry.incr t.ctr.dup_ikc;
    Log.debug (fun m -> m "kernel %d: duplicate obtain reply for op %d" t.id op)

and handle_delegate_req t ~origin ~op ~parent_key ~kind ~recv =
  let reply result =
    (* The thread stays held until the ack: the two-way handshake is the
       paper's fix for the "Invalid" anomaly. A committed reply is also
       retransmitted until the ack arrives, covering a lost ack (the
       source re-sends its cached ack on seeing the duplicate reply). *)
    let msg = P.Ik_delegate_reply { op; result } in
    (match result with
    | Ok _ -> register_retry t op ~dst:origin msg
    | Error _ -> ());
    finish_remote t ~op ~dst:origin msg
  in
  let proceed (recv_v : Vpe.t) =
    job t (fun () ->
        if not (Vpe.is_alive recv_v) then (0L, fun () -> Thread_pool.release t.threads; reply (Error P.E_vpe_dead))
        else begin
          let child_key =
            mint_key t ~creator_pe:recv_v.Vpe.pe ~creator_vpe:recv_v.Vpe.id
              ~kind:(Cap.kind_to_key_kind kind)
          in
          (* Created but *not* yet inserted into the receiver's cap
             space: that happens on the ack. *)
          let cap = Cap.make ~key:child_key ~kind ~owner_vpe:recv_v.Vpe.id ~parent:parent_key () in
          Mapdb.insert t.mapdb cap;
          Hashtbl.add t.pending_ops op
            (P_delegate_dst { child_key; recv_vpe = recv_v.Vpe.id; src_kernel = origin });
          Obs.Registry.incr t.ctr.exchanges_spanning;
          (Cost.ddl (c t) 2, fun () -> reply (Ok child_key))
        end)
  in
  match recv with
  | P.Recv_vpe recv_vpe -> (
    match t.env.locate_vpe recv_vpe with
    | None -> Thread_pool.release t.threads; reply (Error P.E_no_such_vpe)
    | Some recv_v when recv_v.Vpe.kernel <> t.id -> Thread_pool.release t.threads; reply (Error P.E_no_such_vpe)
    | Some recv_v when not (Vpe.is_alive recv_v) -> Thread_pool.release t.threads; reply (Error P.E_vpe_dead)
    | Some recv_v ->
      vpe_accept_roundtrip t recv_v (fun accepted ->
          if not accepted then begin
            Thread_pool.release t.threads;
            reply (Error P.E_denied)
          end
          else proceed recv_v))
  | P.Recv_service { srv_key; ident; args } ->
    service_upcall t ~srv_key (P.Srq_delegate { ident; args; kind }) (fun resp ->
        match resp with
        | P.Srs_accept -> (
          match Key.Table.find_opt t.services_by_key srv_key with
          | None -> Thread_pool.release t.threads; reply (Error P.E_no_such_service)
          | Some service -> (
            match t.env.locate_vpe service.srv_vpe with
            | None -> Thread_pool.release t.threads; reply (Error P.E_no_such_vpe)
            | Some recv_v -> proceed recv_v))
        | P.Srs_reject e -> Thread_pool.release t.threads; reply (Error e)
        | P.Srs_session _ | P.Srs_grant _ -> Thread_pool.release t.threads; reply (Error P.E_invalid))

and handle_delegate_reply t ~op ~result =
  match Hashtbl.find_opt t.pending_ops op with
  | Some (P_delegate_src { client; src_key; dst_kernel }) -> (
    Hashtbl.remove t.pending_ops op;
    clear_retry t op;
    let send_ack commit child_key =
      let ack = P.Ik_delegate_ack { op; child_key; commit } in
      (* Cache the ack: a redelivered reply means the destination is
         still waiting, so the ack may have been lost and is re-sent. *)
      Hashtbl.replace t.completed_acks op (dst_kernel, ack);
      Queue.push (Int64.add (Engine.now t.engine) (retention t), Ev_ack op) t.evictions;
      ikc_send t ~dst:dst_kernel ack
    in
    match result with
    | Error e -> finish_syscall t client (P.R_err e)
    | Ok child_key -> (
      match Mapdb.find t.mapdb src_key with
      | Some src_cap when not (Cap.is_marked src_cap) ->
        Mapdb.add_child t.mapdb ~parent:src_cap.Cap.key child_key;
        send_ack true child_key;
        finish_syscall t client P.R_ok
      | Some _ | None ->
        (* The delegated capability was revoked while the handshake was
           in flight: abort so the receiver never gains unjustified
           access (paper §4.3.2, "Invalid"). *)
        send_ack false child_key;
        finish_syscall t client (P.R_err P.E_in_revocation)))
  | Some
      ( P_obtain _ | P_delegate_dst _ | P_open_sess _ | P_revoke _ | P_revoke_msg _ | P_migrate _
      | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
  | None -> (
    (* Redelivered reply after the handshake completed here: re-send
       the cached ack in case the original ack was lost. *)
    match Hashtbl.find_opt t.completed_acks op with
    | Some (dst, ack) ->
      Obs.Registry.incr t.ctr.dup_ikc;
      receive_credit t ~peer:dst;
      ikc_send t ~dst ack
    | None ->
      Obs.Registry.incr t.ctr.dup_ikc;
      Log.debug (fun m -> m "kernel %d: duplicate delegate reply for op %d" t.id op))

and handle_delegate_ack t ~op ~child_key ~commit =
  match Hashtbl.find_opt t.pending_ops op with
  | Some (P_delegate_dst { child_key = ck; recv_vpe; src_kernel }) -> (
    Hashtbl.remove t.pending_ops op;
    (* Stop retransmitting the reply; the handshake is over. *)
    clear_retry t op;
    assert (Key.equal ck child_key);
    (match Mapdb.find t.mapdb child_key with
    | None -> () (* revoked in the meantime; nothing to do *)
    | Some cap ->
      if not commit then begin
        Mapdb.remove t.mapdb child_key;
        Obs.Registry.incr t.ctr.caps_deleted
      end
      else begin
        match t.env.locate_vpe recv_vpe with
        | Some recv when Vpe.is_alive recv ->
          ignore (Capspace.insert recv.Vpe.capspace child_key);
          Obs.Registry.incr t.ctr.caps_created
        | Some _ | None -> (
          (* Receiver died while waiting for the ack: orphan; drop the
             record and tell the source kernel to unlink. *)
          Mapdb.remove t.mapdb child_key;
          Obs.Registry.incr t.ctr.caps_deleted;
          match cap.Cap.parent with
          | Some parent_key ->
            let unlink_op = fresh_op t in
            let msg = P.Ik_remove_child { op = unlink_op; parent_key; child_key } in
            ikc_send t ~dst:src_kernel msg;
            register_retry t unlink_op ~dst:src_kernel msg
          | None -> ())
      end);
    (* Handshake over: release the thread held since the request. *)
    Thread_pool.release t.threads)
  | Some
      ( P_obtain _ | P_delegate_src _ | P_open_sess _ | P_revoke _ | P_revoke_msg _ | P_migrate _
      | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
  | None ->
    (* Redelivered ack: the handshake already completed and its thread
       was already released — releasing again would corrupt the pool. *)
    Obs.Registry.incr t.ctr.dup_ikc

and handle_open_sess_req t ~origin ~op ~srv_key ~sess_key ~client_vpe =
  let reply result =
    Thread_pool.release t.threads;
    finish_remote t ~op ~dst:origin (P.Ik_open_sess_reply { op; result })
  in
  match Mapdb.find t.mapdb srv_key with
  | None -> reply (Error P.E_no_such_service)
  | Some srv_cap when Cap.is_marked srv_cap -> reply (Error P.E_in_revocation)
  | Some srv_cap ->
    service_upcall t ~srv_key (P.Srq_open_session { client_vpe }) (fun resp ->
        match resp with
        | P.Srs_session { ident } ->
          job t (fun () ->
              match Mapdb.find t.mapdb srv_cap.Cap.key with
              | Some srv_cap when not (Cap.is_marked srv_cap) ->
                Mapdb.add_child t.mapdb ~parent:srv_cap.Cap.key sess_key;
                (Cost.ddl (c t) 1, fun () -> reply (Ok ident))
              | Some _ | None -> (Cost.ddl (c t) 1, fun () -> reply (Error P.E_in_revocation)))
        | P.Srs_reject e -> reply (Error e)
        | P.Srs_grant _ | P.Srs_accept -> reply (Error P.E_invalid))

and handle_open_sess_reply t ~op ~result =
  match Hashtbl.find_opt t.pending_ops op with
  | Some (P_open_sess { client; sess_key; srv_key; srv_kernel }) -> (
    Hashtbl.remove t.pending_ops op;
    clear_retry t op;
    match result with
    | Error e -> finish_syscall t client (P.R_err e)
    | Ok ident ->
      if not (Vpe.is_alive client) then begin
        let unlink_op = fresh_op t in
        let msg = P.Ik_remove_child { op = unlink_op; parent_key = srv_key; child_key = sess_key } in
        ikc_send t ~dst:srv_kernel msg;
        register_retry t unlink_op ~dst:srv_kernel msg;
        Thread_pool.release t.threads
      end
      else begin
        let kind = Cap.Sess_cap { srv = srv_key; ident } in
        let cap = Cap.make ~key:sess_key ~kind ~owner_vpe:client.Vpe.id ~parent:srv_key () in
        Mapdb.insert t.mapdb cap;
        Obs.Registry.incr t.ctr.caps_created;
        let sel = Capspace.insert client.Vpe.capspace sess_key in
        finish_syscall t client (P.R_sess { sel; ident })
      end)
  | Some
      ( P_obtain _ | P_delegate_src _ | P_delegate_dst _ | P_revoke _ | P_revoke_msg _
      | P_migrate _ | P_migrate_caps _ | P_fleet _ | P_part _ | P_part_caps _ )
  | None ->
    (* Redelivered reply: the session open already completed. *)
    Obs.Registry.incr t.ctr.dup_ikc;
    Log.debug (fun m -> m "kernel %d: duplicate open-session reply for op %d" t.id op)

(* Phase 2 of PE migration: hand the capability records and the VPE
   over to the destination kernel. *)
and migrate_transfer t ~(vpe : Vpe.t) ~dst ~done_k =
  job t (fun () ->
      (* Extract every capability whose key partition is the migrating
         PE: with the hosting invariant those are exactly the VPE's. *)
      let records =
        List.map
          (fun (cap : Cap.t) ->
            {
              P.m_key = cap.Cap.key;
              m_kind = cap.Cap.kind;
              m_owner = cap.Cap.owner_vpe;
              m_parent = cap.Cap.parent;
              m_children = Mapdb.children t.mapdb cap.Cap.key;
            })
          (Mapdb.caps_of_pe t.mapdb ~pe:vpe.Vpe.pe)
      in
      List.iter (fun (r : P.migrated_cap) -> Mapdb.remove t.mapdb r.P.m_key) records;
      Hashtbl.remove t.vpes vpe.Vpe.id;
      Thread_pool.remove_vpe_thread t.threads;
      vpe.Vpe.kernel <- dst;
      (* The records are gone from this kernel: our own replica may now
         route the PE to its new owner. *)
      Membership.complete_handoff t.membership ~pe:vpe.Vpe.pe ~kernel:dst;
      ( Int64.mul (Int64.of_int (List.length records)) 150L,
        fun () ->
          trace_event t ~kind:"migrate_transfer" ~src:t.id ~dst
            ~detail:(Printf.sprintf "vpe%d caps=%d" vpe.Vpe.id (List.length records)) ();
          let op = fresh_op t in
          Hashtbl.add t.pending_ops op (P_migrate_caps { mc_vpe = vpe; mc_done = done_k });
          let msg = P.Ik_migrate_caps { op; src_kernel = t.id; vpe = vpe.Vpe.id; records } in
          ikc_send t ~dst msg;
          (* The transfer is retransmitted until the destination acks the
             install — a lost Ik_migrate_caps would otherwise leak every
             record of the VPE. [done_k] fires on that ack. *)
          register_retry t op ~dst msg ))

(* Phase 2 of a bulk partition handoff: extract every record of the
   moving partitions, detach their VPEs, and ship the whole set to the
   destination as one framed record wave. *)
and part_transfer t ~pes ~(vpes : Vpe.t list) ~dst ~done_k =
  job t (fun () ->
      let records =
        List.concat_map
          (fun pe ->
            List.map
              (fun (cap : Cap.t) ->
                {
                  P.m_key = cap.Cap.key;
                  m_kind = cap.Cap.kind;
                  m_owner = cap.Cap.owner_vpe;
                  m_parent = cap.Cap.parent;
                  m_children = Mapdb.children t.mapdb cap.Cap.key;
                })
              (Mapdb.caps_of_pe t.mapdb ~pe))
          pes
      in
      List.iter (fun (r : P.migrated_cap) -> Mapdb.remove t.mapdb r.P.m_key) records;
      List.iter
        (fun (vpe : Vpe.t) ->
          Hashtbl.remove t.vpes vpe.Vpe.id;
          Thread_pool.remove_vpe_thread t.threads;
          vpe.Vpe.kernel <- dst)
        vpes;
      (* The records are gone from this kernel: our own replica may now
         route the partitions to their new owner. *)
      List.iter (fun pe -> Membership.complete_handoff t.membership ~pe ~kernel:dst) pes;
      ( Int64.mul (Int64.of_int (max 1 (List.length records))) 150L,
        fun () ->
          trace_event t ~kind:"part_transfer" ~src:t.id ~dst
            ~detail:
              (Printf.sprintf "pes=%d vpes=%d caps=%d" (List.length pes) (List.length vpes)
                 (List.length records))
            ();
          let op = fresh_op t in
          Hashtbl.add t.pending_ops op (P_part_caps { pc_vpes = vpes; pc_done = done_k });
          let msg =
            P.Ik_part_records
              {
                op;
                src_kernel = t.id;
                pes;
                vpes = List.map (fun (v : Vpe.t) -> v.Vpe.id) vpes;
                records;
              }
          in
          ikc_send t ~dst msg;
          register_retry t op ~dst msg ))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let syscall t ~vpe call k =
  if not (Vpe.is_alive vpe) then Engine.after t.engine 0L (fun () -> k (P.R_err P.E_vpe_dead))
  else if vpe.Vpe.syscall_pending then Engine.after t.engine 0L (fun () -> k (P.R_err P.E_busy))
  else begin
    evict_expired t;
    Obs.Registry.observe t.ctr.queue_depth (float_of_int (Server.queue_length t.server));
    vpe.Vpe.syscall_pending <- true;
    vpe.Vpe.reply_k <- Some k;
    vpe.Vpe.syscall_name <- P.syscall_name call;
    vpe.Vpe.syscall_start <- Engine.now t.engine;
    vpe.Vpe.span <- fresh_op t;
    Obs.Registry.incr t.ctr.syscalls;
    trace_event t ~kind:"syscall_enter" ~op:vpe.Vpe.span ~src:t.id ~dst:vpe.Vpe.id
      ~detail:vpe.Vpe.syscall_name ();
    Fabric.send t.fabric ~src:vpe.Vpe.pe ~dst:t.pe ~bytes:(c t).Cost.syscall_bytes (fun () ->
        Thread_pool.acquire t.threads (fun () -> handle_syscall t vpe call))
  end

let deliver_ikc = deliver_ikc

let install_cap t cap =
  match t.env.locate_vpe cap.Cap.owner_vpe with
  | None -> invalid_arg "Kernel.install_cap: unknown owner VPE"
  | Some owner ->
    Mapdb.insert t.mapdb cap;
    (match cap.Cap.parent with
    | Some pk when is_local_key t pk ->
      if Mapdb.mem t.mapdb pk && not (Mapdb.has_child t.mapdb ~parent:pk cap.Cap.key) then
        Mapdb.add_child t.mapdb ~parent:pk cap.Cap.key
    | Some _ | None -> ());
    Obs.Registry.incr t.ctr.caps_created;
    Capspace.insert owner.Vpe.capspace cap.Cap.key

let install_new_cap t ~owner ~kind ?parent () =
  let key =
    mint_key t ~creator_pe:owner.Vpe.pe ~creator_vpe:owner.Vpe.id ~kind:(Cap.kind_to_key_kind kind)
  in
  let cap = Cap.make ~key ~kind ~owner_vpe:owner.Vpe.id ?parent () in
  let sel = install_cap t cap in
  (sel, key)

(* PE migration (the paper's named future work, §3.2). The system must
   be quiescent with respect to this VPE: no in-flight operations may
   reference its capabilities. Phase 1 freezes the VPE and broadcasts
   the membership update to every kernel; once all acks are in, phase 2
   transfers the capability records. *)
let migrate_vpe t ~(vpe : Vpe.t) ~dst done_k =
  if dst = t.id then invalid_arg "Kernel.migrate_vpe: already managed here";
  if not (Hashtbl.mem t.registry dst) then invalid_arg "Kernel.migrate_vpe: no such kernel";
  (* Safety gate: never migrate onto a kernel that is not (or no
     longer) serving — a mid-leave destination would strand the VPE. *)
  if Membership.kernel_state t.membership dst <> Membership.Active then
    invalid_arg "Kernel.migrate_vpe: destination kernel is not active";
  if not (Vpe.is_alive vpe) then invalid_arg "Kernel.migrate_vpe: VPE is dead";
  if vpe.Vpe.syscall_pending then invalid_arg "Kernel.migrate_vpe: VPE has a syscall in flight";
  if vpe.Vpe.frozen then invalid_arg "Kernel.migrate_vpe: VPE is already migrating";
  (* Freeze: syscalls are held at System level while records are in
     flight. The source replica marks the PE mid-handoff rather than
     reassigning — lookups that race the transfer fail loudly instead of
     misrouting (the records are still here until [migrate_transfer]). *)
  vpe.Vpe.frozen <- true;
  Membership.begin_handoff t.membership ~pe:vpe.Vpe.pe;
  trace_event t ~kind:"migrate_start" ~src:t.id ~dst
    ~detail:(Printf.sprintf "vpe%d" vpe.Vpe.id) ();
  let peers = Hashtbl.fold (fun kid _ acc -> if kid <> t.id then kid :: acc else acc) t.registry [] in
  match peers with
  | [] ->
    (* Single-kernel system: nothing to broadcast. *)
    migrate_transfer t ~vpe ~dst ~done_k
  | peers ->
    let op = fresh_op t in
    let pending_peers = Hashtbl.create (List.length peers) in
    List.iter (fun kid -> Hashtbl.replace pending_peers kid ()) peers;
    let mig = { m_vpe = vpe; m_dst = dst; pending_peers; done_k; mtimer = None } in
    Hashtbl.add t.pending_ops op (P_migrate mig);
    let update = P.Ik_migrate_update { op; src_kernel = t.id; pe = vpe.Vpe.pe; new_kernel = dst } in
    job t (fun () ->
        ( Int64.mul (Int64.of_int (List.length peers)) 200L,
          fun () ->
            List.iter (fun kid -> ikc_send t ~dst:kid update) peers;
            (* Retransmit the update to peers that have not acked yet;
               updates are idempotent and acks dedup by sender. Resends
               go out in kernel-id order — table iteration order must
               not leak into the message schedule. The tick is a
               cancellable timer (cancelled when the last ack lands),
               so a fault-free migration leaves nothing on the heap. *)
            if (c t).Cost.retry_max > 0 then begin
              let rec tick attempts () =
                match Hashtbl.find_opt t.pending_ops op with
                | Some (P_migrate m) when attempts < (c t).Cost.retry_max ->
                  List.iter
                    (fun kid ->
                      Obs.Registry.incr t.ctr.retries;
                      receive_credit t ~peer:kid;
                      ikc_send t ~dst:kid update)
                    (List.sort compare
                       (Hashtbl.fold (fun kid () acc -> kid :: acc) m.pending_peers []));
                  m.mtimer <-
                    Some
                      (Engine.after_cancellable t.engine
                         (retry_interval (c t) (attempts + 1))
                         (tick (attempts + 1)))
                | Some _ | None -> ()
              in
              mig.mtimer <-
                Some (Engine.after_cancellable t.engine (retry_interval (c t) 0) (tick 0))
            end ))

(* Reliable fleet-state broadcast: record the transition on our own
   replica, tell every peer, and run [done_k] once all have acked.
   Same retransmission discipline as a migrate-update broadcast. *)
let announce_state t ~kernel state done_k =
  Membership.set_kernel_state t.membership ~kernel state;
  trace_event t ~kind:"fleet_state" ~src:t.id ~dst:kernel
    ~detail:
      (match state with
      | Membership.Spare -> "spare"
      | Membership.Joining -> "joining"
      | Membership.Active -> "active"
      | Membership.Draining -> "draining"
      | Membership.Retired -> "retired")
    ();
  let peers = Hashtbl.fold (fun kid _ acc -> if kid <> t.id then kid :: acc else acc) t.registry [] in
  match peers with
  | [] -> done_k ()
  | peers ->
    let op = fresh_op t in
    let f_peers = Hashtbl.create (List.length peers) in
    List.iter (fun kid -> Hashtbl.replace f_peers kid ()) peers;
    let fop = { f_peers; f_done = done_k; f_timer = None } in
    Hashtbl.add t.pending_ops op (P_fleet fop);
    let update = P.Ik_fleet_state { op; src_kernel = t.id; kernel; state } in
    job t (fun () ->
        ( Int64.mul (Int64.of_int (List.length peers)) 100L,
          fun () ->
            List.iter (fun kid -> ikc_send t ~dst:kid update) peers;
            if (c t).Cost.retry_max > 0 then begin
              let rec tick attempts () =
                match Hashtbl.find_opt t.pending_ops op with
                | Some (P_fleet f) when attempts < (c t).Cost.retry_max ->
                  List.iter
                    (fun kid ->
                      Obs.Registry.incr t.ctr.retries;
                      receive_credit t ~peer:kid;
                      ikc_send t ~dst:kid update)
                    (List.sort compare (Hashtbl.fold (fun kid () acc -> kid :: acc) f.f_peers []));
                  f.f_timer <-
                    Some
                      (Engine.after_cancellable t.engine
                         (retry_interval (c t) (attempts + 1))
                         (tick (attempts + 1)))
                | Some _ | None -> ()
              in
              fop.f_timer <-
                Some (Engine.after_cancellable t.engine (retry_interval (c t) 0) (tick 0))
            end ))

(* Bulk partition handoff (fleet join/drain): move every capability
   record and VPE of the partitions in [pes] to [dst] in one two-phase
   exchange — the membership broadcast flips (or mid-handoff-marks)
   every replica, then one framed record wave ships the data. *)
let handoff_partitions t ~pes ~vpes ~dst done_k =
  if dst = t.id then invalid_arg "Kernel.handoff_partitions: already managed here";
  if not (Hashtbl.mem t.registry dst) then invalid_arg "Kernel.handoff_partitions: no such kernel";
  if pes = [] then invalid_arg "Kernel.handoff_partitions: empty partition set";
  (match Membership.kernel_state t.membership dst with
  | Membership.Active | Membership.Joining -> ()
  | Membership.Spare | Membership.Draining | Membership.Retired ->
    invalid_arg "Kernel.handoff_partitions: destination kernel is not accepting partitions");
  List.iter
    (fun (vpe : Vpe.t) ->
      if vpe.Vpe.syscall_pending then
        invalid_arg "Kernel.handoff_partitions: VPE has a syscall in flight";
      if vpe.Vpe.frozen then invalid_arg "Kernel.handoff_partitions: VPE is already migrating")
    vpes;
  (* Freeze the moving VPEs and mark every PE mid-handoff on our own
     replica: in-flight resolves defer loudly instead of misrouting. *)
  List.iter (fun (vpe : Vpe.t) -> vpe.Vpe.frozen <- true) vpes;
  List.iter (fun pe -> Membership.begin_handoff t.membership ~pe) pes;
  trace_event t ~kind:"handoff_start" ~src:t.id ~dst
    ~detail:(Printf.sprintf "pes=%d vpes=%d" (List.length pes) (List.length vpes)) ();
  let peers = Hashtbl.fold (fun kid _ acc -> if kid <> t.id then kid :: acc else acc) t.registry [] in
  match peers with
  | [] -> part_transfer t ~pes ~vpes ~dst ~done_k
  | peers ->
    let op = fresh_op t in
    let p_peers = Hashtbl.create (List.length peers) in
    List.iter (fun kid -> Hashtbl.replace p_peers kid ()) peers;
    let pop = { p_pes = pes; p_vpes = vpes; p_dst = dst; p_peers; p_done = done_k; p_timer = None } in
    Hashtbl.add t.pending_ops op (P_part pop);
    let update = P.Ik_part_update { op; src_kernel = t.id; pes; new_kernel = dst } in
    job t (fun () ->
        ( Int64.mul (Int64.of_int (List.length peers)) 200L,
          fun () ->
            List.iter (fun kid -> ikc_send t ~dst:kid update) peers;
            if (c t).Cost.retry_max > 0 then begin
              let rec tick attempts () =
                match Hashtbl.find_opt t.pending_ops op with
                | Some (P_part p) when attempts < (c t).Cost.retry_max ->
                  List.iter
                    (fun kid ->
                      Obs.Registry.incr t.ctr.retries;
                      receive_credit t ~peer:kid;
                      ikc_send t ~dst:kid update)
                    (List.sort compare (Hashtbl.fold (fun kid () acc -> kid :: acc) p.p_peers []));
                  p.p_timer <-
                    Some
                      (Engine.after_cancellable t.engine
                         (retry_interval (c t) (attempts + 1))
                         (tick (attempts + 1)))
                | Some _ | None -> ()
              in
              pop.p_timer <-
                Some (Engine.after_cancellable t.engine (retry_interval (c t) 0) (tick 0))
            end ))

(* Control-plane quiescence: nothing pending, nothing awaiting
   retransmission, no batched sends parked in a slot window, no
   absorbed credit returns owed, and every send-credit window back at
   the §5.1 bound. A kernel may retire only when this holds with its
   VPE table and mapping database empty. *)
let quiescent t =
  Hashtbl.length t.pending_ops = 0
  && Hashtbl.length t.retry_msgs = 0
  && Hashtbl.fold (fun _ bs acc -> acc && Queue.is_empty bs.bq) t.batch_queues true
  && Hashtbl.fold (fun _ o acc -> acc && o.o_left = 0 && o.o_acks = []) t.batch_owed true
  && Hashtbl.fold (fun _ (credits, q) acc -> acc && !credits = Cost.max_inflight && Queue.is_empty q)
       t.credits true

let quiescence_report t =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  let pend_kind = function
    | P_obtain _ -> "obtain"
    | P_delegate_src _ -> "delegate_src"
    | P_delegate_dst _ -> "delegate_dst"
    | P_open_sess _ -> "open_sess"
    | P_revoke _ -> "revoke"
    | P_revoke_msg _ -> "revoke_msg"
    | P_migrate _ -> "migrate"
    | P_migrate_caps _ -> "migrate_caps"
    | P_fleet _ -> "fleet"
    | P_part _ -> "part"
    | P_part_caps _ -> "part_caps"
  in
  Hashtbl.iter (fun op p -> add "pending op %d (%s)" op (pend_kind p)) t.pending_ops;
  Hashtbl.iter (fun op _ -> add "retrying msg op %d" op) t.retry_msgs;
  Hashtbl.iter
    (fun dst bs ->
      if not (Queue.is_empty bs.bq) then add "batch queue to %d holds %d" dst (Queue.length bs.bq))
    t.batch_queues;
  Hashtbl.iter
    (fun src o ->
      if o.o_left <> 0 || o.o_acks <> [] then
        add "owes %d credit acks to %d (%d parked)" o.o_left src (List.length o.o_acks))
    t.batch_owed;
  Hashtbl.iter
    (fun dst (credits, q) ->
      if !credits <> Cost.max_inflight || not (Queue.is_empty q) then
        add "credit window to %d at %d/%d (%d queued)" dst !credits Cost.max_inflight
          (Queue.length q))
    t.credits;
  if !parts = [] then "quiescent" else String.concat "; " (List.sort compare !parts)

let check_invariants t =
  let errors = ref (Mapdb.check_local_links t.mapdb) in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Mapdb.iter
    (fun cap ->
      (* Hosting invariant: a capability lives at the kernel managing
         its owner VPE. *)
      (match t.env.locate_vpe cap.Cap.owner_vpe with
      | None -> err "cap %s owned by unknown VPE %d" (Key.to_string cap.Cap.key) cap.Cap.owner_vpe
      | Some v ->
        if v.Vpe.kernel <> t.id then
          err "cap %s hosted at kernel %d but owner VPE %d is managed by %d"
            (Key.to_string cap.Cap.key) t.id cap.Cap.owner_vpe v.Vpe.kernel);
      if Cap.is_marked cap then
        err "cap %s still marked while system is idle" (Key.to_string cap.Cap.key))
    t.mapdb;
  Hashtbl.iter (fun op _ -> err "pending operation %d while system is idle" op) t.pending_ops;
  Hashtbl.iter
    (fun peer bs ->
      if not (Queue.is_empty bs.bq) then
        err "%d messages for kernel %d still queued in a batch window while system is idle"
          (Queue.length bs.bq) peer)
    t.batch_queues;
  Hashtbl.iter
    (fun peer o ->
      if o.o_left <> 0 then
        err "%d absorbed credit returns still owed to kernel %d while system is idle" o.o_left
          peer;
      if o.o_acks <> [] then
        err "%d piggybacked acks for kernel %d still stashed while system is idle"
          (List.length o.o_acks) peer)
    t.batch_owed;
  Hashtbl.iter
    (fun vid (vpe : Vpe.t) ->
      if vpe.Vpe.frozen then err "VPE %d still frozen while system is idle" vid)
    t.vpes;
  Hashtbl.iter
    (fun vid (vpe : Vpe.t) ->
      Capspace.iter
        (fun sel key ->
          if Vpe.is_alive vpe && not (Mapdb.mem t.mapdb key) then
            err "VPE %d selector %d references missing cap %s" vid sel (Key.to_string key))
        vpe.Vpe.capspace)
    t.vpes;
  List.rev !errors
