(** Preallocated object pools for per-operation scratch state.

    Steady-state capability traffic (exchange, revoke, obtain) used to
    allocate fresh hash tables and buffers for every operation; at
    thousands of PEs the allocation rate dominates minor-GC time. A
    pool hands out recycled objects instead: [acquire] pops from a free
    list (allocating only when empty) and [release] resets the object
    and pushes it back.

    Pools are host-side plumbing: they never appear in snapshots or
    fingerprints, and recycling must be invisible to simulation
    results — [reset] restores the object to the state [make] creates
    it in. *)

type 'a t

(** [create ?prealloc ~make ~reset ()] builds a pool. [make] allocates
    a fresh object, [reset] returns a used one to its pristine state.
    [prealloc] objects (default 0) are allocated eagerly so the happy
    path never hits the allocator. *)
val create : ?prealloc:int -> make:(unit -> 'a) -> reset:('a -> unit) -> unit -> 'a t

val acquire : 'a t -> 'a

(** Returns the object to the free list after [reset]ting it. The
    caller must not retain a reference. *)
val release : 'a t -> 'a -> unit

(** [with_ t f] acquires, runs [f], and releases on the way out —
    including on exceptions. Only for strictly scoped uses; operations
    whose scratch outlives the call (multi-message protocols) must
    pair [acquire]/[release] by hand. *)
val with_ : 'a t -> ('a -> 'b) -> 'b

(** Objects handed out and not yet released. *)
val in_use : 'a t -> int

(** Objects ever allocated by this pool (free + in use). *)
val allocated : 'a t -> int
