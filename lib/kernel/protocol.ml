module Key = Semper_ddl.Key

type error =
  | E_no_such_service
  | E_no_such_cap
  | E_no_such_vpe
  | E_no_such_session
  | E_denied
  | E_in_revocation
  | E_vpe_dead
  | E_busy
  | E_invalid
  | E_no_pe
  | E_timeout

let error_to_string = function
  | E_no_such_service -> "no such service"
  | E_no_such_cap -> "no such capability"
  | E_no_such_vpe -> "no such VPE"
  | E_no_such_session -> "no such session"
  | E_denied -> "denied"
  | E_in_revocation -> "capability in revocation"
  | E_vpe_dead -> "VPE dead"
  | E_busy -> "VPE busy"
  | E_invalid -> "invalid arguments"
  | E_no_pe -> "no free PE"
  | E_timeout -> "remote kernel unreachable (retries exhausted)"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type selector = Semper_caps.Capspace.selector

type syscall =
  | Sys_create_vpe of { on_pe : int option }
  | Sys_create_srv of { name : string }
  | Sys_create_rgate of { ep : int; slots : int }
  | Sys_create_sgate of { rgate : selector; label : int }
  | Sys_alloc_mem of { size : int64; perms : Semper_caps.Perms.t }
  | Sys_derive_mem of { sel : selector; offset : int64; size : int64; perms : Semper_caps.Perms.t }
  | Sys_open_session of { service : string }
  | Sys_obtain of { sess : selector; args : int list }
  | Sys_delegate of { sess : selector; sel : selector; args : int list }
  | Sys_obtain_from of { donor_vpe : int; donor_sel : selector }
  | Sys_delegate_to of { recv_vpe : int; sel : selector }
  | Sys_revoke of { sel : selector; own : bool }
  | Sys_activate of { sel : selector; ep : int }
  | Sys_exit

let syscall_name = function
  | Sys_create_vpe _ -> "create_vpe"
  | Sys_create_srv _ -> "create_srv"
  | Sys_create_rgate _ -> "create_rgate"
  | Sys_create_sgate _ -> "create_sgate"
  | Sys_alloc_mem _ -> "alloc_mem"
  | Sys_derive_mem _ -> "derive_mem"
  | Sys_open_session _ -> "open_session"
  | Sys_obtain _ -> "obtain"
  | Sys_delegate _ -> "delegate"
  | Sys_obtain_from _ -> "obtain_from"
  | Sys_delegate_to _ -> "delegate_to"
  | Sys_revoke _ -> "revoke"
  | Sys_activate _ -> "activate"
  | Sys_exit -> "exit"

type reply =
  | R_ok
  | R_sel of selector
  | R_vpe of { vpe : int; sel : selector }
  | R_sess of { sel : selector; ident : int }
  | R_err of error

let pp_reply ppf = function
  | R_ok -> Format.pp_print_string ppf "ok"
  | R_sel s -> Format.fprintf ppf "sel(%d)" s
  | R_vpe { vpe; sel } -> Format.fprintf ppf "vpe(%d, sel=%d)" vpe sel
  | R_sess { sel; ident } -> Format.fprintf ppf "sess(sel=%d, ident=%d)" sel ident
  | R_err e -> Format.fprintf ppf "error(%s)" (error_to_string e)

type donor =
  | Via_session of { srv_key : Key.t; ident : int; args : int list }
  | Direct of { donor_vpe : int; donor_sel : selector }

type recv_ref =
  | Recv_vpe of int
  | Recv_service of { srv_key : Key.t; ident : int; args : int list }

type migrated_cap = {
  m_key : Key.t;
  m_kind : Semper_caps.Cap.kind;
  m_owner : int;
  m_parent : Key.t option;
  m_children : Key.t list;
}

type ikc =
  | Ik_obtain_req of {
      op : int;
      src_kernel : int;
      obj_reserved : int;
      client_pe : int;
      client_vpe : int;
      donor : donor;
    }
  | Ik_obtain_reply of { op : int; result : (Key.t * Semper_caps.Cap.kind * Key.t, error) result }
  | Ik_delegate_req of {
      op : int;
      src_kernel : int;
      parent_key : Key.t;
      kind : Semper_caps.Cap.kind;
      recv : recv_ref;
    }
  | Ik_delegate_reply of { op : int; result : (Key.t, error) result }
  | Ik_delegate_ack of { op : int; child_key : Key.t; commit : bool }
  | Ik_open_sess_req of {
      op : int;
      src_kernel : int;
      srv_key : Key.t;
      sess_key : Key.t;
      client_vpe : int;
    }
  | Ik_open_sess_reply of { op : int; result : (int, error) result }
  | Ik_revoke_req of { op : int; src_kernel : int; keys : Key.t list }
  | Ik_revoke_reply of { op : int; keys : Key.t list; cont : Key.t list }
      (* [cont]: marked-subtree roots the responder discovered on the
         requester's side; the requester folds them into its own revoke
         wave instead of receiving a separate Ik_revoke_req per child
         (batching mode; empty otherwise). *)
  | Ik_remove_child of { op : int; parent_key : Key.t; child_key : Key.t }
  | Ik_migrate_update of { op : int; src_kernel : int; pe : int; new_kernel : int }
  | Ik_migrate_ack of { op : int }
  | Ik_migrate_caps of { op : int; src_kernel : int; vpe : int; records : migrated_cap list }
  | Ik_srv_announce of { op : int; name : string; srv_key : Key.t; kernel : int }
  | Ik_fleet_state of {
      op : int;
      src_kernel : int;
      kernel : int;
      state : Semper_ddl.Membership.kernel_state;
    }
      (* Kernel lifecycle transition (join/drain/retire), broadcast to
         every peer and acked like a migrate update. *)
  | Ik_part_update of { op : int; src_kernel : int; pes : int list; new_kernel : int }
      (* Bulk membership flip for a whole partition set: the new owner
         marks every PE mid-handoff, other replicas reassign the set
         atomically. *)
  | Ik_part_records of {
      op : int;
      src_kernel : int;
      pes : int list;
      vpes : int list;
      records : migrated_cap list;
    }
      (* Framed record wave carrying every capability record of the
         partitions in [pes] plus the VPEs living there; sized like an
         [Ik_batch] frame (header + one slot per record). *)
  | Ik_shutdown of { src_kernel : int }
  | Ik_batch of { src_kernel : int; msgs : ikc list }
      (* Framed multi-message: every [Ik_*] queued for the same peer
         within one DTU slot window travels as one fabric transfer
         consuming one credit (batching mode only). *)

let ikc_name = function
  | Ik_obtain_req _ -> "obtain_req"
  | Ik_obtain_reply _ -> "obtain_reply"
  | Ik_delegate_req _ -> "delegate_req"
  | Ik_delegate_reply _ -> "delegate_reply"
  | Ik_delegate_ack _ -> "delegate_ack"
  | Ik_open_sess_req _ -> "open_sess_req"
  | Ik_open_sess_reply _ -> "open_sess_reply"
  | Ik_revoke_req _ -> "revoke_req"
  | Ik_revoke_reply _ -> "revoke_reply"
  | Ik_remove_child _ -> "remove_child"
  | Ik_migrate_update _ -> "migrate_update"
  | Ik_migrate_ack _ -> "migrate_ack"
  | Ik_migrate_caps _ -> "migrate_caps"
  | Ik_srv_announce _ -> "srv_announce"
  | Ik_fleet_state _ -> "fleet_state"
  | Ik_part_update _ -> "part_update"
  | Ik_part_records _ -> "part_records"
  | Ik_shutdown _ -> "shutdown"
  | Ik_batch _ -> "batch"

type service_request =
  | Srq_open_session of { client_vpe : int }
  | Srq_obtain of { ident : int; args : int list }
  | Srq_delegate of { ident : int; args : int list; kind : Semper_caps.Cap.kind }

type service_response =
  | Srs_session of { ident : int }
  | Srs_grant of { parent : Key.t; kind : Semper_caps.Cap.kind }
  | Srs_accept
  | Srs_reject of error
