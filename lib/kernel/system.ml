module Engine = Semper_sim.Engine
module Topology = Semper_noc.Topology
module Fabric = Semper_noc.Fabric
module Dtu = Semper_dtu.Dtu
module Membership = Semper_ddl.Membership

module Fault = Semper_fault.Fault
module Obs = Semper_obs.Obs

type config = {
  kernels : int;
  (* Kernels booted but held out of service ([Spare] lifecycle state):
     they own their home partitions yet serve no work until a
     [Fleet.join] activates them. 0 (the default) reproduces the fixed
     boot-time fleet byte-for-byte. *)
  spare_kernels : int;
  user_pes_per_kernel : int;
  mode : Cost.mode;
  noc : Fabric.config;
  batching : bool;
  broadcast : bool;
  fault : Fault.profile option;
  retry : bool;
  trace_capacity : int;
  engine_queue : Engine.queue_kind;
}

let default_config =
  {
    kernels = 2;
    spare_kernels = 0;
    user_pes_per_kernel = 8;
    mode = Cost.Semperos;
    noc = Fabric.default_config;
    batching = false;
    broadcast = false;
    fault = None;
    retry = true;
    trace_capacity = 8192;
    engine_queue = Engine.Timer_wheel;
  }

let config ?(kernels = 2) ?(spare_kernels = 0) ?(user_pes_per_kernel = 8)
    ?(mode = Cost.Semperos) ?(noc = Fabric.default_config) ?(batching = false)
    ?(broadcast = false) ?fault ?(retry = true) ?(trace_capacity = 8192)
    ?(engine_queue = Engine.Timer_wheel) () =
  {
    kernels;
    spare_kernels;
    user_pes_per_kernel;
    mode;
    noc;
    batching;
    broadcast;
    fault;
    retry;
    trace_capacity;
    engine_queue;
  }

type group = { kernel_pe : int; free : int Queue.t }

(* Kernels booted in total, spares included. *)
let total_kernels cfg = cfg.kernels + cfg.spare_kernels

type t = {
  cfg : config;
  engine : Engine.t;
  fabric : Fabric.t;
  grid : Dtu.grid;
  membership : Membership.t;
  registry : (int, Kernel.t) Hashtbl.t;
  groups : group array;
  vpes : (int, Vpe.t) Hashtbl.t;
  fault : Fault.t option;
  obs : Obs.Registry.t;
  trace : Obs.Trace.t;
  mutable next_vpe : int;
}

let engine t = t.engine
let fabric t = t.fabric
let fault_plan t = t.fault
let grid t = t.grid
let membership t = t.membership
let obs t = t.obs
let trace_buffer t = t.trace

let kernel t i =
  match Hashtbl.find_opt t.registry i with
  | Some k -> k
  | None -> invalid_arg "System.kernel: no such kernel"

let kernels t =
  List.init (total_kernels t.cfg) (fun i -> kernel t i)

let kernel_count t = total_kernels t.cfg
let boot_kernels t = t.cfg.kernels
let pe_count t = total_kernels t.cfg * (1 + t.cfg.user_pes_per_kernel)
let find_vpe t vid = Hashtbl.find_opt t.vpes vid
let now t = Engine.now t.engine

let free_pes t ~kernel =
  if kernel < 0 || kernel >= total_kernels t.cfg then
    invalid_arg "System.free_pes: no such kernel";
  Queue.length t.groups.(kernel).free

(* The PE range a kernel's group was built with at boot: its kernel PE
   plus its user PEs. Partition ownership may drift away through fleet
   handoffs; [Fleet.join] reclaims this range so group-local PE
   allocation and the membership replicas agree again. *)
let home_pes t ~kernel =
  if kernel < 0 || kernel >= total_kernels t.cfg then
    invalid_arg "System.home_pes: no such kernel";
  let group_size = 1 + t.cfg.user_pes_per_kernel in
  List.init group_size (fun u -> (kernel * group_size) + u)

let register_vpe t ~pe ~kernel:kid =
  let id = t.next_vpe in
  t.next_vpe <- id + 1;
  let vpe = Vpe.make ~id ~pe ~kernel:kid in
  Hashtbl.add t.vpes id vpe;
  Kernel.add_vpe (kernel t kid) vpe;
  vpe

let create cfg =
  if cfg.kernels <= 0 then invalid_arg "System.create: need at least one kernel";
  if cfg.spare_kernels < 0 then invalid_arg "System.create: negative spare kernels";
  if total_kernels cfg > Cost.max_kernels then
    invalid_arg "System.create: more kernels than the DTU endpoints support (64)";
  if cfg.user_pes_per_kernel > Cost.max_pes_per_kernel then
    invalid_arg "System.create: more PEs per kernel than syscall slots support (192)";
  let total = total_kernels cfg * (1 + cfg.user_pes_per_kernel) in
  let topology = Topology.square total in
  let obs = Obs.Registry.create () in
  let engine = Engine.create ~obs ~queue:cfg.engine_queue () in
  let trace = Obs.Trace.create ~capacity:cfg.trace_capacity in
  let fabric = Fabric.create ~obs engine topology cfg.noc in
  let grid = Dtu.create_grid ~obs fabric in
  let membership = Membership.create () in
  let group_size = 1 + cfg.user_pes_per_kernel in
  let groups =
    Array.init (total_kernels cfg) (fun g ->
        let base = g * group_size in
        let free = Queue.create () in
        for u = 1 to cfg.user_pes_per_kernel do
          Queue.push (base + u) free
        done;
        { kernel_pe = base; free })
  in
  for g = 0 to total_kernels cfg - 1 do
    for p = g * group_size to (g * group_size) + group_size - 1 do
      Membership.assign membership ~pe:p ~kernel:g
    done
  done;
  Membership.seal membership;
  (* Spares boot with their lifecycle state recorded before the
     per-kernel replicas are copied, so every replica agrees from
     cycle 0. *)
  for g = cfg.kernels to total_kernels cfg - 1 do
    Membership.set_kernel_state membership ~kernel:g Membership.Spare
  done;
  (* Every PE gets a DTU; only kernel DTUs stay privileged (§2.2). *)
  for p = 0 to total - 1 do
    let dtu = Dtu.create grid ~pe:p in
    if p mod group_size <> 0 then Dtu.deprivilege dtu
  done;
  let fault =
    Option.map
      (fun profile ->
        let kernel_pes = Array.to_list (Array.map (fun g -> g.kernel_pe) groups) in
        let plan = Fault.create ~kernel_pes profile in
        Fabric.set_injector fabric (Some (Fault.injector plan));
        plan)
      cfg.fault
  in
  let registry = Hashtbl.create (total_kernels cfg) in
  let t =
    {
      cfg;
      engine;
      fabric;
      grid;
      membership;
      registry;
      groups;
      vpes = Hashtbl.create 256;
      fault;
      obs;
      trace;
      next_vpe = 0;
    }
  in
  let env =
    {
      Kernel.locate_vpe = (fun vid -> Hashtbl.find_opt t.vpes vid);
      alloc_pe =
        (fun ~kernel ->
          (* A kernel that is not serving (spare, joining, draining,
             retired) refuses to place new VPEs: the caller sees
             E_no_pe, the fleet's "refuses new work" contract. *)
          if
            kernel < 0
            || kernel >= total_kernels cfg
            || Membership.kernel_state t.membership kernel <> Membership.Active
          then None
          else
            let g = groups.(kernel) in
            if Queue.is_empty g.free then None else Some (Queue.pop g.free));
      make_vpe = (fun ~pe ~kernel -> register_vpe t ~pe ~kernel);
      on_vpe_exit =
        (fun vpe ->
          let g = groups.(vpe.Vpe.kernel) in
          Queue.push vpe.Vpe.pe g.free);
    }
  in
  let cost =
    let base = Cost.default cfg.mode in
    let base = if cfg.batching then Cost.with_batching base else base in
    let base = if cfg.broadcast then Cost.with_broadcast base else base in
    if cfg.retry then base else Cost.without_retries base
  in
  for g = 0 to total_kernels cfg - 1 do
    (* Each kernel holds its own replica of the membership table, as in
       the paper (Figure 2) — PE migration must update all of them. *)
    ignore
      (Kernel.create ~obs ~trace ~engine ~fabric ~grid ~id:g ~pe:groups.(g).kernel_pe
         ~membership:(Membership.copy membership) ~cost ~env ~registry
         ~kernel_count:(total_kernels cfg) ())
  done;
  t

let spawn_vpe ?pe t ~kernel:kid =
  if kid < 0 || kid >= total_kernels t.cfg then invalid_arg "System.spawn_vpe: no such kernel";
  if Membership.kernel_state t.membership kid <> Membership.Active then
    invalid_arg "System.spawn_vpe: kernel is not active";
  let g = t.groups.(kid) in
  let pe =
    match pe with
    | Some p -> p
    | None ->
      if Queue.is_empty g.free then invalid_arg "System.spawn_vpe: group is full"
      else Queue.pop g.free
  in
  register_vpe t ~pe ~kernel:kid

(* A frozen VPE has its capability records in flight between kernels:
   hold the syscall and re-dispatch once the destination has installed
   them. Re-reads [vpe.kernel] on every attempt so the retry lands at
   the new owner. *)
let rec syscall t vpe call k =
  if vpe.Vpe.frozen && Vpe.is_alive vpe then
    Engine.after t.engine 200L (fun () -> syscall t vpe call k)
  else Kernel.syscall (kernel t vpe.Vpe.kernel) ~vpe call k

let run ?until t = Engine.run ?until t.engine

let syscall_sync t vpe call =
  let result = ref None in
  syscall t vpe call (fun r -> result := Some r);
  let rec drive () =
    match !result with
    | Some r -> r
    | None ->
      if Engine.pending t.engine = 0 then
        failwith "System.syscall_sync: engine idle before reply arrived"
      else begin
        ignore (Engine.run ~until:(Int64.add (Engine.now t.engine) 10_000L) t.engine);
        drive ()
      end
  in
  drive ()

let total_cap_ops t =
  List.fold_left (fun acc k -> acc + (Kernel.stats k).Kernel.cap_ops) 0 (kernels t)

let check_invariants t = List.concat_map Kernel.check_invariants (kernels t)

let migrate_vpe t (vpe : Vpe.t) ~to_kernel =
  if to_kernel < 0 || to_kernel >= total_kernels t.cfg then
    invalid_arg "System.migrate_vpe: no such kernel";
  (* Quiesce the system first: migration is only defined with no
     in-flight operations touching the VPE. *)
  ignore (Engine.run t.engine);
  (* Keep the system-level replica in step for spawn-time routing. *)
  Membership.reassign t.membership ~pe:vpe.Vpe.pe ~kernel:to_kernel;
  let finished = ref false in
  Kernel.migrate_vpe (kernel t vpe.Vpe.kernel) ~vpe ~dst:to_kernel (fun () -> finished := true);
  ignore (Engine.run t.engine);
  if not !finished then failwith "System.migrate_vpe: migration did not complete"

type snapshot = {
  s_engine : Engine.snapshot;
  s_fabric : Fabric.snapshot;
  s_dtus : Dtu.snapshot;
  s_membership : Membership.snapshot;
  s_fault : Fault.snapshot option;
  s_obs : Obs.Registry.state;
  s_trace : Obs.Trace.state;
  s_kernels : (int * Kernel.snapshot) list;
  s_vpes : (int * Vpe.snapshot) list;
  s_groups : int list array;  (* free-PE queues, front first *)
  s_next_vpe : int;
}

let snapshot t =
  {
    s_engine = Engine.snapshot t.engine;
    s_fabric = Fabric.snapshot t.fabric;
    s_dtus = Dtu.snapshot_grid t.grid;
    s_membership = Membership.snapshot t.membership;
    s_fault = Option.map Fault.snapshot t.fault;
    s_obs = Obs.Registry.dump t.obs;
    s_trace = Obs.Trace.dump t.trace;
    s_kernels =
      List.init (total_kernels t.cfg) (fun i -> (i, Kernel.snapshot (kernel t i)));
    s_vpes =
      Hashtbl.fold (fun id v acc -> (id, Vpe.snapshot v) :: acc) t.vpes []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_groups =
      Array.map (fun g -> List.rev (Queue.fold (fun acc pe -> pe :: acc) [] g.free)) t.groups;
    s_next_vpe = t.next_vpe;
  }

(* The snapshot is closure-free by construction (gauges are sampled,
   continuations summarised), so Marshal is deterministic for equal
   states and the digest is a usable integrity fingerprint.
   [No_sharing] keeps the digest a function of structural content
   alone: a restored system rebuilds the same values with a different
   physical sharing graph (e.g. trace-ring events no longer share
   their kind strings with events recorded after resume), and
   sharing-aware marshalling would tell those states apart. *)
let fingerprint t =
  Digest.to_hex (Digest.bytes (Marshal.to_bytes (snapshot t) [ Marshal.No_sharing ]))

let restore t s =
  (* Kernels first: their restore validates that the live control
     plane (pending ops, idempotency caches) still matches the
     snapshot and refuses otherwise, so a divergent system is rejected
     before any other module has been mutated. *)
  List.iter (fun (i, ks) -> Kernel.restore (kernel t i) ks) s.s_kernels;
  Engine.restore t.engine s.s_engine;
  Fabric.restore t.fabric s.s_fabric;
  Dtu.restore_grid t.grid s.s_dtus;
  Membership.restore t.membership s.s_membership;
  (match (t.fault, s.s_fault) with
  | Some plan, Some fs -> Fault.restore plan fs
  | None, None -> ()
  | _ -> invalid_arg "System.restore: fault plan presence does not match the snapshot");
  Obs.Registry.restore t.obs s.s_obs;
  Obs.Trace.restore t.trace s.s_trace;
  List.iter
    (fun (id, vs) ->
      match Hashtbl.find_opt t.vpes id with
      | Some v -> Vpe.restore v vs
      | None -> invalid_arg "System.restore: snapshot mentions a VPE this system never spawned")
    s.s_vpes;
  Array.iteri
    (fun i pes ->
      let g = t.groups.(i) in
      Queue.clear g.free;
      List.iter (fun pe -> Queue.push pe g.free) pes)
    s.s_groups;
  t.next_vpe <- s.s_next_vpe

let rebind t = Engine.rebind t.engine

let shutdown t =
  (* Exit every live VPE. Each exit revokes the VPE's entire capability
     space; concurrent exits exercise the overlapping-revoke machinery
     (session capabilities are children of service capabilities owned by
     other exiting VPEs). *)
  Hashtbl.iter
    (fun _ (vpe : Vpe.t) ->
      if Vpe.is_alive vpe then Kernel.syscall (kernel t vpe.Vpe.kernel) ~vpe Protocol.Sys_exit (fun _ -> ()))
    t.vpes;
  ignore (Engine.run t.engine);
  (* Kernels exchange shutdown notices (group 1 inter-kernel calls). *)
  List.iter
    (fun k ->
      List.iter
        (fun peer ->
          if Kernel.id peer <> Kernel.id k then
            Kernel.deliver_ikc peer ~src_kernel:(Kernel.id k)
              (Protocol.Ik_shutdown { src_kernel = Kernel.id k }))
        (kernels t))
    (kernels t);
  ignore (Engine.run t.engine);
  List.fold_left (fun acc k -> acc + Semper_caps.Mapdb.count (Kernel.mapdb k)) 0 (kernels t)
