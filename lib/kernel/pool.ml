type 'a t = {
  make : unit -> 'a;
  reset : 'a -> unit;
  mutable free : 'a list;
  mutable in_use : int;
  mutable allocated : int;
}

let create ?(prealloc = 0) ~make ~reset () =
  let t = { make; reset; free = []; in_use = 0; allocated = 0 } in
  for _ = 1 to prealloc do
    t.free <- make () :: t.free;
    t.allocated <- t.allocated + 1
  done;
  t

let acquire t =
  t.in_use <- t.in_use + 1;
  match t.free with
  | x :: rest ->
    t.free <- rest;
    x
  | [] ->
    t.allocated <- t.allocated + 1;
    t.make ()

let release t x =
  t.reset x;
  t.in_use <- t.in_use - 1;
  t.free <- x :: t.free

let with_ t f =
  let x = acquire t in
  match f x with
  | y ->
    release t x;
    y
  | exception e ->
    release t x;
    raise e

let in_use t = t.in_use
let allocated t = t.allocated
