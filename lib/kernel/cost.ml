type mode = Semperos | M3

type t = {
  mode : mode;
  batch_revokes : bool;
  broadcast_revokes : bool;
  syscall_bytes : int;
  reply_bytes : int;
  ikc_bytes : int;
  credit_bytes : int;
  batch_header_bytes : int;
  batch_window : int64;
  syscall_dispatch : int64;
  exchange_create : int64;
  exchange_forward : int64;
  exchange_remote : int64;
  revoke_start : int64;
  revoke_per_cap : int64;
  revoke_request : int64;
  revoke_reply : int64;
  revoke_send : int64;
  revoke_scan_per_cap : int64;
  ddl_decode : int64;
  vpe_accept : int64;
  activate : int64;
  create_obj : int64;
  session_open : int64;
  retry_timeout : int64;
  retry_max : int;
}

(* Calibrated against Table 3 of the paper: local exchange 3597 (M3:
   3250), local revoke 1997 (M3: 1423), spanning exchange 6484,
   spanning revoke 3876 — see EXPERIMENTS.md for measured values. *)
let default mode =
  {
    mode;
    batch_revokes = false;
    broadcast_revokes = false;
    syscall_bytes = 64;
    reply_bytes = 32;
    ikc_bytes = 64;
    credit_bytes = 16;
    batch_header_bytes = 16;
    batch_window = 2000L;
    syscall_dispatch = 250L;
    exchange_create = 887L;
    exchange_forward = 800L;
    exchange_remote = 1068L;
    revoke_start = 99L;
    revoke_per_cap = 400L;
    revoke_request = 551L;
    revoke_reply = 331L;
    revoke_send = 312L;
    revoke_scan_per_cap = 40L;
    ddl_decode = 115L;
    vpe_accept = 760L;
    activate = 800L;
    create_obj = 800L;
    session_open = 700L;
    retry_timeout = 25_000L;
    retry_max = 20;
  }

let without_retries t = { t with retry_max = 0 }

let with_batching t = { t with batch_revokes = true }
let batching t = t.batch_revokes
let with_broadcast t = { t with broadcast_revokes = true }
let broadcast t = t.broadcast_revokes

let ddl t n =
  match t.mode with
  | M3 -> 0L
  | Semperos -> Int64.mul (Int64.of_int n) t.ddl_decode

let max_inflight = 4
let max_kernels = 64
let max_pes_per_kernel = 192
