type state = Running | Exited

type t = {
  id : int;
  pe : int;
  mutable kernel : int;
  capspace : Semper_caps.Capspace.t;
  mutable state : state;
  mutable syscall_pending : bool;
  (* Set while a PE migration has this VPE's capability records in
     flight between kernels; syscalls must be held until it clears. *)
  mutable frozen : bool;
  mutable reply_k : (Protocol.reply -> unit) option;
  mutable syscall_name : string;
  mutable syscall_start : int64;
  mutable span : int;
  mutable accept_exchange : bool;
  inbox : Semper_dtu.Message.t Queue.t;
}

let make ~id ~pe ~kernel =
  {
    id;
    pe;
    kernel;
    capspace = Semper_caps.Capspace.create ();
    state = Running;
    syscall_pending = false;
    frozen = false;
    reply_k = None;
    syscall_name = "";
    syscall_start = 0L;
    span = -1;
    accept_exchange = true;
    inbox = Queue.create ();
  }

let is_alive t = t.state = Running

type snapshot = {
  s_id : int;
  s_pe : int;
  s_kernel : int;
  s_capspace : Semper_caps.Capspace.snapshot;
  s_state : state;
  s_syscall_pending : bool;
  s_frozen : bool;
  s_reply_pending : bool;
  s_syscall_name : string;
  s_syscall_start : int64;
  s_span : int;
  s_accept_exchange : bool;
  s_inbox : int;
}

let snapshot t =
  {
    s_id = t.id;
    s_pe = t.pe;
    s_kernel = t.kernel;
    s_capspace = Semper_caps.Capspace.snapshot t.capspace;
    s_state = t.state;
    s_syscall_pending = t.syscall_pending;
    s_frozen = t.frozen;
    s_reply_pending = t.reply_k <> None;
    s_syscall_name = t.syscall_name;
    s_syscall_start = t.syscall_start;
    s_span = t.span;
    s_accept_exchange = t.accept_exchange;
    s_inbox = Queue.length t.inbox;
  }

(* [reply_k] (a continuation) and the inbox messages travel only inside
   whole-image checkpoints; the snapshot records their presence so a
   fingerprint distinguishes states, and [restore] checks consistency
   instead of overwriting them. *)
let restore t s =
  if t.id <> s.s_id || t.pe <> s.s_pe then invalid_arg "Vpe.restore: snapshot of a different VPE";
  t.kernel <- s.s_kernel;
  Semper_caps.Capspace.restore t.capspace s.s_capspace;
  t.state <- s.s_state;
  t.syscall_pending <- s.s_syscall_pending;
  t.frozen <- s.s_frozen;
  t.syscall_name <- s.s_syscall_name;
  t.syscall_start <- s.s_syscall_start;
  t.span <- s.s_span;
  t.accept_exchange <- s.s_accept_exchange

let pp ppf t =
  Format.fprintf ppf "vpe%d@pe%d(k%d,%s)" t.id t.pe t.kernel
    (match t.state with Running -> "running" | Exited -> "exited")
