type state = Running | Exited

type t = {
  id : int;
  pe : int;
  mutable kernel : int;
  capspace : Semper_caps.Capspace.t;
  mutable state : state;
  mutable syscall_pending : bool;
  (* Set while a PE migration has this VPE's capability records in
     flight between kernels; syscalls must be held until it clears. *)
  mutable frozen : bool;
  mutable reply_k : (Protocol.reply -> unit) option;
  mutable syscall_name : string;
  mutable syscall_start : int64;
  mutable span : int;
  mutable accept_exchange : bool;
  inbox : Semper_dtu.Message.t Queue.t;
}

let make ~id ~pe ~kernel =
  {
    id;
    pe;
    kernel;
    capspace = Semper_caps.Capspace.create ();
    state = Running;
    syscall_pending = false;
    frozen = false;
    reply_k = None;
    syscall_name = "";
    syscall_start = 0L;
    span = -1;
    accept_exchange = true;
    inbox = Queue.create ();
  }

let is_alive t = t.state = Running

let pp ppf t =
  Format.fprintf ppf "vpe%d@pe%d(k%d,%s)" t.id t.pe t.kernel
    (match t.state with Running -> "running" | Exited -> "exited")
