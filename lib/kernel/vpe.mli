(** Virtual PE: the unit of execution (comparable to a single-threaded
    process, paper §2.2). Each VPE has its own capability space and may
    have at most one system call in flight. *)

type state = Running | Exited

type t = {
  id : int;
  pe : int;
  mutable kernel : int;  (** the kernel managing this VPE's group *)
  capspace : Semper_caps.Capspace.t;
  mutable state : state;
  mutable syscall_pending : bool;
  mutable frozen : bool;
      (** a PE migration has this VPE's capability records in flight
          between kernels; cleared when the destination installs them.
          {!System.syscall} holds (and later re-dispatches) syscalls
          issued while frozen *)
  mutable reply_k : (Protocol.reply -> unit) option;
      (** continuation of the in-flight syscall, run on reply delivery *)
  mutable syscall_name : string;   (** name of the in-flight syscall *)
  mutable syscall_start : int64;   (** issue time of the in-flight syscall *)
  mutable span : int;              (** trace span id of the in-flight syscall; -1 if none yet *)
  mutable accept_exchange : bool;
      (** whether this VPE agrees to direct exchanges (tests use [false]
          to exercise the denial path) *)
  inbox : Semper_dtu.Message.t Queue.t;
      (** messages delivered to this VPE's activated receive gates —
          the app-visible end of a DTU channel *)
}

val make : id:int -> pe:int -> kernel:int -> t
val is_alive : t -> bool
val pp : Format.formatter -> t -> unit

(** Closure-free image of the VPE: identity, owning kernel, capability
    space, run state, and the in-flight-syscall bookkeeping. The reply
    continuation and inbox messages travel only inside whole-image
    checkpoints; the snapshot records their presence (so fingerprints
    distinguish states) and [restore] leaves them untouched. [restore]
    raises [Invalid_argument] when applied to a different VPE. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
