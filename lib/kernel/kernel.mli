(** A SemperOS kernel: manages one PE group and its capabilities, and
    coordinates with peer kernels through inter-kernel calls.

    Implements the paper's distributed capability protocols:
    - capability exchange (obtain and delegate, §4.3.2), including the
      two-way delegate handshake that prevents the "Invalid" anomaly and
      orphan cleanup for obtainers that die mid-exchange;
    - two-phase mark-and-sweep revocation (§4.3.3, Algorithm 1) with
      per-operation outstanding-reply counters, which never acknowledges
      an incomplete revoke and denies exchanges of marked capabilities;
    - cross-group session establishment (Figure 3, sequence B).

    One kernel instance runs on a dedicated kernel PE, modelled as a
    single-capacity server: every message (syscall or IKC) charges
    processing time there, which is what creates the kernel contention
    measured in the paper's application benchmarks. *)

module Key = Semper_ddl.Key

(** Hooks the kernel needs from the surrounding system (VPE directory,
    PE allocation). Stands in for state that the paper's kernels derive
    from boot-time knowledge. *)
type env = {
  locate_vpe : int -> Vpe.t option;
  alloc_pe : kernel:int -> int option;
  make_vpe : pe:int -> kernel:int -> Vpe.t;
  on_vpe_exit : Vpe.t -> unit;
}

(** A service endpoint: requests are answered asynchronously so the
    service implementation can charge time on its own PE first. *)
type service_handler = Protocol.service_request -> (Protocol.service_response -> unit) -> unit

(** A point-in-time snapshot of the kernel's metrics. The live values
    are counters in the kernel's {!Semper_obs.Obs.Registry} (names
    [kernel<id>.<field>]); [latencies] is shared live state. *)
type stats = {
  syscalls : int;
  cap_ops : int;  (** capability-modifying operations handled *)
  exchanges_local : int;
  exchanges_spanning : int;
  revokes_local : int;
  revokes_spanning : int;
  caps_created : int;
  caps_deleted : int;
  ikc_sent : int;
  ikc_received : int;
  credit_stalls : int;  (** IKC sends delayed by credit exhaustion *)
  credit_overrefund : int;
      (** credit refunds discarded at the §5.1 [Cost.max_inflight] cap
          (retransmission refund racing the real credit return, or a
          fault-injected duplicate returning credit twice) *)
  retries : int;  (** op-tagged requests retransmitted on timeout *)
  retry_exhausted : int;  (** ops failed with [E_timeout] after the retry budget ran out *)
  dup_ikc : int;  (** duplicate inter-kernel deliveries detected *)
  batches_sent : int;  (** framed [Ik_batch] multi-messages shipped (batching mode) *)
  batched_msgs : int;  (** inner messages those frames carried *)
  latencies : (string, Semper_util.Stats.Acc.t) Hashtbl.t;
      (** end-to-end syscall latency (cycles) per syscall kind *)
}

type t

(** [create ?obs ?trace ... ()] registers this kernel's counters,
    histograms, and gauges in [obs] (default: a fresh private registry)
    under the [kernel<id>.*] namespace, and records protocol events in
    [trace] (default: a private 1024-event ring). *)
val create :
  ?obs:Semper_obs.Obs.Registry.t ->
  ?trace:Semper_obs.Obs.Trace.t ->
  engine:Semper_sim.Engine.t ->
  fabric:Semper_noc.Fabric.t ->
  grid:Semper_dtu.Dtu.grid ->
  id:int ->
  pe:int ->
  membership:Semper_ddl.Membership.t ->
  cost:Cost.t ->
  env:env ->
  registry:(int, t) Hashtbl.t ->
  kernel_count:int ->
  unit ->
  t

val id : t -> int
val pe : t -> int
val mapdb : t -> Semper_caps.Mapdb.t
val server : t -> Semper_sim.Server.t
val threads : t -> Thread_pool.t
val stats : t -> stats

(** This kernel's replica of the PE→kernel membership table. *)
val membership : t -> Semper_ddl.Membership.t

(** Instantaneous syscall/IKC queue depth at the kernel PE. *)
val queue_depth : t -> int

(** VPEs currently managed by this kernel, sorted by VPE id (so
    candidate selection never depends on hash-table iteration order). *)
val local_vpes : t -> Vpe.t list

(** The metrics registry this kernel reports into. *)
val obs : t -> Semper_obs.Obs.Registry.t

(** The trace ring this kernel records into. *)
val trace_buffer : t -> Semper_obs.Obs.Trace.t

(** Current sizes of the two bounded idempotency caches,
    [(remote ops, completed acks)]. Entries are evicted lazily once the
    retry window has safely elapsed; exposed for regression tests. *)
val idempotency_cache_sizes : t -> int * int

(** Per-peer send-credit windows as [(peer kernel, credits)], sorted by
    peer id. The fuzz credit oracle asserts every window stays within
    [\[0, Cost.max_inflight\]]. *)
val credit_windows : t -> (int * int) list

val cost : t -> Cost.t

(** Register a VPE with its managing kernel (done by the system layer at
    spawn time); grows the thread pool by one (Equation 1). *)
val add_vpe : t -> Vpe.t -> unit

val find_vpe : t -> int -> Vpe.t option
val vpe_count : t -> int

(** Attach the handler for a service *before* the service VPE issues
    [Sys_create_srv]. The handler runs at this kernel, which must be
    the one managing the service VPE. *)
val register_service_handler : t -> name:string -> service_handler -> unit

(** Look up a service in the (replicated) directory. *)
val lookup_service : t -> string -> Key.t option

(** Issue a system call on behalf of [vpe]: models the syscall message
    to the kernel PE, queues processing there, and eventually delivers
    the reply message back to the VPE's PE, where [k] runs. Each VPE
    can have only one syscall in flight; violating that yields
    [R_err E_busy] immediately. *)
val syscall : t -> vpe:Vpe.t -> Protocol.syscall -> (Protocol.reply -> unit) -> unit

(** Deliver an inter-kernel call (invoked by peer kernels through the
    fabric; exposed for tests). *)
val deliver_ikc : t -> src_kernel:int -> Protocol.ikc -> unit

(** Directly insert a pre-built capability (boot-time setup for tests
    and services). Counts as a created capability. *)
val install_cap : t -> Semper_caps.Cap.t -> Protocol.selector

(** Mint a fresh key and install a capability for [owner] in one step
    (boot-time setup). Returns the selector and the key. *)
val install_new_cap :
  t ->
  owner:Vpe.t ->
  kind:Semper_caps.Cap.kind ->
  ?parent:Key.t ->
  unit ->
  Protocol.selector * Key.t

(** PE migration (the paper's named future work, §3.2): freeze the VPE
    ([Vpe.frozen]), mark its PE mid-handoff in the local membership
    replica, broadcast the membership update to every kernel, then
    transfer its capability records to [dst] (op-tagged and
    retransmitted until the destination acks the install). The system
    must be quiescent with respect to this VPE (no in-flight operations
    touching its capabilities) — {!System.migrate_vpe} enforces that for
    tests, and the load balancer's candidate gate enforces it for live
    workloads. [done_k] runs at the initiating kernel once the
    destination has acknowledged the records. *)
val migrate_vpe : t -> vpe:Vpe.t -> dst:int -> (unit -> unit) -> unit

(** Reliable fleet lifecycle broadcast: record [state] for [kernel] on
    this kernel's replica, announce it to every peer with an op-tagged
    [Ik_fleet_state] (retransmitted until each peer acks), and run the
    continuation once all acks are in. *)
val announce_state :
  t -> kernel:int -> Semper_ddl.Membership.kernel_state -> (unit -> unit) -> unit

(** Bulk partition handoff (fleet join/drain): move every capability
    record and VPE of the partitions in [pes] to [dst] in one two-phase
    exchange. Phase 1 freezes the listed VPEs, marks every PE
    mid-handoff here, and broadcasts an [Ik_part_update] (the
    destination marks mid-handoff, bystanders flip atomically via
    [Membership.reassign_partition]); once every peer has acked, phase
    2 ships all records and VPEs as one framed [Ik_part_records] wave,
    retransmitted until the destination acks the install. In-flight
    resolves against the moving partitions hit [Mid_handoff] deferral
    throughout — never a stale owner. Raises [Invalid_argument] if the
    destination is not [Active]/[Joining], a listed VPE is mid-syscall
    or already migrating, or [pes] is empty. [vpes] must be exactly the
    VPEs living on [pes]. *)
val handoff_partitions :
  t -> pes:int list -> vpes:Vpe.t list -> dst:int -> (unit -> unit) -> unit

(** Control-plane quiescence: no pending operations, no messages
    awaiting retransmission, no batched sends parked in a slot window,
    no absorbed credit returns owed, and every send-credit window back
    at the §5.1 bound. Retirement additionally requires {!vpe_count}
    zero and an empty mapping database — see [Fleet.drain]. *)
val quiescent : t -> bool

(** What blocks {!quiescent}, one clause per obstacle, sorted —
    ["quiescent"] when nothing does. Fleet wedge diagnostics embed
    this in their failure message. *)
val quiescence_report : t -> string

(** Run the mapping-database consistency check plus kernel-level
    invariants; returns human-readable violations (empty = healthy). *)
val check_invariants : t -> string list

(** Closure-free image of the kernel. The data plane — mapping
    database, membership replica (including mid-handoff marks),
    service directory, op-id cursor, per-peer credit windows — restores
    in place; the control plane (pending operations, retry timers,
    idempotency caches, which carry continuations and engine handles)
    travels only inside whole-image checkpoints, so the snapshot
    records its op ids and sizes and [restore] raises
    [Invalid_argument] if the live control plane does not match. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
