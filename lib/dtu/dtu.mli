(** Data Transfer Unit model (M3 / SemperOS hardware substrate).

    Every PE owns a DTU with a fixed number of endpoints; an endpoint is
    configured as a send, receive, or memory endpoint. The DTU is the
    PE's only gateway to the NoC, which is what makes NoC-level
    isolation work: controlling endpoint configuration controls every
    access the PE can make (paper §2.2).

    Faithful aspects of the model:
    - bounded receive slots — a message arriving at a full receive
      endpoint is dropped (the paper's protocols avoid this with
      credit/in-flight accounting, §4.1);
    - send credits — one credit is consumed per in-flight message and
      returned when the receiver frees the slot;
    - privileged configuration — after boot only kernel DTUs stay
      privileged; endpoints of deprivileged DTUs can only be configured
      through [configure_remote], the kernel-side path. *)

type grid
(** Registry of all DTUs in the system, bound to one NoC fabric. *)

type t

type error =
  | No_credits         (** send endpoint out of credits *)
  | Invalid_endpoint   (** endpoint index out of range *)
  | Wrong_kind         (** endpoint not configured for this operation *)
  | Not_privileged     (** local configuration on a deprivileged DTU *)
  | Out_of_bounds      (** memory access outside the endpoint window *)
  | No_permission      (** write through a read-only memory endpoint *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Paper §5.1: each DTU provides 16 endpoints with 32 slots each. *)
val default_endpoints : int

val default_slots : int

(** {1 Grid} *)

(** [create_grid ?obs fabric] builds the DTU registry. When [obs] is
    given, grid-wide send/drop totals are registered there under the
    [dtu.*] namespace. *)
val create_grid : ?obs:Semper_obs.Obs.Registry.t -> Semper_noc.Fabric.t -> grid
val fabric : grid -> Semper_noc.Fabric.t
val engine : grid -> Semper_sim.Engine.t

(** [create grid ~pe] registers a fresh, privileged DTU for PE [pe].
    Raises [Invalid_argument] if [pe] already has a DTU or is outside
    the fabric's topology. *)
val create : ?endpoints:int -> grid -> pe:int -> t

(** [find grid ~pe] raises [Not_found] if the PE has no DTU. *)
val find : grid -> pe:int -> t

(** {1 Inspection} *)

val pe : t -> int
val endpoint_count : t -> int
val is_privileged : t -> bool

(** Messages dropped at this DTU because a receive endpoint was full. *)
val drops : t -> int

(** {1 Configuration} *)

(** Boot-time downgrade (paper §2.2: all DTUs start privileged and are
    downgraded by the kernel, except kernel PEs). *)
val deprivilege : t -> unit

(** Local configuration; requires the DTU to be privileged. *)

val configure_send :
  t -> ep:int -> dst_pe:int -> dst_ep:int -> credits:int -> (unit, error) result

val configure_receive :
  t -> ep:int -> slots:int -> handler:(Message.t -> unit) -> (unit, error) result

(** [host_pe] is the PE (or memory-controller tile) holding the target
    memory; reads and writes are charged a NoC round trip to it. *)
val configure_memory :
  t -> ep:int -> host_pe:int -> base:int64 -> size:int64 -> writable:bool -> (unit, error) result

val invalidate : t -> ep:int -> (unit, error) result

(** Kernel-side remote configuration: [by] must be a privileged DTU.
    The real hardware does this via privileged NoC packets; the latency
    is charged by the caller (kernel) as part of syscall cost. *)
val configure_remote :
  by:t ->
  t ->
  ep:int ->
  [ `Send of int * int * int  (** dst_pe, dst_ep, credits *)
  | `Receive of int * (Message.t -> unit)  (** slots, handler *)
  | `Memory of int * int64 * int64 * bool  (** host_pe, base, size, writable *)
  | `Invalidate ] ->
  (unit, error) result

(** {1 Data transfer} *)

(** [send t ~ep ~bytes ~payload] consumes a credit and delivers to the
    configured destination after the NoC latency. If the destination
    receive endpoint is full on arrival the message is dropped (counted
    at the receiving DTU) and the credit is still returned. *)
val send : t -> ep:int -> bytes:int -> payload:Message.payload -> (unit, error) result

(** Free the receive slot occupied by [msg] and return the sender's
    credit. Must be called exactly once per delivered message. *)
val ack : grid -> Message.t -> unit

(** Credits currently available on a send endpoint. *)
val credits : t -> ep:int -> (int, error) result

(** Receive slots currently free. *)
val free_slots : t -> ep:int -> (int, error) result

(** [read t ~ep ~offset ~bytes k] models a remote-memory read through a
    memory endpoint: validates the window, charges a NoC round trip,
    then runs [k]. [write] is analogous and additionally requires the
    endpoint to be writable. *)
val read : t -> ep:int -> offset:int64 -> bytes:int -> (unit -> unit) -> (unit, error) result

val write : t -> ep:int -> offset:int64 -> bytes:int -> (unit -> unit) -> (unit, error) result

(** Grid-wide image of every DTU's volatile state: per-endpoint credit
    windows and slot occupancy, the privilege bit, and drop counts.
    Receive handlers are closures and travel only inside whole-image
    checkpoints, so [restore_grid] requires each endpoint to already
    hold the snapshot's configuration kind ([Invalid_argument]
    otherwise) and restores only the volatile part. *)
type snapshot

val snapshot_grid : grid -> snapshot
val restore_grid : grid -> snapshot -> unit
