type error =
  | No_credits
  | Invalid_endpoint
  | Wrong_kind
  | Not_privileged
  | Out_of_bounds
  | No_permission

let error_to_string = function
  | No_credits -> "no credits"
  | Invalid_endpoint -> "invalid endpoint"
  | Wrong_kind -> "wrong endpoint kind"
  | Not_privileged -> "not privileged"
  | Out_of_bounds -> "out of bounds"
  | No_permission -> "no permission"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let default_endpoints = 16
let default_slots = 32

type endpoint =
  | Free
  | Send of { dst_pe : int; dst_ep : int; mutable credits : int; max_credits : int }
  | Receive of { slots : int; mutable occupied : int; handler : Message.t -> unit }
  | Memory of { host_pe : int; base : int64; size : int64; writable : bool }

type t = {
  grid : grid;
  pe : int;
  endpoints : endpoint array;
  mutable privileged : bool;
  mutable drops : int;
}

and grid = {
  fabric : Semper_noc.Fabric.t;
  dtus : (int, t) Hashtbl.t;
  (* Grid-wide aggregates; each DTU also keeps its own [drops]. *)
  g_sends : Semper_obs.Obs.Registry.counter;
  g_drops : Semper_obs.Obs.Registry.counter;
}

let create_grid ?obs fabric =
  let obs = match obs with Some r -> r | None -> Semper_obs.Obs.Registry.create () in
  {
    fabric;
    dtus = Hashtbl.create 64;
    g_sends = Semper_obs.Obs.Registry.counter obs "dtu.sends";
    g_drops = Semper_obs.Obs.Registry.counter obs "dtu.drops";
  }
let fabric g = g.fabric
let engine g = Semper_noc.Fabric.engine g.fabric

let create ?(endpoints = default_endpoints) grid ~pe =
  if Hashtbl.mem grid.dtus pe then invalid_arg "Dtu.create: PE already has a DTU";
  if pe < 0 || pe >= Semper_noc.Topology.pe_count (Semper_noc.Fabric.topology grid.fabric) then
    invalid_arg "Dtu.create: PE outside topology";
  if endpoints <= 0 then invalid_arg "Dtu.create: no endpoints";
  let t = { grid; pe; endpoints = Array.make endpoints Free; privileged = true; drops = 0 } in
  Hashtbl.add grid.dtus pe t;
  t

let find grid ~pe =
  match Hashtbl.find_opt grid.dtus pe with
  | Some t -> t
  | None -> raise Not_found

let pe t = t.pe
let endpoint_count t = Array.length t.endpoints
let is_privileged t = t.privileged
let drops t = t.drops
let deprivilege t = t.privileged <- false

let check_ep t ep = ep >= 0 && ep < Array.length t.endpoints

let set_endpoint t ~ep config =
  if not (check_ep t ep) then Error Invalid_endpoint
  else begin
    t.endpoints.(ep) <- config;
    Ok ()
  end

let configure_send t ~ep ~dst_pe ~dst_ep ~credits =
  if not t.privileged then Error Not_privileged
  else if credits <= 0 then invalid_arg "Dtu.configure_send: non-positive credits"
  else set_endpoint t ~ep (Send { dst_pe; dst_ep; credits; max_credits = credits })

let configure_receive t ~ep ~slots ~handler =
  if not t.privileged then Error Not_privileged
  else if slots <= 0 then invalid_arg "Dtu.configure_receive: non-positive slots"
  else set_endpoint t ~ep (Receive { slots; occupied = 0; handler })

let configure_memory t ~ep ~host_pe ~base ~size ~writable =
  if not t.privileged then Error Not_privileged
  else if Int64.compare size 0L < 0 then invalid_arg "Dtu.configure_memory: negative size"
  else set_endpoint t ~ep (Memory { host_pe; base; size; writable })

let invalidate t ~ep =
  if not t.privileged then Error Not_privileged else set_endpoint t ~ep Free

let configure_remote ~by t ~ep config =
  if not by.privileged then Error Not_privileged
  else
    (* Privileged remote configuration bypasses the target's privilege
       bit: this is exactly the kernel-only path the hardware offers. *)
    match config with
    | `Send (dst_pe, dst_ep, credits) ->
      if credits <= 0 then invalid_arg "Dtu.configure_remote: non-positive credits"
      else set_endpoint t ~ep (Send { dst_pe; dst_ep; credits; max_credits = credits })
    | `Receive (slots, handler) ->
      if slots <= 0 then invalid_arg "Dtu.configure_remote: non-positive slots"
      else set_endpoint t ~ep (Receive { slots; occupied = 0; handler })
    | `Memory (host_pe, base, size, writable) ->
      if Int64.compare size 0L < 0 then invalid_arg "Dtu.configure_remote: negative size"
      else set_endpoint t ~ep (Memory { host_pe; base; size; writable })
    | `Invalidate -> set_endpoint t ~ep Free

let return_credit grid ~pe ~ep =
  match Hashtbl.find_opt grid.dtus pe with
  | None -> ()
  | Some sender -> (
    if check_ep sender ep then
      match sender.endpoints.(ep) with
      | Send s -> if s.credits < s.max_credits then s.credits <- s.credits + 1
      | Free | Receive _ | Memory _ -> ())

let send t ~ep ~bytes ~payload =
  if not (check_ep t ep) then Error Invalid_endpoint
  else
    match t.endpoints.(ep) with
    | Free | Receive _ | Memory _ -> Error Wrong_kind
    | Send s ->
      if s.credits <= 0 then Error No_credits
      else begin
        s.credits <- s.credits - 1;
        Semper_obs.Obs.Registry.incr t.grid.g_sends;
        let msg =
          { Message.src_pe = t.pe; src_ep = ep; dst_pe = s.dst_pe; dst_ep = s.dst_ep; bytes; payload }
        in
        Semper_noc.Fabric.send t.grid.fabric ~src:t.pe ~dst:s.dst_pe ~bytes (fun () ->
            match Hashtbl.find_opt t.grid.dtus s.dst_pe with
            | None ->
              (* Destination vanished: drop, return credit. *)
              return_credit t.grid ~pe:msg.Message.src_pe ~ep:msg.Message.src_ep
            | Some dst -> (
              if not (check_ep dst msg.Message.dst_ep) then begin
                dst.drops <- dst.drops + 1;
                Semper_obs.Obs.Registry.incr t.grid.g_drops;
                return_credit t.grid ~pe:msg.Message.src_pe ~ep:msg.Message.src_ep
              end
              else
                match dst.endpoints.(msg.Message.dst_ep) with
                | Receive r when r.occupied < r.slots ->
                  r.occupied <- r.occupied + 1;
                  r.handler msg
                | Receive _ | Free | Send _ | Memory _ ->
                  (* Full or misconfigured endpoint: the hardware loses
                     the message (paper §4.1). *)
                  dst.drops <- dst.drops + 1;
                  Semper_obs.Obs.Registry.incr t.grid.g_drops;
                  return_credit t.grid ~pe:msg.Message.src_pe ~ep:msg.Message.src_ep));
        Ok ()
      end

(* The grid's mutable surface, endpoint by endpoint. Receive handlers
   are closures and travel only inside whole-image checkpoints, so the
   in-place restore requires every endpoint to already hold the same
   configuration kind as the snapshot; what it restores is the volatile
   part — credit windows, slot occupancy, the privilege bit, drop
   counts. *)
type ep_state = E_free | E_send of int  (* credits *) | E_receive of int  (* occupied *) | E_memory

type dtu_state = {
  d_pe : int;
  d_eps : ep_state array;
  d_privileged : bool;
  d_drops : int;
}

type snapshot = dtu_state list  (* sorted by PE *)

let snapshot_grid grid =
  Hashtbl.fold
    (fun pe t acc ->
      {
        d_pe = pe;
        d_eps =
          Array.map
            (function
              | Free -> E_free
              | Send s -> E_send s.credits
              | Receive r -> E_receive r.occupied
              | Memory _ -> E_memory)
            t.endpoints;
        d_privileged = t.privileged;
        d_drops = t.drops;
      }
      :: acc)
    grid.dtus []
  |> List.sort (fun a b -> Int.compare a.d_pe b.d_pe)

let restore_grid grid s =
  List.iter
    (fun d ->
      match Hashtbl.find_opt grid.dtus d.d_pe with
      | None -> invalid_arg "Dtu.restore_grid: snapshot mentions a PE without a DTU"
      | Some t ->
        if Array.length d.d_eps <> Array.length t.endpoints then
          invalid_arg "Dtu.restore_grid: endpoint count mismatch";
        Array.iteri
          (fun ep st ->
            match (t.endpoints.(ep), st) with
            | Free, E_free | Memory _, E_memory -> ()
            | Send snd_ep, E_send credits -> snd_ep.credits <- credits
            | Receive r, E_receive occupied -> r.occupied <- occupied
            | _ ->
              invalid_arg
                (Printf.sprintf "Dtu.restore_grid: endpoint %d.%d kind mismatch" d.d_pe ep))
          d.d_eps;
        t.privileged <- d.d_privileged;
        t.drops <- d.d_drops)
    s

let ack grid (msg : Message.t) =
  (match Hashtbl.find_opt grid.dtus msg.dst_pe with
  | None -> ()
  | Some dst -> (
    if check_ep dst msg.dst_ep then
      match dst.endpoints.(msg.dst_ep) with
      | Receive r -> if r.occupied > 0 then r.occupied <- r.occupied - 1
      | Free | Send _ | Memory _ -> ()));
  return_credit grid ~pe:msg.src_pe ~ep:msg.src_ep

let credits t ~ep =
  if not (check_ep t ep) then Error Invalid_endpoint
  else
    match t.endpoints.(ep) with
    | Send s -> Ok s.credits
    | Free | Receive _ | Memory _ -> Error Wrong_kind

let free_slots t ~ep =
  if not (check_ep t ep) then Error Invalid_endpoint
  else
    match t.endpoints.(ep) with
    | Receive r -> Ok (r.slots - r.occupied)
    | Free | Send _ | Memory _ -> Error Wrong_kind

let memory_access t ~ep ~offset ~bytes ~need_write k =
  if not (check_ep t ep) then Error Invalid_endpoint
  else
    match t.endpoints.(ep) with
    | Free | Send _ | Receive _ -> Error Wrong_kind
    | Memory m ->
      if Int64.compare offset 0L < 0 || bytes < 0
         || Int64.compare (Int64.add offset (Int64.of_int bytes)) m.size > 0
      then Error Out_of_bounds
      else if need_write && not m.writable then Error No_permission
      else begin
        (* Request to the memory host plus the data moving back (read)
           or there (write): one round trip carrying the payload once. *)
        let fabric = t.grid.fabric in
        let req = Semper_noc.Fabric.latency fabric ~src:t.pe ~dst:m.host_pe ~bytes:16 in
        let dat = Semper_noc.Fabric.latency fabric ~src:m.host_pe ~dst:t.pe ~bytes in
        Semper_sim.Engine.after (engine t.grid) (Int64.add req dat) k;
        Ok ()
      end

let read t ~ep ~offset ~bytes k = memory_access t ~ep ~offset ~bytes ~need_write:false k
let write t ~ep ~offset ~bytes k = memory_access t ~ep ~offset ~bytes ~need_write:true k
