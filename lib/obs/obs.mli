(** Deterministic observability: metrics registry, span-trace ring
    buffer, and a dependency-free JSON emitter.

    Nothing in this module reads ambient state (wall-clock time,
    environment); timestamps and values come from the caller, so runs
    with identical seeds produce byte-identical snapshots and traces. *)

(** Hand-rolled JSON values.  [to_string] is deterministic: object keys
    are emitted in the order given, floats use a fixed rendering, and
    non-finite floats become [null] (there is no valid JSON spelling
    for them).  [parse] is a small validator used by tests. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Parse a complete JSON document. Escape sequences are decoded
      loosely ([\uXXXX] collapses to ['?']); intended for validating
      our own emitter's output, not as a general-purpose parser. *)
  val parse : string -> (t, string) result
end

(** Named instruments: monotone counters, callback gauges, and
    fixed-bucket latency histograms.  Instruments are created on first
    use ([counter]/[histogram] are get-or-create); re-registering a
    name with a different kind raises [Invalid_argument]. *)
module Registry : sig
  type t
  type counter
  type histogram

  val create : unit -> t

  val counter : t -> string -> counter
  val incr : ?by:int -> counter -> unit
  val value : counter -> int

  (** [gauge t name f] registers [f] to be sampled at snapshot time.
      Registering the same name again replaces the callback. *)
  val gauge : t -> string -> (unit -> float) -> unit

  (** [histogram t name ~buckets] with upper bucket bounds in
      increasing order; an implicit overflow bucket is appended. *)
  val histogram : t -> string -> buckets:float array -> histogram

  val observe : histogram -> float -> unit
  val bucket_counts : histogram -> int array
  val acc : histogram -> Semper_util.Stats.Acc.t

  (** Registered instrument names, sorted. *)
  val names : t -> string list

  (** [snapshot t] renders every instrument, sorted by name.  Histogram
      [min]/[max]/[mean]/[sum] are [null] when the count is zero. *)
  val snapshot : t -> Json.t

  (** Closure-free image of every instrument, sorted by name — the
      registry's contribution to a checkpoint. Gauges are sampled into
      the dump (their value is derived from live simulation state) but
      skipped on restore; counters and histograms restore in place.
      [restore] creates counters the live registry has not lazily
      created yet, and raises [Invalid_argument] on a kind or bucket
      mismatch rather than misapplying state. *)
  type instrument_state =
    | S_counter of int
    | S_gauge of float
    | S_histogram of { h_buckets : int array; h_acc : Semper_util.Stats.Acc.state }

  type state = (string * instrument_state) list

  val dump : t -> state
  val restore : t -> state -> unit
end

(** Bounded ring buffer of trace events, ordered by insertion (which,
    in the simulator, is sim-clock order). *)
module Trace : sig
  type event = {
    ts : int64;
    kind : string;
    op : int;
    src : int;
    dst : int;
    detail : string;
  }

  type t

  (** Raises [Invalid_argument] on a non-positive capacity. *)
  val create : capacity:int -> t

  val record :
    t -> ts:int64 -> kind:string -> ?op:int -> ?src:int -> ?dst:int -> ?detail:string -> unit -> unit

  (** Total events ever recorded (including overwritten ones). *)
  val recorded : t -> int

  (** Events lost to ring wraparound. *)
  val dropped : t -> int

  (** Retained events, oldest first. *)
  val events : t -> event list

  (** Last [n] retained events, oldest first. *)
  val tail : t -> n:int -> event list

  val event_json : event -> Json.t

  (** All retained events as JSON Lines (one object per line). *)
  val to_jsonl : t -> string

  (** Ring contents plus the recorded count, for checkpoint/restore.
      [restore] raises [Invalid_argument] if the live ring's capacity
      differs from the snapshot's. *)
  type state

  val dump : t -> state
  val restore : t -> state -> unit
end
