(* Deterministic observability: a metrics registry, a span-trace ring
   buffer, and a hand-rolled JSON emitter.  Everything here is driven by
   values the caller passes in (simulated cycles, instrument names);
   nothing reads wall-clock time or other ambient state, so two runs with
   the same seeds produce byte-identical snapshots and traces. *)

module Stats = Semper_util.Stats

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* A fixed, locale-independent float rendering: integral values print
     with one decimal, everything else with enough digits to round-trip.
     Non-finite values have no JSON spelling and become null upstream. *)
  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  (* Minimal recursive-descent parser, used by tests and the smoke
     harness to validate that emitted output is well-formed JSON.
     Escapes are decoded approximately (\uXXXX collapses to '?'), which
     is enough for validation. *)
  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            String.iter
              (fun c ->
                match c with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> fail "bad \\u escape")
              (String.sub s !pos 4);
            pos := !pos + 4;
            Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          loop ()
        | Some c when Char.code c < 0x20 -> fail "raw control character in string"
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let consume_while p =
        while (match peek () with Some c when p c -> true | _ -> false) do
          advance ()
        done
      in
      if peek () = Some '-' then advance ();
      consume_while (fun c -> c >= '0' && c <= '9');
      let is_float = ref false in
      if peek () = Some '.' then begin
        is_float := true;
        advance ();
        consume_while (fun c -> c >= '0' && c <= '9')
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume_while (fun c -> c >= '0' && c <= '9')
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if text = "" || text = "-" then fail "bad number";
      if !is_float then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

module Registry = struct
  type counter = { mutable count : int }

  type histogram = {
    bounds : float array;
    bucket_counts : int array; (* length = Array.length bounds + 1; last is overflow *)
    acc : Stats.Acc.t;
  }

  type instrument =
    | Counter of counter
    | Gauge of (unit -> float)
    | Histogram of histogram

  type t = { instruments : (string, instrument) Hashtbl.t }

  let create () = { instruments = Hashtbl.create 64 }

  let kind_name = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"

  let clash name got want =
    invalid_arg
      (Printf.sprintf "Obs.Registry: %s already registered as a %s, not a %s" name
         (kind_name got) want)

  let counter t name =
    match Hashtbl.find_opt t.instruments name with
    | Some (Counter c) -> c
    | Some other -> clash name other "counter"
    | None ->
      let c = { count = 0 } in
      Hashtbl.add t.instruments name (Counter c);
      c

  let incr ?(by = 1) c = c.count <- c.count + by
  let value c = c.count

  let gauge t name f =
    match Hashtbl.find_opt t.instruments name with
    | Some (Gauge _) | None -> Hashtbl.replace t.instruments name (Gauge f)
    | Some other -> clash name other "gauge"

  let histogram t name ~buckets =
    match Hashtbl.find_opt t.instruments name with
    | Some (Histogram h) ->
      if h.bounds <> buckets then
        invalid_arg
          (Printf.sprintf "Obs.Registry: histogram %s re-registered with different buckets" name);
      h
    | Some other -> clash name other "histogram"
    | None ->
      let h =
        {
          bounds = Array.copy buckets;
          bucket_counts = Array.make (Array.length buckets + 1) 0;
          acc = Stats.Acc.create ();
        }
      in
      Hashtbl.add t.instruments name (Histogram h);
      h

  let observe h x =
    let rec find i =
      if i >= Array.length h.bounds then i
      else if x <= h.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
    Stats.Acc.add h.acc x

  let bucket_counts h = Array.copy h.bucket_counts
  let acc h = h.acc

  let names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.instruments []
    |> List.sort String.compare

  (* Closure-free image of every instrument, keyed and sorted by name.
     Gauges are sampled (their value is derived from live state and is
     recomputed, not restored); counters and histograms restore in
     place. *)
  type instrument_state =
    | S_counter of int
    | S_gauge of float
    | S_histogram of { h_buckets : int array; h_acc : Stats.Acc.state }

  type state = (string * instrument_state) list

  let dump t =
    List.map
      (fun name ->
        let st =
          match Hashtbl.find t.instruments name with
          | Counter c -> S_counter c.count
          | Gauge f -> S_gauge (f ())
          | Histogram h ->
            S_histogram { h_buckets = Array.copy h.bucket_counts; h_acc = Stats.Acc.dump h.acc }
        in
        (name, st))
      (names t)

  let restore t state =
    List.iter
      (fun (name, st) ->
        match (Hashtbl.find_opt t.instruments name, st) with
        | Some (Counter c), S_counter v -> c.count <- v
        | None, S_counter v -> Hashtbl.add t.instruments name (Counter { count = v })
        | (Some (Gauge _) | None), S_gauge _ -> ()
        | Some (Histogram h), S_histogram { h_buckets; h_acc } ->
          if Array.length h_buckets <> Array.length h.bucket_counts then
            invalid_arg
              (Printf.sprintf "Obs.Registry.restore: histogram %s has different buckets" name);
          Array.blit h_buckets 0 h.bucket_counts 0 (Array.length h_buckets);
          Stats.Acc.restore h.acc h_acc
        | Some other, _ ->
          invalid_arg
            (Printf.sprintf "Obs.Registry.restore: %s is a %s in the live registry" name
               (kind_name other))
        | None, S_histogram _ ->
          invalid_arg
            (Printf.sprintf "Obs.Registry.restore: histogram %s missing from live registry" name))
      state

  (* The snapshot is sorted by instrument name so that lazy creation
     order (which depends on which ops a workload happens to exercise
     first) never shows through in the output. *)
  let snapshot t =
    let instrument_json = function
      | Counter c -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.count) ]
      | Gauge f -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float (f ())) ]
      | Histogram h ->
        let n = Stats.Acc.count h.acc in
        let opt v = if n = 0 then Json.Null else Json.Float v in
        Json.Obj
          [
            ("type", Json.Str "histogram");
            ("count", Json.Int n);
            ("sum", opt (Stats.Acc.sum h.acc));
            ("mean", opt (Stats.Acc.mean h.acc));
            ("min", opt (Stats.Acc.min h.acc));
            ("max", opt (Stats.Acc.max h.acc));
            ("bounds", Json.Arr (Array.to_list h.bounds |> List.map (fun b -> Json.Float b)));
            ( "buckets",
              Json.Arr (Array.to_list h.bucket_counts |> List.map (fun c -> Json.Int c)) );
          ]
    in
    Json.Obj
      (List.map
         (fun name ->
           (name, instrument_json (Hashtbl.find t.instruments name)))
         (names t))
end

(* ------------------------------------------------------------------ *)
(* Span tracing                                                        *)

module Trace = struct
  type event = {
    ts : int64; (* simulated cycle of the event *)
    kind : string; (* e.g. "syscall_enter", "ikc_send", "revoke_mark" *)
    op : int; (* protocol op id, or -1 when not op-tagged *)
    src : int; (* source kernel id, or -1 *)
    dst : int; (* destination kernel id, or -1 *)
    detail : string; (* free-form: syscall or IKC message name, counts *)
  }

  type t = { capacity : int; ring : event array; mutable recorded : int }

  let dummy = { ts = 0L; kind = ""; op = -1; src = -1; dst = -1; detail = "" }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Obs.Trace.create: non-positive capacity";
    { capacity; ring = Array.make capacity dummy; recorded = 0 }

  let record t ~ts ~kind ?(op = -1) ?(src = -1) ?(dst = -1) ?(detail = "") () =
    t.ring.(t.recorded mod t.capacity) <- { ts; kind; op; src; dst; detail };
    t.recorded <- t.recorded + 1

  let recorded t = t.recorded
  let dropped t = Stdlib.max 0 (t.recorded - t.capacity)

  let events t =
    let kept = Stdlib.min t.recorded t.capacity in
    let first = t.recorded - kept in
    List.init kept (fun i -> t.ring.((first + i) mod t.capacity))

  let tail t ~n =
    let evs = events t in
    let len = List.length evs in
    if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

  let event_json e =
    Json.Obj
      [
        ("ts", Json.Int (Int64.to_int e.ts));
        ("kind", Json.Str e.kind);
        ("op", Json.Int e.op);
        ("src", Json.Int e.src);
        ("dst", Json.Int e.dst);
        ("detail", Json.Str e.detail);
      ]

  let to_jsonl t =
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string buf (Json.to_string (event_json e));
        Buffer.add_char buf '\n')
      (events t);
    Buffer.contents buf

  type state = { st_ring : event array; st_recorded : int }

  let dump t = { st_ring = Array.copy t.ring; st_recorded = t.recorded }

  let restore t s =
    if Array.length s.st_ring <> t.capacity then
      invalid_arg "Obs.Trace.restore: ring capacity does not match the snapshot";
    Array.blit s.st_ring 0 t.ring 0 t.capacity;
    t.recorded <- s.st_recorded
end
