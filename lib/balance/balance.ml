module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Membership = Semper_ddl.Membership
module Key = Semper_ddl.Key
module Cap = Semper_caps.Cap
module Capspace = Semper_caps.Capspace
module Mapdb = Semper_caps.Mapdb
module Obs = Semper_obs.Obs
module System = Semper_kernel.System
module Kernel = Semper_kernel.Kernel
module Vpe = Semper_kernel.Vpe

let src_log = Logs.Src.create "semper.balance" ~doc:"Load balancer"

module Log = (val Logs.src_log src_log : Logs.LOG)

module Policy = struct
  type t =
    | Static
    | Threshold of { high : float; low : float; margin : float; cooldown : int }

  type decision = { src : int; dst : int }

  let default_threshold = Threshold { high = 0.75; low = 0.55; margin = 0.3; cooldown = 3 }

  (* Lowest-id tie-break on both sides: iterate from the highest kernel
     id down and let >= / <= comparisons overwrite, so among equals the
     smallest id survives. Deterministic by construction. *)
  let decide ?(eligible = fun _ -> true) t ~occupancy ~cooldown ~inflight =
    match t with
    | Static -> None
    | Threshold { high; low; margin; cooldown = _ } ->
      let n = Array.length occupancy in
      let busy k = List.exists (fun (a, b) -> a = k || b = k) inflight in
      let free k = eligible k && cooldown.(k) = 0 && not (busy k) in
      let src = ref (-1) in
      for k = n - 1 downto 0 do
        if occupancy.(k) >= high && free k && (!src < 0 || occupancy.(k) >= occupancy.(!src))
        then src := k
      done;
      let dst = ref (-1) in
      for k = n - 1 downto 0 do
        if
          occupancy.(k) <= low && free k && k <> !src
          && (!dst < 0 || occupancy.(k) <= occupancy.(!dst))
        then dst := k
      done;
      if !src >= 0 && !dst >= 0 && occupancy.(!src) -. occupancy.(!dst) >= margin then
        Some { src = !src; dst = !dst }
      else None
end

module Fleet_policy = struct
  type t = { high : float; low : float; cooldown : int; min_active : int }

  type decision =
    | Scale_out
    | Scale_in of int
    | Hold

  let default = { high = 0.60; low = 0.20; cooldown = 4; min_active = 2 }

  (* Fleet sizing is a function of *mean* Active occupancy, not of any
     single kernel: VPE migration (Policy above) already spreads a
     hotspot across the Active set, so the fleet only needs to grow when
     the whole set is saturated and shrink when the whole set idles.
     The high/low gap is the hysteresis band; cooldown/inflight gating
     is the caller's job (the autoscaler ticks while a transition is in
     flight and must hold). *)
  let decide t ~occupancy ~active ~joinable ~drainable =
    match active with
    | [] -> Hold
    | _ ->
      let mean =
        List.fold_left (fun a k -> a +. occupancy.(k)) 0.0 active
        /. float_of_int (List.length active)
      in
      if mean >= t.high then if joinable = [] then Hold else Scale_out
      else if mean <= t.low && List.length active > t.min_active then begin
        (* Drain the emptiest drainable Active kernel; strict < with an
           ascending fold makes the lowest id win ties. *)
        let best =
          List.fold_left
            (fun acc k ->
              if not (drainable k) then acc
              else
                match acc with
                | None -> Some k
                | Some b -> if occupancy.(k) < occupancy.(b) then Some k else acc)
            None active
        in
        match best with Some k -> Scale_in k | None -> Hold
      end
      else Hold
end

type migration = { m_at : int64; m_vpe : int; m_src : int; m_dst : int }

type t = {
  sys : System.t;
  pol : Policy.t;
  interval : int64;
  stop_when : unit -> bool;
  last_busy : int64 array;  (* per kernel, at the previous tick *)
  smoothed : float array;  (* per kernel, EWMA of windowed occupancy *)
  cooldown : int array;  (* per kernel, remaining ineligibility ticks *)
  mutable inflight : (int * int) list;
  mutable migrated : migration list;  (* reverse chronological *)
  mutable tick_count : int;
  mutable timer : Engine.handle option;
  mutable running : bool;
  ctr_ticks : Obs.Registry.counter;
  ctr_migrations : Obs.Registry.counter;
  ctr_skipped : Obs.Registry.counter;
  occ_hist : Obs.Registry.histogram;
}

let occupancy_buckets = [| 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 |]

let create ?(policy = Policy.default_threshold) ?(interval = 50_000L)
    ?(stop_when = fun () -> false) sys =
  let n = System.kernel_count sys in
  let obs = System.obs sys in
  {
    sys;
    pol = policy;
    interval;
    stop_when;
    last_busy = Array.make n 0L;
    smoothed = Array.make n 0.0;
    cooldown = Array.make n 0;
    inflight = [];
    migrated = [];
    tick_count = 0;
    timer = None;
    running = false;
    ctr_ticks = Obs.Registry.counter obs "balance.ticks";
    ctr_migrations = Obs.Registry.counter obs "balance.migrations";
    ctr_skipped = Obs.Registry.counter obs "balance.skipped";
    occ_hist = Obs.Registry.histogram obs "balance.occupancy" ~buckets:occupancy_buckets;
  }

let policy t = t.pol
let ticks t = t.tick_count
let migrations t = List.rev t.migrated

(* --------------------------------------------------------------- *)
(* Candidate selection                                              *)

(* A key is local when the kernel's own membership replica routes its
   PE partition back to this kernel. Mid-handoff or unknown PEs are
   conservatively remote: the records may be in flight. *)
let key_local k key =
  match Membership.kernel_of_pe (Kernel.membership k) (Key.pe key) with
  | owner -> owner = Kernel.id k
  | exception Membership.Mid_handoff _ -> false
  | exception Not_found -> false

(* Migrating a VPE moves every capability record in its PE partition,
   so it is only safe when none of those records can be touched by an
   operation in flight elsewhere: no marked caps (a revoke wave may
   deliver to the old kernel), no remote parent (the parent's kernel
   may push a revoke or unlink down to us mid-transfer) — except
   session capabilities, whose parent is pinned at the service's kernel
   by design and only reached through the membership table — no
   children outside the VPE's own partition, and no service capability
   (services are pinned: peers cache their directory entry). *)
let cap_blocks_migration k (vpe : Vpe.t) key =
  match Mapdb.find (Kernel.mapdb k) key with
  | None -> true (* dangling selector: never move a VPE mid-anomaly *)
  | Some cap ->
    Cap.is_marked cap
    || (match cap.Cap.kind with Cap.Srv_cap _ -> true | _ -> false)
    || (match cap.Cap.parent with
       | Some pk -> (
         match cap.Cap.kind with Cap.Sess_cap _ -> false | _ -> not (key_local k pk))
       | None -> false)
    || Mapdb.exists_child (Kernel.mapdb k) cap.Cap.key (fun ck -> Key.pe ck <> vpe.Vpe.pe)

let spanning_sessions k (vpe : Vpe.t) =
  let n = ref 0 in
  Capspace.iter
    (fun _sel key ->
      match Mapdb.find (Kernel.mapdb k) key with
      | Some { Cap.kind = Cap.Sess_cap _; parent = Some pk; _ } when not (key_local k pk) ->
        incr n
      | Some _ | None -> ())
    vpe.Vpe.capspace;
  !n

let vpe_eligible k (vpe : Vpe.t) =
  Vpe.is_alive vpe
  && (not vpe.Vpe.frozen)
  && (not vpe.Vpe.syscall_pending)
  &&
  let blocked = ref false in
  Capspace.iter
    (fun _sel key -> if (not !blocked) && cap_blocks_migration k vpe key then blocked := true)
    vpe.Vpe.capspace;
  not !blocked

let eligible_vpes t ~kernel =
  let k = System.kernel t.sys kernel in
  Kernel.local_vpes k
  |> List.filter (vpe_eligible k)
  |> List.map (fun v -> (spanning_sessions k v, v))
  |> List.sort (fun (sa, (a : Vpe.t)) (sb, (b : Vpe.t)) ->
         match Int.compare sa sb with 0 -> Int.compare a.Vpe.id b.Vpe.id | c -> c)
  |> List.map snd

(* --------------------------------------------------------------- *)
(* Control tick                                                     *)

(* One window of busy-cycle deltas is noisy: a single client's
   burst/gap cycle reads as 0.9 in one window and 0.1 in the next, and
   the phase shift between kernels would look like imbalance. The EWMA
   only lets load that is *sustained* across several windows reach the
   policy, so a genuine hotspot trips the threshold within a few ticks
   while phase noise never does. *)
let ewma_alpha = 0.4

let sample_occupancy t =
  let kernels = System.kernels t.sys in
  List.iter
    (fun k ->
      let id = Kernel.id k in
      let busy = Server.busy_cycles (Kernel.server k) in
      let delta = Int64.sub busy t.last_busy.(id) in
      t.last_busy.(id) <- busy;
      let o = Int64.to_float delta /. Int64.to_float t.interval in
      let o = if o > 1.0 then 1.0 else o in
      t.smoothed.(id) <- (ewma_alpha *. o) +. ((1.0 -. ewma_alpha) *. t.smoothed.(id));
      Obs.Registry.observe t.occ_hist t.smoothed.(id))
    kernels;
  Array.copy t.smoothed

let execute t (d : Policy.decision) =
  match eligible_vpes t ~kernel:d.Policy.src with
  | [] ->
    Obs.Registry.incr t.ctr_skipped;
    Log.debug (fun m -> m "tick %d: no eligible VPE on kernel %d" t.tick_count d.Policy.src)
  | vpe :: _ ->
    let cool =
      match t.pol with Policy.Threshold { cooldown; _ } -> cooldown | Policy.Static -> 0
    in
    t.cooldown.(d.Policy.src) <- cool;
    t.cooldown.(d.Policy.dst) <- cool;
    let pair = (d.Policy.src, d.Policy.dst) in
    t.inflight <- pair :: t.inflight;
    t.migrated <-
      { m_at = System.now t.sys; m_vpe = vpe.Vpe.id; m_src = d.Policy.src; m_dst = d.Policy.dst }
      :: t.migrated;
    Obs.Registry.incr t.ctr_migrations;
    Log.info (fun m ->
        m "migrating VPE %d: kernel %d -> %d" vpe.Vpe.id d.Policy.src d.Policy.dst);
    (* Keep the system-level replica (spawn routing, audit) in step
       before the kernels start exchanging records. *)
    Membership.reassign (System.membership t.sys) ~pe:vpe.Vpe.pe ~kernel:d.Policy.dst;
    Kernel.migrate_vpe
      (System.kernel t.sys d.Policy.src)
      ~vpe ~dst:d.Policy.dst
      (fun () -> t.inflight <- List.filter (fun p -> p <> pair) t.inflight)

let rec tick t =
  t.timer <- None;
  if t.running then begin
    t.tick_count <- t.tick_count + 1;
    Obs.Registry.incr t.ctr_ticks;
    Array.iteri (fun i c -> if c > 0 then t.cooldown.(i) <- c - 1) t.cooldown;
    let occupancy = sample_occupancy t in
    (* Only Active kernels may shed or receive VPEs: a Draining kernel
       is evacuating (the migrate_vpe destination gate would refuse it)
       and Spare/Retired kernels hold no partitions. *)
    let eligible k =
      Membership.kernel_state (System.membership t.sys) k = Membership.Active
    in
    (match Policy.decide ~eligible t.pol ~occupancy ~cooldown:t.cooldown ~inflight:t.inflight with
    | Some d -> execute t d
    | None -> ());
    (* Re-arm unless the workload reports completion: the engine must be
       able to drain once there is nothing left to balance. *)
    if t.stop_when () then t.running <- false
    else
      t.timer <- Some (Engine.after_cancellable (System.engine t.sys) t.interval (fun () -> tick t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    (* Baseline the busy-cycle window at the moment balancing begins. *)
    List.iter
      (fun k -> t.last_busy.(Kernel.id k) <- Server.busy_cycles (Kernel.server k))
      (System.kernels t.sys);
    t.timer <- Some (Engine.after_cancellable (System.engine t.sys) t.interval (fun () -> tick t))
  end

let stop t =
  t.running <- false;
  (match t.timer with
  | Some h ->
    Engine.cancel (System.engine t.sys) h;
    t.timer <- None
  | None -> ())
