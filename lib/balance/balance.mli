(** Autonomic load balancer: occupancy-driven VPE migration.

    Closes the monitor → decide → migrate loop on top of the PE
    migration protocol (paper §3.2, named future work): a periodic
    control tick samples every kernel PE's busy-cycle counter, a
    pluggable {!Policy} flags an overloaded/underloaded kernel pair,
    and an executor picks a quiescent VPE and drives
    {!Semper_kernel.Kernel.migrate_vpe} towards the underloaded kernel.

    Determinism: the tick runs on the simulation {!Semper_sim.Engine}
    (a cancellable timer), candidates are ranked on sorted VPE lists,
    and the policy breaks ties by lowest kernel id — so the migration
    sequence for a given seed is identical regardless of host
    parallelism. The balancer only observes and never blocks the
    workload: syscalls issued by a mid-migration VPE are held and
    re-dispatched by {!Semper_kernel.System.syscall}. *)

module Policy : sig
  (** A policy sees only windowed occupancy (busy fraction of each
      kernel PE over the last tick interval) plus the balancer's own
      bookkeeping, and names at most one (src, dst) kernel pair. *)
  type t =
    | Static  (** never migrate — the baseline the benchmark compares against *)
    | Threshold of {
        high : float;  (** source kernels must be at or above this occupancy *)
        low : float;  (** destination kernels must be at or below this occupancy *)
        margin : float;
            (** minimum occupancy gap between the pair; hysteresis so a
                marginal imbalance does not cause ping-pong migration *)
        cooldown : int;
            (** ticks during which a kernel that just took part in a
                migration is ineligible (either side) *)
      }

  type decision = { src : int; dst : int }

  (** [Threshold { high = 0.75; low = 0.55; margin = 0.3; cooldown = 3 }] *)
  val default_threshold : t

  (** Pure decision function (exposed for unit tests). [occupancy] is
      indexed by kernel id; [cooldown] holds remaining ineligibility
      ticks per kernel; [inflight] lists kernel pairs with a migration
      still in flight (both members of a pair are ineligible);
      [eligible] (default: everyone) restricts both sides — the live
      tick passes "lifecycle state is [Active]", keeping Spare/Joining/
      Draining/Retired kernels out of VPE migration. Ties are broken
      towards the lowest kernel id on both sides. Returns [None] when
      no pair clears the thresholds and the margin. *)
  val decide :
    ?eligible:(int -> bool) ->
    t ->
    occupancy:float array ->
    cooldown:int array ->
    inflight:(int * int) list ->
    decision option
end

(** Fleet-wide sizing policy: decides when the {e number} of Active
    kernels should change, complementing {!Policy}, which only shuffles
    VPEs among a fixed Active set. Pure — the autoscaler in [lib/fleet]
    owns cooldown and in-flight gating and drives the actual
    [Fleet.join]/[Fleet.drain] transitions. *)
module Fleet_policy : sig
  type t = {
    high : float;
        (** mean Active-kernel occupancy at or above this → scale out *)
    low : float;
        (** mean Active-kernel occupancy at or below this → scale in;
            the [low]–[high] gap is the hysteresis band *)
    cooldown : int;  (** autoscaler ticks to hold after any transition *)
    min_active : int;  (** never drain below this many Active kernels *)
  }

  type decision =
    | Scale_out  (** join one Spare/Retired kernel *)
    | Scale_in of int  (** drain this kernel (the emptiest drainable) *)
    | Hold

  (** [{ high = 0.60; low = 0.20; cooldown = 4; min_active = 2 }] *)
  val default : t

  (** [decide t ~occupancy ~active ~joinable ~drainable]: [active] is
      the sorted list of Active kernel ids, [joinable] the kernels that
      could be scaled out (Spare or Retired), [drainable] a safety gate
      consulted per Active kernel before naming it for scale-in.
      Scale-in ties break towards the lowest kernel id. *)
  val decide :
    t ->
    occupancy:float array ->
    active:int list ->
    joinable:int list ->
    drainable:(int -> bool) ->
    decision
end

(** EWMA smoothing factor both control loops (VPE balancing here, fleet
    sizing in [lib/fleet]) apply to windowed occupancy samples: only
    load sustained across several windows reaches a policy. *)
val ewma_alpha : float

(** One executed (or in-flight) migration, in decision order. *)
type migration = { m_at : int64; m_vpe : int; m_src : int; m_dst : int }

type t

(** [create ?policy ?interval ?stop_when sys] builds a balancer over
    [sys]. [interval] is the control-tick period in cycles (default
    50_000). [stop_when] is polled at each tick; once it returns [true]
    the timer is not re-armed, so a finished workload drains the engine
    without {!stop} having to be called. Registers
    [balance.ticks]/[balance.migrations]/[balance.skipped] counters and
    a [balance.occupancy] histogram in the system's metrics registry.
    The occupancy baseline is sampled at {!start}, not at creation. *)
val create :
  ?policy:Policy.t ->
  ?interval:int64 ->
  ?stop_when:(unit -> bool) ->
  Semper_kernel.System.t ->
  t

(** Arm the control tick. No-op if already running. *)
val start : t -> unit

(** Cancel the control tick. Safe to call when not running. *)
val stop : t -> unit

val policy : t -> Policy.t

(** Control ticks executed so far. *)
val ticks : t -> int

(** Migrations decided so far, in chronological order. *)
val migrations : t -> migration list

(** [eligible_vpes t ~kernel] — the VPEs the executor would consider
    moving off [kernel] right now, ranked as the executor ranks them
    (fewest cross-group session capabilities first, then lowest VPE
    id). A VPE qualifies only when migrating it cannot race an
    in-flight operation: it is alive, not frozen, has no syscall in
    flight, and none of its capabilities is marked for revocation, is a
    service capability, has a remote parent (session capabilities
    excepted — their parent is pinned at the service's kernel by
    design), or has children outside the VPE's own PE partition.
    Exposed for tests. *)
val eligible_vpes : t -> kernel:int -> Semper_kernel.Vpe.t list
