(** Int-indexed capability arena.

    Flat storage for the per-kernel capability database: records are
    addressed by dense slot ids handed out from a free list, child
    links are cells in flat arrays threaded as per-parent sibling
    lists (first/next/prev indices) instead of [Key.t list] heap
    spines, and intrusive per-VPE and per-PE chains make ownership
    queries O(owned) instead of O(database). A slot <-> [Key.t] index
    keeps the outside world key-addressed: slot ids never escape this
    module, so snapshots and checkpoint images stay portable across
    allocation histories.

    Determinism contract: iteration is in slot order and the free
    lists are LIFO, so for a fixed operation history every traversal
    order is fixed — independent of hashing, domains, or host.

    Everything inside is plain OCaml data (arrays, lists, hashtables):
    the arena marshals, which whole-image fuzz checkpoints rely on. *)

type t

val create : unit -> t

(** Raises [Invalid_argument] if the key is already present. *)
val insert : t -> Cap.t -> unit

val find : t -> Semper_ddl.Key.t -> Cap.t option
val mem : t -> Semper_ddl.Key.t -> bool

(** Remove the record, releasing its slot and all of its child cells.
    No-op if absent. Links *to* the removed key held by other records
    are untouched (they dangle, exactly as the protocols expect). *)
val remove : t -> Semper_ddl.Key.t -> unit

val count : t -> int

(** Slot-order iteration over live records. *)
val iter : (Cap.t -> unit) -> t -> unit

val fold : ('acc -> Cap.t -> 'acc) -> 'acc -> t -> 'acc

(** [add_child t ~parent k] appends [k] to [parent]'s child list.
    O(1): the duplicate check is a hash probe, the append links a cell
    at the tail. Raises [Invalid_argument] on a duplicate child or a
    missing parent record. *)
val add_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> unit

(** No-op if the parent or the link is absent. *)
val remove_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> unit

(** O(1); [false] if the parent record is absent. *)
val has_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> bool

(** Children in insertion order; [[]] if the record is absent. *)
val children : t -> Semper_ddl.Key.t -> Semper_ddl.Key.t list

val child_count : t -> Semper_ddl.Key.t -> int
val iter_children : t -> Semper_ddl.Key.t -> (Semper_ddl.Key.t -> unit) -> unit
val exists_child : t -> Semper_ddl.Key.t -> (Semper_ddl.Key.t -> bool) -> bool

(** Replace the whole child list (record install during migration). *)
val set_children : t -> Semper_ddl.Key.t -> Semper_ddl.Key.t list -> unit

(** Records owned by [vpe], in insertion order — O(owned). *)
val caps_of_vpe : t -> vpe:int -> Cap.t list

(** Records whose key partition is [pe], in insertion order —
    O(records in the partition). *)
val caps_of_pe : t -> pe:int -> Cap.t list

(** Drop every record and cell; capacity is retained. *)
val clear : t -> unit
