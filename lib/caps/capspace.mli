(** Per-VPE capability space: selector → DDL key.

    Applications name capabilities by small integer selectors, exactly
    like file descriptors; the kernel resolves selectors through the
    VPE's capability space before touching the mapping database. *)

type selector = int

type t

val create : unit -> t

(** Allocate the lowest free selector for [key]. *)
val insert : t -> Semper_ddl.Key.t -> selector

(** Bind a specific selector. Raises [Invalid_argument] if taken. *)
val insert_at : t -> selector -> Semper_ddl.Key.t -> unit

val find : t -> selector -> Semper_ddl.Key.t option

(** Reverse lookup, O(1) via the maintained inverse index. *)
val selector_of : t -> Semper_ddl.Key.t -> selector option

(** [remove t sel] is a no-op if unbound. *)
val remove : t -> selector -> unit

(** Remove the binding of [key] if present. *)
val remove_key : t -> Semper_ddl.Key.t -> unit

val count : t -> int
val iter : (selector -> Semper_ddl.Key.t -> unit) -> t -> unit

(** Selector bindings plus the allocation hint, sorted by selector.
    [restore] replaces the bindings wholesale. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
