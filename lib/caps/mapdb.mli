(** Mapping database: one per kernel.

    Stores every capability owned by this kernel and the local part of
    the sharing tree. Cross-kernel parent/child links are DDL keys
    whose records live in another kernel's mapping database; the
    distributed protocols in [Semper_kernel] keep both sides coherent. *)

type t

val create : unit -> t

(** Raises [Invalid_argument] if the key is already present. *)
val insert : t -> Cap.t -> unit

val find : t -> Semper_ddl.Key.t -> Cap.t option

(** Raises [Not_found]. *)
val get : t -> Semper_ddl.Key.t -> Cap.t

val mem : t -> Semper_ddl.Key.t -> bool

(** Remove the record; no-op if absent. Does not touch links. *)
val remove : t -> Semper_ddl.Key.t -> unit

val count : t -> int
val iter : (Cap.t -> unit) -> t -> unit
val fold : ('acc -> Cap.t -> 'acc) -> 'acc -> t -> 'acc

(** Capabilities owned by a VPE (linear scan; used on VPE teardown). *)
val caps_of_vpe : t -> vpe:int -> Cap.t list

(** Allocate a fresh object id for keys minted by this kernel on behalf
    of creator [(pe, vpe)]. Monotonic per database. *)
val fresh_obj : t -> int

(** [bump_obj t n] ensures future [fresh_obj] results are strictly
    greater than [n] — needed when capability records minted elsewhere
    move into this database (PE migration). *)
val bump_obj : t -> int -> unit

(** Internal consistency check used by tests and assertions: every
    locally-stored child whose parent is also local must appear in that
    parent's child list, and vice versa. Returns error strings. *)
val check_local_links : t -> string list

(** Full copy of the database: every record (capability records are
    pure data, so copies are deep) sorted by key, plus the object-id
    cursor. [restore] replaces the database contents wholesale. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
