(** Mapping database: one per kernel.

    Stores every capability owned by this kernel and the local part of
    the sharing tree. Cross-kernel parent/child links are DDL keys
    whose records live in another kernel's mapping database; the
    distributed protocols in [Semper_kernel] keep both sides coherent.

    Backed by the flat {!Arena}: records sit in dense int-indexed
    slots, child links are arena cells rather than [Key.t list]
    spines, and per-VPE / per-PE intrusive chains answer ownership
    queries in O(owned). Slot ids never escape: the API, snapshots,
    and checkpoint images are key-addressed exactly as before. *)

type t

val create : unit -> t

(** Raises [Invalid_argument] if the key is already present. *)
val insert : t -> Cap.t -> unit

val find : t -> Semper_ddl.Key.t -> Cap.t option

(** Raises [Not_found]. *)
val get : t -> Semper_ddl.Key.t -> Cap.t

val mem : t -> Semper_ddl.Key.t -> bool

(** Remove the record and its child cells; no-op if absent. Links held
    by other records are not touched. *)
val remove : t -> Semper_ddl.Key.t -> unit

val count : t -> int

(** Slot-order iteration: deterministic for a fixed operation history,
    independent of hashing or domain count. *)
val iter : (Cap.t -> unit) -> t -> unit

val fold : ('acc -> Cap.t -> 'acc) -> 'acc -> t -> 'acc

(** {2 Child links}

    The sharing-tree child lists live here, as arena cells owned by
    the parent's record. *)

(** [add_child t ~parent k] appends; O(1) duplicate check. Raises
    [Invalid_argument] on a duplicate child or a missing parent. *)
val add_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> unit

(** No-op if the parent record or the link is absent. *)
val remove_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> unit

(** O(1); [false] if the parent record is absent. *)
val has_child : t -> parent:Semper_ddl.Key.t -> Semper_ddl.Key.t -> bool

(** Children in insertion order; [[]] if the record is absent. *)
val children : t -> Semper_ddl.Key.t -> Semper_ddl.Key.t list

val child_count : t -> Semper_ddl.Key.t -> int
val iter_children : t -> Semper_ddl.Key.t -> (Semper_ddl.Key.t -> unit) -> unit
val exists_child : t -> Semper_ddl.Key.t -> (Semper_ddl.Key.t -> bool) -> bool

(** Replace the whole child list (migration record install). Raises
    [Invalid_argument] if the parent record is absent. *)
val set_children : t -> Semper_ddl.Key.t -> Semper_ddl.Key.t list -> unit

(** {2 Ownership queries} *)

(** Capabilities owned by a VPE, in insertion order — O(owned), via
    the arena's intrusive per-VPE chain (used on VPE teardown). *)
val caps_of_vpe : t -> vpe:int -> Cap.t list

(** Capabilities whose key partition is [pe], in insertion order —
    O(records in the partition) (used by PE migration and the
    incremental audit). *)
val caps_of_pe : t -> pe:int -> Cap.t list

(** {2 Dirty partitions}

    Every structural change (insert, remove, link, unlink, restore)
    marks the partitions it touches. [drain_dirty] returns them
    sorted and clears the set — the incremental audit's work list.
    Host-side bookkeeping only: never part of snapshots, fingerprints,
    or simulated cost. *)
val drain_dirty : t -> int list

(** Allocate a fresh object id for keys minted by this kernel on behalf
    of creator [(pe, vpe)]. Monotonic per database. *)
val fresh_obj : t -> int

(** [bump_obj t n] ensures future [fresh_obj] results are strictly
    greater than [n] — needed when capability records minted elsewhere
    move into this database (PE migration). *)
val bump_obj : t -> int -> unit

(** Internal consistency check used by tests and assertions: every
    locally-stored child whose parent is also local must appear in that
    parent's child list, and vice versa. Returns error strings. *)
val check_local_links : t -> string list

(** Full copy of the database: every record (capability records are
    pure data, so copies are deep) with its child keys, sorted by key,
    plus the object-id cursor. No slot index escapes, so snapshots are
    portable across allocation histories and restored databases
    fingerprint identically. [restore] replaces the contents wholesale
    and marks both the old and the new partitions dirty. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
