module Key = Semper_ddl.Key

type t = {
  arena : Arena.t;
  mutable next_obj : int;
  (* Partitions (key PE numbers) touched by a structural change since
     the last [drain_dirty] — consumed by the incremental audit. Pure
     host-side bookkeeping: not part of snapshots or fingerprints. *)
  dirty : (int, unit) Hashtbl.t;
}

let create () = { arena = Arena.create (); next_obj = 0; dirty = Hashtbl.create 16 }

let touch t key = Hashtbl.replace t.dirty (Key.pe key) ()

let insert t cap =
  Arena.insert t.arena cap;
  touch t cap.Cap.key

let find t key = Arena.find t.arena key

let get t key =
  match find t key with
  | Some c -> c
  | None -> raise Not_found

let mem t key = Arena.mem t.arena key

let remove t key =
  if Arena.mem t.arena key then begin
    Arena.remove t.arena key;
    touch t key
  end

let count t = Arena.count t.arena
let iter f t = Arena.iter f t.arena
let fold f acc t = Arena.fold f acc t.arena

let caps_of_vpe t ~vpe = Arena.caps_of_vpe t.arena ~vpe
let caps_of_pe t ~pe = Arena.caps_of_pe t.arena ~pe

let add_child t ~parent key =
  Arena.add_child t.arena ~parent key;
  touch t parent;
  touch t key

let remove_child t ~parent key =
  Arena.remove_child t.arena ~parent key;
  touch t parent;
  touch t key

let has_child t ~parent key = Arena.has_child t.arena ~parent key
let children t parent = Arena.children t.arena parent
let child_count t parent = Arena.child_count t.arena parent
let iter_children t parent f = Arena.iter_children t.arena parent f
let exists_child t parent f = Arena.exists_child t.arena parent f

let set_children t parent keys =
  Arena.set_children t.arena parent keys;
  touch t parent;
  List.iter (fun k -> touch t k) keys

let drain_dirty t =
  let pes = Hashtbl.fold (fun pe () acc -> pe :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort compare pes

let fresh_obj t =
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  obj

let bump_obj t n = if n >= t.next_obj then t.next_obj <- n + 1

(* Snapshots carry record copies plus their child keys, sorted by key:
   no slot or cell index escapes, so images are portable across
   allocation histories and fingerprints depend only on contents. *)
type snapshot = { s_caps : (Cap.t * Key.t list) list; s_next_obj : int }

let snapshot t =
  {
    s_caps =
      fold (fun acc c -> (Cap.copy c, Arena.children t.arena c.Cap.key) :: acc) [] t
      |> List.sort (fun (a, _) (b, _) -> Key.compare a.Cap.key b.Cap.key);
    s_next_obj = t.next_obj;
  }

let restore t s =
  (* Both the discarded and the incoming contents must be re-audited. *)
  iter (fun c -> touch t c.Cap.key) t;
  Arena.clear t.arena;
  List.iter
    (fun (c, _) ->
      Arena.insert t.arena (Cap.copy c);
      touch t c.Cap.key)
    s.s_caps;
  List.iter (fun (c, kids) -> set_children t c.Cap.key kids) s.s_caps;
  t.next_obj <- s.s_next_obj

let check_local_links t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  iter
    (fun cap ->
      iter_children t cap.Cap.key (fun child_key ->
          match find t child_key with
          | None -> () (* remote child: checked by the owning kernel *)
          | Some child -> (
            match child.Cap.parent with
            | Some p when Key.equal p cap.Cap.key -> ()
            | Some p ->
              err "child %s of %s has parent %s" (Key.to_string child_key)
                (Key.to_string cap.Cap.key) (Key.to_string p)
            | None ->
              err "child %s of %s has no parent" (Key.to_string child_key)
                (Key.to_string cap.Cap.key)));
      match cap.Cap.parent with
      | None -> ()
      | Some parent_key -> (
        match find t parent_key with
        | None -> () (* remote parent *)
        | Some _ ->
          if not (has_child t ~parent:parent_key cap.Cap.key) then
            err "parent %s does not list child %s" (Key.to_string parent_key)
              (Key.to_string cap.Cap.key)))
    t;
  !errors
