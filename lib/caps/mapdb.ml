module Key = Semper_ddl.Key

type t = { caps : Cap.t Key.Table.t; mutable next_obj : int }

let create () = { caps = Key.Table.create 64; next_obj = 0 }

let insert t cap =
  if Key.Table.mem t.caps cap.Cap.key then invalid_arg "Mapdb.insert: duplicate key";
  Key.Table.add t.caps cap.Cap.key cap

let find t key = Key.Table.find_opt t.caps key

let get t key =
  match find t key with
  | Some c -> c
  | None -> raise Not_found

let mem t key = Key.Table.mem t.caps key
let remove t key = Key.Table.remove t.caps key
let count t = Key.Table.length t.caps
let iter f t = Key.Table.iter (fun _ c -> f c) t.caps
let fold f acc t = Key.Table.fold (fun _ c acc -> f acc c) t.caps acc

let caps_of_vpe t ~vpe = fold (fun acc c -> if c.Cap.owner_vpe = vpe then c :: acc else acc) [] t

let fresh_obj t =
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  obj

let bump_obj t n = if n >= t.next_obj then t.next_obj <- n + 1

type snapshot = { s_caps : Cap.t list; s_next_obj : int }  (* copies, sorted by key *)

let snapshot t =
  {
    s_caps =
      fold (fun acc c -> Cap.copy c :: acc) [] t
      |> List.sort (fun a b -> Key.compare a.Cap.key b.Cap.key);
    s_next_obj = t.next_obj;
  }

let restore t s =
  Key.Table.reset t.caps;
  List.iter (fun c -> Key.Table.add t.caps c.Cap.key (Cap.copy c)) s.s_caps;
  t.next_obj <- s.s_next_obj

let check_local_links t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  iter
    (fun cap ->
      List.iter
        (fun child_key ->
          match find t child_key with
          | None -> () (* remote child: checked by the owning kernel *)
          | Some child -> (
            match child.Cap.parent with
            | Some p when Key.equal p cap.Cap.key -> ()
            | Some p ->
              err "child %s of %s has parent %s" (Key.to_string child_key)
                (Key.to_string cap.Cap.key) (Key.to_string p)
            | None ->
              err "child %s of %s has no parent" (Key.to_string child_key)
                (Key.to_string cap.Cap.key)))
        cap.Cap.children;
      match cap.Cap.parent with
      | None -> ()
      | Some parent_key -> (
        match find t parent_key with
        | None -> () (* remote parent *)
        | Some parent ->
          if not (Cap.has_child parent cap.Cap.key) then
            err "parent %s does not list child %s" (Key.to_string parent_key)
              (Key.to_string cap.Cap.key)))
    t;
  !errors
