module Key = Semper_ddl.Key

let nil = -1

(* Array cells need a placeholder; slot liveness is tracked by
   [slots.(i) <> None], cell liveness by membership in a parent's
   sibling list, so the placeholder value is never observed. *)
let dummy_key = Key.make ~pe:0 ~vpe:0 ~kind:Key.Vpe_obj ~obj:0

type t = {
  (* Record plane: one slot per capability. *)
  mutable slots : Cap.t option array;
  mutable slot_free : int list;
  mutable live : int;
  slot_of_key : int Key.Table.t;
  (* Per-slot child-list heads/tails/counts (cell indices). *)
  mutable first_child : int array;
  mutable last_child : int array;
  mutable n_children : int array;
  (* Per-slot intrusive ownership chains (slot indices). *)
  mutable vpe_next : int array;
  mutable vpe_prev : int array;
  mutable pe_next : int array;
  mutable pe_prev : int array;
  vpe_head : (int, int) Hashtbl.t;
  vpe_tail : (int, int) Hashtbl.t;
  pe_head : (int, int) Hashtbl.t;
  pe_tail : (int, int) Hashtbl.t;
  (* Child-cell plane: flat doubly-linked sibling lists. *)
  mutable cell_key : Key.t array;
  mutable cell_next : int array;
  mutable cell_prev : int array;
  mutable cell_free : int list;
  mutable cell_cap : int;  (* cells handed out so far (free or live) *)
  (* (parent slot, child key) -> cell: the O(1) duplicate check. *)
  childset : (int * Key.t, int) Hashtbl.t;
}

let initial = 64

let create () =
  {
    slots = Array.make initial None;
    slot_free = [];
    live = 0;
    slot_of_key = Key.Table.create initial;
    first_child = Array.make initial nil;
    last_child = Array.make initial nil;
    n_children = Array.make initial 0;
    vpe_next = Array.make initial nil;
    vpe_prev = Array.make initial nil;
    pe_next = Array.make initial nil;
    pe_prev = Array.make initial nil;
    vpe_head = Hashtbl.create 16;
    vpe_tail = Hashtbl.create 16;
    pe_head = Hashtbl.create 16;
    pe_tail = Hashtbl.create 16;
    cell_key = Array.make initial dummy_key;
    cell_next = Array.make initial nil;
    cell_prev = Array.make initial nil;
    cell_free = [];
    cell_cap = 0;
    childset = Hashtbl.create initial;
  }

let grow_int_array a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_slots t =
  let n = 2 * Array.length t.slots in
  let slots = Array.make n None in
  Array.blit t.slots 0 slots 0 (Array.length t.slots);
  t.slots <- slots;
  t.first_child <- grow_int_array t.first_child n nil;
  t.last_child <- grow_int_array t.last_child n nil;
  t.n_children <- grow_int_array t.n_children n 0;
  t.vpe_next <- grow_int_array t.vpe_next n nil;
  t.vpe_prev <- grow_int_array t.vpe_prev n nil;
  t.pe_next <- grow_int_array t.pe_next n nil;
  t.pe_prev <- grow_int_array t.pe_prev n nil

let grow_cells t =
  let n = 2 * Array.length t.cell_key in
  let ck = Array.make n dummy_key in
  Array.blit t.cell_key 0 ck 0 (Array.length t.cell_key);
  t.cell_key <- ck;
  t.cell_next <- grow_int_array t.cell_next n nil;
  t.cell_prev <- grow_int_array t.cell_prev n nil

let alloc_cell t key =
  let c =
    match t.cell_free with
    | c :: rest ->
      t.cell_free <- rest;
      c
    | [] ->
      if t.cell_cap = Array.length t.cell_key then grow_cells t;
      let c = t.cell_cap in
      t.cell_cap <- t.cell_cap + 1;
      c
  in
  t.cell_key.(c) <- key;
  t.cell_next.(c) <- nil;
  t.cell_prev.(c) <- nil;
  c

let free_cell t c =
  t.cell_key.(c) <- dummy_key;
  t.cell_free <- c :: t.cell_free

(* ---- intrusive ownership chains ---------------------------------- *)

let chain_append ~next ~prev ~head ~tail s id =
  match Hashtbl.find_opt tail id with
  | None ->
    Hashtbl.replace head id s;
    Hashtbl.replace tail id s
  | Some last ->
    next.(last) <- s;
    prev.(s) <- last;
    Hashtbl.replace tail id s

let chain_unlink ~next ~prev ~head ~tail s id =
  let p = prev.(s) and n = next.(s) in
  (if p = nil then
     if n = nil then Hashtbl.remove head id else Hashtbl.replace head id n
   else next.(p) <- n);
  (if n = nil then
     if p = nil then Hashtbl.remove tail id else Hashtbl.replace tail id p
   else prev.(n) <- p);
  prev.(s) <- nil;
  next.(s) <- nil

(* ---- records ----------------------------------------------------- *)

let find t key =
  match Key.Table.find_opt t.slot_of_key key with
  | None -> None
  | Some s -> t.slots.(s)

let mem t key = Key.Table.mem t.slot_of_key key
let count t = t.live

let insert t (cap : Cap.t) =
  if mem t cap.Cap.key then invalid_arg "Mapdb.insert: duplicate key";
  let s =
    match t.slot_free with
    | s :: rest ->
      t.slot_free <- rest;
      s
    | [] ->
      if t.live = Array.length t.slots then grow_slots t;
      (* Slots [0 .. live) are in use exactly when nothing was ever
         freed; otherwise the free list is non-empty. Either way the
         next virgin slot is the number of slots ever allocated, which
         equals [live] here because the free list is empty. *)
      t.live
  in
  t.slots.(s) <- Some cap;
  t.first_child.(s) <- nil;
  t.last_child.(s) <- nil;
  t.n_children.(s) <- 0;
  Key.Table.replace t.slot_of_key cap.Cap.key s;
  chain_append ~next:t.vpe_next ~prev:t.vpe_prev ~head:t.vpe_head ~tail:t.vpe_tail s
    cap.Cap.owner_vpe;
  chain_append ~next:t.pe_next ~prev:t.pe_prev ~head:t.pe_head ~tail:t.pe_tail s
    (Key.pe cap.Cap.key);
  t.live <- t.live + 1

let free_children_cells t s =
  let c = ref t.first_child.(s) in
  while !c <> nil do
    let next = t.cell_next.(!c) in
    Hashtbl.remove t.childset (s, t.cell_key.(!c));
    free_cell t !c;
    c := next
  done;
  t.first_child.(s) <- nil;
  t.last_child.(s) <- nil;
  t.n_children.(s) <- 0

let remove t key =
  match Key.Table.find_opt t.slot_of_key key with
  | None -> ()
  | Some s ->
    let cap = match t.slots.(s) with Some c -> c | None -> assert false in
    free_children_cells t s;
    chain_unlink ~next:t.vpe_next ~prev:t.vpe_prev ~head:t.vpe_head ~tail:t.vpe_tail s
      cap.Cap.owner_vpe;
    chain_unlink ~next:t.pe_next ~prev:t.pe_prev ~head:t.pe_head ~tail:t.pe_tail s
      (Key.pe cap.Cap.key);
    t.slots.(s) <- None;
    Key.Table.remove t.slot_of_key key;
    t.slot_free <- s :: t.slot_free;
    t.live <- t.live - 1

let iter f t =
  for s = 0 to Array.length t.slots - 1 do
    match t.slots.(s) with Some cap -> f cap | None -> ()
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun cap -> acc := f !acc cap) t;
  !acc

(* ---- child links ------------------------------------------------- *)

let slot_exn t name parent =
  match Key.Table.find_opt t.slot_of_key parent with
  | Some s -> s
  | None -> invalid_arg (name ^ ": parent not in database")

let add_child t ~parent key =
  let s = slot_exn t "Mapdb.add_child" parent in
  if Hashtbl.mem t.childset (s, key) then invalid_arg "Mapdb.add_child: duplicate child";
  let c = alloc_cell t key in
  (match t.last_child.(s) with
  | last when last = nil -> t.first_child.(s) <- c
  | last ->
    t.cell_next.(last) <- c;
    t.cell_prev.(c) <- last);
  t.last_child.(s) <- c;
  t.n_children.(s) <- t.n_children.(s) + 1;
  Hashtbl.replace t.childset (s, key) c

let remove_child t ~parent key =
  match Key.Table.find_opt t.slot_of_key parent with
  | None -> ()
  | Some s -> (
    match Hashtbl.find_opt t.childset (s, key) with
    | None -> ()
    | Some c ->
      let p = t.cell_prev.(c) and n = t.cell_next.(c) in
      (if p = nil then t.first_child.(s) <- n else t.cell_next.(p) <- n);
      (if n = nil then t.last_child.(s) <- p else t.cell_prev.(n) <- p);
      Hashtbl.remove t.childset (s, key);
      t.n_children.(s) <- t.n_children.(s) - 1;
      free_cell t c)

let has_child t ~parent key =
  match Key.Table.find_opt t.slot_of_key parent with
  | None -> false
  | Some s -> Hashtbl.mem t.childset (s, key)

let iter_children t parent f =
  match Key.Table.find_opt t.slot_of_key parent with
  | None -> ()
  | Some s ->
    let c = ref t.first_child.(s) in
    while !c <> nil do
      let next = t.cell_next.(!c) in
      f t.cell_key.(!c);
      c := next
    done

let children t parent =
  let acc = ref [] in
  iter_children t parent (fun k -> acc := k :: !acc);
  List.rev !acc

let child_count t parent =
  match Key.Table.find_opt t.slot_of_key parent with
  | None -> 0
  | Some s -> t.n_children.(s)

let exists_child t parent f =
  match Key.Table.find_opt t.slot_of_key parent with
  | None -> false
  | Some s ->
    let c = ref t.first_child.(s) in
    let found = ref false in
    while (not !found) && !c <> nil do
      if f t.cell_key.(!c) then found := true else c := t.cell_next.(!c)
    done;
    !found

let set_children t parent keys =
  let s = slot_exn t "Mapdb.set_children" parent in
  free_children_cells t s;
  List.iter (fun k -> add_child t ~parent k) keys

(* ---- ownership queries ------------------------------------------- *)

let chain_to_list t ~head ~next id =
  match Hashtbl.find_opt head id with
  | None -> []
  | Some s0 ->
    let acc = ref [] in
    let s = ref s0 in
    while !s <> nil do
      (match t.slots.(!s) with Some cap -> acc := cap :: !acc | None -> assert false);
      s := next.(!s)
    done;
    List.rev !acc

let caps_of_vpe t ~vpe = chain_to_list t ~head:t.vpe_head ~next:t.vpe_next vpe
let caps_of_pe t ~pe = chain_to_list t ~head:t.pe_head ~next:t.pe_next pe

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Array.fill t.first_child 0 (Array.length t.first_child) nil;
  Array.fill t.last_child 0 (Array.length t.last_child) nil;
  Array.fill t.n_children 0 (Array.length t.n_children) 0;
  Array.fill t.vpe_next 0 (Array.length t.vpe_next) nil;
  Array.fill t.vpe_prev 0 (Array.length t.vpe_prev) nil;
  Array.fill t.pe_next 0 (Array.length t.pe_next) nil;
  Array.fill t.pe_prev 0 (Array.length t.pe_prev) nil;
  Array.fill t.cell_next 0 (Array.length t.cell_next) nil;
  Array.fill t.cell_prev 0 (Array.length t.cell_prev) nil;
  Array.fill t.cell_key 0 (Array.length t.cell_key) dummy_key;
  t.slot_free <- [];
  t.cell_free <- [];
  t.cell_cap <- 0;
  t.live <- 0;
  Key.Table.reset t.slot_of_key;
  Hashtbl.reset t.vpe_head;
  Hashtbl.reset t.vpe_tail;
  Hashtbl.reset t.pe_head;
  Hashtbl.reset t.pe_tail;
  Hashtbl.reset t.childset
