(** Capability records.

    A capability references a kernel object, the VPE holding the rights,
    and — to enable recursive revocation — its parent and children in
    the global sharing tree. Because the tree can span kernels, links
    are stored as DDL keys, never as pointers (paper §3.2, §4.3). *)

type kind =
  | Vpe_cap of { vpe : int }  (** control over a VPE *)
  | Mem_cap of { host_pe : int; addr : int64; size : int64; perms : Perms.t }
      (** byte-granular memory range *)
  | Srv_cap of { name : string }  (** a registered service *)
  | Sess_cap of { srv : Semper_ddl.Key.t; ident : int }
      (** a client session with a service *)
  | Sgate_cap of { target_pe : int; target_ep : int; label : int; credits : int }
      (** right to send to a receive gate *)
  | Rgate_cap of { ep : int; slots : int }  (** an owned receive endpoint *)
  | Kernel_cap of { kernel : int }  (** kernel self-capability *)

val kind_to_key_kind : kind -> Semper_ddl.Key.kind
val pp_kind : Format.formatter -> kind -> unit

(** Revocation state (Algorithm 1): a capability is [Marked] during
    phase 1 of a revoke; exchanges touching it are denied. *)
type state = Alive | Marked of { revoke_op : int }

type t = {
  key : Semper_ddl.Key.t;
  kind : kind;
  owner_vpe : int;
  mutable parent : Semper_ddl.Key.t option;
  mutable state : state;
  mutable pending_replies : int;
      (** outstanding remote revoke replies for this capability *)
}

(** Child links are not stored in the record: they live as flat arena
    cells in the {!Mapdb} that owns the record ([Mapdb.add_child],
    [Mapdb.children], …), which is what makes wide fan-out allocation-
    free and the duplicate check O(1). *)

val make :
  key:Semper_ddl.Key.t -> kind:kind -> owner_vpe:int -> ?parent:Semper_ddl.Key.t -> unit -> t

val is_marked : t -> bool

val pp : Format.formatter -> t -> unit

(** Independent copy. Records hold only pure data (keys and kinds), so
    the copy shares nothing mutable with the original. *)
val copy : t -> t
