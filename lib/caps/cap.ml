module Key = Semper_ddl.Key

type kind =
  | Vpe_cap of { vpe : int }
  | Mem_cap of { host_pe : int; addr : int64; size : int64; perms : Perms.t }
  | Srv_cap of { name : string }
  | Sess_cap of { srv : Key.t; ident : int }
  | Sgate_cap of { target_pe : int; target_ep : int; label : int; credits : int }
  | Rgate_cap of { ep : int; slots : int }
  | Kernel_cap of { kernel : int }

let kind_to_key_kind = function
  | Vpe_cap _ -> Key.Vpe_obj
  | Mem_cap _ -> Key.Mem_obj
  | Srv_cap _ -> Key.Srv_obj
  | Sess_cap _ -> Key.Sess_obj
  | Sgate_cap _ -> Key.Sgate_obj
  | Rgate_cap _ -> Key.Rgate_obj
  | Kernel_cap _ -> Key.Kernel_obj

let pp_kind ppf = function
  | Vpe_cap { vpe } -> Format.fprintf ppf "vpe(%d)" vpe
  | Mem_cap { host_pe; addr; size; perms } ->
    Format.fprintf ppf "mem(pe=%d,@%Ld+%Ld,%a)" host_pe addr size Perms.pp perms
  | Srv_cap { name } -> Format.fprintf ppf "srv(%s)" name
  | Sess_cap { srv; ident } -> Format.fprintf ppf "sess(%a,#%d)" Key.pp srv ident
  | Sgate_cap { target_pe; target_ep; label; credits } ->
    Format.fprintf ppf "sgate(%d.%d,l=%d,c=%d)" target_pe target_ep label credits
  | Rgate_cap { ep; slots } -> Format.fprintf ppf "rgate(ep=%d,slots=%d)" ep slots
  | Kernel_cap { kernel } -> Format.fprintf ppf "kernel(%d)" kernel

type state = Alive | Marked of { revoke_op : int }

type t = {
  key : Key.t;
  kind : kind;
  owner_vpe : int;
  mutable parent : Key.t option;
  mutable state : state;
  mutable pending_replies : int;
}

let make ~key ~kind ~owner_vpe ?parent () =
  { key; kind; owner_vpe; parent; state = Alive; pending_replies = 0 }

(* Capability records are pure data (keys and kinds), so a shallow
   record copy is a full deep copy for checkpoint purposes. Child
   links live in the owning database's arena, not in the record. *)
let copy t = { t with key = t.key }

let is_marked t = match t.state with Alive -> false | Marked _ -> true

let pp ppf t =
  Format.fprintf ppf "cap{%a %a vpe=%d%s}" Key.pp t.key pp_kind t.kind t.owner_vpe
    (match t.state with Alive -> "" | Marked { revoke_op } -> Printf.sprintf " MARKED#%d" revoke_op)
