module Key = Semper_ddl.Key

type selector = int

(* [rev] is the inverse index, maintained alongside [slots]: revoking
   a capability drops it from its owner's space by key, and a fold
   over every slot there turned bulk revocation quadratic in the
   owner's capability count (service VPEs own one capability per
   granted extent, so theirs grow with client count). Keys are
   globally unique, so at most one selector binds a given key; if a
   caller ever aliases one anyway, [rev] keeps the latest binding and
   [remove] only drops a [rev] entry that points at the removed
   selector. *)
type t = {
  slots : (selector, Key.t) Hashtbl.t;
  rev : selector Key.Table.t;
  mutable next_hint : int;
}

let create () = { slots = Hashtbl.create 16; rev = Key.Table.create 16; next_hint = 0 }

let insert t key =
  let rec free sel = if Hashtbl.mem t.slots sel then free (sel + 1) else sel in
  let sel = free t.next_hint in
  Hashtbl.add t.slots sel key;
  Key.Table.replace t.rev key sel;
  t.next_hint <- sel + 1;
  sel

let insert_at t sel key =
  if sel < 0 then invalid_arg "Capspace.insert_at: negative selector";
  if Hashtbl.mem t.slots sel then invalid_arg "Capspace.insert_at: selector taken";
  Hashtbl.add t.slots sel key;
  Key.Table.replace t.rev key sel

let find t sel = Hashtbl.find_opt t.slots sel

let selector_of t key = Key.Table.find_opt t.rev key

let remove t sel =
  (match Hashtbl.find_opt t.slots sel with
  | Some key -> (
    match Key.Table.find_opt t.rev key with
    | Some s when s = sel -> Key.Table.remove t.rev key
    | Some _ | None -> ())
  | None -> ());
  Hashtbl.remove t.slots sel;
  if sel < t.next_hint then t.next_hint <- sel

let remove_key t key =
  match selector_of t key with
  | Some sel -> remove t sel
  | None -> ()

let count t = Hashtbl.length t.slots
let iter f t = Hashtbl.iter f t.slots

type snapshot = { s_slots : (selector * Key.t) list; s_next_hint : int }  (* sorted by selector *)

let snapshot t =
  {
    s_slots =
      Hashtbl.fold (fun sel key acc -> (sel, key) :: acc) t.slots []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_next_hint = t.next_hint;
  }

let restore t s =
  Hashtbl.reset t.slots;
  Key.Table.reset t.rev;
  List.iter
    (fun (sel, key) ->
      Hashtbl.replace t.slots sel key;
      Key.Table.replace t.rev key sel)
    s.s_slots;
  t.next_hint <- s.s_next_hint
