module Key = Semper_ddl.Key

type selector = int

type t = { slots : (selector, Key.t) Hashtbl.t; mutable next_hint : int }

let create () = { slots = Hashtbl.create 16; next_hint = 0 }

let insert t key =
  let rec free sel = if Hashtbl.mem t.slots sel then free (sel + 1) else sel in
  let sel = free t.next_hint in
  Hashtbl.add t.slots sel key;
  t.next_hint <- sel + 1;
  sel

let insert_at t sel key =
  if sel < 0 then invalid_arg "Capspace.insert_at: negative selector";
  if Hashtbl.mem t.slots sel then invalid_arg "Capspace.insert_at: selector taken";
  Hashtbl.add t.slots sel key

let find t sel = Hashtbl.find_opt t.slots sel

let selector_of t key =
  Hashtbl.fold
    (fun sel k acc -> match acc with Some _ -> acc | None -> if Key.equal k key then Some sel else None)
    t.slots None

let remove t sel =
  Hashtbl.remove t.slots sel;
  if sel < t.next_hint then t.next_hint <- sel

let remove_key t key =
  match selector_of t key with
  | Some sel -> remove t sel
  | None -> ()

let count t = Hashtbl.length t.slots
let iter f t = Hashtbl.iter f t.slots

type snapshot = { s_slots : (selector * Key.t) list; s_next_hint : int }  (* sorted by selector *)

let snapshot t =
  {
    s_slots =
      Hashtbl.fold (fun sel key acc -> (sel, key) :: acc) t.slots []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_next_hint = t.next_hint;
  }

let restore t s =
  Hashtbl.reset t.slots;
  List.iter (fun (sel, key) -> Hashtbl.replace t.slots sel key) s.s_slots;
  t.next_hint <- s.s_next_hint
