(** SemperOS: a distributed capability system — public API.

    This facade re-exports every layer of the reproduction in one place;
    examples and downstream users need only depend on the [semperos]
    library.

    Layers (bottom up):
    - {!Engine}, {!Server}: discrete-event simulation substrate.
    - {!Topology}, {!Fabric}: network-on-chip model.
    - {!Dtu}, {!Message}: data transfer units (endpoints, credits,
      message slots) — the M3 hardware substrate.
    - {!Key}, {!Membership}: distributed data lookup (DDL).
    - {!Perms}, {!Cap}, {!Capspace}, {!Mapdb}: capability records,
      per-VPE capability spaces, the per-kernel mapping database.
    - {!Cost}, {!Protocol}, {!Vpe}, {!Thread_pool}, {!Kernel},
      {!System}: the SemperOS multikernel and its distributed
      capability protocols.
    - {!Obs}: deterministic observability — metrics registry, protocol
      span tracing, JSON export.
    - {!Fault}, {!Fuzz}: seeded fault injection for the fabric and the
      deterministic schedule fuzzer built on it.
    - {!Fs_image}, {!M3fs}, {!Fs_client}: the m3fs in-memory filesystem
      service and its client library.
    - {!Trace}, {!Replay}, {!Workloads}: application traces.
    - {!Experiment}, {!Nginx_bench}: the paper's evaluation harness.
    - {!Balance}, {!Skew}: the autonomic load balancer
      (occupancy-driven VPE migration) and its skewed-workload
      benchmark.
    - {!Fleet}, {!Fleetbench}: the elastic kernel fleet (runtime
      join/drain/leave with live partition rebalancing, plus the
      occupancy-driven autoscaler) and its autoscaling benchmark.
    - {!Domain_pool}, {!Runner}, {!Bench_json}: the parallel experiment
      runner — independent runs fan out over OCaml domains with
      deterministic, submission-order result collection. *)

module Engine = Semper_sim.Engine
module Server = Semper_sim.Server
module Checkpoint = Semper_sim.Checkpoint
module Domain_pool = Semper_util.Domain_pool
module Heap = Semper_util.Heap
module Rng = Semper_util.Rng
module Stats = Semper_util.Stats
module Table = Semper_util.Table
module Topology = Semper_noc.Topology
module Fabric = Semper_noc.Fabric
module Dtu = Semper_dtu.Dtu
module Message = Semper_dtu.Message
module Key = Semper_ddl.Key
module Membership = Semper_ddl.Membership
module Perms = Semper_caps.Perms
module Cap = Semper_caps.Cap
module Capspace = Semper_caps.Capspace
module Mapdb = Semper_caps.Mapdb
module Cost = Semper_kernel.Cost
module Protocol = Semper_kernel.Protocol
module Vpe = Semper_kernel.Vpe
module Thread_pool = Semper_kernel.Thread_pool
module Kernel = Semper_kernel.Kernel
module System = Semper_kernel.System
module Obs = Semper_obs.Obs
module Fault = Semper_fault.Fault
module Fs_image = Semper_m3fs.Fs_image
module M3fs = Semper_m3fs.M3fs
module Fs_client = Semper_m3fs.Client
module Pipe = Semper_pipe.Pipe
module Cowfs = Semper_cowfs.Cowfs
module Trace = Semper_trace.Trace
module Trace_io = Semper_trace.Trace_io
module Recorder = Semper_trace.Recorder
module Replay = Semper_trace.Replay
module Workloads = Semper_trace.Workloads
module Experiment = Semper_harness.Experiment
module Audit = Semper_harness.Audit
module Fuzz = Semper_harness.Fuzz
module Microbench = Semper_harness.Microbench
module Nginx_bench = Semper_harness.Nginx
module Runner = Semper_harness.Runner
module Figures = Semper_harness.Figures
module Record = Semper_harness.Record
module Bench_json = Semper_harness.Bench_json
module Wallclock = Semper_harness.Wallclock
module Batchbench = Semper_harness.Batchbench
module Scale = Semper_harness.Scale
module Enginebench = Semper_harness.Enginebench
module Balance = Semper_balance.Balance
module Fleet = Semper_fleet.Fleet
module Skew = Semper_harness.Skew
module Fleetbench = Semper_harness.Fleetbench

(** Version of this reproduction. *)
let version = "1.0.0"
