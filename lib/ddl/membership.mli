(** Membership table: partition (= PE id) to kernel mapping.

    Replicated at every kernel (paper Figure 2). The mapping is built
    once at boot — [assign] is only legal before the table is [seal]ed —
    and afterwards changes only through the PE-migration path (paper
    §3.2: the membership mappings "would have to be updated at all
    kernels").

    {b Handoff discipline.} A migration moves a PE's capability records
    between two kernels while other traffic is in flight. Replicas must
    therefore obey an ordering contract: a replica is [reassign]ed only
    {e on receipt of} the migration's [Ik_migrate_update] message, never
    ahead of it. The two kernels actually exchanging the records use the
    explicit handoff states instead: the source marks the PE with
    {!begin_handoff} when it freezes the VPE, and the mapping flips with
    {!complete_handoff} only once the records have really moved. While a
    PE is mid-handoff, {!kernel_of_pe}/{!kernel_of_key} raise
    {!Mid_handoff} — a loud failure — rather than returning a kernel
    that may not hold the records (a silent misroute, which the
    capability protocols would misinterpret as "already deleted"). *)

type kernel_id = int

(** Raised by lookups that hit a PE whose records are currently in
    flight between two kernels. Carries the PE id. *)
exception Mid_handoff of int

(** Kernel lifecycle, replicated alongside the partition table by the
    fleet protocol ([lib/fleet]): [Spare] kernels are booted but hold
    no partitions and serve no work; [Joining] kernels are absorbing
    partitions; [Active] kernels serve normally (the default — kernels
    never mentioned in a state update are Active); [Draining] kernels
    refuse new work while evacuating; [Retired] kernels hold nothing
    and may later rejoin. *)
type kernel_state = Spare | Joining | Active | Draining | Retired

type t

val create : unit -> t

(** [assign t ~pe ~kernel]. Raises [Invalid_argument] if sealed or if
    the PE is already assigned. *)
val assign : t -> pe:int -> kernel:kernel_id -> unit

(** Freeze the table; further [assign]s raise. *)
val seal : t -> unit

(** [reassign t ~pe ~kernel] moves an already-assigned PE to another
    kernel in one step. This is the form used by replicas that merely
    {e learn} about a migration (the [Ik_migrate_update] receivers and
    the system-level replica used for spawn routing) — call it only on
    receipt of the update, never before. Allowed on sealed tables;
    raises [Not_found] if the PE was never assigned and
    [Invalid_argument] if the PE is mid-handoff on this replica (the
    kernels holding the records must use {!complete_handoff}). *)
val reassign : t -> pe:int -> kernel:kernel_id -> unit

(** [begin_handoff t ~pe] marks the PE as mid-handoff: the mapping is
    unchanged but lookups raise {!Mid_handoff} until
    {!complete_handoff}. Raises [Not_found] for an unassigned PE and
    [Invalid_argument] if already mid-handoff. *)
val begin_handoff : t -> pe:int -> unit

(** [complete_handoff t ~pe ~kernel] ends the handoff window and
    installs the new mapping atomically. Raises [Invalid_argument] if
    the PE is not mid-handoff. *)
val complete_handoff : t -> pe:int -> kernel:kernel_id -> unit

(** Is the PE currently mid-handoff on this replica? (Never raises.) *)
val in_handoff : t -> int -> bool

val is_sealed : t -> bool

(** [reassign_partition t ~pes ~kernel] moves a whole partition set —
    every PE of a retiring or shedding kernel — in one step. The flip is
    atomic on this replica: all PEs are validated (assigned, not
    mid-handoff) before any mapping changes, so a resolve racing the
    update observes either the old owner for every PE or the new owner
    for every PE, never a half-moved partition. Raises like
    {!reassign}; on raise the table is untouched. *)
val reassign_partition : t -> pes:int list -> kernel:kernel_id -> unit

(** Lifecycle state of a kernel on this replica; [Active] for kernels
    never mentioned in a state update. *)
val kernel_state : t -> kernel_id -> kernel_state

(** Record a kernel lifecycle transition on this replica. Replicas
    apply whatever the fleet broadcast tells them; transition legality
    is enforced by [lib/fleet], not here. *)
val set_kernel_state : t -> kernel:kernel_id -> kernel_state -> unit

(** All explicitly-recorded kernel states, sorted by kernel id. Kernels
    absent from the list are [Active]. Used by the fuzz convergence
    oracle to compare replicas. *)
val kernel_states : t -> (kernel_id * kernel_state) list

(** Raises [Not_found] for an unassigned PE, {!Mid_handoff} for a PE
    whose records are in flight. *)
val kernel_of_pe : t -> int -> kernel_id

(** Owner kernel of a DDL key: the kernel of its partition. Raises like
    {!kernel_of_pe}. *)
val kernel_of_key : t -> Key.t -> kernel_id

(** PEs of a kernel's group, ascending. Mid-handoff PEs are still
    listed under their pre-handoff kernel. *)
val pes_of_kernel : t -> kernel_id -> int list

(** Number of PEs assigned overall. *)
val size : t -> int

(** All kernel ids present, ascending. *)
val kernels : t -> kernel_id list

(** Independent copy (what each kernel holds), including any handoff
    marks. *)
val copy : t -> t

(** Closure-free image of the replica: assignments, handoff marks, and
    the seal bit, sorted by PE. [restore] replaces the replica's
    contents wholesale — including re-creating mid-handoff marks, so a
    snapshot taken inside a [begin_handoff]/[complete_handoff] window
    restores to exactly that window. *)
type snapshot = {
  s_table : (int * kernel_id) list;
  s_handoff : int list;
  s_states : (kernel_id * kernel_state) list;
  s_sealed : bool;
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
