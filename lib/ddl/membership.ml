type kernel_id = int

exception Mid_handoff of int

type kernel_state = Spare | Joining | Active | Draining | Retired

type t = {
  table : (int, kernel_id) Hashtbl.t;
  (* PEs whose records are in flight between two kernels. While a PE is
     marked here, this replica refuses to route to it: the old owner may
     already have shed the records and the new owner may not have
     installed them yet, so any answer would be a silent misroute. *)
  handoff : (int, unit) Hashtbl.t;
  (* Kernel lifecycle, replicated alongside the partition table. A
     kernel absent from this table is Active: boot-time fleets never
     touch it, so their replicas stay byte-identical to pre-fleet
     snapshots. *)
  states : (kernel_id, kernel_state) Hashtbl.t;
  mutable sealed : bool;
}

let create () =
  {
    table = Hashtbl.create 64;
    handoff = Hashtbl.create 4;
    states = Hashtbl.create 4;
    sealed = false;
  }

let assign t ~pe ~kernel =
  if t.sealed then invalid_arg "Membership.assign: table is sealed";
  if Hashtbl.mem t.table pe then invalid_arg "Membership.assign: PE already assigned";
  if pe < 0 || kernel < 0 then invalid_arg "Membership.assign: negative id";
  Hashtbl.add t.table pe kernel

let seal t = t.sealed <- true

let reassign t ~pe ~kernel =
  if not (Hashtbl.mem t.table pe) then raise Not_found;
  if Hashtbl.mem t.handoff pe then
    invalid_arg "Membership.reassign: PE is mid-handoff (use complete_handoff)";
  if kernel < 0 then invalid_arg "Membership.reassign: negative kernel";
  Hashtbl.replace t.table pe kernel

let begin_handoff t ~pe =
  if not (Hashtbl.mem t.table pe) then raise Not_found;
  if Hashtbl.mem t.handoff pe then invalid_arg "Membership.begin_handoff: PE already mid-handoff";
  Hashtbl.replace t.handoff pe ()

let complete_handoff t ~pe ~kernel =
  if not (Hashtbl.mem t.handoff pe) then
    invalid_arg "Membership.complete_handoff: PE is not mid-handoff";
  if kernel < 0 then invalid_arg "Membership.complete_handoff: negative kernel";
  Hashtbl.remove t.handoff pe;
  Hashtbl.replace t.table pe kernel

let in_handoff t pe = Hashtbl.mem t.handoff pe
let is_sealed t = t.sealed

let reassign_partition t ~pes ~kernel =
  if kernel < 0 then invalid_arg "Membership.reassign_partition: negative kernel";
  (* Validate-then-flip: either the whole key range moves or none of it
     does, so a racing resolve can never observe a half-moved
     partition — it sees the old owner, Mid_handoff, or the new owner. *)
  List.iter
    (fun pe ->
      if not (Hashtbl.mem t.table pe) then raise Not_found;
      if Hashtbl.mem t.handoff pe then
        invalid_arg "Membership.reassign_partition: PE is mid-handoff (use complete_handoff)")
    pes;
  List.iter (fun pe -> Hashtbl.replace t.table pe kernel) pes

let kernel_state t kernel =
  match Hashtbl.find_opt t.states kernel with Some s -> s | None -> Active

let set_kernel_state t ~kernel state =
  if kernel < 0 then invalid_arg "Membership.set_kernel_state: negative kernel";
  Hashtbl.replace t.states kernel state

let kernel_states t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.states []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let kernel_of_pe t pe =
  if Hashtbl.mem t.handoff pe then raise (Mid_handoff pe);
  match Hashtbl.find_opt t.table pe with
  | Some k -> k
  | None -> raise Not_found

let kernel_of_key t key = kernel_of_pe t (Key.pe key)

let pes_of_kernel t kernel =
  Hashtbl.fold (fun pe k acc -> if k = kernel then pe :: acc else acc) t.table []
  |> List.sort Int.compare

let size t = Hashtbl.length t.table

let kernels t =
  Hashtbl.fold (fun _ k acc -> if List.mem k acc then acc else k :: acc) t.table []
  |> List.sort Int.compare

let copy t =
  {
    table = Hashtbl.copy t.table;
    handoff = Hashtbl.copy t.handoff;
    states = Hashtbl.copy t.states;
    sealed = t.sealed;
  }

type snapshot = {
  s_table : (int * kernel_id) list;  (* sorted by PE *)
  s_handoff : int list;  (* sorted *)
  s_states : (kernel_id * kernel_state) list;  (* sorted by kernel *)
  s_sealed : bool;
}

let snapshot t =
  {
    s_table =
      Hashtbl.fold (fun pe k acc -> (pe, k) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_handoff = Hashtbl.fold (fun pe () acc -> pe :: acc) t.handoff [] |> List.sort Int.compare;
    s_states = kernel_states t;
    s_sealed = t.sealed;
  }

let restore t s =
  Hashtbl.reset t.table;
  List.iter (fun (pe, k) -> Hashtbl.replace t.table pe k) s.s_table;
  Hashtbl.reset t.handoff;
  List.iter (fun pe -> Hashtbl.replace t.handoff pe ()) s.s_handoff;
  Hashtbl.reset t.states;
  List.iter (fun (k, st) -> Hashtbl.replace t.states k st) s.s_states;
  t.sealed <- s.s_sealed
