type kernel_id = int

exception Mid_handoff of int

type t = {
  table : (int, kernel_id) Hashtbl.t;
  (* PEs whose records are in flight between two kernels. While a PE is
     marked here, this replica refuses to route to it: the old owner may
     already have shed the records and the new owner may not have
     installed them yet, so any answer would be a silent misroute. *)
  handoff : (int, unit) Hashtbl.t;
  mutable sealed : bool;
}

let create () = { table = Hashtbl.create 64; handoff = Hashtbl.create 4; sealed = false }

let assign t ~pe ~kernel =
  if t.sealed then invalid_arg "Membership.assign: table is sealed";
  if Hashtbl.mem t.table pe then invalid_arg "Membership.assign: PE already assigned";
  if pe < 0 || kernel < 0 then invalid_arg "Membership.assign: negative id";
  Hashtbl.add t.table pe kernel

let seal t = t.sealed <- true

let reassign t ~pe ~kernel =
  if not (Hashtbl.mem t.table pe) then raise Not_found;
  if Hashtbl.mem t.handoff pe then
    invalid_arg "Membership.reassign: PE is mid-handoff (use complete_handoff)";
  if kernel < 0 then invalid_arg "Membership.reassign: negative kernel";
  Hashtbl.replace t.table pe kernel

let begin_handoff t ~pe =
  if not (Hashtbl.mem t.table pe) then raise Not_found;
  if Hashtbl.mem t.handoff pe then invalid_arg "Membership.begin_handoff: PE already mid-handoff";
  Hashtbl.replace t.handoff pe ()

let complete_handoff t ~pe ~kernel =
  if not (Hashtbl.mem t.handoff pe) then
    invalid_arg "Membership.complete_handoff: PE is not mid-handoff";
  if kernel < 0 then invalid_arg "Membership.complete_handoff: negative kernel";
  Hashtbl.remove t.handoff pe;
  Hashtbl.replace t.table pe kernel

let in_handoff t pe = Hashtbl.mem t.handoff pe
let is_sealed t = t.sealed

let kernel_of_pe t pe =
  if Hashtbl.mem t.handoff pe then raise (Mid_handoff pe);
  match Hashtbl.find_opt t.table pe with
  | Some k -> k
  | None -> raise Not_found

let kernel_of_key t key = kernel_of_pe t (Key.pe key)

let pes_of_kernel t kernel =
  Hashtbl.fold (fun pe k acc -> if k = kernel then pe :: acc else acc) t.table []
  |> List.sort Int.compare

let size t = Hashtbl.length t.table

let kernels t =
  Hashtbl.fold (fun _ k acc -> if List.mem k acc then acc else k :: acc) t.table []
  |> List.sort Int.compare

let copy t =
  { table = Hashtbl.copy t.table; handoff = Hashtbl.copy t.handoff; sealed = t.sealed }

type snapshot = {
  s_table : (int * kernel_id) list;  (* sorted by PE *)
  s_handoff : int list;  (* sorted *)
  s_sealed : bool;
}

let snapshot t =
  {
    s_table =
      Hashtbl.fold (fun pe k acc -> (pe, k) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_handoff = Hashtbl.fold (fun pe () acc -> pe :: acc) t.handoff [] |> List.sort Int.compare;
    s_sealed = t.sealed;
  }

let restore t s =
  Hashtbl.reset t.table;
  List.iter (fun (pe, k) -> Hashtbl.replace t.table pe k) s.s_table;
  Hashtbl.reset t.handoff;
  List.iter (fun pe -> Hashtbl.replace t.handoff pe ()) s.s_handoff;
  t.sealed <- s.s_sealed
