(** Trace replay engine: drives one trace through the m3fs client on
    behalf of one VPE, sequentially, as a single-threaded process
    would. *)

type result = {
  trace : string;
  vpe : int;
  started : int64;
  finished : int64;
  io_ops : int;
  client_cap_ops : int;  (** session opens + extent obtains at the client *)
  errors : string list;  (** non-fatal op failures, in order *)
}

val runtime : result -> int64

(** [run sys fs ~vpe ?prefix trace k] opens a session, replays every
    op, and calls [k] with the result. Individual op errors are
    recorded and replay continues (like the paper's trace player,
    which checks but does not abort). [prefix] (default empty) is
    prepended to every path the trace names at op-issue time —
    equivalent to replaying [Trace.with_prefix prefix trace], but many
    instances can then share one trace structure instead of each
    retaining a prefixed deep copy for the whole run. *)
val run :
  Semper_kernel.System.t ->
  Semper_m3fs.M3fs.t ->
  vpe:Semper_kernel.Vpe.t ->
  ?prefix:string ->
  Trace.t ->
  (result -> unit) ->
  unit
