module System = Semper_kernel.System
module Vpe = Semper_kernel.Vpe
module Client = Semper_m3fs.Client
module Engine = Semper_sim.Engine

type result = {
  trace : string;
  vpe : int;
  started : int64;
  finished : int64;
  io_ops : int;
  client_cap_ops : int;
  errors : string list;
}

let runtime r = Int64.sub r.finished r.started

type state = {
  sys : System.t;
  client : Client.t;
  (* Slot table: the i-th [Open] of the trace binds slot i. *)
  mutable slots : int array;
  mutable next_slot : int;
  mutable io_ops : int;
  mutable errors : string list;
}

let slot_fd st slot =
  if slot < 0 || slot >= st.next_slot then Error (Printf.sprintf "bad slot %d" slot)
  else if st.slots.(slot) < 0 then Error (Printf.sprintf "slot %d from failed open" slot)
  else Ok st.slots.(slot)

let record_err st op msg = st.errors <- Printf.sprintf "%s: %s" (Trace.op_name op) msg :: st.errors

let run sys fs ~vpe ?(prefix = "") trace k =
  let pre path = if prefix = "" then path else prefix ^ path in
  let started = System.now sys in
  Client.connect sys fs ~vpe (fun conn ->
      match conn with
      | Error e ->
        k
          {
            trace = trace.Trace.name;
            vpe = vpe.Vpe.id;
            started;
            finished = System.now sys;
            io_ops = 0;
            client_cap_ops = 0;
            errors = [ "connect: " ^ e ];
          }
      | Ok client ->
        let st =
          { sys; client; slots = Array.make 16 (-1); next_slot = 0; io_ops = 0; errors = [] }
        in
        let finish () =
          k
            {
              trace = trace.Trace.name;
              vpe = vpe.Vpe.id;
              started;
              finished = System.now sys;
              io_ops = st.io_ops;
              client_cap_ops = Client.cap_ops client;
              errors = List.rev st.errors;
            }
        in
        let rec step ops =
          match ops with
          | [] -> finish ()
          | op :: rest ->
            let continue_unit r =
              (match r with Ok () -> () | Error e -> record_err st op e);
              step rest
            in
            (match op with Trace.Compute _ -> () | _ -> st.io_ops <- st.io_ops + 1);
            (match op with
            | Trace.Compute cycles -> Engine.after (System.engine sys) cycles (fun () -> step rest)
            | Trace.Open { path; write; create } ->
              Client.open_ client (pre path) ~write ~create (fun r ->
                  (* Slot numbering must stay aligned with the trace,
                     so failed opens still consume a slot. *)
                  let push fd =
                    if st.next_slot = Array.length st.slots then begin
                      let bigger = Array.make (2 * st.next_slot) (-1) in
                      Array.blit st.slots 0 bigger 0 st.next_slot;
                      st.slots <- bigger
                    end;
                    st.slots.(st.next_slot) <- fd;
                    st.next_slot <- st.next_slot + 1
                  in
                  (match r with
                  | Ok fd -> push fd
                  | Error e ->
                    push (-1);
                    record_err st op e);
                  step rest)
            | Trace.Read { slot; bytes } -> (
              match slot_fd st slot with
              | Error e ->
                record_err st op e;
                step rest
              | Ok fd ->
                Client.read client ~fd ~bytes (fun r ->
                    (match r with Ok _ -> () | Error e -> record_err st op e);
                    step rest))
            | Trace.Write { slot; bytes } -> (
              match slot_fd st slot with
              | Error e ->
                record_err st op e;
                step rest
              | Ok fd -> Client.write client ~fd ~bytes continue_unit)
            | Trace.Seek { slot; pos } -> (
              match slot_fd st slot with
              | Error e ->
                record_err st op e;
                step rest
              | Ok fd ->
                (match Client.seek client ~fd ~pos with
                | Ok () -> ()
                | Error e -> record_err st op e);
                step rest)
            | Trace.Close { slot } -> (
              match slot_fd st slot with
              | Error e ->
                record_err st op e;
                step rest
              | Ok fd -> Client.close client ~fd continue_unit)
            | Trace.Stat path -> Client.stat client (pre path) continue_unit
            | Trace.Stat_absent path ->
              Client.stat client (pre path) (fun r ->
                  (match r with
                  | Error _ -> () (* absence is the expected outcome *)
                  | Ok () -> record_err st op "entry unexpectedly exists");
                  step rest)
            | Trace.Mkdir path -> Client.mkdir client (pre path) continue_unit
            | Trace.Unlink path -> Client.unlink client (pre path) continue_unit
            | Trace.List path ->
              Client.list client (pre path) (fun r ->
                  (match r with Ok _ -> () | Error e -> record_err st op e);
                  step rest))
        in
        step trace.Trace.ops)
