module Rng = Semper_util.Rng

type profile = {
  seed : int64;
  delay_prob : float;
  max_delay : int;
  dup_prob : float;
  max_dup_delay : int;
  drop_prob : float;
  max_drops_per_pair : int;
  max_drops_total : int;
  stall_prob : float;
  max_stall : int;
}

let quiet =
  {
    seed = 0L;
    delay_prob = 0.0;
    max_delay = 0;
    dup_prob = 0.0;
    max_dup_delay = 0;
    drop_prob = 0.0;
    max_drops_per_pair = 0;
    max_drops_total = 0;
    stall_prob = 0.0;
    max_stall = 0;
  }

let delay_only ~seed = { quiet with seed; delay_prob = 0.3; max_delay = 1_500 }
let duplicate_only ~seed = { quiet with seed; dup_prob = 0.12; max_dup_delay = 900 }

let drop_only ~seed =
  { quiet with seed; drop_prob = 0.05; max_drops_per_pair = 2; max_drops_total = 24 }

let stall_only ~seed = { quiet with seed; stall_prob = 0.03; max_stall = 4_000 }

let chaos ~seed =
  {
    seed;
    delay_prob = 0.25;
    max_delay = 1_500;
    dup_prob = 0.08;
    max_dup_delay = 900;
    drop_prob = 0.03;
    max_drops_per_pair = 2;
    max_drops_total = 24;
    stall_prob = 0.02;
    max_stall = 4_000;
  }

type stats = {
  mutable delays : int;
  mutable dups : int;
  mutable drops : int;
  mutable stalls : int;
}

type t = {
  profile : profile;
  rng : Rng.t;
  kernel_pes : (int, unit) Hashtbl.t;
  drops_by_pair : (int * int, int ref) Hashtbl.t;
  stalled_until : (int, int64) Hashtbl.t;
  mutable total_drops : int;
  stats : stats;
}

let create ?(kernel_pes = []) profile =
  if
    profile.delay_prob < 0.0 || profile.delay_prob > 1.0 || profile.dup_prob < 0.0
    || profile.dup_prob > 1.0 || profile.drop_prob < 0.0 || profile.drop_prob > 1.0
    || profile.stall_prob < 0.0 || profile.stall_prob > 1.0
  then invalid_arg "Fault.create: probabilities must lie in [0, 1]";
  let kpes = Hashtbl.create 16 in
  List.iter (fun pe -> Hashtbl.replace kpes pe ()) kernel_pes;
  {
    profile;
    rng = Rng.create profile.seed;
    kernel_pes = kpes;
    drops_by_pair = Hashtbl.create 64;
    stalled_until = Hashtbl.create 16;
    total_drops = 0;
    stats = { delays = 0; dups = 0; drops = 0; stalls = 0 };
  }

let stats t = t.stats
let profile t = t.profile

let stats_line t =
  Printf.sprintf "delays=%d dups=%d drops=%d stalls=%d" t.stats.delays t.stats.dups t.stats.drops
    t.stats.stalls

type snapshot = {
  s_rng : Rng.snapshot;
  s_drops_by_pair : ((int * int) * int) list;  (* sorted by pair *)
  s_stalled_until : (int * int64) list;  (* sorted by PE *)
  s_total_drops : int;
  s_delays : int;
  s_dups : int;
  s_drops : int;
  s_stalls : int;
}

let snapshot t =
  {
    s_rng = Rng.snapshot t.rng;
    s_drops_by_pair =
      Hashtbl.fold (fun pair c acc -> (pair, !c) :: acc) t.drops_by_pair []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    s_stalled_until =
      Hashtbl.fold (fun pe u acc -> (pe, u) :: acc) t.stalled_until []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_total_drops = t.total_drops;
    s_delays = t.stats.delays;
    s_dups = t.stats.dups;
    s_drops = t.stats.drops;
    s_stalls = t.stats.stalls;
  }

let restore t s =
  Rng.restore t.rng s.s_rng;
  Hashtbl.reset t.drops_by_pair;
  List.iter (fun (pair, n) -> Hashtbl.replace t.drops_by_pair pair (ref n)) s.s_drops_by_pair;
  Hashtbl.reset t.stalled_until;
  List.iter (fun (pe, u) -> Hashtbl.replace t.stalled_until pe u) s.s_stalled_until;
  t.total_drops <- s.s_total_drops;
  t.stats.delays <- s.s_delays;
  t.stats.dups <- s.s_dups;
  t.stats.drops <- s.s_drops;
  t.stats.stalls <- s.s_stalls

(* Only retransmitted traffic may be dropped: op-tagged request/reply
   pairs, the op-tagged notifications (remove_child, srv_announce —
   acked via the credit-return piggyback and retried until then), and
   batch frames (whose op-tagged inner messages are retried
   individually). Credit returns and shutdown notices have no retry
   path, so dropping them would wedge the protocols by design. *)
let droppable = function
  | "obtain_req" | "obtain_reply" | "delegate_req" | "delegate_reply" | "delegate_ack"
  | "open_sess_req" | "open_sess_reply" | "revoke_req" | "revoke_reply" | "migrate_update"
  | "migrate_ack" | "migrate_caps" | "remove_child" | "srv_announce" | "batch"
  | "fleet_state" | "part_update" | "part_records" ->
    true
  | _ -> false

(* Duplication additionally covers the remaining idempotent
   notification (receivers dedup everything op-tagged, and a duplicate
   shutdown notice is just logged twice). *)
let duplicable = function
  | "shutdown" -> true
  | tag -> droppable tag

let injector t ~src ~dst ~tag ~now:_ ~arrival =
  let p = t.profile in
  (* A message into a kernel PE may open (or extend) a stall window
     there; anything arriving inside the window — tagged or not — is
     held until the kernel "wakes up". *)
  let stall_adjust a =
    if p.stall_prob > 0.0 && Hashtbl.mem t.kernel_pes dst && Rng.float t.rng < p.stall_prob then begin
      let len = Int64.of_int (1 + Rng.int t.rng (max 1 p.max_stall)) in
      let until = Int64.add a len in
      (match Hashtbl.find_opt t.stalled_until dst with
      | Some u when Int64.compare u until >= 0 -> ()
      | Some _ | None -> Hashtbl.replace t.stalled_until dst until);
      t.stats.stalls <- t.stats.stalls + 1
    end;
    match Hashtbl.find_opt t.stalled_until dst with
    | Some u when Int64.compare a u < 0 -> u
    | Some _ | None -> a
  in
  if tag = "" then [ Some (stall_adjust arrival) ]
  else begin
    let drop_count =
      match Hashtbl.find_opt t.drops_by_pair (src, dst) with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add t.drops_by_pair (src, dst) c;
        c
    in
    let dropped =
      p.drop_prob > 0.0 && droppable tag
      && t.total_drops < p.max_drops_total
      && !drop_count < p.max_drops_per_pair
      && Rng.float t.rng < p.drop_prob
    in
    if dropped then begin
      incr drop_count;
      t.total_drops <- t.total_drops + 1;
      t.stats.drops <- t.stats.drops + 1;
      []
    end
    else begin
      let base =
        if p.delay_prob > 0.0 && Rng.float t.rng < p.delay_prob then begin
          t.stats.delays <- t.stats.delays + 1;
          Int64.add arrival (Int64.of_int (1 + Rng.int t.rng (max 1 p.max_delay)))
        end
        else arrival
      in
      let copies =
        if p.dup_prob > 0.0 && duplicable tag && Rng.float t.rng < p.dup_prob then begin
          t.stats.dups <- t.stats.dups + 1;
          [ base; Int64.add base (Int64.of_int (1 + Rng.int t.rng (max 1 p.max_dup_delay))) ]
        end
        else [ base ]
      in
      List.map (fun a -> Some (stall_adjust a)) copies
    end
  end
