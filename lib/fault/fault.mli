(** Seeded, deterministic fault plans for the inter-kernel fabric.

    A plan perturbs message delivery with four fault classes:

    - {b delay}: extra per-message latency on tagged (inter-kernel)
      traffic;
    - {b duplicate}: a second delivery of the same message a little
      later — only for idempotent, op-tagged protocol messages;
    - {b drop}: the message is never delivered — only for op-tagged
      request/reply traffic that the kernels retransmit, and bounded
      both per directed PE pair and globally so a run cannot exceed
      what the retry budget tolerates;
    - {b stall}: a kernel PE "freezes" for a window; every message
      arriving during the window is held until it ends.

    All randomness comes from a single {!Semper_util.Rng} stream seeded
    by the profile, so a given (configuration, workload, fault seed)
    triple replays bit-identically. The plan itself never reorders a
    (src, dst) channel: the fabric re-clamps each injected arrival to
    preserve the pairwise FIFO guarantee the paper's protocols rely on
    (§4.3.1). *)

type profile = {
  seed : int64;
  delay_prob : float;        (** chance of extra latency per tagged message *)
  max_delay : int;           (** extra latency drawn from [1, max_delay] cycles *)
  dup_prob : float;          (** chance of duplicate delivery *)
  max_dup_delay : int;       (** duplicate lag drawn from [1, max_dup_delay] *)
  drop_prob : float;         (** chance of dropping a retryable message *)
  max_drops_per_pair : int;  (** drop budget per directed (src, dst) pair *)
  max_drops_total : int;     (** global drop budget for the whole run *)
  stall_prob : float;        (** chance a kernel-bound message opens a stall *)
  max_stall : int;           (** stall window drawn from [1, max_stall] cycles *)
}

(** No faults at all (all probabilities zero). *)
val quiet : profile

(** Single-class profiles, used by the per-class property tests. *)
val delay_only : seed:int64 -> profile

val duplicate_only : seed:int64 -> profile
val drop_only : seed:int64 -> profile
val stall_only : seed:int64 -> profile

(** Every fault class enabled at once. *)
val chaos : seed:int64 -> profile

type stats = {
  mutable delays : int;
  mutable dups : int;
  mutable drops : int;
  mutable stalls : int;
}

type t

(** [create ~kernel_pes profile] instantiates the plan. [kernel_pes]
    lists the PEs running kernels — stall windows only ever open
    there. Raises if a probability lies outside [0, 1]. *)
val create : ?kernel_pes:int list -> profile -> t

(** Injection counters so far. *)
val stats : t -> stats

val profile : t -> profile

(** One-line summary of {!stats}, byte-stable for fuzz reports. *)
val stats_line : t -> string

(** [injector t ~src ~dst ~tag ~now ~arrival] decides the fate of one
    message: the returned plan holds one element per copy — [Some time]
    delivers at that absolute time, [None] is a dropped copy, and [[]]
    drops the whole message. Matches the fabric's injector signature;
    the fabric clamps the result so FIFO order and causality
    ([arrival >= now]) still hold. *)
val injector :
  t -> src:int -> dst:int -> tag:string -> now:int64 -> arrival:int64 -> int64 option list

(** The plan's mutable cursor: RNG state, per-pair and total drop
    budgets, open stall windows, and the injection statistics. A
    restored plan continues its fault stream exactly where the snapshot
    was taken — the property that makes faulty runs resumable
    byte-identically. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
