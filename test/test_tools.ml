(* Tests for the tooling layer: trace serialisation, the syscall-trace
   recorder, the cross-kernel audit, and the broadcast-revocation
   baseline. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Trace_io                                                            *)

let roundtrip t =
  match Trace_io.of_string (Trace_io.to_string t) with
  | Ok t' -> t'
  | Error e -> Alcotest.fail e

let test_trace_io_roundtrip_workloads () =
  List.iter
    (fun spec ->
      let t = spec.Workloads.build () in
      let t' = roundtrip t in
      check Alcotest.string "name" t.Trace.name t'.Trace.name;
      check Alcotest.int "op count" (List.length t.Trace.ops) (List.length t'.Trace.ops);
      check Alcotest.bool "ops equal" true (t.Trace.ops = t'.Trace.ops);
      check Alcotest.bool "files equal" true (t.Trace.files = t'.Trace.files))
    Workloads.all

let test_trace_io_parse_errors () =
  let bad = [ "read 0"; "trace a\ntrace b"; "compute -5"; "open /f x"; "frobnicate 1" ] in
  List.iter
    (fun s ->
      match Trace_io.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad;
  (match Trace_io.of_string "" with
  | Error e -> check Alcotest.string "missing header" "missing 'trace <name>' header" e
  | Ok _ -> Alcotest.fail "accepted empty input")

let test_trace_io_comments_and_blanks () =
  let src = "# a comment\ntrace t\n\nfile /f 100  # trailing comment\ncompute 10\n" in
  match Trace_io.of_string src with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.string "name" "t" t.Trace.name;
    check Alcotest.int "one file" 1 (List.length t.Trace.files);
    check Alcotest.int "one op" 1 (List.length t.Trace.ops)

let test_trace_io_files () =
  let t = Workloads.sqlite.Workloads.build () in
  let path = Filename.temp_file "semperos" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path t;
      match Trace_io.load path with
      | Ok t' -> check Alcotest.bool "file roundtrip" true (t.Trace.ops = t'.Trace.ops)
      | Error e -> Alcotest.fail e)

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Trace.Compute (Int64.of_int c)) (0 -- 1000000);
        map3
          (fun p w c -> Trace.Open { path = "/p" ^ string_of_int p; write = w; create = c })
          (0 -- 9) bool bool;
        map2 (fun s b -> Trace.Read { slot = s; bytes = b }) (0 -- 9) (0 -- 100000);
        map2 (fun s b -> Trace.Write { slot = s; bytes = b }) (0 -- 9) (0 -- 100000);
        map2 (fun s p -> Trace.Seek { slot = s; pos = Int64.of_int p }) (0 -- 9) (0 -- 100000);
        map (fun s -> Trace.Close { slot = s }) (0 -- 9);
        map (fun p -> Trace.Stat ("/s" ^ string_of_int p)) (0 -- 9);
        map (fun p -> Trace.Stat_absent ("/a" ^ string_of_int p)) (0 -- 9);
        map (fun p -> Trace.Mkdir ("/d" ^ string_of_int p)) (0 -- 9);
        map (fun p -> Trace.Unlink ("/u" ^ string_of_int p)) (0 -- 9);
        map (fun p -> Trace.List ("/l" ^ string_of_int p)) (0 -- 9);
      ])

let prop_trace_io_roundtrip =
  QCheck.Test.make ~name:"trace text format roundtrips" ~count:100
    (QCheck.make QCheck.Gen.(list_size (0 -- 50) op_gen))
    (fun ops ->
      let t = { Trace.name = "gen"; ops; files = [ ("/p0", 42L) ] } in
      match Trace_io.of_string (Trace_io.to_string t) with
      | Ok t' -> t.Trace.ops = t'.Trace.ops && t.Trace.files = t'.Trace.files
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)

let test_recorder_roundtrip () =
  (* Drive a little application through the recorder, then replay the
     recorded trace on a fresh system and compare behaviour. *)
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:4 ()) in
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:[ ("/data/in", 100_000L) ] () in
  let vpe = System.spawn_vpe sys ~kernel:0 in
  let recorded = ref None in
  Fs_client.connect sys fs ~vpe (fun conn ->
      let client = Result.get_ok conn in
      let rc = Recorder.create sys ~name:"little-app" client in
      Recorder.stat rc "/data/in" (fun _ ->
          Recorder.open_ rc "/data/in" ~write:false ~create:false (fun r ->
              let slot = Result.get_ok r in
              Engine.after (System.engine sys) 50_000L (fun () ->
                  Recorder.read rc ~slot ~bytes:100_000 (fun _ ->
                      Recorder.close rc ~slot (fun _ -> recorded := Some (Recorder.trace rc)))))));
  ignore (System.run sys);
  let trace = Option.get !recorded in
  (* Shape of the recording. *)
  let io = Trace.io_ops trace in
  check Alcotest.int "stat + open + read + close" 4 io;
  check Alcotest.bool "compute gap captured" true (Trace.compute_cycles trace >= 50_000L);
  check Alcotest.bool "file captured with size" true
    (List.mem ("/data/in", 100_000L) trace.Trace.files);
  (* It also survives serialisation. *)
  let trace = roundtrip trace in
  (* And replays cleanly on a fresh system. *)
  let sys2 = System.create (System.config ~kernels:1 ~user_pes_per_kernel:4 ()) in
  let fs2 = M3fs.create sys2 ~kernel:0 ~name:"m3fs" ~files:trace.Trace.files () in
  let vpe2 = System.spawn_vpe sys2 ~kernel:0 in
  let result = ref None in
  Replay.run sys2 fs2 ~vpe:vpe2 trace (fun r -> result := Some r);
  ignore (System.run sys2);
  let r = Option.get !result in
  check Alcotest.(list string) "replay clean" [] r.Replay.errors;
  check Alcotest.int "same io ops" io r.Replay.io_ops

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let test_audit_healthy_system () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v3 = System.spawn_vpe sys ~kernel:2 in
  let s1 =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  let s2 =
    sel_of
      (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = s1 }))
  in
  ignore
    (sel_of
       (System.syscall_sync sys v3 (Protocol.Sys_obtain_from { donor_vpe = v2.Vpe.id; donor_sel = s2 })));
  let report = Audit.run sys in
  check Alcotest.(list string) "no violations" [] report.Audit.errors;
  check Alcotest.int "three caps" 3 report.Audit.capabilities;
  check Alcotest.int "one root" 1 report.Audit.roots;
  check Alcotest.int "depth three" 3 report.Audit.max_depth;
  check Alcotest.int "two spanning links" 2 report.Audit.spanning_links;
  Audit.check sys

let test_audit_detects_corruption () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let s1 =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  ignore
    (sel_of
       (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = s1 })));
  (* Corrupt a cross-kernel link by hand: the audit must notice. *)
  let donor_key = Option.get (Capspace.find v1.Vpe.capspace s1) in
  let db = Kernel.mapdb (System.kernel sys 0) in
  (match Mapdb.children db donor_key with
  | child :: _ -> Mapdb.remove_child db ~parent:donor_key child
  | [] -> Alcotest.fail "no child to corrupt");
  let report = Audit.run sys in
  check Alcotest.bool "violations found" true (report.Audit.errors <> []);
  match Audit.check sys with
  | () -> Alcotest.fail "Audit.check should have failed"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Incremental audit                                                   *)

let reports_equal (a : Audit.report) (b : Audit.report) =
  a.Audit.capabilities = b.Audit.capabilities
  && a.Audit.roots = b.Audit.roots
  && a.Audit.max_depth = b.Audit.max_depth
  && a.Audit.spanning_links = b.Audit.spanning_links
  && a.Audit.errors = b.Audit.errors

let check_agrees name sys inc =
  let full = Audit.run sys in
  check Alcotest.(list string) (name ^ ": full is clean") [] full.Audit.errors;
  let ir = Audit.Incremental.run inc in
  if not (reports_equal full ir) then
    Alcotest.failf "%s: full %a vs incremental %a" name Audit.pp_report full Audit.pp_report ir

let test_incremental_tracks_mutations () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let inc = Audit.Incremental.create ~full_every:0 sys in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v3 = System.spawn_vpe sys ~kernel:2 in
  check_agrees "after spawn" sys inc;
  let s1 =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  check_agrees "after alloc" sys inc;
  let s2 =
    sel_of
      (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = s1 }))
  in
  ignore
    (sel_of
       (System.syscall_sync sys v3 (Protocol.Sys_obtain_from { donor_vpe = v2.Vpe.id; donor_sel = s2 })));
  check_agrees "after spanning chain" sys inc;
  (match System.syscall_sync sys v1 (Protocol.Sys_revoke { sel = s1; own = false }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke children: %a" Protocol.pp_reply r);
  check_agrees "after children-only revoke" sys inc;
  ignore
    (sel_of
       (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = s1 })));
  check_agrees "after regrant" sys inc;
  (match System.syscall_sync sys v1 (Protocol.Sys_revoke { sel = s1; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
  check_agrees "after full revoke" sys inc

let test_incremental_detects_corruption () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let inc = Audit.Incremental.create ~full_every:0 sys in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let s1 =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  ignore
    (sel_of
       (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = s1 })));
  check_agrees "healthy" sys inc;
  (* Corrupt a cross-kernel link: unlinking marks the partition dirty,
     so the next incremental pass re-checks it. *)
  let donor_key = Option.get (Capspace.find v1.Vpe.capspace s1) in
  let db = Kernel.mapdb (System.kernel sys 0) in
  (match Mapdb.children db donor_key with
  | child :: _ -> Mapdb.remove_child db ~parent:donor_key child
  | [] -> Alcotest.fail "no child to corrupt");
  let ir = Audit.Incremental.run inc in
  check Alcotest.bool "incremental catches the unlink" true (ir.Audit.errors <> [])

let test_incremental_full_fallback () =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:4 ()) in
  let inc = Audit.Incremental.create ~full_every:2 sys in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  ignore
    (sel_of (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })));
  let r1 = Audit.Incremental.run inc in
  (* Second call is the full-audit fallback (full_every = 2). *)
  let r2 = Audit.Incremental.run inc in
  check Alcotest.(list string) "incremental clean" [] r1.Audit.errors;
  check Alcotest.(list string) "fallback clean" [] r2.Audit.errors;
  check Alcotest.int "same caps" r1.Audit.capabilities r2.Audit.capabilities;
  check Alcotest.int "same roots" r1.Audit.roots r2.Audit.roots

(* ------------------------------------------------------------------ *)
(* Benchmark document schemas                                          *)

(* The committed BENCH_*.json baselines are declared as test deps (see
   test/dune), so dune copies them next to the test binary's cwd's
   parent and re-runs this check whenever one changes. *)
let test_bench_documents_validate () =
  let bench_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "BENCH_" && Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  (* Under [dune runtest] the baselines sit one level up from the test
     cwd (copied there by the dep glob); under [dune exec] from the
     project root they are in the cwd itself. *)
  let dir = if bench_files "." <> [] then "." else ".." in
  let files = bench_files dir in
  check Alcotest.bool "found benchmark documents" true (List.length files >= 7);
  List.iter
    (fun f ->
      match Bench_json.validate_file (Filename.concat dir f) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" f e)
    files

let test_bench_validate_rejects () =
  let reject name doc =
    match Obs.Json.parse doc with
    | Error e -> Alcotest.failf "%s: test document does not parse: %s" name e
    | Ok json -> (
      match Bench_json.validate json with
      | Ok () -> Alcotest.failf "%s: validated" name
      | Error _ -> ())
  in
  reject "unknown schema" {|{"schema":"semperos-nonesuch-1","rows":[]}|};
  reject "missing top-level key" {|{"schema":"semperos-engine-1"}|};
  reject "empty row array" {|{"schema":"semperos-engine-1","samples":[]}|};
  reject "row missing a key"
    {|{"schema":"semperos-engine-1","samples":[{"backend":"heap","op":"drain"}]}|};
  reject "schema-less document without a path" {|{"table3":[]}|}

(* ------------------------------------------------------------------ *)
(* Broadcast revocation baseline                                       *)

let test_broadcast_correctness () =
  (* Broadcast mode must revoke exactly the same capabilities. *)
  let run broadcast =
    let sys =
      System.create (System.config ~kernels:4 ~user_pes_per_kernel:8 ~broadcast ())
    in
    let root = System.spawn_vpe sys ~kernel:0 in
    let sel =
      sel_of (System.syscall_sync sys root (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
    in
    for i = 0 to 11 do
      let v = System.spawn_vpe sys ~kernel:(i mod 4) in
      ignore
        (sel_of
           (System.syscall_sync sys v
              (Protocol.Sys_obtain_from { donor_vpe = root.Vpe.id; donor_sel = sel })))
    done;
    (match System.syscall_sync sys root (Protocol.Sys_revoke { sel; own = true }) with
    | Protocol.R_ok -> ()
    | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
    Audit.check sys;
    List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)
  in
  check Alcotest.int "targeted revokes all" 0 (run false);
  check Alcotest.int "broadcast revokes all" 0 (run true)

let test_broadcast_pays_scan () =
  let time ~broadcast ~background_caps =
    Microbench.tree_revocation ~broadcast ~background_caps ~extra_kernels:7 ~children:32 ()
  in
  let targeted = time ~broadcast:false ~background_caps:1000 in
  let broadcast = time ~broadcast:true ~background_caps:1000 in
  check Alcotest.bool "broadcast slower on populated databases" true (broadcast > targeted)

let suite =
  [
    Alcotest.test_case "trace io roundtrips every workload" `Quick test_trace_io_roundtrip_workloads;
    Alcotest.test_case "trace io parse errors" `Quick test_trace_io_parse_errors;
    Alcotest.test_case "trace io comments" `Quick test_trace_io_comments_and_blanks;
    Alcotest.test_case "trace io save/load" `Quick test_trace_io_files;
    qcheck prop_trace_io_roundtrip;
    Alcotest.test_case "recorder record-then-replay" `Quick test_recorder_roundtrip;
    Alcotest.test_case "audit healthy system" `Quick test_audit_healthy_system;
    Alcotest.test_case "audit detects corruption" `Quick test_audit_detects_corruption;
    Alcotest.test_case "incremental audit tracks mutations" `Quick test_incremental_tracks_mutations;
    Alcotest.test_case "incremental audit detects corruption" `Quick
      test_incremental_detects_corruption;
    Alcotest.test_case "incremental audit full fallback" `Quick test_incremental_full_fallback;
    Alcotest.test_case "bench documents match their schemas" `Quick test_bench_documents_validate;
    Alcotest.test_case "bench validator rejects malformed documents" `Quick
      test_bench_validate_rejects;
    Alcotest.test_case "broadcast correctness" `Quick test_broadcast_correctness;
    Alcotest.test_case "broadcast pays the scan" `Quick test_broadcast_pays_scan;
  ]
