(* The replay-driven regression suite: shrunk corpus cases keep their
   oracle verdicts, recorded figure runs replay byte-identically from
   any checkpoint at any job count, and the shrinker is deterministic
   and actually shrinks. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)

(* [dune runtest] runs the suite from test/; [dune exec] from the
   project root. *)
let corpus_dir =
  match List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ] with
  | Some dir -> dir
  | None -> "corpus"

let corpus_cases () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".case")
  |> List.sort String.compare
  |> List.map (fun f -> Filename.concat corpus_dir f)

let test_corpus_is_populated () =
  check Alcotest.bool "at least two shrunk counterexamples" true
    (List.length (corpus_cases ()) >= 2)

let test_corpus_verdicts_are_stable () =
  List.iter
    (fun path ->
      match Fuzz.Case.load path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok case -> (
          match Fuzz.Case.check case with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s: %s" path e))
    (corpus_cases ())

let test_corpus_cases_are_minimal () =
  (* a shrunk case keeps failing, and dropping its last op makes it
     pass — the stored prefix length really is the 1-minimal one *)
  List.iter
    (fun path ->
      match Fuzz.Case.load path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok case ->
          let shorter =
            { case.Fuzz.Case.spec with Fuzz.ops = case.Fuzz.Case.spec.Fuzz.ops - 1 }
          in
          let outcome =
            Fuzz.run_one ~spec:shorter ~workload_seed:case.Fuzz.Case.workload_seed
              ~fault_seed:case.Fuzz.Case.fault_seed ()
          in
          check Alcotest.bool
            (path ^ ": one op shorter passes")
            true (outcome.Fuzz.failures = []))
    (corpus_cases ())

let test_case_string_roundtrip () =
  let case =
    {
      Fuzz.Case.name = "roundtrip";
      spec = Fuzz.spec ~kernels:4 ~vpes:9 ~ops:17 ~delay:false ~stall:false ~retry:false ();
      workload_seed = 123;
      fault_seed = 9876;
      expect = [ "audit"; "teardown" ];
    }
  in
  match Fuzz.Case.of_string (Fuzz.Case.to_string case) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok back ->
      check Alcotest.bool "round-trips structurally" true (back = case);
      check Alcotest.string "serialisation is stable" (Fuzz.Case.to_string case)
        (Fuzz.Case.to_string back)

let test_case_rejects_garbage () =
  (match Fuzz.Case.of_string "not a case file" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing tag accepted");
  match Fuzz.Case.of_string "semperos-fuzz-case 99\nname x\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future format version accepted"

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let failing_spec = Fuzz.spec ~delay:false ~dup:false ~stall:false ~retry:false ()

let test_shrink_reduces_and_reproduces () =
  match Fuzz.shrink ~spec:failing_spec ~workload_seed:2 ~fault_seed:1002 () with
  | Error e -> Alcotest.failf "shrink: %s" e
  | Ok r ->
      check Alcotest.bool "original failed" true (r.Fuzz.sh_original.Fuzz.failures <> []);
      check Alcotest.bool "minimal still fails" true (r.Fuzz.sh_minimal.Fuzz.failures <> []);
      check Alcotest.bool "at least halves the op count" true
        (2 * r.Fuzz.sh_min_ops <= failing_spec.Fuzz.ops);
      check Alcotest.bool "checkpoints saved replay work" true (r.Fuzz.sh_saved_ops > 0);
      (* the minimal prefix replayed from scratch — never from a
         checkpoint — reproduces the shrunk outcome byte-for-byte *)
      let direct =
        Fuzz.run_one
          ~spec:{ failing_spec with Fuzz.ops = r.Fuzz.sh_min_ops }
          ~workload_seed:2 ~fault_seed:1002 ()
      in
      check Alcotest.string "minimal outcome reproduces from scratch"
        (Fuzz.outcome_line r.Fuzz.sh_minimal) (Fuzz.outcome_line direct)

let test_shrink_is_deterministic () =
  let run () =
    match Fuzz.shrink ~spec:failing_spec ~workload_seed:8 ~fault_seed:1008 () with
    | Error e -> Alcotest.failf "shrink: %s" e
    | Ok r -> (r.Fuzz.sh_min_ops, Fuzz.outcome_line r.Fuzz.sh_minimal, r.Fuzz.sh_probes)
  in
  let ops1, line1, probes1 = run () in
  let ops2, line2, probes2 = run () in
  check Alcotest.int "same minimal length" ops1 ops2;
  check Alcotest.string "same minimal outcome" line1 line2;
  check Alcotest.int "same probe count" probes1 probes2;
  (* a coarser checkpoint cadence changes the replay cost, not the
     minimal case *)
  match Fuzz.shrink ~spec:failing_spec ~checkpoint_every:1 ~workload_seed:8 ~fault_seed:1008 () with
  | Error e -> Alcotest.failf "shrink: %s" e
  | Ok r ->
      check Alcotest.int "cadence does not move the minimum" ops1 r.Fuzz.sh_min_ops;
      check Alcotest.string "cadence does not change the outcome" line1
        (Fuzz.outcome_line r.Fuzz.sh_minimal)

let test_shrink_refuses_passing_case () =
  match Fuzz.shrink ~workload_seed:7 ~fault_seed:1007 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shrinking a passing case must be an error"

(* ------------------------------------------------------------------ *)
(* Recorded figure runs                                                *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let path = Filename.temp_file "semperos-rec" "" in
    Sys.remove path;
    path ^ Printf.sprintf "-%d" !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let fig4 =
  match Figures.find "fig4" with
  | Some f -> f
  | None -> Alcotest.fail "fig4 is not registered"

let output_equal what (a : Figures.output) (b : Figures.output) =
  check Alcotest.string (what ^ ": text byte-identical") a.Figures.text b.Figures.text;
  check Alcotest.string (what ^ ": json byte-identical")
    (Obs.Json.to_string a.Figures.json)
    (Obs.Json.to_string b.Figures.json)

let test_record_replay_byte_identical () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let recorded = Record.record ~jobs:1 ~every:2 ~dir fig4 Figures.Smoke in
      let reference = Figures.run ~jobs:1 fig4 Figures.Smoke in
      output_equal "record matches the uninterrupted run" recorded reference;
      let total =
        match Record.read_manifest dir with
        | Ok m -> m.Record.m_total
        | Error e -> Alcotest.failf "manifest: %s" e
      in
      check Alcotest.bool "smoke run has several points" true (total >= 4);
      (* resume from every position (and past the end), serial and
         parallel: all byte-identical to the uninterrupted output *)
      List.iter
        (fun jobs ->
          for from_ = 0 to total + 1 do
            match Record.replay ~jobs ~dir ~from_ () with
            | Error e -> Alcotest.failf "replay --from %d: %s" from_ e
            | Ok (resumed_at, out) ->
                check Alcotest.bool "resumed at a recorded prefix" true
                  (resumed_at >= 0 && resumed_at <= total && resumed_at <= from_);
                output_equal
                  (Printf.sprintf "replay --jobs %d --from %d" jobs from_)
                  out reference
          done)
        [ 1; 4 ])

let test_record_replay_fig6 () =
  let fig6 =
    match Figures.find "fig6" with
    | Some f -> f
    | None -> Alcotest.fail "fig6 is not registered"
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let recorded = Record.record ~jobs:1 ~every:1 ~dir fig6 Figures.Smoke in
      let reference = Figures.run ~jobs:4 fig6 Figures.Smoke in
      output_equal "serial record matches the parallel run" recorded reference;
      List.iter
        (fun (jobs, from_) ->
          match Record.replay ~jobs ~dir ~from_ () with
          | Error e -> Alcotest.failf "fig6 replay --from %d: %s" from_ e
          | Ok (_, out) ->
              output_equal
                (Printf.sprintf "fig6 replay --jobs %d --from %d" jobs from_)
                out reference)
        [ (1, 0); (1, 1); (4, 1); (4, max_int) ])

(* The fuzz smoke's chaos-profile sweep: the fan-out is
   jobs-insensitive, and any case of the sweep frozen mid-run resumes
   to the outcome the sweep reports. *)
let test_fuzz_smoke_roundtrip_any_jobs () =
  let runs = 8 in
  let serial = Fuzz.run_many ~jobs:1 ~workload_seed:1 ~fault_seed:1_001 ~runs () in
  let parallel = Fuzz.run_many ~jobs:4 ~workload_seed:1 ~fault_seed:1_001 ~runs () in
  check
    (Alcotest.list Alcotest.string)
    "sweep outcomes identical at --jobs 1 and --jobs 4"
    (List.map Fuzz.outcome_line serial)
    (List.map Fuzz.outcome_line parallel);
  List.iteri
    (fun i reference ->
      let image = ref None in
      ignore
        (Fuzz.run_one ~checkpoint_every:20
           ~on_checkpoint:(fun at img -> if at = 20 then image := Some img)
           ~workload_seed:(1 + i) ~fault_seed:(1_001 + i) ());
      match !image with
      | None -> Alcotest.failf "seed %d: no checkpoint at op 20" (1 + i)
      | Some img -> (
          match Fuzz.load_state img with
          | Error e -> Alcotest.failf "seed %d: %s" (1 + i) e
          | Ok (_, st) ->
              while Fuzz.steps_done st < Fuzz.default_spec.Fuzz.ops do
                Fuzz.step st
              done;
              check Alcotest.string
                (Printf.sprintf "seed %d resumes to the sweep's outcome" (1 + i))
                (Fuzz.outcome_line reference)
                (Fuzz.outcome_line (Fuzz.finish st))))
    serial

let test_replay_survives_a_missing_checkpoint () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let recorded = Record.record ~jobs:1 ~every:2 ~dir fig4 Figures.Smoke in
      (* deleting an image only costs recompute: replay falls back to
         the previous checkpoint boundary *)
      let victim = Filename.concat dir "ckpt-4.img" in
      check Alcotest.bool "expected image exists" true (Sys.file_exists victim);
      Sys.remove victim;
      match Record.replay ~jobs:1 ~dir ~from_:4 () with
      | Error e -> Alcotest.failf "replay after deletion: %s" e
      | Ok (resumed_at, out) ->
          check Alcotest.bool "fell back below the deleted image" true (resumed_at < 4);
          output_equal "fallback output" out recorded)

let test_replay_rejects_a_corrupt_checkpoint () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      ignore (Record.record ~jobs:1 ~every:2 ~dir fig4 Figures.Smoke);
      (* a present-but-unreadable image is a hard error, never a
         silent recompute *)
      let victim = Filename.concat dir "ckpt-4.img" in
      let oc = open_out_bin victim in
      output_string oc "SEMCKPT1 but truncated garbage";
      close_out oc;
      match Record.replay ~jobs:1 ~dir ~from_:4 () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt image must fail the replay")

let test_replay_requires_a_recording () =
  match Record.replay ~dir:(fresh_dir ()) ~from_:0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay without a manifest must fail"

let suite =
  [
    Alcotest.test_case "corpus holds shrunk counterexamples" `Quick test_corpus_is_populated;
    Alcotest.test_case "corpus verdicts are stable" `Quick test_corpus_verdicts_are_stable;
    Alcotest.test_case "corpus cases are 1-minimal" `Quick test_corpus_cases_are_minimal;
    Alcotest.test_case "case files round-trip" `Quick test_case_string_roundtrip;
    Alcotest.test_case "case files reject garbage" `Quick test_case_rejects_garbage;
    Alcotest.test_case "shrink halves the case and reproduces it" `Quick
      test_shrink_reduces_and_reproduces;
    Alcotest.test_case "shrink is deterministic" `Quick test_shrink_is_deterministic;
    Alcotest.test_case "shrink refuses a passing case" `Quick test_shrink_refuses_passing_case;
    Alcotest.test_case "record/replay is byte-identical at any --from and --jobs" `Quick
      test_record_replay_byte_identical;
    Alcotest.test_case "fig6 record/replay is byte-identical" `Slow test_record_replay_fig6;
    Alcotest.test_case "fuzz smoke round-trips at any --jobs" `Slow
      test_fuzz_smoke_roundtrip_any_jobs;
    Alcotest.test_case "replay survives a deleted checkpoint" `Quick
      test_replay_survives_a_missing_checkpoint;
    Alcotest.test_case "replay rejects a corrupt checkpoint" `Quick
      test_replay_rejects_a_corrupt_checkpoint;
    Alcotest.test_case "replay requires a recording" `Quick test_replay_requires_a_recording;
  ]
