(* Tests for the checkpoint/restore layer: image format validation,
   per-module snapshot round-trips, whole-system fingerprints, fuzz
   cases frozen mid-run, and snapshots taken inside a migration
   handoff window — including a revocation parked by
   [defer_revoke_child] that must complete after resume. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Image format                                                        *)

type toy = { t_label : string; t_values : int list; t_fn : int -> int }

let toy = { t_label = "toy"; t_values = [ 1; 2; 3 ]; t_fn = (fun x -> x * 2) }

let test_image_roundtrip () =
  let img =
    Checkpoint.save ~kind:"toy" ~label:"unit" ~position:7L ~fingerprint:"fp" toy
  in
  (match Checkpoint.header_of_bytes img with
  | Error e -> Alcotest.failf "header: %s" e
  | Ok h ->
      check Alcotest.int "version" Checkpoint.format_version h.Checkpoint.version;
      check Alcotest.string "kind" "toy" h.Checkpoint.kind;
      check Alcotest.string "label" "unit" h.Checkpoint.label;
      check Alcotest.int64 "position" 7L h.Checkpoint.position;
      check Alcotest.string "fingerprint" "fp" h.Checkpoint.fingerprint;
      check Alcotest.bool "digest nonempty" true (h.Checkpoint.payload_digest <> ""));
  match Checkpoint.load ~kind:"toy" img with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (_, (t : toy)) ->
      check Alcotest.string "label survives" toy.t_label t.t_label;
      check (Alcotest.list Alcotest.int) "values survive" toy.t_values t.t_values;
      (* closures are captured too (same-binary load) *)
      check Alcotest.int "closure survives" 42 (t.t_fn 21)

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a load error" what

let test_version_mismatch_rejected () =
  let img =
    Checkpoint.save ~version:(Checkpoint.format_version + 1) ~kind:"toy" toy
  in
  (* the header still decodes — that is how tools report what version a
     stale image was written with — but the payload must not load *)
  (match Checkpoint.header_of_bytes img with
  | Error e -> Alcotest.failf "header: %s" e
  | Ok h ->
      check Alcotest.int "recorded version" (Checkpoint.format_version + 1)
        h.Checkpoint.version);
  expect_error "future version" (Checkpoint.load ~kind:"toy" img : (_ * toy, _) result);
  let img = Checkpoint.save ~version:0 ~kind:"toy" toy in
  expect_error "stale version" (Checkpoint.load ~kind:"toy" img : (_ * toy, _) result)

let test_kind_mismatch_rejected () =
  let img = Checkpoint.save ~kind:"fuzz-case" toy in
  expect_error "wrong kind" (Checkpoint.load ~kind:"recording" img : (_ * toy, _) result)

let test_corrupt_payload_rejected () =
  let img = Checkpoint.save ~kind:"toy" toy in
  let corrupt = Bytes.copy img in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0xff));
  expect_error "flipped byte" (Checkpoint.load ~kind:"toy" corrupt : (_ * toy, _) result)

let test_garbage_rejected () =
  let img = Checkpoint.save ~kind:"toy" toy in
  expect_error "truncated"
    (Checkpoint.load ~kind:"toy" (Bytes.sub img 0 12) : (_ * toy, _) result);
  expect_error "empty" (Checkpoint.load ~kind:"toy" Bytes.empty : (_ * toy, _) result);
  let noise = Bytes.of_string "not a checkpoint image at all......" in
  expect_error "bad magic" (Checkpoint.load ~kind:"toy" noise : (_ * toy, _) result)

let test_file_roundtrip () =
  let path = Filename.temp_file "semperos-ckpt" ".img" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let img = Checkpoint.save ~kind:"toy" ~label:"file" toy in
      Checkpoint.write path img;
      match Checkpoint.read path with
      | Error e -> Alcotest.failf "read: %s" e
      | Ok bytes ->
          check Alcotest.bool "bytes identical" true (Bytes.equal img bytes));
  expect_error "missing file" (Checkpoint.read (path ^ ".does-not-exist"))

(* ------------------------------------------------------------------ *)
(* Module snapshots                                                    *)

let test_rng_snapshot_resumes_stream () =
  let rng = Rng.create 0xfeedL in
  for _ = 1 to 17 do
    ignore (Rng.next rng)
  done;
  let snap = Rng.snapshot rng in
  let tail = List.init 10 (fun _ -> Rng.next rng) in
  Rng.restore rng snap;
  let replayed = List.init 10 (fun _ -> Rng.next rng) in
  check (Alcotest.list Alcotest.int64) "stream resumes at the cursor" tail replayed

let test_membership_midhandoff_snapshot () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:2 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  let m = Kernel.membership (System.kernel sys 0) in
  let pe = v.Vpe.pe in
  let before = Membership.snapshot m in
  Membership.begin_handoff m ~pe;
  check Alcotest.bool "mark set" true (Membership.in_handoff m pe);
  (* a snapshot taken inside the window restores to the window *)
  let inside = Membership.snapshot m in
  Membership.complete_handoff m ~pe ~kernel:1;
  check Alcotest.bool "mark cleared" false (Membership.in_handoff m pe);
  check Alcotest.int "flipped to destination" 1 (Membership.kernel_of_pe m pe);
  Membership.restore m inside;
  check Alcotest.bool "window restored" true (Membership.in_handoff m pe);
  Membership.restore m before;
  check Alcotest.bool "pre-window restored" false (Membership.in_handoff m pe);
  check Alcotest.int "mapping restored" 0 (Membership.kernel_of_pe m pe)

(* Satellite: engine timer handles ride through a checkpoint. A handle
   inside the image aliases the recording engine's stamp; [rebind]
   re-stamps the restored engine so the handle is valid there — and
   only there. *)

type timer_root = {
  tr_engine : Engine.t;
  mutable tr_handle : Engine.handle option;
  mutable tr_fired : bool;
}

let handle_of r =
  match r.tr_handle with Some h -> h | None -> Alcotest.fail "no handle in image"

let test_engine_handle_rebind () =
  let root = { tr_engine = Engine.create (); tr_handle = None; tr_fired = false } in
  root.tr_handle <-
    Some (Engine.at_cancellable root.tr_engine 100L (fun () -> root.tr_fired <- true));
  let img = Checkpoint.save ~kind:"timer" root in
  let refused engine handle =
    try
      Engine.cancel engine handle;
      false
    with Invalid_argument _ -> true
  in
  (* a restored engine initially shares the recording engine's stamp;
     rebind separates the two identities *)
  (match Checkpoint.load ~kind:"timer" img with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (_, (copy : timer_root)) ->
      Engine.rebind copy.tr_engine;
      check Alcotest.bool "recording handle is foreign to the rebound engine" true
        (refused copy.tr_engine (handle_of root));
      check Alcotest.bool "restored handle is foreign to the recording engine" true
        (refused root.tr_engine (handle_of copy));
      (* the restored copy's own handle works: cancel silences the timer *)
      Engine.cancel copy.tr_engine (handle_of copy);
      ignore (Engine.run copy.tr_engine);
      check Alcotest.bool "cancelled timer stays quiet" false copy.tr_fired);
  (* an untouched restored copy still fires it *)
  match Checkpoint.load ~kind:"timer" img with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (_, (copy : timer_root)) ->
      Engine.rebind copy.tr_engine;
      ignore (Engine.run copy.tr_engine);
      check Alcotest.bool "timer fires on resume" true copy.tr_fired

(* ------------------------------------------------------------------ *)
(* Whole-system fingerprints                                           *)

let boot () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let sel =
    match
      System.syscall_sync sys a (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
    with
    | Protocol.R_sel s -> s
    | r -> Alcotest.failf "alloc: %a" Protocol.pp_reply r
  in
  (sys, a, b, sel)

let test_fingerprint_equal_then_divergent () =
  let sys1, _, _, _ = boot () in
  let sys2, a2, b2, sel2 = boot () in
  check Alcotest.string "identical histories fingerprint alike"
    (System.fingerprint sys1) (System.fingerprint sys2);
  (match
     System.syscall_sync sys2 a2 (Protocol.Sys_delegate_to { recv_vpe = b2.Vpe.id; sel = sel2 })
   with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "delegate: %a" Protocol.pp_reply r);
  check Alcotest.bool "divergent histories fingerprint apart" false
    (String.equal (System.fingerprint sys1) (System.fingerprint sys2))

let test_system_snapshot_restore_in_place () =
  let sys, a, b, sel = boot () in
  let snap = System.snapshot sys in
  let fp = System.fingerprint sys in
  (* restoring onto the matching state is the identity *)
  System.restore sys snap;
  check Alcotest.string "restore onto itself is the identity" fp (System.fingerprint sys);
  (* snapshots are closure-free summaries: once the closure-bearing
     control planes moved on, an in-place restore is refused rather
     than silently wrong — rewinding goes through a whole-image
     checkpoint instead. With the timer wheel the event queue itself
     drains back to the snapshot's (empty) shape, so the refusal is
     witnessed by the kernels' idempotency caches, which only grow. *)
  (match
     System.syscall_sync sys a (Protocol.Sys_delegate_to { recv_vpe = b.Vpe.id; sel })
   with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "delegate: %a" Protocol.pp_reply r);
  check Alcotest.bool "mutated" false (String.equal fp (System.fingerprint sys));
  check Alcotest.bool "divergent control plane is refused" true
    (try
       System.restore sys snap;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fuzz cases frozen mid-run                                           *)

let test_fuzz_midcase_roundtrip () =
  let finish_from st =
    while Fuzz.steps_done st < Fuzz.default_spec.Fuzz.ops do
      Fuzz.step st
    done;
    Fuzz.outcome_line (Fuzz.finish st)
  in
  let st = Fuzz.start ~workload_seed:7 ~fault_seed:1007 () in
  for _ = 1 to 10 do
    Fuzz.step st
  done;
  let img = Fuzz.save_state st in
  (match Checkpoint.header_of_bytes img with
  | Error e -> Alcotest.failf "header: %s" e
  | Ok h ->
      check Alcotest.string "kind" Fuzz.case_kind h.Checkpoint.kind;
      check Alcotest.int64 "position = ops executed" 10L h.Checkpoint.position);
  match Fuzz.load_state img with
  | Error e -> Alcotest.failf "load_state: %s" e
  | Ok (h, copy) ->
      check Alcotest.string "fingerprint reproduced" h.Checkpoint.fingerprint
        (System.fingerprint (Fuzz.state_system copy));
      let original = finish_from st in
      let resumed = finish_from copy in
      check Alcotest.string "resumed outcome is byte-identical" original resumed

let test_fuzz_checkpointing_is_transparent () =
  let plain = Fuzz.run_one ~workload_seed:7 ~fault_seed:1007 () in
  let seen = ref [] in
  let ckpt =
    Fuzz.run_one ~checkpoint_every:5
      ~on_checkpoint:(fun at _ -> seen := at :: !seen)
      ~workload_seed:7 ~fault_seed:1007 ()
  in
  check Alcotest.string "outcome unchanged by checkpointing"
    (Fuzz.outcome_line plain) (Fuzz.outcome_line ckpt);
  check (Alcotest.list Alcotest.int) "cadence respected"
    [ 0; 5; 10; 15; 20; 25; 30; 35 ] (List.rev !seen)

let test_fuzz_rejects_foreign_image () =
  let img = Checkpoint.save ~kind:"recording" ~label:"not a fuzz case" [ 1; 2; 3 ] in
  match Fuzz.load_state img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a recording image must not load as a fuzz case"

(* ------------------------------------------------------------------ *)
(* Snapshots inside a migration handoff window                         *)

(* The root is one marshalable record: the migration-completion
   callback and the revoke reply continuation close over it, so a
   single image captures the whole scene mid-flight. *)
type handoff_root = {
  hr_sys : System.t;
  hr_a : Vpe.t;  (* revoker, kernel 0 *)
  hr_b : Vpe.t;  (* migrating VPE, kernel 1 -> 2 *)
  hr_sel : Protocol.selector;
  mutable hr_finished : bool;
  mutable hr_reply : Protocol.reply option;
}

let handoff_boot () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let sel =
    match
      System.syscall_sync sys a (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
    with
    | Protocol.R_sel s -> s
    | r -> Alcotest.failf "alloc: %a" Protocol.pp_reply r
  in
  (match System.syscall_sync sys a (Protocol.Sys_delegate_to { recv_vpe = b.Vpe.id; sel }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "delegate: %a" Protocol.pp_reply r);
  let r = { hr_sys = sys; hr_a = a; hr_b = b; hr_sel = sel; hr_finished = false; hr_reply = None } in
  Membership.reassign (System.membership sys) ~pe:b.Vpe.pe ~kernel:2;
  Kernel.migrate_vpe (System.kernel sys 1) ~vpe:b ~dst:2 (fun () -> r.hr_finished <- true);
  r

let window_live r =
  Membership.in_handoff (Kernel.membership (System.kernel r.hr_sys 1)) r.hr_b.Vpe.pe
  || Membership.in_handoff (Kernel.membership (System.kernel r.hr_sys 2)) r.hr_b.Vpe.pe

let run_cycles r n =
  ignore (System.run ~until:(Int64.add (System.now r.hr_sys) (Int64.of_int n)) r.hr_sys)

let assert_settled what r =
  check Alcotest.bool (what ^ ": migration finished") true r.hr_finished;
  check Alcotest.bool (what ^ ": no mark survives") false (window_live r);
  check Alcotest.int (what ^ ": b routed to kernel 2") 2
    (Membership.kernel_of_pe (Kernel.membership (System.kernel r.hr_sys 0)) r.hr_b.Vpe.pe);
  check Alcotest.bool (what ^ ": b unfrozen") false r.hr_b.Vpe.frozen;
  check (Alcotest.list Alcotest.string) (what ^ ": audit clean") []
    (Audit.run r.hr_sys).Audit.errors

let restore_root img =
  match Checkpoint.load ~kind:"handoff" img with
  | Error e -> Alcotest.failf "restore: %s" e
  | Ok (h, (copy : handoff_root)) ->
      System.rebind copy.hr_sys;
      check Alcotest.string "restored fingerprint matches the header"
        h.Checkpoint.fingerprint (System.fingerprint copy.hr_sys);
      copy

let test_midhandoff_snapshot_restores_frozen_vpe () =
  let r = handoff_boot () in
  (* land inside the handoff window: source and destination marks are
     both live ~1.1k cycles after the migration starts *)
  run_cycles r 1100;
  check Alcotest.bool "snapshot point is mid-window" true (window_live r);
  let frozen_at_snapshot = r.hr_b.Vpe.frozen in
  check Alcotest.bool "b is frozen mid-handoff" true frozen_at_snapshot;
  let img =
    Checkpoint.save ~kind:"handoff" ~label:"mid-window"
      ~fingerprint:(System.fingerprint r.hr_sys) r
  in
  let copy = restore_root img in
  check Alcotest.bool "window still live after restore" true (window_live copy);
  check Alcotest.bool "b still frozen after restore" true copy.hr_b.Vpe.frozen;
  ignore (System.run copy.hr_sys);
  assert_settled "resumed copy" copy;
  (* the original is untouched by the restore and settles identically *)
  ignore (System.run r.hr_sys);
  assert_settled "original" r;
  check Alcotest.string "drained states are byte-identical"
    (System.fingerprint r.hr_sys) (System.fingerprint copy.hr_sys)

let test_midhandoff_parked_revoke_completes_after_resume () =
  let r = handoff_boot () in
  (* revoke a cap whose child lives in b's partition while b's records
     are in flight: the mark wave hits the handoff window and the
     child's sweep is parked by defer_revoke_child *)
  System.syscall r.hr_sys r.hr_a
    (Protocol.Sys_revoke { sel = r.hr_sel; own = true })
    (fun rep -> r.hr_reply <- Some rep);
  run_cycles r 1100;
  check Alcotest.bool "snapshot point is mid-window" true (window_live r);
  check Alcotest.bool "revoke still parked at snapshot" true (r.hr_reply = None);
  let img =
    Checkpoint.save ~kind:"handoff" ~label:"parked-revoke"
      ~fingerprint:(System.fingerprint r.hr_sys) r
  in
  let copy = restore_root img in
  check Alcotest.bool "revoke still parked after restore" true (copy.hr_reply = None);
  ignore (System.run copy.hr_sys);
  assert_settled "resumed copy" copy;
  (match copy.hr_reply with
  | Some Protocol.R_ok -> ()
  | Some rep -> Alcotest.failf "parked revoke failed after resume: %a" Protocol.pp_reply rep
  | None -> Alcotest.fail "parked revoke never completed after resume");
  ignore (System.run r.hr_sys);
  assert_settled "original" r;
  check Alcotest.bool "original revoke also completed" true
    (r.hr_reply = Some Protocol.R_ok);
  check Alcotest.string "drained states are byte-identical"
    (System.fingerprint r.hr_sys) (System.fingerprint copy.hr_sys)

(* ------------------------------------------------------------------ *)
(* Snapshots inside a fleet join                                       *)

(* Same shape as the migration-window tests, but the in-flight machine
   is a whole [Fleet.join]: lifecycle broadcast acked, home-partition
   reclaim waves mid-flight. The image must capture the join exactly
   where it stood and resume it to the same final state as the
   original. *)
type join_root = {
  jr_sys : System.t;
  jr_vpes : Vpe.t list;
  mutable jr_joined : bool;
}

let test_midjoin_snapshot_resumes_byte_identically () =
  let sys =
    System.create (System.config ~kernels:2 ~spare_kernels:1 ~user_pes_per_kernel:4 ())
  in
  let vpes = List.map (fun k -> System.spawn_vpe sys ~kernel:k) [ 0; 0; 0; 1; 1; 1 ] in
  List.iter
    (fun v ->
      match
        System.syscall_sync sys v (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
      with
      | Protocol.R_sel _ -> ()
      | rep -> Alcotest.failf "alloc: %a" Protocol.pp_reply rep)
    vpes;
  let r = { jr_sys = sys; jr_vpes = vpes; jr_joined = false } in
  Fleet.join sys ~kernel:2 (fun () -> r.jr_joined <- true);
  (* land inside a reclaim wave: some replica holds a mid-handoff mark
     while the join is still running *)
  let wave_live r =
    List.exists
      (fun k ->
        let m = Kernel.membership k in
        List.exists (Membership.in_handoff m)
          (List.init (System.pe_count r.jr_sys) Fun.id))
      (System.kernels r.jr_sys)
  in
  let steps = ref 0 in
  while not (wave_live r) && not r.jr_joined && !steps < 10_000 do
    incr steps;
    ignore
      (System.run ~until:(Int64.add (System.now r.jr_sys) 100L) r.jr_sys)
  done;
  check Alcotest.bool "snapshot point is mid-join" true (wave_live r && not r.jr_joined);
  check Alcotest.bool "joiner announced on some replica" true
    (List.exists
       (fun k -> Membership.kernel_state (Kernel.membership k) 2 = Membership.Joining)
       (System.kernels r.jr_sys));
  let img =
    Checkpoint.save ~kind:"fleet-join" ~label:"mid-join"
      ~fingerprint:(System.fingerprint r.jr_sys) r
  in
  let copy =
    match Checkpoint.load ~kind:"fleet-join" img with
    | Error e -> Alcotest.failf "restore: %s" e
    | Ok (h, (copy : join_root)) ->
        System.rebind copy.jr_sys;
        check Alcotest.string "restored fingerprint matches the header"
          h.Checkpoint.fingerprint (System.fingerprint copy.jr_sys);
        copy
  in
  check Alcotest.bool "join still in flight after restore" false copy.jr_joined;
  check Alcotest.bool "reclaim wave still live after restore" true (wave_live copy);
  let settle what r =
    ignore (System.run r.jr_sys);
    check Alcotest.bool (what ^ ": join finished") true r.jr_joined;
    check Alcotest.bool (what ^ ": active on every replica") true
      (List.for_all
         (fun k -> Membership.kernel_state (Kernel.membership k) 2 = Membership.Active)
         (System.kernels r.jr_sys));
    check Alcotest.bool (what ^ ": no mark survives") false (wave_live r);
    Audit.check r.jr_sys
  in
  settle "resumed copy" copy;
  settle "original" r;
  check Alcotest.string "joined states are byte-identical"
    (System.fingerprint r.jr_sys) (System.fingerprint copy.jr_sys)

let suite =
  [
    Alcotest.test_case "image round-trip preserves header and payload" `Quick
      test_image_roundtrip;
    Alcotest.test_case "version mismatch is rejected" `Quick test_version_mismatch_rejected;
    Alcotest.test_case "kind mismatch is rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "corrupt payload is rejected" `Quick test_corrupt_payload_rejected;
    Alcotest.test_case "garbage and truncated images are rejected" `Quick
      test_garbage_rejected;
    Alcotest.test_case "file write/read round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "rng snapshot resumes the stream" `Quick
      test_rng_snapshot_resumes_stream;
    Alcotest.test_case "membership snapshot keeps the handoff window" `Quick
      test_membership_midhandoff_snapshot;
    Alcotest.test_case "engine handles survive restore via rebind" `Quick
      test_engine_handle_rebind;
    Alcotest.test_case "fingerprints: equal histories alike, divergent apart" `Quick
      test_fingerprint_equal_then_divergent;
    Alcotest.test_case "system snapshot restores in place" `Quick
      test_system_snapshot_restore_in_place;
    Alcotest.test_case "fuzz case frozen mid-run resumes byte-identically" `Quick
      test_fuzz_midcase_roundtrip;
    Alcotest.test_case "fuzz checkpointing does not perturb the run" `Quick
      test_fuzz_checkpointing_is_transparent;
    Alcotest.test_case "fuzz rejects images of another kind" `Quick
      test_fuzz_rejects_foreign_image;
    Alcotest.test_case "mid-handoff snapshot restores the frozen VPE" `Quick
      test_midhandoff_snapshot_restores_frozen_vpe;
    Alcotest.test_case "parked revoke completes after resume" `Quick
      test_midhandoff_parked_revoke_completes_after_resume;
    Alcotest.test_case "mid-join snapshot resumes byte-identically" `Quick
      test_midjoin_snapshot_resumes_byte_identically;
  ]
