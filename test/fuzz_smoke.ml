(* Smoke gate for the schedule fuzzer, run from the [fuzz-smoke] dune
   alias (hooked into [dune runtest]). Three checks:

   1. 50 distinct seed pairs under the full chaos profile all pass the
      liveness / audit / teardown oracles;
   2. the fuzzer is deterministic — the same seed pair twice yields a
      byte-identical outcome line;
   3. the oracles have teeth — with retransmission disabled and drops
      enabled, at least one pair fails. *)

open Semperos

let failed = ref false

let check name ok = if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let () =
  let runs = 50 in
  let outcomes = Fuzz.run_many ~workload_seed:1 ~fault_seed:1_001 ~runs () in
  let bad = List.filter (fun o -> o.Fuzz.failures <> []) outcomes in
  List.iter (fun o -> Format.printf "%a@." Fuzz.pp_outcome o) bad;
  let calls = List.fold_left (fun a o -> a + o.Fuzz.syscalls) 0 outcomes in
  let inj =
    List.fold_left
      (fun a o ->
        a + o.Fuzz.injected_delays + o.Fuzz.injected_dups + o.Fuzz.injected_drops
        + o.Fuzz.injected_stalls)
      0 outcomes
  in
  let retries = List.fold_left (fun a o -> a + o.Fuzz.retries) 0 outcomes in
  Printf.printf "fuzz-smoke: %d/%d seed pairs clean (%d syscalls, %d faults injected, %d retries)\n"
    (runs - List.length bad) runs calls inj retries;
  check "all chaos-profile seed pairs pass the oracles" (bad = []);
  (* The smoke run must actually have exercised the machinery. *)
  check "fault plan injected faults" (inj > 0);
  check "kernels retransmitted at least once" (retries > 0);

  let a = Fuzz.run_one ~workload_seed:7 ~fault_seed:1_007 () in
  let b = Fuzz.run_one ~workload_seed:7 ~fault_seed:1_007 () in
  check "identical seeds give byte-identical reports"
    (String.equal (Fuzz.outcome_line a) (Fuzz.outcome_line b));

  (* Teeth: drop messages but never retransmit — the liveness or
     teardown oracle must catch at least one lost message across ten
     pairs. *)
  let spec = Fuzz.spec ~delay:false ~dup:false ~stall:false ~drop:true ~retry:false () in
  let broken = Fuzz.run_many ~spec ~workload_seed:1 ~fault_seed:1_001 ~runs:10 () in
  let caught = List.exists (fun o -> o.Fuzz.failures <> []) broken in
  check "oracles catch loss when retries are disabled" caught;

  if !failed then exit 1;
  print_endline "fuzz-smoke: OK"
