(* Tests for the multikernel: capability exchange, the delegate
   handshake, two-phase revocation, Table 2's interference cases,
   thread-pool accounting, credits, and a randomised soak test of the
   distributed protocols. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let reply_t = Alcotest.testable Protocol.pp_reply ( = )

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let make ?(kernels = 2) ?(pes = 6) ?(mode = Cost.Semperos) ?(batching = false) () =
  System.create (System.config ~kernels ~user_pes_per_kernel:pes ~mode ~batching ())

let alloc sys vpe =
  sel_of (System.syscall_sync sys vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))

let obtain sys ~donor ~donor_sel vpe =
  System.syscall_sync sys vpe
    (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel })

let revoke sys vpe sel ~own = System.syscall_sync sys vpe (Protocol.Sys_revoke { sel; own })

let assert_clean sys =
  match System.check_invariants sys with
  | [] -> ()
  | errs -> Alcotest.failf "invariants violated: %s" (String.concat "; " errs)

let total_caps sys =
  List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)

(* ------------------------------------------------------------------ *)
(* Exchange                                                            *)

let test_local_obtain () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v1 in
  let r = obtain sys ~donor:v1 ~donor_sel:sel v2 in
  check Alcotest.bool "got selector" true (match r with Protocol.R_sel _ -> true | _ -> false);
  (* The child is linked under the donor's capability. *)
  let k0 = System.kernel sys 0 in
  let donor_key = Option.get (Capspace.find v1.Vpe.capspace sel) in
  check Alcotest.int "one child" 1 (Mapdb.child_count (Kernel.mapdb k0) donor_key);
  check Alcotest.int "local exchange counted" 1 (Kernel.stats k0).Kernel.exchanges_local;
  assert_clean sys

let test_spanning_obtain () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v3 = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys v1 in
  let r = obtain sys ~donor:v1 ~donor_sel:sel v3 in
  let child_sel = sel_of r in
  (* The child record lives at kernel 1 (owner's kernel), the parent at
     kernel 0; the tree spans via DDL keys. *)
  let child_key = Option.get (Capspace.find v3.Vpe.capspace child_sel) in
  check Alcotest.bool "child hosted at kernel 1" true
    (Mapdb.mem (Kernel.mapdb (System.kernel sys 1)) child_key);
  let donor_key = Option.get (Capspace.find v1.Vpe.capspace sel) in
  check Alcotest.bool "cross-kernel child link" true
    (Mapdb.has_child (Kernel.mapdb (System.kernel sys 0)) ~parent:donor_key child_key);
  assert_clean sys

let test_spanning_delegate () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v3 = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys v1 in
  let r =
    System.syscall_sync sys v1 (Protocol.Sys_delegate_to { recv_vpe = v3.Vpe.id; sel })
  in
  check reply_t "delegate ok" Protocol.R_ok r;
  check Alcotest.int "receiver got the cap" 1 (Capspace.count v3.Vpe.capspace);
  assert_clean sys

let test_obtain_denied () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v3 = System.spawn_vpe sys ~kernel:1 in
  v1.Vpe.accept_exchange <- false;
  let sel = alloc sys v1 in
  check reply_t "denied locally" (Protocol.R_err Protocol.E_denied)
    (obtain sys ~donor:v1 ~donor_sel:sel (System.spawn_vpe sys ~kernel:0));
  check reply_t "denied across kernels" (Protocol.R_err Protocol.E_denied)
    (obtain sys ~donor:v1 ~donor_sel:sel v3);
  assert_clean sys

let test_obtain_missing_cap () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:0 in
  check reply_t "no such cap" (Protocol.R_err Protocol.E_no_such_cap)
    (obtain sys ~donor:v1 ~donor_sel:42 v2);
  check reply_t "no such vpe" (Protocol.R_err Protocol.E_no_such_vpe)
    (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = 999; donor_sel = 0 }))

let test_one_syscall_at_a_time () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let got = ref [] in
  System.syscall sys v1 (Protocol.Sys_alloc_mem { size = 16L; perms = Perms.r }) (fun r ->
      got := r :: !got);
  System.syscall sys v1 (Protocol.Sys_alloc_mem { size = 16L; perms = Perms.r }) (fun r ->
      got := r :: !got);
  ignore (System.run sys);
  check Alcotest.bool "second call rejected busy" true
    (List.exists (fun r -> r = Protocol.R_err Protocol.E_busy) !got);
  check Alcotest.bool "first call succeeded" true
    (List.exists (function Protocol.R_sel _ -> true | _ -> false) !got)

(* ------------------------------------------------------------------ *)
(* Revocation                                                          *)

let test_revoke_local_tree () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v1 in
  ignore (sel_of (obtain sys ~donor:v1 ~donor_sel:sel v2));
  let before = total_caps sys in
  check Alcotest.int "two caps before" 2 before;
  check reply_t "revoke ok" Protocol.R_ok (revoke sys v1 sel ~own:true);
  check Alcotest.int "all gone" 0 (total_caps sys);
  check Alcotest.int "receiver space empty" 0 (Capspace.count v2.Vpe.capspace);
  assert_clean sys

let test_revoke_children_only () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v1 in
  ignore (sel_of (obtain sys ~donor:v1 ~donor_sel:sel v2));
  check reply_t "revoke children" Protocol.R_ok (revoke sys v1 sel ~own:false);
  check Alcotest.int "root survives" 1 (total_caps sys);
  check Alcotest.int "root still held" 1 (Capspace.count v1.Vpe.capspace);
  (* The root's child list was pruned. *)
  let key = Option.get (Capspace.find v1.Vpe.capspace sel) in
  check Alcotest.int "no children left" 0 (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) key);
  assert_clean sys

let test_revoke_children_only_remote () =
  (* Regression: a children-only revoke whose children live at another
     kernel must unlink them from the surviving root — the global audit
     catches the dangling link otherwise. *)
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys v1 in
  ignore (sel_of (obtain sys ~donor:v1 ~donor_sel:sel v2));
  check reply_t "revoke children" Protocol.R_ok (revoke sys v1 sel ~own:false);
  check Alcotest.int "root survives" 1 (total_caps sys);
  let key = Option.get (Capspace.find v1.Vpe.capspace sel) in
  check Alcotest.int "remote child unlinked" 0
    (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) key);
  Audit.check sys

let test_revoke_spanning_recursive () =
  let sys = make ~kernels:3 () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v3 = System.spawn_vpe sys ~kernel:2 in
  let s1 = alloc sys v1 in
  let s2 = sel_of (obtain sys ~donor:v1 ~donor_sel:s1 v2) in
  let _s3 = sel_of (obtain sys ~donor:v2 ~donor_sel:s2 v3) in
  check Alcotest.int "three caps across three kernels" 3 (total_caps sys);
  check reply_t "recursive spanning revoke" Protocol.R_ok (revoke sys v1 s1 ~own:true);
  check Alcotest.int "all gone everywhere" 0 (total_caps sys);
  assert_clean sys

let test_revoke_circular_chain () =
  (* The paper's deadlock scenario (§4.2): A1 -> B2 -> C1; revoking A1
     makes kernel 1 call kernel 2 which calls kernel 1 back. *)
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let a1 = alloc sys v1 in
  let b2 = sel_of (obtain sys ~donor:v1 ~donor_sel:a1 v2) in
  let _c1 = sel_of (obtain sys ~donor:v2 ~donor_sel:b2 v1) in
  check reply_t "no deadlock" Protocol.R_ok (revoke sys v1 a1 ~own:true);
  check Alcotest.int "chain fully revoked" 0 (total_caps sys);
  assert_clean sys

let test_revoke_twice () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v1 in
  check reply_t "first" Protocol.R_ok (revoke sys v1 sel ~own:true);
  check reply_t "second: gone" (Protocol.R_err Protocol.E_no_such_cap) (revoke sys v1 sel ~own:true)

(* Table 2 "Pointless"/"Invalid" prevention: exchanges touching a
   capability in revocation are denied. *)
let test_exchange_during_revoke_denied () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v4 = System.spawn_vpe sys ~kernel:1 in
  let s1 = alloc sys v1 in
  let s2 = sel_of (obtain sys ~donor:v1 ~donor_sel:s1 v2) in
  (* Start the revoke but do not drain the engine: the subtree is
     marked while the inter-kernel call is in flight. *)
  let revoke_done = ref None in
  System.syscall sys v1 (Protocol.Sys_revoke { sel = s1; own = true }) (fun r ->
      revoke_done := Some r);
  (* Let the revoke reach kernel 1 and mark s2 there, then race an
     obtain of the marked capability. *)
  ignore (System.run ~until:(Int64.add (System.now sys) 1_700L) sys);
  let obtain_result = ref None in
  System.syscall sys v4 (Protocol.Sys_obtain_from { donor_vpe = v2.Vpe.id; donor_sel = s2 })
    (fun r -> obtain_result := Some r);
  ignore (System.run sys);
  check (Alcotest.option reply_t) "revoke completed" (Some Protocol.R_ok) !revoke_done;
  (match !obtain_result with
  | Some (Protocol.R_err (Protocol.E_in_revocation | Protocol.E_no_such_cap)) -> ()
  | Some r -> Alcotest.failf "exchange of marked capability not denied: %a" Protocol.pp_reply r
  | None -> Alcotest.fail "obtain never completed");
  check Alcotest.int "nothing leaked" 0 (total_caps sys);
  assert_clean sys

(* Table 2 "Incomplete" prevention: overlapping revokes on nested
   subtrees must both complete, with no early acknowledgement. *)
let test_overlapping_revokes () =
  let sys = make ~kernels:3 () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v3 = System.spawn_vpe sys ~kernel:2 in
  let a = alloc sys v1 in
  let b = sel_of (obtain sys ~donor:v1 ~donor_sel:a v2) in
  let _c = sel_of (obtain sys ~donor:v2 ~donor_sel:b v3) in
  let r1 = ref None and r2 = ref None in
  System.syscall sys v1 (Protocol.Sys_revoke { sel = a; own = true }) (fun r -> r1 := Some r);
  System.syscall sys v2 (Protocol.Sys_revoke { sel = b; own = true }) (fun r -> r2 := Some r);
  ignore (System.run sys);
  check (Alcotest.option reply_t) "outer revoke acknowledged" (Some Protocol.R_ok) !r1;
  (match !r2 with
  | Some (Protocol.R_ok | Protocol.R_err Protocol.E_no_such_cap) -> ()
  | Some r -> Alcotest.failf "inner revoke: %a" Protocol.pp_reply r
  | None -> Alcotest.fail "inner revoke never acknowledged");
  check Alcotest.int "everything revoked exactly once" 0 (total_caps sys);
  assert_clean sys

(* Table 2 "Orphaned": the obtainer dies while the exchange is in
   flight; the orphan must be cleaned up at the donor. *)
let test_orphaned_obtain () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v3 = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys v1 in
  let obtain_result = ref None in
  System.syscall sys v3 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = sel })
    (fun r -> obtain_result := Some r);
  (* Kill the obtainer while the inter-kernel call is in flight. *)
  ignore (System.run ~until:(Int64.add (System.now sys) 2_000L) sys);
  v3.Vpe.state <- Vpe.Exited;
  ignore (System.run sys);
  (* The donor's child list must not keep an orphan. *)
  let donor_key = Option.get (Capspace.find v1.Vpe.capspace sel) in
  check Alcotest.int "orphan unlinked at donor" 0
    (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) donor_key);
  check Alcotest.int "only the donor cap remains" 1 (total_caps sys)

let test_exit_revokes_everything () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let s1 = alloc sys v1 in
  let _s2 = alloc sys v1 in
  let _c = sel_of (obtain sys ~donor:v1 ~donor_sel:s1 v2) in
  check reply_t "exit" Protocol.R_ok (System.syscall_sync sys v1 Protocol.Sys_exit);
  check Alcotest.bool "vpe dead" false (Vpe.is_alive v1);
  check Alcotest.int "all caps of the VPE and their children gone" 0 (total_caps sys);
  (* Its PE is recycled. *)
  let before = System.free_pes sys ~kernel:0 in
  check Alcotest.bool "pe freed" true (before >= 1);
  check reply_t "dead vpe syscalls fail" (Protocol.R_err Protocol.E_vpe_dead)
    (System.syscall_sync sys v1 (Protocol.Sys_alloc_mem { size = 1L; perms = Perms.r }))

(* ------------------------------------------------------------------ *)
(* Derivation and gates                                                *)

let test_derive_mem () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v1 in
  let narrowed =
    System.syscall_sync sys v1
      (Protocol.Sys_derive_mem { sel; offset = 1024L; size = 1024L; perms = Perms.r })
  in
  ignore (sel_of narrowed);
  check reply_t "widening refused" (Protocol.R_err Protocol.E_invalid)
    (System.syscall_sync sys v1
       (Protocol.Sys_derive_mem { sel; offset = 0L; size = 8192L; perms = Perms.rw }));
  (* Revoking the parent sweeps the derived child. *)
  check reply_t "revoke" Protocol.R_ok (revoke sys v1 sel ~own:true);
  check Alcotest.int "derived child swept" 0 (total_caps sys);
  assert_clean sys

let test_gates_and_activate () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let rgate =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_create_rgate { ep = 2; slots = 8 }))
  in
  let sgate =
    sel_of (System.syscall_sync sys v1 (Protocol.Sys_create_sgate { rgate; label = 7 }))
  in
  (* Hand the send gate to v2 and let it activate an endpoint: the
     kernel configures v2's DTU (Figure 3's channel establishment). *)
  check reply_t "delegate sgate" Protocol.R_ok
    (System.syscall_sync sys v1 (Protocol.Sys_delegate_to { recv_vpe = v2.Vpe.id; sel = sgate }));
  let v2_sgate = 0 in
  check reply_t "activate" Protocol.R_ok
    (System.syscall_sync sys v2 (Protocol.Sys_activate { sel = v2_sgate; ep = 3 }));
  (* The endpoint is now configured in hardware. *)
  let dtu = Dtu.find (System.grid sys) ~pe:v2.Vpe.pe in
  check Alcotest.bool "endpoint configured" true
    (match Dtu.credits dtu ~ep:3 with Ok _ -> true | Error _ -> false);
  assert_clean sys

(* ------------------------------------------------------------------ *)
(* Thread pool and credits                                             *)

let test_thread_pool_sizing () =
  let tp = Thread_pool.create ~vpes:3 ~kernels:2 in
  check Alcotest.int "equation 1" (3 + (2 * Cost.max_inflight)) (Thread_pool.size tp);
  let ran = ref 0 in
  for _ = 1 to Thread_pool.size tp + 2 do
    Thread_pool.acquire tp (fun () -> incr ran)
  done;
  check Alcotest.int "pool exhausted" (Thread_pool.size tp) !ran;
  check Alcotest.int "two queued" 2 (Thread_pool.waiting tp);
  Thread_pool.release tp;
  Thread_pool.release tp;
  check Alcotest.int "queued ran on release" (Thread_pool.size tp + 2) !ran;
  check Alcotest.int "max in use tracked" (Thread_pool.size tp) (Thread_pool.max_in_use tp)

let test_kernel_thread_growth () =
  let sys = make () in
  let k0 = System.kernel sys 0 in
  let before = Thread_pool.size (Kernel.threads k0) in
  ignore (System.spawn_vpe sys ~kernel:0);
  check Alcotest.int "one thread per VPE" (before + 1) (Thread_pool.size (Kernel.threads k0))

let test_credit_stalls_resolve () =
  (* Revoking a tree with 16 remote children emits 16 revoke requests
     at once — far beyond the 4-message in-flight window. The sends
     must stall on credits yet everything completes. *)
  let sys = make ~pes:20 () in
  let donor = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys donor in
  let vpes = List.init 16 (fun _ -> System.spawn_vpe sys ~kernel:1) in
  List.iter (fun v -> ignore (sel_of (obtain sys ~donor ~donor_sel:sel v))) vpes;
  check reply_t "revoke" Protocol.R_ok (revoke sys donor sel ~own:true);
  check Alcotest.int "everything revoked" 0 (total_caps sys);
  let stalls = (Kernel.stats (System.kernel sys 0)).Kernel.credit_stalls in
  check Alcotest.bool "credit limiting engaged" true (stalls > 0);
  assert_clean sys

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)

let timed_revoke sys v sel =
  let t = ref None in
  let t0 = System.now sys in
  System.syscall sys v (Protocol.Sys_revoke { sel; own = true }) (fun _ ->
      t := Some (Int64.sub (System.now sys) t0));
  ignore (System.run sys);
  Option.get !t

let test_m3_mode_cheaper () =
  let run mode =
    let sys = make ~mode () in
    let v1 = System.spawn_vpe sys ~kernel:0 in
    let v2 = System.spawn_vpe sys ~kernel:0 in
    let sel = alloc sys v1 in
    ignore (sel_of (obtain sys ~donor:v1 ~donor_sel:sel v2));
    timed_revoke sys v1 sel
  in
  check Alcotest.bool "M3 revoke cheaper than SemperOS (no DDL decode)" true
    (run Cost.M3 < run Cost.Semperos)

let test_batching_equivalent_result () =
  let run batching =
    let sys = make ~kernels:4 ~pes:12 ~batching () in
    let root = System.spawn_vpe sys ~kernel:0 in
    let sel = alloc sys root in
    for i = 0 to 8 do
      let v = System.spawn_vpe sys ~kernel:(1 + (i mod 3)) in
      ignore (sel_of (obtain sys ~donor:root ~donor_sel:sel v))
    done;
    let cycles = timed_revoke sys root sel in
    assert_clean sys;
    (total_caps sys, cycles)
  in
  let caps_plain, t_plain = run false in
  let caps_batched, t_batched = run true in
  check Alcotest.int "plain revokes everything" 0 caps_plain;
  check Alcotest.int "batched revokes everything" 0 caps_batched;
  check Alcotest.bool "batching is faster" true (t_batched < t_plain)

(* ------------------------------------------------------------------ *)
(* Randomised soak: arbitrary interleavings of exchange and revoke
   must never violate the kernel invariants or leak capabilities.      *)

let prop_protocol_soak =
  QCheck.Test.make ~name:"random exchange/revoke interleavings keep invariants" ~count:30
    QCheck.(pair (int_bound 1000000) (list_of_size Gen.(5 -- 40) (int_bound 1000)))
    (fun (seed, script) ->
      let rng = Rng.create (Int64.of_int seed) in
      let sys = make ~kernels:3 ~pes:8 () in
      let vpes = Array.init 9 (fun i -> System.spawn_vpe sys ~kernel:(i mod 3)) in
      (* Seed some capabilities. *)
      let roots = Array.map (fun v -> alloc sys v) vpes in
      List.iter
        (fun cmd ->
          let a = vpes.(cmd mod 9) in
          let b = vpes.((cmd / 9) mod 9) in
          match cmd mod 3 with
          | 0 ->
            (* obtain a cap from a random VPE's space *)
            let donor_sel = Rng.int rng 4 in
            System.syscall sys b
              (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel })
              (fun _ -> ())
          | 1 ->
            System.syscall sys a
              (Protocol.Sys_revoke { sel = roots.(cmd mod 9); own = Rng.bool rng })
              (fun _ -> ())
          | _ ->
            System.syscall sys a
              (Protocol.Sys_delegate_to { recv_vpe = b.Vpe.id; sel = Rng.int rng 4 })
              (fun _ -> ()))
        script;
      ignore (System.run sys);
      (Audit.run sys).Audit.errors = [])

(* ------------------------------------------------------------------ *)
(* Membership handoff: while a PE's records are in flight between two
   kernels, lookups must fail loudly instead of silently misrouting.   *)

let test_membership_handoff_states () =
  let m = Membership.create () in
  Membership.assign m ~pe:3 ~kernel:0;
  Membership.assign m ~pe:4 ~kernel:1;
  Membership.begin_handoff m ~pe:3;
  check Alcotest.bool "marked" true (Membership.in_handoff m 3);
  (match Membership.kernel_of_pe m 3 with
  | _ -> Alcotest.fail "kernel_of_pe answered for a mid-handoff PE"
  | exception Membership.Mid_handoff pe -> check Alcotest.int "raises with the PE" 3 pe);
  (* kernel_of_key goes through the same guard. *)
  let key = Key.make ~pe:3 ~vpe:0 ~kind:Key.Mem_obj ~obj:7 in
  (match Membership.kernel_of_key m key with
  | _ -> Alcotest.fail "kernel_of_key answered for a mid-handoff PE"
  | exception Membership.Mid_handoff _ -> ());
  (* Unmarked PEs are unaffected. *)
  check Alcotest.int "other PE still routes" 1 (Membership.kernel_of_pe m 4);
  (* Plain reassign must refuse: it would erase the in-flight state. *)
  (match Membership.reassign m ~pe:3 ~kernel:1 with
  | () -> Alcotest.fail "reassign succeeded on a mid-handoff PE"
  | exception Invalid_argument _ -> ());
  (match Membership.begin_handoff m ~pe:3 with
  | () -> Alcotest.fail "double begin_handoff succeeded"
  | exception Invalid_argument _ -> ());
  Membership.complete_handoff m ~pe:3 ~kernel:1;
  check Alcotest.bool "mark cleared" false (Membership.in_handoff m 3);
  check Alcotest.int "routes to new kernel" 1 (Membership.kernel_of_pe m 3);
  (match Membership.complete_handoff m ~pe:3 ~kernel:0 with
  | () -> Alcotest.fail "complete_handoff succeeded without a mark"
  | exception Invalid_argument _ -> ())

let test_migration_midhandoff_window () =
  let sys = make ~kernels:3 ~pes:4 () in
  let v = System.spawn_vpe sys ~kernel:0 in
  let sel = alloc sys v in
  let k0 = System.kernel sys 0 in
  (* Start the migration by hand, without draining the engine: the
     source replica must mark the PE the moment the handoff begins. *)
  let finished = ref false in
  Membership.reassign (System.membership sys) ~pe:v.Vpe.pe ~kernel:1;
  Kernel.migrate_vpe k0 ~vpe:v ~dst:1 (fun () -> finished := true);
  check Alcotest.bool "source marks mid-handoff" true
    (Membership.in_handoff (Kernel.membership k0) v.Vpe.pe);
  check Alcotest.bool "VPE frozen" true v.Vpe.frozen;
  (match Membership.kernel_of_pe (Kernel.membership k0) v.Vpe.pe with
  | k -> Alcotest.failf "mid-handoff lookup answered %d instead of raising" k
  | exception Membership.Mid_handoff _ -> ());
  (* A syscall issued during the window is held and re-dispatched, not
     failed: it must complete once the migration drains. *)
  let reply = ref None in
  System.syscall sys v (Protocol.Sys_revoke { sel; own = true }) (fun r -> reply := Some r);
  ignore (System.run sys);
  check Alcotest.bool "migration completed" true !finished;
  check Alcotest.bool "VPE unfrozen" false v.Vpe.frozen;
  check (Alcotest.option reply_t) "held syscall completed" (Some Protocol.R_ok) !reply;
  check Alcotest.bool "destination manages the VPE" true
    (Kernel.find_vpe (System.kernel sys 1) v.Vpe.id <> None);
  List.iter
    (fun k ->
      check Alcotest.bool
        (Printf.sprintf "kernel %d mark cleared" (Kernel.id k))
        false
        (Membership.in_handoff (Kernel.membership k) v.Vpe.pe);
      check Alcotest.int
        (Printf.sprintf "kernel %d routes to destination" (Kernel.id k))
        1
        (Membership.kernel_of_pe (Kernel.membership k) v.Vpe.pe))
    (System.kernels sys);
  assert_clean sys;
  check Alcotest.(list string) "audit clean" [] (Audit.run sys).Audit.errors

let suite =
  [
    Alcotest.test_case "local obtain" `Quick test_local_obtain;
    Alcotest.test_case "spanning obtain" `Quick test_spanning_obtain;
    Alcotest.test_case "spanning delegate handshake" `Quick test_spanning_delegate;
    Alcotest.test_case "obtain denied" `Quick test_obtain_denied;
    Alcotest.test_case "obtain missing cap / vpe" `Quick test_obtain_missing_cap;
    Alcotest.test_case "one syscall per VPE" `Quick test_one_syscall_at_a_time;
    Alcotest.test_case "revoke local tree" `Quick test_revoke_local_tree;
    Alcotest.test_case "revoke children only" `Quick test_revoke_children_only;
    Alcotest.test_case "revoke children-only with remote child" `Quick
      test_revoke_children_only_remote;
    Alcotest.test_case "revoke spanning recursive" `Quick test_revoke_spanning_recursive;
    Alcotest.test_case "revoke circular chain (no deadlock)" `Quick test_revoke_circular_chain;
    Alcotest.test_case "revoke twice" `Quick test_revoke_twice;
    Alcotest.test_case "exchange during revoke denied" `Quick test_exchange_during_revoke_denied;
    Alcotest.test_case "overlapping revokes complete" `Quick test_overlapping_revokes;
    Alcotest.test_case "orphaned obtain cleaned up" `Quick test_orphaned_obtain;
    Alcotest.test_case "exit revokes everything" `Quick test_exit_revokes_everything;
    Alcotest.test_case "derive mem narrows" `Quick test_derive_mem;
    Alcotest.test_case "gates and activate" `Quick test_gates_and_activate;
    Alcotest.test_case "thread pool equation 1" `Quick test_thread_pool_sizing;
    Alcotest.test_case "thread pool grows with VPEs" `Quick test_kernel_thread_growth;
    Alcotest.test_case "credit stalls resolve" `Quick test_credit_stalls_resolve;
    Alcotest.test_case "M3 mode cheaper" `Quick test_m3_mode_cheaper;
    Alcotest.test_case "batching ablation equivalent" `Quick test_batching_equivalent_result;
    Alcotest.test_case "membership handoff states" `Quick test_membership_handoff_states;
    Alcotest.test_case "migration mid-handoff window" `Quick test_migration_midhandoff_window;
    qcheck prop_protocol_soak;
  ]
