(* Unit and property tests for the utility substrate: heap, RNG,
   statistics, table rendering. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let int_heap () = Heap.create ~dummy:0 ~compare:Int.compare

let test_heap_basic () =
  let h = int_heap () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  check Alcotest.int "length" 3 (Heap.length h);
  check Alcotest.(option int) "peek" (Some 1) (Heap.peek h);
  check Alcotest.int "pop 1" 1 (Heap.pop h);
  check Alcotest.int "pop 3" 3 (Heap.pop h);
  check Alcotest.int "pop 5" 5 (Heap.pop h);
  check Alcotest.bool "empty again" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h = int_heap () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap") (fun () ->
      ignore (Heap.pop h))

let test_heap_clear_and_fold () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 9 ];
  check Alcotest.int "fold sum" 15 (Heap.fold ( + ) 0 h);
  Heap.clear h;
  check Alcotest.int "cleared" 0 (Heap.length h)

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 2; 2; 1; 2 ];
  check Alcotest.(list int) "pops sorted with dups" [ 1; 2; 2; 2 ]
    (List.init 4 (fun _ -> Heap.pop h))

let test_heap_shrink () =
  let h = int_heap () in
  check Alcotest.int "initial capacity" 16 (Heap.capacity h);
  for i = 1 to 1000 do
    Heap.push h i
  done;
  let grown = Heap.capacity h in
  check Alcotest.bool "capacity grew" true (grown >= 1000);
  (* Draining must hand storage back: once the population falls below a
     quarter of capacity, pop halves the array. *)
  for _ = 1 to 900 do
    ignore (Heap.pop h)
  done;
  check Alcotest.bool "capacity released" true (Heap.capacity h < grown);
  check Alcotest.bool "capacity still fits contents" true (Heap.capacity h >= Heap.length h);
  for _ = 1 to 100 do
    ignore (Heap.pop h)
  done;
  check Alcotest.bool "empty heap back at the floor" true (Heap.capacity h <= 16);
  (* Shrinking must never lose or reorder elements. *)
  let h2 = int_heap () in
  for i = 500 downto 1 do
    Heap.push h2 i
  done;
  let out = List.init 500 (fun _ -> Heap.pop h2) in
  check Alcotest.(list int) "drain still sorted across shrinks" (List.init 500 (fun i -> i + 1))
    out

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop h) in
      out = List.sort Int.compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap interleaved push/pop keeps min" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = int_heap () in
      (* Model: sorted list of live elements. *)
      let model = ref [] in
      List.for_all
        (fun (is_pop, x) ->
          if is_pop then
            match !model with
            | [] -> true
            | m :: rest ->
              let got = Heap.pop h in
              model := rest;
              got = m
          else begin
            Heap.push h x;
            model := List.sort Int.compare (x :: !model);
            true
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let v = Rng.int_in r 5 9 in
    if v < 5 || v > 9 then Alcotest.fail "int_in out of bounds";
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done

let test_rng_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let a = Rng.create 5L in
  let b = Rng.split a in
  check Alcotest.bool "split differs from parent" true (Rng.next a <> Rng.next b)

let test_rng_exponential_positive () =
  let r = Rng.create 11L in
  for _ = 1 to 100 do
    if Rng.exponential r ~mean:10.0 < 0.0 then Alcotest.fail "negative exponential"
  done

let prop_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair int64 (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_acc () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.Acc.count a);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.Acc.mean a);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.Acc.min a);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.Acc.max a);
  check (Alcotest.float 1e-9) "sum" 10.0 (Stats.Acc.sum a);
  check (Alcotest.float 1e-6) "stddev" 1.2909944487 (Stats.Acc.stddev a)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile 0.0 xs);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile 100.0 xs);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile 25.0 xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile 50.0 []))

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 10.0; 20.0 |] in
  List.iter (Stats.Histogram.add h) [ 5.0; 10.0; 15.0; 25.0; 100.0 ];
  check Alcotest.(array int) "counts" [| 2; 1; 2 |] (Stats.Histogram.counts h);
  check Alcotest.int "total" 5 (Stats.Histogram.total h)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let m = Stats.mean xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 4 (List.length lines);
  (* Aligned: every line has the same width. *)
  match lines with
  | first :: rest ->
    List.iter
      (fun l -> check Alcotest.int "width" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no lines"

let test_table_arity () =
  Alcotest.check_raises "bad arity" (Invalid_argument "Table.render: row arity differs from header")
    (fun () -> ignore (Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_series () =
  let s = Table.Series.create ~x_label:"x" ~labels:[ "y1"; "y2" ] in
  Table.Series.add_row s ~x:1.0 [ Some 2.0; None ];
  Table.Series.add_row s ~x:2.0 [ Some 4.5; Some 1.0 ];
  let out = Table.Series.render s in
  check Alcotest.bool "contains dash for missing" true (String.contains out '-');
  check Alcotest.bool "contains 4.50" true
    (String.length out > 0
    && Str_contains.contains out "4.50")

let suite =
  [
    Alcotest.test_case "heap basic" `Quick test_heap_basic;
    Alcotest.test_case "heap pop empty" `Quick test_heap_pop_empty;
    Alcotest.test_case "heap clear/fold" `Quick test_heap_clear_and_fold;
    Alcotest.test_case "heap duplicates" `Quick test_heap_duplicates;
    Alcotest.test_case "heap shrinks when drained" `Quick test_heap_shrink;
    qcheck prop_heap_sorted;
    qcheck prop_heap_interleaved;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng invalid" `Quick test_rng_invalid;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential_positive;
    qcheck prop_rng_shuffle_permutation;
    Alcotest.test_case "stats acc" `Quick test_acc;
    Alcotest.test_case "stats percentile" `Quick test_percentile;
    Alcotest.test_case "stats histogram" `Quick test_histogram;
    qcheck prop_mean_bounded;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "series render" `Quick test_series;
  ]
