(* Smoke gate for IKC batching, run from the [batch-smoke] dune alias
   (hooked into [dune runtest]). Runs the smoke preset of the batching
   benchmark end to end and asserts the contract batching must keep —
   strictly fewer inter-kernel messages and no-slower revocation on the
   spanning chain, frames actually coalescing on the burst workload,
   and a well-shaped JSON report — without pinning host-dependent
   numbers. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let samples = Batchbench.samples ~preset:Batchbench.Smoke () in
  check "three workloads measured" (List.length samples = 3);
  List.iter
    (fun s ->
      let open Batchbench in
      check (s.b_name ^ ": both modes ran") (s.b_off_cycles > 0L && s.b_on_cycles > 0L);
      check (s.b_name ^ ": messages counted") (s.b_off_ikc > 0 && s.b_on_ikc > 0);
      check (s.b_name ^ ": batching never adds messages") (s.b_on_ikc <= s.b_off_ikc))
    samples;
  (* The spanning chain is the Fig-4 worst case the batching exists
     for: the requester-handoff continuation must cut both the message
     count and the simulated cycles. *)
  (match
     List.find_opt
       (fun s -> contains s.Batchbench.b_name "chain_spanning")
       samples
   with
  | Some s ->
    check "chain: fewer inter-kernel messages" (s.Batchbench.b_on_ikc < s.Batchbench.b_off_ikc);
    check "chain: fewer simulated cycles"
      (Int64.compare s.Batchbench.b_on_cycles s.Batchbench.b_off_cycles < 0)
  | None -> check "chain sample present" false);
  (* The obtain burst is the workload dense enough for the DTU slot
     window to coalesce unrelated messages into frames. *)
  (match
     List.find_opt (fun s -> contains s.Batchbench.b_name "obtain_burst") samples
   with
  | Some s ->
    check "burst: frames were shipped" (s.Batchbench.b_batches > 0);
    check "burst: frames carried multiple messages"
      (s.Batchbench.b_batched_msgs > s.Batchbench.b_batches)
  | None -> check "burst sample present" false);
  (* The written report must be valid JSON naming its schema. *)
  let path = Filename.temp_file "batch_smoke" ".json" in
  Batchbench.run ~preset:Batchbench.Smoke ~path ();
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-batch-1\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [
      "\"cycles_off\""; "\"cycles_on\""; "\"ikc_off\""; "\"ikc_on\""; "\"batches_sent\"";
      "\"batched_msgs\""; "\"speedup\"";
    ];
  if !failed then exit 1;
  print_endline "batch-smoke: OK"
