(* Elastic-fleet tests: Fleet_policy unit behaviour (water marks,
   min_active floor, drainable gate, hysteresis band), the Spare
   lifecycle contract, join/drain/rejoin end to end, the drain safety
   gates, the migrate-to-non-Active refusal, the bulk
   reassign_partition atomicity contract, and revoke waves racing a
   drain in both orders. *)

open Semperos

let check = Alcotest.check

let decision_t =
  Alcotest.testable
    (fun ppf (d : Balance.Fleet_policy.decision) ->
      match d with
      | Balance.Fleet_policy.Scale_out -> Format.fprintf ppf "scale-out"
      | Balance.Fleet_policy.Scale_in k -> Format.fprintf ppf "scale-in %d" k
      | Balance.Fleet_policy.Hold -> Format.fprintf ppf "hold")
    ( = )

let pol = Balance.Fleet_policy.default

let decide ?(joinable = []) ?(drainable = fun _ -> true) ~active occupancy =
  Balance.Fleet_policy.decide pol ~occupancy ~active ~joinable ~drainable

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let alloc sys vpe =
  sel_of (System.syscall_sync sys vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy_scale_out () =
  (* Mean Active occupancy at/above [high] scales out — but only when a
     Spare or Retired kernel exists to join. *)
  check decision_t "above high water" Balance.Fleet_policy.Scale_out
    (decide ~joinable:[ 2 ] ~active:[ 0; 1 ] [| 0.8; 0.6; 0.0 |]);
  check decision_t "no spare: hold" Balance.Fleet_policy.Hold
    (decide ~joinable:[] ~active:[ 0; 1 ] [| 0.8; 0.6; 0.0 |]);
  (* Spare occupancy (index 2) must not dilute the Active mean. *)
  check decision_t "mean over Active only" Balance.Fleet_policy.Scale_out
    (decide ~joinable:[ 2 ] ~active:[ 0; 1 ] [| 0.9; 0.5; 0.0 |])

let test_policy_scale_in () =
  (* Mean below the low water mark drains the emptiest drainable
     kernel; ties break to the lowest id. *)
  check decision_t "below low water drains emptiest"
    (Balance.Fleet_policy.Scale_in 2)
    (decide ~active:[ 0; 1; 2 ] [| 0.2; 0.15; 0.05 |]);
  check decision_t "tie to lowest id"
    (Balance.Fleet_policy.Scale_in 1)
    (decide ~active:[ 0; 1; 2 ] [| 0.2; 0.05; 0.05 |]);
  (* The drainable safety gate skips pinned kernels. *)
  check decision_t "gate skips the emptiest"
    (Balance.Fleet_policy.Scale_in 1)
    (decide ~drainable:(fun k -> k <> 2) ~active:[ 0; 1; 2 ] [| 0.2; 0.15; 0.05 |]);
  check decision_t "all pinned: hold" Balance.Fleet_policy.Hold
    (decide ~drainable:(fun _ -> false) ~active:[ 0; 1; 2 ] [| 0.1; 0.1; 0.1 |])

let test_policy_floor_and_band () =
  (* Never drain below [min_active] (default 2). *)
  check decision_t "min_active floor" Balance.Fleet_policy.Hold
    (decide ~active:[ 0; 1 ] [| 0.01; 0.01 |]);
  (* Inside the hysteresis band nothing happens. *)
  check decision_t "in-band hold" Balance.Fleet_policy.Hold
    (decide ~joinable:[ 3 ] ~active:[ 0; 1; 2 ] [| 0.4; 0.4; 0.4 |])

(* ------------------------------------------------------------------ *)
(* Lifecycle end to end                                                *)

let test_spare_boots_out_of_service () =
  let sys = System.create (System.config ~kernels:2 ~spare_kernels:1 ~user_pes_per_kernel:4 ()) in
  check Alcotest.int "three kernels booted" 3 (System.kernel_count sys);
  check Alcotest.int "two in the boot fleet" 2 (System.boot_kernels sys);
  check Alcotest.bool "spare state replicated" true
    (List.for_all
       (fun k -> Membership.kernel_state (Kernel.membership k) 2 = Membership.Spare)
       (System.kernels sys));
  (* A spare owns its empty home partitions but refuses work. *)
  check Alcotest.bool "spare owns home PEs" true
    (Membership.pes_of_kernel (System.membership sys) 2 <> []);
  Alcotest.check_raises "spawn on a spare refused"
    (Invalid_argument "System.spawn_vpe: kernel is not active") (fun () ->
      ignore (System.spawn_vpe sys ~kernel:2))

let test_join_brings_spare_into_service () =
  let sys = System.create (System.config ~kernels:2 ~spare_kernels:1 ~user_pes_per_kernel:4 ()) in
  let vpes =
    List.map (fun k -> System.spawn_vpe sys ~kernel:k) [ 0; 0; 0; 1; 1; 1 ]
  in
  List.iter (fun v -> ignore (alloc sys v)) vpes;
  let joined = ref false in
  Fleet.join sys ~kernel:2 (fun () -> joined := true);
  ignore (System.run sys);
  check Alcotest.bool "join completed" true !joined;
  check Alcotest.bool "active on every replica" true
    (List.for_all
       (fun k -> Membership.kernel_state (Kernel.membership k) 2 = Membership.Active)
       (System.kernels sys));
  (* The joined kernel owns its home partitions again and absorbed a
     fair share of the load (6 VPEs over 3 kernels → at least one). *)
  let home = System.home_pes sys ~kernel:2 in
  check Alcotest.bool "home PEs routed here" true
    (List.for_all (fun pe -> Membership.kernel_of_pe (System.membership sys) pe = 2) home);
  check Alcotest.bool "absorbed load" true (Kernel.vpe_count (System.kernel sys 2) > 0);
  (* New work lands on it, and moved VPEs keep working. *)
  let v = System.spawn_vpe sys ~kernel:2 in
  ignore (alloc sys v);
  List.iter (fun w -> ignore (alloc sys w)) vpes;
  Audit.check sys

let test_drain_evacuates_and_retires () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let c = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys a in
  (* b holds a cross-kernel child whose parent stays on kernel 0. *)
  ignore
    (System.syscall_sync sys b (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel = sel }));
  ignore (alloc sys c);
  let retired = ref false in
  Fleet.drain sys ~kernel:1 (fun () -> retired := true);
  ignore (System.run sys);
  check Alcotest.bool "drain completed" true !retired;
  check Alcotest.bool "retired on every replica" true
    (List.for_all
       (fun k -> Membership.kernel_state (Kernel.membership k) 1 = Membership.Retired)
       (System.kernels sys));
  check Alcotest.(list int) "manages no partition" []
    (Membership.pes_of_kernel (System.membership sys) 1);
  check Alcotest.int "hosts no VPE" 0 (Kernel.vpe_count (System.kernel sys 1));
  check Alcotest.int "hosts no record" 0 (Mapdb.count (Kernel.mapdb (System.kernel sys 1)));
  (* The evacuated VPEs kept their capabilities and keep working — the
     spanning tree revokes cleanly across the new topology. *)
  check Alcotest.bool "b alive elsewhere" true (Vpe.is_alive b && b.Vpe.kernel <> 1);
  ignore (alloc sys c);
  (match System.syscall_sync sys a (Protocol.Sys_revoke { sel; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke across drained topology: %a" Protocol.pp_reply r);
  Audit.check sys;
  (* Satellite: new work must not land on the retiree — neither fresh
     spawns nor balancer migrations. *)
  Alcotest.check_raises "spawn on retired refused"
    (Invalid_argument "System.spawn_vpe: kernel is not active") (fun () ->
      ignore (System.spawn_vpe sys ~kernel:1));
  Alcotest.check_raises "migrate to retired refused"
    (Invalid_argument "Kernel.migrate_vpe: destination kernel is not active") (fun () ->
      System.migrate_vpe sys a ~to_kernel:1)

let test_retired_kernel_rejoins () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let vpes = List.map (fun k -> System.spawn_vpe sys ~kernel:k) [ 0; 1; 2; 0; 1; 2 ] in
  List.iter (fun v -> ignore (alloc sys v)) vpes;
  let phase = ref [] in
  Fleet.drain sys ~kernel:1 (fun () ->
      phase := "retired" :: !phase;
      Fleet.join sys ~kernel:1 (fun () -> phase := "rejoined" :: !phase));
  ignore (System.run sys);
  check Alcotest.(list string) "drain then rejoin" [ "rejoined"; "retired" ] !phase;
  check Alcotest.bool "active again" true
    (Membership.kernel_state (System.membership sys) 1 = Membership.Active);
  let home = System.home_pes sys ~kernel:1 in
  check Alcotest.bool "home PEs reclaimed" true
    (List.for_all (fun pe -> Membership.kernel_of_pe (System.membership sys) pe = 1) home);
  ignore (alloc sys (System.spawn_vpe sys ~kernel:1));
  List.iter (fun v -> ignore (alloc sys v)) vpes;
  Audit.check sys

let test_drain_safety_gates () =
  let sys = System.create (System.config ~kernels:2 ~spare_kernels:1 ~user_pes_per_kernel:4 ()) in
  (* Not Active. *)
  Alcotest.check_raises "drain a spare" (Invalid_argument "Fleet.drain: kernel is not active")
    (fun () -> Fleet.drain sys ~kernel:2 (fun () -> ()));
  (* A service's kernel is pinned by the replicated directory. *)
  let srv = System.spawn_vpe sys ~kernel:0 in
  Kernel.register_service_handler (System.kernel sys 0) ~name:"echo" (fun _req k ->
      k (Protocol.Srs_session { ident = 1 }));
  (match System.syscall_sync sys srv (Protocol.Sys_create_srv { name = "echo" }) with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "create_srv: %a" Protocol.pp_reply r);
  ignore (System.run sys);
  check Alcotest.bool "service pins its kernel" false (Fleet.drainable sys ~kernel:0);
  Alcotest.check_raises "drain the service kernel"
    (Invalid_argument "Fleet.drain: kernel hosts a service (directory entries pin it)") (fun () ->
      Fleet.drain sys ~kernel:0 (fun () -> ()));
  (* Never below one Active kernel. *)
  check Alcotest.bool "kernel 1 still drainable" true (Fleet.drainable sys ~kernel:1);
  let retired = ref false in
  Fleet.drain sys ~kernel:1 (fun () -> retired := true);
  ignore (System.run sys);
  check Alcotest.bool "kernel 1 retired" true !retired;
  Alcotest.check_raises "drain the last active kernel"
    (Invalid_argument "Fleet.drain: cannot drain the last active kernel") (fun () ->
      Fleet.drain sys ~kernel:0 (fun () -> ()))

let test_migrate_to_non_active_refused () =
  (* The live balancer's safety gate: a migration must never target a
     kernel that is out of (or leaving) service. *)
  let sys = System.create (System.config ~kernels:2 ~spare_kernels:1 ~user_pes_per_kernel:4 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  ignore (alloc sys v);
  Alcotest.check_raises "migrate to a spare"
    (Invalid_argument "Kernel.migrate_vpe: destination kernel is not active") (fun () ->
      System.migrate_vpe sys v ~to_kernel:2)

(* ------------------------------------------------------------------ *)
(* Bulk reassignment atomicity                                         *)

let test_reassign_partition_atomic () =
  let m = Membership.create () in
  List.iter (fun pe -> Membership.assign m ~pe ~kernel:(pe / 4)) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  Membership.seal m;
  (* One PE of the set is mid-handoff: a racing resolve defers loudly
     on it, and still sees the old owner on its partition siblings. *)
  Membership.begin_handoff m ~pe:2;
  Alcotest.check_raises "resolve on the moving PE defers" (Membership.Mid_handoff 2) (fun () ->
      ignore (Membership.kernel_of_pe m 2));
  check Alcotest.int "sibling still old owner" 0 (Membership.kernel_of_pe m 1);
  (* The bulk flip validates every PE before touching any mapping. *)
  Alcotest.check_raises "bulk flip refuses a moving PE"
    (Invalid_argument "Membership.reassign_partition: PE is mid-handoff (use complete_handoff)")
    (fun () -> Membership.reassign_partition m ~pes:[ 1; 2; 3 ] ~kernel:1);
  check Alcotest.int "PE 1 untouched after refused flip" 0 (Membership.kernel_of_pe m 1);
  check Alcotest.int "PE 3 untouched after refused flip" 0 (Membership.kernel_of_pe m 3);
  Alcotest.check_raises "unassigned PE refused" Not_found (fun () ->
      Membership.reassign_partition m ~pes:[ 1; 99 ] ~kernel:1);
  check Alcotest.int "PE 1 untouched after Not_found" 0 (Membership.kernel_of_pe m 1);
  (* Once the handoff completes, the whole partition flips in one step:
     no observer ever saw a mix of old and new owners. *)
  Membership.complete_handoff m ~pe:2 ~kernel:0;
  Membership.reassign_partition m ~pes:[ 1; 2; 3 ] ~kernel:1;
  check Alcotest.(list int) "all flipped" [ 1; 1; 1 ]
    (List.map (Membership.kernel_of_pe m) [ 1; 2; 3 ]);
  check Alcotest.int "outside the set untouched" 0 (Membership.kernel_of_pe m 0)

(* ------------------------------------------------------------------ *)
(* Revoke waves racing a drain                                         *)

let revoke_drain_race ~drain_first () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys a in
  ignore
    (System.syscall_sync sys b (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel = sel }));
  let revoke_reply = ref None in
  let retired = ref false in
  let start_revoke () =
    System.syscall sys a (Protocol.Sys_revoke { sel; own = true }) (fun r ->
        revoke_reply := Some r)
  in
  let start_drain () = Fleet.drain sys ~kernel:1 (fun () -> retired := true) in
  if drain_first then (start_drain (); start_revoke ())
  else (start_revoke (); start_drain ());
  ignore (System.run sys);
  (* Both finish: the revoke wave either lands before the child's
     partition moves (partition_quiet holds the handoff wave until the
     mark clears) or re-resolves by key to the new owner after the
     flip — never a lost child, never a wedged drain. *)
  (match !revoke_reply with
  | Some Protocol.R_ok -> ()
  | Some r -> Alcotest.failf "revoke racing drain: %a" Protocol.pp_reply r
  | None -> Alcotest.fail "revoke never completed");
  check Alcotest.bool "kernel 1 retired" true !retired;
  check Alcotest.int "child revoked" 0 (Capspace.count b.Vpe.capspace);
  check Alcotest.int "retiree holds no record" 0
    (Mapdb.count (Kernel.mapdb (System.kernel sys 1)));
  Audit.check sys

let test_revoke_then_drain () = revoke_drain_race ~drain_first:false ()
let test_drain_then_revoke () = revoke_drain_race ~drain_first:true ()

let suite =
  [
    Alcotest.test_case "policy: scale out above high water" `Quick test_policy_scale_out;
    Alcotest.test_case "policy: scale in picks emptiest drainable" `Quick test_policy_scale_in;
    Alcotest.test_case "policy: min-active floor and hysteresis band" `Quick
      test_policy_floor_and_band;
    Alcotest.test_case "spare kernels boot out of service" `Quick test_spare_boots_out_of_service;
    Alcotest.test_case "join brings a spare into service" `Quick
      test_join_brings_spare_into_service;
    Alcotest.test_case "drain evacuates and retires" `Quick test_drain_evacuates_and_retires;
    Alcotest.test_case "retired kernel rejoins" `Quick test_retired_kernel_rejoins;
    Alcotest.test_case "drain safety gates" `Quick test_drain_safety_gates;
    Alcotest.test_case "migrate to a non-active kernel is refused" `Quick
      test_migrate_to_non_active_refused;
    Alcotest.test_case "bulk reassign_partition is atomic" `Quick test_reassign_partition_atomic;
    Alcotest.test_case "revoke wave racing a starting drain" `Quick test_revoke_then_drain;
    Alcotest.test_case "drain racing an incoming revoke wave" `Quick test_drain_then_revoke;
  ]
