(* Tests for the NoC topology and fabric. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let test_mesh_basics () =
  let t = Topology.mesh ~width:4 ~height:3 in
  check Alcotest.int "pe count" 12 (Topology.pe_count t);
  check Alcotest.(pair int int) "coords of 0" (0, 0) (Topology.coords t 0);
  check Alcotest.(pair int int) "coords of 5" (1, 1) (Topology.coords t 5);
  check Alcotest.int "hops 0->11" 5 (Topology.hops t 0 11);
  check Alcotest.int "hops self" 0 (Topology.hops t 7 7)

let test_mesh_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Topology.mesh: non-positive dimension")
    (fun () -> ignore (Topology.mesh ~width:0 ~height:3));
  let t = Topology.mesh ~width:2 ~height:2 in
  Alcotest.check_raises "pe out of range" (Invalid_argument "Topology.coords: PE out of range")
    (fun () -> ignore (Topology.coords t 4))

let test_square () =
  let t = Topology.square 10 in
  check Alcotest.bool "holds at least n" true (Topology.pe_count t >= 10);
  check Alcotest.int "is 4x4" 16 (Topology.pe_count t);
  check Alcotest.int "square 1" 1 (Topology.pe_count (Topology.square 1))

let topo_gen =
  QCheck.Gen.(
    map3 (fun w h seed -> (Topology.mesh ~width:w ~height:h, seed)) (1 -- 8) (1 -- 8) int)

let prop_hops_metric =
  QCheck.Test.make ~name:"hop count is a metric" ~count:200
    (QCheck.make topo_gen)
    (fun (t, seed) ->
      let r = Rng.create (Int64.of_int seed) in
      let n = Topology.pe_count t in
      let a = Rng.int r n and b = Rng.int r n and c = Rng.int r n in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a a = 0
      && Topology.hops t a c <= Topology.hops t a b + Topology.hops t b c)

let make_fabric () =
  let e = Engine.create () in
  let t = Topology.mesh ~width:4 ~height:4 in
  (e, Fabric.create e t Fabric.default_config)

let test_fabric_latency_formula () =
  let _, f = make_fabric () in
  let cfg = Fabric.default_config in
  let expected hops bytes =
    Int64.of_int (cfg.Fabric.base_cycles + (cfg.Fabric.hop_cycles * hops) + (bytes / cfg.Fabric.bytes_per_cycle))
  in
  check Alcotest.int64 "adjacent" (expected 1 64) (Fabric.latency f ~src:0 ~dst:1 ~bytes:64);
  check Alcotest.int64 "corner to corner" (expected 6 0) (Fabric.latency f ~src:0 ~dst:15 ~bytes:0)

let test_fabric_delivery () =
  let e, f = make_fabric () in
  let arrived = ref 0L in
  Fabric.send f ~src:0 ~dst:15 ~bytes:64 (fun () -> arrived := Engine.now e);
  ignore (Engine.run e);
  check Alcotest.int64 "arrival time" (Fabric.latency f ~src:0 ~dst:15 ~bytes:64) !arrived;
  check Alcotest.int "messages" 1 (Fabric.messages f);
  check Alcotest.int "bytes" 64 (Fabric.bytes_carried f);
  check Alcotest.int "hops" 6 (Fabric.hops_traversed f)

let test_fabric_fifo_per_channel () =
  let e, f = make_fabric () in
  let log = ref [] in
  (* A big message followed by a small one on the same channel: the
     small one must not overtake (the kernel protocols rely on it). *)
  Fabric.send f ~src:0 ~dst:15 ~bytes:16384 (fun () -> log := "big" :: !log);
  Fabric.send f ~src:0 ~dst:15 ~bytes:0 (fun () -> log := "small" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "fifo" [ "big"; "small" ] (List.rev !log)

let test_fabric_distinct_channels_independent () =
  let e, f = make_fabric () in
  let log = ref [] in
  Fabric.send f ~src:0 ~dst:15 ~bytes:16384 (fun () -> log := "slow" :: !log);
  Fabric.send f ~src:1 ~dst:2 ~bytes:0 (fun () -> log := "fast" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "no cross-channel blocking" [ "fast"; "slow" ] (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Offered vs delivered statistics, and the injection hook.             *)

let test_fabric_stats_no_injector () =
  let e, f = make_fabric () in
  Fabric.send f ~src:0 ~dst:15 ~bytes:64 (fun () -> ());
  Fabric.send f ~src:1 ~dst:2 ~bytes:32 (fun () -> ());
  (* Offered counters tick at send time... *)
  check Alcotest.int "messages offered" 2 (Fabric.messages f);
  check Alcotest.int "bytes offered" 96 (Fabric.bytes_carried f);
  check Alcotest.int "nothing delivered yet" 0 (Fabric.messages_delivered f);
  ignore (Engine.run e);
  (* ... delivered counters only once the message arrives. *)
  check Alcotest.int "messages delivered" 2 (Fabric.messages_delivered f);
  check Alcotest.int "bytes delivered" 96 (Fabric.bytes_delivered f);
  check Alcotest.int "nothing dropped" 0 (Fabric.dropped f)

let test_fabric_injector_drop () =
  let e, f = make_fabric () in
  (* Drop every tagged message; untagged traffic is untouched. *)
  Fabric.set_injector f (Some (fun ~src:_ ~dst:_ ~tag ~now:_ ~arrival ->
      if tag = "" then [ Some arrival ] else []));
  let tagged = ref 0 and untagged = ref 0 in
  Fabric.send f ~tag:"obtain_req" ~src:0 ~dst:15 ~bytes:64 (fun () -> incr tagged);
  Fabric.send f ~src:0 ~dst:15 ~bytes:64 (fun () -> incr untagged);
  ignore (Engine.run e);
  check Alcotest.int "tagged message dropped" 0 !tagged;
  check Alcotest.int "untagged message delivered" 1 !untagged;
  check Alcotest.int "offered counts both" 2 (Fabric.messages f);
  check Alcotest.int "delivered counts one" 1 (Fabric.messages_delivered f);
  check Alcotest.int "drop counted" 1 (Fabric.dropped f)

let test_fabric_injector_duplicate () =
  let e, f = make_fabric () in
  Fabric.set_injector f (Some (fun ~src:_ ~dst:_ ~tag:_ ~now:_ ~arrival ->
      [ Some arrival; Some (Int64.add arrival 100L) ]));
  let deliveries = ref [] in
  Fabric.send f ~tag:"revoke_req" ~src:0 ~dst:1 ~bytes:0 (fun () ->
      deliveries := Engine.now e :: !deliveries);
  ignore (Engine.run e);
  let base = Fabric.latency f ~src:0 ~dst:1 ~bytes:0 in
  check Alcotest.(list int64) "both copies arrive, in order"
    [ base; Int64.add base 100L ]
    (List.rev !deliveries);
  check Alcotest.int "one offered" 1 (Fabric.messages f);
  check Alcotest.int "two delivered" 2 (Fabric.messages_delivered f)

(* A duplicate-then-drop plan: one copy delivered, one copy dropped.
   The dropped copy must show up in [dropped] even though the message
   as a whole got through. *)
let test_fabric_partial_drop () =
  let e, f = make_fabric () in
  Fabric.set_injector f (Some (fun ~src:_ ~dst:_ ~tag:_ ~now:_ ~arrival ->
      [ Some arrival; None ]));
  let deliveries = ref 0 in
  Fabric.send f ~tag:"revoke_req" ~src:0 ~dst:1 ~bytes:0 (fun () -> incr deliveries);
  ignore (Engine.run e);
  check Alcotest.int "one offered" 1 (Fabric.messages f);
  check Alcotest.int "one delivered" 1 (Fabric.messages_delivered f);
  check Alcotest.int "one copy delivered" 1 !deliveries;
  check Alcotest.int "partial drop counted" 1 (Fabric.dropped f);
  (* Dropping every copy of a duplicated message counts each copy. *)
  Fabric.set_injector f (Some (fun ~src:_ ~dst:_ ~tag:_ ~now:_ ~arrival:_ -> [ None; None ]));
  Fabric.send f ~tag:"revoke_req" ~src:0 ~dst:1 ~bytes:0 (fun () -> incr deliveries);
  ignore (Engine.run e);
  check Alcotest.int "both copies dropped" 3 (Fabric.dropped f);
  check Alcotest.int "no extra delivery" 1 !deliveries

(* The fabric clamps whatever the injector returns so that per-channel
   FIFO order and causality survive. *)
let test_fabric_injector_fifo_clamp () =
  let e, f = make_fabric () in
  (* An injector that tries to deliver the second message before the
     first (and before it was even sent). *)
  let calls = ref 0 in
  Fabric.set_injector f (Some (fun ~src:_ ~dst:_ ~tag:_ ~now:_ ~arrival ->
      incr calls;
      if !calls = 1 then [ Some (Int64.add arrival 5_000L) ] else [ Some 0L ]));
  let log = ref [] in
  Fabric.send f ~tag:"a" ~src:0 ~dst:15 ~bytes:0 (fun () -> log := "first" :: !log);
  Fabric.send f ~tag:"b" ~src:0 ~dst:15 ~bytes:0 (fun () -> log := "second" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "FIFO survives injection" [ "first"; "second" ] (List.rev !log)

let suite =
  [
    Alcotest.test_case "mesh basics" `Quick test_mesh_basics;
    Alcotest.test_case "mesh invalid" `Quick test_mesh_invalid;
    Alcotest.test_case "square" `Quick test_square;
    qcheck prop_hops_metric;
    Alcotest.test_case "fabric latency formula" `Quick test_fabric_latency_formula;
    Alcotest.test_case "fabric delivery" `Quick test_fabric_delivery;
    Alcotest.test_case "fabric per-channel FIFO" `Quick test_fabric_fifo_per_channel;
    Alcotest.test_case "fabric channel independence" `Quick test_fabric_distinct_channels_independent;
    Alcotest.test_case "fabric offered vs delivered stats" `Quick test_fabric_stats_no_injector;
    Alcotest.test_case "fabric injector drop" `Quick test_fabric_injector_drop;
    Alcotest.test_case "fabric injector duplicate" `Quick test_fabric_injector_duplicate;
    Alcotest.test_case "fabric injector partial drop" `Quick test_fabric_partial_drop;
    Alcotest.test_case "fabric injector FIFO clamp" `Quick test_fabric_injector_fifo_clamp;
  ]
