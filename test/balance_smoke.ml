(* Smoke gate for the load balancer, run from the [balance-smoke] dune
   alias (hooked into [dune runtest]). Runs the smoke preset of the
   skewed-workload benchmark end to end and asserts the contract the
   balancer must keep — strict improvement on both metrics, a clean
   capability audit, and a well-shaped JSON report — without pinning
   any host-dependent number. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let cfg = { Skew.default_config with Skew.clients = 4; rounds = 10; pes_per_kernel = 6 } in
  let static = Skew.run { cfg with Skew.policy = Balance.Policy.Static } in
  let balanced = Skew.run cfg in
  check "static: audit clean" (static.Skew.audit_errors = []);
  check "static: no migrations" (static.Skew.migrations = []);
  check "balanced: audit clean" (balanced.Skew.audit_errors = []);
  check "balanced: migrations happened" (balanced.Skew.migrations <> []);
  check "balanced: max occupancy strictly reduced"
    (balanced.Skew.max_occupancy < static.Skew.max_occupancy);
  check "balanced: completion strictly reduced"
    (balanced.Skew.completion < static.Skew.completion);
  (* The written report must be valid JSON naming its schema. *)
  let path = Filename.temp_file "balance_smoke" ".json" in
  Skew.bench ~preset:Skew.Smoke ~path ();
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-balance-1\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [
      "\"static\""; "\"balanced\""; "\"completion_cycles\""; "\"max_occupancy\"";
      "\"sequence\""; "\"completion_speedup\"";
    ];
  if !failed then exit 1;
  print_endline "balance-smoke: OK"
