(* Model-based test for the arena-backed mapping database.

   A reference implementation keeps the same observable state in plain
   association lists (insertion order) and an explicit dirty set. A
   fixed-seed driver runs thousands of random operations — insert,
   remove, link, unlink, set_children, snapshot/restore, drain_dirty —
   against both and asserts observational equality after every step:
   membership, record identity, child lists (order included), ownership
   chains (order included), counts, raised exceptions, and dirty
   partitions. Slot and cell recycling inside the arena must never
   show through this interface. *)

open Semperos

let check = Alcotest.check

(* Small key universe so collisions (duplicate inserts, dangling links,
   re-insertion after removal) happen constantly. *)
let pes = 4
let vpes = 3
let objs = 8

let key ~pe ~vpe ~obj = Key.make ~pe ~vpe ~kind:Key.Mem_obj ~obj

let universe =
  List.concat_map
    (fun pe ->
      List.concat_map
        (fun vpe -> List.init objs (fun obj -> key ~pe ~vpe ~obj))
        (List.init vpes Fun.id))
    (List.init pes Fun.id)

let mem_kind = Cap.Mem_cap { host_pe = 0; addr = 0L; size = 4096L; perms = Perms.rw }

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)

module Model = struct
  type entry = { owner : int; mutable kids : Key.t list }

  type t = {
    (* Insertion order, like the arena's intrusive chains. *)
    mutable recs : (Key.t * entry) list;
    dirty : (int, unit) Hashtbl.t;
  }

  type snapshot = (Key.t * int * Key.t list) list

  let create () = { recs = []; dirty = Hashtbl.create 8 }
  let find t k = List.assoc_opt k t.recs
  let mem t k = find t k <> None
  let touch t k = Hashtbl.replace t.dirty (Key.pe k) ()

  let insert t k ~owner =
    if mem t k then invalid_arg "model: duplicate"
    else begin
      t.recs <- t.recs @ [ (k, { owner; kids = [] }) ];
      touch t k
    end

  let remove t k =
    if mem t k then begin
      t.recs <- List.filter (fun (k', _) -> not (Key.equal k k')) t.recs;
      touch t k
    end

  let add_child t ~parent k =
    match find t parent with
    | None -> invalid_arg "model: parent missing"
    | Some e ->
      if List.exists (Key.equal k) e.kids then invalid_arg "model: duplicate child"
      else begin
        e.kids <- e.kids @ [ k ];
        touch t parent;
        touch t k
      end

  let remove_child t ~parent k =
    (match find t parent with
    | None -> ()
    | Some e -> e.kids <- List.filter (fun k' -> not (Key.equal k k')) e.kids);
    (* Mapdb touches both partitions even when the unlink was a no-op. *)
    touch t parent;
    touch t k

  let set_children t parent kids =
    match find t parent with
    | None -> invalid_arg "model: parent missing"
    | Some e ->
      e.kids <- kids;
      touch t parent;
      List.iter (fun k -> touch t k) kids

  let children t k = match find t k with None -> [] | Some e -> e.kids
  let caps_of_vpe t ~vpe = List.filter_map (fun (k, e) -> if e.owner = vpe then Some k else None) t.recs
  let caps_of_pe t ~pe = List.filter_map (fun (k, _) -> if Key.pe k = pe then Some k else None) t.recs

  let drain_dirty t =
    let out = Hashtbl.fold (fun pe () acc -> pe :: acc) t.dirty [] in
    Hashtbl.reset t.dirty;
    List.sort compare out

  (* Mapdb snapshots are key-sorted (portable, fingerprint-stable), so
     a restore rebuilds insertion order as sorted-by-key. *)
  let snapshot t : snapshot =
    List.map (fun (k, e) -> (k, e.owner, e.kids)) t.recs
    |> List.sort (fun (a, _, _) (b, _, _) -> Key.compare a b)

  let restore t (s : snapshot) =
    List.iter (fun (k, _) -> touch t k) t.recs;
    t.recs <- List.map (fun (k, owner, kids) -> (k, { owner; kids })) s;
    List.iter
      (fun (k, _, kids) ->
        touch t k;
        List.iter (fun c -> touch t c) kids)
      s
end

(* ------------------------------------------------------------------ *)
(* Equivalence check                                                   *)

let pp_key k = Key.to_string k

let keys_equal name expected got =
  check Alcotest.(list string) name (List.map pp_key expected) (List.map pp_key got)

let same_observables step (db : Mapdb.t) (m : Model.t) =
  let ctx fmt = Printf.sprintf ("step %d: " ^^ fmt) step in
  check Alcotest.int (ctx "count") (List.length m.Model.recs) (Mapdb.count db);
  List.iter
    (fun k ->
      let model_entry = Model.find m k in
      (match (model_entry, Mapdb.find db k) with
      | None, None -> ()
      | Some e, Some cap ->
        check Alcotest.int (ctx "owner of %s" (pp_key k)) e.Model.owner cap.Cap.owner_vpe
      | Some _, None -> Alcotest.failf "step %d: %s missing from mapdb" step (pp_key k)
      | None, Some _ -> Alcotest.failf "step %d: %s should not be in mapdb" step (pp_key k));
      keys_equal (ctx "children of %s" (pp_key k)) (Model.children m k) (Mapdb.children db k);
      check Alcotest.int
        (ctx "child_count of %s" (pp_key k))
        (List.length (Model.children m k))
        (Mapdb.child_count db k))
    universe;
  for vpe = 0 to vpes - 1 do
    keys_equal (ctx "caps_of_vpe %d" vpe)
      (Model.caps_of_vpe m ~vpe)
      (List.map (fun c -> c.Cap.key) (Mapdb.caps_of_vpe db ~vpe))
  done;
  for pe = 0 to pes - 1 do
    keys_equal (ctx "caps_of_pe %d" pe)
      (Model.caps_of_pe m ~pe)
      (List.map (fun c -> c.Cap.key) (Mapdb.caps_of_pe db ~pe))
  done;
  (* Slot-order iteration must visit each record exactly once. *)
  let seen = ref [] in
  Mapdb.iter (fun c -> seen := c.Cap.key :: !seen) db;
  keys_equal (ctx "iter key set")
    (List.sort Key.compare (List.map fst m.Model.recs))
    (List.sort Key.compare !seen)

(* Both must raise, or neither. *)
let agree_on_exn step name f g =
  let outcome h = match h () with () -> None | exception Invalid_argument _ -> Some () in
  let a = outcome f and b = outcome g in
  if (a = None) <> (b = None) then
    Alcotest.failf "step %d: %s: model %s but mapdb %s" step name
      (if a = None then "succeeded" else "raised")
      (if b = None then "succeeded" else "raised")

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run_case ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let db = Mapdb.create () in
  let m = Model.create () in
  let saved = ref None in
  for step = 1 to steps do
    (match Random.State.int rng 100 with
    | n when n < 30 ->
      (* insert (often a duplicate) *)
      let k = pick universe in
      let owner = Key.vpe k in
      agree_on_exn step "insert"
        (fun () -> Model.insert m k ~owner)
        (fun () -> Mapdb.insert db (Cap.make ~key:k ~kind:mem_kind ~owner_vpe:owner ()))
    | n when n < 45 ->
      let k = pick universe in
      Model.remove m k;
      Mapdb.remove db k
    | n when n < 70 ->
      (* link (duplicate children and missing parents included) *)
      let parent = pick universe and k = pick universe in
      agree_on_exn step "add_child"
        (fun () -> Model.add_child m ~parent k)
        (fun () -> Mapdb.add_child db ~parent k)
    | n when n < 85 ->
      let parent = pick universe and k = pick universe in
      Model.remove_child m ~parent k;
      Mapdb.remove_child db ~parent k
    | n when n < 92 ->
      let parent = pick universe in
      let kids =
        List.filter (fun _ -> Random.State.int rng 8 = 0) universe
      in
      agree_on_exn step "set_children"
        (fun () -> Model.set_children m parent kids)
        (fun () -> Mapdb.set_children db parent kids)
    | n when n < 96 -> saved := Some (Mapdb.snapshot db, Model.snapshot m)
    | _ -> (
      match !saved with
      | None -> ()
      | Some (dbs, ms) ->
        Mapdb.restore db dbs;
        Model.restore m ms));
    (* Dirty sets must agree at every step (drain clears both). *)
    check
      Alcotest.(list int)
      (Printf.sprintf "step %d: dirty partitions" step)
      (Model.drain_dirty m) (Mapdb.drain_dirty db);
    same_observables step db m
  done

let test_model_seed_1 () = run_case ~seed:0xfeed ~steps:800
let test_model_seed_2 () = run_case ~seed:0xbeef ~steps:800
let test_model_seed_3 () = run_case ~seed:0xcafe ~steps:800

let suite =
  [
    Alcotest.test_case "mapdb matches reference model (seed 1)" `Quick test_model_seed_1;
    Alcotest.test_case "mapdb matches reference model (seed 2)" `Quick test_model_seed_2;
    Alcotest.test_case "mapdb matches reference model (seed 3)" `Quick test_model_seed_3;
  ]
