(* Tests for permissions, capability records, capability spaces, and
   the mapping database. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Perms                                                               *)

let perms_gen =
  QCheck.Gen.(
    map3 (fun read write exec -> { Perms.read; write; exec }) bool bool bool)

let test_perms_basics () =
  check Alcotest.string "rwx" "rwx" (Perms.to_string Perms.rwx);
  check Alcotest.string "r" "r--" (Perms.to_string Perms.r);
  check Alcotest.bool "r subset rw" true (Perms.subset Perms.r ~of_:Perms.rw);
  check Alcotest.bool "rw not subset r" false (Perms.subset Perms.rw ~of_:Perms.r);
  check Alcotest.bool "none subset all" true (Perms.subset Perms.none ~of_:Perms.rwx);
  check Alcotest.bool "inter" true (Perms.equal Perms.r (Perms.inter Perms.rw Perms.rx))

let prop_perms_subset_refl =
  QCheck.Test.make ~name:"perms subset is reflexive" ~count:100 (QCheck.make perms_gen)
    (fun p -> Perms.subset p ~of_:p)

let prop_perms_inter_subset =
  QCheck.Test.make ~name:"intersection is a subset of both" ~count:100
    (QCheck.make QCheck.Gen.(pair perms_gen perms_gen))
    (fun (a, b) ->
      let i = Perms.inter a b in
      Perms.subset i ~of_:a && Perms.subset i ~of_:b)

let prop_perms_subset_antisym =
  QCheck.Test.make ~name:"mutual subset implies equality" ~count:100
    (QCheck.make QCheck.Gen.(pair perms_gen perms_gen))
    (fun (a, b) ->
      if Perms.subset a ~of_:b && Perms.subset b ~of_:a then Perms.equal a b else true)

(* ------------------------------------------------------------------ *)
(* Cap                                                                 *)

let key i = Key.make ~pe:0 ~vpe:0 ~kind:Key.Mem_obj ~obj:i

let mem_kind = Cap.Mem_cap { host_pe = 0; addr = 0L; size = 4096L; perms = Perms.rw }

let test_cap_children () =
  (* Child links live in the mapping database's arena, not in the
     record itself. *)
  let db = Mapdb.create () in
  let c = Cap.make ~key:(key 0) ~kind:mem_kind ~owner_vpe:1 () in
  check Alcotest.bool "not marked" false (Cap.is_marked c);
  Mapdb.insert db c;
  Mapdb.add_child db ~parent:(key 0) (key 1);
  Mapdb.add_child db ~parent:(key 0) (key 2);
  check Alcotest.bool "has child" true (Mapdb.has_child db ~parent:(key 0) (key 1));
  Alcotest.check_raises "duplicate child" (Invalid_argument "Mapdb.add_child: duplicate child")
    (fun () -> Mapdb.add_child db ~parent:(key 0) (key 1));
  Alcotest.check_raises "missing parent" (Invalid_argument "Mapdb.add_child: parent not in database")
    (fun () -> Mapdb.add_child db ~parent:(key 7) (key 8));
  Mapdb.remove_child db ~parent:(key 0) (key 1);
  check Alcotest.bool "removed" false (Mapdb.has_child db ~parent:(key 0) (key 1));
  Mapdb.remove_child db ~parent:(key 0) (key 9) (* no-op *);
  check Alcotest.int "one left" 1 (Mapdb.child_count db (key 0));
  check
    Alcotest.(list int)
    "insertion order" [ 2 ]
    (List.map Key.obj (Mapdb.children db (key 0)))

let test_cap_marking () =
  let c = Cap.make ~key:(key 0) ~kind:mem_kind ~owner_vpe:1 () in
  c.Cap.state <- Cap.Marked { revoke_op = 7 };
  check Alcotest.bool "marked" true (Cap.is_marked c)

(* ------------------------------------------------------------------ *)
(* Capspace                                                            *)

let test_capspace_alloc () =
  let cs = Capspace.create () in
  let s0 = Capspace.insert cs (key 0) in
  let s1 = Capspace.insert cs (key 1) in
  check Alcotest.int "first selector" 0 s0;
  check Alcotest.int "second selector" 1 s1;
  check Alcotest.(option int) "reverse lookup" (Some 1) (Capspace.selector_of cs (key 1));
  Capspace.remove cs s0;
  (* The freed selector is reused. *)
  check Alcotest.int "selector reuse" 0 (Capspace.insert cs (key 2));
  check Alcotest.int "count" 2 (Capspace.count cs)

let test_capspace_insert_at () =
  let cs = Capspace.create () in
  Capspace.insert_at cs 5 (key 0);
  check Alcotest.bool "find at 5" true (Capspace.find cs 5 = Some (key 0));
  Alcotest.check_raises "taken" (Invalid_argument "Capspace.insert_at: selector taken")
    (fun () -> Capspace.insert_at cs 5 (key 1));
  Alcotest.check_raises "negative" (Invalid_argument "Capspace.insert_at: negative selector")
    (fun () -> Capspace.insert_at cs (-1) (key 1))

let test_capspace_remove_key () =
  let cs = Capspace.create () in
  ignore (Capspace.insert cs (key 0));
  Capspace.remove_key cs (key 0);
  check Alcotest.int "gone" 0 (Capspace.count cs);
  Capspace.remove_key cs (key 0) (* idempotent *)

let prop_capspace_selectors_unique =
  QCheck.Test.make ~name:"live selectors are unique" ~count:100
    QCheck.(list (int_bound 50))
    (fun objs ->
      let cs = Capspace.create () in
      let sels = List.mapi (fun i _ -> Capspace.insert cs (key i)) objs in
      List.length (List.sort_uniq Int.compare sels) = List.length sels)

(* ------------------------------------------------------------------ *)
(* Mapdb                                                               *)

let test_mapdb_basic () =
  let db = Mapdb.create () in
  let c = Cap.make ~key:(key 0) ~kind:mem_kind ~owner_vpe:1 () in
  Mapdb.insert db c;
  check Alcotest.bool "mem" true (Mapdb.mem db (key 0));
  check Alcotest.bool "get" true (Mapdb.get db (key 0) == c);
  Alcotest.check_raises "duplicate" (Invalid_argument "Mapdb.insert: duplicate key") (fun () ->
      Mapdb.insert db c);
  Alcotest.check_raises "get missing" Not_found (fun () -> ignore (Mapdb.get db (key 1)));
  Mapdb.remove db (key 0);
  check Alcotest.int "count" 0 (Mapdb.count db)

let test_mapdb_caps_of_vpe () =
  let db = Mapdb.create () in
  Mapdb.insert db (Cap.make ~key:(key 0) ~kind:mem_kind ~owner_vpe:1 ());
  Mapdb.insert db (Cap.make ~key:(key 1) ~kind:mem_kind ~owner_vpe:2 ());
  Mapdb.insert db (Cap.make ~key:(key 2) ~kind:mem_kind ~owner_vpe:1 ());
  check Alcotest.int "vpe 1 owns two" 2 (List.length (Mapdb.caps_of_vpe db ~vpe:1))

let test_mapdb_fresh_obj_monotonic () =
  let db = Mapdb.create () in
  let a = Mapdb.fresh_obj db and b = Mapdb.fresh_obj db in
  check Alcotest.bool "monotonic" true (b > a)

let test_mapdb_link_check () =
  let db = Mapdb.create () in
  let parent = Cap.make ~key:(key 0) ~kind:mem_kind ~owner_vpe:1 () in
  let child = Cap.make ~key:(key 1) ~kind:mem_kind ~owner_vpe:1 ~parent:(key 0) () in
  Mapdb.insert db parent;
  Mapdb.insert db child;
  (* Parent does not list the child: inconsistent. *)
  check Alcotest.bool "violation found" true (Mapdb.check_local_links db <> []);
  Mapdb.add_child db ~parent:(key 0) (key 1);
  check Alcotest.(list string) "consistent now" [] (Mapdb.check_local_links db);
  (* A child entry pointing to a wrong parent is also caught. *)
  child.Cap.parent <- Some (key 2);
  check Alcotest.bool "wrong parent caught" true (Mapdb.check_local_links db <> [])

let suite =
  [
    Alcotest.test_case "perms basics" `Quick test_perms_basics;
    qcheck prop_perms_subset_refl;
    qcheck prop_perms_inter_subset;
    qcheck prop_perms_subset_antisym;
    Alcotest.test_case "cap children" `Quick test_cap_children;
    Alcotest.test_case "cap marking" `Quick test_cap_marking;
    Alcotest.test_case "capspace alloc" `Quick test_capspace_alloc;
    Alcotest.test_case "capspace insert_at" `Quick test_capspace_insert_at;
    Alcotest.test_case "capspace remove_key" `Quick test_capspace_remove_key;
    qcheck prop_capspace_selectors_unique;
    Alcotest.test_case "mapdb basic" `Quick test_mapdb_basic;
    Alcotest.test_case "mapdb caps_of_vpe" `Quick test_mapdb_caps_of_vpe;
    Alcotest.test_case "mapdb fresh_obj" `Quick test_mapdb_fresh_obj_monotonic;
    Alcotest.test_case "mapdb link check" `Quick test_mapdb_link_check;
  ]
