(* Tests for the discrete-event engine and the FIFO server. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.after e 10L (fun () -> log := "b" :: !log);
  Engine.after e 5L (fun () -> log := "a" :: !log);
  Engine.after e 20L (fun () -> log := "c" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int64 "clock at last event" 20L (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.after e 10L (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  check Alcotest.(list int) "scheduling order at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0L in
  Engine.after e 10L (fun () -> Engine.after e 15L (fun () -> fired := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int64 "nested absolute time" 25L !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter (fun d -> Engine.after e d (fun () -> incr count)) [ 5L; 15L; 25L ];
  let n = Engine.run ~until:20L e in
  check Alcotest.int "events within bound" 2 n;
  check Alcotest.int64 "clock clamped" 20L (Engine.now e);
  check Alcotest.int "pending remains" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "all fired" 3 !count

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.after e 10L (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past") (fun () ->
          Engine.at e 5L (fun () -> ())));
  ignore (Engine.run e);
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.after: negative delay")
    (fun () -> Engine.after e (-1L) (fun () -> ()))

(* A bounded run with every event beyond the limit still advances the
   clock to the limit — and never rewinds it on a later, lower bound. *)
let test_engine_until_no_event () =
  let e = Engine.create () in
  Engine.after e 100L (fun () -> ());
  let n = Engine.run ~until:40L e in
  check Alcotest.int "nothing fired" 0 n;
  check Alcotest.int64 "clock at the limit" 40L (Engine.now e);
  (* A second bound below the current clock must not rewind time. *)
  let n = Engine.run ~until:10L e in
  check Alcotest.int "still nothing fired" 0 n;
  check Alcotest.int64 "clock never rewinds" 40L (Engine.now e);
  check Alcotest.int "event still queued" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int64 "event fires at its time" 100L (Engine.now e)

(* The other exit path: the queue drains *before* the bound. The clock
   must still advance to the bound, so quiescent periods pass time. *)
let test_engine_until_drained () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.after e 10L (fun () -> incr fired);
  let n = Engine.run ~until:500L e in
  check Alcotest.int "event fired" 1 n;
  check Alcotest.int "callback ran" 1 !fired;
  check Alcotest.int64 "clock advanced to the bound" 500L (Engine.now e);
  (* Entirely empty queue: a bounded run is pure time passing. *)
  ignore (Engine.run ~until:900L e);
  check Alcotest.int64 "empty run still advances" 900L (Engine.now e);
  (* ... but an unbounded run of an empty queue leaves the clock put. *)
  ignore (Engine.run e);
  check Alcotest.int64 "unbounded drain keeps clock" 900L (Engine.now e);
  (* And a bound in the past never rewinds. *)
  ignore (Engine.run ~until:100L e);
  check Alcotest.int64 "no rewind" 900L (Engine.now e)

(* Repeated bounded runs make progress and eventually drain. *)
let test_engine_until_repeated () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter (fun d -> Engine.after e d (fun () -> incr fired)) [ 10L; 30L; 50L; 70L ];
  let steps = ref 0 in
  while Engine.pending e > 0 do
    incr steps;
    if !steps > 100 then Alcotest.fail "bounded runs stopped making progress";
    ignore (Engine.run ~until:(Int64.add (Engine.now e) 25L) e)
  done;
  check Alcotest.int "all fired" 4 !fired;
  (* The final bounded run drains the queue before its bound, and the
     clock still advances to the bound (75), not the last event. *)
  check Alcotest.int64 "clock at final bound" 75L (Engine.now e)

(* Same-time events straddling the bound fire together, in seq order. *)
let test_engine_until_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.after e 20L (fun () -> log := i :: !log)
  done;
  Engine.after e 21L (fun () -> log := 99 :: !log);
  ignore (Engine.run ~until:20L e);
  check Alcotest.(list int) "all of time 20 fired in order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "time 21 still pending" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.(list int) "straggler after" [ 1; 2; 3; 99 ] (List.rev !log)

let test_engine_counts () =
  let e = Engine.create () in
  Engine.after e 1L (fun () -> ());
  Engine.after e 2L (fun () -> ());
  ignore (Engine.run e);
  check Alcotest.int "processed" 2 (Engine.events_processed e)

(* ------------------------------------------------------------------ *)
(* Cancellable timers                                                  *)

(* The lazy-deletion tests pin heap-mode semantics (skipped counts,
   compaction) to the [Binary_heap] oracle backend; the wheel twins
   below assert the eager-unlink semantics of the default backend.
   Delivery order and clocks must be identical under both — that
   equivalence is fuzzed in test_engine_model. *)

let test_cancel_before_fire () =
  let e = Engine.create ~queue:Engine.Binary_heap () in
  let fired = ref false and live = ref false in
  let h = Engine.after_cancellable e 20L (fun () -> fired := true) in
  Engine.after e 10L (fun () -> live := true);
  check Alcotest.int "pending counts both" 2 (Engine.pending e);
  Engine.cancel e h;
  check Alcotest.int "pending excludes dead" 1 (Engine.pending e);
  check Alcotest.int "cancelled" 1 (Engine.events_cancelled e);
  ignore (Engine.run e);
  check Alcotest.bool "cancelled never fires" false !fired;
  check Alcotest.bool "live fires" true !live;
  check Alcotest.int "processed excludes cancelled" 1 (Engine.events_processed e);
  check Alcotest.int "dead slot discarded by run" 1 (Engine.events_skipped e);
  (* The seed engine executed the dead event as a no-op at cycle 20 and
     the clock followed it; the drained clock must still land there. *)
  check Alcotest.int64 "clock reaches the cancelled horizon" 20L (Engine.now e)

(* Same scenario under the default wheel backend: the cancel unlinks
   the event immediately, so nothing is ever skipped, while delivery,
   counters visible to simulated time, and the drained clock match the
   heap exactly. *)
let test_cancel_before_fire_wheel () =
  let e = Engine.create () in
  check Alcotest.bool "wheel is the default backend" true
    (Engine.queue_kind e = Engine.Timer_wheel);
  let fired = ref false and live = ref false in
  let h = Engine.after_cancellable e 20L (fun () -> fired := true) in
  Engine.after e 10L (fun () -> live := true);
  check Alcotest.int "pending counts both" 2 (Engine.pending e);
  Engine.cancel e h;
  check Alcotest.int "pending excludes cancelled" 1 (Engine.pending e);
  check Alcotest.int "cancelled" 1 (Engine.events_cancelled e);
  ignore (Engine.run e);
  check Alcotest.bool "cancelled never fires" false !fired;
  check Alcotest.bool "live fires" true !live;
  check Alcotest.int "processed excludes cancelled" 1 (Engine.events_processed e);
  check Alcotest.int "eager unlink never skips" 0 (Engine.events_skipped e);
  check Alcotest.int64 "clock reaches the cancelled horizon" 20L (Engine.now e)

let test_cancel_after_fire_and_double () =
  let e = Engine.create () in
  let n = ref 0 in
  let h = Engine.after_cancellable e 1L (fun () -> incr n) in
  ignore (Engine.run e);
  check Alcotest.int "fired once" 1 !n;
  Engine.cancel e h;
  check Alcotest.int "cancel after fire is a no-op" 0 (Engine.events_cancelled e);
  let h2 = Engine.after_cancellable e 5L (fun () -> incr n) in
  Engine.cancel e h2;
  Engine.cancel e h2;
  check Alcotest.int "double cancel counts once" 1 (Engine.events_cancelled e);
  ignore (Engine.run e);
  check Alcotest.int "cancelled callback never ran" 1 !n

let test_cancel_interleaved_with_until () =
  let run_with queue =
    let e = Engine.create ~queue () in
    let order = ref [] in
    let note x () = order := x :: !order in
    ignore (Engine.after_cancellable e 10L (note 10));
    let h20 = Engine.after_cancellable e 20L (note 20) in
    ignore (Engine.after_cancellable e 30L (note 30));
    ignore (Engine.run ~until:15L e);
    check Alcotest.(list int) "first window" [ 10 ] (List.rev !order);
    (* Cancel between bounded runs: the event is already queued below the
       next window's limit, so [run] must discard it when it surfaces. *)
    Engine.cancel e h20;
    ignore (Engine.run e);
    check Alcotest.(list int) "cancelled event elided" [ 10; 30 ] (List.rev !order);
    check Alcotest.int "processed" 2 (Engine.events_processed e);
    check Alcotest.int "cancelled" 1 (Engine.events_cancelled e);
    Engine.events_skipped e
  in
  (* Heap mode discards the dead event when it surfaces; the wheel
     removed it at cancel time, so nothing surfaces to skip. *)
  check Alcotest.int "skipped (heap)" 1 (run_with Engine.Binary_heap);
  check Alcotest.int "skipped (wheel)" 0 (run_with Engine.Timer_wheel)

let test_cancel_compaction () =
  let e = Engine.create ~queue:Engine.Binary_heap () in
  let fired = ref [] in
  (* Far-future victims interleaved with near-term survivors; cancelling
     every victim pushes the dead fraction over 1/2 on a heap well past
     the compaction floor, so the dead slots are removed wholesale
     (skipped stays 0) and the survivors must still fire in order. *)
  let victims =
    List.init 200 (fun i ->
        Engine.at_cancellable e (Int64.of_int (1000 + i)) (fun () -> fired := (-i) :: !fired))
  in
  for i = 1 to 10 do
    Engine.at e (Int64.of_int i) (fun () -> fired := i :: !fired)
  done;
  check Alcotest.int "pending before" 210 (Engine.pending e);
  List.iter (Engine.cancel e) victims;
  check Alcotest.int "pending after mass cancel" 10 (Engine.pending e);
  check Alcotest.int "cancelled" 200 (Engine.events_cancelled e);
  check Alcotest.bool "heap_peak saw the full queue" true (Engine.heap_peak e >= 210);
  ignore (Engine.run e);
  check Alcotest.(list int) "survivors fire in order" (List.init 10 (fun i -> i + 1))
    (List.rev !fired);
  (* Compaction keeps the dead backlog below its trigger floor: at most
     63 tombstones can survive to be popped one by one. *)
  check Alcotest.bool "most dead slots removed wholesale" true (Engine.events_skipped e < 64);
  check Alcotest.int64 "clock still reaches the horizon" 1199L (Engine.now e)

(* The wheel twin of the mass-cancel test: no compaction machinery —
   every cancel unlinks its cell on the spot, so [pending] and the
   occupancy peak track live events exactly and nothing is skipped. *)
let test_cancel_mass_wheel () =
  let e = Engine.create () in
  let fired = ref [] in
  let victims =
    List.init 200 (fun i ->
        Engine.at_cancellable e (Int64.of_int (1000 + i)) (fun () -> fired := (-i) :: !fired))
  in
  for i = 1 to 10 do
    Engine.at e (Int64.of_int i) (fun () -> fired := i :: !fired)
  done;
  check Alcotest.int "pending before" 210 (Engine.pending e);
  check Alcotest.int "occupancy peak saw the full queue" 210 (Engine.heap_peak e);
  List.iter (Engine.cancel e) victims;
  check Alcotest.int "pending after mass cancel" 10 (Engine.pending e);
  check Alcotest.int "cancelled" 200 (Engine.events_cancelled e);
  ignore (Engine.run e);
  check Alcotest.(list int) "survivors fire in order" (List.init 10 (fun i -> i + 1))
    (List.rev !fired);
  check Alcotest.int "nothing skipped" 0 (Engine.events_skipped e);
  check Alcotest.int64 "clock still reaches the horizon" 1199L (Engine.now e)

let test_cancel_obs_counters () =
  let skipped_json queue =
    let obs = Obs.Registry.create () in
    let e = Engine.create ~obs ~queue () in
    let h = Engine.after_cancellable e 5L (fun () -> ()) in
    Engine.cancel e h;
    ignore (Engine.run e);
    let s = Obs.Json.to_string (Obs.Registry.snapshot obs) in
    let has sub = Str_contains.contains s sub in
    check Alcotest.bool "events_cancelled exported" true
      (has "\"engine.events_cancelled\":{\"type\":\"counter\",\"value\":1}");
    check Alcotest.bool "heap_peak exported" true
      (has "\"engine.heap_peak\":{\"type\":\"gauge\"");
    has "\"engine.events_skipped\":{\"type\":\"counter\",\"value\":1}"
  in
  check Alcotest.bool "events_skipped counts under the heap" true
    (skipped_json Engine.Binary_heap);
  check Alcotest.bool "events_skipped stays zero under the wheel" false
    (skipped_json Engine.Timer_wheel)

(* Regression: with cancellable retry timers the event queue tracks
   in-flight work, not history. The seed engine left every acked IKC
   message's retransmission tick queued for [retry_timeout] cycles, so
   a run of sequential spanning exchanges (the Table 3 microbench
   pattern) kept a backlog proportional to the ops issued; now the ack
   cancels the tick and [pending] must not grow with the op count. *)
let max_pending_over_spanning_exchanges n =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let e = System.engine sys in
  let maxp = ref 0 in
  for _ = 1 to n do
    let sel =
      match System.syscall_sync sys a (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
      with
      | Protocol.R_sel s -> s
      | r -> Alcotest.failf "alloc failed: %a" Protocol.pp_reply r
    in
    let result = ref None in
    System.syscall sys b
      (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel = sel })
      (fun r -> result := Some r);
    while !result = None do
      if Engine.pending e > !maxp then maxp := Engine.pending e;
      ignore (Engine.run ~until:(Int64.add (Engine.now e) 1_000L) e)
    done
  done;
  ignore (Engine.run e);
  (!maxp, Engine.events_cancelled e)

let test_pending_bounded_by_in_flight () =
  let p10, c10 = max_pending_over_spanning_exchanges 10 in
  let p50, c50 = max_pending_over_spanning_exchanges 50 in
  check Alcotest.bool "retry timers are being cancelled" true (c10 > 0 && c50 > c10);
  check Alcotest.bool
    (Printf.sprintf "pending is O(in-flight): %d ops peak %d vs %d ops peak %d" 10 p10 50 p50)
    true
    (p50 <= p10 + 4)

(* Far-apart times exercise the wheel's upper levels: each pop crosses
   several span boundaries and cascades whole slots down, and order —
   including seq order for equal times planted before and after a
   cascade — must survive. *)
let test_wheel_cascade_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note x () = log := x :: !log in
  (* spread over ~2^30 cycles: levels 0-6 all get traffic *)
  let times = [ 3L; 40L; 1_025L; 33_000L; 1_048_577L; 1_073_741_824L ] in
  List.iteri (fun i t -> Engine.at e t (note i)) times;
  (* same-time pair straddling a cascade: scheduled late, fires in seq order *)
  Engine.at e 1_048_577L (note 100);
  ignore (Engine.run ~until:1_000L e);
  check Alcotest.(list int) "low levels drained in order" [ 0; 1 ] (List.rev !log);
  (* scheduling behind the horizon but ahead of the clock still works
     after cascades have advanced the wheel cursor *)
  Engine.at e 1_500L (note 50);
  ignore (Engine.run e);
  check
    Alcotest.(list int)
    "cascaded order, ties in seq order"
    [ 0; 1; 2; 50; 3; 4; 100; 5 ]
    (List.rev !log);
  check Alcotest.int64 "clock at last event" 1_073_741_824L (Engine.now e)

(* Regression (tentpole of the timer-wheel PR): under the heap a
   cancelled timer beyond a bounded run's limit still occupies the
   queue as a dead slot, so the run stops its clock at the limit; the
   wheel unlinks eagerly, and without the shadow dead-times queue it
   judged its queue drained and jumped the clock to [horizon] —
   sliding every later relative schedule by the difference. The
   balance bench caught this via a cancelled retry timer. *)
let test_cancelled_horizon_clock_parity () =
  let clocks queue =
    let e = Engine.create ~queue () in
    let h =
      Engine.after_cancellable e 50_000L (fun () -> Alcotest.fail "cancelled event fired")
    in
    Engine.cancel e h;
    ignore (Engine.run ~until:1_000L e);
    let c1 = Engine.now e in
    ignore (Engine.run ~until:2_000L e);
    let c2 = Engine.now e in
    ignore (Engine.run e);
    (c1, c2, Engine.now e)
  in
  let hc1, hc2, hc3 = clocks Engine.Binary_heap in
  let wc1, wc2, wc3 = clocks Engine.Timer_wheel in
  check Alcotest.int64 "bounded run holds at the limit (heap)" 1_000L hc1;
  check Alcotest.int64 "bounded run holds at the limit (wheel)" 1_000L wc1;
  check Alcotest.int64 "second bounded run (heap)" 2_000L hc2;
  check Alcotest.int64 "second bounded run (wheel)" 2_000L wc2;
  check Alcotest.int64 "drain catches up to the cancelled horizon (heap)" 50_000L hc3;
  check Alcotest.int64 "drain catches up to the cancelled horizon (wheel)" 50_000L wc3

(* Regression (satellite of the timer-wheel PR): a quiescent rewind
   left [flushed_*] at their pre-restore high-water marks, so the next
   [run]'s flush delta went negative and [Totals] silently dropped the
   replayed work. *)
let test_restore_rewinds_flush_marks () =
  let e = Engine.create () in
  for _ = 1 to 2 do
    Engine.after e 10L (fun () -> ())
  done;
  ignore (Engine.run e);
  let snap = Engine.snapshot e in
  (* move on: three more events, flushed into Totals *)
  for _ = 1 to 3 do
    Engine.after e 10L (fun () -> ())
  done;
  ignore (Engine.run e);
  check Alcotest.int "moved on" 5 (Engine.events_processed e);
  Engine.restore e snap;
  check Alcotest.int "rewound" 2 (Engine.events_processed e);
  (* replay the same three events: Totals must count them again *)
  let before = Engine.Totals.processed () in
  for _ = 1 to 3 do
    Engine.after e 10L (fun () -> ())
  done;
  ignore (Engine.run e);
  check Alcotest.int "replayed work reaches Totals" 3 (Engine.Totals.processed () - before)

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

let test_server_fifo () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let log = ref [] in
  Server.submit s ~cost:10L (fun () -> log := ("a", Engine.now e) :: !log);
  Server.submit s ~cost:5L (fun () -> log := ("b", Engine.now e) :: !log);
  ignore (Engine.run e);
  check
    Alcotest.(list (pair string int64))
    "serialised in order"
    [ ("a", 10L); ("b", 15L) ]
    (List.rev !log);
  check Alcotest.int64 "busy cycles" 15L (Server.busy_cycles s);
  check Alcotest.int "completed" 2 (Server.completed s)

let test_server_idle_gap () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let done_at = ref 0L in
  Server.submit s ~cost:10L (fun () -> ());
  ignore (Engine.run e);
  (* Second job arrives after the server went idle. *)
  Engine.after e 100L (fun () -> Server.submit s ~cost:7L (fun () -> done_at := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int64 "starts immediately when idle" 117L !done_at

let test_server_dynamic_cost () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let state = ref 0 in
  let post_ran_at = ref 0L in
  Server.submit_work s (fun () ->
      state := 42;
      (* cost computed from the state change *)
      (Int64.of_int (!state * 2), fun () -> post_ran_at := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int "state changed at start" 42 !state;
  check Alcotest.int64 "post after dynamic cost" 84L !post_ran_at

let test_server_zero_cost () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let ran = ref false in
  Server.submit s ~cost:0L (fun () -> ran := true);
  ignore (Engine.run e);
  check Alcotest.bool "zero-cost job runs" true !ran;
  Alcotest.check_raises "negative" (Invalid_argument "Server.submit: negative cost") (fun () ->
      Server.submit s ~cost:(-1L) (fun () -> ()))

let test_server_queue_stats () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  for _ = 1 to 5 do
    Server.submit s ~cost:10L (fun () -> ())
  done;
  check Alcotest.bool "queue grew" true (Server.max_queue_length s >= 3);
  ignore (Engine.run e);
  check Alcotest.int "drained" 0 (Server.queue_length s);
  check (Alcotest.float 1e-9) "utilisation" 1.0 (Server.utilisation s ~horizon:50L)

let suite =
  [
    Alcotest.test_case "engine time order" `Quick test_engine_order;
    Alcotest.test_case "engine same-time FIFO" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine bounded run" `Quick test_engine_until;
    Alcotest.test_case "engine bounded run, empty window" `Quick test_engine_until_no_event;
    Alcotest.test_case "engine bounded run, drained queue" `Quick test_engine_until_drained;
    Alcotest.test_case "engine repeated bounded runs" `Quick test_engine_until_repeated;
    Alcotest.test_case "engine bounded run, same-time events" `Quick test_engine_until_same_time;
    Alcotest.test_case "engine rejects the past" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine counters" `Quick test_engine_counts;
    Alcotest.test_case "cancel before fire (heap oracle)" `Quick test_cancel_before_fire;
    Alcotest.test_case "cancel before fire (wheel)" `Quick test_cancel_before_fire_wheel;
    Alcotest.test_case "cancel after fire / double cancel" `Quick test_cancel_after_fire_and_double;
    Alcotest.test_case "cancel interleaved with bounded runs" `Quick
      test_cancel_interleaved_with_until;
    Alcotest.test_case "mass cancel compacts the heap" `Quick test_cancel_compaction;
    Alcotest.test_case "mass cancel unlinks eagerly (wheel)" `Quick test_cancel_mass_wheel;
    Alcotest.test_case "wheel cascade preserves order" `Quick test_wheel_cascade_order;
    Alcotest.test_case "cancelled horizon holds the clock (both backends)" `Quick
      test_cancelled_horizon_clock_parity;
    Alcotest.test_case "restore rewinds the Totals flush marks" `Quick
      test_restore_rewinds_flush_marks;
    Alcotest.test_case "cancellation counters exported to obs" `Quick test_cancel_obs_counters;
    Alcotest.test_case "pending bounded by in-flight work" `Quick
      test_pending_bounded_by_in_flight;
    Alcotest.test_case "server FIFO" `Quick test_server_fifo;
    Alcotest.test_case "server idle gap" `Quick test_server_idle_gap;
    Alcotest.test_case "server dynamic cost" `Quick test_server_dynamic_cost;
    Alcotest.test_case "server zero cost" `Quick test_server_zero_cost;
    Alcotest.test_case "server queue stats" `Quick test_server_queue_stats;
  ]
