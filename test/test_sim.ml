(* Tests for the discrete-event engine and the FIFO server. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.after e 10L (fun () -> log := "b" :: !log);
  Engine.after e 5L (fun () -> log := "a" :: !log);
  Engine.after e 20L (fun () -> log := "c" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int64 "clock at last event" 20L (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.after e 10L (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  check Alcotest.(list int) "scheduling order at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0L in
  Engine.after e 10L (fun () -> Engine.after e 15L (fun () -> fired := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int64 "nested absolute time" 25L !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter (fun d -> Engine.after e d (fun () -> incr count)) [ 5L; 15L; 25L ];
  let n = Engine.run ~until:20L e in
  check Alcotest.int "events within bound" 2 n;
  check Alcotest.int64 "clock clamped" 20L (Engine.now e);
  check Alcotest.int "pending remains" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "all fired" 3 !count

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.after e 10L (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past") (fun () ->
          Engine.at e 5L (fun () -> ())));
  ignore (Engine.run e);
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.after: negative delay")
    (fun () -> Engine.after e (-1L) (fun () -> ()))

(* A bounded run with every event beyond the limit still advances the
   clock to the limit — and never rewinds it on a later, lower bound. *)
let test_engine_until_no_event () =
  let e = Engine.create () in
  Engine.after e 100L (fun () -> ());
  let n = Engine.run ~until:40L e in
  check Alcotest.int "nothing fired" 0 n;
  check Alcotest.int64 "clock at the limit" 40L (Engine.now e);
  (* A second bound below the current clock must not rewind time. *)
  let n = Engine.run ~until:10L e in
  check Alcotest.int "still nothing fired" 0 n;
  check Alcotest.int64 "clock never rewinds" 40L (Engine.now e);
  check Alcotest.int "event still queued" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int64 "event fires at its time" 100L (Engine.now e)

(* The other exit path: the queue drains *before* the bound. The clock
   must still advance to the bound, so quiescent periods pass time. *)
let test_engine_until_drained () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.after e 10L (fun () -> incr fired);
  let n = Engine.run ~until:500L e in
  check Alcotest.int "event fired" 1 n;
  check Alcotest.int "callback ran" 1 !fired;
  check Alcotest.int64 "clock advanced to the bound" 500L (Engine.now e);
  (* Entirely empty queue: a bounded run is pure time passing. *)
  ignore (Engine.run ~until:900L e);
  check Alcotest.int64 "empty run still advances" 900L (Engine.now e);
  (* ... but an unbounded run of an empty queue leaves the clock put. *)
  ignore (Engine.run e);
  check Alcotest.int64 "unbounded drain keeps clock" 900L (Engine.now e);
  (* And a bound in the past never rewinds. *)
  ignore (Engine.run ~until:100L e);
  check Alcotest.int64 "no rewind" 900L (Engine.now e)

(* Repeated bounded runs make progress and eventually drain. *)
let test_engine_until_repeated () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter (fun d -> Engine.after e d (fun () -> incr fired)) [ 10L; 30L; 50L; 70L ];
  let steps = ref 0 in
  while Engine.pending e > 0 do
    incr steps;
    if !steps > 100 then Alcotest.fail "bounded runs stopped making progress";
    ignore (Engine.run ~until:(Int64.add (Engine.now e) 25L) e)
  done;
  check Alcotest.int "all fired" 4 !fired;
  (* The final bounded run drains the queue before its bound, and the
     clock still advances to the bound (75), not the last event. *)
  check Alcotest.int64 "clock at final bound" 75L (Engine.now e)

(* Same-time events straddling the bound fire together, in seq order. *)
let test_engine_until_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.after e 20L (fun () -> log := i :: !log)
  done;
  Engine.after e 21L (fun () -> log := 99 :: !log);
  ignore (Engine.run ~until:20L e);
  check Alcotest.(list int) "all of time 20 fired in order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int "time 21 still pending" 1 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.(list int) "straggler after" [ 1; 2; 3; 99 ] (List.rev !log)

let test_engine_counts () =
  let e = Engine.create () in
  Engine.after e 1L (fun () -> ());
  Engine.after e 2L (fun () -> ());
  ignore (Engine.run e);
  check Alcotest.int "processed" 2 (Engine.events_processed e)

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

let test_server_fifo () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let log = ref [] in
  Server.submit s ~cost:10L (fun () -> log := ("a", Engine.now e) :: !log);
  Server.submit s ~cost:5L (fun () -> log := ("b", Engine.now e) :: !log);
  ignore (Engine.run e);
  check
    Alcotest.(list (pair string int64))
    "serialised in order"
    [ ("a", 10L); ("b", 15L) ]
    (List.rev !log);
  check Alcotest.int64 "busy cycles" 15L (Server.busy_cycles s);
  check Alcotest.int "completed" 2 (Server.completed s)

let test_server_idle_gap () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let done_at = ref 0L in
  Server.submit s ~cost:10L (fun () -> ());
  ignore (Engine.run e);
  (* Second job arrives after the server went idle. *)
  Engine.after e 100L (fun () -> Server.submit s ~cost:7L (fun () -> done_at := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int64 "starts immediately when idle" 117L !done_at

let test_server_dynamic_cost () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let state = ref 0 in
  let post_ran_at = ref 0L in
  Server.submit_work s (fun () ->
      state := 42;
      (* cost computed from the state change *)
      (Int64.of_int (!state * 2), fun () -> post_ran_at := Engine.now e));
  ignore (Engine.run e);
  check Alcotest.int "state changed at start" 42 !state;
  check Alcotest.int64 "post after dynamic cost" 84L !post_ran_at

let test_server_zero_cost () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  let ran = ref false in
  Server.submit s ~cost:0L (fun () -> ran := true);
  ignore (Engine.run e);
  check Alcotest.bool "zero-cost job runs" true !ran;
  Alcotest.check_raises "negative" (Invalid_argument "Server.submit: negative cost") (fun () ->
      Server.submit s ~cost:(-1L) (fun () -> ()))

let test_server_queue_stats () =
  let e = Engine.create () in
  let s = Server.create e ~name:"srv" in
  for _ = 1 to 5 do
    Server.submit s ~cost:10L (fun () -> ())
  done;
  check Alcotest.bool "queue grew" true (Server.max_queue_length s >= 3);
  ignore (Engine.run e);
  check Alcotest.int "drained" 0 (Server.queue_length s);
  check (Alcotest.float 1e-9) "utilisation" 1.0 (Server.utilisation s ~horizon:50L)

let suite =
  [
    Alcotest.test_case "engine time order" `Quick test_engine_order;
    Alcotest.test_case "engine same-time FIFO" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine bounded run" `Quick test_engine_until;
    Alcotest.test_case "engine bounded run, empty window" `Quick test_engine_until_no_event;
    Alcotest.test_case "engine bounded run, drained queue" `Quick test_engine_until_drained;
    Alcotest.test_case "engine repeated bounded runs" `Quick test_engine_until_repeated;
    Alcotest.test_case "engine bounded run, same-time events" `Quick test_engine_until_same_time;
    Alcotest.test_case "engine rejects the past" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine counters" `Quick test_engine_counts;
    Alcotest.test_case "server FIFO" `Quick test_server_fifo;
    Alcotest.test_case "server idle gap" `Quick test_server_idle_gap;
    Alcotest.test_case "server dynamic cost" `Quick test_server_dynamic_cost;
    Alcotest.test_case "server zero cost" `Quick test_server_zero_cost;
    Alcotest.test_case "server queue stats" `Quick test_server_queue_stats;
  ]
