(* Smoke gate for the engine queue-backend microbenchmark, run from
   the [engine-smoke] dune alias (hooked into [dune runtest]). Runs
   the scaled-down preset and asserts only that it completes with a
   sample per (size, op, backend) cell and emits valid, well-shaped
   JSON — never a timing threshold, so CI stays deterministic on any
   host. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let ss = Enginebench.samples ~preset:Enginebench.Smoke () in
  (* 2 sizes x 3 ops x 2 backends *)
  check "every cell measured" (List.length ss = 12);
  let open Enginebench in
  List.iter
    (fun op ->
      List.iter
        (fun backend ->
          check
            (Printf.sprintf "%s/%s measured at both sizes" op backend)
            (List.length
               (List.filter (fun s -> s.s_op = op && s.s_backend = backend) ss)
            = 2))
        [ "heap"; "wheel" ])
    [ "schedule"; "cancel"; "drain" ];
  List.iter
    (fun s ->
      let name = Printf.sprintf "%s/%s/%d" s.s_op s.s_backend s.s_pending in
      check (name ^ ": wall time is non-negative") (s.s_wall_s >= 0.0);
      check (name ^ ": throughput is non-negative") (s.s_ops_per_s >= 0.0))
    ss;
  let doc = Obs.Json.to_string (Enginebench.json ss) in
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-engine-1\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [ "\"backend\""; "\"op\""; "\"pending\""; "\"wall_s\""; "\"ops_per_s\"" ];
  if !failed then exit 1;
  print_endline "engine-smoke: OK"
