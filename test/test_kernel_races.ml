(* Race and failure-injection tests for the distributed protocols:
   the remaining Table 2 interference cases, mid-flight deaths,
   delegate aborts, and determinism. *)

open Semperos

let check = Alcotest.check

let reply_t = Alcotest.testable Protocol.pp_reply ( = )

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let make ?(kernels = 2) ?(pes = 6) () =
  System.create (System.config ~kernels ~user_pes_per_kernel:pes ())

let alloc sys vpe =
  sel_of (System.syscall_sync sys vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))

let total_caps sys =
  List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)

let run_for sys cycles = ignore (System.run ~until:(Int64.add (System.now sys) cycles) sys)

(* Table 2 "Invalid": the delegated capability is revoked while the
   two-way handshake is in flight. The receiver must never end up with
   a live capability. *)
let test_delegate_aborted_by_revoke () =
  (* Try a range of revoke injection times so every handshake stage is
     hit at least once. *)
  List.iter
    (fun inject_after ->
      let sys = make () in
      let owner = System.spawn_vpe sys ~kernel:0 in
      let middle = System.spawn_vpe sys ~kernel:0 in
      let receiver = System.spawn_vpe sys ~kernel:1 in
      let root = alloc sys owner in
      let mid_sel =
        sel_of
          (System.syscall_sync sys middle
             (Protocol.Sys_obtain_from { donor_vpe = owner.Vpe.id; donor_sel = root }))
      in
      (* [middle] starts delegating its capability across kernels... *)
      let delegate_result = ref None in
      System.syscall sys middle
        (Protocol.Sys_delegate_to { recv_vpe = receiver.Vpe.id; sel = mid_sel })
        (fun r -> delegate_result := Some r);
      run_for sys inject_after;
      (* ... while [owner] revokes the whole tree. *)
      let revoke_result = ref None in
      System.syscall sys owner (Protocol.Sys_revoke { sel = root; own = true }) (fun r ->
          revoke_result := Some r);
      ignore (System.run sys);
      check (Alcotest.option reply_t)
        (Printf.sprintf "revoke completes (inject %Ld)" inject_after)
        (Some Protocol.R_ok) !revoke_result;
      (match !delegate_result with
      | Some (Protocol.R_ok | Protocol.R_err (Protocol.E_in_revocation | Protocol.E_no_such_cap))
        ->
        (* Either the delegate won the race (and the revoke then swept
           the receiver's copy too) or it was aborted. *)
        ()
      | Some r -> Alcotest.failf "delegate (inject %Ld): %a" inject_after Protocol.pp_reply r
      | None -> Alcotest.fail "delegate never completed");
      check Alcotest.int
        (Printf.sprintf "nothing survives (inject %Ld)" inject_after)
        0 (total_caps sys);
      check Alcotest.int "receiver holds nothing" 0 (Capspace.count receiver.Vpe.capspace);
      Audit.check sys)
    [ 0L; 700L; 1400L; 2100L; 2800L; 3500L; 4200L; 6000L ]

(* The receiver dies while the delegate handshake is parked between
   reply and ack: the orphan record at its kernel must be dropped. *)
let test_delegate_receiver_dies () =
  List.iter
    (fun inject_after ->
      let sys = make () in
      let sender = System.spawn_vpe sys ~kernel:0 in
      let receiver = System.spawn_vpe sys ~kernel:1 in
      let sel = alloc sys sender in
      let delegate_result = ref None in
      System.syscall sys sender
        (Protocol.Sys_delegate_to { recv_vpe = receiver.Vpe.id; sel })
        (fun r -> delegate_result := Some r);
      run_for sys inject_after;
      receiver.Vpe.state <- Vpe.Exited;
      ignore (System.run sys);
      (* Whatever the outcome, only the sender's capability lives, with
         no children, and the links are globally consistent. *)
      check Alcotest.int
        (Printf.sprintf "one live cap (inject %Ld)" inject_after)
        1 (total_caps sys);
      let key = Option.get (Capspace.find sender.Vpe.capspace sel) in
      check Alcotest.int "no dangling child" 0
        (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) key);
      Audit.check sys)
    [ 0L; 900L; 1800L; 2700L; 3600L; 4500L ]

(* The client dies while a cross-group session open is in flight: the
   service capability must not keep an orphaned session child. *)
let test_session_client_dies () =
  let sys = make () in
  let srv_vpe = System.spawn_vpe sys ~kernel:0 in
  Kernel.register_service_handler (System.kernel sys 0) ~name:"svc" (fun req k ->
      match req with
      | Protocol.Srq_open_session _ -> k (Protocol.Srs_session { ident = 0 })
      | Protocol.Srq_obtain _ | Protocol.Srq_delegate _ ->
        k (Protocol.Srs_reject Protocol.E_invalid));
  (match System.syscall_sync sys srv_vpe (Protocol.Sys_create_srv { name = "svc" }) with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "create_srv: %a" Protocol.pp_reply r);
  ignore (System.run sys);
  let client = System.spawn_vpe sys ~kernel:1 in
  System.syscall sys client (Protocol.Sys_open_session { service = "svc" }) (fun _ -> ());
  run_for sys 2_500L;
  client.Vpe.state <- Vpe.Exited;
  ignore (System.run sys);
  (* Only the service capability lives; its child list is clean. *)
  let srv_key = Option.get (Kernel.lookup_service (System.kernel sys 0) "svc") in
  check Alcotest.int "no orphan session" 0
    (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) srv_key);
  Audit.check sys

(* Concurrent revokes racing from both ends of a spanning chain. *)
let test_race_revokes_both_ends () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let a = alloc sys v1 in
  let b =
    sel_of
      (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a }))
  in
  let c =
    sel_of
      (System.syscall_sync sys v1 (Protocol.Sys_obtain_from { donor_vpe = v2.Vpe.id; donor_sel = b }))
  in
  ignore c;
  let r1 = ref None and r2 = ref None in
  System.syscall sys v1 (Protocol.Sys_revoke { sel = a; own = true }) (fun r -> r1 := Some r);
  System.syscall sys v2 (Protocol.Sys_revoke { sel = b; own = true }) (fun r -> r2 := Some r);
  ignore (System.run sys);
  check Alcotest.bool "both acknowledged" true (!r1 <> None && !r2 <> None);
  check Alcotest.int "chain gone" 0 (total_caps sys);
  Audit.check sys

(* Exchange arriving for a VPE that exits in the same instant. *)
let test_exchange_vs_exit () =
  let sys = make () in
  let donor = System.spawn_vpe sys ~kernel:0 in
  let taker = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys donor in
  let obtain_result = ref None in
  System.syscall sys taker (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel = sel })
    (fun r -> obtain_result := Some r);
  run_for sys 1_000L;
  (* The donor exits while the obtain request is in flight. *)
  let exit_result = ref None in
  System.syscall sys donor Protocol.Sys_exit (fun r -> exit_result := Some r);
  ignore (System.run sys);
  check (Alcotest.option reply_t) "exit completes" (Some Protocol.R_ok) !exit_result;
  (* The obtain either failed cleanly or its result was swept by the
     exit's revocation. *)
  check Alcotest.int "no capability leaked" 0 (total_caps sys);
  Audit.check sys

(* Determinism: identical configurations produce bit-identical results. *)
let test_determinism () =
  let run () =
    let o = Experiment.run (Experiment.config ~kernels:4 ~services:4 ~instances:16 Workloads.leveldb) in
    (o.Experiment.runtimes, o.Experiment.cap_ops, o.Experiment.max_runtime)
  in
  let a = run () and b = run () in
  check Alcotest.bool "bit-identical reruns" true (a = b)

(* Obtain of an obtained capability: grandchildren across three kernels
   with interleaved partial revocation. *)
let test_partial_revoke_deep_tree () =
  let sys = make ~kernels:3 ~pes:8 () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let v3 = System.spawn_vpe sys ~kernel:2 in
  let a = alloc sys v1 in
  let b =
    sel_of
      (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a }))
  in
  let _c =
    sel_of
      (System.syscall_sync sys v3 (Protocol.Sys_obtain_from { donor_vpe = v2.Vpe.id; donor_sel = b }))
  in
  (* Revoke only the middle VPE's subtree, children-only: v2 keeps its
     capability, v3 loses its copy, v1 untouched. *)
  (match System.syscall_sync sys v2 (Protocol.Sys_revoke { sel = b; own = false }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
  check Alcotest.int "v3 lost its copy" 0 (Capspace.count v3.Vpe.capspace);
  check Alcotest.int "v2 keeps its capability" 1 (Capspace.count v2.Vpe.capspace);
  check Alcotest.int "v1 untouched" 1 (Capspace.count v1.Vpe.capspace);
  check Alcotest.int "two caps remain" 2 (total_caps sys);
  Audit.check sys;
  (* Now the full revoke sweeps the remains. *)
  (match System.syscall_sync sys v1 (Protocol.Sys_revoke { sel = a; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
  check Alcotest.int "all gone" 0 (total_caps sys);
  Audit.check sys

(* ------------------------------------------------------------------ *)
(* Redelivery regressions: the fault injector can deliver any op-tagged
   inter-kernel message twice, so a duplicate must be detected and
   absorbed — never re-executed. These tests replay the duplicate by
   hand. Requester kernels allocate ops as [kernel_id * 0x1000000 + n]
   from a single counter that also numbers syscall trace spans, so every
   syscall consumes one op before any remote op it triggers. *)

let dup_ikc sys k = (Kernel.stats (System.kernel sys k)).Kernel.dup_ikc

(* A redelivered obtain request must not create a second child
   capability (Mapdb.add_child would raise on the duplicate). *)
let test_redelivered_obtain_req () =
  let sys = make () in
  let donor = System.spawn_vpe sys ~kernel:0 in
  let taker = System.spawn_vpe sys ~kernel:1 in
  let donor_sel = alloc sys donor in
  (match
     System.syscall_sync sys taker
       (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel })
   with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "obtain: %a" Protocol.pp_reply r);
  check Alcotest.int "parent + child" 2 (total_caps sys);
  (* Kernel 1's obtain syscall consumed op 0x1000000 for its span and
     op 0x1000001 for the remote obtain; replay the request at the
     donor's kernel as the fault injector's duplicate would. *)
  Kernel.deliver_ikc (System.kernel sys 0) ~src_kernel:1
    (Protocol.Ik_obtain_req
       {
         op = 0x1000001;
         src_kernel = 1;
         obj_reserved = 999;
         client_pe = taker.Vpe.pe;
         client_vpe = taker.Vpe.id;
         donor = Protocol.Direct { donor_vpe = donor.Vpe.id; donor_sel };
       });
  ignore (System.run sys);
  check Alcotest.bool "duplicate detected" true (dup_ikc sys 0 >= 1);
  check Alcotest.int "still one child" 2 (total_caps sys);
  check Alcotest.int "taker still holds one selector" 1 (Capspace.count taker.Vpe.capspace);
  let key = Option.get (Capspace.find donor.Vpe.capspace donor_sel) in
  check Alcotest.int "donor cap has one child" 1
    (Mapdb.child_count (Kernel.mapdb (System.kernel sys 0)) key);
  Audit.check sys

(* A redelivered delegate ack must not double-insert the child or
   release a second protocol thread. *)
let test_redelivered_delegate_ack () =
  let sys = make () in
  let sender = System.spawn_vpe sys ~kernel:0 in
  let receiver = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys sender in
  (match
     System.syscall_sync sys sender
       (Protocol.Sys_delegate_to { recv_vpe = receiver.Vpe.id; sel })
   with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "delegate: %a" Protocol.pp_reply r);
  ignore (System.run sys);
  check Alcotest.int "parent + delegated child" 2 (total_caps sys);
  let child_key =
    let keys = ref [] in
    Capspace.iter (fun _ key -> keys := key :: !keys) receiver.Vpe.capspace;
    match !keys with
    | [ k ] -> k
    | l -> Alcotest.failf "receiver holds %d capabilities" (List.length l)
  in
  let idle_threads = Thread_pool.in_use (Kernel.threads (System.kernel sys 1)) in
  (* Kernel 0 drove the delegate with op 2 (after the two syscall
     spans); replay the commit ack at the receiver's kernel. *)
  Kernel.deliver_ikc (System.kernel sys 1) ~src_kernel:0
    (Protocol.Ik_delegate_ack { op = 2; child_key; commit = true });
  ignore (System.run sys);
  check Alcotest.bool "duplicate detected" true (dup_ikc sys 1 >= 1);
  check Alcotest.int "no double insert" 2 (total_caps sys);
  check Alcotest.int "receiver still holds one selector" 1 (Capspace.count receiver.Vpe.capspace);
  check Alcotest.int "thread pool untouched" idle_threads
    (Thread_pool.in_use (Kernel.threads (System.kernel sys 1)));
  Audit.check sys;
  (* The machinery still works after the duplicate: a fresh exchange and
     a full revoke complete normally. *)
  (match System.syscall_sync sys sender (Protocol.Sys_revoke { sel; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke after dup ack: %a" Protocol.pp_reply r);
  check Alcotest.int "revoke sweeps both" 0 (total_caps sys);
  Audit.check sys

(* A redelivered revoke request must not resurrect or double-free
   anything: the responder answers from its completed-op cache. *)
let test_redelivered_revoke_req () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let a = alloc sys v1 in
  let root_key = Option.get (Capspace.find v1.Vpe.capspace a) in
  (match
     System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a })
   with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "obtain: %a" Protocol.pp_reply r);
  (match System.syscall_sync sys v1 (Protocol.Sys_revoke { sel = a; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
  check Alcotest.int "all revoked" 0 (total_caps sys);
  (* Kernel 0 consumed op 0 for the alloc syscall span, op 1 for the
     revoke syscall span, op 2 for the revoke operation itself, and op 3
     for the revoke message; replay the message at kernel 1. *)
  Kernel.deliver_ikc (System.kernel sys 1) ~src_kernel:0
    (Protocol.Ik_revoke_req { op = 3; src_kernel = 0; keys = [ root_key ] });
  ignore (System.run sys);
  check Alcotest.bool "duplicate detected" true (dup_ikc sys 1 >= 1);
  check Alcotest.int "nothing resurrected" 0 (total_caps sys);
  check Alcotest.int "both capspaces empty" 0
    (Capspace.count v1.Vpe.capspace + Capspace.count v2.Vpe.capspace);
  Audit.check sys

(* The idempotency caches (remote op results, delegate acks) must not
   grow without bound: entries older than the retry window are evicted
   lazily on the next syscall or IKC delivery. *)
let test_idempotency_cache_eviction () =
  let sys = make () in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  (* Cross-kernel traffic in both directions populates both kernels'
     caches: obtains record remote-op results, delegates record acks. *)
  for _ = 1 to 4 do
    let a = alloc sys v1 in
    (match
       System.syscall_sync sys v2
         (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a })
     with
    | Protocol.R_sel _ -> ()
    | r -> Alcotest.failf "obtain: %a" Protocol.pp_reply r);
    match
      System.syscall_sync sys v1 (Protocol.Sys_delegate_to { recv_vpe = v2.Vpe.id; sel = a })
    with
    | Protocol.R_ok -> ()
    | r -> Alcotest.failf "delegate: %a" Protocol.pp_reply r
  done;
  let filled =
    List.fold_left
      (fun acc k ->
        let r, a = Kernel.idempotency_cache_sizes k in
        acc + r + a)
      0 (System.kernels sys)
  in
  check Alcotest.bool "caches populated by cross-kernel traffic" true (filled > 0);
  (* Let the retry window (the full exponential-backoff schedule plus
     slack, ~27.2M cycles at the default cost table) expire, then touch
     each kernel: eviction is activity-driven, so the next syscall
     drains the expired entries. *)
  run_for sys 30_000_000L;
  ignore (alloc sys v1);
  ignore (alloc sys v2);
  List.iter
    (fun k ->
      let r, a = Kernel.idempotency_cache_sizes k in
      check Alcotest.int "remote-op cache drained" 0 r;
      check Alcotest.int "ack cache drained" 0 a)
    (System.kernels sys);
  Audit.check sys

(* When every retransmission is lost, the retry loop must give up after
   retry_max attempts and fail the syscall with E_timeout instead of
   leaving it pending forever. *)
let test_retry_exhaustion_times_out () =
  let drop_everything =
    {
      Fault.seed = 7L;
      delay_prob = 0.0;
      max_delay = 0;
      dup_prob = 0.0;
      max_dup_delay = 0;
      drop_prob = 1.0;
      max_drops_per_pair = max_int;
      max_drops_total = max_int;
      stall_prob = 0.0;
      max_stall = 0;
    }
  in
  let sys =
    System.create
      (System.config ~kernels:2 ~user_pes_per_kernel:4 ~fault:drop_everything ())
  in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let a = alloc sys v1 in
  let result = ref None in
  System.syscall sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a })
    (fun r -> result := Some r);
  ignore (System.run sys);
  check (Alcotest.option reply_t) "syscall fails explicitly"
    (Some (Protocol.R_err Protocol.E_timeout))
    !result;
  let exhausted =
    List.fold_left
      (fun acc k -> acc + (Kernel.stats k).Kernel.retry_exhausted)
      0 (System.kernels sys)
  in
  check Alcotest.bool "exhaustion counted" true (exhausted >= 1)

let suite =
  [
    Alcotest.test_case "delegate aborted by revoke (Invalid)" `Quick
      test_delegate_aborted_by_revoke;
    Alcotest.test_case "delegate receiver dies (orphan)" `Quick test_delegate_receiver_dies;
    Alcotest.test_case "session client dies (orphan)" `Quick test_session_client_dies;
    Alcotest.test_case "revokes race from both ends" `Quick test_race_revokes_both_ends;
    Alcotest.test_case "exchange vs exit" `Quick test_exchange_vs_exit;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "partial revoke of a deep tree" `Quick test_partial_revoke_deep_tree;
    Alcotest.test_case "redelivered obtain request" `Quick test_redelivered_obtain_req;
    Alcotest.test_case "redelivered delegate ack" `Quick test_redelivered_delegate_ack;
    Alcotest.test_case "redelivered revoke request" `Quick test_redelivered_revoke_req;
    Alcotest.test_case "idempotency caches evict after the retry window" `Quick
      test_idempotency_cache_eviction;
    Alcotest.test_case "retry exhaustion fails with E_timeout" `Quick
      test_retry_exhaustion_times_out;
  ]
