(* Smoke gate for the elastic fleet, run from the [fleet-smoke] dune
   alias (hooked into [dune runtest]). Runs the smoke preset of the
   autoscale benchmark end to end and asserts the contract the fleet
   must keep — the fleet actually scales out under the surge and
   settles back at the boot size, every transition's safety checks and
   the final capability audit come back clean, and the JSON report is
   well shaped — without pinning any host-dependent number. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let cfg = Fleetbench.config_of_preset Fleetbench.Smoke in
  let fixed = Fleetbench.run ~elastic:false cfg in
  let elastic = Fleetbench.run cfg in
  check "fixed: audit clean" (fixed.Fleetbench.audit_errors = []);
  check "fixed: no transitions" (fixed.Fleetbench.transitions = []);
  check "fixed: stays at boot size" (fixed.Fleetbench.peak_active = cfg.Fleetbench.boot);
  check "elastic: audit clean" (elastic.Fleetbench.audit_errors = []);
  check "elastic: transition checks clean" (elastic.Fleetbench.transition_errors = []);
  check "elastic: scaled out under the surge"
    (elastic.Fleetbench.peak_active > cfg.Fleetbench.boot);
  check "elastic: settled back at boot size"
    (elastic.Fleetbench.final_active = cfg.Fleetbench.boot);
  check "elastic: both joins and drains ran"
    (List.exists (fun t -> t.Fleet.Auto.t_kind = `Join) elastic.Fleetbench.transitions
    && List.exists (fun t -> t.Fleet.Auto.t_kind = `Drain) elastic.Fleetbench.transitions);
  check "elastic: every transition finished"
    (List.for_all
       (fun t -> t.Fleet.Auto.t_finish <> None)
       elastic.Fleetbench.transitions);
  check "elastic: stall bound is finite and positive"
    (elastic.Fleetbench.max_wave > 0L);
  (* The written report must be valid JSON naming its schema. *)
  let path = Filename.temp_file "fleet_smoke" ".json" in
  Fleetbench.bench ~preset:Fleetbench.Smoke ~path ();
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-fleet-1\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [
      "\"fixed\""; "\"elastic\""; "\"transitions\""; "\"peak_active\"";
      "\"max_wave_cycles\""; "\"surge_speedup\"";
    ];
  if !failed then exit 1;
  print_endline "fleet-smoke: OK"
