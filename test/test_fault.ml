(* Fault-injection properties: the distributed capability protocols
   must give the same answers under message delay, duplication, bounded
   drops, and kernel stalls as they do on a perfect fabric. Each fault
   class gets its own property, then the chaos profile combines them,
   then the fuzzer's own oracles run as a property. Finally a "teeth"
   test disables retransmission and checks the oracles really can
   fail. *)

open Semperos

let qcheck = QCheck_alcotest.to_alcotest

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

(* Build a cross-kernel sharing tree under an injected fault plan, then
   revoke the root. Whatever the plan did to the messages, the revoke
   must report R_ok, the audit must pass, and shutdown must reclaim
   every capability. [post] runs on the drained system just before
   shutdown, for tests that inspect kernel counters. *)
let exercise ?(post = fun _ -> ()) profile seed =
  let sys =
    System.create (System.config ~kernels:3 ~user_pes_per_kernel:5 ~fault:profile ())
  in
  let rng = Rng.create (Int64.of_int seed) in
  let root = System.spawn_vpe sys ~kernel:0 in
  let sel =
    sel_of
      (System.syscall_sync sys root (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
  in
  let holders = ref [ (root, sel) ] in
  for _ = 1 to 12 do
    let donor, donor_sel = List.nth !holders (Rng.int rng (List.length !holders)) in
    let kernel =
      let open_groups = List.filter (fun k -> System.free_pes sys ~kernel:k > 0) [ 0; 1; 2 ] in
      List.nth open_groups (Rng.int rng (List.length open_groups))
    in
    let v = System.spawn_vpe sys ~kernel in
    match
      System.syscall_sync sys v (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel })
    with
    | Protocol.R_sel s -> holders := (v, s) :: !holders
    | Protocol.R_err e -> Alcotest.failf "obtain failed under faults: %a" Protocol.pp_error e
    | r -> Alcotest.failf "obtain: unexpected %a" Protocol.pp_reply r
  done;
  (match System.syscall_sync sys root (Protocol.Sys_revoke { sel; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke under faults: %a" Protocol.pp_reply r);
  ignore (System.run sys);
  Audit.check sys;
  post sys;
  Alcotest.(check int) "clean shutdown" 0 (System.shutdown sys);
  true

let per_class name profile_of =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed -> exercise (profile_of ~seed:(Int64.of_int seed)) seed)

let prop_delay = per_class "revoke ok under delays" Fault.delay_only
let prop_dup = per_class "revoke ok under duplicates" Fault.duplicate_only
let prop_drop = per_class "revoke ok under drops" Fault.drop_only
let prop_stall = per_class "revoke ok under stalls" Fault.stall_only
let prop_chaos = per_class "revoke ok under all fault classes" Fault.chaos

(* Regression for the §5.1 over-refund clamp: under a duplicate-heavy
   plan, receivers return credit for redelivered requests, so the
   sender banks more refunds than it spent. The clamp must hold every
   window inside [0, max_inflight] and count the discarded refunds —
   before it, the windows grew without bound. *)
let test_overrefund_clamped () =
  let discarded = ref 0 in
  List.iter
    (fun seed ->
      ignore
        (exercise
           ~post:(fun sys ->
             List.iter
               (fun k ->
                 List.iter
                   (fun (peer, credits) ->
                     if credits < 0 || credits > Cost.max_inflight then
                       Alcotest.failf "kernel %d credit window to peer %d is %d, outside [0, %d]"
                         (Kernel.id k) peer credits Cost.max_inflight)
                   (Kernel.credit_windows k);
                 discarded := !discarded + (Kernel.stats k).Kernel.credit_overrefund)
               (System.kernels sys))
           (Fault.duplicate_only ~seed:(Int64.of_int seed))
           seed))
    [ 3; 7; 19; 31; 57; 91 ];
  Alcotest.(check bool) "duplicate refunds were discarded at the cap" true (!discarded > 0)

(* Children-only spanning revokes unlink the surviving root's remote
   children via [Ik_remove_child]. Now that the unlink is op-tagged and
   retried, drop plans may target it; the audit must stay clean anyway.
   The phase-delta drop count proves the sweep traffic really was
   lost (the revoke phase is mostly unlink messages). *)
let test_remove_child_drop_recovery () =
  let sweep_drops = ref 0 in
  List.iter
    (fun seed ->
      let profile =
        {
          Fault.quiet with
          seed = Int64.of_int seed;
          drop_prob = 0.3;
          max_drops_per_pair = 8;
          max_drops_total = 64;
        }
      in
      let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ~fault:profile ()) in
      let donor = System.spawn_vpe sys ~kernel:0 in
      let sel =
        sel_of
          (System.syscall_sync sys donor
             (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))
      in
      for _ = 1 to 4 do
        let v = System.spawn_vpe sys ~kernel:1 in
        match
          System.syscall_sync sys v
            (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel = sel })
        with
        | Protocol.R_sel _ -> ()
        | r -> Alcotest.failf "obtain under drops: %a" Protocol.pp_reply r
      done;
      let drops () =
        match System.fault_plan sys with
        | Some p -> (Fault.stats p).Fault.drops
        | None -> 0
      in
      let before = drops () in
      (match System.syscall_sync sys donor (Protocol.Sys_revoke { sel; own = false }) with
      | Protocol.R_ok -> ()
      | r -> Alcotest.failf "children-only revoke under drops: %a" Protocol.pp_reply r);
      ignore (System.run sys);
      sweep_drops := !sweep_drops + (drops () - before);
      Audit.check sys;
      (match System.syscall_sync sys donor (Protocol.Sys_revoke { sel; own = true }) with
      | Protocol.R_ok -> ()
      | r -> Alcotest.failf "final revoke: %a" Protocol.pp_reply r);
      ignore (System.run sys);
      Audit.check sys;
      Alcotest.(check int) "clean shutdown" 0 (System.shutdown sys))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.(check bool) "revoke-phase messages were actually dropped" true (!sweep_drops > 0)

(* Service announcements are the first droppable traffic each fresh
   kernel pair sees, so a drop-everything plan deterministically kills
   every announcement (twice, with the retries). They must be
   retransmitted until acked: the directory still converges on every
   kernel and a remote client can open a session. *)
let test_srv_announce_drop_recovery () =
  List.iter
    (fun seed ->
      let profile =
        {
          Fault.quiet with
          seed = Int64.of_int seed;
          drop_prob = 1.0;
          max_drops_per_pair = 2;
          max_drops_total = 12;
        }
      in
      let sys = System.create (System.config ~kernels:4 ~user_pes_per_kernel:3 ~fault:profile ()) in
      let srv_vpe = System.spawn_vpe sys ~kernel:0 in
      Kernel.register_service_handler (System.kernel sys 0) ~name:"echo" (fun _req k ->
          k (Protocol.Srs_session { ident = 7 }));
      (match System.syscall_sync sys srv_vpe (Protocol.Sys_create_srv { name = "echo" }) with
      | Protocol.R_sel _ -> ()
      | r -> Alcotest.failf "create_srv under drops: %a" Protocol.pp_reply r);
      ignore (System.run sys);
      (match System.fault_plan sys with
      | Some p ->
        Alcotest.(check bool) "announcements were dropped" true ((Fault.stats p).Fault.drops > 0)
      | None -> Alcotest.fail "fault plan missing");
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "kernel %d directory converged" (Kernel.id k))
            true
            (Kernel.lookup_service k "echo" <> None))
        (System.kernels sys);
      let client = System.spawn_vpe sys ~kernel:3 in
      (match System.syscall_sync sys client (Protocol.Sys_open_session { service = "echo" }) with
      | Protocol.R_sess { ident; _ } -> Alcotest.(check int) "session ident" 7 ident
      | r -> Alcotest.failf "open_session after dropped announcements: %a" Protocol.pp_reply r);
      ignore (System.run sys);
      Alcotest.(check int) "clean shutdown" 0 (System.shutdown sys))
    [ 5; 6 ]

(* The fuzzer's full workload (delegates, migrations, exits, partial
   runs) passes its liveness / audit / teardown oracles on random seed
   pairs. *)
let prop_fuzz_oracles =
  QCheck.Test.make ~name:"fuzz oracles pass on random seed pairs" ~count:8
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (workload_seed, fault_seed) ->
      let o = Fuzz.run_one ~workload_seed ~fault_seed () in
      if o.Fuzz.failures <> [] then
        Alcotest.failf "seed pair (%d, %d) failed:@.%a" workload_seed fault_seed Fuzz.pp_outcome o;
      true)

(* Identical seeds must replay bit-identically. *)
let test_determinism () =
  let line () = Fuzz.outcome_line (Fuzz.run_one ~workload_seed:42 ~fault_seed:4242 ()) in
  Alcotest.(check string) "byte-identical replay" (line ()) (line ())

(* Teeth: with retransmission off and drops on, the oracles must catch
   at least one lost message — otherwise they are vacuous. *)
let test_oracles_have_teeth () =
  let spec = Fuzz.spec ~delay:false ~dup:false ~stall:false ~drop:true ~retry:false () in
  let outcomes = Fuzz.run_many ~spec ~workload_seed:1 ~fault_seed:1_001 ~runs:10 () in
  Alcotest.(check bool) "some run fails without retries" true
    (List.exists (fun o -> o.Fuzz.failures <> []) outcomes)

(* The same seeds with retries restored all pass — the teeth failure is
   the missing retransmission, not the workload. *)
let test_retries_repair () =
  let spec = Fuzz.spec ~delay:false ~dup:false ~stall:false ~drop:true ~retry:true () in
  let outcomes = Fuzz.run_many ~spec ~workload_seed:1 ~fault_seed:1_001 ~runs:10 () in
  List.iter
    (fun o ->
      if o.Fuzz.failures <> [] then Alcotest.failf "retry-enabled run failed:@.%a" Fuzz.pp_outcome o)
    outcomes

let suite =
  [
    qcheck prop_delay;
    qcheck prop_dup;
    qcheck prop_drop;
    qcheck prop_stall;
    qcheck prop_chaos;
    qcheck prop_fuzz_oracles;
    Alcotest.test_case "duplicate refunds are clamped at the credit bound" `Quick
      test_overrefund_clamped;
    Alcotest.test_case "dropped remove_child unlinks are retransmitted" `Quick
      test_remove_child_drop_recovery;
    Alcotest.test_case "dropped service announcements are retransmitted" `Quick
      test_srv_announce_drop_recovery;
    Alcotest.test_case "fuzz replay is deterministic" `Quick test_determinism;
    Alcotest.test_case "oracles fail without retries" `Quick test_oracles_have_teeth;
    Alcotest.test_case "retries repair the dropped runs" `Quick test_retries_repair;
  ]
