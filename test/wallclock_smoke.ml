(* Smoke gate for the wall-clock benchmark, run from the
   [wallclock-smoke] dune alias (hooked into [dune runtest]). Runs the
   scaled-down preset and asserts only that it completes and emits
   valid, well-shaped JSON — never a timing threshold, so CI stays
   deterministic on any host. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let samples = Wallclock.samples ~preset:Wallclock.Smoke () in
  check "three workloads measured" (List.length samples = 3);
  List.iter
    (fun s ->
      let open Wallclock in
      check (s.s_name ^ ": events were processed") (s.s_events > 0);
      check (s.s_name ^ ": wall time is non-negative") (s.s_wall_s >= 0.0);
      check (s.s_name ^ ": heap peak is positive") (s.s_heap_peak > 0);
      check (s.s_name ^ ": skipped never exceeds cancelled") (s.s_skipped <= s.s_cancelled))
    samples;
  (* The fig6 smoke point places its single service so that half the
     instances connect across groups: the cancellation machinery must
     actually have run. *)
  check "some retry timers were cancelled"
    (List.exists (fun s -> s.Wallclock.s_cancelled > 0) samples);
  let doc = Obs.Json.to_string (Wallclock.json samples) in
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-wallclock-1\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [
      "\"wall_s\""; "\"events_processed\""; "\"events_per_s\""; "\"events_cancelled\"";
      "\"events_skipped\""; "\"heap_peak\"";
    ];
  if !failed then exit 1;
  print_endline "wallclock-smoke: OK"
