(* Tests for the observability layer: the JSON emitter, the metrics
   registry, the trace ring buffer, and end-to-end determinism of
   snapshots and traces across identically-seeded system runs. *)

open Semperos

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* JSON emitter                                                        *)

let test_json_escaping () =
  let j =
    Obs.Json.(Obj [ ("k\"ey", Str "a\\b\"c\nd\te\r\x01f") ])
  in
  check Alcotest.string "escapes" "{\"k\\\"ey\":\"a\\\\b\\\"c\\nd\\te\\r\\u0001f\"}"
    (Obs.Json.to_string j);
  (* The validator must accept everything the emitter produces. *)
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "emitter output rejected: %s" e

let test_json_non_finite () =
  let j = Obs.Json.(Arr [ Float nan; Float infinity; Float neg_infinity; Float 1.5 ]) in
  check Alcotest.string "non-finite floats become null" "[null,null,null,1.5]"
    (Obs.Json.to_string j)

let test_json_parse_roundtrip () =
  let j =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 2.25);
          ("str", Str "x");
          ("arr", Arr [ Int 1; Obj [ ("nested", Bool false) ] ]);
          ("empty_obj", Obj []);
          ("empty_arr", Arr []);
        ])
  in
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' ->
    check Alcotest.string "round-trips byte-identically" (Obs.Json.to_string j)
      (Obs.Json.to_string j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_rejects () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_counters () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "a.hits" in
  Obs.Registry.incr c;
  Obs.Registry.incr ~by:4 c;
  check Alcotest.int "counter value" 5 (Obs.Registry.value c);
  (* Get-or-create: the same name yields the same instrument. *)
  let c' = Obs.Registry.counter r "a.hits" in
  Obs.Registry.incr c';
  check Alcotest.int "aliased" 6 (Obs.Registry.value c);
  check Alcotest.(list string) "names sorted" [ "a.hits" ] (Obs.Registry.names r)

let test_registry_kind_clash () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "x");
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Obs.Registry: x already registered as a counter, not a histogram")
    (fun () -> ignore (Obs.Registry.histogram r "x" ~buckets:[| 1.0 |]))

let test_histogram_bucket_edges () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "lat" ~buckets:[| 10.0; 20.0 |] in
  (* A bound is inclusive: x lands in the first bucket whose bound >= x. *)
  List.iter (Obs.Registry.observe h) [ 0.0; 10.0; 10.5; 20.0; 20.0000001; 1e9 ];
  check Alcotest.(array int) "bucket counts (<=10, <=20, overflow)" [| 2; 2; 2 |]
    (Obs.Registry.bucket_counts h);
  let acc = Obs.Registry.acc h in
  check Alcotest.int "count" 6 (Stats.Acc.count acc)

let test_empty_histogram_snapshot () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.histogram r "empty" ~buckets:[| 1.0 |]);
  let s = Obs.Json.to_string (Obs.Registry.snapshot r) in
  (* min/max/mean/sum of an empty histogram must serialize as null, not
     as the invalid JSON spellings of infinities (satellite 1). *)
  check Alcotest.bool "contains nulls" true (contains s "\"min\":null");
  match Obs.Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "empty-histogram snapshot invalid: %s (%s)" e s

let test_gauge_replacement () =
  let r = Obs.Registry.create () in
  Obs.Registry.gauge r "g" (fun () -> 1.0);
  Obs.Registry.gauge r "g" (fun () -> 2.5);
  let s = Obs.Json.to_string (Obs.Registry.snapshot r) in
  check Alcotest.bool "latest callback wins" true (contains s "2.5")

(* ------------------------------------------------------------------ *)
(* Trace ring buffer                                                   *)

let test_trace_wraparound () =
  let t = Obs.Trace.create ~capacity:4 in
  for i = 1 to 10 do
    Obs.Trace.record t ~ts:(Int64.of_int i) ~kind:"e" ~op:i ()
  done;
  check Alcotest.int "recorded counts everything" 10 (Obs.Trace.recorded t);
  check Alcotest.int "dropped = recorded - capacity" 6 (Obs.Trace.dropped t);
  check Alcotest.(list int) "retains the newest, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Obs.Trace.op) (Obs.Trace.events t));
  check Alcotest.(list int) "tail" [ 9; 10 ]
    (List.map (fun e -> e.Obs.Trace.op) (Obs.Trace.tail t ~n:2));
  (* A tail longer than the retained window is just the window. *)
  check Alcotest.int "oversized tail clamps" 4 (List.length (Obs.Trace.tail t ~n:100))

let test_trace_jsonl () =
  let t = Obs.Trace.create ~capacity:8 in
  Obs.Trace.record t ~ts:5L ~kind:"syscall_enter" ~op:1 ~src:0 ~dst:2 ~detail:"alloc" ();
  Obs.Trace.record t ~ts:9L ~kind:"ikc_send" ();
  let lines = String.split_on_char '\n' (String.trim (Obs.Trace.to_jsonl t)) in
  check Alcotest.int "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "invalid JSONL line %s: %s" line e)
    lines

(* ------------------------------------------------------------------ *)
(* End-to-end determinism                                              *)

(* Two identically-configured runs must produce byte-identical metric
   snapshots and trace buffers: everything is driven by the sim clock
   and seeded RNGs, never by host time. *)
let run_fixed_workload () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:3 ()) in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:1 in
  let sel =
    match System.syscall_sync sys a (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw })
    with
    | Protocol.R_sel s -> s
    | r -> Alcotest.failf "alloc failed: %a" Protocol.pp_reply r
  in
  ignore
    (System.syscall_sync sys b (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel = sel }));
  ignore (System.syscall_sync sys a (Protocol.Sys_revoke { sel; own = true }));
  ignore (System.run sys);
  ( Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys)),
    Obs.Trace.to_jsonl (System.trace_buffer sys) )

let test_snapshot_determinism () =
  let m1, t1 = run_fixed_workload () in
  let m2, t2 = run_fixed_workload () in
  check Alcotest.string "metric snapshots byte-identical" m1 m2;
  check Alcotest.string "traces byte-identical" t1 t2;
  match Obs.Json.parse m1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "system snapshot invalid JSON: %s" e

let test_trace_records_protocol () =
  let _, jsonl = run_fixed_workload () in
  let has kind = contains jsonl (Printf.sprintf "\"kind\":\"%s\"" kind) in
  List.iter
    (fun kind -> check Alcotest.bool kind true (has kind))
    [ "syscall_enter"; "syscall_exit"; "ikc_send"; "ikc_recv"; "revoke_mark"; "revoke_sweep" ]

(* The load balancer's occupancy inputs must be exported for every
   kernel unconditionally — `semperos_cli stats` shows them whether or
   not a balancer is attached. *)
let test_occupancy_instruments_exported () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:3 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  ignore (System.syscall_sync sys v (Protocol.Sys_alloc_mem { size = 64L; perms = Perms.rw }));
  let names = Obs.Registry.names (System.obs sys) in
  List.iter
    (fun k ->
      List.iter
        (fun instr ->
          let name = Printf.sprintf "kernel%d.%s" k instr in
          check Alcotest.bool (name ^ " registered") true (List.mem name names))
        [ "busy_cycles"; "queue_depth"; "occupancy" ])
    [ 0; 1 ];
  (* And they appear in the snapshot JSON with the right shape. *)
  let snap = Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys)) in
  (match Obs.Json.parse snap with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot invalid JSON: %s" e);
  check Alcotest.bool "busy_cycles is a gauge" true
    (contains snap "\"kernel0.busy_cycles\":{\"type\":\"gauge\"");
  check Alcotest.bool "queue_depth is a histogram" true
    (contains snap "\"kernel0.queue_depth\":{\"type\":\"histogram\"")

let suite =
  [
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json non-finite floats" `Quick test_json_non_finite;
    Alcotest.test_case "json parse round-trip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json parse rejects garbage" `Quick test_json_parse_rejects;
    Alcotest.test_case "registry counters" `Quick test_registry_counters;
    Alcotest.test_case "registry kind clash" `Quick test_registry_kind_clash;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
    Alcotest.test_case "empty histogram snapshot" `Quick test_empty_histogram_snapshot;
    Alcotest.test_case "gauge replacement" `Quick test_gauge_replacement;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_wraparound;
    Alcotest.test_case "trace JSONL" `Quick test_trace_jsonl;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "trace records protocol spans" `Quick test_trace_records_protocol;
    Alcotest.test_case "occupancy instruments exported" `Quick test_occupancy_instruments_exported;
  ]
