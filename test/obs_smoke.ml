(* Smoke gate for the observability layer, run from the [obs-smoke]
   dune alias (hooked into [dune runtest]). Mirrors what
   [semperos_cli stats] / [trace] do — run a small multi-kernel
   workload, then:

   1. the metrics snapshot must parse as valid JSON;
   2. every trace line must parse as valid JSON;
   3. the trace must contain the span kinds the protocols are required
      to emit;
   4. a second identically-seeded run must produce byte-identical
      snapshot and trace. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run_workload () =
  let workload = Workloads.tar in
  let kernels = 3 and instances = 6 in
  let sys =
    System.create (System.config ~kernels ~user_pes_per_kernel:((instances / kernels) + 2) ())
  in
  let prefixed i = Trace.with_prefix (Printf.sprintf "/i%d" i) (workload.Workloads.build ()) in
  let fs =
    M3fs.create ~config:workload.Workloads.fs_config sys ~kernel:0 ~name:"m3fs"
      ~files:(List.concat (List.init instances (fun i -> (prefixed i).Trace.files)))
      ()
  in
  for i = 0 to instances - 1 do
    let vpe = System.spawn_vpe sys ~kernel:(i mod kernels) in
    Replay.run sys fs ~vpe (prefixed i) (fun _ -> ())
  done;
  ignore (System.run sys);
  ( Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys)),
    Obs.Trace.to_jsonl (System.trace_buffer sys) )

let () =
  let stats, trace = run_workload () in
  (match Obs.Json.parse stats with
  | Ok _ -> ()
  | Error e ->
    check (Printf.sprintf "metrics snapshot is valid JSON (%s)" e) false);
  let lines = String.split_on_char '\n' (String.trim trace) in
  check "trace is non-empty" (lines <> [ "" ]);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok _ -> ()
      | Error e -> check (Printf.sprintf "trace line %s is valid JSON (%s)" line e) false)
    lines;
  List.iter
    (fun kind ->
      check
        (Printf.sprintf "trace contains %s spans" kind)
        (contains trace (Printf.sprintf "\"kind\":\"%s\"" kind)))
    [ "syscall_enter"; "syscall_exit"; "ikc_send"; "ikc_recv" ];
  check "snapshot mentions kernel counters" (contains stats "kernel0.syscalls");
  let stats2, trace2 = run_workload () in
  check "snapshot deterministic" (String.equal stats stats2);
  check "trace deterministic" (String.equal trace trace2);
  Printf.printf "obs-smoke: %d trace events, %d bytes of metrics\n" (List.length lines)
    (String.length stats);
  if !failed then exit 1;
  print_endline "obs-smoke: OK"
