(* Replay smoke: record both figures at smoke scale, resume each from
   a mid-run checkpoint, and replay the regression corpus. Run with
   [dune build @replay-smoke]. *)

open Semperos

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL " ^ s); exit 1) fmt
let pass fmt = Printf.ksprintf (fun s -> print_endline ("ok " ^ s)) fmt

let fresh_dir tag =
  let path = Filename.temp_file ("semperos-replay-smoke-" ^ tag) "" in
  Sys.remove path;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let figure name =
  match Figures.find name with
  | Some f -> f
  | None -> fail "figure %s is not registered" name

let check_figure name =
  let fig = figure name in
  let dir = fresh_dir name in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let recorded = Record.record ~every:2 ~dir fig Figures.Smoke in
      let total =
        match Record.read_manifest dir with
        | Ok m -> m.Record.m_total
        | Error e -> fail "%s manifest: %s" name e
      in
      let mid = total / 2 in
      match Record.replay ~dir ~from_:mid () with
      | Error e -> fail "%s replay --from %d: %s" name mid e
      | Ok (resumed_at, out) ->
          if not (String.equal out.Figures.text recorded.Figures.text) then
            fail "%s: resumed text differs from the recorded run" name;
          if
            not
              (String.equal
                 (Obs.Json.to_string out.Figures.json)
                 (Obs.Json.to_string recorded.Figures.json))
          then fail "%s: resumed json differs from the recorded run" name;
          pass "%s: %d points, resumed at %d, byte-identical" name total resumed_at)

let check_corpus () =
  let dir =
    match List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ] with
    | Some d -> d
    | None -> "corpus"
  in
  let cases =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort String.compare
  in
  if List.length cases < 2 then fail "corpus holds %d cases, expected >= 2" (List.length cases);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Fuzz.Case.load path with
      | Error e -> fail "%s: %s" path e
      | Ok case -> (
          match Fuzz.Case.check case with
          | Ok outcome ->
              pass "%s: %d ops, verdict [%s] reproduced" f case.Fuzz.Case.spec.Fuzz.ops
                (String.concat "," (Fuzz.Case.kinds outcome.Fuzz.failures))
          | Error e -> fail "%s: %s" path e))
    cases

let () =
  check_figure "fig4";
  check_figure "fig6";
  check_corpus ();
  print_endline "replay smoke passed"
