(* Test entry point: one Alcotest suite per subsystem. *)

let () =
  Alcotest.run "semperos"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("engine-model", Test_engine_model.suite);
      ("noc", Test_noc.suite);
      ("dtu", Test_dtu.suite);
      ("ddl", Test_ddl.suite);
      ("caps", Test_caps.suite);
      ("mapdb-model", Test_mapdb_model.suite);
      ("kernel", Test_kernel.suite);
      ("kernel-races", Test_kernel_races.suite);
      ("fault", Test_fault.suite);
      ("channels", Test_channels.suite);
      ("migration", Test_migration.suite);
      ("balance", Test_balance.suite);
      ("fleet", Test_fleet.suite);
      ("system", Test_system.suite);
      ("m3fs", Test_m3fs.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("harness", Test_harness.suite);
      ("runner", Test_runner.suite);
      ("services", Test_services.suite);
      ("tools", Test_tools.suite);
      ("properties", Test_properties.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("replay", Test_replay.suite);
    ]
