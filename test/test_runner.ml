(* Tests for the parallel experiment runner: the domain pool's
   ordering and failure contracts, the determinism guarantee (any job
   count produces identical results, hence identical bytes), and the
   linear-sweep contract of the revocation hot path. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Domain_pool                                                         *)

let test_pool_order () =
  let xs = List.init 37 Fun.id in
  let expect = List.map (fun i -> i * i) xs in
  check Alcotest.(list int) "jobs 4 preserves submission order" expect
    (Domain_pool.map ~jobs:4 (fun i -> i * i) xs);
  check Alcotest.(list int) "jobs 1 (serial path)" expect
    (Domain_pool.map ~jobs:1 (fun i -> i * i) xs)

let test_pool_jobs_exceed_items () =
  check Alcotest.(list int) "more domains than tasks" [ 10; 11; 12 ]
    (Domain_pool.map ~jobs:8 (fun i -> i + 10) [ 0; 1; 2 ]);
  check Alcotest.(list int) "empty task list" [] (Domain_pool.map ~jobs:4 (fun i -> i) [])

let test_pool_exception_earliest () =
  (* Two tasks fail; the pool must re-raise the earliest-submitted
     failure no matter which domain hits its failure first. *)
  let got =
    try
      ignore
        (Domain_pool.map ~jobs:4
           (fun i -> if i = 3 || i = 7 then failwith (Printf.sprintf "boom%d" i) else i)
           (List.init 10 Fun.id));
      "no exception"
    with Failure msg -> msg
  in
  check Alcotest.string "earliest-submitted failure wins" "boom3" got

let test_pool_invalid_jobs () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check Alcotest.bool "jobs 0 rejected" true
    (raises (fun () -> Domain_pool.map ~jobs:0 Fun.id [ 1 ]));
  check Alcotest.bool "Runner.set_jobs 0 rejected" true
    (raises (fun () -> Runner.set_jobs 0))

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

let test_merge_snapshots_order () =
  let open Obs.Json in
  let merged = Runner.merge_snapshots [ ("b", Int 1); ("a", Int 2) ] in
  check Alcotest.string "submission order, not sorted" {|{"b":1,"a":2}|} (to_string merged)

let test_merge_snapshots_duplicate () =
  let open Obs.Json in
  match Runner.merge_snapshots [ ("x", Int 1); ("x", Int 2) ] with
  | _ -> Alcotest.fail "duplicate label accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Determinism: the same experiment list must produce identical        *)
(* outcomes — including metrics snapshots — at any job count.          *)

let small_configs () =
  List.map
    (fun spec -> Experiment.config ~kernels:2 ~services:2 ~instances:4 spec)
    [ Workloads.tar; Workloads.find ]

let outcome_fingerprint (o : Experiment.outcome) =
  Printf.sprintf "%d %Ld %.6f %d %d %s" o.Experiment.cap_ops o.Experiment.max_runtime
    o.Experiment.cap_ops_per_s o.Experiment.exchanges_spanning o.Experiment.revokes_spanning
    (Obs.Json.to_string o.Experiment.snapshot)

let test_experiments_jobs_invariant () =
  let serial = Runner.experiments ~jobs:1 (small_configs ()) in
  let parallel = Runner.experiments ~jobs:4 (small_configs ()) in
  check Alcotest.(list string) "jobs 1 == jobs 4 (outcomes and snapshots)"
    (List.map outcome_fingerprint serial)
    (List.map outcome_fingerprint parallel)

let test_microbench_jobs_invariant () =
  let specs =
    List.concat_map
      (fun len ->
        [
          { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
          { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
        ])
      [ 0; 5; 10 ]
  in
  check
    Alcotest.(list int64)
    "chain batch: jobs 1 == jobs 3"
    (Microbench.chain_revocations ~jobs:1 specs)
    (Microbench.chain_revocations ~jobs:3 specs)

let test_fuzz_jobs_invariant () =
  let spec = Fuzz.spec ~ops:15 () in
  let lines jobs =
    List.map Fuzz.outcome_line
      (Fuzz.run_many ~jobs ~spec ~workload_seed:7 ~fault_seed:1007 ~runs:4 ())
  in
  check Alcotest.(list string) "fuzz sweep: jobs 1 == jobs 4" (lines 1) (lines 4)

(* ------------------------------------------------------------------ *)
(* Revocation sweep: deleting a region of n capabilities must probe    *)
(* the marked set O(n) times, not O(n^2) (the kernel counts each       *)
(* membership query in kernel<i>.revoke_sweep_probes).                 *)

let sweep_probes n =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:2 ()) in
  let vpe = System.spawn_vpe sys ~kernel:0 in
  let sel =
    match System.syscall_sync sys vpe (Protocol.Sys_alloc_mem { size = 65536L; perms = Perms.rw }) with
    | Protocol.R_sel s -> s
    | r -> Alcotest.failf "alloc: %a" Protocol.pp_reply r
  in
  for _ = 1 to n do
    match
      System.syscall_sync sys vpe
        (Protocol.Sys_derive_mem { sel; offset = 0L; size = 64L; perms = Perms.r })
    with
    | Protocol.R_sel _ -> ()
    | r -> Alcotest.failf "derive: %a" Protocol.pp_reply r
  done;
  let probes () =
    Obs.Registry.value (Obs.Registry.counter (System.obs sys) "kernel0.revoke_sweep_probes")
  in
  let before = probes () in
  (match System.syscall_sync sys vpe (Protocol.Sys_revoke { sel; own = true }) with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "revoke: %a" Protocol.pp_reply r);
  probes () - before

let test_revoke_sweep_linear () =
  let n = 128 in
  let small = sweep_probes n in
  let large = sweep_probes (2 * n) in
  (* Each marked capability may probe the set once for its parent: the
     region has n+1 caps, so allow a small constant slack but nothing
     resembling n^2 (which would be ~8k for n=128). *)
  check Alcotest.bool
    (Printf.sprintf "probes for %d-cap region linear (got %d)" (n + 1) small)
    true
    (small >= n && small <= 2 * (n + 1));
  (* Doubling the region must not quadruple the probe count. *)
  check Alcotest.bool
    (Printf.sprintf "probes scale linearly (n: %d, 2n: %d)" small large)
    true
    (large <= (5 * small / 2) + 4)

let suite =
  [
    Alcotest.test_case "pool: submission order" `Quick test_pool_order;
    Alcotest.test_case "pool: jobs > items" `Quick test_pool_jobs_exceed_items;
    Alcotest.test_case "pool: earliest failure" `Quick test_pool_exception_earliest;
    Alcotest.test_case "pool: invalid jobs" `Quick test_pool_invalid_jobs;
    Alcotest.test_case "runner: merge order" `Quick test_merge_snapshots_order;
    Alcotest.test_case "runner: duplicate label" `Quick test_merge_snapshots_duplicate;
    Alcotest.test_case "determinism: experiments" `Quick test_experiments_jobs_invariant;
    Alcotest.test_case "determinism: microbench" `Quick test_microbench_jobs_invariant;
    Alcotest.test_case "determinism: fuzz" `Quick test_fuzz_jobs_invariant;
    Alcotest.test_case "revoke sweep is linear" `Quick test_revoke_sweep_linear;
  ]
