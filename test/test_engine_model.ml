(* Model-based differential test for the engine's two queue backends.

   The binary heap is the oracle: it is the original implementation
   whose schedules every committed figure and bench was recorded
   under. A fixed-seed driver runs thousands of random operations —
   schedule (plain and cancellable, absolute and relative, with heavy
   same-time collision), cancel (pending, fired, double), bounded and
   unbounded runs — against a heap engine and a wheel engine in
   lockstep, asserting after every step that fire order, fire times,
   clocks, and the pending/processed/cancelled counters agree.

   [events_skipped] is deliberately excluded from the equality set:
   skipping is lazy-deletion bookkeeping private to the heap backend
   (dead events discarded as they surface), while the wheel unlinks
   cancelled cells eagerly and must report zero — which is asserted
   instead. Mirrors the test_mapdb_model.ml pattern. *)

open Semperos

let check = Alcotest.check

(* One engine plus the log of events it fired: (tag, fire time). Tags
   are the scheduling sequence the driver assigns, so equal logs mean
   equal order, not just equal multisets. *)
type side = {
  engine : Engine.t;
  log : (int * int64) list ref;
  mutable handles : (int * Engine.handle) list;  (* pending cancellables *)
}

let make_side queue =
  { engine = Engine.create ~queue (); log = ref []; handles = [] }

let agree step what fmt_a a b =
  if a <> b then
    Alcotest.failf "step %d: %s diverges: heap %s, wheel %s" step what (fmt_a a) (fmt_a b)

let agree_on_exn step what f g =
  let run h =
    match h () with
    | x -> Ok x
    | exception Invalid_argument m -> Error m
  in
  let a = run f and b = run g in
  (match (a, b) with
  | Ok _, Ok _ | Error _, Error _ -> ()
  | Ok _, Error m -> Alcotest.failf "step %d: %s: only the wheel raised (%s)" step what m
  | Error m, Ok _ -> Alcotest.failf "step %d: %s: only the heap raised (%s)" step what m);
  (a, b)

let observe step (h : side) (w : side) =
  agree step "fire log"
    (fun l ->
      String.concat ";" (List.map (fun (i, t) -> Printf.sprintf "%d@%Ld" i t) (List.rev l)))
    !(h.log) !(w.log);
  agree step "clock" Int64.to_string (Engine.now h.engine) (Engine.now w.engine);
  agree step "pending" string_of_int (Engine.pending h.engine) (Engine.pending w.engine);
  agree step "processed" string_of_int
    (Engine.events_processed h.engine)
    (Engine.events_processed w.engine);
  agree step "cancelled" string_of_int
    (Engine.events_cancelled h.engine)
    (Engine.events_cancelled w.engine);
  check Alcotest.int
    (Printf.sprintf "step %d: wheel never skips" step)
    0
    (Engine.events_skipped w.engine)

let drive ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let h = make_side Engine.Binary_heap in
  let w = make_side Engine.Timer_wheel in
  let tag = ref 0 in
  for step = 1 to steps do
    (match Random.State.int rng 100 with
    | n when n < 40 ->
      (* plain schedule; clustered delays force same-time collisions,
         occasional huge delays force wheel cascades across levels *)
      let delay =
        match Random.State.int rng 10 with
        | 0 -> 0L
        | 9 -> Int64.of_int (1 + Random.State.int rng 3_000_000)
        | _ -> Int64.of_int (Random.State.int rng 40)
      in
      let i = !tag in
      incr tag;
      Engine.after h.engine delay (fun () -> h.log := (i, Engine.now h.engine) :: !(h.log));
      Engine.after w.engine delay (fun () -> w.log := (i, Engine.now w.engine) :: !(w.log))
    | n when n < 65 ->
      (* cancellable schedule, handle retained for later cancellation;
         the occasional far-future timer reproduces a cancelled retry
         timer extending [horizon] past later bounded runs, where the
         heap's dead slot must hold the clock back on both sides *)
      let delay =
        match Random.State.int rng 8 with
        | 0 -> Int64.of_int (1 + Random.State.int rng 3_000_000)
        | _ -> Int64.of_int (Random.State.int rng 200)
      in
      let i = !tag in
      incr tag;
      let hh =
        Engine.after_cancellable h.engine delay (fun () ->
            h.log := (i, Engine.now h.engine) :: !(h.log))
      in
      let wh =
        Engine.after_cancellable w.engine delay (fun () ->
            w.log := (i, Engine.now w.engine) :: !(w.log))
      in
      h.handles <- (i, hh) :: h.handles;
      w.handles <- (i, wh) :: w.handles
    | n when n < 85 ->
      (* cancel a random retained handle — possibly already fired, and
         sometimes twice, exercising the idempotent paths *)
      (match h.handles with
      | [] -> ()
      | l ->
        let pick = Random.State.int rng (List.length l) in
        let i, hh = List.nth l pick in
        let wh = List.assoc i w.handles in
        let twice = Random.State.int rng 4 = 0 in
        ignore
          (agree_on_exn step "cancel"
             (fun () ->
               Engine.cancel h.engine hh;
               if twice then Engine.cancel h.engine hh)
             (fun () ->
               Engine.cancel w.engine wh;
               if twice then Engine.cancel w.engine wh)))
    | n when n < 95 ->
      (* bounded run: limits behind the clock, at it, and past it *)
      let ahead = Int64.of_int (Random.State.int rng 300 - 20) in
      let limit = Int64.add (Engine.now h.engine) ahead in
      let a, b =
        agree_on_exn step "bounded run"
          (fun () -> Engine.run ~until:limit h.engine)
          (fun () -> Engine.run ~until:limit w.engine)
      in
      agree step "bounded run count"
        (function Ok n -> string_of_int n | Error m -> m)
        a b
    | _ ->
      let a, b =
        agree_on_exn step "drain"
          (fun () -> Engine.run h.engine)
          (fun () -> Engine.run w.engine)
      in
      agree step "drain count" (function Ok n -> string_of_int n | Error m -> m) a b);
    observe step h w
  done;
  (* final drain: every queue empties to the same place *)
  ignore (Engine.run h.engine);
  ignore (Engine.run w.engine);
  observe (steps + 1) h w;
  check Alcotest.int "heap drained" 0 (Engine.pending h.engine);
  check Alcotest.int "wheel drained" 0 (Engine.pending w.engine)

let test_seed seed () = drive ~seed ~steps:800

let suite =
  [
    Alcotest.test_case "wheel matches heap oracle (seed 0xfeed)" `Quick (test_seed 0xfeed);
    Alcotest.test_case "wheel matches heap oracle (seed 0xbeef)" `Quick (test_seed 0xbeef);
    Alcotest.test_case "wheel matches heap oracle (seed 0xcafe)" `Quick (test_seed 0xcafe);
  ]
