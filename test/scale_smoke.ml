(* Smoke gate for the scale-ceiling benchmark, run from the
   [scale-smoke] dune alias (hooked into [dune runtest]). Runs the
   scaled-down preset and asserts only that it completes and emits
   valid, well-shaped JSON — never a timing threshold, so CI stays
   deterministic on any host. The audit phase inside [Scale.rows]
   already fails hard if the incremental report diverges from the full
   one, so a clean exit also covers that oracle. *)

open Semperos

let failed = ref false

let check name ok =
  if not ok then begin
    failed := true;
    Printf.printf "FAILED: %s\n" name
  end

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let () =
  let rows = Scale.rows ~preset:Scale.Smoke () in
  check "one application row and one session row measured" (List.length rows = 2);
  (match rows with
  | [ app; sess ] ->
    check "application row carries no sessions" (app.Scale.r_sessions = 0);
    check "session row ran the whole trace" (sess.Scale.r_sessions = 2_000)
  | _ -> ());
  List.iter
    (fun r ->
      let open Scale in
      check (r.r_name ^ ": PE count adds up")
        (r.r_total_pes = r.r_instances + r.r_services + r.r_kernels);
      check (r.r_name ^ ": events were processed") (r.r_events > 0);
      check (r.r_name ^ ": capability operations happened") (r.r_cap_ops > 0);
      check (r.r_name ^ ": wall time is non-negative") (r.r_wall_s >= 0.0);
      check (r.r_name ^ ": heap peak is positive") (r.r_heap_peak > 0);
      check (r.r_name ^ ": churn forest is populated") (r.r_audit_caps > 0);
      check (r.r_name ^ ": audit timings are non-negative")
        (r.r_audit_full_s >= 0.0 && r.r_audit_incremental_s >= 0.0))
    rows;
  let doc = Obs.Json.to_string (Scale.json rows) in
  (match Obs.Json.parse doc with
  | Ok _ -> ()
  | Error e -> check (Printf.sprintf "report is valid JSON (%s)" e) false);
  check "report names the schema" (contains doc "\"schema\":\"semperos-scale-2\"");
  List.iter
    (fun key -> check (Printf.sprintf "report has %s" key) (contains doc key))
    [
      "\"total_pes\""; "\"sessions\""; "\"wall_s\""; "\"events_per_s\""; "\"cap_ops_per_s\"";
      "\"heap_peak\"";
      "\"gc_minor_collections\""; "\"gc_major_collections\""; "\"gc_promoted_words\"";
      "\"audit_full_s\""; "\"audit_incremental_s\"";
    ];
  if !failed then exit 1;
  print_endline "scale-smoke: OK"
