(* Tests for the autonomic load balancer: policy unit behaviour
   (hysteresis, cooldown, tie-breaks), the candidate safety gate,
   determinism of the migration sequence across host parallelism, the
   uniform-load no-op, and end-to-end improvement on the skewed
   workload — with and without injected faults on the migration
   messages. *)

open Semperos

let check = Alcotest.check

let decision_t =
  Alcotest.testable
    (fun ppf (d : Balance.Policy.decision) ->
      Format.fprintf ppf "%d->%d" d.Balance.Policy.src d.Balance.Policy.dst)
    ( = )

let threshold = Balance.Policy.Threshold { high = 0.7; low = 0.5; margin = 0.3; cooldown = 2 }

let decide ?(cooldown = [||]) ?(inflight = []) pol occupancy =
  let n = Array.length occupancy in
  let cooldown = if Array.length cooldown = n then cooldown else Array.make n 0 in
  Balance.Policy.decide pol ~occupancy ~cooldown ~inflight

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy_static () =
  check (Alcotest.option decision_t) "static never migrates" None
    (decide Balance.Policy.Static [| 1.0; 0.0 |])

let test_policy_picks_extremes () =
  check (Alcotest.option decision_t) "max source, min destination"
    (Some { Balance.Policy.src = 2; dst = 1 })
    (decide threshold [| 0.6; 0.1; 0.9; 0.3 |]);
  (* Ties break towards the lowest kernel id on both sides. *)
  check (Alcotest.option decision_t) "ties to lowest id"
    (Some { Balance.Policy.src = 1; dst = 0 })
    (decide threshold [| 0.2; 0.9; 0.2; 0.9 |])

let test_policy_hysteresis () =
  (* Overloaded source but no destination far enough below: a marginal
     imbalance must not cause ping-pong migration. *)
  check (Alcotest.option decision_t) "gap below margin" None
    (decide threshold [| 0.75; 0.55 |]);
  check (Alcotest.option decision_t) "destination above low" None
    (decide threshold [| 0.95; 0.65 |]);
  check (Alcotest.option decision_t) "both idle" None (decide threshold [| 0.3; 0.1 |]);
  (* The same imbalance with a clear gap does migrate. *)
  check (Alcotest.option decision_t) "clear gap migrates"
    (Some { Balance.Policy.src = 0; dst = 1 })
    (decide threshold [| 0.9; 0.2 |])

let test_policy_cooldown () =
  let occ = [| 0.9; 0.1 |] in
  check (Alcotest.option decision_t) "source cooling down" None
    (decide ~cooldown:[| 2; 0 |] threshold occ);
  check (Alcotest.option decision_t) "destination cooling down" None
    (decide ~cooldown:[| 0; 1 |] threshold occ);
  check (Alcotest.option decision_t) "cooldown expired"
    (Some { Balance.Policy.src = 0; dst = 1 })
    (decide ~cooldown:[| 0; 0 |] threshold occ)

let test_policy_inflight () =
  let occ = [| 0.9; 0.1; 0.2 |] in
  (* A kernel already involved in an in-flight migration is ineligible
     on either side; the decision falls through to the next kernel. *)
  check (Alcotest.option decision_t) "inflight blocks the pair"
    (Some { Balance.Policy.src = 0; dst = 2 })
    (decide ~inflight:[ (3, 1) ] threshold occ);
  check (Alcotest.option decision_t) "inflight source blocks entirely" None
    (decide ~inflight:[ (0, 3) ] threshold occ)

(* ------------------------------------------------------------------ *)
(* Candidate safety gate                                               *)

let test_eligibility_gate () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let bal = Balance.create ~policy:Balance.Policy.Static sys in
  let a = System.spawn_vpe sys ~kernel:0 in
  let b = System.spawn_vpe sys ~kernel:0 in
  let sel_of = function
    | Protocol.R_sel s -> s
    | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r
  in
  let sel =
    sel_of (System.syscall_sync sys a (Protocol.Sys_alloc_mem { size = 64L; perms = Perms.rw }))
  in
  let ids vs = List.map (fun (v : Vpe.t) -> v.Vpe.id) vs in
  (* [a] owns a root with a same-PE child? No children yet: both VPEs
     hold only local capabilities and qualify. *)
  check Alcotest.(list int) "both eligible" (ids [ a; b ])
    (ids (Balance.eligible_vpes bal ~kernel:0));
  (* A spanning obtain gives the receiver a child whose parent lives on
     kernel 0: the receiver must drop out of the candidate set. *)
  let c = System.spawn_vpe sys ~kernel:1 in
  ignore
    (System.syscall_sync sys c (Protocol.Sys_obtain_from { donor_vpe = a.Vpe.id; donor_sel = sel }));
  check Alcotest.(list int) "remote parent blocks" [] (ids (Balance.eligible_vpes bal ~kernel:1));
  (* ...and the donor, whose capability now has a child on another PE,
     drops out too (revoking it mid-transfer would race the records). *)
  check Alcotest.(list int) "remote child blocks donor" (ids [ b ])
    (ids (Balance.eligible_vpes bal ~kernel:0));
  (* Revoking the exchange restores both. *)
  ignore (System.syscall_sync sys a (Protocol.Sys_revoke { sel; own = true }));
  check Alcotest.(list int) "revoke restores donor" (ids [ a; b ])
    (ids (Balance.eligible_vpes bal ~kernel:0))

(* ------------------------------------------------------------------ *)
(* End-to-end: skewed workload                                         *)

let smoke_cfg =
  {
    Skew.default_config with
    Skew.clients = 4;
    rounds = 10;
    pes_per_kernel = 6;
    fs_every = 4;
  }

let sequence (r : Skew.result) =
  List.map
    (fun (m : Balance.migration) -> (m.Balance.m_at, m.Balance.m_vpe, m.Balance.m_src, m.Balance.m_dst))
    r.Skew.migrations

let test_balancer_improves () =
  let static = Skew.run { smoke_cfg with Skew.policy = Balance.Policy.Static } in
  let balanced = Skew.run smoke_cfg in
  check Alcotest.(list string) "static audit clean" [] static.Skew.audit_errors;
  check Alcotest.(list string) "balanced audit clean" [] balanced.Skew.audit_errors;
  check Alcotest.bool "migrations happened" true (balanced.Skew.migrations <> []);
  check Alcotest.bool "max occupancy strictly reduced" true
    (balanced.Skew.max_occupancy < static.Skew.max_occupancy);
  check Alcotest.bool "completion strictly reduced" true
    (balanced.Skew.completion < static.Skew.completion)

let test_migration_sequence_deterministic () =
  (* The same configuration must produce the identical migration
     sequence regardless of how many domains run other work in
     parallel: each run owns a private engine, and every balancer
     decision is derived from simulated state only. *)
  let run _ = sequence (Skew.run smoke_cfg) in
  let serial = Domain_pool.map ~jobs:1 run [ 0; 1 ] in
  let parallel = Domain_pool.map ~jobs:4 run [ 0; 1; 2; 3 ] in
  let expect = List.hd serial in
  check Alcotest.bool "sequence non-empty" true (expect <> []);
  List.iteri
    (fun i s ->
      check Alcotest.bool (Printf.sprintf "serial run %d identical" i) true (s = expect))
    serial;
  List.iteri
    (fun i s ->
      check Alcotest.bool (Printf.sprintf "parallel run %d identical" i) true (s = expect))
    parallel

let test_uniform_load_no_migrations () =
  (* Spread the same clients round-robin: no kernel crosses the high
     threshold, so the balancer must not move anything. *)
  let r = Skew.run { smoke_cfg with Skew.spread = true } in
  check Alcotest.(list string) "audit clean" [] r.Skew.audit_errors;
  check Alcotest.int "zero migrations" 0 (List.length r.Skew.migrations)

let test_balancer_under_faults () =
  (* Drops and duplicates hit migrate_update/migrate_ack/migrate_caps
     like any other op-tagged message; retransmission and dedup must
     still converge every migration with no capability leaked. *)
  let fault =
    {
      Fault.quiet with
      Fault.seed = 421L;
      delay_prob = 0.2;
      max_delay = 1_200;
      dup_prob = 0.1;
      max_dup_delay = 800;
      drop_prob = 0.05;
      max_drops_per_pair = 2;
      max_drops_total = 30;
    }
  in
  let r = Skew.run { smoke_cfg with Skew.fault = Some fault } in
  check Alcotest.(list string) "audit clean under faults" [] r.Skew.audit_errors;
  check Alcotest.bool "migrations still happen" true (r.Skew.migrations <> [])

let suite =
  [
    Alcotest.test_case "policy: static" `Quick test_policy_static;
    Alcotest.test_case "policy: picks extremes" `Quick test_policy_picks_extremes;
    Alcotest.test_case "policy: hysteresis prevents ping-pong" `Quick test_policy_hysteresis;
    Alcotest.test_case "policy: cooldown respected" `Quick test_policy_cooldown;
    Alcotest.test_case "policy: in-flight pairs blocked" `Quick test_policy_inflight;
    Alcotest.test_case "candidate safety gate" `Quick test_eligibility_gate;
    Alcotest.test_case "balancer improves skewed workload" `Quick test_balancer_improves;
    Alcotest.test_case "migration sequence deterministic" `Quick
      test_migration_sequence_deterministic;
    Alcotest.test_case "uniform load: no migrations" `Quick test_uniform_load_no_migrations;
    Alcotest.test_case "balancer under faults" `Quick test_balancer_under_faults;
  ]
