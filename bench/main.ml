(** Benchmark harness entry point.

    With no argument, regenerates every table and figure of the paper's
    evaluation plus the ablations. Individual experiments can be named
    on the command line (table3, fig4, fig5, table4, fig6, fig7, fig8,
    fig9, fig10, ablations, json, bechamel, wallclock). [json] writes
    the headline numbers as BENCH_micro.json / BENCH_apps.json via the
    deterministic {!Semperos.Obs.Json} emitter. [wallclock] measures
    host events/sec over representative figures and writes
    BENCH_wallclock.json (host-dependent, hence not part of [all]).
    [bechamel] runs host-side micro-measurements — one [Test.make] per table and figure — showing
    how long this simulator takes to regenerate a scaled-down version
    of each experiment. *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let test_table3 =
    Test.make ~name:"table3" (Staged.stage (fun () ->
        ignore (Semper_harness.Microbench.exchange_revoke ~mode:Semperos.Cost.Semperos ~spanning:true)))
  in
  let test_fig4 =
    Test.make ~name:"fig4" (Staged.stage (fun () ->
        ignore (Semper_harness.Microbench.chain_revocation ~mode:Semperos.Cost.Semperos ~spanning:false ~len:20 ())))
  in
  let test_fig5 =
    Test.make ~name:"fig5" (Staged.stage (fun () ->
        ignore (Semper_harness.Microbench.tree_revocation ~extra_kernels:4 ~children:32 ())))
  in
  let small_run spec kernels services instances () =
    ignore
      (Semperos.Experiment.run
         (Semperos.Experiment.config ~kernels ~services ~instances spec))
  in
  let test_table4 =
    Test.make ~name:"table4" (Staged.stage (small_run Semperos.Workloads.postmark 1 1 1))
  in
  let test_fig6 =
    Test.make ~name:"fig6" (Staged.stage (small_run Semperos.Workloads.tar 8 8 64))
  in
  let test_fig7 =
    Test.make ~name:"fig7" (Staged.stage (small_run Semperos.Workloads.sqlite 8 4 64))
  in
  let test_fig8 =
    Test.make ~name:"fig8" (Staged.stage (small_run Semperos.Workloads.leveldb 4 8 64))
  in
  let test_fig9 =
    Test.make ~name:"fig9" (Staged.stage (small_run Semperos.Workloads.postmark 8 8 48))
  in
  let test_fig10 =
    Test.make ~name:"fig10" (Staged.stage (fun () ->
        ignore
          (Semperos.Nginx_bench.run
             (Semperos.Nginx_bench.config ~kernels:4 ~services:4 ~servers:16
                ~duration:1_000_000L ()))))
  in
  let tests =
    Test.make_grouped ~name:"semperos"
      [ test_table3; test_fig4; test_fig5; test_table4; test_fig6; test_fig7; test_fig8;
        test_fig9; test_fig10 ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Analyze.merge ols instances [ results ]
  in
  let results = benchmark () in
  print_endline "\n== Bechamel: host-side cost of regenerating each experiment (ns/run) ==";
  Hashtbl.iter
    (fun _clock_name tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun test_name ols ->
          let ns =
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.sprintf "%.0f" est
            | Some _ | None -> "-"
          in
          rows := [ test_name; ns ] :: !rows)
        tbl;
      let rows = List.sort compare !rows in
      print_endline (Semperos.Table.render ~header:[ "experiment"; "ns/run" ] rows))
    results

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] \
     [table3|fig4|fig5|table4|fig6|fig7|fig8|fig9|fig10|ablations|json|bechamel|wallclock|batch|scale|engine|all]";
  prerr_endline
    "  --jobs N, -j N   run independent experiment points on N domains (default: cores; 1 = serial)";
  exit 2

(* [--jobs N] / [-j N] may appear anywhere on the command line; the
   remaining argument, if any, names the experiment. *)
let parse_argv () =
  let rec go names = function
    | [] -> List.rev names
    | ("--jobs" | "-j") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        Semperos.Runner.set_jobs n;
        go names rest
      | Some _ | None -> usage ())
    | ("--jobs" | "-j") :: [] -> usage ()
    | arg :: rest -> go (arg :: names) rest
  in
  go [] (List.tl (Array.to_list Sys.argv))

let () =
  let cmds =
    [
      ("table3", Experiments.table3);
      ("fig4", Experiments.fig4);
      ("fig5", fun () -> Experiments.fig5 ());
      ("table4", Experiments.table4);
      ("fig6", Experiments.fig6);
      ("fig7", Experiments.fig7);
      ("fig8", Experiments.fig8);
      ("fig9", Experiments.fig9);
      ("fig10", Experiments.fig10);
      ("ablations", Experiments.ablations);
      ("json", Experiments.json_export);
      ("bechamel", bechamel);
      (* Deliberately not part of [all]: its output is host-dependent,
         and [all]'s output stays byte-identical across hosts. *)
      ("wallclock", fun () -> Semper_harness.Wallclock.run ());
      (* Not part of [all] either: BENCH_balance.json is its own
         deliverable, regenerated only when the balancer changes. *)
      ("balance", fun () -> Semper_harness.Skew.bench ());
      (* Likewise its own deliverable: BENCH_fleet.json is regenerated
         only when the elastic-fleet subsystem changes. *)
      ("fleet", fun () -> Semper_harness.Fleetbench.bench ());
      (* Likewise: BENCH_batch.json is regenerated only when the
         batching fabric changes. *)
      ("batch", fun () -> Semper_harness.Batchbench.run ());
      (* Host-dependent like wallclock, so also outside [all]. *)
      ("scale", fun () -> Semper_harness.Scale.run ());
      (* Host-dependent: heap-vs-wheel queue-backend throughput. *)
      ("engine", fun () -> Semper_harness.Enginebench.run ());
      ("all", fun () -> Experiments.all (); bechamel ());
    ]
  in
  match parse_argv () with
  | [] -> (List.assoc "all" cmds) ()
  | [ name ] -> (
    match List.assoc_opt name cmds with
    | Some f -> f ()
    | None -> usage ())
  | _ -> usage ()
