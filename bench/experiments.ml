(** Regenerates every table and figure of the paper's evaluation
    (§5). Each function prints the same rows or series the paper
    reports; EXPERIMENTS.md records paper-vs-measured. *)

open Semperos
module T = Table

let pct = Printf.sprintf "%.1f"

(* ------------------------------------------------------------------ *)
(* Table 3: runtimes of capability operations                          *)

let table3 () =
  let sx, sr = Semper_harness.Microbench.exchange_revoke ~mode:Cost.Semperos ~spanning:false in
  let gx, gr = Semper_harness.Microbench.exchange_revoke ~mode:Cost.Semperos ~spanning:true in
  let mx, mr = Semper_harness.Microbench.exchange_revoke ~mode:Cost.M3 ~spanning:false in
  let row op scope measured paper m3_measured m3_paper =
    [ op; scope; Int64.to_string measured; paper; m3_measured; m3_paper ]
  in
  T.print ~title:"Table 3: runtimes of capability operations (cycles)"
    ~header:[ "Operation"; "Scope"; "SemperOS"; "paper"; "M3"; "paper" ]
    [
      row "Exchange" "Local" sx "3597" (Int64.to_string mx) "3250";
      row "Exchange" "Spanning" gx "6484" "-" "-";
      row "Revoke" "Local" sr "1997" (Int64.to_string mr) "1423";
      row "Revoke" "Spanning" gr "3876" "-" "-";
    ]

(* ------------------------------------------------------------------ *)
(* Figure 4: chain revocation                                          *)

let fig4 () =
  let lengths = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let series =
    T.Series.create ~x_label:"chain_len"
      ~labels:[ "local_semperos_kcyc"; "spanning_semperos_kcyc"; "local_m3_kcyc" ]
  in
  List.iter
    (fun len ->
      let local = Semper_harness.Microbench.chain_revocation ~mode:Cost.Semperos ~spanning:false ~len in
      let spanning = Semper_harness.Microbench.chain_revocation ~mode:Cost.Semperos ~spanning:true ~len in
      let m3 = Semper_harness.Microbench.chain_revocation ~mode:Cost.M3 ~spanning:false ~len in
      let k c = Some (Int64.to_float c /. 1000.0) in
      T.Series.add_row series ~x:(float_of_int len) [ k local; k spanning; k m3 ])
    lengths;
  T.Series.print
    ~title:
      "Figure 4: revoking capability chains (K cycles; paper @100: local ~95, spanning ~240, M3 ~45)"
    series

(* ------------------------------------------------------------------ *)
(* Figure 5: tree revocation across kernels                            *)

let fig5 ?(batching = false) () =
  let counts = [ 0; 16; 32; 48; 64; 80; 96; 112; 128 ] in
  let kernel_sets = [ 0; 1; 4; 8; 12 ] in
  let series =
    T.Series.create ~x_label:"children"
      ~labels:(List.map (fun k -> Printf.sprintf "1+%d_kernels_us" k) kernel_sets)
  in
  List.iter
    (fun children ->
      let row =
        List.map
          (fun extra_kernels ->
            let cycles = Semper_harness.Microbench.tree_revocation ~batching ~extra_kernels ~children () in
            Some (Int64.to_float cycles /. 2000.0))
          kernel_sets
      in
      T.Series.add_row series ~x:(float_of_int children) row)
    counts;
  let title =
    if batching then "Figure 5 ablation: tree revocation WITH message batching (us)"
    else "Figure 5: parallel revocation of capability trees (us; paper: break-even at 80 children)"
  in
  T.Series.print ~title series

(* ------------------------------------------------------------------ *)
(* Table 4: capability operations of the applications                  *)

let run_single spec = Experiment.run (Experiment.config ~kernels:1 ~services:1 ~instances:1 spec)

let run_512 spec = Experiment.run (Experiment.config ~kernels:64 ~services:64 ~instances:512 spec)

let table4 () =
  let rows =
    List.map
      (fun spec ->
        let s1 = run_single spec in
        let s512 = run_512 spec in
        [
          spec.Workloads.name;
          string_of_int s1.Experiment.cap_ops;
          string_of_int spec.Workloads.paper_cap_ops;
          Printf.sprintf "%.0f" s1.Experiment.cap_ops_per_s;
          string_of_int spec.Workloads.paper_cap_ops_per_s;
          string_of_int s512.Experiment.cap_ops;
          Printf.sprintf "%.0f" s512.Experiment.cap_ops_per_s;
        ])
      Workloads.all
  in
  T.print
    ~title:
      "Table 4: capability operations (single instance and 512 instances on 64 kernels + 64 services)"
    ~header:[ "Benchmark"; "ops(1)"; "paper"; "ops/s(1)"; "paper"; "ops(512)"; "ops/s(512)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figures 6-9: parallel and system efficiency                         *)

let instance_counts = [ 64; 128; 192; 256; 320; 384; 448; 512 ]

let efficiency spec ~kernels ~services ~instances ~single =
  let p = Experiment.run (Experiment.config ~kernels ~services ~instances spec) in
  100.0 *. Experiment.parallel_efficiency ~single ~parallel:p

let fig6 () =
  let series =
    T.Series.create ~x_label:"instances"
      ~labels:(List.map (fun s -> s.Workloads.name ^ "_pct" ) Workloads.all)
  in
  let singles =
    List.map
      (fun spec -> Experiment.run (Experiment.config ~kernels:32 ~services:32 ~instances:1 spec))
      Workloads.all
  in
  List.iter
    (fun n ->
      let row =
        List.map2
          (fun spec single ->
            Some (efficiency spec ~kernels:32 ~services:32 ~instances:n ~single))
          Workloads.all singles
      in
      T.Series.add_row series ~x:(float_of_int n) row)
    instance_counts;
  T.Series.print
    ~title:
      "Figure 6: parallel efficiency, 32 kernels + 32 services (paper @512: 70% (SQLite) .. 78% (tar))"
    series

let sweep_series ~title ~x_label ~configs ~points ~value =
  let series = T.Series.create ~x_label ~labels:(List.map fst configs) in
  List.iter
    (fun x ->
      let row = List.map (fun (_, cfgv) -> value cfgv x) configs in
      T.Series.add_row series ~x:(float_of_int x) row)
    points;
  T.Series.print ~title series

(* Figure 7: service dependence (64 kernels, varying services). *)
let fig7 () =
  let service_counts = [ 4; 8; 16; 32; 48; 64 ] in
  let points = [ 128; 256; 384; 512 ] in
  List.iter
    (fun spec ->
      let single =
        Experiment.run (Experiment.config ~kernels:64 ~services:64 ~instances:1 spec)
      in
      sweep_series
        ~title:
          (Printf.sprintf "Figure 7 (%s): parallel efficiency with 64 kernels, varying services"
             spec.Workloads.name)
        ~x_label:"instances"
        ~configs:
          (List.map
             (fun s -> (Printf.sprintf "%ds_pct" s, s))
             service_counts)
        ~points
        ~value:(fun services n ->
          Some (efficiency spec ~kernels:64 ~services ~instances:n ~single)))
    [ Workloads.tar; Workloads.sqlite ]

(* Figure 8: kernel dependence (64 services, varying kernels). *)
let fig8 () =
  let kernel_counts = [ 4; 8; 16; 32; 48; 64 ] in
  let points = [ 128; 256; 384; 512 ] in
  List.iter
    (fun spec ->
      let single =
        Experiment.run (Experiment.config ~kernels:64 ~services:64 ~instances:1 spec)
      in
      sweep_series
        ~title:
          (Printf.sprintf "Figure 8 (%s): parallel efficiency with 64 services, varying kernels"
             spec.Workloads.name)
        ~x_label:"instances"
        ~configs:(List.map (fun k -> (Printf.sprintf "%dk_pct" k, k)) kernel_counts)
        ~points
        ~value:(fun kernels n ->
          Some (efficiency spec ~kernels ~services:64 ~instances:n ~single)))
    [ Workloads.postmark; Workloads.leveldb ]

(* Figure 9: system efficiency — OS PEs count as zero. *)
let fig9 () =
  let configs = [ (8, 8); (16, 16); (32, 16); (32, 32); (48, 32); (64, 32) ] in
  let pe_counts = [ 128; 256; 384; 512; 640 ] in
  List.iter
    (fun spec ->
      let series =
        T.Series.create ~x_label:"PEs"
          ~labels:(List.map (fun (k, s) -> Printf.sprintf "%dk%ds_pct" k s) configs)
      in
      List.iter
        (fun pes ->
          let row =
            List.map
              (fun (kernels, services) ->
                let instances = pes - kernels - services in
                if instances < kernels then None
                else begin
                  let single =
                    Experiment.run (Experiment.config ~kernels ~services ~instances:1 spec)
                  in
                  let p =
                    Experiment.run (Experiment.config ~kernels ~services ~instances spec)
                  in
                  Some (100.0 *. Experiment.system_efficiency ~single ~parallel:p)
                end)
              configs
          in
          T.Series.add_row series ~x:(float_of_int pes) row)
        pe_counts;
      T.Series.print
        ~title:
          (Printf.sprintf
             "Figure 9 (%s): system efficiency (OS PEs at zero; paper band 62-72%%)"
             spec.Workloads.name)
        series)
    [ Workloads.postmark; Workloads.sqlite ]

(* ------------------------------------------------------------------ *)
(* Figure 10: Nginx webserver                                          *)

let fig10 () =
  let configs =
    [ (8, 8); (8, 16); (8, 32); (16, 16); (32, 16); (32, 32) ]
  in
  let server_counts = [ 32; 64; 96; 128; 160; 192; 224; 256 ] in
  let series =
    T.Series.create ~x_label:"servers"
      ~labels:(List.map (fun (k, s) -> Printf.sprintf "%dk%ds_kreq" k s) configs)
  in
  List.iter
    (fun servers ->
      let row =
        List.map
          (fun (kernels, services) ->
            let o = Nginx_bench.run (Nginx_bench.config ~kernels ~services ~servers ()) in
            Some (o.Nginx_bench.requests_per_s /. 1000.0))
          configs
      in
      T.Series.add_row series ~x:(float_of_int servers) row)
    server_counts;
  T.Series.print
    ~title:
      "Figure 10: Nginx requests/s (x1000; paper: near-linear with 32k/32s, flattening below)"
    series

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)

let ablation_batching () =
  let counts = [ 16; 48; 80; 128 ] in
  let series =
    T.Series.create ~x_label:"children"
      ~labels:[ "no_batching_us"; "batching_us" ]
  in
  List.iter
    (fun children ->
      let plain = Semper_harness.Microbench.tree_revocation ~extra_kernels:12 ~children () in
      let batched = Semper_harness.Microbench.tree_revocation ~batching:true ~extra_kernels:12 ~children () in
      T.Series.add_row series ~x:(float_of_int children)
        [ Some (Int64.to_float plain /. 2000.0); Some (Int64.to_float batched /. 2000.0) ])
    counts;
  T.Series.print
    ~title:"Ablation: revoke message batching, 1+12 kernels (paper suggests batching in 5.2)"
    series

(* Barrelfish-style broadcast revocation (paper §6): relations are not
   stored explicitly, so a revoke broadcasts to every kernel and each
   scans its database. SemperOS's explicit DDL links only message the
   kernels actually holding descendants. *)
let ablation_broadcast () =
  let children = 64 in
  let background_caps = 2000 in
  let series =
    T.Series.create ~x_label:"kernels"
      ~labels:[ "targeted_us"; "targeted_batched_us"; "broadcast_us" ]
  in
  List.iter
    (fun extra_kernels ->
      let t ?batching ?broadcast () =
        Int64.to_float
          (Semper_harness.Microbench.tree_revocation ?batching ?broadcast ~background_caps
             ~extra_kernels ~children ())
        /. 2000.0
      in
      T.Series.add_row series
        ~x:(float_of_int (1 + extra_kernels))
        [ Some (t ()); Some (t ~batching:true ()); Some (t ~broadcast:true ()) ])
    [ 1; 3; 7; 15; 31; 63 ];
  T.Series.print
    ~title:
      "Ablation: targeted (DDL links) vs Barrelfish-style broadcast revocation, 64 children, 2000 background caps/kernel"
    series

let ablation_inflight () =
  (* Spanning-exchange throughput under the 4-message in-flight limit:
     measured as the makespan of a burst of spanning obtains. *)
  let burst = 32 in
  let run () =
    let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:(burst + 2) ()) in
    let donor = System.spawn_vpe sys ~kernel:0 in
    let r = System.syscall_sync sys donor (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
    let sel = match r with Protocol.R_sel s -> s | _ -> failwith "alloc" in
    let vpes = List.init burst (fun _ -> System.spawn_vpe sys ~kernel:1) in
    let t0 = System.now sys in
    List.iter
      (fun v ->
        System.syscall sys v (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel = sel })
          (fun _ -> ()))
      vpes;
    ignore (System.run sys);
    Int64.sub (System.now sys) t0
  in
  let cycles = run () in
  T.print ~title:"Ablation: burst of spanning obtains under the 4-in-flight IKC credit limit"
    ~header:[ "burst"; "makespan_cycles"; "per_op_cycles" ]
    [ [ string_of_int burst; Int64.to_string cycles;
        Int64.to_string (Int64.div cycles (Int64.of_int burst)) ] ]

(* ------------------------------------------------------------------ *)
(* JSON export (BENCH_*.json)                                          *)

(* Machine-readable counterparts of the headline tables, written with
   the deterministic {!Obs.Json} emitter: keys are emitted in a fixed
   order and the simulator is seeded, so repeated runs produce
   byte-identical files that CI can diff. *)

let write_json path json =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Table 3 + Figure 4 as BENCH_micro.json. *)
let json_micro () =
  let open Obs.Json in
  let micro op scope cycles paper =
    Obj
      [
        ("op", Str op);
        ("scope", Str scope);
        ("cycles", Int (Int64.to_int cycles));
        ("paper_cycles", (match paper with Some p -> Int p | None -> Null));
      ]
  in
  let sx, sr = Semper_harness.Microbench.exchange_revoke ~mode:Cost.Semperos ~spanning:false in
  let gx, gr = Semper_harness.Microbench.exchange_revoke ~mode:Cost.Semperos ~spanning:true in
  let chain len =
    let cyc spanning =
      Semper_harness.Microbench.chain_revocation ~mode:Cost.Semperos ~spanning ~len
    in
    Obj
      [
        ("len", Int len);
        ("local_cycles", Int (Int64.to_int (cyc false)));
        ("spanning_cycles", Int (Int64.to_int (cyc true)));
      ]
  in
  write_json "BENCH_micro.json"
    (Obj
       [
         ( "table3",
           Arr
             [
               micro "exchange" "local" sx (Some 3597);
               micro "exchange" "spanning" gx (Some 6484);
               micro "revoke" "local" sr (Some 1997);
               micro "revoke" "spanning" gr (Some 3876);
             ] );
         ("fig4_chain_revocation", Arr (List.map chain [ 0; 20; 40; 60; 80; 100 ]));
       ])

(* Single-instance application runs (the left half of Table 4) as
   BENCH_apps.json. The 512-instance column is deliberately omitted:
   it takes minutes, and the JSON export is meant to be cheap enough
   for CI. *)
let json_apps () =
  let open Obs.Json in
  let app spec =
    let o = run_single spec in
    Obj
      [
        ("workload", Str spec.Workloads.name);
        ("cap_ops", Int o.Experiment.cap_ops);
        ("paper_cap_ops", Int spec.Workloads.paper_cap_ops);
        ("cap_ops_per_s", Float o.Experiment.cap_ops_per_s);
        ("makespan_cycles", Int (Int64.to_int o.Experiment.max_runtime));
        ("exchanges_spanning", Int o.Experiment.exchanges_spanning);
        ("revokes_spanning", Int o.Experiment.revokes_spanning);
      ]
  in
  write_json "BENCH_apps.json" (Obj [ ("table4_single", Arr (List.map app Workloads.all)) ])

let json_export () =
  json_micro ();
  json_apps ()

(* ------------------------------------------------------------------ *)

let ablations () =
  ablation_batching ();
  ablation_broadcast ();
  ablation_inflight ()

let all () =
  table3 ();
  fig4 ();
  fig5 ();
  table4 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  ablations ()
