(** Regenerates every table and figure of the paper's evaluation
    (§5). Each function prints the same rows or series the paper
    reports; EXPERIMENTS.md records paper-vs-measured.

    Every experiment point is an independent, self-contained simulation,
    so each figure first builds its full list of run specs, fans them
    out across OCaml domains via {!Semperos.Runner} (the [--jobs] flag
    of [bench/main.exe]), and only then prints — results are collected
    in submission order, so the output is byte-identical for any job
    count. *)

open Semperos
module T = Table
module Microbench = Semper_harness.Microbench

let pct = Printf.sprintf "%.1f"

(* [chunks n xs] splits [xs] into consecutive groups of [n]. *)
let rec chunks n = function
  | [] -> []
  | xs ->
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else match rest with [] -> invalid_arg "chunks: ragged list" | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let group, rest = take n [] xs in
    group :: chunks n rest

(* ------------------------------------------------------------------ *)
(* Table 3: runtimes of capability operations                          *)

let table3 () =
  let results =
    Microbench.exchange_revokes ~jobs:(Runner.jobs ())
      [ (Cost.Semperos, false); (Cost.Semperos, true); (Cost.M3, false) ]
  in
  let (sx, sr), (gx, gr), (mx, mr) =
    match results with [ s; g; m ] -> (s, g, m) | _ -> assert false
  in
  let row op scope measured paper m3_measured m3_paper =
    [ op; scope; Int64.to_string measured; paper; m3_measured; m3_paper ]
  in
  T.print ~title:"Table 3: runtimes of capability operations (cycles)"
    ~header:[ "Operation"; "Scope"; "SemperOS"; "paper"; "M3"; "paper" ]
    [
      row "Exchange" "Local" sx "3597" (Int64.to_string mx) "3250";
      row "Exchange" "Spanning" gx "6484" "-" "-";
      row "Revoke" "Local" sr "1997" (Int64.to_string mr) "1423";
      row "Revoke" "Spanning" gr "3876" "-" "-";
    ]

(* ------------------------------------------------------------------ *)
(* Figure 4: chain revocation                                          *)

let fig4 () =
  let lengths = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let specs =
    List.concat_map
      (fun len ->
        [
          { Microbench.c_mode = Cost.Semperos; c_spanning = false; c_len = len; c_batching = false };
          { Microbench.c_mode = Cost.Semperos; c_spanning = true; c_len = len; c_batching = false };
          { Microbench.c_mode = Cost.M3; c_spanning = false; c_len = len; c_batching = false };
        ])
      lengths
  in
  let cycles = Microbench.chain_revocations ~jobs:(Runner.jobs ()) specs in
  let series =
    T.Series.create ~x_label:"chain_len"
      ~labels:[ "local_semperos_kcyc"; "spanning_semperos_kcyc"; "local_m3_kcyc" ]
  in
  List.iter2
    (fun len row ->
      let k c = Some (Int64.to_float c /. 1000.0) in
      T.Series.add_row series ~x:(float_of_int len) (List.map k row))
    lengths (chunks 3 cycles);
  T.Series.print
    ~title:
      "Figure 4: revoking capability chains (K cycles; paper @100: local ~95, spanning ~240, M3 ~45)"
    series

(* ------------------------------------------------------------------ *)
(* Figure 5: tree revocation across kernels                            *)

let fig5 ?(batching = false) () =
  let counts = [ 0; 16; 32; 48; 64; 80; 96; 112; 128 ] in
  let kernel_sets = [ 0; 1; 4; 8; 12 ] in
  let specs =
    List.concat_map
      (fun children ->
        List.map
          (fun extra_kernels -> Microbench.tree_spec ~batching ~extra_kernels ~children ())
          kernel_sets)
      counts
  in
  let cycles = Microbench.tree_revocations ~jobs:(Runner.jobs ()) specs in
  let series =
    T.Series.create ~x_label:"children"
      ~labels:(List.map (fun k -> Printf.sprintf "1+%d_kernels_us" k) kernel_sets)
  in
  List.iter2
    (fun children row ->
      T.Series.add_row series ~x:(float_of_int children)
        (List.map (fun c -> Some (Int64.to_float c /. 2000.0)) row))
    counts
    (chunks (List.length kernel_sets) cycles);
  let title =
    if batching then "Figure 5 ablation: tree revocation WITH message batching (us)"
    else "Figure 5: parallel revocation of capability trees (us; paper: break-even at 80 children)"
  in
  T.Series.print ~title series

(* ------------------------------------------------------------------ *)
(* Table 4: capability operations of the applications                  *)

let single_config spec = Experiment.config ~kernels:1 ~services:1 ~instances:1 spec

let table4 () =
  let outcomes =
    Runner.experiments
      (List.concat_map
         (fun spec ->
           [ single_config spec; Experiment.config ~kernels:64 ~services:64 ~instances:512 spec ])
         Workloads.all)
  in
  let rows =
    List.map2
      (fun spec pair ->
        let s1, s512 = match pair with [ a; b ] -> (a, b) | _ -> assert false in
        [
          spec.Workloads.name;
          string_of_int s1.Experiment.cap_ops;
          string_of_int spec.Workloads.paper_cap_ops;
          Printf.sprintf "%.0f" s1.Experiment.cap_ops_per_s;
          string_of_int spec.Workloads.paper_cap_ops_per_s;
          string_of_int s512.Experiment.cap_ops;
          Printf.sprintf "%.0f" s512.Experiment.cap_ops_per_s;
        ])
      Workloads.all (chunks 2 outcomes)
  in
  T.print
    ~title:
      "Table 4: capability operations (single instance and 512 instances on 64 kernels + 64 services)"
    ~header:[ "Benchmark"; "ops(1)"; "paper"; "ops/s(1)"; "paper"; "ops(512)"; "ops/s(512)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figures 6-9: parallel and system efficiency                         *)

let instance_counts = [ 64; 128; 192; 256; 320; 384; 448; 512 ]

let fig6 () =
  let series =
    T.Series.create ~x_label:"instances"
      ~labels:(List.map (fun s -> s.Workloads.name ^ "_pct" ) Workloads.all)
  in
  let singles =
    Runner.experiments
      (List.map (fun spec -> Experiment.config ~kernels:32 ~services:32 ~instances:1 spec)
         Workloads.all)
  in
  let grid =
    Runner.experiments
      (List.concat_map
         (fun n ->
           List.map (fun spec -> Experiment.config ~kernels:32 ~services:32 ~instances:n spec)
             Workloads.all)
         instance_counts)
  in
  List.iter2
    (fun n row ->
      let cells =
        List.map2
          (fun single p -> Some (100.0 *. Experiment.parallel_efficiency ~single ~parallel:p))
          singles row
      in
      T.Series.add_row series ~x:(float_of_int n) cells)
    instance_counts (chunks (List.length Workloads.all) grid)
  ;
  T.Series.print
    ~title:
      "Figure 6: parallel efficiency, 32 kernels + 32 services (paper @512: 70% (SQLite) .. 78% (tar))"
    series

(* Shared driver for Figures 7 and 8: for each workload, one
   single-instance reference run plus a (sweep-value x instance-count)
   grid, all fanned out in one batch, then printed as one series per
   workload. *)
let sweep_figure ~specs ~sweep_values ~points ~config_of ~label_of ~title_of =
  let per_spec = 1 + (List.length points * List.length sweep_values) in
  let cfgs =
    List.concat_map
      (fun spec ->
        Experiment.config ~kernels:64 ~services:64 ~instances:1 spec
        :: List.concat_map
             (fun x -> List.map (fun v -> config_of spec v x) sweep_values)
             points)
      specs
  in
  let outcomes = Runner.experiments cfgs in
  List.iter2
    (fun spec group ->
      let single, grid =
        match group with s :: rest -> (s, rest) | [] -> assert false
      in
      let series =
        T.Series.create ~x_label:"instances" ~labels:(List.map label_of sweep_values)
      in
      List.iter2
        (fun x row ->
          T.Series.add_row series ~x:(float_of_int x)
            (List.map
               (fun p -> Some (100.0 *. Experiment.parallel_efficiency ~single ~parallel:p))
               row))
        points
        (chunks (List.length sweep_values) grid);
      T.Series.print ~title:(title_of spec) series)
    specs (chunks per_spec outcomes)

(* Figure 7: service dependence (64 kernels, varying services). *)
let fig7 () =
  sweep_figure
    ~specs:[ Workloads.tar; Workloads.sqlite ]
    ~sweep_values:[ 4; 8; 16; 32; 48; 64 ]
    ~points:[ 128; 256; 384; 512 ]
    ~config_of:(fun spec services n -> Experiment.config ~kernels:64 ~services ~instances:n spec)
    ~label_of:(fun s -> Printf.sprintf "%ds_pct" s)
    ~title_of:(fun spec ->
      Printf.sprintf "Figure 7 (%s): parallel efficiency with 64 kernels, varying services"
        spec.Workloads.name)

(* Figure 8: kernel dependence (64 services, varying kernels). *)
let fig8 () =
  sweep_figure
    ~specs:[ Workloads.postmark; Workloads.leveldb ]
    ~sweep_values:[ 4; 8; 16; 32; 48; 64 ]
    ~points:[ 128; 256; 384; 512 ]
    ~config_of:(fun spec kernels n -> Experiment.config ~kernels ~services:64 ~instances:n spec)
    ~label_of:(fun k -> Printf.sprintf "%dk_pct" k)
    ~title_of:(fun spec ->
      Printf.sprintf "Figure 8 (%s): parallel efficiency with 64 services, varying kernels"
        spec.Workloads.name)

(* Figure 9: system efficiency — OS PEs count as zero. *)
let fig9 () =
  let configs = [ (8, 8); (16, 16); (32, 16); (32, 32); (48, 32); (64, 32) ] in
  let pe_counts = [ 128; 256; 384; 512; 640 ] in
  List.iter
    (fun spec ->
      (* One single-instance reference per (kernels, services) shape —
         the reference is independent of the PE count. *)
      let singles =
        Runner.experiments
          (List.map
             (fun (kernels, services) ->
               Experiment.config ~kernels ~services ~instances:1 spec)
             configs)
      in
      (* Only cells with at least one instance per kernel run. *)
      let cells =
        List.concat_map
          (fun pes ->
            List.filter_map
              (fun (kernels, services) ->
                let instances = pes - kernels - services in
                if instances < kernels then None else Some (kernels, services, instances))
              configs)
          pe_counts
      in
      let outcomes =
        Runner.experiments
          (List.map
             (fun (kernels, services, instances) ->
               Experiment.config ~kernels ~services ~instances spec)
             cells)
      in
      let results = ref (List.combine cells outcomes) in
      let series =
        T.Series.create ~x_label:"PEs"
          ~labels:(List.map (fun (k, s) -> Printf.sprintf "%dk%ds_pct" k s) configs)
      in
      List.iter
        (fun pes ->
          let row =
            List.map2
              (fun (kernels, services) single ->
                let instances = pes - kernels - services in
                if instances < kernels then None
                else begin
                  let p =
                    match !results with
                    | ((k, s, i), p) :: rest
                      when k = kernels && s = services && i = instances ->
                      results := rest;
                      p
                    | _ -> assert false
                  in
                  Some (100.0 *. Experiment.system_efficiency ~single ~parallel:p)
                end)
              configs singles
          in
          T.Series.add_row series ~x:(float_of_int pes) row)
        pe_counts;
      T.Series.print
        ~title:
          (Printf.sprintf
             "Figure 9 (%s): system efficiency (OS PEs at zero; paper band 62-72%%)"
             spec.Workloads.name)
        series)
    [ Workloads.postmark; Workloads.sqlite ]

(* ------------------------------------------------------------------ *)
(* Figure 10: Nginx webserver                                          *)

let fig10 () =
  let configs =
    [ (8, 8); (8, 16); (8, 32); (16, 16); (32, 16); (32, 32) ]
  in
  let server_counts = [ 32; 64; 96; 128; 160; 192; 224; 256 ] in
  let outcomes =
    Runner.map
      (fun (servers, (kernels, services)) ->
        Nginx_bench.run (Nginx_bench.config ~kernels ~services ~servers ()))
      (List.concat_map
         (fun servers -> List.map (fun cfg -> (servers, cfg)) configs)
         server_counts)
  in
  let series =
    T.Series.create ~x_label:"servers"
      ~labels:(List.map (fun (k, s) -> Printf.sprintf "%dk%ds_kreq" k s) configs)
  in
  List.iter2
    (fun servers row ->
      T.Series.add_row series ~x:(float_of_int servers)
        (List.map (fun o -> Some (o.Nginx_bench.requests_per_s /. 1000.0)) row))
    server_counts
    (chunks (List.length configs) outcomes);
  T.Series.print
    ~title:
      "Figure 10: Nginx requests/s (x1000; paper: near-linear with 32k/32s, flattening below)"
    series

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)

let ablation_batching () =
  let counts = [ 16; 48; 80; 128 ] in
  let cycles =
    Microbench.tree_revocations ~jobs:(Runner.jobs ())
      (List.concat_map
         (fun children ->
           [
             Microbench.tree_spec ~extra_kernels:12 ~children ();
             Microbench.tree_spec ~batching:true ~extra_kernels:12 ~children ();
           ])
         counts)
  in
  let series =
    T.Series.create ~x_label:"children"
      ~labels:[ "no_batching_us"; "batching_us" ]
  in
  List.iter2
    (fun children row ->
      T.Series.add_row series ~x:(float_of_int children)
        (List.map (fun c -> Some (Int64.to_float c /. 2000.0)) row))
    counts (chunks 2 cycles);
  T.Series.print
    ~title:"Ablation: revoke message batching, 1+12 kernels (paper suggests batching in 5.2)"
    series

(* Barrelfish-style broadcast revocation (paper §6): relations are not
   stored explicitly, so a revoke broadcasts to every kernel and each
   scans its database. SemperOS's explicit DDL links only message the
   kernels actually holding descendants. *)
let ablation_broadcast () =
  let children = 64 in
  let background_caps = 2000 in
  let kernel_counts = [ 1; 3; 7; 15; 31; 63 ] in
  let cycles =
    Microbench.tree_revocations ~jobs:(Runner.jobs ())
      (List.concat_map
         (fun extra_kernels ->
           let t ?batching ?broadcast () =
             Microbench.tree_spec ?batching ?broadcast ~background_caps ~extra_kernels ~children ()
           in
           [ t (); t ~batching:true (); t ~broadcast:true () ])
         kernel_counts)
  in
  let series =
    T.Series.create ~x_label:"kernels"
      ~labels:[ "targeted_us"; "targeted_batched_us"; "broadcast_us" ]
  in
  List.iter2
    (fun extra_kernels row ->
      T.Series.add_row series
        ~x:(float_of_int (1 + extra_kernels))
        (List.map (fun c -> Some (Int64.to_float c /. 2000.0)) row))
    kernel_counts (chunks 3 cycles);
  T.Series.print
    ~title:
      "Ablation: targeted (DDL links) vs Barrelfish-style broadcast revocation, 64 children, 2000 background caps/kernel"
    series

let ablation_inflight () =
  (* Spanning-exchange throughput under the 4-message in-flight limit:
     measured as the makespan of a burst of spanning obtains. *)
  let burst = 32 in
  let run () =
    let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:(burst + 2) ()) in
    let donor = System.spawn_vpe sys ~kernel:0 in
    let r = System.syscall_sync sys donor (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }) in
    let sel = match r with Protocol.R_sel s -> s | _ -> failwith "alloc" in
    let vpes = List.init burst (fun _ -> System.spawn_vpe sys ~kernel:1) in
    let t0 = System.now sys in
    List.iter
      (fun v ->
        System.syscall sys v (Protocol.Sys_obtain_from { donor_vpe = donor.Vpe.id; donor_sel = sel })
          (fun _ -> ()))
      vpes;
    ignore (System.run sys);
    Int64.sub (System.now sys) t0
  in
  let cycles = run () in
  T.print ~title:"Ablation: burst of spanning obtains under the 4-in-flight IKC credit limit"
    ~header:[ "burst"; "makespan_cycles"; "per_op_cycles" ]
    [ [ string_of_int burst; Int64.to_string cycles;
        Int64.to_string (Int64.div cycles (Int64.of_int burst)) ] ]

(* ------------------------------------------------------------------ *)
(* JSON export (BENCH_*.json)                                          *)

(* Machine-readable counterparts of the headline tables (see
   {!Semperos.Bench_json}): keys are emitted in a fixed order, runs are
   collected in submission order, and the simulator is seeded, so
   repeated runs — at any job count — produce byte-identical files that
   CI can diff. *)
let json_export () =
  Bench_json.write ~path:"BENCH_micro.json" (Bench_json.micro ~jobs:(Runner.jobs ()) ());
  Bench_json.write ~path:"BENCH_apps.json" (Bench_json.apps ~jobs:(Runner.jobs ()) ())

(* ------------------------------------------------------------------ *)

let ablations () =
  ablation_batching ();
  ablation_broadcast ();
  ablation_inflight ()

let all () =
  table3 ();
  fig4 ();
  fig5 ();
  table4 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  ablations ()
