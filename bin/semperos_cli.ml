(* Command-line front end for the SemperOS simulator.

   semperos_cli micro   — Table 3 style capability-operation timings
   semperos_cli chain   — chain revocation timing (Figure 4 point)
   semperos_cli tree    — tree revocation timing (Figure 5 point)
   semperos_cli run     — run an application workload at scale
   semperos_cli nginx   — run the webserver benchmark
   semperos_cli fuzz    — fuzz the capability protocols under faults
   semperos_cli record  — run a figure experiment with periodic checkpoints
   semperos_cli replay  — resume a recorded figure run from a checkpoint
   semperos_cli shrink  — minimise a failing fuzz case by delta debugging
   semperos_cli bench   — wall-clock throughput of the simulator itself
   semperos_cli stats   — run a workload, dump the metrics registry as JSON
   semperos_cli trace   — run a workload, dump the protocol trace as JSONL *)

open Cmdliner
open Semperos

let mode_arg =
  let doc = "Run the single-kernel M3 baseline instead of SemperOS." in
  Term.app
    (Term.const (fun m3 -> if m3 then Cost.M3 else Cost.Semperos))
    Arg.(value & flag & info [ "m3" ] ~doc)

(* Evaluates to the job count and records it as the session default
   (see {!Semperos.Runner}). Results are collected in submission order,
   so any job count prints identical bytes. *)
let jobs_arg =
  let doc =
    "Run independent simulations on $(docv) OCaml domains (default: available cores; 1 = serial)."
  in
  Term.app
    (Term.const (fun j ->
         (match j with
         | Some n when n >= 1 -> Runner.set_jobs n
         | Some n ->
           Fmt.epr "error: --jobs must be >= 1 (got %d)@." n;
           exit 2
         | None -> ());
         Runner.jobs ()))
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)

let micro_cmd =
  let run mode spanning =
    let exchange, revoke = Semper_harness.Microbench.exchange_revoke ~mode ~spanning in
    Table.print ~title:"Capability operation runtimes (cycles)"
      ~header:[ "operation"; "scope"; "cycles" ]
      [
        [ "exchange"; (if spanning then "spanning" else "local"); Int64.to_string exchange ];
        [ "revoke"; (if spanning then "spanning" else "local"); Int64.to_string revoke ];
      ]
  in
  let spanning =
    Arg.(value & flag & info [ "spanning" ] ~doc:"Cross PE-group boundaries (two kernels).")
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Time one capability exchange and revoke (Table 3).")
    Term.(const run $ mode_arg $ spanning)

let chain_cmd =
  let run mode spanning len =
    let cycles = Semper_harness.Microbench.chain_revocation ~mode ~spanning ~len () in
    Fmt.pr "chain of %d: revoked in %Ld cycles (%.1f us)@." len cycles
      (Int64.to_float cycles /. 2000.0)
  in
  let spanning = Arg.(value & flag & info [ "spanning" ] ~doc:"Alternate between two kernels.") in
  let len =
    Arg.(value & opt int 100 & info [ "length" ] ~docv:"N" ~doc:"Chain length (exchanges).")
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Time revoking a capability chain (Figure 4).")
    Term.(const run $ mode_arg $ spanning $ len)

let tree_cmd =
  let run children extra_kernels batching =
    let cycles = Semper_harness.Microbench.tree_revocation ~batching ~extra_kernels ~children () in
    Fmt.pr "tree of %d children over 1+%d kernels%s: revoked in %Ld cycles (%.1f us)@." children
      extra_kernels
      (if batching then " (batched)" else "")
      cycles
      (Int64.to_float cycles /. 2000.0)
  in
  let children =
    Arg.(value & opt int 128 & info [ "children" ] ~docv:"N" ~doc:"Child capabilities.")
  in
  let extra =
    Arg.(value & opt int 12 & info [ "kernels" ] ~docv:"K" ~doc:"Extra kernels holding children.")
  in
  let batching =
    Arg.(value & flag & info [ "batching" ] ~doc:"Enable revoke message batching (ablation).")
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Time revoking a capability tree (Figure 5).")
    Term.(const run $ children $ extra $ batching)

(* ------------------------------------------------------------------ *)

let workload_arg =
  let parse s =
    match Workloads.by_name s with
    | Some spec -> Ok spec
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown workload %S (expected one of: %s)" s
             (String.concat ", " (List.map (fun w -> w.Workloads.name) Workloads.all))))
  in
  let print ppf w = Fmt.string ppf w.Workloads.name in
  Arg.conv (parse, print)

let run_cmd =
  let run mode workload kernels services instances contention jobs =
    let cfg =
      Experiment.config ~mode ?mem_contention:contention ~kernels ~services ~instances workload
    in
    (* The single-instance reference and the scaled run are independent
       simulations; with [--jobs 2] they proceed on separate domains. *)
    let single, o =
      match Runner.experiments ~jobs [ { cfg with Experiment.instances = 1 }; cfg ] with
      | [ s; o ] -> (s, o)
      | _ -> assert false
    in
    let eff = 100.0 *. Experiment.parallel_efficiency ~single ~parallel:o in
    let sys_eff = 100.0 *. Experiment.system_efficiency ~single ~parallel:o in
    Table.print
      ~title:
        (Fmt.str "%s x%d on %d kernels + %d services (%s)" workload.Workloads.name instances
           kernels services
           (match mode with Cost.Semperos -> "SemperOS" | Cost.M3 -> "M3"))
      ~header:[ "metric"; "value" ]
      [
        [ "mean runtime (ms)"; Fmt.str "%.3f" (o.Experiment.mean_runtime /. 2.0e6) ];
        [ "makespan (ms)"; Fmt.str "%.3f" (Int64.to_float o.Experiment.max_runtime /. 2.0e6) ];
        [ "capability ops"; string_of_int o.Experiment.cap_ops ];
        [ "capability ops/s"; Fmt.str "%.0f" o.Experiment.cap_ops_per_s ];
        [ "spanning exchanges"; string_of_int o.Experiment.exchanges_spanning ];
        [ "spanning revokes"; string_of_int o.Experiment.revokes_spanning ];
        [ "parallel efficiency"; Fmt.str "%.1f%%" eff ];
        [ "system efficiency"; Fmt.str "%.1f%%" sys_eff ];
        [ "kernel utilisation"; Fmt.str "%.1f%%" (100.0 *. o.Experiment.kernel_utilisation) ];
        [ "service utilisation"; Fmt.str "%.1f%%" (100.0 *. o.Experiment.service_utilisation) ];
      ]
  in
  let workload =
    Arg.(required & opt (some workload_arg) None & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Application workload (tar, untar, find, sqlite, leveldb, postmark).")
  in
  let kernels = Arg.(value & opt int 32 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let services =
    Arg.(value & opt int 32 & info [ "services"; "s" ] ~docv:"S" ~doc:"m3fs instances.")
  in
  let instances =
    Arg.(value & opt int 512 & info [ "instances"; "n" ] ~docv:"N" ~doc:"Benchmark instances.")
  in
  let contention =
    Arg.(value & opt (some float) None
         & info [ "contention" ] ~docv:"C" ~doc:"Memory-contention coefficient (default 0.35).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an application benchmark at scale (Figures 6-9).")
    Term.(const run $ mode_arg $ workload $ kernels $ services $ instances $ contention $ jobs_arg)

let trace_dump_cmd =
  let run workload out =
    let t = workload.Workloads.build () in
    (match out with
    | Some path ->
      Trace_io.save path t;
      Fmt.pr "wrote %s (%d ops, %d files)@." path (List.length t.Trace.ops)
        (List.length t.Trace.files)
    | None -> print_string (Trace_io.to_string t))
  in
  let workload =
    Arg.(required & opt (some workload_arg) None & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Workload whose trace to dump.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace-dump" ~doc:"Dump a workload's syscall trace in the text format.")
    Term.(const run $ workload $ out)

let trace_replay_cmd =
  let run path kernels =
    match Trace_io.load path with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
    | Ok trace ->
      let sys = System.create (System.config ~kernels ~user_pes_per_kernel:4 ()) in
      let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:trace.Trace.files () in
      let vpe = System.spawn_vpe sys ~kernel:(kernels - 1) in
      let result = ref None in
      Replay.run sys fs ~vpe trace (fun r -> result := Some r);
      ignore (System.run sys);
      (match !result with
      | None ->
        Fmt.epr "replay did not complete@.";
        exit 1
      | Some r ->
        List.iter (Fmt.pr "replay error: %s@.") r.Replay.errors;
        Fmt.pr "%s: %d I/O ops, %d client capability ops, %.3f ms, %d errors@." r.Replay.trace
          r.Replay.io_ops r.Replay.client_cap_ops
          (Int64.to_float (Replay.runtime r) /. 2.0e6)
          (List.length r.Replay.errors);
        let report = Audit.run sys in
        Fmt.pr "post-replay audit: %a@." Audit.pp_report report)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file to replay.")
  in
  let kernels = Arg.(value & opt int 2 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  Cmd.v
    (Cmd.info "trace-replay" ~doc:"Replay a saved syscall trace against a fresh system.")
    Term.(const run $ path $ kernels)

let latency_cmd =
  let run workload kernels services instances =
    let trace = Trace.with_prefix "/i0" (workload.Workloads.build ()) in
    ignore trace;
    (* Run the workload and print each kernel's per-syscall latency
       profile. *)
    let sys =
      System.create (System.config ~kernels ~user_pes_per_kernel:((instances / kernels) + 2) ())
    in
    let fs =
      M3fs.create ~config:workload.Workloads.fs_config sys ~kernel:0 ~name:"m3fs"
        ~files:
          (List.concat
             (List.init instances (fun i ->
                  (Trace.with_prefix (Fmt.str "/i%d" i) (workload.Workloads.build ())).Trace.files)))
        ()
    in
    ignore services;
    for i = 0 to instances - 1 do
      let vpe = System.spawn_vpe sys ~kernel:(i mod kernels) in
      Replay.run sys fs ~vpe
        (Trace.with_prefix (Fmt.str "/i%d" i) (workload.Workloads.build ()))
        (fun _ -> ())
    done;
    ignore (System.run sys);
    List.iter
      (fun k ->
        let stats = Kernel.stats k in
        let rows = ref [] in
        Hashtbl.iter
          (fun name acc ->
            rows :=
              [
                name;
                string_of_int (Stats.Acc.count acc);
                Fmt.str "%.0f" (Stats.Acc.mean acc);
                Fmt.str "%.0f" (Stats.Acc.min acc);
                Fmt.str "%.0f" (Stats.Acc.max acc);
              ]
              :: !rows)
          stats.Kernel.latencies;
        if !rows <> [] then
          Table.print
            ~title:(Fmt.str "kernel %d syscall latencies (cycles)" (Kernel.id k))
            ~header:[ "syscall"; "count"; "mean"; "min"; "max" ]
            (List.sort compare !rows))
      (System.kernels sys)
  in
  let workload =
    Arg.(required & opt (some workload_arg) None & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Workload to profile.")
  in
  let kernels = Arg.(value & opt int 2 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let services = Arg.(value & opt int 1 & info [ "services"; "s" ] ~docv:"S" ~doc:"(unused, single service)") in
  let instances = Arg.(value & opt int 8 & info [ "instances"; "n" ] ~docv:"N" ~doc:"Instances.") in
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-syscall latency profile of a workload run.")
    Term.(const run $ workload $ kernels $ services $ instances)

(* Shared driver for the observability commands: run [instances] copies
   of a workload against one m3fs on a multi-kernel system, then hand
   the system to [emit]. Everything is sim-clock driven, so the same
   workload and shape produce byte-identical output on every run. *)
let run_observed workload kernels instances emit =
  let sys =
    System.create (System.config ~kernels ~user_pes_per_kernel:((instances / kernels) + 2) ())
  in
  let fs =
    M3fs.create ~config:workload.Workloads.fs_config sys ~kernel:0 ~name:"m3fs"
      ~files:
        (List.concat
           (List.init instances (fun i ->
                (Trace.with_prefix (Fmt.str "/i%d" i) (workload.Workloads.build ())).Trace.files)))
      ()
  in
  for i = 0 to instances - 1 do
    let vpe = System.spawn_vpe sys ~kernel:(i mod kernels) in
    Replay.run sys fs ~vpe
      (Trace.with_prefix (Fmt.str "/i%d" i) (workload.Workloads.build ()))
      (fun _ -> ())
  done;
  ignore (System.run sys);
  emit sys

let obs_workload_args =
  let workload =
    Arg.(required & opt (some workload_arg) None & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Workload to run.")
  in
  let kernels = Arg.(value & opt int 2 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let instances = Arg.(value & opt int 8 & info [ "instances"; "n" ] ~docv:"N" ~doc:"Instances.") in
  (workload, kernels, instances)

let stats_cmd =
  let workload, kernels, instances = obs_workload_args in
  let run workload kernels instances =
    run_observed workload kernels instances (fun sys ->
        print_endline (Obs.Json.to_string (Obs.Registry.snapshot (System.obs sys))))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload and print the full metrics registry (fabric, DTU, and per-kernel \
          counters, gauges, histograms) as one JSON object. Deterministic: identical invocations \
          print identical bytes.")
    Term.(const run $ workload $ kernels $ instances)

let trace_cmd =
  let workload, kernels, instances = obs_workload_args in
  let run workload kernels instances tail =
    run_observed workload kernels instances (fun sys ->
        let buf = System.trace_buffer sys in
        let events =
          match tail with Some n -> Obs.Trace.tail buf ~n | None -> Obs.Trace.events buf
        in
        let dropped = Obs.Trace.dropped buf in
        if dropped > 0 then
          Fmt.epr "note: ring capacity reached; %d oldest events dropped@." dropped;
        List.iter (fun e -> print_endline (Obs.Json.to_string (Obs.Trace.event_json e))) events)
  in
  let tail =
    Arg.(value & opt (some int) None & info [ "tail" ] ~docv:"N"
           ~doc:"Print only the last N events.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload and dump the protocol trace ring (syscall spans, IKC legs, revocation \
          waves, migrations) as JSONL, one event per line, oldest first. Timestamps are \
          sim-clock cycles, so identical invocations print identical bytes.")
    Term.(const run $ workload $ kernels $ instances $ tail)

let fuzz_cmd =
  let run workload_seed fault_seed runs kernels vpes ops spares no_delay no_dup no_drop no_stall
      no_retry verbose jobs =
    if kernels < 1 || kernels + max 0 spares > Cost.max_kernels then begin
      Fmt.epr "error: --kernels plus --spares must be in [1, %d]@." Cost.max_kernels;
      exit 2
    end;
    if vpes < 1 || (vpes + kernels - 1) / kernels > Cost.max_pes_per_kernel then begin
      Fmt.epr "error: --vpes must be in [1, %d] for %d kernels@."
        (Cost.max_pes_per_kernel * kernels) kernels;
      exit 2
    end;
    if ops < 0 || runs < 0 then begin
      Fmt.epr "error: --ops and --runs must be non-negative@.";
      exit 2
    end;
    let spec =
      Fuzz.spec ~kernels ~vpes ~ops ~spares ~delay:(not no_delay) ~dup:(not no_dup)
        ~drop:(not no_drop) ~stall:(not no_stall) ~retry:(not no_retry) ()
    in
    (* Non-default options must ride along in the replay hint, or the
       printed command would not reproduce the failure. *)
    let spec_flags =
      String.concat ""
        (List.filter_map
           (fun (on, flag) -> if on then Some (" " ^ flag) else None)
           [
             (kernels <> 3, Fmt.str "--kernels %d" kernels);
             (vpes <> 6, Fmt.str "--vpes %d" vpes);
             (ops <> 40, Fmt.str "--ops %d" ops);
             (spares <> 0, Fmt.str "--spares %d" spares);
             (no_delay, "--no-delay");
             (no_dup, "--no-dup");
             (no_drop, "--no-drop");
             (no_stall, "--no-stall");
             (no_retry, "--no-retry");
           ])
    in
    let outcomes = Fuzz.run_many ~jobs ~spec ~workload_seed ~fault_seed ~runs () in
    let bad = List.filter (fun o -> o.Fuzz.failures <> []) outcomes in
    List.iter
      (fun o ->
        if verbose || o.Fuzz.failures <> [] then Fmt.pr "%a@." Fuzz.pp_outcome o)
      outcomes;
    Fmt.pr "fuzz: %d/%d seed pairs clean@." (runs - List.length bad) runs;
    List.iter
      (fun o ->
        Fmt.pr "replay: semperos_cli fuzz --workload-seed %d --fault-seed %d --runs 1%s@."
          o.Fuzz.workload_seed o.Fuzz.fault_seed spec_flags)
      bad;
    if bad <> [] then exit 1
  in
  let wseed =
    Arg.(value & opt int 1 & info [ "workload-seed" ] ~docv:"N" ~doc:"First workload seed.")
  in
  let fseed =
    Arg.(value & opt int 1001 & info [ "fault-seed" ] ~docv:"M" ~doc:"First fault-plan seed.")
  in
  let runs =
    Arg.(value & opt int 50 & info [ "runs"; "n" ] ~docv:"R"
         ~doc:"Seed pairs to run: (N+i, M+i) for i in [0, R).")
  in
  let kernels = Arg.(value & opt int 3 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let vpes = Arg.(value & opt int 6 & info [ "vpes" ] ~docv:"V" ~doc:"VPEs in the workload.") in
  let ops = Arg.(value & opt int 40 & info [ "ops" ] ~docv:"O" ~doc:"Workload steps per run.") in
  let spares =
    Arg.(value & opt int 0 & info [ "spares" ] ~docv:"S"
         ~doc:"Spare kernels; adds fleet join/drain transitions to the workload.")
  in
  let flag name doc = Arg.(value & flag & info [ name ] ~doc) in
  let no_delay = flag "no-delay" "Disable delay injection." in
  let no_dup = flag "no-dup" "Disable duplicate delivery." in
  let no_drop = flag "no-drop" "Disable message drops." in
  let no_stall = flag "no-stall" "Disable kernel stalls." in
  let no_retry =
    flag "no-retry" "Disable kernel retransmission (to demonstrate the oracles failing)."
  in
  let verbose = flag "verbose" "Print every outcome line, not just failures." in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the distributed capability protocols under injected faults. Every run is \
          deterministic in (workload seed, fault seed); failures print the exact pair to replay.")
    Term.(const run $ wseed $ fseed $ runs $ kernels $ vpes $ ops $ spares $ no_delay $ no_dup
          $ no_drop $ no_stall $ no_retry $ verbose $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* Recorded figure runs: record / replay / shrink.

   [record] runs a figure sweep with periodic result-prefix checkpoints
   in a directory; [replay --from N] resumes from the nearest checkpoint
   and must print bytes identical to the recording (the resume note goes
   to stderr, keeping stdout comparable). *)

let figure_arg =
  let parse s =
    match Figures.find s with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown figure %S (expected one of: %s)" s
             (String.concat ", " (List.map (fun f -> f.Figures.name) Figures.all))))
  in
  Arg.conv (parse, fun ppf f -> Fmt.string ppf f.Figures.name)

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir"; "d" ] ~docv:"DIR"
       ~doc:"Recording directory (manifest plus ckpt-<n>.img images).")

let json_out_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Also write the figure's JSON to FILE.")

let emit_output out (o : Figures.output) =
  print_string o.Figures.text;
  match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Obs.Json.to_string o.Figures.json);
    output_char oc '\n';
    close_out oc

let record_cmd =
  let run fig smoke every dir out jobs =
    if every < 1 then begin
      Fmt.epr "error: --every must be >= 1@.";
      exit 2
    end;
    let preset = if smoke then Figures.Smoke else Figures.Full in
    emit_output out (Record.record ~jobs ~every ~dir fig preset)
  in
  let fig =
    Arg.(required & pos 0 (some figure_arg) None & info [] ~docv:"FIGURE"
         ~doc:"Figure to record (fig4 or fig6).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Record the scaled-down preset (seconds).")
  in
  let every =
    Arg.(value & opt int 4 & info [ "every" ] ~docv:"N"
         ~doc:"Checkpoint after every N completed points.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a figure experiment with periodic checkpoints, so an interrupted run can be \
          resumed with $(b,replay). Prints the figure; checkpoints and the manifest go to \
          $(b,--dir).")
    Term.(const run $ fig $ smoke $ every $ dir_arg $ json_out_arg $ jobs_arg)

let replay_cmd =
  let run dir from_ out jobs =
    match Record.replay ~jobs ~dir ~from_ () with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
    | Ok (resumed_at, o) ->
      Fmt.epr "resumed from checkpoint at point %d@." resumed_at;
      emit_output out o
  in
  let from_ =
    Arg.(value & opt int max_int & info [ "from" ] ~docv:"N"
         ~doc:"Resume from the nearest checkpoint at or below point N (default: the latest).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Resume a recorded figure run from its nearest checkpoint and re-render it. Stdout is \
          byte-identical to the uninterrupted $(b,record) output at any $(b,--from) and \
          $(b,--jobs); the resume position is reported on stderr.")
    Term.(const run $ dir_arg $ from_ $ json_out_arg $ jobs_arg)

let shrink_cmd =
  let run workload_seed fault_seed kernels vpes ops spares no_delay no_dup no_drop no_stall
      no_retry every out =
    let spec =
      Fuzz.spec ~kernels ~vpes ~ops ~spares ~delay:(not no_delay) ~dup:(not no_dup)
        ~drop:(not no_drop) ~stall:(not no_stall) ~retry:(not no_retry) ()
    in
    match Fuzz.shrink ~spec ?checkpoint_every:every ~workload_seed ~fault_seed () with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
    | Ok r ->
      Fmt.pr "original: %a@." Fuzz.pp_outcome r.Fuzz.sh_original;
      Fmt.pr "minimal (%d of %d ops, %d probes): %a@." r.Fuzz.sh_min_ops ops r.Fuzz.sh_probes
        Fuzz.pp_outcome r.Fuzz.sh_minimal;
      Fmt.pr "checkpoints saved %d of %d replayed ops@." r.Fuzz.sh_saved_ops
        (r.Fuzz.sh_saved_ops + r.Fuzz.sh_replayed_ops);
      (match out with
      | None -> ()
      | Some path ->
        let name = Filename.remove_extension (Filename.basename path) in
        Fuzz.Case.save path (Fuzz.Case.of_shrink ~name r);
        Fmt.pr "wrote %s@." path)
  in
  let wseed =
    Arg.(required & opt (some int) None & info [ "workload-seed" ] ~docv:"N"
         ~doc:"Workload seed of the failing case.")
  in
  let fseed =
    Arg.(required & opt (some int) None & info [ "fault-seed" ] ~docv:"M"
         ~doc:"Fault-plan seed of the failing case.")
  in
  let kernels = Arg.(value & opt int 3 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let vpes = Arg.(value & opt int 6 & info [ "vpes" ] ~docv:"V" ~doc:"VPEs in the workload.") in
  let ops = Arg.(value & opt int 40 & info [ "ops" ] ~docv:"O" ~doc:"Workload steps per run.") in
  let spares =
    Arg.(value & opt int 0 & info [ "spares" ] ~docv:"S"
         ~doc:"Spare kernels; adds fleet join/drain transitions to the workload.")
  in
  let flag name doc = Arg.(value & flag & info [ name ] ~doc) in
  let no_delay = flag "no-delay" "Disable delay injection." in
  let no_dup = flag "no-dup" "Disable duplicate delivery." in
  let no_drop = flag "no-drop" "Disable message drops." in
  let no_stall = flag "no-stall" "Disable kernel stalls." in
  let no_retry = flag "no-retry" "Disable kernel retransmission." in
  let every =
    Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"K"
         ~doc:"Checkpoint cadence for the shrinker's probes (default: ops/8).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Write the shrunk case as a self-contained corpus file.")
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Minimise a failing fuzz case to its smallest failing op-prefix by delta debugging \
          from checkpoints. Deterministic: the same seeds always shrink to the same minimal \
          case.")
    Term.(const run $ wseed $ fseed $ kernels $ vpes $ ops $ spares $ no_delay $ no_dup
          $ no_drop $ no_stall $ no_retry $ every $ out)

let bench_cmd =
  let run mode smoke out =
    match mode with
    | "wallclock" ->
      let preset = if smoke then Semper_harness.Wallclock.Smoke else Semper_harness.Wallclock.Full in
      Semper_harness.Wallclock.run ~preset ?path:out ()
    | "balance" ->
      let preset = if smoke then Semper_harness.Skew.Smoke else Semper_harness.Skew.Full in
      Semper_harness.Skew.bench ~preset ?path:out ()
    | "fleet" ->
      let preset =
        if smoke then Semper_harness.Fleetbench.Smoke else Semper_harness.Fleetbench.Full
      in
      Semper_harness.Fleetbench.bench ~preset ?path:out ()
    | "batch" ->
      let preset =
        if smoke then Semper_harness.Batchbench.Smoke else Semper_harness.Batchbench.Full
      in
      Semper_harness.Batchbench.run ~preset ?path:out ()
    | "scale" ->
      let preset = if smoke then Semper_harness.Scale.Smoke else Semper_harness.Scale.Full in
      Semper_harness.Scale.run ~preset ?path:out ()
    | "engine" ->
      let preset =
        if smoke then Semper_harness.Enginebench.Smoke else Semper_harness.Enginebench.Full
      in
      Semper_harness.Enginebench.run ~preset ?path:out ()
    | m ->
      Fmt.epr
        "error: unknown bench mode %S (expected: wallclock, balance, fleet, batch, scale, or \
         engine)@."
        m;
      exit 2
  in
  let mode =
    Arg.(value & pos 0 string "wallclock" & info [] ~docv:"MODE"
         ~doc:
           "Benchmark mode: $(b,wallclock), $(b,balance), $(b,fleet), $(b,batch), $(b,scale), \
            or $(b,engine).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
         ~doc:"Run the scaled-down preset (seconds, used by the test suite).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
         ~doc:"Write the JSON report to FILE (default BENCH_<mode>.json).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Standalone benchmark deliverables. $(b,wallclock) measures the simulator's own \
          host throughput (events/s; host-dependent by construction, the only output exempt \
          from the byte-identity contract). $(b,balance) runs the skewed-workload load-balancer \
          ablation (BENCH_balance.json). $(b,fleet) runs the elastic-fleet autoscaling benchmark \
          (BENCH_fleet.json): an overloaded two-kernel system scaling out to absorb a surge and \
          back, with per-transition safety checks. $(b,batch) runs every workload with IKC batching off \
          and on (BENCH_batch.json); both are deterministic. $(b,scale) measures throughput, \
          heap, GC, and audit cost at 1K/2K/4K PEs (BENCH_scale.json; host-dependent like \
          wallclock). $(b,engine) measures schedule/cancel/drain throughput of the two event-queue \
          backends, binary heap versus timer wheel, at 1K-1M pending events (BENCH_engine.json; \
          host-dependent).")
    Term.(const run $ mode $ smoke $ out)

let nginx_cmd =
  let run mode kernels services servers =
    let o = Nginx_bench.run (Nginx_bench.config ~mode ~kernels ~services ~servers ()) in
    Fmt.pr "%d server processes on %d kernels + %d services: %.0f requests/s (%d errors)@." servers
      kernels services o.Nginx_bench.requests_per_s o.Nginx_bench.errors
  in
  let kernels = Arg.(value & opt int 32 & info [ "kernels"; "k" ] ~docv:"K" ~doc:"PE groups.") in
  let services =
    Arg.(value & opt int 32 & info [ "services"; "s" ] ~docv:"S" ~doc:"m3fs instances.")
  in
  let servers =
    Arg.(value & opt int 128 & info [ "servers"; "n" ] ~docv:"N" ~doc:"Webserver processes.")
  in
  Cmd.v
    (Cmd.info "nginx" ~doc:"Run the Nginx webserver benchmark (Figure 10).")
    Term.(const run $ mode_arg $ kernels $ services $ servers)

let () =
  let info =
    Cmd.info "semperos_cli" ~version:Semperos.version
      ~doc:"SemperOS distributed capability system — simulator CLI"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ micro_cmd; chain_cmd; tree_cmd; run_cmd; nginx_cmd; latency_cmd; stats_cmd;
            trace_cmd; trace_dump_cmd; trace_replay_cmd; fuzz_cmd; record_cmd; replay_cmd;
            shrink_cmd; bench_cmd ]))
