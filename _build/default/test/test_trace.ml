(* Tests for traces, workload generators, and the replay engine —
   including the Table 4 regression: each generator must reproduce the
   paper's capability-operation counts and rates. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Trace combinators                                                   *)

let sample_trace =
  {
    Trace.name = "t";
    ops =
      [
        Trace.Compute 100L;
        Trace.Open { path = "/a"; write = false; create = false };
        Trace.Read { slot = 0; bytes = 10 };
        Trace.Stat "/a";
        Trace.Compute 50L;
        Trace.Close { slot = 0 };
      ];
    files = [ ("/a", 100L) ];
  }

let test_trace_accessors () =
  check Alcotest.int "io ops" 4 (Trace.io_ops sample_trace);
  check Alcotest.int64 "compute" 150L (Trace.compute_cycles sample_trace)

let test_trace_prefix () =
  let t = Trace.with_prefix "/i7" sample_trace in
  check Alcotest.bool "files prefixed" true (List.mem_assoc "/i7/a" t.Trace.files);
  let has_open =
    List.exists
      (function Trace.Open { path; _ } -> path = "/i7/a" | _ -> false)
      t.Trace.ops
  in
  check Alcotest.bool "ops prefixed" true has_open;
  check Alcotest.int64 "compute unchanged" 150L (Trace.compute_cycles t)

let test_trace_scale () =
  let t = Trace.scale_compute 2.0 sample_trace in
  check Alcotest.int64 "compute doubled" 300L (Trace.compute_cycles t);
  check Alcotest.int "io untouched" 4 (Trace.io_ops t);
  Alcotest.check_raises "shrinking refused"
    (Invalid_argument "Trace.scale_compute: factor below 1") (fun () ->
      ignore (Trace.scale_compute 0.5 sample_trace))

(* ------------------------------------------------------------------ *)
(* Workload regression against Table 4                                 *)

let single spec = Experiment.run (Experiment.config ~kernels:1 ~services:1 ~instances:1 spec)

let test_table4_cap_ops () =
  List.iter
    (fun spec ->
      let o = single spec in
      let paper = spec.Workloads.paper_cap_ops in
      let deviation = abs (o.Experiment.cap_ops - paper) in
      if deviation > max 2 (paper / 5) then
        Alcotest.failf "%s: %d cap ops, paper says %d" spec.Workloads.name o.Experiment.cap_ops
          paper)
    Workloads.all

let test_table4_rates () =
  List.iter
    (fun spec ->
      let o = single spec in
      let paper = float_of_int spec.Workloads.paper_cap_ops_per_s in
      let ratio = o.Experiment.cap_ops_per_s /. paper in
      if ratio < 0.75 || ratio > 1.33 then
        Alcotest.failf "%s: %.0f cap ops/s, paper says %.0f" spec.Workloads.name
          o.Experiment.cap_ops_per_s paper)
    Workloads.all

let test_workloads_well_formed () =
  List.iter
    (fun spec ->
      let t = spec.Workloads.build () in
      check Alcotest.bool (spec.Workloads.name ^ " has ops") true (List.length t.Trace.ops > 0);
      (* Slots referenced by ops must be opened first. *)
      let opens = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Trace.Open _ -> incr opens
          | Trace.Read { slot; _ } | Trace.Write { slot; _ } | Trace.Seek { slot; _ }
          | Trace.Close { slot } ->
            if slot >= !opens then
              Alcotest.failf "%s: slot %d used before open %d" spec.Workloads.name slot !opens
          | Trace.Compute _ | Trace.Stat _ | Trace.Stat_absent _ | Trace.Mkdir _
          | Trace.Unlink _ | Trace.List _ ->
            ())
        t.Trace.ops)
    Workloads.all

let test_replay_clean () =
  (* Every workload replays without a single error — the paper's
     "checking for correct execution". *)
  List.iter
    (fun spec ->
      let o = single spec in
      check Alcotest.(list string) (spec.Workloads.name ^ " error-free") []
        o.Experiment.replay_errors)
    Workloads.all

let test_replay_reports () =
  let spec = Workloads.find in
  let trace = spec.Workloads.build () in
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:4 ()) in
  let fs =
    M3fs.create ~config:spec.Workloads.fs_config sys ~kernel:0 ~name:"m3fs"
      ~files:trace.Trace.files ()
  in
  let vpe = System.spawn_vpe sys ~kernel:0 in
  let result = ref None in
  Replay.run sys fs ~vpe trace (fun r -> result := Some r);
  ignore (System.run sys);
  let r = Option.get !result in
  check Alcotest.(list string) "no errors" [] r.Replay.errors;
  check Alcotest.int "io ops counted" (Trace.io_ops trace) r.Replay.io_ops;
  check Alcotest.bool "time advanced" true (Replay.runtime r > 0L);
  check Alcotest.int "find's cap ops" 3
    (Kernel.stats (System.kernel sys 0)).Kernel.cap_ops

let test_replay_error_recorded () =
  (* A trace touching a missing file records the error and continues. *)
  let trace =
    {
      Trace.name = "broken";
      ops =
        [
          Trace.Open { path = "/missing"; write = false; create = false };
          Trace.Read { slot = 0; bytes = 10 };
          Trace.Stat "/exists";
        ];
      files = [ ("/exists", 10L) ];
    }
  in
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:4 ()) in
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:trace.Trace.files () in
  let vpe = System.spawn_vpe sys ~kernel:0 in
  let result = ref None in
  Replay.run sys fs ~vpe trace (fun r -> result := Some r);
  ignore (System.run sys);
  let r = Option.get !result in
  check Alcotest.int "two errors (open + dependent read)" 2 (List.length r.Replay.errors);
  check Alcotest.int "but all ops attempted" 3 r.Replay.io_ops

let suite =
  [
    Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
    Alcotest.test_case "trace prefix" `Quick test_trace_prefix;
    Alcotest.test_case "trace scale" `Quick test_trace_scale;
    Alcotest.test_case "Table 4 cap-op counts" `Quick test_table4_cap_ops;
    Alcotest.test_case "Table 4 rates" `Quick test_table4_rates;
    Alcotest.test_case "workloads well-formed" `Quick test_workloads_well_formed;
    Alcotest.test_case "replay clean" `Quick test_replay_clean;
    Alcotest.test_case "replay reports" `Quick test_replay_reports;
    Alcotest.test_case "replay records errors" `Quick test_replay_error_recorded;
  ]
