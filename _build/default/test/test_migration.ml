(* PE migration tests (the paper's named future work, §3.2): after a
   migration every kernel's membership replica must route the PE's keys
   to the new kernel, the capability records must have moved, and every
   protocol must keep working across the new topology. *)

open Semperos

let check = Alcotest.check

let reply_t = Alcotest.testable Protocol.pp_reply ( = )

let sel_of = function
  | Protocol.R_sel s -> s
  | r -> Alcotest.failf "expected selector, got %a" Protocol.pp_reply r

let alloc sys vpe =
  sel_of (System.syscall_sync sys vpe (Protocol.Sys_alloc_mem { size = 4096L; perms = Perms.rw }))

let test_migrate_moves_records () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  let _a = alloc sys v in
  let _b = alloc sys v in
  check Alcotest.int "records at kernel 0" 2 (Mapdb.count (Kernel.mapdb (System.kernel sys 0)));
  System.migrate_vpe sys v ~to_kernel:2;
  check Alcotest.int "now managed by kernel 2" 2 v.Vpe.kernel;
  check Alcotest.int "records left kernel 0" 0 (Mapdb.count (Kernel.mapdb (System.kernel sys 0)));
  check Alcotest.int "records arrived at kernel 2" 2
    (Mapdb.count (Kernel.mapdb (System.kernel sys 2)));
  (* The system's membership replica routes the PE to kernel 2 (each
     kernel's own replica was updated by the broadcast — the audit's
     DDL-routability check below verifies the records are reachable). *)
  check Alcotest.int "membership updated" 2
    (Membership.kernel_of_pe (System.membership sys) v.Vpe.pe);
  Audit.check sys

let test_migrated_vpe_keeps_working () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  let other = System.spawn_vpe sys ~kernel:1 in
  let sel = alloc sys v in
  (* A cross-kernel child exists before the migration. *)
  let other_sel =
    sel_of
      (System.syscall_sync sys other (Protocol.Sys_obtain_from { donor_vpe = v.Vpe.id; donor_sel = sel }))
  in
  ignore other_sel;
  System.migrate_vpe sys v ~to_kernel:2;
  (* New syscalls are handled by the new kernel. *)
  let sel2 = alloc sys v in
  let key2 = Option.get (Capspace.find v.Vpe.capspace sel2) in
  check Alcotest.bool "new cap hosted at kernel 2" true
    (Mapdb.mem (Kernel.mapdb (System.kernel sys 2)) key2);
  (* Exchanges with the migrated VPE route correctly. *)
  let third = System.spawn_vpe sys ~kernel:1 in
  (match
     System.syscall_sync sys third (Protocol.Sys_obtain_from { donor_vpe = v.Vpe.id; donor_sel = sel2 })
   with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "obtain from migrated VPE: %a" Protocol.pp_reply r);
  (* The pre-migration cross-kernel tree still revokes cleanly: the
     revoke request for [other]'s child must reach kernel 1 while the
     root now lives at kernel 2. *)
  check reply_t "revoke pre-migration tree" Protocol.R_ok
    (System.syscall_sync sys v (Protocol.Sys_revoke { sel; own = true }));
  check Alcotest.int "other's copy gone" 0 (Capspace.count other.Vpe.capspace);
  Audit.check sys

let test_migrate_rejects_bad_args () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:4 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  Alcotest.check_raises "no such kernel" (Invalid_argument "System.migrate_vpe: no such kernel")
    (fun () -> System.migrate_vpe sys v ~to_kernel:7);
  Alcotest.check_raises "same kernel" (Invalid_argument "Kernel.migrate_vpe: already managed here")
    (fun () -> System.migrate_vpe sys v ~to_kernel:0);
  (match System.syscall_sync sys v Protocol.Sys_exit with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "exit: %a" Protocol.pp_reply r);
  Alcotest.check_raises "dead VPE" (Invalid_argument "Kernel.migrate_vpe: VPE is dead") (fun () ->
      System.migrate_vpe sys v ~to_kernel:1)

let test_migrate_then_shutdown () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let v2 = System.spawn_vpe sys ~kernel:1 in
  let a = alloc sys v1 in
  ignore
    (sel_of
       (System.syscall_sync sys v2 (Protocol.Sys_obtain_from { donor_vpe = v1.Vpe.id; donor_sel = a })));
  System.migrate_vpe sys v1 ~to_kernel:2;
  System.migrate_vpe sys v2 ~to_kernel:0;
  check Alcotest.int "clean shutdown after migrations" 0 (System.shutdown sys)

let suite =
  [
    Alcotest.test_case "migration moves records" `Quick test_migrate_moves_records;
    Alcotest.test_case "migrated VPE keeps working" `Quick test_migrated_vpe_keeps_working;
    Alcotest.test_case "migration argument checks" `Quick test_migrate_rejects_bad_args;
    Alcotest.test_case "migrate then shutdown" `Quick test_migrate_then_shutdown;
  ]
