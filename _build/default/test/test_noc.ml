(* Tests for the NoC topology and fabric. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let test_mesh_basics () =
  let t = Topology.mesh ~width:4 ~height:3 in
  check Alcotest.int "pe count" 12 (Topology.pe_count t);
  check Alcotest.(pair int int) "coords of 0" (0, 0) (Topology.coords t 0);
  check Alcotest.(pair int int) "coords of 5" (1, 1) (Topology.coords t 5);
  check Alcotest.int "hops 0->11" 5 (Topology.hops t 0 11);
  check Alcotest.int "hops self" 0 (Topology.hops t 7 7)

let test_mesh_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Topology.mesh: non-positive dimension")
    (fun () -> ignore (Topology.mesh ~width:0 ~height:3));
  let t = Topology.mesh ~width:2 ~height:2 in
  Alcotest.check_raises "pe out of range" (Invalid_argument "Topology.coords: PE out of range")
    (fun () -> ignore (Topology.coords t 4))

let test_square () =
  let t = Topology.square 10 in
  check Alcotest.bool "holds at least n" true (Topology.pe_count t >= 10);
  check Alcotest.int "is 4x4" 16 (Topology.pe_count t);
  check Alcotest.int "square 1" 1 (Topology.pe_count (Topology.square 1))

let topo_gen =
  QCheck.Gen.(
    map3 (fun w h seed -> (Topology.mesh ~width:w ~height:h, seed)) (1 -- 8) (1 -- 8) int)

let prop_hops_metric =
  QCheck.Test.make ~name:"hop count is a metric" ~count:200
    (QCheck.make topo_gen)
    (fun (t, seed) ->
      let r = Rng.create (Int64.of_int seed) in
      let n = Topology.pe_count t in
      let a = Rng.int r n and b = Rng.int r n and c = Rng.int r n in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a a = 0
      && Topology.hops t a c <= Topology.hops t a b + Topology.hops t b c)

let make_fabric () =
  let e = Engine.create () in
  let t = Topology.mesh ~width:4 ~height:4 in
  (e, Fabric.create e t Fabric.default_config)

let test_fabric_latency_formula () =
  let _, f = make_fabric () in
  let cfg = Fabric.default_config in
  let expected hops bytes =
    Int64.of_int (cfg.Fabric.base_cycles + (cfg.Fabric.hop_cycles * hops) + (bytes / cfg.Fabric.bytes_per_cycle))
  in
  check Alcotest.int64 "adjacent" (expected 1 64) (Fabric.latency f ~src:0 ~dst:1 ~bytes:64);
  check Alcotest.int64 "corner to corner" (expected 6 0) (Fabric.latency f ~src:0 ~dst:15 ~bytes:0)

let test_fabric_delivery () =
  let e, f = make_fabric () in
  let arrived = ref 0L in
  Fabric.send f ~src:0 ~dst:15 ~bytes:64 (fun () -> arrived := Engine.now e);
  ignore (Engine.run e);
  check Alcotest.int64 "arrival time" (Fabric.latency f ~src:0 ~dst:15 ~bytes:64) !arrived;
  check Alcotest.int "messages" 1 (Fabric.messages f);
  check Alcotest.int "bytes" 64 (Fabric.bytes_carried f);
  check Alcotest.int "hops" 6 (Fabric.hops_traversed f)

let test_fabric_fifo_per_channel () =
  let e, f = make_fabric () in
  let log = ref [] in
  (* A big message followed by a small one on the same channel: the
     small one must not overtake (the kernel protocols rely on it). *)
  Fabric.send f ~src:0 ~dst:15 ~bytes:16384 (fun () -> log := "big" :: !log);
  Fabric.send f ~src:0 ~dst:15 ~bytes:0 (fun () -> log := "small" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "fifo" [ "big"; "small" ] (List.rev !log)

let test_fabric_distinct_channels_independent () =
  let e, f = make_fabric () in
  let log = ref [] in
  Fabric.send f ~src:0 ~dst:15 ~bytes:16384 (fun () -> log := "slow" :: !log);
  Fabric.send f ~src:1 ~dst:2 ~bytes:0 (fun () -> log := "fast" :: !log);
  ignore (Engine.run e);
  check Alcotest.(list string) "no cross-channel blocking" [ "fast"; "slow" ] (List.rev !log)

let suite =
  [
    Alcotest.test_case "mesh basics" `Quick test_mesh_basics;
    Alcotest.test_case "mesh invalid" `Quick test_mesh_invalid;
    Alcotest.test_case "square" `Quick test_square;
    qcheck prop_hops_metric;
    Alcotest.test_case "fabric latency formula" `Quick test_fabric_latency_formula;
    Alcotest.test_case "fabric delivery" `Quick test_fabric_delivery;
    Alcotest.test_case "fabric per-channel FIFO" `Quick test_fabric_fifo_per_channel;
    Alcotest.test_case "fabric channel independence" `Quick test_fabric_distinct_channels_independent;
  ]
