(* Tests for system assembly: topology layout, membership, DTU
   privilege at boot, PE allocation, configuration limits. *)

open Semperos

let check = Alcotest.check

let test_layout () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:4 ()) in
  check Alcotest.int "kernel count" 3 (System.kernel_count sys);
  check Alcotest.int "pe count" 15 (System.pe_count sys);
  (* Kernel PEs are the first PE of each contiguous group. *)
  check Alcotest.int "kernel 0 PE" 0 (Kernel.pe (System.kernel sys 0));
  check Alcotest.int "kernel 1 PE" 5 (Kernel.pe (System.kernel sys 1));
  check Alcotest.int "kernel 2 PE" 10 (Kernel.pe (System.kernel sys 2));
  (* Membership is sealed and covers every PE. *)
  let m = System.membership sys in
  check Alcotest.bool "sealed" true (Membership.is_sealed m);
  check Alcotest.int "covers all PEs" 15 (Membership.size m);
  check Alcotest.int "pe 7 belongs to kernel 1" 1 (Membership.kernel_of_pe m 7)

let test_dtu_privilege_at_boot () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:3 ()) in
  let grid = System.grid sys in
  (* Kernel PEs stay privileged, user PEs are downgraded. *)
  check Alcotest.bool "kernel DTU privileged" true (Dtu.is_privileged (Dtu.find grid ~pe:0));
  check Alcotest.bool "kernel DTU privileged" true (Dtu.is_privileged (Dtu.find grid ~pe:4));
  check Alcotest.bool "user DTU deprivileged" false (Dtu.is_privileged (Dtu.find grid ~pe:1));
  check Alcotest.bool "user DTU deprivileged" false (Dtu.is_privileged (Dtu.find grid ~pe:7))

let test_pe_allocation () =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:2 ()) in
  check Alcotest.int "two free" 2 (System.free_pes sys ~kernel:0);
  let v1 = System.spawn_vpe sys ~kernel:0 in
  let _v2 = System.spawn_vpe sys ~kernel:0 in
  check Alcotest.int "none free" 0 (System.free_pes sys ~kernel:0);
  Alcotest.check_raises "full" (Invalid_argument "System.spawn_vpe: group is full") (fun () ->
      ignore (System.spawn_vpe sys ~kernel:0));
  (* Exit returns the PE. *)
  (match System.syscall_sync sys v1 Protocol.Sys_exit with
  | Protocol.R_ok -> ()
  | r -> Alcotest.failf "exit: %a" Protocol.pp_reply r);
  check Alcotest.int "freed" 1 (System.free_pes sys ~kernel:0);
  ignore (System.spawn_vpe sys ~kernel:0)

let test_create_vpe_syscall () =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:3 ()) in
  let parent = System.spawn_vpe sys ~kernel:0 in
  match System.syscall_sync sys parent (Protocol.Sys_create_vpe { on_pe = None }) with
  | Protocol.R_vpe { vpe; sel = _ } ->
    let child = Option.get (System.find_vpe sys vpe) in
    check Alcotest.bool "child alive" true (Vpe.is_alive child);
    check Alcotest.int "same kernel" 0 child.Vpe.kernel;
    (* The parent holds the control capability. *)
    check Alcotest.int "parent has the vpe cap" 1 (Capspace.count parent.Vpe.capspace)
  | r -> Alcotest.failf "create_vpe: %a" Protocol.pp_reply r

let test_limits () =
  Alcotest.check_raises "too many kernels"
    (Invalid_argument "System.create: more kernels than the DTU endpoints support (64)")
    (fun () -> ignore (System.create (System.config ~kernels:65 ~user_pes_per_kernel:1 ())));
  Alcotest.check_raises "too many PEs per group"
    (Invalid_argument "System.create: more PEs per kernel than syscall slots support (192)")
    (fun () -> ignore (System.create (System.config ~kernels:1 ~user_pes_per_kernel:193 ())));
  Alcotest.check_raises "no kernels"
    (Invalid_argument "System.create: need at least one kernel")
    (fun () -> ignore (System.create (System.config ~kernels:0 ())))

let test_service_directory_replication () =
  let sys = System.create (System.config ~kernels:3 ~user_pes_per_kernel:3 ()) in
  let srv_vpe = System.spawn_vpe sys ~kernel:0 in
  Kernel.register_service_handler (System.kernel sys 0) ~name:"echo" (fun _req k ->
      k (Protocol.Srs_session { ident = 1 }));
  (match System.syscall_sync sys srv_vpe (Protocol.Sys_create_srv { name = "echo" }) with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "create_srv: %a" Protocol.pp_reply r);
  ignore (System.run sys);
  (* Every kernel learned about the service via the announcement. *)
  List.iter
    (fun k ->
      check Alcotest.bool "directory entry" true (Kernel.lookup_service k "echo" <> None))
    (System.kernels sys);
  (* A client in another group can open a session. *)
  let client = System.spawn_vpe sys ~kernel:2 in
  match System.syscall_sync sys client (Protocol.Sys_open_session { service = "echo" }) with
  | Protocol.R_sess { ident; _ } -> check Alcotest.int "ident from handler" 1 ident
  | r -> Alcotest.failf "open_session: %a" Protocol.pp_reply r

let test_unknown_service () =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:2 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  match System.syscall_sync sys v (Protocol.Sys_open_session { service = "nope" }) with
  | Protocol.R_err Protocol.E_no_such_service -> ()
  | r -> Alcotest.failf "expected no-such-service, got %a" Protocol.pp_reply r

let test_graceful_shutdown () =
  (* A populated system — m3fs service, clients with open files and
     cross-kernel capabilities — must shut down to zero capabilities. *)
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:[ ("/f", 300_000L) ] () in
  let drive k =
    let vpe = System.spawn_vpe sys ~kernel:k in
    Fs_client.connect sys fs ~vpe (fun conn ->
        let client = Result.get_ok conn in
        Fs_client.open_ client "/f" ~write:false ~create:false (fun r ->
            let fd = Result.get_ok r in
            Fs_client.read client ~fd ~bytes:300_000 (fun _ -> ())))
  in
  drive 0;
  drive 1;
  ignore (System.run sys);
  check Alcotest.bool "caps exist before shutdown" true
    (List.exists (fun k -> Mapdb.count (Kernel.mapdb k) > 0) (System.kernels sys));
  let leaked = System.shutdown sys in
  check Alcotest.int "no capability survives shutdown" 0 leaked;
  check Alcotest.(list string) "invariants after shutdown" [] (System.check_invariants sys)

let test_latency_stats () =
  let sys = System.create (System.config ~kernels:1 ~user_pes_per_kernel:2 ()) in
  let v = System.spawn_vpe sys ~kernel:0 in
  (match System.syscall_sync sys v (Protocol.Sys_alloc_mem { size = 64L; perms = Perms.r }) with
  | Protocol.R_sel _ -> ()
  | r -> Alcotest.failf "alloc: %a" Protocol.pp_reply r);
  let stats = Kernel.stats (System.kernel sys 0) in
  match Hashtbl.find_opt stats.Kernel.latencies "alloc_mem" with
  | None -> Alcotest.fail "no latency recorded"
  | Some acc ->
    check Alcotest.int "one sample" 1 (Stats.Acc.count acc);
    check Alcotest.bool "plausible latency" true
      (Stats.Acc.mean acc > 1000.0 && Stats.Acc.mean acc < 10000.0)

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "DTU privilege at boot" `Quick test_dtu_privilege_at_boot;
    Alcotest.test_case "PE allocation" `Quick test_pe_allocation;
    Alcotest.test_case "create_vpe syscall" `Quick test_create_vpe_syscall;
    Alcotest.test_case "hardware limits" `Quick test_limits;
    Alcotest.test_case "service directory replication" `Quick test_service_directory_replication;
    Alcotest.test_case "unknown service" `Quick test_unknown_service;
    Alcotest.test_case "graceful shutdown" `Quick test_graceful_shutdown;
    Alcotest.test_case "latency statistics" `Quick test_latency_stats;
  ]
