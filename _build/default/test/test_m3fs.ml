(* Tests for the m3fs filesystem: the image data structure and the
   full client/service/kernel capability flow. *)

open Semperos

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fs_image                                                            *)

let test_image_paths () =
  let img = Fs_image.create ~extent_size:1024L in
  check Alcotest.(list string) "split" [ "a"; "b" ] (Fs_image.split_path "/a/b");
  check Alcotest.(list string) "split messy" [ "a"; "b" ] (Fs_image.split_path "a//b/");
  check Alcotest.bool "mkdir -p" true (Fs_image.mkdir img "/x/y/z" = Ok ());
  check Alcotest.bool "nested exists" true (Fs_image.lookup img "/x/y" <> None);
  check Alcotest.bool "mkdir exists" true (Result.is_error (Fs_image.mkdir img "/x/y/z"))

let test_image_files () =
  let img = Fs_image.create ~extent_size:1024L in
  ignore (Fs_image.mkdir img "/d");
  (match Fs_image.add_file img "/d/f" ~size:2500L with
  | Ok f ->
    check Alcotest.int "extent count" 3 (List.length f.Fs_image.extents);
    check Alcotest.int64 "size" 2500L f.Fs_image.size;
    (* Extents tile the file. *)
    let last = List.nth f.Fs_image.extents 2 in
    check Alcotest.int64 "last offset" 2048L last.Fs_image.e_off;
    check Alcotest.int64 "last length" 452L last.Fs_image.e_len
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "find_file" true (Result.is_ok (Fs_image.find_file img "/d/f"));
  check Alcotest.bool "find dir as file" true (Result.is_error (Fs_image.find_file img "/d"));
  check Alcotest.int "count" 1 (Fs_image.file_count img)

let test_image_extent_lookup () =
  let img = Fs_image.create ~extent_size:1000L in
  let f = Result.get_ok (Fs_image.add_file img "/f" ~size:2500L) in
  (match Fs_image.extent_for f ~pos:1500L with
  | Some e -> check Alcotest.int64 "covering extent" 1000L e.Fs_image.e_off
  | None -> Alcotest.fail "no extent");
  check Alcotest.bool "past EOF" true (Fs_image.extent_for f ~pos:2500L = None);
  let e = Fs_image.append_extent img f in
  (* Appends continue right after the last byte backed by an extent. *)
  check Alcotest.int64 "appended extent offset" 2500L e.Fs_image.e_off

let test_image_unlink_and_list () =
  let img = Fs_image.create ~extent_size:1024L in
  ignore (Fs_image.mkdir img "/d");
  ignore (Fs_image.add_file img "/d/a" ~size:10L);
  ignore (Fs_image.add_file img "/d/b" ~size:10L);
  check Alcotest.(list string) "list" [ "a"; "b" ] (Result.get_ok (Fs_image.list_dir img "/d"));
  check Alcotest.bool "unlink nonempty dir fails" true (Result.is_error (Fs_image.unlink img "/d"));
  check Alcotest.bool "unlink file" true (Fs_image.unlink img "/d/a" = Ok ());
  check Alcotest.bool "unlink again fails" true (Result.is_error (Fs_image.unlink img "/d/a"));
  check Alcotest.(list string) "list after" [ "b" ] (Result.get_ok (Fs_image.list_dir img "/d"))

(* ------------------------------------------------------------------ *)
(* Full service flow                                                   *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let setup ?(config = M3fs.default_config) ?(client_kernel = 1) ~files () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let fs = M3fs.create ~config sys ~kernel:0 ~name:"m3fs" ~files () in
  let vpe = System.spawn_vpe sys ~kernel:client_kernel in
  let client = ref None in
  Fs_client.connect sys fs ~vpe (fun r -> client := Some (ok r));
  ignore (System.run sys);
  (sys, fs, Option.get !client)

let run_sync sys f =
  let result = ref None in
  f (fun r -> result := Some r);
  ignore (System.run sys);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "operation did not complete"

let test_read_whole_file () =
  let sys, fs, client = setup ~files:[ ("/data/f", 600_000L) ] () in
  let fd = ok (run_sync sys (Fs_client.open_ client "/data/f" ~write:false ~create:false)) in
  let n = ok (run_sync sys (Fs_client.read client ~fd ~bytes:1_000_000)) in
  check Alcotest.int "bytes read" 600_000 n;
  let n = ok (run_sync sys (Fs_client.read client ~fd ~bytes:10)) in
  check Alcotest.int "EOF" 0 n;
  (* 600000 bytes at 256 KiB extents: 3 grants. *)
  check Alcotest.int "grants" 3 (M3fs.stats fs).M3fs.grants;
  ok (run_sync sys (Fs_client.close client ~fd));
  check Alcotest.int "revoked per granted extent" 3 (M3fs.stats fs).M3fs.revoke_calls

let test_write_grows_file () =
  let sys, fs, client = setup ~files:[] () in
  ok (run_sync sys (Fs_client.mkdir client "/w"));
  let fd = ok (run_sync sys (Fs_client.open_ client "/w/new" ~write:true ~create:true)) in
  ok (run_sync sys (Fs_client.write client ~fd ~bytes:300_000));
  (* Two extents had to be allocated through the kernel. *)
  check Alcotest.int "appends" 2 (M3fs.stats fs).M3fs.appends;
  ok (run_sync sys (Fs_client.close client ~fd));
  (* Reopen: the size was committed at close. *)
  let fd = ok (run_sync sys (Fs_client.open_ client "/w/new" ~write:false ~create:false)) in
  let n = ok (run_sync sys (Fs_client.read client ~fd ~bytes:1_000_000)) in
  check Alcotest.int "read back everything" 300_000 n;
  ok (run_sync sys (Fs_client.close client ~fd));
  assert (System.check_invariants sys = [])

let test_meta_ops () =
  let sys, _fs, client = setup ~files:[ ("/data/f", 100L) ] () in
  ok (run_sync sys (Fs_client.stat client "/data/f"));
  check Alcotest.bool "stat missing" true
    (Result.is_error (run_sync sys (Fs_client.stat client "/data/missing")));
  ok (run_sync sys (Fs_client.mkdir client "/data/sub"));
  let entries = ok (run_sync sys (Fs_client.list client "/data")) in
  check Alcotest.(list string) "entries" [ "f"; "sub" ] entries;
  ok (run_sync sys (Fs_client.unlink client "/data/f"));
  check Alcotest.bool "gone" true
    (Result.is_error (run_sync sys (Fs_client.stat client "/data/f")))

let test_open_errors () =
  let sys, _fs, client = setup ~files:[ ("/f", 100L) ] () in
  check Alcotest.bool "missing no create" true
    (Result.is_error (run_sync sys (Fs_client.open_ client "/nope" ~write:false ~create:false)));
  (* create requires write *)
  check Alcotest.bool "create read-only refused" true
    (Result.is_error (run_sync sys (Fs_client.open_ client "/nope2" ~write:false ~create:true)));
  let fd = ok (run_sync sys (Fs_client.open_ client "/f" ~write:false ~create:false)) in
  check Alcotest.bool "write on read-only fd" true
    (Result.is_error (run_sync sys (Fs_client.write client ~fd ~bytes:10)));
  check Alcotest.bool "bad fd" true
    (Result.is_error (run_sync sys (Fs_client.read client ~fd:999 ~bytes:10)))

let test_seek () =
  let sys, _fs, client = setup ~files:[ ("/f", 1000L) ] () in
  let fd = ok (run_sync sys (Fs_client.open_ client "/f" ~write:false ~create:false)) in
  (match Fs_client.seek client ~fd ~pos:900L with Ok () -> () | Error e -> Alcotest.fail e);
  let n = ok (run_sync sys (Fs_client.read client ~fd ~bytes:1000)) in
  check Alcotest.int "read from offset" 100 n;
  check Alcotest.bool "negative seek" true (Result.is_error (Fs_client.seek client ~fd ~pos:(-1L)))

let test_sync_close_revokes_before_reply () =
  (* With async_revoke off, the close reply arrives only after the
     extent capabilities are really gone. *)
  let config = { M3fs.default_config with M3fs.async_revoke = false } in
  let sys, _fs, client = setup ~config ~files:[ ("/f", 1000L) ] () in
  let fd = ok (run_sync sys (Fs_client.open_ client "/f" ~write:false ~create:false)) in
  ignore (ok (run_sync sys (Fs_client.read client ~fd ~bytes:1000)));
  let caps_before =
    List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)
  in
  ok (run_sync sys (Fs_client.close client ~fd));
  let caps_after =
    List.fold_left (fun acc k -> acc + Mapdb.count (Kernel.mapdb k)) 0 (System.kernels sys)
  in
  check Alcotest.bool "client extent cap revoked" true (caps_after < caps_before)

let test_two_clients_isolated () =
  let sys = System.create (System.config ~kernels:2 ~user_pes_per_kernel:6 ()) in
  let fs = M3fs.create sys ~kernel:0 ~name:"m3fs" ~files:[ ("/shared", 1000L) ] () in
  let connect k =
    let vpe = System.spawn_vpe sys ~kernel:k in
    let c = ref None in
    Fs_client.connect sys fs ~vpe (fun r -> c := Some (ok r));
    ignore (System.run sys);
    Option.get !c
  in
  let c1 = connect 0 and c2 = connect 1 in
  check Alcotest.bool "distinct sessions" true (Fs_client.ident c1 <> Fs_client.ident c2);
  let fd1 = ok (run_sync sys (Fs_client.open_ c1 "/shared" ~write:false ~create:false)) in
  let fd2 = ok (run_sync sys (Fs_client.open_ c2 "/shared" ~write:false ~create:false)) in
  ignore (ok (run_sync sys (Fs_client.read c1 ~fd:fd1 ~bytes:1000)));
  ignore (ok (run_sync sys (Fs_client.read c2 ~fd:fd2 ~bytes:1000)));
  ok (run_sync sys (Fs_client.close c1 ~fd:fd1));
  (* c2 was granted its own capability; it can still read. *)
  (match Fs_client.seek c2 ~fd:fd2 ~pos:0L with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (ok (run_sync sys (Fs_client.read c2 ~fd:fd2 ~bytes:1000)));
  ok (run_sync sys (Fs_client.close c2 ~fd:fd2))

let suite =
  [
    Alcotest.test_case "image paths" `Quick test_image_paths;
    Alcotest.test_case "image files and extents" `Quick test_image_files;
    Alcotest.test_case "image extent lookup" `Quick test_image_extent_lookup;
    Alcotest.test_case "image unlink and list" `Quick test_image_unlink_and_list;
    Alcotest.test_case "read whole file" `Quick test_read_whole_file;
    Alcotest.test_case "write grows file" `Quick test_write_grows_file;
    Alcotest.test_case "meta ops" `Quick test_meta_ops;
    Alcotest.test_case "open errors" `Quick test_open_errors;
    Alcotest.test_case "seek" `Quick test_seek;
    Alcotest.test_case "sync close revokes" `Quick test_sync_close_revokes_before_reply;
    Alcotest.test_case "two clients isolated" `Quick test_two_clients_isolated;
  ]
