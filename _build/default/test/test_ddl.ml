(* Tests for DDL keys and the membership table. *)

open Semperos

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let key_t = Alcotest.testable Key.pp Key.equal

let test_key_roundtrip () =
  let k = Key.make ~pe:3 ~vpe:17 ~kind:Key.Mem_obj ~obj:12345 in
  check Alcotest.int "pe" 3 (Key.pe k);
  check Alcotest.int "vpe" 17 (Key.vpe k);
  check Alcotest.string "kind" "mem" (Key.kind_to_string (Key.kind k));
  check Alcotest.int "obj" 12345 (Key.obj k);
  check key_t "int64 roundtrip" k (Key.of_int64 (Key.to_int64 k))

let test_key_bounds () =
  ignore (Key.make ~pe:Key.max_pe ~vpe:Key.max_vpe ~kind:Key.Kernel_obj ~obj:Key.max_obj);
  Alcotest.check_raises "pe too big" (Invalid_argument "Key.make: pe out of range") (fun () ->
      ignore (Key.make ~pe:(Key.max_pe + 1) ~vpe:0 ~kind:Key.Vpe_obj ~obj:0));
  Alcotest.check_raises "negative obj" (Invalid_argument "Key.make: obj out of range") (fun () ->
      ignore (Key.make ~pe:0 ~vpe:0 ~kind:Key.Vpe_obj ~obj:(-1)))

let all_kinds =
  [ Key.Vpe_obj; Key.Mem_obj; Key.Srv_obj; Key.Sess_obj; Key.Sgate_obj; Key.Rgate_obj; Key.Kernel_obj ]

let test_key_kinds () =
  List.iter
    (fun kind ->
      let k = Key.make ~pe:1 ~vpe:2 ~kind ~obj:3 in
      check Alcotest.string "kind survives packing" (Key.kind_to_string kind)
        (Key.kind_to_string (Key.kind k)))
    all_kinds

let key_gen =
  QCheck.Gen.(
    map
      (fun (pe, vpe, kind_idx, obj) ->
        Key.make ~pe ~vpe ~kind:(List.nth all_kinds kind_idx) ~obj)
      (tup4 (0 -- Key.max_pe) (0 -- Key.max_vpe) (0 -- 6) (0 -- Key.max_obj)))

let prop_key_roundtrip =
  QCheck.Test.make ~name:"key fields survive pack/unpack" ~count:500 (QCheck.make key_gen)
    (fun k -> Key.equal k (Key.of_int64 (Key.to_int64 k)))

let prop_key_injective =
  QCheck.Test.make ~name:"distinct fields give distinct keys" ~count:500
    (QCheck.make QCheck.Gen.(pair key_gen key_gen))
    (fun (a, b) ->
      let same_fields =
        Key.pe a = Key.pe b && Key.vpe a = Key.vpe b && Key.kind a = Key.kind b
        && Key.obj a = Key.obj b
      in
      Key.equal a b = same_fields)

let test_key_table () =
  let tbl = Key.Table.create 8 in
  let k1 = Key.make ~pe:1 ~vpe:1 ~kind:Key.Vpe_obj ~obj:1 in
  let k2 = Key.make ~pe:1 ~vpe:1 ~kind:Key.Vpe_obj ~obj:2 in
  Key.Table.add tbl k1 "one";
  check Alcotest.(option string) "find" (Some "one") (Key.Table.find_opt tbl k1);
  check Alcotest.(option string) "absent" None (Key.Table.find_opt tbl k2)

let test_membership () =
  let m = Membership.create () in
  Membership.assign m ~pe:0 ~kernel:0;
  Membership.assign m ~pe:1 ~kernel:0;
  Membership.assign m ~pe:2 ~kernel:1;
  check Alcotest.int "kernel of pe" 0 (Membership.kernel_of_pe m 1);
  check Alcotest.int "kernel of key" 1
    (Membership.kernel_of_key m (Key.make ~pe:2 ~vpe:9 ~kind:Key.Mem_obj ~obj:0));
  check Alcotest.(list int) "pes of kernel" [ 0; 1 ] (Membership.pes_of_kernel m 0);
  check Alcotest.(list int) "kernels" [ 0; 1 ] (Membership.kernels m);
  check Alcotest.int "size" 3 (Membership.size m);
  Alcotest.check_raises "unassigned" Not_found (fun () -> ignore (Membership.kernel_of_pe m 9));
  Alcotest.check_raises "double assign" (Invalid_argument "Membership.assign: PE already assigned")
    (fun () -> Membership.assign m ~pe:0 ~kernel:1)

let test_membership_seal_and_copy () =
  let m = Membership.create () in
  Membership.assign m ~pe:0 ~kernel:0;
  let copy = Membership.copy m in
  Membership.seal m;
  check Alcotest.bool "sealed" true (Membership.is_sealed m);
  check Alcotest.bool "copy not sealed" false (Membership.is_sealed copy);
  Alcotest.check_raises "assign after seal" (Invalid_argument "Membership.assign: table is sealed")
    (fun () -> Membership.assign m ~pe:1 ~kernel:0);
  (* The copy is independent. *)
  Membership.assign copy ~pe:1 ~kernel:1;
  check Alcotest.int "copy extended" 2 (Membership.size copy);
  check Alcotest.int "original untouched" 1 (Membership.size m)

let suite =
  [
    Alcotest.test_case "key roundtrip" `Quick test_key_roundtrip;
    Alcotest.test_case "key bounds" `Quick test_key_bounds;
    Alcotest.test_case "key kinds" `Quick test_key_kinds;
    qcheck prop_key_roundtrip;
    qcheck prop_key_injective;
    Alcotest.test_case "key table" `Quick test_key_table;
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "membership seal and copy" `Quick test_membership_seal_and_copy;
  ]
